// Characteristic function -> canonical BFV, in the style of
// Coudert/Berthet/Madre [6] (the costly conversion the Fig. 1 flow pays for
// and the Fig. 2 flow avoids). Also used to build bad-state / constraint
// sets from predicates in the examples and tests.
//
// Component i is derived from the projection P_i = (exists v_{i+1..n} chi)
// evaluated at the already-selected bits: with c_i = P_i[v_j <- f_j, j < i],
//   forced-to-one  when c_i|v_i=1 & ~c_i|v_i=0,
//   free choice    when both cofactors allow,
// giving f_i = c_i|v_i=1 & (~c_i|v_i=0 | v_i).
#include "bfv/bfv.hpp"

namespace bfvr::bfv {

Bfv fromChar(Manager& m, const Bdd& chi, std::vector<unsigned> choice_vars) {
  const std::size_t n = choice_vars.size();
  if (chi.isFalse()) return Bfv::emptySet(m, std::move(choice_vars));

  // Suffix projections: proj[i] = exists v_{i+1..n} chi.
  std::vector<Bdd> proj(n);
  if (n > 0) {
    proj[n - 1] = chi;
    for (std::size_t i = n - 1; i-- > 0;) {
      const unsigned var[] = {choice_vars[i + 1]};
      proj[i] = m.exists(proj[i + 1], m.cube(var));
    }
  }

  std::vector<Bdd> comps(n);
  std::vector<Bdd> subst(m.numVars());
  for (std::size_t i = 0; i < n; ++i) {
    const Bdd c = i == 0 ? proj[0] : m.vectorCompose(proj[i], subst);
    const Bdd c1 = m.cofactor(c, choice_vars[i], true);
    const Bdd c0 = m.cofactor(c, choice_vars[i], false);
    comps[i] = c1 & (~c0 | m.var(choice_vars[i]));
    subst[choice_vars[i]] = comps[i];
  }
  return Bfv::fromComponents(m, std::move(choice_vars), std::move(comps),
                             /*trusted=*/true);
}

Bfv reorderComponents(const Bfv& f, std::span<const unsigned> perm,
                      std::vector<unsigned> new_vars) {
  if (f.isNull()) throw std::logic_error("reorderComponents on null Bfv");
  Manager& m = *f.manager();
  const std::size_t n = f.width();
  if (perm.size() != n || new_vars.size() != n) {
    throw std::invalid_argument("reorderComponents: arity mismatch");
  }
  std::vector<bool> seen(n, false);
  for (unsigned p : perm) {
    if (p >= n || seen[p]) {
      throw std::invalid_argument("reorderComponents: not a permutation");
    }
    seen[p] = true;
  }
  if (f.isEmpty()) return Bfv::emptySet(m, std::move(new_vars));
  // Rename the old choice variable of component perm[j] to new variable j
  // in the characteristic function, then re-canonicalize under the new
  // component order. The renaming need not be order-preserving — that is
  // the whole point — so it goes through simultaneous composition.
  std::vector<unsigned> rename(m.numVars());
  for (unsigned v = 0; v < rename.size(); ++v) rename[v] = v;
  for (std::size_t j = 0; j < n; ++j) {
    rename[f.choiceVars()[perm[j]]] = new_vars[j];
  }
  const Bdd chi = m.permute(f.toChar(), rename);
  return fromChar(m, chi, std::move(new_vars));
}

}  // namespace bfvr::bfv
