// Drop-in runner for real ISCAS89 benchmarks: parse a .bench file (e.g.
// s1269.bench, s3271.bench from the original distribution) and run the
// engines under a time/node budget, printing a Table 2-style row.
//
//   ./examples/bench_runner <file.bench> [seconds] [node-budget]
#include <cstdio>
#include <cstdlib>

#include "circuit/bench_io.hpp"
#include "circuit/orders.hpp"
#include "reach/engine.hpp"

using namespace bfvr;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.bench> [seconds] [node-budget]\n",
                 argv[0]);
    return 2;
  }
  circuit::Netlist n = circuit::parseBenchFile(argv[1]);
  std::printf("%s: %zu inputs, %zu latches, %zu outputs, %zu signals\n",
              n.name().c_str(), n.inputs().size(), n.latches().size(),
              n.outputs().size(), n.numSignals());

  reach::ReachOptions opts;
  opts.budget.max_seconds = argc > 2 ? std::atof(argv[2]) : 60.0;
  opts.budget.max_live_nodes =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 2000000;

  const auto order = circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0});
  std::printf("%-12s %10s %10s %6s %14s\n", "engine", "time(s)", "Peak(K)",
              "iters", "states");
  struct Run {
    const char* name;
    reach::ReachResult (*fn)(sym::StateSpace&, const reach::ReachOptions&);
  };
  const Run runs[] = {{"TR-IWLS95", reach::reachTr},
                      {"CBM-Fig1", reach::reachCbm},
                      {"BFV-Fig2", reach::reachBfv}};
  for (const Run& run : runs) {
    // StateSpace construction precedes the engine's guarded loop; catch a
    // node-budget blowup there so one engine's M.O. doesn't abort the rest.
    reach::ReachResult r;
    try {
      bdd::Manager m(0);
      sym::StateSpace s(m, n, order);
      r = run.fn(s, opts);
      r.reached_bfv.reset();  // handles die with the per-run manager
      r.reached_chi = bdd::Bdd();
    } catch (const bdd::NodeBudgetExceeded&) {
      r.status = RunStatus::kMemOut;
    }
    if (r.status == RunStatus::kDone) {
      std::printf("%-12s %10.3f %10.1f %6u %14.6g\n", run.name, r.seconds,
                  r.peak_live_nodes / 1000.0, r.iterations, r.states);
    } else {
      std::printf("%-12s %10s %10.1f %6u %14s\n", run.name,
                  to_string(r.status).c_str(), r.peak_live_nodes / 1000.0,
                  r.iterations, "-");
    }
  }
  return 0;
}
