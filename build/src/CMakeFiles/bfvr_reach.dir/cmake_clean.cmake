file(REMOVE_RECURSE
  "CMakeFiles/bfvr_reach.dir/reach/bfv_reach.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/bfv_reach.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/cbm_reach.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/cbm_reach.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/ctl.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/ctl.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/engine.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/engine.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/hybrid_reach.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/hybrid_reach.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/invariant.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/invariant.cpp.o.d"
  "CMakeFiles/bfvr_reach.dir/reach/tr_reach.cpp.o"
  "CMakeFiles/bfvr_reach.dir/reach/tr_reach.cpp.o.d"
  "libbfvr_reach.a"
  "libbfvr_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
