// Concrete simulation and the explicit-state reachability oracle.
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"

namespace bfvr::circuit {
namespace {

TEST(ConcreteSim, CounterCountsUp) {
  const Netlist n = makeCounter(4, 16);
  const ConcreteSim sim(n);
  std::vector<bool> s = sim.initialState();
  for (unsigned expect = 1; expect < 20; ++expect) {
    s = sim.step(s, {true});
    unsigned got = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (s[i]) got |= 1U << i;
    }
    EXPECT_EQ(got, expect % 16);
  }
}

TEST(ConcreteSim, CounterHoldsWhenDisabled) {
  const Netlist n = makeCounter(4, 11);
  const ConcreteSim sim(n);
  std::vector<bool> s = sim.step(sim.initialState(), {true});
  EXPECT_EQ(sim.step(s, {false}), s);
}

TEST(ConcreteSim, ModuloWraps) {
  const Netlist n = makeCounter(4, 11);
  const ConcreteSim sim(n);
  std::vector<bool> s = sim.initialState();
  for (int i = 0; i < 10; ++i) s = sim.step(s, {true});
  // At 10; next enabled step wraps to 0.
  s = sim.step(s, {true});
  for (bool b : s) EXPECT_FALSE(b);
}

TEST(ConcreteSim, InitialStateHonorsLatchInit) {
  const Netlist n = makeLfsr(4);  // seeded with 0001
  const ConcreteSim sim(n);
  const auto s = sim.initialState();
  EXPECT_TRUE(s[0]);
  EXPECT_FALSE(s[1]);
}

TEST(ConcreteSim, WidthValidation) {
  const Netlist n = makeCounter(3, 8);
  const ConcreteSim sim(n);
  EXPECT_THROW((void)sim.step({true}, {true}), std::invalid_argument);
  EXPECT_THROW((void)sim.step({true, false, true}, {}),
               std::invalid_argument);
}

TEST(ExplicitReach, CounterReachesExactlyModuloStates) {
  const auto r = explicitReach(makeCounter(5, 19));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 19U);
  // States are exactly 0..18.
  for (unsigned i = 0; i < 19; ++i) EXPECT_EQ((*r)[i], i);
}

TEST(ExplicitReach, LimitAborts) {
  const auto r = explicitReach(makeCounter(6, 64), /*limit=*/10);
  EXPECT_FALSE(r.has_value());
}

TEST(ExplicitReach, TooWideRejected) {
  Netlist n("wide");
  std::vector<SignalId> qs;
  for (unsigned i = 0; i < 30; ++i) {
    qs.push_back(n.addLatch("q" + std::to_string(i), false));
  }
  for (unsigned i = 0; i < 30; ++i) n.setLatchData(qs[i], qs[i]);
  EXPECT_THROW((void)explicitReach(n), std::invalid_argument);
}

TEST(ExplicitReach, InitialStateAlwaysIncluded) {
  const auto r = explicitReach(makeLfsr(3));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(std::find(r->begin(), r->end(), 1U) != r->end());
}

}  // namespace
}  // namespace bfvr::circuit
