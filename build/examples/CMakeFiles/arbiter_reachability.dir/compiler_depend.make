# Empty compiler generated dependencies file for arbiter_reachability.
# This may be replaced when dependencies are built.
