# Empty dependencies file for ordering_robustness.
# This may be replaced when dependencies are built.
