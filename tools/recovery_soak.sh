#!/usr/bin/env bash
# Recovery drill + chaos soak for the crash-safe serving tier.
#
# Phase A — restart-recovery smoke: bfv_serve with a journal takes the
# fault_soak manifest (deterministic injected faults) plus the chaos_soak
# counters, is SIGKILLed mid-run, restarts over the same journal, and the
# clients (reconnecting under their idempotency keys) finish the batch.
# tools/journal_check.py then audits the un-compacted journal: every
# accepted job terminal exactly once, no idempotency key admitted twice.
#
# Phase B — chaos-proxy soak: the same server behind tools/chaos_proxy.py
# (seeded torn frames, mid-frame stalls, connection drops, duplicated
# Submit frames), again SIGKILLed and restarted mid-run. The client must
# still exit 0 with every job done, and the journal audit must hold even
# though duplicated submissions were injected on the wire.
#
# Usage: recovery_soak.sh [BUILD_DIR]    (default: build)
# Artifacts left in CWD: SVC_recovery.json SVC_chaos.json
#   JOURNAL_recovery.json JOURNAL_chaos.json CHAOS_chaos.json
set -euo pipefail

BUILD=${1:-build}
BIN=$BUILD/bench
SEED=${SEED:-20260808}
SPORT=${SPORT:-21741}           # phase A server
CPORT=$((SPORT + 1))            # phase B server
PPORT=$((SPORT + 2))            # phase B chaos proxy

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_port() {
  for _ in $(seq 1 150); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "port $1 never came up" >&2
  return 1
}

serve_a() {
  "$BIN/bfv_serve" --listen "tcp:127.0.0.1:$SPORT" \
    --tenants data/svc_tenants.conf --workers 2 --checkpoint-every 1 \
    --spool spool_recovery --report --name recovery \
    --journal journal_recovery --fsync batch --no-compact \
    --log-level info &
  SRV=$!
}

serve_b() {
  "$BIN/bfv_serve" --listen "tcp:127.0.0.1:$CPORT" \
    --tenants data/svc_tenants.conf --workers 2 --checkpoint-every 1 \
    --spool spool_chaos --report --name chaos \
    --journal journal_chaos --fsync batch --no-compact \
    --idle-timeout 60 --frame-timeout 5 --send-timeout 10 \
    --log-level info &
  SRV=$!
}

echo "=== phase A: kill -9 + restart recovery (direct tcp) ==="
rm -rf journal_recovery spool_recovery
mkdir -p spool_recovery
serve_a
wait_port "$SPORT"
"$BIN/bfv_client" --connect "tcp:127.0.0.1:$SPORT" --tenant alpha \
  data/fault_soak.manifest --quiet --retry 60 --deadline 240 \
  --idem rec-faults &
CA=$!
"$BIN/bfv_client" --connect "tcp:127.0.0.1:$SPORT" --tenant bravo \
  data/chaos_soak.manifest --quiet --retry 60 --deadline 240 \
  --idem rec-counters &
CB=$!
sleep 1.5
echo "--- kill -9 server (pid $SRV) mid-run ---"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
sleep 0.5
serve_a
wait_port "$SPORT"
wait "$CA"; wait "$CB"
"$BIN/bfv_client" --connect "tcp:127.0.0.1:$SPORT" --tenant admin \
  --shutdown=drain --quiet
wait "$SRV"
grep -q '"jobs_error": 0' SVC_recovery.json
python3 tools/journal_check.py journal_recovery/journal.bin --expect-jobs 14
cp journal_recovery/JOURNAL_recovery.json .

echo "=== phase B: chaos proxy (torn/stall/drop/dup) + kill -9 restart ==="
rm -rf journal_chaos spool_chaos
mkdir -p spool_chaos
serve_b
wait_port "$CPORT"
python3 tools/chaos_proxy.py --listen "$PPORT" --connect "127.0.0.1:$CPORT" \
  --seed "$SEED" --tear 0.05 --stall 0.10 --stall-ms 200 --drop 0.05 \
  --dup 0.40 --name chaos &
PROXY=$!
wait_port "$PPORT"
"$BIN/bfv_client" --connect "tcp:127.0.0.1:$PPORT" --tenant alpha \
  data/chaos_soak.manifest --quiet --retry 200 --deadline 240 \
  --idem chaos &
CC=$!
sleep 3
echo "--- kill -9 server (pid $SRV) mid-chaos ---"
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
sleep 0.5
serve_b
wait_port "$CPORT"
wait "$CC"
"$BIN/bfv_client" --connect "tcp:127.0.0.1:$CPORT" --tenant admin \
  --shutdown=drain --quiet
wait "$SRV"
kill -TERM "$PROXY" 2>/dev/null || true
wait "$PROXY" 2>/dev/null || true
grep -q '"jobs_error": 0' SVC_chaos.json
python3 tools/journal_check.py journal_chaos/journal.bin --expect-jobs 6
cp journal_chaos/JOURNAL_chaos.json .
python3 - <<'EOF'
import json
with open("CHAOS_chaos.json") as f:
    c = json.load(f)
print("chaos counters:", c)
assert c["connections"] >= 2, "chaos proxy saw too few connections"
assert c["duplicated_submits"] >= 1, "no duplicated Submit was injected"
assert (c["torn_frames"] + c["connection_drops"] + c["mid_frame_stalls"]
        ) >= 1, "no wire fault was injected"
EOF

echo "recovery_soak: both phases passed"
