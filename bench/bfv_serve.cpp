// Reachability-as-a-service daemon: a long-lived multi-tenant job server
// over the framed binary protocol (src/svc). Clients connect with
// bfv_client (or the svc::Client library), submit manifest-format job
// lines, and stream back iteration progress and final results; the server
// schedules across tenants with smooth weighted round-robin under
// per-tenant budgets, reuses warm per-worker managers, and evicts/migrates
// jobs via checkpoints.
//
//   bfv_serve [--listen SPEC] [--workers N] [--tenants FILE] [--spool DIR]
//             [--checkpoint-every K] [--no-warm] [--no-stream]
//             [--report[=path]] [--name TAG] [--metrics-every S]
//             [--metrics-dir DIR] [--flight[=DIR]] [--log-level LEVEL]
//             [--journal DIR] [--fsync POLICY] [--no-compact]
//             [--idle-timeout S] [--frame-timeout S] [--send-timeout S]
//
//   --listen SPEC        unix:PATH (default unix:bfv_serve.sock) or
//                        tcp:HOST:PORT
//   --workers N          worker pool size (default 4)
//   --tenants FILE       tenant policy file, one
//                        name:weight[:max_running[:max_queued[:max_nodes
//                        [:max_seconds]]]] per line
//   --spool DIR          directory for eviction checkpoints (default .)
//   --checkpoint-every K snapshot cadence imposed on jobs for evictability
//                        (default 1; 0 = only jobs that opt in)
//   --no-warm            fresh manager per job (disable reset-not-destroy)
//   --no-stream          do not stream per-iteration updates
//   --report[=path]      write SVC_<name>.json at shutdown
//   --name TAG           server tag (default bfv_serve)
//   --metrics-every S    write METRICS_<name>.{prom,json} every S seconds
//                        (0 = never; a final snapshot lands at shutdown)
//   --metrics-dir DIR    where the metrics snapshots go (default .)
//   --flight[=DIR]       dump FLIGHT_<name>.json to DIR (default .) on job
//                        error, injected worker fault, and shutdown
//   --log-level LEVEL    stderr verbosity: error (default), info, debug
//   --journal DIR        durable job journal: accepted jobs survive kill -9
//                        and replay (with checkpoint resume) on restart
//   --fsync POLICY       journal durability: never|batch|always
//                        (default batch)
//   --no-compact         keep the full journal at clean shutdown (no
//                        compaction rewrite) — drill/debug aid
//   --idle-timeout S     reap sessions silent for S seconds (0 = never)
//   --frame-timeout S    cap seconds between a frame's first and last byte
//                        (0 = unlimited) — slow-loris defence
//   --send-timeout S     cap seconds a send may block on a full client
//                        socket (0 = unlimited)
//
// Runs until a client sends Shutdown (bfv_client --shutdown), SIGTERM or
// SIGINT arrives (first signal drains — finish queued + running jobs, stop
// accepting; a second signal escalates to immediate cancel), exiting 0 on
// a clean stop and 1 on a startup failure.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/log.hpp"
#include "svc/server.hpp"

using namespace bfvr;

namespace {

struct Args {
  svc::Server::Options opts;
  bool ok = true;
};

Args parseArgs(int argc, char** argv) {
  Args a;
  a.opts.endpoint = "unix:bfv_serve.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        a.ok = false;
        return "";
      }
      return argv[++i];
    };
    try {
      if (arg == "--listen") {
        a.opts.endpoint = value("--listen");
      } else if (arg == "--workers") {
        a.opts.workers = static_cast<unsigned>(std::stoul(value("--workers")));
      } else if (arg == "--tenants") {
        a.opts.tenants = svc::parseTenantsFile(value("--tenants"));
      } else if (arg == "--spool") {
        a.opts.spool_dir = value("--spool");
      } else if (arg == "--checkpoint-every") {
        a.opts.checkpoint_every =
            static_cast<unsigned>(std::stoul(value("--checkpoint-every")));
      } else if (arg == "--no-warm") {
        a.opts.warm_managers = false;
      } else if (arg == "--no-stream") {
        a.opts.stream_iterations = false;
      } else if (arg == "--report") {
        a.opts.report_path = "<default>";
      } else if (arg.rfind("--report=", 0) == 0) {
        a.opts.report_path = arg.substr(9);
      } else if (arg == "--name") {
        a.opts.name = value("--name");
      } else if (arg == "--metrics-every") {
        a.opts.metrics_every = std::stod(value("--metrics-every"));
      } else if (arg == "--metrics-dir") {
        a.opts.metrics_dir = value("--metrics-dir");
      } else if (arg == "--flight") {
        a.opts.flight_dir = ".";
      } else if (arg.rfind("--flight=", 0) == 0) {
        a.opts.flight_dir = arg.substr(9);
      } else if (arg == "--journal") {
        a.opts.journal_dir = value("--journal");
      } else if (arg == "--fsync") {
        a.opts.journal_fsync = svc::parseFsyncPolicy(value("--fsync"));
      } else if (arg == "--no-compact") {
        a.opts.journal_compact_on_shutdown = false;
      } else if (arg == "--idle-timeout") {
        a.opts.idle_timeout = std::stod(value("--idle-timeout"));
      } else if (arg == "--frame-timeout") {
        a.opts.frame_timeout = std::stod(value("--frame-timeout"));
      } else if (arg == "--send-timeout") {
        a.opts.send_timeout = std::stod(value("--send-timeout"));
      } else if (arg == "--log-level") {
        const std::string level = value("--log-level");
        obs::LogLevel parsed;
        if (!obs::parseLogLevel(level, &parsed)) {
          std::fprintf(stderr, "--log-level: expected error|info|debug, got %s\n",
                       level.c_str());
          a.ok = false;
        } else {
          obs::setLogLevel(parsed);
        }
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        a.ok = false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", arg.c_str(), e.what());
      a.ok = false;
    }
    if (!a.ok) break;
  }
  if (a.opts.report_path == "<default>") {
    a.opts.report_path = "SVC_" + a.opts.name + ".json";
  }
  return a;
}

// SIGTERM/SIGINT → graceful drain, via the self-pipe trick: the handler
// only write()s one byte (async-signal-safe); a dedicated thread turns the
// bytes into requestShutdown calls. The first signal drains, a second
// escalates to immediate cancel (requestShutdown(drain=false) on a drain
// in progress escalates it).
int g_signal_pipe[2] = {-1, -1};

extern "C" void onShutdownSignal(int) {
  const char b = 1;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: %s [--listen unix:PATH|tcp:HOST:PORT] [--workers N] "
                 "[--tenants FILE] [--spool DIR] [--checkpoint-every K] "
                 "[--no-warm] [--no-stream] [--report[=path]] [--name TAG] "
                 "[--metrics-every S] [--metrics-dir DIR] [--flight[=DIR]] "
                 "[--log-level error|info|debug] [--journal DIR] "
                 "[--fsync never|batch|always] [--no-compact] "
                 "[--idle-timeout S] [--frame-timeout S] [--send-timeout S]\n",
                 argv[0]);
    return 1;
  }
  svc::ignoreSigpipe();
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("bfv_serve: pipe");
    return 1;
  }
  try {
    svc::Server server(args.opts);
    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);
    std::thread signal_thread([&server] {
      int signals_seen = 0;
      char b = 0;
      while (::read(g_signal_pipe[0], &b, 1) == 1) {
        if (b == 0) return;  // quit sentinel from main
        ++signals_seen;
        // First signal: drain (finish queued + running, stop accepting).
        // Second: escalate to immediate cancel.
        server.requestShutdown(signals_seen < 2);
      }
    });
    std::printf("%s listening on %s (%u workers, %zu tenants)\n",
                args.opts.name.c_str(), args.opts.endpoint.c_str(),
                args.opts.workers, args.opts.tenants.size());
    std::fflush(stdout);
    server.run();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    const char quit = 0;
    [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &quit, 1);
    signal_thread.join();
    std::printf("%s stopped\n", args.opts.name.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfv_serve: %s\n", e.what());
    return 1;
  }
}
