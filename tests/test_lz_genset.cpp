// GeneratorSet (logical zonotopes, src/lz) against brute-force enumeration
// over small universes: canonical reduced form, membership/containment,
// the exact XOR family, and the soundness + exactness flags of the
// over-approximating AND/OR/union rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "lz/genset.hpp"

namespace bfvr::lz {
namespace {

Bits row(unsigned dims, std::uint64_t v) {
  Bits b(wordsFor(dims), 0);
  b[0] = v;
  return b;
}

GeneratorSet make(unsigned dims, std::uint64_t center,
                  std::initializer_list<std::uint64_t> gens) {
  GeneratorSet g(dims, row(dims, center));
  for (std::uint64_t v : gens) g.addGenerator(row(dims, v));
  return g;
}

std::set<std::uint64_t> pointsOf(const GeneratorSet& g) {
  std::set<std::uint64_t> s;
  g.forEachPoint([&](const Bits& p) { s.insert(packLow(p)); });
  return s;
}

std::uint64_t mask(unsigned dims) {
  return dims >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << dims) - 1;
}

GeneratorSet randomSet(unsigned dims, int max_gens, std::mt19937& rng) {
  std::uniform_int_distribution<std::uint64_t> d(1, mask(dims));
  GeneratorSet g(dims, row(dims, d(rng) & mask(dims)));
  std::uniform_int_distribution<int> k(0, max_gens);
  for (int i = k(rng); i > 0; --i) g.addGenerator(row(dims, d(rng)));
  return g;
}

TEST(LzGenSet, SingletonBasics) {
  GeneratorSet z(5);
  EXPECT_EQ(z.rank(), 0U);
  EXPECT_DOUBLE_EQ(z.count(), 1.0);
  EXPECT_TRUE(z.contains(row(5, 0)));
  EXPECT_FALSE(z.contains(row(5, 3)));

  const GeneratorSet s(5, row(5, 0b10110));
  EXPECT_TRUE(s.contains(row(5, 0b10110)));
  EXPECT_EQ(pointsOf(s), (std::set<std::uint64_t>{0b10110}));
}

TEST(LzGenSet, AddGeneratorRejectsDependentRows) {
  GeneratorSet g(6);
  EXPECT_TRUE(g.addGenerator(row(6, 0b000011)));
  EXPECT_TRUE(g.addGenerator(row(6, 0b001100)));
  EXPECT_FALSE(g.addGenerator(row(6, 0b001111)));  // xor of the two
  EXPECT_FALSE(g.addGenerator(row(6, 0)));
  EXPECT_EQ(g.rank(), 2U);
  EXPECT_DOUBLE_EQ(g.count(), 4.0);
}

TEST(LzGenSet, CanonicalFormIsInsertionOrderIndependent) {
  std::mt19937 rng(7);
  std::vector<std::uint64_t> gens{0b1011, 0b0110, 0b1101, 0b0101};
  const GeneratorSet ref = make(4, 0b1001, {gens[0], gens[1], gens[2],
                                            gens[3]});
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(gens.begin(), gens.end(), rng);
    GeneratorSet g(4, row(4, 0b1001));
    for (std::uint64_t v : gens) g.addGenerator(row(4, v));
    ASSERT_TRUE(g.sameSet(ref));
    // Canonical: not just the same coset, the same representation.
    EXPECT_EQ(g.center(), ref.center());
    EXPECT_EQ(g.generators(), ref.generators());
  }
}

TEST(LzGenSet, ForEachPointVisitsExactlyTheSet) {
  const GeneratorSet g = make(8, 0x5A, {0x03, 0x14, 0x60});
  const std::set<std::uint64_t> pts = pointsOf(g);
  EXPECT_EQ(pts.size(), static_cast<std::size_t>(g.count()));
  for (std::uint64_t p : pts) EXPECT_TRUE(g.contains(row(8, p)));
  unsigned non_members = 0;
  for (std::uint64_t v = 0; v < 256; ++v) {
    if (!pts.count(v)) {
      EXPECT_FALSE(g.contains(row(8, v)));
      ++non_members;
    }
  }
  EXPECT_EQ(non_members, 256U - 8U);
}

TEST(LzGenSet, ContainmentAndIntersectionMatchBrute) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const GeneratorSet a = randomSet(7, 4, rng);
    const GeneratorSet b = randomSet(7, 4, rng);
    const auto pa = pointsOf(a);
    const auto pb = pointsOf(b);
    EXPECT_EQ(a.containsSet(b),
              std::includes(pa.begin(), pa.end(), pb.begin(), pb.end()));
    bool meet = false;
    for (std::uint64_t p : pb) meet |= pa.count(p) != 0;
    EXPECT_EQ(a.intersects(b), meet);
    EXPECT_EQ(a.sameSet(b), pa == pb);
  }
}

TEST(LzGenSet, XorFamilyIsExact) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const GeneratorSet a = randomSet(6, 3, rng);
    const GeneratorSet b = randomSet(6, 3, rng);
    std::set<std::uint64_t> want_xor, want_xnor;
    for (std::uint64_t x : pointsOf(a)) {
      for (std::uint64_t y : pointsOf(b)) {
        want_xor.insert(x ^ y);
        want_xnor.insert(~(x ^ y) & mask(6));
      }
    }
    EXPECT_EQ(pointsOf(GeneratorSet::xorOf(a, b)), want_xor);
    EXPECT_EQ(pointsOf(GeneratorSet::xnorOf(a, b)), want_xnor);
    std::set<std::uint64_t> want_not;
    for (std::uint64_t x : pointsOf(a)) want_not.insert(~x & mask(6));
    EXPECT_EQ(pointsOf(GeneratorSet::notOf(a)), want_not);
  }
}

TEST(LzGenSet, AndOrAreSoundAndFlagExactness) {
  std::mt19937 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const GeneratorSet a = randomSet(6, 3, rng);
    const GeneratorSet b = randomSet(6, 3, rng);
    std::set<std::uint64_t> want_and, want_or;
    for (std::uint64_t x : pointsOf(a)) {
      for (std::uint64_t y : pointsOf(b)) {
        want_and.insert(x & y);
        want_or.insert(x | y);
      }
    }
    bool and_exact = false, or_exact = false;
    const auto got_and = pointsOf(GeneratorSet::andOf(a, b, &and_exact));
    const auto got_or = pointsOf(GeneratorSet::orOf(a, b, &or_exact));
    // Sound: over-approximations contain the true image.
    EXPECT_TRUE(std::includes(got_and.begin(), got_and.end(),
                              want_and.begin(), want_and.end()));
    EXPECT_TRUE(std::includes(got_or.begin(), got_or.end(), want_or.begin(),
                              want_or.end()));
    // The exactness flag never lies (it may be conservatively false).
    if (and_exact) {
      EXPECT_EQ(got_and, want_and);
    }
    if (or_exact) {
      EXPECT_EQ(got_or, want_or);
    }
  }
}

TEST(LzGenSet, AndWithSingletonIsExact) {
  std::mt19937 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const GeneratorSet a = randomSet(6, 3, rng);
    const GeneratorSet s(6, row(6, trial * 5 % 64));
    bool exact = false;
    const auto got = pointsOf(GeneratorSet::andOf(a, s, &exact));
    EXPECT_TRUE(exact);
    std::set<std::uint64_t> want;
    for (std::uint64_t x : pointsOf(a)) {
      want.insert(x & static_cast<std::uint64_t>(trial * 5 % 64));
    }
    EXPECT_EQ(got, want);
  }
}

TEST(LzGenSet, UnionHullExactFlagMatchesBrute) {
  std::mt19937 rng(23);
  int exact_seen = 0, inexact_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const GeneratorSet a = randomSet(6, 3, rng);
    const GeneratorSet b = randomSet(6, 3, rng);
    bool exact = false;
    const GeneratorSet h = GeneratorSet::unionHull(a, b, &exact);
    std::set<std::uint64_t> want = pointsOf(a);
    for (std::uint64_t p : pointsOf(b)) want.insert(p);
    const auto got = pointsOf(h);
    EXPECT_TRUE(std::includes(got.begin(), got.end(), want.begin(),
                              want.end()));
    EXPECT_EQ(exact, got == want);
    (exact ? exact_seen : inexact_seen) += 1;
  }
  // The trial mix must exercise both verdicts for the flag check to mean
  // anything.
  EXPECT_GT(exact_seen, 0);
  EXPECT_GT(inexact_seen, 0);
}

TEST(LzGenSet, UnionHullKnownCases) {
  // Containment: hull of nested sets is the larger set, exactly.
  const GeneratorSet big = make(5, 0, {0b00001, 0b00010, 0b00100});
  const GeneratorSet small = make(5, 0b00011, {0b00100});
  bool exact = false;
  const GeneratorSet h1 = GeneratorSet::unionHull(big, small, &exact);
  EXPECT_TRUE(exact);
  EXPECT_TRUE(h1.sameSet(big));

  // Disjoint equal-rank cosets whose hull has rank r+1: exact union.
  const GeneratorSet even = make(4, 0b0000, {0b0011});
  const GeneratorSet odd = make(4, 0b1000, {0b0011});
  const GeneratorSet h2 = GeneratorSet::unionHull(even, odd, &exact);
  EXPECT_TRUE(exact);
  EXPECT_EQ(h2.rank(), 2U);

  // Disjoint with rank gap: hull over-approximates and says so.
  const GeneratorSet one = make(4, 0b0100, {});
  const GeneratorSet four = make(4, 0b0000, {0b0001, 0b0010});
  const GeneratorSet h3 = GeneratorSet::unionHull(one, four, &exact);
  EXPECT_FALSE(exact);
  EXPECT_GE(h3.count(), 5.0);
}

TEST(LzGenSet, WideRowsSpanMultipleWords) {
  // dims > 64 exercises the multi-word row paths.
  const unsigned dims = 100;
  Bits c(wordsFor(dims), 0);
  setBit(c, 80, true);
  GeneratorSet g(dims, c);
  Bits g1(wordsFor(dims), 0);
  setBit(g1, 3, true);
  setBit(g1, 97, true);
  ASSERT_TRUE(g.addGenerator(g1));
  EXPECT_EQ(g.rank(), 1U);

  Bits member = c;
  xorInto(member, g1);
  EXPECT_TRUE(g.contains(member));
  setBit(member, 50, true);
  EXPECT_FALSE(g.contains(member));
}

}  // namespace
}  // namespace bfvr::lz
