
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/brute.cpp" "tests/CMakeFiles/bfvr_tests.dir/support/brute.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/support/brute.cpp.o.d"
  "/root/repo/tests/test_bdd_basic.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_basic.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_basic.cpp.o.d"
  "/root/repo/tests/test_bdd_cofactor.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_cofactor.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_cofactor.cpp.o.d"
  "/root/repo/tests/test_bdd_compose.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_compose.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_compose.cpp.o.d"
  "/root/repo/tests/test_bdd_count.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_count.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_count.cpp.o.d"
  "/root/repo/tests/test_bdd_gc.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_gc.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_gc.cpp.o.d"
  "/root/repo/tests/test_bdd_ops.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_ops.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_ops.cpp.o.d"
  "/root/repo/tests/test_bdd_quant.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_quant.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bdd_quant.cpp.o.d"
  "/root/repo/tests/test_bench_io.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bench_io.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bench_io.cpp.o.d"
  "/root/repo/tests/test_bfv_basic.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_basic.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_basic.cpp.o.d"
  "/root/repo/tests/test_bfv_convert.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_convert.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_convert.cpp.o.d"
  "/root/repo/tests/test_bfv_interleaved.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_interleaved.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_interleaved.cpp.o.d"
  "/root/repo/tests/test_bfv_intersect.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_intersect.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_intersect.cpp.o.d"
  "/root/repo/tests/test_bfv_quantify.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_quantify.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_quantify.cpp.o.d"
  "/root/repo/tests/test_bfv_reparam.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_reparam.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_reparam.cpp.o.d"
  "/root/repo/tests/test_bfv_union.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_union.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_bfv_union.cpp.o.d"
  "/root/repo/tests/test_cdec.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_cdec.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_cdec.cpp.o.d"
  "/root/repo/tests/test_concrete_sim.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_concrete_sim.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_concrete_sim.cpp.o.d"
  "/root/repo/tests/test_ctl.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_ctl.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_ctl.cpp.o.d"
  "/root/repo/tests/test_data_files.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_data_files.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_data_files.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_image.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_image.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_image.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_invariant.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_invariant.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_invariant.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_orders.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_orders.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_orders.cpp.o.d"
  "/root/repo/tests/test_reach.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_reach.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_reach.cpp.o.d"
  "/root/repo/tests/test_sym.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_sym.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_sym.cpp.o.d"
  "/root/repo/tests/test_transition.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_transition.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_transition.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/bfvr_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/bfvr_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_cdec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
