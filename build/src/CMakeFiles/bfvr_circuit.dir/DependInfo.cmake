
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bench_io.cpp" "src/CMakeFiles/bfvr_circuit.dir/circuit/bench_io.cpp.o" "gcc" "src/CMakeFiles/bfvr_circuit.dir/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/concrete_sim.cpp" "src/CMakeFiles/bfvr_circuit.dir/circuit/concrete_sim.cpp.o" "gcc" "src/CMakeFiles/bfvr_circuit.dir/circuit/concrete_sim.cpp.o.d"
  "/root/repo/src/circuit/generators.cpp" "src/CMakeFiles/bfvr_circuit.dir/circuit/generators.cpp.o" "gcc" "src/CMakeFiles/bfvr_circuit.dir/circuit/generators.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/bfvr_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/bfvr_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/orders.cpp" "src/CMakeFiles/bfvr_circuit.dir/circuit/orders.cpp.o" "gcc" "src/CMakeFiles/bfvr_circuit.dir/circuit/orders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
