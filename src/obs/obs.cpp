#include "obs/obs.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace bfvr::obs {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kImage:
      return "image";
    case Phase::kReparam:
      return "reparam";
    case Phase::kUnion:
      return "union";
    case Phase::kCheck:
      return "check";
    case Phase::kConvert:
      return "convert";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

double PhaseSeconds::total() const noexcept {
  double t = 0.0;
  for (const double s : seconds) t += s;
  return t;
}

PhaseSeconds PhaseSeconds::since(const PhaseSeconds& before) const noexcept {
  PhaseSeconds d;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    d.seconds[i] = seconds[i] - before.seconds[i];
  }
  return d;
}

void PhaseTimer::push(Phase p) {
  const double t = now();
  if (!stack_.empty()) totals_[stack_.back()] += t - mark_;
  stack_.push_back(p);
  mark_ = t;
}

void PhaseTimer::popTopLocked(double t) {
  totals_[stack_.back()] += t - mark_;
  stack_.pop_back();
  mark_ = t;  // the parent scope (if any) resumes from here
}

void PhaseTimer::pop() {
  if (stack_.empty()) {
    throw std::logic_error("PhaseTimer::pop: no phase is open");
  }
  popTopLocked(now());
}

void PhaseTimer::pop(Phase expected) {
  if (stack_.empty()) {
    throw std::logic_error(std::string("PhaseTimer::pop(") +
                           to_string(expected) + "): no phase is open");
  }
  if (stack_.back() != expected) {
    // Overlapping (non-LIFO) begin/end: attributing the interval to either
    // phase would be wrong, so refuse loudly instead of guessing.
    throw std::logic_error(std::string("PhaseTimer::pop(") +
                           to_string(expected) +
                           "): phases overlap — innermost open phase is " +
                           to_string(stack_.back()));
  }
  popTopLocked(now());
}

void PhaseTimer::popScope(Phase expected) noexcept {
  assert(!stack_.empty() && "PhaseTimer scope closed with no phase open");
  assert(stack_.back() == expected &&
         "PhaseTimer scopes closed out of order (overlapping phases)");
  if (stack_.empty()) return;  // release-mode recovery: nothing to close
  (void)expected;
  popTopLocked(now());
}

}  // namespace bfvr::obs
