// Multi-tenant admission control and fair scheduling.
//
// Admission: each tenant carries a config (weight, concurrency cap, queue
// cap, node/time budget ceilings). A submission is first clamped — its
// requested budgets are reduced to the tenant's ceilings, never raised —
// then counted against the queue cap; over-cap submissions are rejected
// with a reason naming the limit.
//
// Fairness: smooth weighted round-robin over tenants with runnable jobs.
// Every pick, each contending tenant's credit grows by its weight, the
// highest-credit tenant wins and pays the total weight back. Over any
// window the dispatch shares converge to the weight ratio, and the
// interleaving is smooth (a weight-3 tenant gets 3 of every 6 picks spread
// out, not 3 in a burst). Per-tenant order stays FIFO — except a job
// requeued after eviction, which goes to the *front* so migration resumes
// before new work starts.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "run/run.hpp"

namespace bfvr::svc {

/// Per-tenant policy knobs. A default-constructed config is "unlimited
/// within the server's own limits" with weight 1.
struct TenantConfig {
  std::string name;
  std::uint32_t weight = 1;       ///< WRR share (>= 1)
  std::uint32_t max_running = 0;  ///< concurrent running jobs; 0 = workers
  std::uint32_t max_queued = 0;   ///< waiting jobs; 0 = unlimited
  std::uint64_t max_nodes = 0;    ///< live-node budget ceiling; 0 = none
  double max_seconds = 0.0;       ///< deadline ceiling; 0 = none
};

/// Parse "name:weight[:max_running[:max_queued[:max_nodes[:max_seconds]]]]"
/// (one tenant per line; '#' comments). Throws svc::Error with the line
/// number on malformed input.
std::vector<TenantConfig> parseTenantsFile(const std::string& path);
std::vector<TenantConfig> parseTenantsString(const std::string& text);

/// One queued (or requeued) job, as the scheduler sees it.
struct QueuedJob {
  std::uint64_t id = 0;
  std::uint64_t session = 0;  ///< owning session, for routing frames back
  std::string tenant;
  run::JobSpec spec;
  /// Worker to steer away from (run::WorkerPool::kAnyWorker when free):
  /// set on requeue-after-eviction so the resume migrates.
  unsigned avoid_worker = run::WorkerPool::kAnyWorker;
  /// Evictions this job has survived so far.
  std::uint32_t evictions = 0;
  /// Client idempotency key ("" = none): duplicate submissions carrying
  /// the same key reattach to this job instead of enqueuing a new one.
  std::string idem;
};

/// The fair submission queue. Not thread-safe: the server serializes all
/// access under its own mutex.
class FairQueue {
 public:
  /// Register tenants up front. Unknown tenants submitting later are
  /// auto-registered with a default config (weight 1).
  explicit FairQueue(std::vector<TenantConfig> tenants = {});

  /// Admission check + clamp. On success the spec's budgets have been
  /// clamped to the tenant ceilings and the job is queued; on failure
  /// returns the rejection reason and queues nothing.
  std::optional<std::string> admit(QueuedJob job);

  /// Requeue an evicted job at the front of its tenant's line, bypassing
  /// the queue cap (the job was already admitted once).
  void requeueFront(QueuedJob job);

  /// Pick the next job to dispatch under smooth WRR, honouring per-tenant
  /// max_running (tenants at their cap do not contend). Returns nullopt
  /// when nothing is runnable. The caller must pair every successful pick
  /// with a later release() for the same tenant.
  std::optional<QueuedJob> pick();

  /// A picked job finished (or was dropped): release its running slot.
  void release(const std::string& tenant);

  /// Drop every queued job belonging to `session` (client disconnected).
  /// Returns the dropped jobs so the server can account for them.
  std::vector<QueuedJob> dropSession(std::uint64_t session);

  /// Drop everything still queued (immediate shutdown). Running slots and
  /// the dispatch log are untouched.
  std::vector<QueuedJob> dropAll();

  /// Remove one specific queued job (client cancel before dispatch).
  std::optional<QueuedJob> dropJob(std::uint64_t id);

  /// Re-point a queued job at a new owning session (a client reconnected
  /// and resubmitted with the job's idempotency key). Returns false when
  /// no such job is queued (it may be running or already finished).
  bool reattachSession(std::uint64_t job_id, std::uint64_t session);

  std::size_t queuedCount() const noexcept;
  std::uint32_t runningCount(const std::string& tenant) const;

  /// Tenant names in registration order (auto-registered ones appended).
  std::vector<std::string> tenantNames() const;
  const TenantConfig* tenantConfig(const std::string& name) const;

  /// Dispatch log: tenant name per pick(), in order — the soak test's
  /// fairness evidence.
  const std::vector<std::string>& dispatchLog() const noexcept {
    return dispatch_log_;
  }

 private:
  struct Tenant {
    TenantConfig cfg;
    std::int64_t credit = 0;
    std::uint32_t running = 0;
    std::deque<QueuedJob> waiting;
  };

  Tenant& tenantFor(const std::string& name);

  std::vector<std::unique_ptr<Tenant>> tenants_;  // stable registration order
  std::vector<std::string> dispatch_log_;
};

}  // namespace bfvr::svc
