#!/usr/bin/env python3
"""Exactly-once auditor for the bfv_serve job journal.

Decodes a journal.bin (see src/svc/journal.hpp for the record layout) and
asserts the recovery-drill contract over the whole file — which, when the
server ran with --no-compact, spans every process lifetime that appended
to it, crashes included:

  * every job with an `accepted` record has exactly one `done` record
    (no lost jobs, no double execution across a kill -9 + restart);
  * no `done`, `dispatched` or `checkpointed` record references a job
    that was never accepted;
  * no idempotency key maps to more than one job id (a duplicated Submit
    must be deduplicated, never re-admitted under a fresh id);
  * every record frame is well-formed (magic, version, event, CRC); a
    torn tail is tolerated and reported, torn *middles* are not.

Exit 0 when the contract holds, 1 with a per-violation report otherwise.

Usage:
    journal_check.py JOURNAL_DIR/journal.bin [--expect-jobs N]
"""

import argparse
import struct
import sys
import zlib

MAGIC = b"BFVJ"
VERSION = 1
HEADER = 16
EVENTS = {1: "accepted", 2: "dispatched", 3: "checkpointed", 4: "done"}


class Cursor:
    def __init__(self, buf):
        self.buf = buf
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.buf):
            raise ValueError("truncated payload")
        out = self.buf[self.pos:self.pos + n]
        self.pos += n
        return out

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def string(self):
        (n,) = struct.unpack("<I", self.take(4))
        return self.take(n).decode("utf-8", errors="replace")


def decode_records(data):
    """Yields (event, record-dict); stops at a torn tail, raises on a
    corrupt middle (anything undecodable that is *followed* by more
    bytes that decode — we cannot tell, so any undecodable point simply
    ends the scan and the caller reports the remainder)."""
    off = 0
    records = []
    while off + HEADER <= len(data):
        magic, ver, event, reserved, length, crc = struct.unpack_from(
            "<4sBBHII", data, off)
        if (magic != MAGIC or ver != VERSION or event not in EVENTS
                or reserved != 0):
            break
        if off + HEADER + length > len(data):
            break
        payload = data[off + HEADER:off + HEADER + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        c = Cursor(payload)
        try:
            rec = {
                "event": EVENTS[event],
                "job": c.u64(),
                "tenant": c.string(),
                "idem": c.string(),
                "line": c.string(),
                "iteration": c.u64(),
                "status": c.string(),
                "message": c.string(),
                "states": c.f64(),
                "seconds": c.f64(),
            }
        except ValueError:
            break
        if c.pos != len(payload):
            break
        records.append(rec)
        off += HEADER + length
    return records, len(data) - off


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("journal", help="path to journal.bin")
    ap.add_argument("--expect-jobs", type=int, default=0,
                    help="require exactly N accepted jobs (0 = any)")
    args = ap.parse_args()

    with open(args.journal, "rb") as f:
        data = f.read()
    records, tail = decode_records(data)

    accepted = {}   # job -> accepted record
    done = {}       # job -> [done records]
    orphans = []    # non-accepted events with no accepted job
    idem_to_jobs = {}
    for rec in records:
        job = rec["job"]
        if rec["event"] == "accepted":
            accepted[job] = rec
            if rec["idem"]:
                idem_to_jobs.setdefault(rec["idem"], set()).add(job)
        else:
            if job not in accepted:
                orphans.append(rec)
            if rec["event"] == "done":
                done.setdefault(job, []).append(rec)

    failures = []
    for job, rec in sorted(accepted.items()):
        n = len(done.get(job, []))
        if n != 1:
            failures.append(
                f"job {job} ({rec['line'][:50]!r}): {n} done record(s), "
                "want exactly 1")
    for rec in orphans:
        failures.append(
            f"{rec['event']} record for job {rec['job']} with no accepted "
            "record")
    for idem, jobs in sorted(idem_to_jobs.items()):
        if len(jobs) > 1:
            failures.append(
                f"idempotency key {idem!r} admitted as {len(jobs)} distinct "
                f"jobs: {sorted(jobs)}")
    if args.expect_jobs and len(accepted) != args.expect_jobs:
        failures.append(
            f"{len(accepted)} accepted job(s), expected {args.expect_jobs}")

    statuses = {}
    for recs in done.values():
        for rec in recs:
            statuses[rec["status"]] = statuses.get(rec["status"], 0) + 1
    print(f"journal_check: {len(records)} record(s), {len(accepted)} "
          f"accepted job(s), terminal statuses {statuses or '{}'}"
          + (f", torn tail {tail} byte(s)" if tail else ""))
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("journal_check: every accepted job terminal exactly once")
    return 0


if __name__ == "__main__":
    sys.exit(main())
