#include "circuit/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bfvr::circuit {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

GateOp opFromName(std::string op, const std::string& line) {
  for (char& c : op) c = static_cast<char>(std::toupper(c));
  if (op == "AND") return GateOp::kAnd;
  if (op == "NAND") return GateOp::kNand;
  if (op == "OR") return GateOp::kOr;
  if (op == "NOR") return GateOp::kNor;
  if (op == "XOR") return GateOp::kXor;
  if (op == "XNOR") return GateOp::kXnor;
  if (op == "NOT" || op == "INV") return GateOp::kNot;
  if (op == "BUF" || op == "BUFF") return GateOp::kBuf;
  if (op == "DFF") return GateOp::kLatch;
  throw std::invalid_argument("bench: unknown op '" + op + "' in: " + line);
}

const char* opName(GateOp op) {
  switch (op) {
    case GateOp::kAnd:
      return "AND";
    case GateOp::kNand:
      return "NAND";
    case GateOp::kOr:
      return "OR";
    case GateOp::kNor:
      return "NOR";
    case GateOp::kXor:
      return "XOR";
    case GateOp::kXnor:
      return "XNOR";
    case GateOp::kNot:
      return "NOT";
    case GateOp::kBuf:
      return "BUFF";
    case GateOp::kLatch:
      return "DFF";
    default:
      throw std::logic_error("opName: not a bench gate");
  }
}

struct ParsedGate {
  std::string target;
  GateOp op;
  std::vector<std::string> args;
};

}  // namespace

Netlist parseBench(std::istream& in, const std::string& name) {
  Netlist n(name);
  std::vector<std::string> output_names;
  std::vector<ParsedGate> gates;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t open = line.find('(');
    const std::size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      throw std::invalid_argument("bench: malformed line: " + line);
    }
    const std::string args_str = line.substr(open + 1, close - open - 1);
    std::vector<std::string> args;
    std::stringstream ss(args_str);
    std::string tok;
    while (std::getline(ss, tok, ',')) args.push_back(trim(tok));

    const std::string head = trim(line.substr(0, open));
    const std::size_t eq = head.find('=');
    if (eq == std::string::npos) {
      std::string kw = head;
      for (char& c : kw) c = static_cast<char>(std::toupper(c));
      if (kw == "INPUT") {
        n.addInput(args.at(0));
      } else if (kw == "OUTPUT") {
        output_names.push_back(args.at(0));
      } else {
        throw std::invalid_argument("bench: malformed line: " + line);
      }
      continue;
    }
    ParsedGate g;
    g.target = trim(head.substr(0, eq));
    g.op = opFromName(trim(head.substr(eq + 1)), line);
    g.args = std::move(args);
    gates.push_back(std::move(g));
  }

  // First pass: declare latches (their outputs may be used before their
  // data-input logic is defined).
  for (const ParsedGate& g : gates) {
    if (g.op == GateOp::kLatch) n.addLatch(g.target, /*init_value=*/false);
  }
  // Second pass: create combinational gates in dependency order. A simple
  // worklist handles forward references.
  std::vector<const ParsedGate*> pending;
  for (const ParsedGate& g : gates) {
    if (g.op != GateOp::kLatch) pending.push_back(&g);
  }
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    std::vector<const ParsedGate*> next;
    for (const ParsedGate* g : pending) {
      bool ready = true;
      for (const std::string& a : g->args) {
        if (!n.hasSignal(a)) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        next.push_back(g);
        continue;
      }
      std::vector<SignalId> fanins;
      fanins.reserve(g->args.size());
      for (const std::string& a : g->args) fanins.push_back(n.signal(a));
      n.addGate(g->op, std::move(fanins), g->target);
      progress = true;
    }
    pending = std::move(next);
  }
  if (!pending.empty()) {
    throw std::invalid_argument("bench: unresolved signal in gate " +
                                pending.front()->target);
  }
  // Close latch loops.
  for (const ParsedGate& g : gates) {
    if (g.op == GateOp::kLatch) {
      n.setLatchData(n.signal(g.target), n.signal(g.args.at(0)));
    }
  }
  for (const std::string& o : output_names) n.markOutput(n.signal(o));
  n.validate();
  return n;
}

Netlist parseBenchString(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return parseBench(is, name);
}

Netlist parseBenchFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string base = path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base.erase(0, slash + 1);
  return parseBench(is, base);
}

std::string toBench(const Netlist& n) {
  std::ostringstream os;
  os << "# " << n.name() << "\n";
  for (SignalId i : n.inputs()) os << "INPUT(" << n.gate(i).name << ")\n";
  for (SignalId o : n.outputs()) os << "OUTPUT(" << n.gate(o).name << ")\n";
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    const Gate& g = n.gate(n.latches()[p]);
    os << g.name << " = DFF(" << n.gate(n.latchData(p)).name << ")\n";
  }
  for (SignalId id = 0; id < n.numSignals(); ++id) {
    const Gate& g = n.gate(id);
    if (isSource(g.op)) continue;
    // Constants are emitted as degenerate AND/OR of themselves only when
    // they came from a parsed file; generator circuits avoid constants in
    // bench output by construction.
    if (g.op == GateOp::kConst0 || g.op == GateOp::kConst1) {
      throw std::logic_error("toBench: constants are not representable");
    }
    os << g.name << " = " << opName(g.op) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i != 0) os << ", ";
      os << n.gate(g.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace bfvr::circuit
