// Machine- and human-readable run reports for a RunTrace: one JSON object
// per run (nested per-iteration records and manager events — the payload of
// the benches' `--trace` files) and an aligned-column text table for
// eyeballing where a run's time and nodes went.
//
// obs sits below reach, so the run-level summary arrives as a RunMeta the
// caller fills from its ReachResult (see bench/json.hpp for the adapter).
#pragma once

#include <string>

#include "obs/obs.hpp"

namespace bfvr::obs {

/// Run-level summary attached to a trace report; mirrors the fields of
/// reach::ReachResult the bench summaries already publish.
struct RunMeta {
  std::string circuit;
  std::string order;
  std::string engine;
  std::string status = "done";  ///< to_string(RunStatus) tag
  double seconds = 0.0;
  unsigned iterations = 0;
  double states = 0.0;
  std::size_t peak_live_nodes = 0;
  bdd::OpStats ops;  ///< whole-run counters (for the overall hit rate)
};

/// Computed-cache hit rate of a counter snapshot (0 when no lookups).
double cacheHitRate(const bdd::OpStats& ops) noexcept;

/// One JSON object: meta fields, phase totals, `trace` (array of iteration
/// records with phase_seconds / ops_delta / cache_hit_rate) and `events`.
std::string reportJson(const RunMeta& meta, const RunTrace& trace);

/// Aligned-column text rendering of the same report.
std::string reportTable(const RunMeta& meta, const RunTrace& trace);

}  // namespace bfvr::obs
