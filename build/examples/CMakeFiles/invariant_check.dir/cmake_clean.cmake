file(REMOVE_RECURSE
  "CMakeFiles/invariant_check.dir/invariant_check.cpp.o"
  "CMakeFiles/invariant_check.dir/invariant_check.cpp.o.d"
  "invariant_check"
  "invariant_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
