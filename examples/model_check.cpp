// Safety model checking with counterexample traces — the paper's §4
// future work ("a symbolic simulation based model checker") built on the
// Fig. 2 flow: the traversal runs on Boolean functional vectors and stops
// at the first frontier that intersects the bad states; the trace is
// reconstructed from the onion rings and replayed concretely.
//
//   ./examples/model_check
#include <cstdio>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/ctl.hpp"
#include "reach/invariant.hpp"

using namespace bfvr;

namespace {

void printTrace(const circuit::Netlist& n, const reach::InvariantResult& r) {
  if (r.holds) {
    std::printf("  invariant HOLDS after %u iterations (%.4f s)\n",
                r.iterations, r.seconds);
    return;
  }
  std::printf("  VIOLATED — counterexample of length %zu:\n",
              r.trace.size());
  auto printBits = [](const std::vector<bool>& bits) {
    for (bool b : bits) std::printf("%d", b ? 1 : 0);
  };
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    std::printf("    step %2zu: state ", i);
    printBits(r.trace[i].state);
    std::printf("  inputs ");
    printBits(r.trace[i].inputs);
    std::printf("\n");
  }
  std::printf("    bad state:     ");
  printBits(*r.bad_state);
  std::printf("\n");
  // Replay through the concrete simulator as an independent witness check.
  const circuit::ConcreteSim sim(n);
  std::vector<bool> cur = sim.initialState();
  for (const reach::TraceStep& step : r.trace) {
    cur = sim.step(cur, step.inputs);
  }
  std::printf("    concrete replay reaches the bad state: %s\n",
              cur == *r.bad_state ? "yes" : "NO (bug!)");
}

}  // namespace

int main() {
  // Property 1 (holds): a mod-11 counter never exceeds 10.
  {
    const circuit::Netlist n = circuit::makeCounter(4, 11);
    bdd::Manager m(0);
    sym::StateSpace s(m, n,
                      circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
    bdd::Bdd bad = m.zero();
    for (unsigned v = 11; v < 16; ++v) {
      bdd::Bdd cube = m.one();
      for (unsigned p = 0; p < 4; ++p) {
        const bdd::Bdd var = m.var(s.currentVar(p));
        cube &= ((v >> p) & 1U) != 0 ? var : ~var;
      }
      bad |= cube;
    }
    std::printf("AG (cnt <= 10) on %s:\n", n.name().c_str());
    printTrace(n, reach::checkInvariant(s, bad));
  }

  // Property 2 (fails): the same counter "never reaches 9" — the checker
  // must produce the 9-step enable sequence.
  {
    const circuit::Netlist n = circuit::makeCounter(4, 11);
    bdd::Manager m(0);
    sym::StateSpace s(m, n,
                      circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
    bdd::Bdd bad = m.one();
    for (unsigned p = 0; p < 4; ++p) {
      const bdd::Bdd var = m.var(s.currentVar(p));
      bad &= ((9U >> p) & 1U) != 0 ? var : ~var;
    }
    std::printf("\nAG (cnt != 9) on %s:\n", n.name().c_str());
    printTrace(n, reach::checkInvariant(s, bad));
  }

  // Property 3 (fails): a FIFO controller can fill up.
  {
    const circuit::Netlist n = circuit::makeFifoCtrl(2);
    bdd::Manager m(0);
    sym::StateSpace s(m, n,
                      circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
    const bdd::Bdd bad = m.var(s.currentVar(6));  // cnt top bit: full
    std::printf("\nAG (!full) on %s (expected to fail):\n", n.name().c_str());
    printTrace(n, reach::checkInvariant(s, bad));
  }

  // Full CTL on the FIFO controller: branching-time properties beyond
  // plain safety.
  {
    using reach::Ctl;
    const circuit::Netlist n = circuit::makeFifoCtrl(2);
    bdd::Manager m(0);
    sym::StateSpace s(m, n,
                      circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
    const sym::TransitionRelation tr(s);
    const Ctl full = Ctl::atom(m.var(s.currentVar(6)));
    bdd::Bdd empty_chi = m.one();
    for (unsigned i = 4; i < 7; ++i) empty_chi &= ~m.var(s.currentVar(i));
    const Ctl empty = Ctl::atom(empty_chi);
    std::printf("\nCTL on %s:\n", n.name().c_str());
    std::printf("  EF full           : %s\n",
                holdsInInit(s, tr, Ctl::EF(full)) ? "holds" : "fails");
    std::printf("  AF full           : %s (pop/idle paths never fill)\n",
                holdsInInit(s, tr, Ctl::AF(full)) ? "holds" : "fails");
    std::printf("  AG EF empty       : %s (can always drain)\n",
                holdsInInit(s, tr, Ctl::AG(Ctl::EF(empty))) ? "holds"
                                                            : "fails");
    std::printf("  AG !(full&&empty) : %s\n",
                holdsInInit(s, tr, Ctl::AG(!(full && empty))) ? "holds"
                                                              : "fails");
    std::printf("  E[!full U full]   : %s\n",
                holdsInInit(s, tr, Ctl::EU(!full, full)) ? "holds" : "fails");
  }
  return 0;
}
