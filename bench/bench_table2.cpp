// Experiment: Table 2 of the paper — reachability analysis with fixed
// variable orders: the characteristic-function baseline ("VIS - IWLS95")
// against the Boolean-functional-vector flow ("BFV"), reporting runtime and
// peak live BDD nodes, with T.O. / M.O. entries when a budget trips.
//
// The circuit suite stands in for the ISCAS89 benchmarks (see DESIGN.md §3):
//   twin16/twin20  - functional-dependency-rich (the s3271/s4863 role:
//                    BFV completes everywhere, chi blows up / M.O.s)
//   lfsr12, cnt10  - long-diameter shift/counter structures (the s1512
//                    role: the chi flow wins, BFV pays re-parameterization
//                    on every one of thousands of iterations)
//   fifo4          - redundant occupancy encoding (mixed)
//   arb12          - one-hot control (both easy; sanity row)
//   rnd_*          - random sequential logic (generic rows)
#include <cstring>

#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  JsonLog log = jsonLogFromArgs(argc, argv, "table2");
  JsonLog trace = traceLogFromArgs(argc, argv, "table2");

  struct Row {
    circuit::Netlist n;
    std::size_t node_budget;
  };
  std::vector<Row> rows;
  rows.push_back({circuit::makeTwinShift(16), 400000});
  if (!quick) rows.push_back({circuit::makeTwinShift(20), 400000});
  rows.push_back({circuit::makeLfsr(12), 400000});
  rows.push_back({circuit::makeCounter(10, 1000), 400000});
  rows.push_back({circuit::makeFifoCtrl(4), 400000});
  rows.push_back({circuit::makeArbiter(12), 400000});
  rows.push_back({circuit::makeRandomSeq(14, 4, 80, 11), 400000});
  rows.push_back({circuit::makeRandomSeq(16, 5, 100, 23), 400000});

  const circuit::OrderSpec orders[] = {
      {circuit::OrderKind::kTopo, 0},     // the paper's S2
      {circuit::OrderKind::kNatural, 0},  // declaration order
      {circuit::OrderKind::kRandom, 1},   // stand-in for external orders
  };

  std::printf("Table 2: reachability with fixed variable orders\n");
  std::printf("%-17s %-8s | %12s %9s | %12s %9s | %10s %5s\n", "circuit",
              "order", "VIS-IWLS95 t", "Peak(K)", "BFV-Fig2 t", "Peak(K)",
              "states", "iters");
  hr(96);
  for (const Row& row : rows) {
    for (const circuit::OrderSpec& order : orders) {
      RunSpec tr;
      tr.engine = RunSpec::Engine::kTr;
      tr.opts.budget.max_seconds = quick ? 5.0 : 20.0;
      tr.opts.budget.max_live_nodes = row.node_budget;
      tr.opts.trace = trace.enabled();
      RunSpec bf = tr;
      bf.engine = RunSpec::Engine::kBfv;
      const reach::ReachResult a = runOnce(row.n, order, tr);
      const reach::ReachResult b = runOnce(row.n, order, bf);
      log.push(runObject(row.n.name(), order.label(), engineName(tr.engine),
                         a));
      log.push(runObject(row.n.name(), order.label(), engineName(bf.engine),
                         b));
      pushTrace(trace, row.n.name(), order.label(), engineName(tr.engine), a);
      pushTrace(trace, row.n.name(), order.label(), engineName(bf.engine), b);
      const reach::ReachResult& done =
          a.status == RunStatus::kDone ? a : b;
      char states[32];
      if (done.status == RunStatus::kDone) {
        std::snprintf(states, sizeof states, "%.0f", done.states);
      } else {
        std::snprintf(states, sizeof states, "-");
      }
      std::printf("%-17s %-8s | %12s %9s | %12s %9s | %10s %5u\n",
                  row.n.name().c_str(), order.label().c_str(),
                  timeCell(a).c_str(), peakCell(a).c_str(),
                  timeCell(b).c_str(), peakCell(b).c_str(), states,
                  done.iterations);
    }
    // One order-free lz row per circuit: the zonotope representation has
    // no variable order, so it rides outside the per-order grid.
    const lz::LzResult z = runLzOnce(row.n, quick ? 5.0 : 20.0);
    log.push(lzRunObject(row.n.name(), z));
    std::printf("%-17s %-8s | %12s %9s | %12s %9s | %10s %5u\n",
                row.n.name().c_str(), "n/a", "LZ:", lzTimeCell(z).c_str(),
                "-", "-", lzStatesCell(z).c_str(), z.iterations);
    hr(96);
  }
  std::printf(
      "\nShape to compare with the paper: the BFV flow completes the\n"
      "dependency-rich circuits (twin*) under every order while the chi\n"
      "flow exceeds its node budget; the chi flow wins the long-diameter\n"
      "rows (lfsr12, cnt10) where BFV re-parameterizes on every of\n"
      "thousands of iterations — the s3271/s4863 vs s1512/s3330 split of\n"
      "Table 2.\n");
  return log.write() && trace.write() ? 0 : 1;
}
