#include "svc/queue.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "svc/wire.hpp"

namespace bfvr::svc {

namespace {

std::vector<std::string> splitColons(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ':')) out.push_back(cur);
  return out;
}

std::uint64_t fieldU64(const std::string& s, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end == nullptr || *end != '\0') {
    throw Error(std::string("tenants: bad ") + what + " '" + s + "'");
  }
  return v;
}

double fieldF64(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end == nullptr || *end != '\0' || v < 0.0) {
    throw Error(std::string("tenants: bad ") + what + " '" + s + "'");
  }
  return v;
}

TenantConfig parseTenantLine(const std::string& line) {
  const std::vector<std::string> parts = splitColons(line);
  if (parts.empty() || parts[0].empty()) {
    throw Error("tenants: missing tenant name");
  }
  TenantConfig t;
  t.name = parts[0];
  if (parts.size() > 1) {
    t.weight = static_cast<std::uint32_t>(fieldU64(parts[1], "weight"));
    if (t.weight == 0) throw Error("tenants: weight must be >= 1");
  }
  if (parts.size() > 2) {
    t.max_running = static_cast<std::uint32_t>(fieldU64(parts[2], "max_running"));
  }
  if (parts.size() > 3) {
    t.max_queued = static_cast<std::uint32_t>(fieldU64(parts[3], "max_queued"));
  }
  if (parts.size() > 4) t.max_nodes = fieldU64(parts[4], "max_nodes");
  if (parts.size() > 5) t.max_seconds = fieldF64(parts[5], "max_seconds");
  if (parts.size() > 6) throw Error("tenants: too many fields: " + line);
  return t;
}

std::vector<TenantConfig> parseTenants(std::istream& in) {
  std::vector<TenantConfig> out;
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim whitespace.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    try {
      out.push_back(parseTenantLine(line.substr(b, e - b + 1)));
    } catch (const Error& ex) {
      throw Error("tenants line " + std::to_string(lineno) + ": " + ex.what());
    }
  }
  return out;
}

}  // namespace

std::vector<TenantConfig> parseTenantsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open tenants file: " + path);
  return parseTenants(in);
}

std::vector<TenantConfig> parseTenantsString(const std::string& text) {
  std::istringstream in(text);
  return parseTenants(in);
}

FairQueue::FairQueue(std::vector<TenantConfig> tenants) {
  for (TenantConfig& t : tenants) {
    auto slot = std::make_unique<Tenant>();
    slot->cfg = std::move(t);
    tenants_.push_back(std::move(slot));
  }
}

FairQueue::Tenant& FairQueue::tenantFor(const std::string& name) {
  for (auto& t : tenants_) {
    if (t->cfg.name == name) return *t;
  }
  auto slot = std::make_unique<Tenant>();
  slot->cfg.name = name;
  tenants_.push_back(std::move(slot));
  return *tenants_.back();
}

std::optional<std::string> FairQueue::admit(QueuedJob job) {
  Tenant& t = tenantFor(job.tenant);
  if (t.cfg.max_queued > 0 && t.waiting.size() >= t.cfg.max_queued) {
    return "tenant '" + job.tenant + "' queue is full (max_queued=" +
           std::to_string(t.cfg.max_queued) + ")";
  }
  // Clamp, never raise: a job asking for more than the tenant ceiling gets
  // the ceiling; a job asking for less (or for a budget the server would
  // not otherwise impose) keeps its own number.
  run::JobSpec& spec = job.spec;
  if (t.cfg.max_nodes > 0) {
    const auto clampNodes = [&](std::size_t v) {
      return v == 0 ? static_cast<std::size_t>(t.cfg.max_nodes)
                    : std::min(v, static_cast<std::size_t>(t.cfg.max_nodes));
    };
    spec.opts.budget.max_live_nodes = clampNodes(spec.opts.budget.max_live_nodes);
    spec.mgr.max_nodes = clampNodes(spec.mgr.max_nodes);
  }
  if (t.cfg.max_seconds > 0.0) {
    spec.deadline_seconds = spec.deadline_seconds == 0.0
                                ? t.cfg.max_seconds
                                : std::min(spec.deadline_seconds,
                                           t.cfg.max_seconds);
  }
  t.waiting.push_back(std::move(job));
  return std::nullopt;
}

void FairQueue::requeueFront(QueuedJob job) {
  Tenant& t = tenantFor(job.tenant);
  t.waiting.push_front(std::move(job));
}

std::optional<QueuedJob> FairQueue::pick() {
  // Contenders: tenants with waiting work and a free running slot.
  std::vector<Tenant*> contending;
  std::int64_t total_weight = 0;
  for (auto& t : tenants_) {
    const std::uint32_t cap = t->cfg.max_running;
    if (t->waiting.empty()) continue;
    if (cap > 0 && t->running >= cap) continue;
    contending.push_back(t.get());
    total_weight += t->cfg.weight;
  }
  if (contending.empty()) return std::nullopt;
  // Smooth WRR: grow every contender's credit by its weight, pick the
  // richest, charge it the total. Ties break by registration order, which
  // keeps the schedule deterministic.
  Tenant* best = nullptr;
  for (Tenant* t : contending) {
    t->credit += t->cfg.weight;
    if (best == nullptr || t->credit > best->credit) best = t;
  }
  best->credit -= total_weight;
  QueuedJob job = std::move(best->waiting.front());
  best->waiting.pop_front();
  best->running += 1;
  dispatch_log_.push_back(best->cfg.name);
  return job;
}

void FairQueue::release(const std::string& tenant) {
  Tenant& t = tenantFor(tenant);
  if (t.running > 0) t.running -= 1;
}

std::vector<QueuedJob> FairQueue::dropAll() {
  std::vector<QueuedJob> dropped;
  for (auto& t : tenants_) {
    for (QueuedJob& j : t->waiting) dropped.push_back(std::move(j));
    t->waiting.clear();
  }
  return dropped;
}

std::vector<QueuedJob> FairQueue::dropSession(std::uint64_t session) {
  std::vector<QueuedJob> dropped;
  for (auto& t : tenants_) {
    auto& q = t->waiting;
    for (auto it = q.begin(); it != q.end();) {
      if ((*it).session == session) {
        dropped.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::optional<QueuedJob> FairQueue::dropJob(std::uint64_t id) {
  for (auto& t : tenants_) {
    auto& q = t->waiting;
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((*it).id == id) {
        QueuedJob job = std::move(*it);
        q.erase(it);
        return job;
      }
    }
  }
  return std::nullopt;
}

bool FairQueue::reattachSession(std::uint64_t job_id, std::uint64_t session) {
  for (auto& t : tenants_) {
    for (QueuedJob& j : t->waiting) {
      if (j.id == job_id) {
        j.session = session;
        return true;
      }
    }
  }
  return false;
}

std::size_t FairQueue::queuedCount() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tenants_) n += t->waiting.size();
  return n;
}

std::uint32_t FairQueue::runningCount(const std::string& tenant) const {
  for (const auto& t : tenants_) {
    if (t->cfg.name == tenant) return t->running;
  }
  return 0;
}

std::vector<std::string> FairQueue::tenantNames() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->cfg.name);
  return out;
}

const TenantConfig* FairQueue::tenantConfig(const std::string& name) const {
  for (const auto& t : tenants_) {
    if (t->cfg.name == name) return &t->cfg;
  }
  return nullptr;
}

}  // namespace bfvr::svc
