// The set algebra on NON-contiguous choice variables — the configuration
// every reachability run actually uses (current/param banks interleaved,
// input variables scattered between them). The algorithms must not assume
// the choice variables are adjacent or start at zero.
#include <gtest/gtest.h>

#include "cdec/cdec.hpp"
#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

// Choice variables at odd, spread-out positions within a 16-var manager.
const std::vector<unsigned> kSpread{1, 4, 9, 14};

class SpreadVars : public ::testing::TestWithParam<int> {};

TEST_P(SpreadVars, UnionIntersectMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  Manager m(16);
  const Set a = test::randomSet(rng, 4, 1, 3);
  const Set b = test::randomSet(rng, 4, 1, 3);
  const Bfv fa = test::bfvOf(m, kSpread, a);
  const Bfv fb = test::bfvOf(m, kSpread, b);
  EXPECT_EQ(test::setOf(setUnion(fa, fb)), test::setUnionOf(a, b));
  const Bfv fi = setIntersect(fa, fb);
  EXPECT_EQ(fi.isEmpty() ? Set{} : test::setOf(fi),
            test::setIntersectOf(a, b));
  std::string why;
  EXPECT_TRUE(setUnion(fa, fb).checkCanonical(&why)) << why;
}

TEST_P(SpreadVars, CharRoundTripAndCdec) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 91 + 7);
  Manager m(16);
  Set a = test::randomSet(rng, 4, 1, 2);
  if (a.empty()) a.insert(5);
  const Bfv f = test::bfvOf(m, kSpread, a);
  EXPECT_EQ(fromChar(m, f.toChar(), kSpread), f);
  const cdec::Cdec c = cdec::Cdec::fromBfv(f);
  EXPECT_EQ(c.toBfv(), f);
  EXPECT_EQ(cdec::Cdec::fromChar(m, f.toChar(), kSpread), c);
}

TEST_P(SpreadVars, ReparamWithInterleavedParams) {
  // Parameters BETWEEN the choice variables (like inputs between banks).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  Manager m(16);
  const std::vector<unsigned> params{0, 3, 6, 11};
  std::vector<Bdd> outs(4);
  std::vector<std::uint16_t> tts(4);
  for (unsigned i = 0; i < 4; ++i) {
    tts[i] = static_cast<std::uint16_t>(rng.next());
    outs[i] = test::bddFromTruth(m, params, tts[i]);
  }
  Set range;
  for (unsigned pa = 0; pa < 16; ++pa) {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (((tts[i] >> pa) & 1U) != 0) x |= std::uint64_t{1} << i;
    }
    range.insert(x);
  }
  const Bfv f = reparameterize(m, outs, kSpread, params);
  std::string why;
  ASSERT_TRUE(f.checkCanonical(&why)) << why;
  EXPECT_EQ(test::setOf(f), range);
  // And the conjunctive-decomposition path agrees.
  const cdec::Cdec c = cdec::reparameterizeCdec(m, outs, kSpread, params);
  EXPECT_EQ(c.toBfv(), f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadVars, ::testing::Range(0, 12));

TEST(SpreadVars, QuantifyAndReorderAcrossGaps) {
  Manager m(16);
  Rng rng(51);
  Set a = test::randomSet(rng, 4, 1, 2);
  if (a.empty()) a.insert(9);
  const Bfv f = test::bfvOf(m, kSpread, a);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(f.existsChoice(c), f);
  }
  // Reorder the components onto a contiguous variable block.
  const unsigned perm[] = {2, 0, 3, 1};
  const Bfv g = reorderComponents(f, perm, {5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(g.countStates(), static_cast<double>(a.size()));
  EXPECT_TRUE(g.checkCanonical());
}

}  // namespace
}  // namespace bfvr::bfv
