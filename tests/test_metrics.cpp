// The serving tier's metrics layer: registry idempotency, histogram
// bucket-boundary arithmetic, Prometheus-text and JSON exposition, the
// flight-recorder ring (including wraparound), and the leveled logger.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace bfvr {
namespace {

// ---------------------------------------------------------------------------
// Registry + instruments
// ---------------------------------------------------------------------------

TEST(Metrics, CounterIncrementsAndRegistryIsIdempotent) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("jobs_total");
  obs::Counter& b = reg.counter("jobs_total");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same instrument
  a.inc();
  a.inc(41);
  EXPECT_EQ(b.value(), 42U);
}

TEST(Metrics, LabelledSeriesAreDistinctInstruments) {
  obs::Registry reg;
  obs::Counter& alpha =
      reg.counter("jobs_total", obs::metricLabel("tenant", "alpha"));
  obs::Counter& bravo =
      reg.counter("jobs_total", obs::metricLabel("tenant", "bravo"));
  EXPECT_NE(&alpha, &bravo);
  alpha.inc(3);
  bravo.inc(5);
  EXPECT_EQ(alpha.value(), 3U);
  EXPECT_EQ(bravo.value(), 5U);
}

TEST(Metrics, MetricLabelEscapesValue) {
  EXPECT_EQ(obs::metricLabel("tenant", "alpha"), "tenant=\"alpha\"");
  EXPECT_EQ(obs::metricLabel("k", "a\"b\\c\nd"), "k=\"a\\\"b\\\\c\\nd\"");
}

TEST(Metrics, GaugeSetsAndAdds) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue_depth");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.set(-2);  // gauges are signed
  EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("n");
  obs::Histogram& h = reg.histogram("h");
  c.inc(9);
  h.observe(100);
  reg.reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sumRaw(), 0U);
  c.inc();  // the reference survived the reset
  EXPECT_EQ(c.value(), 1U);
}

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesArePowersOfTwoInclusive) {
  // Bucket i holds v <= 2^i: the boundary value lands in its own bucket,
  // boundary+1 in the next.
  EXPECT_EQ(obs::Histogram::bucketOf(0), 0U);
  EXPECT_EQ(obs::Histogram::bucketOf(1), 0U);
  EXPECT_EQ(obs::Histogram::bucketOf(2), 1U);
  EXPECT_EQ(obs::Histogram::bucketOf(3), 2U);
  EXPECT_EQ(obs::Histogram::bucketOf(4), 2U);
  EXPECT_EQ(obs::Histogram::bucketOf(5), 3U);
  for (std::size_t i = 1; i + 1 < obs::Histogram::kBuckets; ++i) {
    const std::uint64_t bound = std::uint64_t{1} << i;
    EXPECT_EQ(obs::Histogram::bucketOf(bound), i) << "at boundary 2^" << i;
    EXPECT_EQ(obs::Histogram::bucketOf(bound + 1), i + 1)
        << "just past 2^" << i;
  }
}

TEST(Histogram, HugeValuesClampIntoOverflowBucket) {
  const std::size_t last = obs::Histogram::kBuckets - 1;
  EXPECT_EQ(obs::Histogram::bucketOf(~std::uint64_t{0}), last);
  obs::Histogram h;
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.bucketCount(last), 1U);
}

TEST(Histogram, ObserveUpdatesCountSumAndBucket) {
  obs::Histogram h;
  h.observe(3);
  h.observe(4);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sumRaw(), 1007U);
  EXPECT_EQ(h.bucketCount(2), 2U);   // 3 and 4 both land in le=4
  EXPECT_EQ(h.bucketCount(10), 1U);  // 1000 lands in le=1024
}

TEST(Histogram, ObserveSecondsRoundsToMicrosecondsAndClampsNegative) {
  obs::Histogram h;
  h.observeSeconds(0.001);  // 1000us -> bucket le=1024
  h.observeSeconds(-5.0);   // clamps to 0 -> bucket 0
  EXPECT_EQ(h.count(), 2U);
  EXPECT_EQ(h.sumRaw(), 1000U);
  EXPECT_EQ(h.bucketCount(10), 1U);
  EXPECT_EQ(h.bucketCount(0), 1U);
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

TEST(Exposition, PrometheusTextHasTypeLinesAndCumulativeBuckets) {
  obs::Registry reg;
  reg.counter("requests_total", obs::metricLabel("tenant", "alpha")).inc(2);
  reg.counter("requests_total", obs::metricLabel("tenant", "bravo")).inc(1);
  reg.gauge("depth").set(5);
  obs::Histogram& h = reg.histogram("latency_seconds", "", obs::kSecondsScale);
  h.observe(1);  // bucket 0: le=1us = 1e-06s
  h.observe(3);  // bucket 2: le=4us
  const std::string text = reg.text();

  // One # TYPE line per family, not per labelled series.
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE requests_total counter",
                      text.find("# TYPE requests_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{tenant=\"alpha\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{tenant=\"bravo\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 5\n"), std::string::npos);

  // Histogram: cumulative buckets in seconds, then _sum and _count.
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  // le=4e-06 is cumulative: both observations.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 4e-06\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 2\n"), std::string::npos);
}

TEST(Exposition, JsonHasAllThreeSections) {
  obs::Registry reg;
  reg.counter("a_total").inc(7);
  reg.gauge("b").set(-1);
  reg.histogram("c").observe(2);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"b\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(Exposition, SecondRegistrationCannotSplitAHistogramFamilyScale) {
  obs::Registry reg;
  reg.histogram("t_seconds", obs::metricLabel("k", "a"), obs::kSecondsScale);
  // A sloppy second registration (default scale) still joins the family at
  // the first registration's scale, keeping `le` bounds consistent.
  obs::Histogram& b = reg.histogram("t_seconds", obs::metricLabel("k", "b"));
  b.observe(1);
  const std::string text = reg.text();
  EXPECT_NE(text.find("t_seconds_bucket{k=\"b\",le=\"1e-06\"} 1\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  obs::FlightRecorder fr(8);
  fr.record(obs::FlightSeverity::kInfo, "admission", "admitted", "alpha", 1);
  fr.record(obs::FlightSeverity::kWarn, "eviction", "evicted", "alpha", 1);
  const std::vector<obs::FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].seq, 0U);
  EXPECT_EQ(events[0].category, "admission");
  EXPECT_EQ(events[1].seq, 1U);
  EXPECT_EQ(events[1].category, "eviction");
  EXPECT_EQ(events[1].tenant, "alpha");
  EXPECT_EQ(events[1].job, 1U);
  EXPECT_GE(events[1].t, events[0].t);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentEvents) {
  obs::FlightRecorder fr(4);
  for (int i = 0; i < 11; ++i) {
    fr.record(obs::FlightSeverity::kInfo, "tick", std::to_string(i));
  }
  EXPECT_EQ(fr.totalRecorded(), 11U);
  const std::vector<obs::FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 4U);  // ring capacity, oldest overwritten
  // The survivors are exactly the last four, oldest first, with their
  // original global sequence numbers intact (the seq gap proves overwrite).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 7 + i);
    EXPECT_EQ(events[i].message, std::to_string(7 + i));
  }
}

TEST(FlightRecorder, JsonCarriesReasonAndEventFields) {
  obs::FlightRecorder fr(4);
  fr.record(obs::FlightSeverity::kError, "fault", "worker 2 faulted",
            "bravo", 17);
  const std::string json = fr.json("worker-fault");
  EXPECT_NE(json.find("\"reason\": \"worker-fault\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"category\": \"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": \"bravo\""), std::string::npos);
  EXPECT_NE(json.find("\"job\": 17"), std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  obs::FlightRecorder fr(0);
  EXPECT_EQ(fr.capacity(), 1U);
  fr.record(obs::FlightSeverity::kInfo, "a", "1");
  fr.record(obs::FlightSeverity::kInfo, "b", "2");
  const std::vector<obs::FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].category, "b");
}

// ---------------------------------------------------------------------------
// Leveled logger
// ---------------------------------------------------------------------------

TEST(Log, ParseAcceptsTheThreeLevelsAndRejectsJunk) {
  obs::LogLevel level = obs::LogLevel::kError;
  EXPECT_TRUE(obs::parseLogLevel("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_TRUE(obs::parseLogLevel("info", &level));
  EXPECT_EQ(level, obs::LogLevel::kInfo);
  EXPECT_TRUE(obs::parseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_FALSE(obs::parseLogLevel("verbose", &level));
  EXPECT_FALSE(obs::parseLogLevel("", &level));
}

TEST(Log, LevelGateDefaultsQuietAndIsAdjustable) {
  const obs::LogLevel before = obs::logLevel();
  obs::setLogLevel(obs::LogLevel::kError);
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::kError));
  EXPECT_FALSE(obs::logEnabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::logEnabled(obs::LogLevel::kDebug));
  obs::setLogLevel(obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::kDebug));
  obs::setLogLevel(before);
}

}  // namespace
}  // namespace bfvr
