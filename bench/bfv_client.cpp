// Client CLI of the reachability service: push a manifest of jobs to a
// running bfv_serve as one tenant, stream results, and print the same
// per-job table and status roll-up as the batch runner.
//
//   bfv_client --connect SPEC --tenant NAME [manifest]
//              [--window N] [--stats] [--shutdown[=drain|now]] [--quiet]
//              [--strict]
//
//   --connect SPEC    unix:PATH or tcp:HOST:PORT (required)
//   --tenant NAME     tenant to submit as (required)
//   manifest          manifest file of jobs to submit (omit with --stats /
//                     --shutdown for control-only invocations)
//   --window N        max submissions awaiting admission at once
//                     (default 8; bounds client-side memory, exercises the
//                     server's fair queue rather than its accept path)
//   --stats           fetch and print the live server snapshot (counters,
//                     queue depth, metrics, span timelines, flight ring)
//   --shutdown[=drain|now]  ask the server to stop (default drain)
//   --quiet           suppress per-job rows (roll-up still prints)
//   --strict          exit 1 also on memout/timeout jobs
//
// Exit status: 0 when every submitted job completed "done" (or with
// --strict, no job erred/memout/timeout and none were rejected); 1
// otherwise, or on any connection/protocol failure.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "svc/client.hpp"

using namespace bfvr;

namespace {

struct Args {
  std::string connect;
  std::string tenant;
  std::string manifest;
  unsigned window = 8;
  bool stats = false;
  bool do_shutdown = false;
  bool drain = true;
  bool quiet = false;
  bool strict = false;
};

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      a.connect = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      a.tenant = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      a.window = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--shutdown" || arg == "--shutdown=drain") {
      a.do_shutdown = true;
    } else if (arg == "--shutdown=now") {
      a.do_shutdown = true;
      a.drain = false;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (!arg.empty() && arg[0] != '-' && a.manifest.empty()) {
      a.manifest = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (a.connect.empty() || a.tenant.empty()) return false;
  return !a.manifest.empty() || a.stats || a.do_shutdown;
}

/// Raw manifest lines (comments/blanks stripped) — submitted verbatim, so
/// the server's parser is the one source of truth for the grammar.
std::vector<std::string> manifestLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::vector<std::string> out;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string line(buf);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    out.push_back(std::move(line));
  }
  std::fclose(f);
  return out;
}

struct JobView {
  std::string line;
  bool finished = false;
  svc::JobDone done;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s --connect unix:PATH|tcp:HOST:PORT --tenant NAME "
                 "[manifest] [--window N] [--stats] [--shutdown[=drain|now]] "
                 "[--quiet] [--strict]\n",
                 argv[0]);
    return 2;
  }
  try {
    svc::Client client(args.connect, args.tenant);
    bool ok = true;
    std::size_t done = 0, memout = 0, timeout = 0, cancelled = 0, error = 0,
                rejected = 0, evictions = 0;

    if (!args.manifest.empty()) {
      const std::vector<std::string> lines = manifestLines(args.manifest);
      std::map<std::uint64_t, JobView> jobs;  // by server job id
      std::size_t sent = 0, admitted_or_rejected = 0, finished = 0;
      std::map<std::uint64_t, std::string> pending;  // tag -> line
      const auto handle = [&](const svc::Event& ev) {
        if (const auto* acc = std::get_if<svc::Accepted>(&ev)) {
          auto it = pending.find(acc->tag);
          if (it != pending.end()) {
            jobs[acc->job].line = it->second;
            pending.erase(it);
          }
          ++admitted_or_rejected;
        } else if (const auto* rej = std::get_if<svc::Rejected>(&ev)) {
          auto it = pending.find(rej->tag);
          std::fprintf(stderr, "rejected: %s (%s)\n",
                       it != pending.end() ? it->second.c_str() : "?",
                       rej->reason.c_str());
          if (it != pending.end()) pending.erase(it);
          ++admitted_or_rejected;
          ++rejected;
          ok = false;
        } else if (const auto* evd = std::get_if<svc::JobEvicted>(&ev)) {
          ++evictions;
          if (!args.quiet) {
            std::printf("job %llu evicted from w%u at iteration %llu\n",
                        static_cast<unsigned long long>(evd->job),
                        evd->worker,
                        static_cast<unsigned long long>(evd->iteration));
          }
        } else if (const auto* jd = std::get_if<svc::JobDone>(&ev)) {
          JobView& v = jobs[jd->job];
          v.finished = true;
          v.done = *jd;
          ++finished;
          if (jd->status == "done") ++done;
          else if (jd->status == "M.O.") ++memout;
          else if (jd->status == "T.O.") ++timeout;
          else if (jd->status == "cancelled") ++cancelled;
          else ++error;
          if (!args.quiet) {
            std::printf("%-40s %-9s %8.3fs %6llu iters  w%u%s%s\n",
                        v.line.substr(0, 40).c_str(), jd->status.c_str(),
                        jd->seconds,
                        static_cast<unsigned long long>(jd->iterations),
                        jd->worker, jd->resumed ? "  resumed" : "",
                        jd->evictions > 0 ? "  (evicted)" : "");
          }
        } else if (const auto* we = std::get_if<svc::WireError>(&ev)) {
          std::fprintf(stderr, "server error: %s\n", we->message.c_str());
          ok = false;
        }
        // JobStarted / IterationUpdate / StatsReply: progress noise here.
      };
      while (finished < jobs.size() || sent < lines.size() ||
             admitted_or_rejected < sent) {
        // Keep up to `window` submissions in flight, then drain one event.
        while (sent < lines.size() &&
               sent - admitted_or_rejected < args.window) {
          pending[client.submit(lines[sent])] = lines[sent];
          ++sent;
        }
        std::optional<svc::Event> ev = client.next();
        if (!ev.has_value()) {
          throw svc::Error("server closed the connection mid-batch");
        }
        handle(*ev);
      }
      std::printf(
          "%zu jobs as tenant %s: %zu done, %zu memout, %zu timeout, "
          "%zu cancelled, %zu error, %zu rejected; %zu eviction%s\n",
          lines.size(), args.tenant.c_str(), done, memout, timeout, cancelled,
          error, rejected, evictions, evictions == 1 ? "" : "s");
    }

    if (args.stats) {
      client.queryStats(svc::StatsQuery::kAllSections);
      for (;;) {
        std::optional<svc::Event> ev = client.next();
        if (!ev.has_value()) throw svc::Error("connection closed on stats");
        if (const auto* reply = std::get_if<svc::StatsReply>(&*ev)) {
          std::printf("%s\n", reply->json.c_str());
          break;
        }
      }
    }

    if (args.do_shutdown) client.shutdownServer(args.drain);
    client.bye();

    if (error > 0 || rejected > 0) ok = false;
    if (args.strict && (memout > 0 || timeout > 0 || cancelled > 0)) {
      ok = false;
    }
    if (!args.strict) {
      // Non-strict mirrors bfv_run: resource-model statuses are outcomes,
      // not failures.
      ok = ok && error == 0;
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfv_client: %s\n", e.what());
    return 1;
  }
}
