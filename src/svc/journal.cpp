#include "svc/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "io/checkpoint.hpp"

namespace bfvr::svc {

namespace {

constexpr char kJournalMagic[4] = {'B', 'F', 'V', 'J'};

std::string errnoText(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Write all of `n` bytes to a plain file descriptor, retrying EINTR and
/// short writes.
void writeAllFd(int fd, const std::uint8_t* p, std::size_t n,
                const std::string& path) {
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw Error(errnoText("journal: write " + path));
    }
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
}

void fsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw Error(errnoText("journal: fsync " + path));
}

/// fsync the directory so a fresh file / rename is itself durable.
void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort: not all filesystems allow it
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

FsyncPolicy parseFsyncPolicy(const std::string& s) {
  if (s == "never") return FsyncPolicy::kNever;
  if (s == "batch") return FsyncPolicy::kBatch;
  if (s == "always") return FsyncPolicy::kAlways;
  throw Error("journal: expected fsync policy never|batch|always, got '" + s +
              "'");
}

const char* to_string(FsyncPolicy p) noexcept {
  switch (p) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

const char* to_string(JournalEvent e) noexcept {
  switch (e) {
    case JournalEvent::kAccepted:
      return "accepted";
    case JournalEvent::kDispatched:
      return "dispatched";
    case JournalEvent::kCheckpointed:
      return "checkpointed";
    case JournalEvent::kDone:
      return "done";
  }
  return "?";
}

std::vector<std::uint8_t> Journal::encodeRecord(const JournalRecord& rec) {
  Writer w;
  w.u64(rec.job);
  w.str(rec.tenant);
  w.str(rec.idem);
  w.str(rec.line);
  w.u64(rec.iteration);
  w.str(rec.status);
  w.str(rec.message);
  w.f64(rec.states);
  w.f64(rec.seconds);
  if (w.buf.size() > kMaxFramePayload) {
    throw Error("journal: record payload too large");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kJournalHeaderBytes + w.buf.size());
  out.insert(out.end(), kJournalMagic, kJournalMagic + 4);
  out.push_back(kJournalVersion);
  out.push_back(static_cast<std::uint8_t>(rec.event));
  out.push_back(0);
  out.push_back(0);
  const std::uint32_t len = static_cast<std::uint32_t>(w.buf.size());
  const std::uint32_t crc = io::crc32(w.buf.data(), w.buf.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.insert(out.end(), w.buf.begin(), w.buf.end());
  return out;
}

std::size_t Journal::decodeRecord(const std::uint8_t* p, std::size_t n,
                                  JournalRecord* out) {
  if (n < kJournalHeaderBytes) return 0;
  if (std::memcmp(p, kJournalMagic, 4) != 0) return 0;
  if (p[4] != kJournalVersion) return 0;
  const std::uint8_t event = p[5];
  if (event < static_cast<std::uint8_t>(JournalEvent::kAccepted) ||
      event > static_cast<std::uint8_t>(JournalEvent::kDone)) {
    return 0;
  }
  if (p[6] != 0 || p[7] != 0) return 0;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{p[8 + i]} << (8 * i);
  for (int i = 0; i < 4; ++i) crc |= std::uint32_t{p[12 + i]} << (8 * i);
  if (len > kMaxFramePayload) return 0;
  if (n - kJournalHeaderBytes < len) return 0;  // torn mid-payload
  const std::uint8_t* payload = p + kJournalHeaderBytes;
  if (io::crc32(payload, len) != crc) return 0;
  try {
    Reader r(payload, len);
    JournalRecord rec;
    rec.event = static_cast<JournalEvent>(event);
    rec.job = r.u64();
    rec.tenant = r.str();
    rec.idem = r.str();
    rec.line = r.str();
    rec.iteration = r.u64();
    rec.status = r.str();
    rec.message = r.str();
    rec.states = r.f64();
    rec.seconds = r.f64();
    r.done();
    if (out != nullptr) *out = std::move(rec);
  } catch (const Error&) {
    return 0;  // CRC-valid but structurally wrong: treat as end of log
  }
  return kJournalHeaderBytes + len;
}

Journal::Journal(std::string dir, FsyncPolicy policy)
    : dir_(std::move(dir)), policy_(policy) {
  if (dir_.empty()) throw Error("journal: empty directory");
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw Error(errnoText("journal: mkdir " + dir_));
  }
  path_ = dir_ + "/journal.bin";
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw Error(errnoText("journal: open " + path_));
  replayAndTruncate();
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::replayAndTruncate() {
  // Slurp the whole file: journals are small (a handful of records per
  // job) and the scan needs random access for the record framing anyway.
  std::vector<std::uint8_t> bytes;
  {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      throw Error(errnoText("journal: stat " + path_));
    }
    bytes.resize(static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < bytes.size()) {
      const ssize_t k = ::pread(fd_, bytes.data() + got, bytes.size() - got,
                                static_cast<off_t>(got));
      if (k < 0) {
        if (errno == EINTR) continue;
        throw Error(errnoText("journal: read " + path_));
      }
      if (k == 0) break;  // raced a concurrent truncate; scan what we have
      got += static_cast<std::size_t>(k);
    }
    bytes.resize(got);
  }
  std::size_t pos = 0;
  for (;;) {
    JournalRecord rec;
    const std::size_t used =
        decodeRecord(bytes.data() + pos, bytes.size() - pos, &rec);
    if (used == 0) break;
    replayed_.push_back(std::move(rec));
    pos += used;
  }
  stats_.replayed_records = replayed_.size();
  if (pos < bytes.size()) {
    // Torn tail from a crash mid-append: drop it so the next append starts
    // at a record boundary.
    stats_.torn_bytes = bytes.size() - pos;
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      throw Error(errnoText("journal: truncate " + path_));
    }
  }
}

void Journal::append(const JournalRecord& rec) {
  const std::vector<std::uint8_t> bytes = encodeRecord(rec);
  const std::lock_guard<std::mutex> lock(mu_);
  writeAllFd(fd_, bytes.data(), bytes.size(), path_);
  stats_.appended += 1;
  const bool flush =
      policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch &&
       (rec.event == JournalEvent::kAccepted ||
        rec.event == JournalEvent::kDone));
  if (flush) {
    fsyncFd(fd_, path_);
    stats_.fsyncs += 1;
  }
}

void Journal::compact(const std::vector<JournalRecord>& keep) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw Error(errnoText("journal: open " + tmp));
  try {
    for (const JournalRecord& rec : keep) {
      const std::vector<std::uint8_t> bytes = encodeRecord(rec);
      writeAllFd(fd, bytes.data(), bytes.size(), tmp);
    }
    fsyncFd(fd, tmp);
  } catch (...) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(errnoText("journal: rename " + tmp));
  }
  fsyncDir(dir_);
  // Swap the append fd onto the fresh file.
  const int nfd = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
  if (nfd < 0) throw Error(errnoText("journal: reopen " + path_));
  ::close(fd_);
  fd_ = nfd;
  stats_.compactions += 1;
  stats_.fsyncs += 1;
}

JournalStats Journal::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bfvr::svc
