#include "util/stats.hpp"

namespace bfvr {

std::string to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kDone:
      return "done";
    case RunStatus::kTimeOut:
      return "T.O.";
    case RunStatus::kMemOut:
      return "M.O.";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kError:
      return "error";
    case RunStatus::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::optional<RunStatus> parse_run_status(std::string_view s) {
  if (s == "done") return RunStatus::kDone;
  if (s == "T.O.") return RunStatus::kTimeOut;
  if (s == "M.O.") return RunStatus::kMemOut;
  if (s == "cancelled") return RunStatus::kCancelled;
  if (s == "error") return RunStatus::kError;
  if (s == "inconclusive") return RunStatus::kInconclusive;
  return std::nullopt;
}

}  // namespace bfvr
