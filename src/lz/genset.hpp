// Logical zonotopes: sets of binary vectors represented by a center plus a
// generator matrix over GF(2) (Alanwar et al., "Logical Zonotopes: A Set
// Representation for the Formal Verification of Boolean Functions").
//
// A GeneratorSet over `dims` bits is the affine subspace
//
//     L(c, G) = { c XOR sum_i beta_i * g_i  :  beta in {0,1}^m }
//
// i.e. the coset c XOR span(G). That structure buys exactness where BDDs
// pay: XOR/XNOR/NOT of two zonotopes are themselves zonotopes (constant
// cost in the generator count), membership and containment reduce to
// GF(2) rank computations, and |L| = 2^rank(G) — no counting traversal.
// AND/OR are not closed over affine subspaces; andOf/orOf implement the
// paper's minimal over-approximation (sound: the result contains the true
// set) and report whether the result happens to be exact.
//
// Rows are packed 64 bits per uint64_t word. The generator matrix is kept
// permanently in reduced form (incremental Gaussian elimination): every
// basis vector has a distinct pivot (its lowest set bit), pivot bits are
// cleared from all other rows and from the center. That makes the
// (center, basis) pair a canonical coset representative, so set equality
// is plain memberwise comparison and rank() == generators().size().
//
// This module depends only on the C++ standard library — no BDD manager —
// which is the point: src/lz is the first set backend where reachability
// runs without allocating a single BDD node.
#pragma once

#include <cstdint>
#include <vector>

namespace bfvr::lz {

using Word = std::uint64_t;
/// Packed bit row; bit i of the row is bit (i % 64) of word (i / 64).
using Bits = std::vector<Word>;

/// Words needed to hold `bits` bits.
inline std::size_t wordsFor(unsigned bits) noexcept {
  return (static_cast<std::size_t>(bits) + 63) / 64;
}

inline bool getBit(const Bits& b, unsigned i) noexcept {
  return ((b[i / 64] >> (i % 64)) & 1u) != 0;
}

inline void setBit(Bits& b, unsigned i, bool v) noexcept {
  const Word mask = Word{1} << (i % 64);
  if (v) {
    b[i / 64] |= mask;
  } else {
    b[i / 64] &= ~mask;
  }
}

/// a ^= b (b may be shorter; the tail is treated as zero).
void xorInto(Bits& a, const Bits& b) noexcept;

bool isZero(const Bits& b) noexcept;

/// Index of the lowest set bit; undefined when isZero(b).
unsigned lowestSetBit(const Bits& b) noexcept;

/// Low 64 bits of a row — the whole row when dims <= 64, which is the fast
/// path the explicit point bookkeeping of the engine uses.
inline std::uint64_t packLow(const Bits& b) noexcept {
  return b.empty() ? 0 : b[0];
}

/// A logical zonotope: center XOR span(generators), always reduced.
class GeneratorSet {
 public:
  /// The singleton {0} over `dims` bits.
  explicit GeneratorSet(unsigned dims);
  /// The singleton {center}.
  GeneratorSet(unsigned dims, Bits center);

  unsigned dims() const noexcept { return dims_; }
  const Bits& center() const noexcept { return center_; }
  /// Reduced basis, sorted by pivot index. size() == rank().
  const std::vector<Bits>& generators() const noexcept { return gens_; }
  unsigned rank() const noexcept {
    return static_cast<unsigned>(gens_.size());
  }
  /// |L| = 2^rank as a double (exact up to rank 53; saturates to inf far
  /// beyond any dims this codebase builds).
  double count() const noexcept;

  /// Add one generator, maintaining the reduced canonical form. Returns
  /// false (and changes nothing) when g is already in the span.
  bool addGenerator(Bits g);

  /// Exact membership: point XOR center in span(G)?
  bool contains(const Bits& point) const;
  /// Exact containment: every point of `o` in *this?
  bool containsSet(const GeneratorSet& o) const;
  /// Coset equality (canonical forms compare memberwise).
  bool sameSet(const GeneratorSet& o) const noexcept;
  /// Exact emptiness of the intersection: the cosets meet iff
  /// c_a XOR c_b lies in span(G_a) + span(G_b).
  bool intersects(const GeneratorSet& o) const;

  // ---- set algebra (independent operands) ---------------------------------
  // These combine two *independent* zonotopes: each operand ranges over its
  // own parameter vector. Correlated operands (two gate outputs of the same
  // circuit evaluation) are the engine's affine-form layer, not this one.

  /// Exact: { x XOR y : x in a, y in b }.
  static GeneratorSet xorOf(const GeneratorSet& a, const GeneratorSet& b);
  /// Exact: complement of xorOf bitwise, i.e. { ~(x ^ y) }.
  static GeneratorSet xnorOf(const GeneratorSet& a, const GeneratorSet& b);
  /// Exact: { ~x : x in a }.
  static GeneratorSet notOf(const GeneratorSet& a);
  /// Minimal over-approximation of { x AND y } (paper rule):
  /// center a0&b0, generators { a0&g_b }, { g_a&b0 }, { g_a&g_b }.
  /// `exact` (optional) is set when the result provably equals the true
  /// set — guaranteed when either operand is a singleton, where AND
  /// distributes over the other's XOR structure.
  static GeneratorSet andOf(const GeneratorSet& a, const GeneratorSet& b,
                            bool* exact = nullptr);
  /// Over-approximation of { x OR y } via De Morgan on andOf.
  static GeneratorSet orOf(const GeneratorSet& a, const GeneratorSet& b,
                           bool* exact = nullptr);

  /// Affine hull of a UNION b: the smallest zonotope containing both —
  /// center c_a, span(G_a, G_b, c_a XOR c_b). `exact` (optional) reports
  /// whether the hull IS the union, decided by rank arithmetic:
  /// |hull| == |a| + |b| - |a AND b| holds only when one side contains the
  /// other, or the cosets are disjoint with equal rank r and hull rank
  /// r + 1 (2^ra + 2^rb - 2^ri is a power of two in no other case).
  static GeneratorSet unionHull(const GeneratorSet& a, const GeneratorSet& b,
                                bool* exact = nullptr);

  /// Visit all 2^rank points in Gray-code order (one generator XOR per
  /// step). Caller checks count() against its budget first; rank must be
  /// < 64. `f` takes (const Bits&).
  template <typename F>
  void forEachPoint(F&& f) const {
    Bits p = center_;
    f(static_cast<const Bits&>(p));
    const std::uint64_t n = std::uint64_t{1} << rank();
    for (std::uint64_t i = 1; i < n; ++i) {
      unsigned j = 0;
      while (((i >> j) & 1u) == 0) ++j;  // Gray transition: flip gen j
      xorInto(p, gens_[j]);
      f(static_cast<const Bits&>(p));
    }
  }

 private:
  /// Residual of `v` after elimination against the basis (zero iff in span).
  Bits reduceAgainst(Bits v) const;

  unsigned dims_ = 0;
  Bits center_;
  std::vector<Bits> gens_;    ///< reduced basis rows
  std::vector<unsigned> pivots_;  ///< pivot bit index of each basis row
};

}  // namespace bfvr::lz
