#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace bfvr::obs {
namespace {

/// Shortest round-trippable decimal for a double (Prometheus values and
/// `le` bounds; "%.17g" is exact but noisy, "%.12g" is exact for every
/// value we emit — integers up to 2^39 and powers-of-two fractions).
std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string escapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// JSON string escaping for names/labels (ASCII control chars -> \u).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// A series' full JSON key: the metric name, plus `{labels}` when labelled,
/// so `jobs_total{tenant="alpha"}` and `jobs_total{tenant="bravo"}` stay
/// distinct keys in one object.
std::string seriesKey(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

std::string metricLabel(const std::string& key, const std::string& value) {
  return key + "=\"" + escapeLabelValue(value) + "\"";
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

template <typename T>
T& Registry::find(std::deque<Entry<T>>& store, const std::string& name,
                  const std::string& labels, double scale) {
  for (Entry<T>& e : store) {
    if (e.name == name && e.labels == labels) return e.v;
  }
  Entry<T>& e = store.emplace_back();
  e.name = name;
  e.labels = labels;
  e.scale = scale;
  return e.v;
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return find(counters_, name, labels, 1.0);
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return find(gauges_, name, labels, 1.0);
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels, double scale) {
  std::lock_guard<std::mutex> lock(mu_);
  // The family's first registration fixes the scale: exposition reads the
  // scale per entry, so a mismatched second registration would split the
  // family. Reuse the existing entry's scale instead.
  for (Entry<Histogram>& e : histograms_) {
    if (e.name == name && e.labels == labels) return e.v;
  }
  for (const Entry<Histogram>& e : histograms_) {
    if (e.name == name) {
      scale = e.scale;
      break;
    }
  }
  return find(histograms_, name, labels, scale);
}

std::string Registry::text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;

  // Stable order: sort an index per kind by (name, labels). Deques are
  // append-ordered, so sorting indices keeps exposition deterministic
  // regardless of registration order.
  auto sorted = [](const auto& store) {
    std::vector<std::size_t> idx(store.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (store[a].name != store[b].name) return store[a].name < store[b].name;
      return store[a].labels < store[b].labels;
    });
    return idx;
  };

  auto typeLine = [&out](const std::string& name, const char* type,
                         std::string& last) {
    if (name == last) return;
    out += "# TYPE " + name + " " + type + "\n";
    last = name;
  };

  std::string last;
  for (std::size_t i : sorted(counters_)) {
    const auto& e = counters_[i];
    typeLine(e.name, "counter", last);
    out += seriesKey(e.name, e.labels) + " " + std::to_string(e.v.value()) +
           "\n";
  }
  last.clear();
  for (std::size_t i : sorted(gauges_)) {
    const auto& e = gauges_[i];
    typeLine(e.name, "gauge", last);
    out += seriesKey(e.name, e.labels) + " " + std::to_string(e.v.value()) +
           "\n";
  }
  last.clear();
  for (std::size_t i : sorted(histograms_)) {
    const auto& e = histograms_[i];
    typeLine(e.name, "histogram", last);
    const std::string extra = e.labels.empty() ? "" : e.labels + ",";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
      cum += e.v.bucketCount(b);
      const double bound =
          static_cast<double>(std::uint64_t{1} << b) / e.scale;
      out += e.name + "_bucket{" + extra + "le=\"" + fmtDouble(bound) +
             "\"} " + std::to_string(cum) + "\n";
    }
    cum += e.v.bucketCount(Histogram::kBuckets - 1);
    out += e.name + "_bucket{" + extra + "le=\"+Inf\"} " +
           std::to_string(cum) + "\n";
    out += e.name + "_sum" + (e.labels.empty() ? "" : "{" + e.labels + "}") +
           " " + fmtDouble(static_cast<double>(e.v.sumRaw()) / e.scale) + "\n";
    out += e.name + "_count" + (e.labels.empty() ? "" : "{" + e.labels + "}") +
           " " + std::to_string(e.v.count()) + "\n";
  }
  return out;
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& e : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + jsonEscape(seriesKey(e.name, e.labels)) + "\": " +
           std::to_string(e.v.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& e : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + jsonEscape(seriesKey(e.name, e.labels)) + "\": " +
           std::to_string(e.v.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& e : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + jsonEscape(seriesKey(e.name, e.labels)) + "\": {\n";
    out += "      \"count\": " + std::to_string(e.v.count()) + ",\n";
    out += "      \"sum\": " +
           fmtDouble(static_cast<double>(e.v.sumRaw()) / e.scale) + ",\n";
    out += "      \"buckets\": [";
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(e.v.bucketCount(b));
    }
    out += "]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.v.v_.store(0, std::memory_order_relaxed);
  for (auto& e : gauges_) e.v.v_.store(0, std::memory_order_relaxed);
  for (auto& e : histograms_) {
    for (auto& b : e.v.buckets_) b.store(0, std::memory_order_relaxed);
    e.v.count_.store(0, std::memory_order_relaxed);
    e.v.sum_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace bfvr::obs
