// Structural queries: support, node counts, minterm counting, evaluation,
// and satisfying-cube extraction.
#include <algorithm>
#include <unordered_map>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

std::vector<unsigned> Manager::support(const Bdd& f) {
  const Edge root = requireSameManager(f);
  std::vector<unsigned> vars;
  ++mark_epoch_;
  if (mark_epoch_ == 0) {
    for (Node& n : nodes_) n.mark = 0;
    mark_epoch_ = 1;
  }
  mark_stack_.clear();
  mark_stack_.push_back(index(root));
  nodes_[0].mark = mark_epoch_;
  while (!mark_stack_.empty()) {
    const std::uint32_t i = mark_stack_.back();
    mark_stack_.pop_back();
    Node& n = nodes_[i];
    if (n.mark == mark_epoch_) continue;
    n.mark = mark_epoch_;
    vars.push_back(n.var);
    mark_stack_.push_back(index(n.high));
    mark_stack_.push_back(index(n.low));
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

Bdd Manager::supportCube(const Bdd& f) {
  const std::vector<unsigned> vars = support(f);
  return cube(vars);
}

double Manager::satCount(const Bdd& f, unsigned num_vars) {
  const Edge root = requireSameManager(f);
  std::unordered_map<Edge, double> memo;
  // Satisfying fraction, memoized on regular edges (complements are 1-p).
  auto prob = [&](auto&& self, Edge e) -> double {
    if (e == kTrueEdge) return 1.0;
    if (e == kFalseEdge) return 0.0;
    const bool compl_in = isCompl(e);
    const Edge reg = regular(e);
    double p;
    if (auto it = memo.find(reg); it != memo.end()) {
      p = it->second;
    } else {
      const double ph = self(self, highOf(reg));
      const double pl = self(self, lowOf(reg));
      p = 0.5 * ph + 0.5 * pl;
      memo.emplace(reg, p);
    }
    return compl_in ? 1.0 - p : p;
  };
  double scale = 1.0;
  for (unsigned i = 0; i < num_vars; ++i) scale *= 2.0;
  return prob(prob, root) * scale;
}

std::size_t Manager::nodeCount(const Bdd& f) {
  const Bdd fs[] = {f};
  return sharedNodeCount(fs);
}

std::size_t Manager::sharedNodeCount(std::span<const Bdd> fs) {
  ++mark_epoch_;
  if (mark_epoch_ == 0) {
    for (Node& n : nodes_) n.mark = 0;
    mark_epoch_ = 1;
  }
  std::size_t count = 0;
  for (const Bdd& f : fs) {
    if (f.isNull()) continue;
    requireSameManager(f);
    mark_stack_.clear();
    mark_stack_.push_back(index(f.raw()));
    while (!mark_stack_.empty()) {
      const std::uint32_t i = mark_stack_.back();
      mark_stack_.pop_back();
      Node& n = nodes_[i];
      if (n.mark == mark_epoch_) continue;
      n.mark = mark_epoch_;
      ++count;
      if (n.var != kTermVar) {
        mark_stack_.push_back(index(n.high));
        mark_stack_.push_back(index(n.low));
      }
    }
  }
  return count;
}

bool Manager::eval(const Bdd& f, const std::vector<bool>& values) {
  Edge e = requireSameManager(f);
  while (!isConstEdge(e)) {
    // Assignments are indexed by variable, not by level, so reordering does
    // not change what eval() computes.
    const std::uint32_t v = varOf(e);
    if (v >= values.size()) {
      throw std::out_of_range("eval: assignment shorter than support");
    }
    e = values[v] ? highOf(e) : lowOf(e);
  }
  return e == kTrueEdge;
}

std::vector<signed char> Manager::pickCube(const Bdd& f) {
  Edge e = requireSameManager(f);
  if (e == kFalseEdge) {
    throw std::invalid_argument("pickCube of the zero BDD");
  }
  std::vector<signed char> cube(num_vars_, -1);
  while (!isConstEdge(e)) {
    const std::uint32_t v = varOf(e);
    const Edge h = highOf(e);
    if (h != kFalseEdge) {
      cube[v] = 1;
      e = h;
    } else {
      cube[v] = 0;
      e = lowOf(e);
    }
  }
  return cube;
}

}  // namespace bfvr::bdd
