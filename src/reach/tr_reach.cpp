// Characteristic-function reachability with partitioned transition
// relations and early quantification — the "VIS - IWLS95" baseline column
// of the paper's Table 2.
#include "reach/internal.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

ReachResult reachTr(sym::StateSpace& s, const ReachOptions& opts) {
  Manager& m = s.manager();
  return internal::runGuarded(
      m, opts, [&](ReachResult& r, internal::RunGuard& guard,
                   internal::Tracer& tracer) {
        internal::applyReorderPolicy(s, opts);
        const sym::TransitionRelation tr(s, opts.transition);
        guard.sample();

        Bdd reached, from;
        if (opts.resume != nullptr) {
          r.iterations = opts.resume->iteration;
          reached = opts.resume->reached_chi;
          from = opts.resume->from_chi;
        } else {
          reached = sym::initialChar(s);
          from = reached;
        }
        for (;;) {
          ++r.iterations;
          tracer.beginIteration(r.iterations, [&] {
            return std::pair{m.satCount(from, s.numLatches()),
                             m.nodeCount(from)};
          });
          const Bdd img = tracer.timed(obs::Phase::kImage,
                                       [&] { return tr.image(from); });
          guard.sample();
          const Bdd next = tracer.timed(obs::Phase::kUnion,
                                        [&] { return reached | img; });
          const bool fixpoint = next == reached;
          // Iteration scope (not the branch), so the handle lives across
          // the maybeGc() below exactly as it did before tracing existed.
          Bdd frontier;
          if (!fixpoint) {
            const auto check = tracer.phase(obs::Phase::kCheck);
            // Frontier = genuinely new states; with characteristic
            // functions set difference is one apply operation.
            frontier = img & ~reached;
            reached = next;
            if (opts.use_frontier &&
                m.nodeCount(frontier) < m.nodeCount(reached)) {
              from = frontier;
            } else {
              from = reached;
            }
          }
          tracer.endIteration();
          if (fixpoint) break;
          internal::maybeStepReorder(m, opts, r.iterations);
          m.maybeGc();
          guard.sample();
          if (internal::checkpointDue(opts, r.iterations)) {
            io::Checkpoint c;
            c.engine = "tr";
            c.iteration = r.iterations;
            c.reached = {reached};
            c.frontier = {from};
            internal::writeCheckpoint(m, opts, std::move(c));
          }
          if (opts.max_iterations != 0 &&
              r.iterations >= opts.max_iterations) {
            break;
          }
        }
        r.states = m.satCount(reached, s.numLatches());
        r.chi_nodes = m.nodeCount(reached);
        r.reached_chi = reached;
        // Table 3 wants the BFV size of the same set; conversion happens
        // after the measured run (outside guard.sample()).
        const Bfv f = bfv::fromChar(m, reached, s.currentVars());
        r.bfv_nodes = f.sharedSize();
        r.reached_bfv = f;
      });
}

}  // namespace bfvr::reach
