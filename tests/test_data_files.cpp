// The shipped .bench files in data/ parse and verify end to end — the same
// path a user takes with the original ISCAS89 distributions.
#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "reach/engine.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr {
namespace {

class DataFiles : public ::testing::TestWithParam<const char*> {};

TEST_P(DataFiles, ParsesAndValidates) {
  const std::string path = std::string(BFVR_DATA_DIR) + "/" + GetParam();
  const circuit::Netlist n = circuit::parseBenchFile(path);
  EXPECT_GT(n.latches().size(), 0U);
  EXPECT_GT(n.outputs().size(), 0U);
  EXPECT_NO_THROW(n.validate());
  // Round-trips.
  const circuit::Netlist back =
      circuit::parseBenchString(circuit::toBench(n), "rt");
  EXPECT_EQ(back.latches().size(), n.latches().size());
}

INSTANTIATE_TEST_SUITE_P(Shipped, DataFiles,
                         ::testing::Values("arb4.bench", "cnt8m200.bench",
                                           "crc8.bench", "crc16.bench",
                                           "fifo3.bench", "johnson8.bench",
                                           "lfsr16.bench", "lfsr32.bench",
                                           "twin6.bench"));

TEST(DataFiles, ReachabilityAgreesWithOracleOnParsedCircuit) {
  const circuit::Netlist n =
      circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/twin6.bench");
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  bdd::Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  const reach::ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()));
}

TEST(DataFiles, ParsedCircuitSimulatesLikeItsSource) {
  const circuit::Netlist n =
      circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/cnt8m200.bench");
  const circuit::ConcreteSim sim(n);
  std::vector<bool> st(n.latches().size(), false);
  for (int i = 0; i < 250; ++i) st = sim.step(st, {true});
  unsigned v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (st[i]) v |= 1U << i;
  }
  EXPECT_EQ(v, 250U % 200U);
}

}  // namespace
}  // namespace bfvr
