// The paper's reachability flow (Fig. 2): symbolic simulation for images,
// re-parameterization and set union directly on the canonical functional
// vector — no characteristic function is ever built during the run. The
// kCdec backend performs the same steps on the conjunctive decomposition
// (§2.7), using the constrain-based union.
#include "reach/internal.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

namespace {

/// Rename a canonical vector (components over the u bank) onto the v bank.
/// The banks are interleaved, so the renaming preserves relative order and
/// canonicity.
std::vector<Bdd> renameToCurrent(const sym::StateSpace& s,
                                 const std::vector<Bdd>& comps) {
  Manager& m = s.manager();
  std::vector<Bdd> out(comps.size());
  for (std::size_t i = 0; i < comps.size(); ++i) {
    out[i] = m.permute(comps[i], s.permParamToCurrent());
  }
  return out;
}

std::vector<unsigned> simulationParams(const sym::StateSpace& s) {
  std::vector<unsigned> params = s.currentVars();
  params.insert(params.end(), s.inputVars().begin(), s.inputVars().end());
  return params;
}

void runBfvBackend(sym::StateSpace& s, const ReachOptions& opts,
                   ReachResult& r, internal::RunGuard& guard) {
  Manager& m = s.manager();
  const std::vector<unsigned> params = simulationParams(s);
  internal::applyReorderPolicy(s, opts);
  Bfv reached = Bfv::point(m, s.currentVars(), s.initialBits());
  Bfv from = reached;
  for (;;) {
    ++r.iterations;
    const sym::SimResult sim = sym::simulate(s, from.comps());
    guard.sample();
    // Re-parameterize onto the u bank, then rename back to the v bank.
    const Bfv img_u = bfv::reparameterize(m, sim.next_state, s.paramVars(),
                                          params, opts.reparam);
    guard.sample();
    const Bfv img = Bfv::fromComponents(m, s.currentVars(),
                                        renameToCurrent(s, img_u.comps()),
                                        /*trusted=*/true);
    const Bfv next = setUnion(reached, img);
    guard.sample();
    if (next == reached) break;
    reached = next;
    // Selection heuristic: simulate from the smaller of the image and the
    // reached set. (BFVs have no set difference — §2 has no negation — so
    // the whole image plays the frontier role.)
    if (opts.use_frontier && img.sharedSize() < reached.sharedSize()) {
      from = img;
    } else {
      from = reached;
    }
    internal::maybeStepReorder(m, opts, r.iterations);
    m.maybeGc();
    guard.sample();
    if (opts.max_iterations != 0 && r.iterations >= opts.max_iterations) {
      break;
    }
  }
  r.states = reached.countStates();
  r.bfv_nodes = reached.sharedSize();
  r.reached_bfv = reached;
  // Table 3's chi size: built once, after the measured run.
  r.reached_chi = reached.toChar();
  r.chi_nodes = m.nodeCount(r.reached_chi);
}

void runCdecBackend(sym::StateSpace& s, const ReachOptions& opts,
                    ReachResult& r, internal::RunGuard& guard) {
  using cdec::Cdec;
  Manager& m = s.manager();
  const std::vector<unsigned> params = simulationParams(s);
  internal::applyReorderPolicy(s, opts);
  Cdec reached = Cdec::fromBfv(Bfv::point(m, s.currentVars(), s.initialBits()));
  Cdec from = reached;
  for (;;) {
    ++r.iterations;
    // Simulation needs evaluating components: derive the BFV view (two
    // cofactor operations per component).
    const Bfv from_bfv = from.toBfv();
    const sym::SimResult sim = sym::simulate(s, from_bfv.comps());
    guard.sample();
    const Cdec img_u = cdec::reparameterizeCdec(
        m, sim.next_state, s.paramVars(), params, opts.reparam);
    guard.sample();
    // Rename constraints u -> v; constrain-canonical form is preserved by
    // the order-preserving renaming.
    std::vector<Bdd> renamed(img_u.constraints().size());
    for (std::size_t i = 0; i < renamed.size(); ++i) {
      renamed[i] =
          m.permute(img_u.constraints()[i], s.permParamToCurrent());
    }
    const Cdec img_v =
        Cdec::fromConstraints(m, s.currentVars(), std::move(renamed));
    const Cdec next = setUnion(reached, img_v);
    guard.sample();
    if (next == reached) break;
    reached = next;
    if (opts.use_frontier && img_v.sharedSize() < reached.sharedSize()) {
      from = img_v;
    } else {
      from = reached;
    }
    internal::maybeStepReorder(m, opts, r.iterations);
    m.maybeGc();
    guard.sample();
    if (opts.max_iterations != 0 && r.iterations >= opts.max_iterations) {
      break;
    }
  }
  r.states = reached.countStates();
  r.reached_bfv = reached.toBfv();
  r.bfv_nodes = r.reached_bfv->sharedSize();
  r.reached_chi = reached.toChar();
  r.chi_nodes = m.nodeCount(r.reached_chi);
}

}  // namespace

ReachResult reachBfv(sym::StateSpace& s, const ReachOptions& opts) {
  Manager& m = s.manager();
  return internal::runGuarded(
      m, opts.budget, [&](ReachResult& r, internal::RunGuard& guard) {
        if (opts.backend == SetBackend::kBfv) {
          runBfvBackend(s, opts, r, guard);
        } else {
          runCdecBackend(s, opts, r, guard);
        }
      });
}

}  // namespace bfvr::reach
