# Empty compiler generated dependencies file for bench_quantsched.
# This may be replaced when dependencies are built.
