// The observability layer: phase-timer nesting, per-iteration reach traces
// across all four engines, manager event hooks and the JSON report
// round-trip (serialize with obs::reportJson, re-parse with a minimal JSON
// reader, compare against the in-memory trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "obs/report.hpp"
#include "reach/engine.hpp"
#include "util/stats.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader, just enough to re-ingest the
// reports this module writes (no escapes beyond the writer's own, no
// unicode). Kept test-local on purpose: the library deliberately has a
// writer only.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool has(const std::string& key) const { return obj.count(key) != 0; }
  const JsonValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) {
      ADD_FAILURE() << "missing key: " << key;
      static const JsonValue null;
      return null;
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JsonValue parse() {
    const JsonValue v = value();
    skipWs();
    EXPECT_EQ(i_, s_.size()) << "trailing JSON input";
    return v;
  }

 private:
  void skipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  bool eat(char c) {
    skipWs();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skipWs();
    if (i_ >= s_.size()) {
      ADD_FAILURE() << "unexpected end of JSON";
      return {};
    }
    const char c = s_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    EXPECT_TRUE(eat('{'));
    if (eat('}')) return v;
    do {
      const JsonValue key = string();
      EXPECT_TRUE(eat(':'));
      v.obj.emplace(key.str, value());
    } while (eat(','));
    EXPECT_TRUE(eat('}'));
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    EXPECT_TRUE(eat('['));
    if (eat(']')) return v;
    do {
      v.arr.push_back(value());
    } while (eat(','));
    EXPECT_TRUE(eat(']'));
    return v;
  }

  JsonValue string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    EXPECT_TRUE(eat('"'));
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      v.str += s_[i_++];
    }
    EXPECT_TRUE(eat('"'));
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(i_, 4, "true") == 0) {
      v.b = true;
      i_ += 4;
    } else if (s_.compare(i_, 5, "false") == 0) {
      v.b = false;
      i_ += 5;
    } else {
      ADD_FAILURE() << "bad boolean at " << i_;
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    v.num = std::strtod(begin, &end);
    EXPECT_NE(begin, end) << "bad number at " << i_;
    i_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Phase timers
// ---------------------------------------------------------------------------

void spinFor(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(PhaseTimer, NestedScopesAttributeExclusiveTime) {
  obs::PhaseTimer t;
  const Timer wall;
  {
    const auto image = t.scope(obs::Phase::kImage);
    spinFor(0.004);
    {
      const auto inner = t.scope(obs::Phase::kUnion);
      spinFor(0.004);
    }
    spinFor(0.004);
  }
  const double elapsed = wall.seconds();
  EXPECT_EQ(t.depth(), 0U);

  const obs::PhaseSeconds& p = t.totals();
  EXPECT_GT(p[obs::Phase::kImage], 0.0);
  EXPECT_GT(p[obs::Phase::kUnion], 0.0);
  // Exclusive attribution: the inner union scope pauses the image clock,
  // so the phase totals sum to (at most) the wall clock they covered.
  EXPECT_LE(p.total(), elapsed + 1e-4);
  // And the image phase does not absorb the union phase's time: its
  // self-time is the two 4ms stretches outside the inner scope.
  EXPECT_GT(p[obs::Phase::kImage], p[obs::Phase::kUnion]);
  EXPECT_EQ(p[obs::Phase::kCheck], 0.0);
}

TEST(PhaseTimer, DisabledScopeIsNoOp) {
  // The null scope is how disabled tracing stays near-zero cost.
  const obs::PhaseTimer::Scope scope(nullptr);
  SUCCEED();
}

TEST(PhaseTimer, PopOnEmptyTimerReportsCleanError) {
  obs::PhaseTimer t;
  EXPECT_THROW(t.pop(), std::logic_error);
  EXPECT_THROW(t.pop(obs::Phase::kImage), std::logic_error);
}

TEST(PhaseTimer, OverlappingPhasesReportCleanErrorNotMisattribution) {
  // Phases must nest: closing kUnion while kImage is the innermost open
  // phase is an instrumentation bug. The old code silently attributed the
  // overlap to whichever phase happened to be on top; now the manual pop
  // API reports it.
  obs::PhaseTimer t;
  t.push(obs::Phase::kImage);
  EXPECT_THROW(t.pop(obs::Phase::kUnion), std::logic_error);
  // The open phase is untouched by the failed pop: closing it in LIFO
  // order still works and the timer ends balanced.
  t.pop(obs::Phase::kImage);
  EXPECT_EQ(t.depth(), 0U);
  try {
    t.push(obs::Phase::kReparam);
    t.pop(obs::Phase::kCheck);
    FAIL() << "out-of-order pop must throw";
  } catch (const std::logic_error& e) {
    // The message names the phase actually open, for a usable diagnosis.
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(to_string(obs::Phase::kReparam)),
              std::string::npos);
  }
  t.pop();
  EXPECT_EQ(t.depth(), 0U);
}

TEST(PhaseSeconds, SinceIsFieldWise) {
  obs::PhaseSeconds a;
  a[obs::Phase::kImage] = 3.0;
  a[obs::Phase::kUnion] = 2.0;
  obs::PhaseSeconds b;
  b[obs::Phase::kImage] = 1.0;
  const obs::PhaseSeconds d = a.since(b);
  EXPECT_DOUBLE_EQ(d[obs::Phase::kImage], 2.0);
  EXPECT_DOUBLE_EQ(d[obs::Phase::kUnion], 2.0);
  EXPECT_DOUBLE_EQ(d.total(), 4.0);
}

// ---------------------------------------------------------------------------
// Per-iteration traces from every engine
// ---------------------------------------------------------------------------

enum class Engine { kTr, kCbm, kBfv, kCdec, kHybrid };

reach::ReachResult runEngine(Engine e, sym::StateSpace& s,
                             reach::ReachOptions opts) {
  opts.max_iterations = 2000;
  switch (e) {
    case Engine::kTr:
      return reach::reachTr(s, opts);
    case Engine::kCbm:
      return reach::reachCbm(s, opts);
    case Engine::kBfv:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    case Engine::kCdec:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
    case Engine::kHybrid:
      return reach::reachHybrid(s, opts);
  }
  throw std::logic_error("bad engine");
}

TEST(ReachTrace, LengthMatchesIterationsOnEveryEngine) {
  const circuit::Netlist n = circuit::makeJohnson(5);
  for (const Engine e : {Engine::kTr, Engine::kCbm, Engine::kBfv,
                         Engine::kCdec, Engine::kHybrid}) {
    bdd::Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, {}));
    reach::ReachOptions opts;
    opts.trace = true;
    const reach::ReachResult r = runEngine(e, s, opts);
    ASSERT_EQ(r.status, RunStatus::kDone) << static_cast<int>(e);
    ASSERT_TRUE(r.trace.has_value()) << static_cast<int>(e);
    ASSERT_EQ(r.trace->iterations.size(), r.iterations)
        << static_cast<int>(e);
    for (std::size_t i = 0; i < r.trace->iterations.size(); ++i) {
      const obs::IterationRecord& rec = r.trace->iterations[i];
      EXPECT_EQ(rec.iteration, i + 1);
      EXPECT_GE(rec.frontier_states, 1.0);
      EXPECT_GT(rec.live_nodes, 0U);
      EXPECT_GE(rec.peak_nodes, rec.live_nodes);
      EXPECT_GE(rec.phase_seconds.total(), 0.0);
    }
    // The per-iteration deltas never exceed the whole-run counters.
    std::uint64_t steps = 0;
    for (const obs::IterationRecord& rec : r.trace->iterations) {
      steps += rec.ops_delta.recursive_steps;
    }
    EXPECT_LE(steps, r.ops.recursive_steps);
    // Phase totals cover at most the run's wall clock.
    EXPECT_LE(r.trace->phase_totals.total(), r.seconds + 1e-3);
  }
}

TEST(ReachTrace, AbsentUnlessRequested) {
  const circuit::Netlist n = circuit::makeCounter(4, 11);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {}));
  const reach::ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_FALSE(r.trace.has_value());
}

TEST(ReachTrace, TracingDoesNotChangeTheComputation) {
  const circuit::Netlist n = circuit::makeTwinShift(4);
  reach::ReachOptions plain;
  reach::ReachOptions traced;
  traced.trace = true;
  bdd::Manager m1(0);
  sym::StateSpace s1(m1, n, circuit::makeOrder(n, {}));
  const reach::ReachResult a = reach::reachBfv(s1, plain);
  bdd::Manager m2(0);
  sym::StateSpace s2(m2, n, circuit::makeOrder(n, {}));
  const reach::ReachResult b = reach::reachBfv(s2, traced);
  // Tracing pays for its own measurements (the per-iteration state count
  // runs a toChar), but it must never change what the engine computes.
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.chi_nodes, b.chi_nodes);
  EXPECT_EQ(a.bfv_nodes, b.bfv_nodes);
  EXPECT_EQ(a.status, b.status);
}

// ---------------------------------------------------------------------------
// JSON report round-trip on a shipped circuit
// ---------------------------------------------------------------------------

TEST(Report, JsonRoundTripsOnShippedCircuit) {
  const circuit::Netlist n =
      circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/fifo3.bench");
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {}));
  reach::ReachOptions opts;
  opts.trace = true;
  const reach::ReachResult r = reach::reachBfv(s, opts);
  ASSERT_EQ(r.status, RunStatus::kDone);
  ASSERT_TRUE(r.trace.has_value());
  ASSERT_GE(r.trace->iterations.size(), 2U);

  obs::RunMeta meta;
  meta.circuit = n.name();
  meta.order = "topo";
  meta.engine = "BFV-Fig2";
  meta.status = to_string(r.status);
  meta.seconds = r.seconds;
  meta.iterations = r.iterations;
  meta.states = r.states;
  meta.peak_live_nodes = r.peak_live_nodes;
  meta.ops = r.ops;
  const std::string json = obs::reportJson(meta, *r.trace);

  const JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(root.at("circuit").str, n.name());
  EXPECT_EQ(root.at("engine").str, "BFV-Fig2");
  EXPECT_EQ(root.at("iterations").num, r.iterations);
  EXPECT_NEAR(root.at("states").num, r.states, 1e-6 * (1.0 + r.states));
  EXPECT_EQ(root.at("peak_live_nodes").num, r.peak_live_nodes);
  EXPECT_TRUE(root.has("cache_hit_rate"));
  EXPECT_TRUE(root.has("phase_totals"));
  EXPECT_TRUE(root.has("events"));

  // The status tag re-ingests through parse_run_status.
  const auto status = parse_run_status(root.at("status").str);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, RunStatus::kDone);

  // Per-iteration records: the acceptance schema, field by field.
  const JsonValue& trace = root.at("trace");
  ASSERT_EQ(trace.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(trace.arr.size(), r.trace->iterations.size());
  for (std::size_t i = 0; i < trace.arr.size(); ++i) {
    const JsonValue& it = trace.arr[i];
    const obs::IterationRecord& rec = r.trace->iterations[i];
    EXPECT_EQ(it.at("iteration").num, rec.iteration);
    EXPECT_NEAR(it.at("frontier_states").num, rec.frontier_states,
                1e-6 * (1.0 + rec.frontier_states));
    EXPECT_EQ(it.at("live_nodes").num, rec.live_nodes);
    EXPECT_EQ(it.at("peak_nodes").num, rec.peak_nodes);
    const JsonValue& phases = it.at("phase_seconds");
    for (const char* key : {"image", "reparam", "union", "check"}) {
      ASSERT_TRUE(phases.has(key)) << key;
      EXPECT_GE(phases.at(key).num, 0.0) << key;
    }
    const JsonValue& ops = it.at("ops_delta");
    EXPECT_EQ(ops.at("recursive_steps").num, rec.ops_delta.recursive_steps);
    EXPECT_EQ(ops.at("cache_inserts").num, rec.ops_delta.cache_inserts);
  }
  // The BFV engine spends time re-parameterizing somewhere in the run.
  EXPECT_GT(root.at("phase_totals").at("reparam").num, 0.0);
}

TEST(Report, TableRendersEveryIteration) {
  obs::RunMeta meta;
  meta.circuit = "toy";
  meta.order = "natural";
  meta.engine = "TR";
  meta.iterations = 2;
  obs::RunTrace trace;
  for (unsigned i = 1; i <= 2; ++i) {
    obs::IterationRecord rec;
    rec.iteration = i;
    rec.frontier_states = 4.0 * i;
    rec.live_nodes = 10 * i;
    rec.peak_nodes = 20 * i;
    trace.iterations.push_back(rec);
  }
  bdd::ManagerEvent ev;
  ev.kind = bdd::ManagerEvent::Kind::kGc;
  ev.size_before = 100;
  ev.size_after = 40;
  trace.events.push_back(ev);
  const std::string table = obs::reportTable(meta, trace);
  EXPECT_NE(table.find("toy / natural / TR"), std::string::npos);
  EXPECT_NE(table.find("iter"), std::string::npos);
  EXPECT_NE(table.find("[gc] 100 -> 40"), std::string::npos);
  // One header + one line per iteration + the events block.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 6);
}

// ---------------------------------------------------------------------------
// Manager event hooks
// ---------------------------------------------------------------------------

TEST(EventSink, ExplicitGcEmitsNonAutomaticEvent) {
  bdd::Manager m(8);
  std::vector<bdd::ManagerEvent> events;
  obs::ScopedEventRecorder rec(m, events);
  {
    bdd::Bdd garbage = m.var(0) & m.var(1) & m.var(2);
    garbage = garbage ^ m.var(3);
  }
  m.gc();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].kind, bdd::ManagerEvent::Kind::kGc);
  EXPECT_FALSE(events[0].automatic);
  EXPECT_GE(events[0].size_before, events[0].size_after);
  EXPECT_GE(events[0].seconds, 0.0);
}

TEST(EventSink, ForcedAutoReorderEmitsAutomaticEvent) {
  bdd::Manager::Config cfg;
  cfg.auto_reorder = true;
  cfg.reorder_threshold = 256;
  bdd::Manager m(16, cfg);
  std::vector<bdd::ManagerEvent> events;
  obs::ScopedEventRecorder rec(m, events);
  // Hold enough live nodes to cross the reorder threshold: one parity
  // function per prefix length keeps ~n nodes alive each.
  std::vector<bdd::Bdd> keep;
  bdd::Bdd parity = m.zero();
  for (unsigned round = 0; round < 4; ++round) {
    for (unsigned v = 0; v < 16; ++v) {
      parity = parity ^ m.var(v);
      keep.push_back(parity & m.var((v + round) % 16));
    }
  }
  ASSERT_GE(m.inUseNodes(), 256U);
  m.maybeGc();
  bool saw_reorder = false;
  for (const bdd::ManagerEvent& e : events) {
    if (e.kind == bdd::ManagerEvent::Kind::kReorder) {
      saw_reorder = true;
      EXPECT_TRUE(e.automatic);
      EXPECT_GE(e.seconds, 0.0);
    }
    // The reorder prologue's GC also reports as automatic.
    if (e.kind == bdd::ManagerEvent::Kind::kGc) {
      EXPECT_TRUE(e.automatic);
    }
  }
  EXPECT_TRUE(saw_reorder);
  EXPECT_EQ(m.stats().reorder_runs, 1U);
}

TEST(EventSink, CacheResizeEmitsEventAndTakesEffect) {
  bdd::Manager::Config cfg;
  cfg.cache_bits = 8;
  bdd::Manager m(4, cfg);
  ASSERT_EQ(m.cacheSlots(), 256U);
  std::vector<bdd::ManagerEvent> events;
  obs::ScopedEventRecorder rec(m, events);
  m.resizeCache(10);
  EXPECT_EQ(m.cacheSlots(), 1024U);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].kind, bdd::ManagerEvent::Kind::kCacheResize);
  EXPECT_EQ(events[0].size_before, 256U);
  EXPECT_EQ(events[0].size_after, 1024U);
  EXPECT_FALSE(events[0].automatic);
  // The resized cache still works (and kept no stale entries).
  const bdd::Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  EXPECT_TRUE(m.eval(f, {true, true, false, false}));
  EXPECT_TRUE(m.eval(f, {false, false, true, false}));
  EXPECT_FALSE(m.eval(f, {true, false, false, false}));
}

TEST(EventSink, NodeBudgetEventFiresBeforeThrow) {
  bdd::Manager::Config cfg;
  cfg.max_nodes = 48;
  bdd::Manager m(16, cfg);
  std::vector<bdd::ManagerEvent> events;
  obs::ScopedEventRecorder rec(m, events);
  std::vector<bdd::Bdd> keep;
  EXPECT_THROW(
      {
        bdd::Bdd parity = m.zero();
        for (unsigned v = 0; v < 16; ++v) {
          parity = parity ^ m.var(v);
          keep.push_back(parity);
          keep.push_back(parity & m.var(0));
        }
      },
      bdd::NodeBudgetExceeded);
  bool saw_budget = false;
  for (const bdd::ManagerEvent& e : events) {
    if (e.kind == bdd::ManagerEvent::Kind::kNodeBudget) {
      saw_budget = true;
      EXPECT_EQ(e.size_after, cfg.max_nodes);
    }
  }
  EXPECT_TRUE(saw_budget);
}

TEST(EventSink, RecordersComposeAndRestore) {
  bdd::Manager m(4);
  std::vector<bdd::ManagerEvent> outer;
  std::vector<bdd::ManagerEvent> inner;
  {
    obs::ScopedEventRecorder a(m, outer);
    {
      obs::ScopedEventRecorder b(m, inner);
      m.gc();  // lands in both: b records, then forwards to a
    }
    EXPECT_EQ(m.eventSink(), &a);
    m.gc();  // only the outer recorder is installed now
  }
  EXPECT_EQ(m.eventSink(), nullptr);
  EXPECT_EQ(inner.size(), 1U);
  EXPECT_EQ(outer.size(), 2U);
  m.gc();  // no sink: must not crash
}

TEST(EventSink, TracedRunRecordsGcEvents) {
  // A traced engine run with a tiny GC threshold collects kGc events into
  // ReachResult.trace->events, all flagged automatic.
  bdd::Manager::Config cfg;
  cfg.gc_threshold = 64;
  const circuit::Netlist n = circuit::makeJohnson(6);
  bdd::Manager m(0, cfg);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {}));
  reach::ReachOptions opts;
  opts.trace = true;
  const reach::ReachResult r = reach::reachTr(s, opts);
  ASSERT_EQ(r.status, RunStatus::kDone);
  ASSERT_TRUE(r.trace.has_value());
  ASSERT_FALSE(r.trace->events.empty());
  for (const bdd::ManagerEvent& e : r.trace->events) {
    EXPECT_EQ(e.kind, bdd::ManagerEvent::Kind::kGc);
    EXPECT_TRUE(e.automatic);
  }
  EXPECT_EQ(r.trace->events.size(), r.ops.gc_runs);
}

// ---------------------------------------------------------------------------
// New OpStats counters
// ---------------------------------------------------------------------------

TEST(OpStats, CacheInsertsCountAndSinceSubtracts) {
  bdd::Manager m(8);
  bdd::Bdd f = m.var(0);
  for (unsigned v = 1; v < 8; ++v) f = f ^ m.var(v);
  const bdd::OpStats mid = m.stats();
  EXPECT_GT(mid.cache_inserts, 0U);
  EXPECT_LE(mid.cache_collisions, mid.cache_inserts);
  bdd::Bdd g = f & m.var(3);
  const bdd::OpStats delta = m.stats().since(mid);
  EXPECT_EQ(delta.top_ops, m.stats().top_ops - mid.top_ops);
  EXPECT_EQ(delta.recursive_steps,
            m.stats().recursive_steps - mid.recursive_steps);
  EXPECT_EQ(delta.gc_runs, 0U);
}

}  // namespace
}  // namespace bfvr
