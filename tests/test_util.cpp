#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bfvr {
namespace {

TEST(Rng, DeterministicStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17U);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.range(3, 5);
    EXPECT_GE(v, 3U);
    EXPECT_LE(v, 5U);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.chance(1, 1));
    EXPECT_FALSE(r.chance(0, 5));
  }
}

TEST(Rng, RealInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(13);
  auto p = r.permutation(20);
  std::sort(p.begin(), p.end());
  for (unsigned i = 0; i < 20; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(RunStatus, Names) {
  EXPECT_EQ(to_string(RunStatus::kDone), "done");
  EXPECT_EQ(to_string(RunStatus::kTimeOut), "T.O.");
  EXPECT_EQ(to_string(RunStatus::kMemOut), "M.O.");
}

TEST(RunStatus, ParseRoundTripsEveryStatus) {
  for (const RunStatus s :
       {RunStatus::kDone, RunStatus::kTimeOut, RunStatus::kMemOut}) {
    const auto back = parse_run_status(to_string(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
}

TEST(RunStatus, ParseRejectsUnknownTags) {
  EXPECT_FALSE(parse_run_status("").has_value());
  EXPECT_FALSE(parse_run_status("Done").has_value());
  EXPECT_FALSE(parse_run_status("timeout").has_value());
  EXPECT_FALSE(parse_run_status("T.O").has_value());
}

}  // namespace
}  // namespace bfvr
