// Wall-clock timing and run-outcome bookkeeping shared by the reachability
// engines and the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bfvr {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Outcome of a resource-budgeted run. The first three mirror the paper's
/// Table 2 notation: completed, T.O. (time budget exceeded) or M.O. (node
/// budget exceeded). The job runner (src/run) adds two more: kCancelled for
/// runs stopped cooperatively (a portfolio sibling won first) and kError for
/// failures outside the resource model (bad manifest entry, parse error).
/// The logical-zonotope backend (src/lz) adds kInconclusive: the run
/// completed but its answer is a sound over-approximation, not an exact
/// result — never treated as a conclusive portfolio win, never an error.
enum class RunStatus : std::uint8_t {
  kDone,
  kTimeOut,
  kMemOut,
  kCancelled,
  kError,
  kInconclusive,
};

/// Human-readable tag used by the bench harness ("done" / "T.O." / "M.O." /
/// "cancelled" / "error" / "inconclusive").
std::string to_string(RunStatus s);

/// Inverse of to_string(RunStatus), so trace/JSON files can be re-ingested
/// by tooling. Returns std::nullopt for an unrecognized tag.
std::optional<RunStatus> parse_run_status(std::string_view s);

/// Resource budget checked inside long-running loops.
struct Budget {
  double max_seconds = 0.0;       ///< 0 means unlimited.
  std::size_t max_live_nodes = 0; ///< 0 means unlimited; checked vs BDD peak.
};

}  // namespace bfvr
