// §2.3 set union, validated exhaustively for width 2 and by randomized
// sweeps for widths 3..5.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

TEST(BfvUnion, ExhaustiveWidth2) {
  const std::vector<unsigned> vars{0, 1};
  for (unsigned am = 0; am < 16; ++am) {
    for (unsigned bm = 0; bm < 16; ++bm) {
      Manager m(2);
      Set a;
      Set b;
      for (unsigned x = 0; x < 4; ++x) {
        if (((am >> x) & 1U) != 0) a.insert(x);
        if (((bm >> x) & 1U) != 0) b.insert(x);
      }
      const Bfv fa = test::bfvOf(m, vars, a);
      const Bfv fb = test::bfvOf(m, vars, b);
      const Bfv fu = setUnion(fa, fb);
      ASSERT_EQ(test::setOf(fu), test::setUnionOf(a, b))
          << "a=" << am << " b=" << bm;
      ASSERT_TRUE(fu.checkCanonical());
      // Canonical: result equals direct construction.
      ASSERT_EQ(fu, test::bfvOf(m, vars, test::setUnionOf(a, b)));
    }
  }
}

class UnionSweep : public ::testing::TestWithParam<std::tuple<unsigned, int>> {
};

TEST_P(UnionSweep, MatchesBruteForce) {
  const unsigned n = std::get<0>(GetParam());
  Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) * 1009 + n);
  std::vector<unsigned> vars(n);
  for (unsigned i = 0; i < n; ++i) vars[i] = i;
  Manager m(n);
  const Set a = test::randomSet(rng, n, 1, 3);
  const Set b = test::randomSet(rng, n, 1, 3);
  const Bfv fa = test::bfvOf(m, vars, a);
  const Bfv fb = test::bfvOf(m, vars, b);
  const Bfv fu = setUnion(fa, fb);
  std::string why;
  EXPECT_TRUE(fu.checkCanonical(&why)) << why;
  EXPECT_EQ(test::setOf(fu), test::setUnionOf(a, b));
  // Commutativity in the canonical representation.
  EXPECT_EQ(fu, setUnion(fb, fa));
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnionSweep,
                         ::testing::Combine(::testing::Values(3U, 4U, 5U),
                                            ::testing::Range(0, 12)));

TEST(BfvUnion, NaiveFreeChoiceWouldOverApproximate) {
  // The paper's §2.3 cautionary example: union of {0,1}-structured sets
  // where bitwise free-choice merging would include phantom members.
  // A = {010, 011} (second bit 1, third free), B = {000, 101}.
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  // Masks encode bit i = component i: {2,6} = {010, 011}, {0,5} = {000,101}.
  const Bfv fa = test::bfvOf(m, vars, Set{2, 6});
  const Bfv fb = test::bfvOf(m, vars, Set{0, 5});
  const Bfv fu = setUnion(fa, fb);
  const Set want{2, 6, 0, 5};
  EXPECT_EQ(test::setOf(fu), want);
  // The naive result would also contain 100 (mask 1) and others.
  EXPECT_FALSE(fu.contains({true, false, false}));
}

TEST(BfvUnion, EmptyIsIdentity) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv e = Bfv::emptySet(m, vars);
  const Bfv s = test::bfvOf(m, vars, Set{1, 4});
  EXPECT_EQ(setUnion(e, s), s);
  EXPECT_EQ(setUnion(s, e), s);
  EXPECT_TRUE(setUnion(e, e).isEmpty());
}

TEST(BfvUnion, IdempotentAndAssociative) {
  Manager m(4);
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Rng rng(5);
  const Set a = test::randomSet(rng, 4, 1, 2);
  const Set b = test::randomSet(rng, 4, 1, 2);
  const Set c = test::randomSet(rng, 4, 1, 2);
  const Bfv fa = test::bfvOf(m, vars, a);
  const Bfv fb = test::bfvOf(m, vars, b);
  const Bfv fc = test::bfvOf(m, vars, c);
  EXPECT_EQ(setUnion(fa, fa), fa);
  EXPECT_EQ(setUnion(setUnion(fa, fb), fc), setUnion(fa, setUnion(fb, fc)));
}

TEST(BfvUnion, UnionWithUniverseIsUniverse) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv u = Bfv::universe(m, vars);
  const Bfv s = test::bfvOf(m, vars, Set{3});
  EXPECT_EQ(setUnion(u, s), u);
}

TEST(BfvUnion, DisjointSingletonsAccumulate) {
  Manager m(4);
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Bfv acc = Bfv::emptySet(m, vars);
  Set expect;
  for (std::uint64_t x : {9U, 3U, 12U, 0U, 15U}) {
    std::vector<bool> bits(4);
    for (unsigned i = 0; i < 4; ++i) bits[i] = ((x >> i) & 1U) != 0;
    acc = setUnion(acc, Bfv::point(m, vars, bits));
    expect.insert(x);
    EXPECT_EQ(test::setOf(acc), expect);
    EXPECT_DOUBLE_EQ(acc.countStates(), static_cast<double>(expect.size()));
  }
}

}  // namespace
}  // namespace bfvr::bfv
