
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reach/bfv_reach.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/bfv_reach.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/bfv_reach.cpp.o.d"
  "/root/repo/src/reach/cbm_reach.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/cbm_reach.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/cbm_reach.cpp.o.d"
  "/root/repo/src/reach/ctl.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/ctl.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/ctl.cpp.o.d"
  "/root/repo/src/reach/engine.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/engine.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/engine.cpp.o.d"
  "/root/repo/src/reach/hybrid_reach.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/hybrid_reach.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/hybrid_reach.cpp.o.d"
  "/root/repo/src/reach/invariant.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/invariant.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/invariant.cpp.o.d"
  "/root/repo/src/reach/tr_reach.cpp" "src/CMakeFiles/bfvr_reach.dir/reach/tr_reach.cpp.o" "gcc" "src/CMakeFiles/bfvr_reach.dir/reach/tr_reach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_cdec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
