// McMillan-style canonical conjunctive decomposition (§2.7 of the paper).
//
// Where a canonical BFV component f_i *evaluates* bit i from the earlier
// choices, the conjunctive decomposition stores a *constraint* per bit:
//     c_i(v_1..v_i) = f1_i & v_i  |  f0_i & ~v_i  |  fc_i
// and the characteristic function of the set is chi = AND_i c_i. The two
// representations are interconvertible with two cofactor operations per
// component:
//     c_i = v_i XNOR f_i          f_i = c_i|v=1 & (~c_i|v=0 | v_i)
//
// The canonical component is the generalized cofactor of the prefix
// projection: c_i = constrain(P_i, P_{i-1}) with P_i = exists v_{i+1..n}
// chi — well-defined with the BDD `constrain` operator exactly when the
// component order equals the BDD variable order, which is the paper's
// experimental setting and a precondition of this module.
//
// Set union keeps the projection invariant AND_{j<=i} c_j == P_i:
//     h_i = constrain(PF_i | PG_i, PH_{i-1})
// (projection distributes over disjunction), costing ~4 apply operations
// per component against ~12 for the BFV exclusion-condition sweep — the
// §2.7 "fewer BDD operations" claim that bench_cdec_ablation measures.
// The price is that the running prefix projections PH_i are materialized,
// the last of which is the full characteristic function; when chi is much
// larger than the shared BFV (Table 3 circuits), the BFV algorithms win on
// peak size even though they perform more operations. Both effects are
// reported by the ablation bench.
//
// Intersection does not distribute over projection; it is provided via the
// characteristic function (the Fig. 2 reachability flow never intersects,
// see §2.4).
#pragma once

#include "bfv/bfv.hpp"

namespace bfvr::cdec {

using bdd::Bdd;
using bdd::Manager;
using bfv::Bfv;

/// A state set as a canonical conjunctive decomposition.
class Cdec {
 public:
  Cdec() = default;

  static Cdec emptySet(Manager& m, std::vector<unsigned> vars);
  static Cdec universe(Manager& m, std::vector<unsigned> vars);
  /// Canonical decomposition of the set with characteristic function chi.
  static Cdec fromChar(Manager& m, const Bdd& chi, std::vector<unsigned> vars);
  /// Exact translation of a canonical BFV: c_i = v_i XNOR f_i.
  static Cdec fromBfv(const Bfv& f);
  /// Wrap constraints already in canonical form (trusted — e.g. an
  /// order-preserving renaming of a canonical decomposition).
  static Cdec fromConstraints(Manager& m, std::vector<unsigned> vars,
                              std::vector<Bdd> comps);

  bool isNull() const noexcept { return mgr_ == nullptr; }
  bool isEmpty() const noexcept { return empty_; }
  unsigned width() const noexcept {
    return static_cast<unsigned>(vars_.size());
  }
  const std::vector<unsigned>& vars() const noexcept { return vars_; }
  const std::vector<Bdd>& constraints() const noexcept { return comps_; }
  Manager* manager() const noexcept { return mgr_; }

  /// Canonical equality (componentwise, both orders matching).
  bool operator==(const Cdec& o) const;
  bool operator!=(const Cdec& o) const { return !(*this == o); }

  /// chi = AND_i c_i.
  Bdd toChar() const;
  /// The corresponding canonical BFV.
  Bfv toBfv() const;
  double countStates() const;
  std::size_t sharedSize() const;

  /// §2.7 union: constrain-based, keeping the projection invariant.
  friend Cdec setUnion(const Cdec& a, const Cdec& b);
  /// Intersection via the characteristic function (see header comment).
  friend Cdec setIntersect(const Cdec& a, const Cdec& b);

 private:
  friend Cdec reparameterizeCdec(Manager& m, std::span<const Bdd> outputs,
                                 std::vector<unsigned> choice_vars,
                                 std::span<const unsigned> param_vars,
                                 const bfv::ReparamOptions& opts);

  Cdec(Manager* m, std::vector<unsigned> vars, std::vector<Bdd> comps,
       bool empty)
      : mgr_(m),
        vars_(std::move(vars)),
        comps_(std::move(comps)),
        empty_(empty) {}

  Manager* mgr_ = nullptr;
  std::vector<unsigned> vars_;
  std::vector<Bdd> comps_;  // constraints c_i
  bool empty_ = false;
};

Cdec setUnion(const Cdec& a, const Cdec& b);
Cdec setIntersect(const Cdec& a, const Cdec& b);

/// Re-parameterization on the conjunctive decomposition: canonicalize the
/// raw simulated vector `outputs` by quantifying the parameter variables,
/// with the same union-of-cofactors rule as bfv::reparameterize but using
/// the constrain-based union. Returns the canonical decomposition over
/// `choice_vars`.
Cdec reparameterizeCdec(Manager& m, std::span<const Bdd> outputs,
                        std::vector<unsigned> choice_vars,
                        std::span<const unsigned> param_vars,
                        const bfv::ReparamOptions& opts = {});

}  // namespace bfvr::cdec
