// Durable job journal of the serving tier: an append-only, CRC-framed log
// of job lifecycle transitions (accepted / dispatched / checkpointed /
// done) that survives kill -9 and lets a restarted server re-enqueue every
// non-terminal job and answer duplicate submissions without re-executing
// them.
//
// Record layout (all integers little-endian), mirroring the wire frame and
// checkpoint header discipline:
//
//   offset size  field
//   0      4     magic "BFVJ"
//   4      1     journal format version (kJournalVersion)
//   5      1     event (JournalEvent)
//   6      2     reserved, must be 0
//   8      4     payload byte count (<= wire kMaxFramePayload)
//   12     4     CRC-32 (IEEE 802.3) of the payload bytes
//   16     ...   payload (wire::Writer field encoding, fixed field order)
//
// Recovery contract: on open the whole file is scanned record by record;
// the first malformed point — bad magic, unknown version/event, oversized
// length, CRC mismatch, or a record cut short by the crash — ends the
// valid prefix, and the file is truncated back to it (a torn tail is
// expected after kill -9 mid-append, never an error). Replayed records are
// handed to the server in append order; last transition per job wins.
//
// Durability knob (FsyncPolicy): `always` fsyncs after every append,
// `batch` only after the transitions that change what a restart must do
// (accepted / done), `never` leaves flushing to the kernel. Compaction
// (clean shutdown) rewrites the log with only the records still needed via
// the same tmp+rename discipline as io::save, then fsyncs file and
// directory, so a crash mid-compaction leaves the old journal intact.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/wire.hpp"

namespace bfvr::svc {

inline constexpr std::uint8_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 16;

/// Job lifecycle transitions worth surviving a crash.
enum class JournalEvent : std::uint8_t {
  kAccepted = 1,      ///< admitted: carries tenant, idempotency key, job line
  kDispatched = 2,    ///< handed to a worker
  kCheckpointed = 3,  ///< spool snapshot cadence hit (progress watermark)
  kDone = 4,          ///< terminal: carries status/message/states/seconds
};

/// When appends reach the disk.
enum class FsyncPolicy : std::uint8_t {
  kNever = 0,   ///< leave it to the kernel (fastest, weakest)
  kBatch = 1,   ///< fsync on accepted/done — the restart-relevant records
  kAlways = 2,  ///< fsync every append
};

/// Parse "never" | "batch" | "always" (the --fsync grammar). Throws
/// svc::Error on anything else.
FsyncPolicy parseFsyncPolicy(const std::string& s);
const char* to_string(FsyncPolicy p) noexcept;
const char* to_string(JournalEvent e) noexcept;

/// One journal record. Every field is encoded for every event (the codec
/// stays trivially self-describing); fields an event does not use are
/// written as their zero values.
struct JournalRecord {
  JournalEvent event = JournalEvent::kAccepted;
  std::uint64_t job = 0;
  std::string tenant;          ///< kAccepted
  std::string idem;            ///< kAccepted: client idempotency key ("" = none)
  std::string line;            ///< kAccepted: the manifest-grammar job line
  std::uint64_t iteration = 0; ///< kCheckpointed / kDone
  std::string status;          ///< kDone: RunStatus tag
  std::string message;         ///< kDone: failure reason
  double states = 0.0;         ///< kDone
  double seconds = 0.0;        ///< kDone: execution wall-clock
};

/// Counters the server folds into JOURNAL_<name>.json and the metrics
/// registry.
struct JournalStats {
  std::uint64_t appended = 0;          ///< records appended this process
  std::uint64_t fsyncs = 0;
  std::uint64_t replayed_records = 0;  ///< valid records found at open
  std::uint64_t torn_bytes = 0;        ///< bytes truncated off a torn tail
  std::uint64_t compactions = 0;
};

/// The journal file. Thread-safe: append/compact/stats serialize on an
/// internal mutex (the server calls append from frame handlers and worker
/// threads alike).
class Journal {
 public:
  /// Opens (creating the directory and file as needed) `dir`/journal.bin,
  /// replays every valid record and truncates any torn tail. Throws
  /// svc::Error when the directory or file cannot be opened.
  Journal(std::string dir, FsyncPolicy policy);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const noexcept { return path_; }
  FsyncPolicy policy() const noexcept { return policy_; }

  /// Records recovered at open, in append order.
  const std::vector<JournalRecord>& replayed() const noexcept {
    return replayed_;
  }

  /// Append one record (write-ahead: call before acting on the
  /// transition). Throws svc::Error on a write failure.
  void append(const JournalRecord& rec);

  /// Rewrite the journal to contain exactly `keep` (tmp + rename + fsync
  /// of file and directory): clean-shutdown compaction. Throws svc::Error
  /// on failure; the old journal survives any failed attempt.
  void compact(const std::vector<JournalRecord>& keep);

  JournalStats stats() const;

  /// One record as its on-disk bytes (header + payload) — exposed for the
  /// torn-tail tests.
  static std::vector<std::uint8_t> encodeRecord(const JournalRecord& rec);
  /// Decode the record at `p`; returns the bytes consumed, or 0 when the
  /// prefix at `p` is not one complete valid record (torn tail).
  static std::size_t decodeRecord(const std::uint8_t* p, std::size_t n,
                                  JournalRecord* out);

 private:
  void replayAndTruncate();

  std::string dir_;
  std::string path_;
  FsyncPolicy policy_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::vector<JournalRecord> replayed_;
  JournalStats stats_;
};

}  // namespace bfvr::svc
