// Typed messages of the reachability-service protocol: one struct per
// FrameType, each with an encode() to a Frame and a decode() from one.
// Encodings are explicit field-by-field little-endian (see wire.hpp for the
// primitive codec); decode validates exhaustively and throws svc::Error on
// any malformed payload.
//
// Session flow:
//
//   client                       server
//     | -- Hello{tenant} ------->  |    (must be the first frame)
//     | <------- HelloAck{session}|
//     | -- Submit{tag, line} ---->|
//     | <-- Accepted{tag, job} ---|    (or Rejected{tag, reason})
//     | <-- JobStarted{job} ------|
//     | <-- IterationUpdate ... --|    (streaming, 0..n per job)
//     | <-- JobEvicted{job} ------|    (only if evicted; later a second
//     | <-- JobStarted{resumed} --|     JobStarted announces the resume)
//     | <-- JobDone{job, ...} ----|
//     | -- Bye ------------------>|
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/wire.hpp"

namespace bfvr::svc {

/// Client's opening frame. `proto` lets the server reject a client built
/// against a different protocol revision with a readable error instead of
/// a codec failure further in.
struct Hello {
  std::string tenant;
  std::uint8_t proto = kWireVersion;

  Frame encode() const;
  static Hello decode(const Frame& f);
};

struct HelloAck {
  std::uint64_t session = 0;
  std::string server;  ///< server build/instance tag, for logs

  Frame encode() const;
  static HelloAck decode(const Frame& f);
};

/// One job submission. `line` uses the manifest-line grammar
/// (key=value ..., see run::parseManifest) — the same vocabulary as the
/// batch runner, so clients and manifests are interchangeable. `tag` is a
/// client-chosen correlation id echoed in Accepted/Rejected.
///
/// `idem` (wire v3) is an optional client-chosen idempotency key: a
/// journaling server remembers it across submissions — and across its own
/// restarts — and answers a duplicate with the original job's identity
/// (and its terminal result, if already finished) instead of running the
/// job twice. Empty means "no dedup, every submit is a fresh job".
struct Submit {
  std::uint64_t tag = 0;
  std::string line;
  std::string idem;

  Frame encode() const;
  static Submit decode(const Frame& f);
};

struct Accepted {
  std::uint64_t tag = 0;
  std::uint64_t job = 0;  ///< server-assigned id used in all later frames
  /// Server-assigned span trace id: the key of this job's span timeline in
  /// the stats report and SVC_*.json, so a client can correlate its jobs
  /// with the server-side trace without guessing.
  std::uint64_t trace = 0;

  Frame encode() const;
  static Accepted decode(const Frame& f);
};

struct Rejected {
  std::uint64_t tag = 0;
  std::string reason;

  Frame encode() const;
  static Rejected decode(const Frame& f);
};

struct JobStarted {
  std::uint64_t job = 0;
  bool resumed = false;  ///< true when resuming from an eviction image

  Frame encode() const;
  static JobStarted decode(const Frame& f);
};

/// One live frontier iteration, streamed as the engine completes it.
struct IterationUpdate {
  std::uint64_t job = 0;
  std::uint64_t iteration = 0;
  std::uint64_t frontier_nodes = 0;
  std::uint64_t live_nodes = 0;
  std::uint64_t peak_nodes = 0;
  double frontier_states = 0.0;

  Frame encode() const;
  static IterationUpdate decode(const Frame& f);
};

struct JobEvicted {
  std::uint64_t job = 0;
  std::uint64_t iteration = 0;  ///< iterations completed at suspension
  std::uint32_t worker = 0;     ///< worker it ran on (the resume avoids it)

  Frame encode() const;
  static JobEvicted decode(const Frame& f);
};

/// Final result of a job (terminal frame for that job id).
struct JobDone {
  std::uint64_t job = 0;
  std::string status;   ///< RunStatus tag: done / T.O. / M.O. / ...
  std::string message;  ///< failure reason, empty when done
  double seconds = 0.0;
  double queue_seconds = 0.0;
  std::uint32_t worker = 0;
  std::uint64_t iterations = 0;
  double states = 0.0;
  std::uint64_t peak_live_nodes = 0;
  std::uint32_t attempts = 0;
  std::uint32_t evictions = 0;
  bool resumed = false;

  Frame encode() const;
  static JobDone decode(const Frame& f);
};

struct Cancel {
  std::uint64_t job = 0;

  Frame encode() const;
  static Cancel decode(const Frame& f);
};

/// Suspend a running job to a checkpoint and requeue it; the resumed run
/// is steered to a different worker (migration).
struct Evict {
  std::uint64_t job = 0;

  Frame encode() const;
  static Evict decode(const Frame& f);
};

/// Stats request. `flags` selects which live sections the reply's report
/// embeds beyond the always-present counters; unknown bits are a protocol
/// error (both ends ship together, so skew is a bug worth surfacing).
struct StatsQuery {
  static constexpr std::uint32_t kIncludeMetrics = 1u << 0;  ///< registry
  static constexpr std::uint32_t kIncludeSpans = 1u << 1;    ///< timelines
  static constexpr std::uint32_t kIncludeFlight = 1u << 2;   ///< event ring
  static constexpr std::uint32_t kAllSections =
      kIncludeMetrics | kIncludeSpans | kIncludeFlight;

  std::uint32_t flags = 0;

  Frame encode() const;
  static StatsQuery decode(const Frame& f);
};

struct StatsReply {
  std::string json;  ///< the server metrics report (obs::svcReportJson)

  Frame encode() const;
  static StatsReply decode(const Frame& f);
};

struct Shutdown {
  bool drain = true;  ///< finish queued jobs first vs. cancel everything

  Frame encode() const;
  static Shutdown decode(const Frame& f);
};

struct Bye {
  Frame encode() const;
  static Bye decode(const Frame& f);
};

/// Server-side protocol error report, sent (best-effort) before the server
/// drops a misbehaving session.
struct WireError {
  std::string message;

  Frame encode() const;
  static WireError decode(const Frame& f);
};

}  // namespace bfvr::svc
