// The service wire protocol (src/svc): frame encode/decode round-trips for
// every message type, and the adversarial paths — truncated frames, bad
// magic, version skew, corrupted payloads (CRC), oversized length prefixes
// and mid-stream disconnects — all of which must surface as clean
// svc::Error, never a crash, hang or misparse.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "svc/protocol.hpp"
#include "svc/socket.hpp"
#include "svc/wire.hpp"

namespace bfvr::svc {
namespace {

/// Encode + header-decode + CRC-check + payload-decode round trip, the way
/// recvFrame reassembles a frame off the stream.
Frame roundTrip(const Frame& f) {
  const std::vector<std::uint8_t> bytes = encodeFrame(f);
  EXPECT_GE(bytes.size(), kFrameHeaderBytes);
  Frame out;
  std::uint32_t crc = 0;
  const std::uint32_t len = decodeFrameHeader(bytes.data(), &out.type, &crc);
  EXPECT_EQ(len, bytes.size() - kFrameHeaderBytes);
  out.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  checkPayloadCrc(out.payload.data(), out.payload.size(), crc);
  return out;
}

TEST(SvcWire, HelloRoundTrip) {
  Hello h;
  h.tenant = "alpha";
  const Hello back = Hello::decode(roundTrip(h.encode()));
  EXPECT_EQ(back.tenant, "alpha");
  EXPECT_EQ(back.proto, kWireVersion);
}

TEST(SvcWire, SubmitRoundTrip) {
  Submit s;
  s.tag = 42;
  s.line = "circuit=gen:counter:4:10 engine=bfv deadline=5";
  const Submit back = Submit::decode(roundTrip(s.encode()));
  EXPECT_EQ(back.tag, 42u);
  EXPECT_EQ(back.line, s.line);
}

TEST(SvcWire, JobDoneRoundTrip) {
  JobDone d;
  d.job = 7;
  d.status = "done";
  d.message = "";
  d.seconds = 1.25;
  d.queue_seconds = 0.5;
  d.worker = 3;
  d.iterations = 201;
  d.states = 200.0;
  d.peak_live_nodes = 12345;
  d.attempts = 2;
  d.evictions = 1;
  d.resumed = true;
  const JobDone back = JobDone::decode(roundTrip(d.encode()));
  EXPECT_EQ(back.job, 7u);
  EXPECT_EQ(back.status, "done");
  EXPECT_DOUBLE_EQ(back.seconds, 1.25);
  EXPECT_DOUBLE_EQ(back.states, 200.0);
  EXPECT_EQ(back.worker, 3u);
  EXPECT_EQ(back.iterations, 201u);
  EXPECT_EQ(back.peak_live_nodes, 12345u);
  EXPECT_EQ(back.attempts, 2u);
  EXPECT_EQ(back.evictions, 1u);
  EXPECT_TRUE(back.resumed);
}

TEST(SvcWire, EveryMessageTypeRoundTrips) {
  EXPECT_EQ(HelloAck::decode(roundTrip(HelloAck{9, "srv"}.encode())).session,
            9u);
  EXPECT_EQ(Accepted::decode(roundTrip(Accepted{1, 2}.encode())).job, 2u);
  EXPECT_EQ(Rejected::decode(roundTrip(Rejected{3, "no"}.encode())).reason,
            "no");
  {
    JobStarted m;
    m.job = 4;
    m.resumed = true;
    const JobStarted back = JobStarted::decode(roundTrip(m.encode()));
    EXPECT_EQ(back.job, 4u);
    EXPECT_TRUE(back.resumed);
  }
  {
    IterationUpdate m;
    m.job = 5;
    m.iteration = 17;
    m.frontier_states = 96.0;
    const IterationUpdate back =
        IterationUpdate::decode(roundTrip(m.encode()));
    EXPECT_EQ(back.iteration, 17u);
    EXPECT_DOUBLE_EQ(back.frontier_states, 96.0);
  }
  {
    JobEvicted m;
    m.job = 6;
    m.iteration = 8;
    m.worker = 2;
    const JobEvicted back = JobEvicted::decode(roundTrip(m.encode()));
    EXPECT_EQ(back.iteration, 8u);
    EXPECT_EQ(back.worker, 2u);
  }
  EXPECT_EQ(Cancel::decode(roundTrip(Cancel{11}.encode())).job, 11u);
  EXPECT_EQ(Evict::decode(roundTrip(Evict{12}.encode())).job, 12u);
  (void)StatsQuery::decode(roundTrip(StatsQuery{}.encode()));
  EXPECT_EQ(StatsReply::decode(roundTrip(StatsReply{"{}"}.encode())).json,
            "{}");
  EXPECT_FALSE(Shutdown::decode(roundTrip(Shutdown{false}.encode())).drain);
  (void)Bye::decode(roundTrip(Bye{}.encode()));
  EXPECT_EQ(WireError::decode(roundTrip(WireError{"boom"}.encode())).message,
            "boom");
}

TEST(SvcWire, AcceptedCarriesTheTraceId) {
  Accepted a;
  a.tag = 3;
  a.job = 9;
  a.trace = 0xDEADBEEFCAFEULL;
  const Accepted back = Accepted::decode(roundTrip(a.encode()));
  EXPECT_EQ(back.tag, 3u);
  EXPECT_EQ(back.job, 9u);
  EXPECT_EQ(back.trace, 0xDEADBEEFCAFEULL);
}

TEST(SvcWire, StatsQueryFlagsRoundTrip) {
  for (const std::uint32_t flags :
       {std::uint32_t{0}, StatsQuery::kIncludeMetrics,
        StatsQuery::kIncludeSpans, StatsQuery::kIncludeFlight,
        StatsQuery::kAllSections}) {
    StatsQuery q;
    q.flags = flags;
    EXPECT_EQ(StatsQuery::decode(roundTrip(q.encode())).flags, flags);
  }
}

TEST(SvcWire, StatsQueryUnknownSectionFlagsRejected) {
  // Forward-compat guard: a client asking for a section this server does
  // not know must get a protocol error, not a silently-wrong reply.
  StatsQuery q;
  q.flags = StatsQuery::kAllSections;
  Frame f = q.encode();
  f.payload[0] |= 0x80;  // set a flag bit beyond kAllSections
  EXPECT_THROW(StatsQuery::decode(f), Error);
}

TEST(SvcWire, TruncatedStatsQueryPayloadRejected) {
  Frame f = StatsQuery{}.encode();
  ASSERT_FALSE(f.payload.empty());
  f.payload.pop_back();
  EXPECT_THROW(StatsQuery::decode(f), Error);
}

TEST(SvcWire, CorruptedStatsReplyCrcMismatch) {
  StatsReply reply;
  reply.json = "{\"queue_depth\": 3}";
  std::vector<std::uint8_t> bytes = encodeFrame(reply.encode());
  bytes[kFrameHeaderBytes + 2] ^= 0x10;
  FrameType t;
  std::uint32_t crc;
  const std::uint32_t len = decodeFrameHeader(bytes.data(), &t, &crc);
  EXPECT_THROW(
      checkPayloadCrc(bytes.data() + kFrameHeaderBytes, len, crc), Error);
}

TEST(SvcWire, DecodeRejectsWrongFrameType) {
  const Frame f = Cancel{1}.encode();
  EXPECT_THROW(Evict::decode(f), Error);
}

TEST(SvcWire, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{}.encode());
  bytes[0] ^= 0xFF;
  FrameType t;
  std::uint32_t crc;
  EXPECT_THROW(decodeFrameHeader(bytes.data(), &t, &crc), Error);
}

TEST(SvcWire, VersionSkewRejected) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{}.encode());
  bytes[4] = kWireVersion + 1;
  FrameType t;
  std::uint32_t crc;
  EXPECT_THROW(decodeFrameHeader(bytes.data(), &t, &crc), Error);
}

TEST(SvcWire, ReservedBitsRejected) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{}.encode());
  bytes[6] = 1;
  FrameType t;
  std::uint32_t crc;
  EXPECT_THROW(decodeFrameHeader(bytes.data(), &t, &crc), Error);
}

TEST(SvcWire, OversizedLengthPrefixRejected) {
  // A corrupted (or hostile) length prefix must be rejected from the
  // header alone — before any allocation happens.
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{}.encode());
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &huge, 4);
  FrameType t;
  std::uint32_t crc;
  EXPECT_THROW(decodeFrameHeader(bytes.data(), &t, &crc), Error);
}

TEST(SvcWire, CorruptedPayloadCrcMismatch) {
  Submit s;
  s.tag = 1;
  s.line = "circuit=gen:counter:4:10";
  std::vector<std::uint8_t> bytes = encodeFrame(s.encode());
  bytes[kFrameHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  FrameType t;
  std::uint32_t crc;
  const std::uint32_t len = decodeFrameHeader(bytes.data(), &t, &crc);
  EXPECT_THROW(
      checkPayloadCrc(bytes.data() + kFrameHeaderBytes, len, crc), Error);
}

TEST(SvcWire, EncodeRejectsOversizedPayload) {
  Frame f;
  f.type = FrameType::kSubmit;
  f.payload.resize(kMaxFramePayload + 1);
  EXPECT_THROW(encodeFrame(f), Error);
}

TEST(SvcWire, ReaderRejectsTruncationAndTrailingBytes) {
  Writer w;
  w.u64(7);
  w.str("abc");
  {
    // Truncated: drop the string's last byte.
    std::vector<std::uint8_t> cut(w.buf.begin(), w.buf.end() - 1);
    Reader r(cut);
    EXPECT_EQ(r.u64(), 7u);
    EXPECT_THROW(r.str(), Error);
  }
  {
    // Trailing: a reader that does not consume everything must fail done().
    Reader r(w.buf);
    EXPECT_EQ(r.u64(), 7u);
    EXPECT_THROW(r.done(), Error);
  }
}

TEST(SvcWire, ReaderLengthPrefixBeyondPayloadRejected) {
  // A string whose length prefix points past the payload end must not read
  // out of bounds.
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');    // only 1 does
  Reader r(w.buf);
  EXPECT_THROW(r.str(), Error);
}

// --- stream-level robustness over a real socketpair ---------------------

struct Pair {
  Fd a, b;
  Pair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

TEST(SvcWire, SendRecvAcrossSocket) {
  Pair p;
  Submit s;
  s.tag = 5;
  s.line = "circuit=gen:johnson:8";
  sendFrame(p.a, s.encode());
  std::optional<Frame> got = recvFrame(p.b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(Submit::decode(*got).line, s.line);
}

TEST(SvcWire, CleanEofAtFrameBoundaryIsNotAnError) {
  Pair p;
  sendFrame(p.a, Bye{}.encode());
  p.a.close();
  EXPECT_TRUE(recvFrame(p.b).has_value());   // the Bye
  EXPECT_FALSE(recvFrame(p.b).has_value());  // then orderly EOF
}

TEST(SvcWire, DisconnectMidHeaderIsAnError) {
  Pair p;
  const std::vector<std::uint8_t> bytes = encodeFrame(Bye{}.encode());
  ASSERT_EQ(::send(p.a.get(), bytes.data(), 7, 0), 7);  // header cut short
  p.a.close();
  EXPECT_THROW(recvFrame(p.b), Error);
}

TEST(SvcWire, DisconnectMidPayloadIsAnError) {
  Pair p;
  Submit s;
  s.tag = 1;
  s.line = "circuit=gen:counter:4:10";
  const std::vector<std::uint8_t> bytes = encodeFrame(s.encode());
  const std::size_t cut = kFrameHeaderBytes + 5;  // header + partial payload
  ASSERT_EQ(::send(p.a.get(), bytes.data(), cut, 0),
            static_cast<ssize_t>(cut));
  p.a.close();
  EXPECT_THROW(recvFrame(p.b), Error);
}

TEST(SvcWire, GarbageBytesAreAnErrorNotACrash) {
  Pair p;
  std::vector<std::uint8_t> junk(64);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 31));
  }
  ASSERT_EQ(::send(p.a.get(), junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  EXPECT_THROW(recvFrame(p.b), Error);
}

TEST(SvcWire, EndpointParse) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_TRUE(u.is_unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const Endpoint t = Endpoint::parse("tcp:localhost:9000");
  EXPECT_FALSE(t.is_unix);
  EXPECT_EQ(t.host, "localhost");
  EXPECT_EQ(t.port, 9000);
  EXPECT_THROW(Endpoint::parse("ftp:nope"), Error);
  EXPECT_THROW(Endpoint::parse("unix:"), Error);
  EXPECT_THROW(Endpoint::parse("tcp:host:notaport"), Error);
  EXPECT_THROW(Endpoint::parse("tcp:host:70000"), Error);
}

}  // namespace
}  // namespace bfvr::svc
