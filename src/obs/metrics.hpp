// Process-wide metrics registry for the serving tier: named counters,
// gauges and log2-bucketed histograms with relaxed-atomic hot-path updates,
// plus Prometheus-text and JSON exposition.
//
// Design constraints, in order:
//
//  * The hot path is one relaxed fetch_add on a pre-resolved instrument —
//    callers look an instrument up once (registry mutex) and keep the
//    reference; references stay valid for the registry's lifetime (deque
//    storage, instruments are never removed).
//  * Instruments never touch bdd::OpStats or any engine state, so enabling
//    or reading metrics cannot perturb op-count bit-identity.
//  * Exposition is pull-based and lossy-consistent: text()/json() read each
//    atomic individually (no global pause), which is the usual Prometheus
//    contract for live counters.
//
// Histograms bucket by powers of two: bucket i counts observations v with
// v <= 2^i (in the instrument's raw unit, e.g. microseconds), the last
// bucket is the +Inf overflow. Exposition divides by `scale` so a
// microsecond histogram reads in seconds (`le="0.001"`), matching the
// _seconds suffix convention.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace bfvr::obs {

/// Monotonic event count. Relaxed increments; never reset during a run.
class Counter {
 public:
  void inc(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed level (queue depth, live sessions). Typically
/// sampled: the owner set()s the current value right before exposition.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram over a raw integer unit. Bucket i has upper
/// bound 2^i (i in [0, kBuckets-2]); the last bucket is +Inf.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Index of the bucket recording `v`: the smallest i with v <= 2^i,
  /// clamped into the +Inf bucket. 0 and 1 land in bucket 0 (le=1).
  static std::size_t bucketOf(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (i + 1 < kBuckets && v > (std::uint64_t{1} << i)) ++i;
    return i;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  /// Record a duration in seconds into a microsecond-unit histogram
  /// (the registration should use kSecondsScale). Negative clamps to 0.
  void observeSeconds(double seconds) noexcept {
    observe(seconds <= 0.0 ? 0
                           : static_cast<std::uint64_t>(seconds * 1e6 + 0.5));
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sumRaw() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Exposition divisor for histograms that record microseconds but report
/// seconds (`*_seconds` naming convention).
inline constexpr double kSecondsScale = 1e6;

/// Render one `key="value"` Prometheus label pair, escaping the value.
std::string metricLabel(const std::string& key, const std::string& value);

/// The instrument registry. Lookup is mutex-protected and idempotent: the
/// same (name, labels) always returns the same instrument. Intended use is
/// one process-wide instance (global()), but instances are independent so
/// tests can run isolated registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every serving-tier instrument lives in.
  static Registry& global();

  /// `labels`, when non-empty, is a pre-rendered Prometheus label body
  /// (`tenant="alpha"` — see metricLabel; join multiple pairs with ',').
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  /// `scale` divides raw bucket bounds and sums at exposition (use
  /// kSecondsScale for microsecond-recorded `*_seconds` histograms). The
  /// first registration of a name fixes its scale.
  Histogram& histogram(const std::string& name, const std::string& labels = "",
                       double scale = 1.0);

  /// Prometheus text exposition: families sorted by name, `# TYPE` line per
  /// family, cumulative `_bucket{le=...}` series per histogram.
  std::string text() const;
  /// JSON exposition: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with per-bucket (non-cumulative) counts.
  std::string json() const;

  /// Zero every instrument's value, keeping registrations and references
  /// valid. For tests that want a clean slate on the global registry.
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::string labels;  ///< rendered label body, may be empty
    double scale = 1.0;  ///< histograms only
    T v;
  };

  template <typename T>
  static T& find(std::deque<Entry<T>>& store, const std::string& name,
                 const std::string& labels, double scale);

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace bfvr::obs
