// A CTL model checker over the circuit's state graph — the rest of the
// paper's "symbolic model checker" future work. Atomic propositions are
// characteristic functions over the current-state variables; temporal
// operators are the classic backward fixpoints over TransitionRelation
// preimages (inputs act as nondeterminism: EX p holds where SOME input
// leads to p, AX p where EVERY input does).
#pragma once

#include <memory>

#include "sym/transition.hpp"

namespace bfvr::reach {

using bdd::Bdd;

/// Immutable CTL formula. Build with the static factories / operators:
///   Ctl::atom(chi), !p, p && q, p || q,
///   Ctl::EX(p), EF, EG, EU(p, q), AX, AF, AG, AU(p, q).
class Ctl {
 public:
  static Ctl top();
  static Ctl bottom();
  /// Predicate over the current-state variables of the space it will be
  /// evaluated in.
  static Ctl atom(Bdd chi);

  Ctl operator!() const;
  Ctl operator&&(const Ctl& o) const;
  Ctl operator||(const Ctl& o) const;

  static Ctl EX(Ctl p);
  static Ctl EF(Ctl p);
  static Ctl EG(Ctl p);
  static Ctl EU(Ctl p, Ctl q);
  static Ctl AX(Ctl p);
  static Ctl AF(Ctl p);
  static Ctl AG(Ctl p);
  static Ctl AU(Ctl p, Ctl q);

  struct Node;
  const Node& node() const { return *node_; }

 private:
  explicit Ctl(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

enum class CtlOp : std::uint8_t {
  kTrue,
  kAtom,
  kNot,
  kAnd,
  kOr,
  kEX,
  kEG,
  kEU  // EU(lhs, rhs); EF p == EU(true, p)
};

struct Ctl::Node {
  CtlOp op = CtlOp::kTrue;
  Bdd chi;  // kAtom payload
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

/// Satisfying states of `f` (chi over the current variables). Fixpoints
/// iterate to convergence; inputs are existentially resolved by EX.
Bdd evalCtl(sym::StateSpace& s, const sym::TransitionRelation& tr,
            const Ctl& f);

/// Does the initial state satisfy f?
bool holdsInInit(sym::StateSpace& s, const sym::TransitionRelation& tr,
                 const Ctl& f);

}  // namespace bfvr::reach
