// Differential harness: the logical-zonotope engine against the BDD
// engines and the explicit-state oracle.
//
// Two regimes, per the subsystem contract:
//  * <= 20 state variables: exhaustive enumeration (explicitReach) is the
//    oracle. Exact-class results must equal the oracle set; lossy results
//    must contain it.
//  * above that: the BDD engines are the oracle. Each zonotope member of
//    the lz reached set converts to a characteristic BDD (the coset is
//    dims - rank parity constraints over the current-state variables), the
//    members OR together, and containment is the BDD implication
//    chi_bdd AND NOT chi_lz == false — no enumeration anywhere.
#include <gtest/gtest.h>

#include <string>

#include "bdd/bdd.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "circuit/orders.hpp"
#include "lz/lz_reach.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr {
namespace {

circuit::Netlist fromData(const char* name) {
  return circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/" + name);
}

lz::Bits rowFromMask(unsigned dims, std::uint64_t mask) {
  lz::Bits b(lz::wordsFor(dims), 0);
  b[0] = mask;
  return b;
}

/// Characteristic function of one reduced zonotope over the space's
/// current-state variables. In canonical form generator i is the only row
/// with its pivot bit p_i set and the center is 0 there, so beta_i = x[p_i]
/// and membership is exactly the parity equation
///   x[j] = c[j] XOR XOR_i g_i[j] * x[p_i]
/// for every non-pivot dimension j.
bdd::Bdd zonoChi(bdd::Manager& m, const sym::StateSpace& s,
                 const lz::GeneratorSet& z) {
  const unsigned dims = z.dims();
  std::vector<bool> is_pivot(dims, false);
  std::vector<unsigned> pivot(z.rank());
  for (unsigned i = 0; i < z.rank(); ++i) {
    pivot[i] = lz::lowestSetBit(z.generators()[i]);
    is_pivot[pivot[i]] = true;
  }
  bdd::Bdd chi = m.one();
  for (unsigned j = 0; j < dims; ++j) {
    if (is_pivot[j]) continue;
    bdd::Bdd rhs = lz::getBit(z.center(), j) ? m.one() : m.zero();
    for (unsigned i = 0; i < z.rank(); ++i) {
      if (lz::getBit(z.generators()[i], j)) {
        rhs ^= m.var(s.currentVar(pivot[i]));
      }
    }
    chi &= ~(m.var(s.currentVar(j)) ^ rhs);
  }
  return chi;
}

bdd::Bdd pointChi(bdd::Manager& m, const sym::StateSpace& s,
                  const lz::Bits& p, unsigned dims) {
  bdd::Bdd chi = m.one();
  for (unsigned j = 0; j < dims; ++j) {
    const bdd::Bdd v = m.var(s.currentVar(j));
    chi &= lz::getBit(p, j) ? v : ~v;
  }
  return chi;
}

/// The whole lz reached set as one characteristic BDD.
bdd::Bdd lzChi(bdd::Manager& m, const sym::StateSpace& s,
               const lz::StateSet& set) {
  bdd::Bdd u = m.zero();
  for (const lz::GeneratorSet& z : set.zonos) u |= zonoChi(m, s, z);
  for (const std::uint64_t p : set.points) {
    u |= pointChi(m, s, rowFromMask(set.dims, p), set.dims);
  }
  for (const lz::Bits& p : set.wide_points) u |= pointChi(m, s, p, set.dims);
  return u;
}

// --- regime 1: exhaustive enumeration, <= 20 state variables --------------

TEST(LzDiff, ExhaustiveAgainstOracleOnShippedCircuits) {
  for (const char* name : {"arb4.bench", "cnt8m200.bench", "crc8.bench",
                           "fifo3.bench", "johnson8.bench", "twin6.bench"}) {
    const circuit::Netlist n = fromData(name);
    const lz::LzResult r = lz::lzReach(n);
    const auto oracle = circuit::explicitReach(n);
    ASSERT_TRUE(oracle.has_value()) << name;
    const unsigned dims = static_cast<unsigned>(n.latches().size());

    // Soundness on every circuit: nothing reachable is ever lost.
    for (std::uint64_t st : *oracle) {
      ASSERT_TRUE(r.reached.containsPoint(rowFromMask(dims, st)))
          << name << " lost state " << st;
    }
    if (r.exact) {
      // Exact class: the count pins the set to exactly the oracle.
      ASSERT_EQ(r.status, RunStatus::kDone) << name;
      EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()))
          << name;
    } else {
      ASSERT_EQ(r.status, RunStatus::kInconclusive) << name;
      EXPECT_GE(r.states, static_cast<double>(oracle->size())) << name;
    }
  }
}

TEST(LzDiff, ExhaustiveAgainstOracleOnGenerators) {
  const circuit::Netlist circuits[] = {
      circuit::makeLfsrFree(8), circuit::makeLfsrFree(12),
      circuit::makeCrc(8), circuit::makeJohnson(8),
      circuit::makeTwinShift(8), circuit::makeFifoCtrl(3),
      circuit::makeRandomSeq(10, 3, 40, 5)};
  for (const circuit::Netlist& n : circuits) {
    const lz::LzResult r = lz::lzReach(n);
    const auto oracle = circuit::explicitReach(n);
    ASSERT_TRUE(oracle.has_value()) << n.name();
    const unsigned dims = static_cast<unsigned>(n.latches().size());
    for (std::uint64_t st : *oracle) {
      ASSERT_TRUE(r.reached.containsPoint(rowFromMask(dims, st)))
          << n.name() << " lost state " << st;
    }
    if (r.exact) {
      EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()))
          << n.name();
    } else {
      EXPECT_GE(r.states, static_cast<double>(oracle->size())) << n.name();
    }
  }
}

// --- regime 2: BDD containment, > 20 state variables ----------------------

TEST(LzDiff, BddEquivalenceOnWideAffineCircuit) {
  // twin14: 28 latches, past the 20-variable enumeration cutoff, and a
  // reached set that is a proper affine subspace (rank 14 of 28 dims), so
  // the parity-constraint conversion is exercised for real. The BDD
  // engine computes the reached chi; the lz set must be exactly the same
  // set, proven by BDD implication in both directions. The BFV engine is
  // the one that completes the twin family (the chi-based TR flow is
  // exactly what blows up on it); it converts its result to chi at the
  // end.
  const circuit::Netlist n = circuit::makeTwinShift(14);
  const lz::LzResult z = lz::lzReach(n);
  ASSERT_EQ(z.status, RunStatus::kDone);
  ASSERT_TRUE(z.exact);

  bdd::Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  const reach::ReachResult b = reach::reachBfv(s, {});
  ASSERT_EQ(b.status, RunStatus::kDone);
  ASSERT_FALSE(b.reached_chi.isNull());
  EXPECT_DOUBLE_EQ(b.states, z.states);

  const bdd::Bdd u = lzChi(m, s, z.reached);
  EXPECT_TRUE((b.reached_chi & ~u).isFalse());  // chi subseteq lz
  EXPECT_TRUE((u & ~b.reached_chi).isFalse());  // lz subseteq chi
}

TEST(LzDiff, BddEquivalenceOnCappedLfsr32) {
  // 32 state variables, equal iteration caps: the 301-state prefix must be
  // the identical set, not just the identical count.
  const circuit::Netlist n = fromData("lfsr32.bench");
  lz::LzOptions lo;
  lo.max_iterations = 300;
  const lz::LzResult z = lz::lzReach(n, lo);
  ASSERT_EQ(z.status, RunStatus::kDone);
  ASSERT_TRUE(z.exact);

  bdd::Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  reach::ReachOptions ro;
  ro.max_iterations = 300;
  const reach::ReachResult b = reach::reachTr(s, ro);
  ASSERT_EQ(b.status, RunStatus::kDone);
  ASSERT_FALSE(b.reached_chi.isNull());
  EXPECT_DOUBLE_EQ(b.states, z.states);

  const bdd::Bdd u = lzChi(m, s, z.reached);
  EXPECT_TRUE((b.reached_chi & ~u).isFalse());
  EXPECT_TRUE((u & ~b.reached_chi).isFalse());
}

TEST(LzDiff, BddContainmentOnLossyCircuit) {
  // Non-affine circuit: the lz set is allowed to be bigger, never smaller.
  // johnson8's enable/reset control logic makes it lossy; the BDD chi must
  // imply the lz characteristic function.
  const circuit::Netlist n = fromData("johnson8.bench");
  const lz::LzResult z = lz::lzReach(n);
  ASSERT_EQ(z.status, RunStatus::kInconclusive);

  bdd::Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  const reach::ReachResult b = reach::reachTr(s, {});
  ASSERT_EQ(b.status, RunStatus::kDone);
  ASSERT_FALSE(b.reached_chi.isNull());

  const bdd::Bdd u = lzChi(m, s, z.reached);
  EXPECT_TRUE((b.reached_chi & ~u).isFalse());
  // And the over-approximation is real here: strictly bigger.
  EXPECT_FALSE((u & ~b.reached_chi).isFalse());
  EXPECT_GT(z.states, b.states);
}

}  // namespace
}  // namespace bfvr
