file(REMOVE_RECURSE
  "libbfvr_bdd.a"
)
