
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/image.cpp" "src/CMakeFiles/bfvr_sym.dir/sym/image.cpp.o" "gcc" "src/CMakeFiles/bfvr_sym.dir/sym/image.cpp.o.d"
  "/root/repo/src/sym/ordersearch.cpp" "src/CMakeFiles/bfvr_sym.dir/sym/ordersearch.cpp.o" "gcc" "src/CMakeFiles/bfvr_sym.dir/sym/ordersearch.cpp.o.d"
  "/root/repo/src/sym/simulate.cpp" "src/CMakeFiles/bfvr_sym.dir/sym/simulate.cpp.o" "gcc" "src/CMakeFiles/bfvr_sym.dir/sym/simulate.cpp.o.d"
  "/root/repo/src/sym/space.cpp" "src/CMakeFiles/bfvr_sym.dir/sym/space.cpp.o" "gcc" "src/CMakeFiles/bfvr_sym.dir/sym/space.cpp.o.d"
  "/root/repo/src/sym/transition.cpp" "src/CMakeFiles/bfvr_sym.dir/sym/transition.cpp.o" "gcc" "src/CMakeFiles/bfvr_sym.dir/sym/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
