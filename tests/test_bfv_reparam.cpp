// §2.6 re-parameterization: canonicalizing raw simulated vectors.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

const std::vector<unsigned> kChoice{0, 1, 2, 3};
const std::vector<unsigned> kParams{4, 5, 6, 7};

/// Random raw vector over the parameter variables plus its brute-force
/// range.
struct RawVector {
  std::vector<Bdd> outputs;
  Set range;
};

RawVector randomRaw(Manager& m, Rng& rng, unsigned n, unsigned np) {
  RawVector rv;
  std::vector<std::uint64_t> tts(n);
  std::vector<unsigned> pvars(kParams.begin(), kParams.begin() + np);
  for (unsigned i = 0; i < n; ++i) {
    tts[i] = test::randomTruth(rng, np);
    rv.outputs.push_back(test::bddFromTruth(m, pvars, tts[i]));
  }
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << np); ++a) {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (((tts[i] >> a) & 1U) != 0) x |= std::uint64_t{1} << i;
    }
    rv.range.insert(x);
  }
  return rv;
}

class ReparamSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReparamSweep, RangeIsPreservedAndCanonical) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  Manager m(8);
  const RawVector rv = randomRaw(m, rng, 4, 4);
  for (const QuantSchedule sched :
       {QuantSchedule::kStaticOrder, QuantSchedule::kSupportCost}) {
    ReparamOptions opts;
    opts.schedule = sched;
    const Bfv f = reparameterize(m, rv.outputs, kChoice, kParams, opts);
    std::string why;
    ASSERT_TRUE(f.checkCanonical(&why)) << why;
    EXPECT_EQ(test::setOf(f), rv.range);
  }
}

TEST_P(ReparamSweep, SchedulesAgreeOnTheCanonicalResult) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
  Manager m(8);
  const RawVector rv = randomRaw(m, rng, 4, 3);
  ReparamOptions a;
  a.schedule = QuantSchedule::kStaticOrder;
  ReparamOptions b;
  b.schedule = QuantSchedule::kSupportCost;
  const std::vector<unsigned> params(kParams.begin(), kParams.begin() + 3);
  EXPECT_EQ(reparameterize(m, rv.outputs, kChoice, params, a),
            reparameterize(m, rv.outputs, kChoice, params, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReparamSweep, ::testing::Range(0, 20));

TEST(BfvReparam, ConstantVectorBecomesPoint) {
  Manager m(8);
  std::vector<Bdd> outs{m.one(), m.zero(), m.one(), m.zero()};
  const Bfv f = reparameterize(m, outs, kChoice, kParams);
  EXPECT_EQ(f, Bfv::point(m, kChoice, {true, false, true, false}));
}

TEST(BfvReparam, NoParametersIsAlreadyDone) {
  // A vector that is constant per parameter slice and uses no parameters
  // must come back unchanged (it is a singleton's canonical form).
  Manager m(8);
  std::vector<Bdd> outs{m.zero(), m.zero(), m.zero(), m.zero()};
  const Bfv f = reparameterize(m, outs, kChoice, {});
  EXPECT_DOUBLE_EQ(f.countStates(), 1.0);
}

TEST(BfvReparam, IdentityVectorGivesUniverse) {
  Manager m(8);
  std::vector<Bdd> outs;
  for (unsigned p : kParams) outs.push_back(m.var(p));
  const Bfv f = reparameterize(m, outs, kChoice, kParams);
  EXPECT_EQ(f, Bfv::universe(m, kChoice));
}

TEST(BfvReparam, SharedParameterCouplesComponents) {
  // (p, p, ~p): range {110, 001} — strong coupling across components.
  Manager m(8);
  const Bdd p = m.var(4);
  std::vector<Bdd> outs{p, p, ~p};
  const std::vector<unsigned> choice{0, 1, 2};
  const std::vector<unsigned> params{4};
  const Bfv f = reparameterize(m, outs, choice, params);
  EXPECT_EQ(test::setOf(f), (Set{0b011, 0b100}));
}

TEST(BfvReparam, ArityMismatchThrows) {
  Manager m(8);
  std::vector<Bdd> outs{m.one()};
  EXPECT_THROW((void)reparameterize(m, outs, kChoice, kParams),
               std::invalid_argument);
}

TEST(BfvReparam, ManyParametersFewValues) {
  // 6 parameters collapsing to a 2-member range exercises the support
  // optimization (most components ignore most parameters).
  Manager m(16);
  const std::vector<unsigned> choice{0, 1, 2, 3};
  std::vector<unsigned> params{8, 9, 10, 11, 12, 13};
  const Bdd p = m.var(8);
  std::vector<Bdd> outs{p, m.zero(), p, m.one()};
  const Bfv f = reparameterize(m, outs, choice, params);
  EXPECT_EQ(test::setOf(f), (Set{0b1000, 0b1101}));
}

}  // namespace
}  // namespace bfvr::bfv
