file(REMOVE_RECURSE
  "CMakeFiles/bfvr_bdd.dir/bdd/cofactor.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/cofactor.cpp.o.d"
  "CMakeFiles/bfvr_bdd.dir/bdd/compose.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/compose.cpp.o.d"
  "CMakeFiles/bfvr_bdd.dir/bdd/count.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/count.cpp.o.d"
  "CMakeFiles/bfvr_bdd.dir/bdd/dot.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/dot.cpp.o.d"
  "CMakeFiles/bfvr_bdd.dir/bdd/manager.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/manager.cpp.o.d"
  "CMakeFiles/bfvr_bdd.dir/bdd/ops.cpp.o"
  "CMakeFiles/bfvr_bdd.dir/bdd/ops.cpp.o.d"
  "libbfvr_bdd.a"
  "libbfvr_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
