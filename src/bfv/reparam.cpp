// Re-parameterization (§2.6): canonicalize the raw vector produced by
// symbolic simulation.
//
// The simulated next-state functions depend on *parameter* variables (the
// previous iteration's choice variables and the primary inputs), not on the
// target choice variables. For every fixed assignment of the parameters the
// vector is constant — i.e. the canonical representation of a singleton —
// so existentially quantifying the parameters one at a time with the
// union-of-cofactors rule keeps every parameter slice canonical and ends
// with the canonical vector of the simulated range.
//
// The quantification order matters for intermediate sizes; following §3 we
// implement a dynamic schedule driven by per-component supports (quantify
// first the parameter that the fewest / smallest components depend on), and
// skip components that do not depend on the variable being quantified.
//
// Hot-path structure (this is the inner loop of the Fig. 2 flow):
//  * both cofactor slices of a component come from ONE fused traversal
//    (Manager::cofactor2) instead of two composeRec walks;
//  * per-component supports are bitsets maintained incrementally — after a
//    slice union, only components whose edge actually changed are re-walked
//    (identical raw edge => identical function => identical support);
//  * per-component node counts are memoized alongside the supports, so the
//    kSupportCost schedule reads them in O(1) instead of recounting inside
//    its O(pending × n) cost loop. After an automatic reorder they can be
//    stale until the component next changes; they only steer the heuristic.
//
// The loop is shared with the conjunctive-decomposition backend
// (cdec::reparameterizeCdec), which plugs in its constrain-based union.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>

#include "bfv/internal.hpp"

namespace bfvr::bfv {

namespace internal {

namespace {

/// Cost of quantifying `var` now: (number of dependent components, total
/// node count of those components). Smaller is better — fewer components
/// touched means more of the union sweep stays on its fast path.
struct QuantCost {
  std::size_t dependents = 0;
  std::size_t nodes = 0;

  bool operator<(const QuantCost& o) const {
    if (dependents != o.dependents) return dependents < o.dependents;
    return nodes < o.nodes;
  }
};

/// Per-component support as a variable-indexed bitset (supports are sets of
/// variable *indices*, so they are stable across dynamic reordering).
class SupportBits {
 public:
  explicit SupportBits(std::size_t num_vars)
      : words_((num_vars + 63) / 64, 0) {}

  void assignFrom(const std::vector<unsigned>& vars) {
    std::fill(words_.begin(), words_.end(), 0);
    for (const unsigned v : vars) {
      words_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
  bool test(unsigned v) const noexcept {
    return (words_[v >> 6] >> (v & 63)) & 1U;
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

std::vector<Bdd> quantifyParams(Manager& m, std::vector<Bdd> cur,
                                const std::vector<unsigned>& choice_vars,
                                std::span<const unsigned> param_vars,
                                const ReparamOptions& opts,
                                SliceUnion slice_union) {
  std::vector<unsigned> pending(param_vars.begin(), param_vars.end());
  const bool dynamic = opts.schedule == QuantSchedule::kSupportCost;

  // The bitsets must cover every variable a support walk can report: the
  // manager's current variables, every parameter we are about to quantify,
  // and the choice variables the slice unions introduce.
  std::size_t num_vars = m.numVars();
  for (const unsigned v : param_vars) {
    num_vars = std::max<std::size_t>(num_vars, v + 1);
  }
  for (const unsigned v : choice_vars) {
    num_vars = std::max<std::size_t>(num_vars, v + 1);
  }

  const std::size_t n = cur.size();
  std::vector<SupportBits> supports(n, SupportBits(num_vars));
  std::vector<std::size_t> node_counts(n, 0);
  auto rewalk = [&](std::size_t i) {
    supports[i].assignFrom(m.support(cur[i]));
    if (dynamic) node_counts[i] = m.nodeCount(cur[i]);
  };
  for (std::size_t i = 0; i < n; ++i) rewalk(i);

  // kStaticOrder consumes `pending` in place through an order-preserving
  // cursor; kSupportCost swap-pops (order is irrelevant there — the
  // schedule recomputes the cheapest variable every round).
  std::size_t cursor = 0;
  while (dynamic ? !pending.empty() : cursor < pending.size()) {
    // Pick the next parameter variable to quantify out.
    unsigned v;
    if (dynamic) {
      std::size_t pick = 0;
      QuantCost best;
      bool have = false;
      for (std::size_t c = 0; c < pending.size(); ++c) {
        QuantCost cost;
        for (std::size_t i = 0; i < n; ++i) {
          if (supports[i].test(pending[c])) {
            ++cost.dependents;
            cost.nodes += node_counts[i];
          }
        }
        if (!have || cost < best) {
          best = cost;
          pick = c;
          have = true;
        }
      }
      v = pending[pick];
      pending[pick] = pending.back();
      pending.pop_back();
    } else {
      v = pending[cursor++];
    }

    bool touched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (supports[i].test(v)) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;  // nothing depends on v: exists is the identity

    std::vector<Bdd> lo(n), hi(n);
    if (m.threads() > 1) {
      // The per-component cofactors are independent: each task writes only
      // its own lo[i]/hi[i] slots, so the pool may run them on any worker.
      std::vector<std::function<void()>> fns;
      fns.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (supports[i].test(v)) {
          fns.push_back([&m, &cur, &lo, &hi, i, v] {
            std::tie(lo[i], hi[i]) = m.cofactor2(cur[i], v);
          });
        } else {
          lo[i] = cur[i];
          hi[i] = cur[i];
        }
      }
      m.parallelInvoke(fns);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (supports[i].test(v)) {
          std::tie(lo[i], hi[i]) = m.cofactor2(cur[i], v);
        } else {
          lo[i] = cur[i];
          hi[i] = cur[i];
        }
      }
    }
    std::vector<Bdd> next = slice_union(m, choice_vars, lo, hi);
    // Incremental support maintenance: compare edges while BOTH vectors are
    // alive (so no index can have been recycled by a GC in between). An
    // unchanged edge is the same function — support and size carry over.
    for (std::size_t i = 0; i < n; ++i) {
      const bool changed = next[i].raw() != cur[i].raw();
      cur[i] = std::move(next[i]);
      if (changed) rewalk(i);
    }
    next.clear();
    lo.clear();
    hi.clear();
    m.maybeGc();
  }
  return cur;
}

}  // namespace internal

Bfv reparameterize(Manager& m, std::span<const Bdd> outputs,
                   std::vector<unsigned> choice_vars,
                   std::span<const unsigned> param_vars,
                   const ReparamOptions& opts) {
  if (outputs.size() != choice_vars.size()) {
    throw std::invalid_argument("reparameterize: arity mismatch");
  }
  std::vector<Bdd> cur(outputs.begin(), outputs.end());
  cur = internal::quantifyParams(m, std::move(cur), choice_vars, param_vars,
                                 opts, &internal::unionCore);
  return Bfv::fromComponents(m, std::move(choice_vars), std::move(cur),
                             /*trusted=*/true);
}

}  // namespace bfvr::bfv
