// Experiment: Table 3 of the paper — size of the reached set's
// characteristic function vs the shared size of its Boolean functional
// vector, across variable orders, on a dependency-rich circuit (the s4863
// role is played by the twin shift register, whose reachable set is the
// paper's own chi = AND_i (a_i == b_i) example; a FIFO controller gives a
// second, less extreme instance).
#include "support.hpp"
#include "sym/ordersearch.hpp"

using namespace bfvr;
using namespace bfvr::bench;

namespace {

reach::ReachResult runOrder(const circuit::Netlist& n,
                            const std::vector<circuit::ObjRef>& order,
                            bool trace) {
  bdd::Manager m(0);
  sym::StateSpace s(m, n, order);
  reach::ReachOptions opts;
  opts.budget.max_seconds = 30.0;
  opts.trace = trace;
  return reach::reachBfv(s, opts);
}

void printRow(const char* label, const reach::ReachResult& r) {
  if (r.status != RunStatus::kDone) {
    std::printf("%-10s %14s %14s %10s\n", label, to_string(r.status).c_str(),
                "-", "-");
    return;
  }
  std::printf("%-10s %14zu %14zu %10.0f\n", label, r.chi_nodes, r.bfv_nodes,
              r.states);
}

void table(const circuit::Netlist& n, JsonLog& log, JsonLog& trace) {
  std::printf("Table 3 (%s): reached-set sizes per order\n",
              n.name().c_str());
  std::printf("%-10s %14s %14s %10s\n", "order", "Char.Fn nodes",
              "BFV shared", "states");
  hr(52);
  const circuit::OrderSpec orders[] = {
      {circuit::OrderKind::kTopo, 0},    {circuit::OrderKind::kNatural, 0},
      {circuit::OrderKind::kReverse, 0}, {circuit::OrderKind::kRandom, 1},
      {circuit::OrderKind::kRandom, 2},
  };
  for (const circuit::OrderSpec& order : orders) {
    const reach::ReachResult r =
        runOrder(n, circuit::makeOrder(n, order), trace.enabled());
    printRow(order.label().c_str(), r);
    log.push(runObject(n.name(), order.label(), "BFV-Fig2", r));
    pushTrace(trace, n.name(), order.label(), "BFV-Fig2", r);
  }
  // The paper's better external orders (D/P) are stand-ins for "a search
  // found something good": reproduce with the offline hill-climb.
  const auto searched = sym::searchOrder(
      n, circuit::makeOrder(n, {circuit::OrderKind::kRandom, 1}), {});
  const reach::ReachResult r = runOrder(n, searched, trace.enabled());
  printRow("searched", r);
  log.push(runObject(n.name(), "searched", "BFV-Fig2", r));
  pushTrace(trace, n.name(), "searched", "BFV-Fig2", r);
  hr(52);
}

}  // namespace

int main(int argc, char** argv) {
  JsonLog log = jsonLogFromArgs(argc, argv, "table3");
  JsonLog trace = traceLogFromArgs(argc, argv, "table3");
  table(circuit::makeTwinShift(14), log, trace);
  std::printf("\n");
  table(circuit::makeFifoCtrl(4), log, trace);
  std::printf(
      "\nShape to compare with the paper: the BFV shared size stays small\n"
      "and nearly order-independent, while the characteristic function is\n"
      "orders of magnitude larger under unlucky orders (Table 3's 4.5x-9x\n"
      "gap, amplified here by the twin circuit's pairing structure).\n");
  return log.write() && trace.write() ? 0 : 1;
}
