file(REMOVE_RECURSE
  "CMakeFiles/bench_cdec_ablation.dir/bench_cdec_ablation.cpp.o"
  "CMakeFiles/bench_cdec_ablation.dir/bench_cdec_ablation.cpp.o.d"
  "bench_cdec_ablation"
  "bench_cdec_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdec_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
