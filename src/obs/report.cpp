#include "obs/report.hpp"

#include <cstdio>

#include "util/json.hpp"

namespace bfvr::obs {

namespace {

using util::JsonObject;

std::string phaseJson(const PhaseSeconds& p) {
  JsonObject o;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    o.add(to_string(static_cast<Phase>(i)), p.seconds[i]);
  }
  return o.str();
}

std::string opStatsJson(const bdd::OpStats& s) {
  JsonObject o;
  o.add("top_ops", s.top_ops)
      .add("recursive_steps", s.recursive_steps)
      .add("cache_lookups", s.cache_lookups)
      .add("cache_hits", s.cache_hits)
      .add("cache_inserts", s.cache_inserts)
      .add("cache_collisions", s.cache_collisions)
      .add("nodes_created", s.nodes_created)
      .add("gc_runs", s.gc_runs)
      .add("reorder_runs", s.reorder_runs)
      .add("reorder_swaps", s.reorder_swaps)
      .add("reorder_nodes_saved", s.reorder_nodes_saved)
      .addRaw("op_cache", opCacheJson(s));
  return o.str();
}

std::string iterationJson(const IterationRecord& r) {
  JsonObject o;
  o.add("iteration", r.iteration)
      .add("frontier_states", r.frontier_states)
      .add("frontier_nodes", static_cast<std::uint64_t>(r.frontier_nodes))
      .addRaw("phase_seconds", phaseJson(r.phase_seconds))
      .add("live_nodes", static_cast<std::uint64_t>(r.live_nodes))
      .add("peak_nodes", static_cast<std::uint64_t>(r.peak_nodes))
      .addRaw("ops_delta", opStatsJson(r.ops_delta))
      .add("cache_hit_rate", cacheHitRate(r.ops_delta));
  return o.str();
}

std::string eventJson(const bdd::ManagerEvent& e) {
  JsonObject o;
  o.add("kind", to_string(e.kind))
      .add("size_before", static_cast<std::uint64_t>(e.size_before))
      .add("size_after", static_cast<std::uint64_t>(e.size_after))
      .add("seconds", e.seconds)
      .add("automatic", e.automatic);
  if (e.kind == bdd::ManagerEvent::Kind::kPressure) {
    o.add("rung", to_string(e.rung));
  }
  return o.str();
}

std::string attemptJson(const JobAttempt& a) {
  JsonObject o;
  o.add("status", a.status).add("seconds", a.seconds);
  if (!a.message.empty()) o.add("message", a.message);
  if (!a.escalation.empty()) o.add("escalation", a.escalation);
  if (a.resumed) o.add("resumed", true);
  if (a.faults_injected != 0) o.add("faults_injected", a.faults_injected);
  return o.str();
}

}  // namespace

double cacheHitRate(const bdd::OpStats& ops) noexcept {
  if (ops.cache_lookups == 0) return 0.0;
  return static_cast<double>(ops.cache_hits) /
         static_cast<double>(ops.cache_lookups);
}

std::string opCacheJson(const bdd::OpStats& ops) {
  JsonObject o;
  for (std::size_t i = 0; i < bdd::kNumOpTags; ++i) {
    const auto tag = static_cast<bdd::OpTag>(i);
    const std::uint64_t hits = ops.opHits(tag);
    const std::uint64_t misses = ops.opMisses(tag);
    if (hits == 0 && misses == 0) continue;
    JsonObject entry;
    entry.add("hits", hits).add("misses", misses);
    o.addRaw(to_string(tag), entry.str());
  }
  return o.str();
}

std::string reportJson(const RunMeta& meta, const RunTrace& trace) {
  std::vector<std::string> iters;
  iters.reserve(trace.iterations.size());
  for (const IterationRecord& r : trace.iterations) {
    iters.push_back(iterationJson(r));
  }
  std::vector<std::string> events;
  events.reserve(trace.events.size());
  for (const bdd::ManagerEvent& e : trace.events) {
    events.push_back(eventJson(e));
  }
  JsonObject o;
  o.add("circuit", meta.circuit)
      .add("order", meta.order)
      .add("engine", meta.engine)
      .add("status", meta.status)
      .add("seconds", meta.seconds)
      .add("iterations", meta.iterations)
      .add("states", meta.states)
      .add("peak_live_nodes", static_cast<std::uint64_t>(meta.peak_live_nodes))
      .add("cache_hit_rate", cacheHitRate(meta.ops))
      .addRaw("phase_totals", phaseJson(trace.phase_totals))
      .addRaw("trace", util::jsonArray(iters))
      .addRaw("events", util::jsonArray(events));
  return o.str();
}

std::string jobsReportJson(const std::string& batch, unsigned workers,
                           double total_seconds,
                           std::span<const JobRecord> jobs) {
  std::vector<std::string> rows;
  rows.reserve(jobs.size());
  std::size_t done = 0, timeout = 0, memout = 0, cancelled = 0, error = 0,
              inconclusive = 0;
  std::uint64_t retries = 0;
  for (const JobRecord& j : jobs) {
    JsonObject o;
    o.add("name", j.name)
        .add("circuit", j.circuit)
        .add("order", j.order)
        .add("engine", j.engine)
        .add("status", j.status)
        .add("worker", j.worker)
        .add("queue_seconds", j.queue_seconds)
        .add("seconds", j.seconds)
        .add("iterations", j.iterations)
        .add("states", j.states)
        .add("peak_live_nodes", static_cast<std::uint64_t>(j.peak_live_nodes))
        .addRaw("ops", opStatsJson(j.ops))
        .add("cache_hit_rate", cacheHitRate(j.ops));
    if (!j.group.empty()) o.add("group", j.group).add("winner", j.winner);
    if (!j.message.empty()) o.add("message", j.message);
    if (j.attempts.size() > 1) {
      retries += j.attempts.size() - 1;
      o.add("retries", static_cast<std::uint64_t>(j.attempts.size() - 1));
      std::vector<std::string> atts;
      atts.reserve(j.attempts.size());
      for (const JobAttempt& a : j.attempts) atts.push_back(attemptJson(a));
      o.addRaw("attempts", util::jsonArray(atts));
    }
    if (!j.trace_json.empty()) o.addRaw("trace_report", j.trace_json);
    rows.push_back(o.str());
    if (j.status == "done") ++done;
    else if (j.status == "T.O.") ++timeout;
    else if (j.status == "M.O.") ++memout;
    else if (j.status == "cancelled") ++cancelled;
    else if (j.status == "inconclusive") ++inconclusive;
    else ++error;
  }
  JsonObject o;
  o.add("batch", batch)
      .add("workers", workers)
      .add("total_seconds", total_seconds)
      .add("jobs_total", static_cast<std::uint64_t>(jobs.size()))
      .add("jobs_done", static_cast<std::uint64_t>(done))
      .add("jobs_timeout", static_cast<std::uint64_t>(timeout))
      .add("jobs_memout", static_cast<std::uint64_t>(memout))
      .add("jobs_cancelled", static_cast<std::uint64_t>(cancelled))
      .add("jobs_error", static_cast<std::uint64_t>(error))
      .add("jobs_inconclusive", static_cast<std::uint64_t>(inconclusive))
      .add("retries_used", retries)
      .addRaw("jobs", util::jsonArray(rows));
  return o.str();
}

std::string reportTable(const RunMeta& meta, const RunTrace& trace) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "%s / %s / %s: %s in %.3fs, %.0f states, %u iterations, "
                "peak %zu live nodes, cache hit-rate %.1f%%\n",
                meta.circuit.c_str(), meta.order.c_str(), meta.engine.c_str(),
                meta.status.c_str(), meta.seconds, meta.states,
                meta.iterations, meta.peak_live_nodes,
                100.0 * cacheHitRate(meta.ops));
  out += line;
  // Whole-run per-op cache hit rates, skipping ops the run never used.
  std::string ops_line;
  for (std::size_t i = 0; i < bdd::kNumOpTags; ++i) {
    const auto tag = static_cast<bdd::OpTag>(i);
    const std::uint64_t hits = meta.ops.opHits(tag);
    const std::uint64_t total = hits + meta.ops.opMisses(tag);
    if (total == 0) continue;
    std::snprintf(line, sizeof line, "%s%s %.1f%% of %llu",
                  ops_line.empty() ? "" : ", ", to_string(tag),
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(total),
                  static_cast<unsigned long long>(total));
    ops_line += line;
  }
  if (!ops_line.empty()) out += "op cache: " + ops_line + "\n";
  std::snprintf(line, sizeof line,
                "%5s %12s %9s | %8s %8s %8s %8s %8s | %9s %9s %10s %5s\n",
                "iter", "frontier", "nodes", "image", "reparam", "union",
                "check", "convert", "live", "peak", "steps", "hit%");
  out += line;
  for (const IterationRecord& r : trace.iterations) {
    std::snprintf(line, sizeof line,
                  "%5u %12.0f %9zu | %8.4f %8.4f %8.4f %8.4f %8.4f | %9zu "
                  "%9zu %10llu %5.1f\n",
                  r.iteration, r.frontier_states, r.frontier_nodes,
                  r.phase_seconds[Phase::kImage],
                  r.phase_seconds[Phase::kReparam],
                  r.phase_seconds[Phase::kUnion],
                  r.phase_seconds[Phase::kCheck],
                  r.phase_seconds[Phase::kConvert], r.live_nodes,
                  r.peak_nodes,
                  static_cast<unsigned long long>(
                      r.ops_delta.recursive_steps),
                  100.0 * cacheHitRate(r.ops_delta));
    out += line;
  }
  if (!trace.events.empty()) {
    out += "events:\n";
    for (const bdd::ManagerEvent& e : trace.events) {
      std::snprintf(line, sizeof line,
                    "  [%s]%s %zu -> %zu in %.4fs\n", to_string(e.kind),
                    e.automatic ? " auto" : "", e.size_before, e.size_after,
                    e.seconds);
      out += line;
    }
  }
  return out;
}

std::string spanJson(const JobSpan& s) {
  std::vector<std::string> evs;
  evs.reserve(s.events.size());
  for (const SpanEvent& e : s.events) {
    util::JsonObject o;
    o.add("what", e.what).add("t", e.t);
    if (!e.detail.empty()) o.add("detail", e.detail);
    evs.push_back(o.str());
  }
  std::vector<std::string> workers;
  workers.reserve(s.workers.size());
  for (unsigned w : s.workers) workers.push_back(std::to_string(w));
  util::JsonObject o;
  o.add("trace_id", s.trace_id)
      .add("job", s.job)
      .add("tenant", s.tenant);
  if (!s.idem.empty()) o.add("idem", s.idem);
  o.add("status", s.status.empty() ? "in-flight" : s.status)
      .add("start", s.start)
      .add("evictions", s.evictions)
      .addRaw("workers", util::jsonArray(workers))
      .addRaw("events", util::jsonArray(evs));
  return o.str();
}

std::string svcReportJson(const SvcServerStats& server,
                          std::span<const SvcTenantStats> tenants) {
  return svcReportJson(server, tenants, SvcReportExtras{});
}

std::string svcReportJson(const SvcServerStats& server,
                          std::span<const SvcTenantStats> tenants,
                          const SvcReportExtras& extras) {
  // Totals across tenants; "jobs_done" and "leaked_nodes" are grepped by
  // the soak harness — keep the keys stable.
  std::uint64_t submitted = 0, rejected = 0, done = 0, timeout = 0,
                memout = 0, cancelled = 0, error = 0, inconclusive = 0,
                evictions = 0, resumes = 0;
  for (const SvcTenantStats& t : tenants) {
    submitted += t.submitted;
    rejected += t.rejected;
    done += t.done;
    timeout += t.timeout;
    memout += t.memout;
    cancelled += t.cancelled;
    error += t.error;
    inconclusive += t.inconclusive;
    evictions += t.evictions;
    resumes += t.resumes;
  }
  std::vector<std::string> rows;
  rows.reserve(tenants.size());
  for (const SvcTenantStats& t : tenants) {
    util::JsonObject o;
    o.add("tenant", t.name)
        .add("weight", t.weight)
        .add("submitted", t.submitted)
        .add("rejected", t.rejected)
        .add("done", t.done)
        .add("timeout", t.timeout)
        .add("memout", t.memout)
        .add("cancelled", t.cancelled)
        .add("error", t.error)
        .add("inconclusive", t.inconclusive)
        .add("evictions", t.evictions)
        .add("resumes", t.resumes)
        .add("queue_seconds", t.queue_seconds)
        .add("exec_seconds", t.exec_seconds);
    rows.push_back(o.str());
  }
  util::JsonObject root;
  root.add("server", server.name)
      .add("endpoint", server.endpoint)
      .add("workers", server.workers)
      .add("seconds", server.seconds)
      .add("sessions", server.sessions)
      .add("dispatches", server.dispatches)
      .add("jobs_submitted", submitted)
      .add("jobs_rejected", rejected)
      .add("jobs_done", done)
      .add("jobs_timeout", timeout)
      .add("jobs_memout", memout)
      .add("jobs_cancelled", cancelled)
      .add("jobs_error", error)
      .add("jobs_inconclusive", inconclusive)
      .add("evictions", evictions)
      .add("resumes", resumes)
      .add("warm_hits", server.warm_hits)
      .add("warm_misses", server.warm_misses)
      .add("resets_failed", server.resets_failed)
      .add("leaked_nodes", server.leaked_nodes)
      .add("queue_depth", extras.queue_depth)
      .add("running", extras.running)
      .addRaw("tenants", util::jsonArray(rows));
  if (!extras.spans.empty()) {
    std::vector<std::string> spans;
    spans.reserve(extras.spans.size());
    for (const JobSpan& s : extras.spans) spans.push_back(spanJson(s));
    root.addRaw("spans", util::jsonArray(spans));
  }
  if (!extras.metrics_json.empty()) {
    root.addRaw("metrics", extras.metrics_json);
  }
  if (!extras.flight_json.empty()) {
    root.addRaw("flight", extras.flight_json);
  }
  return root.str();
}

}  // namespace bfvr::obs
