// Durability and socket-hardening tests for the serving tier.
//
// SvcJournal: the append-only job journal — record codec round-trips and
// rejects every mutation, reopen replays the log, a torn tail (the
// kill -9 signature) is truncated and the file stays appendable, a
// corrupted middle record ends the valid prefix, compaction rewrites
// atomically; then the server-level contract over a real socket: lifecycle
// records land in the log, clean shutdown compacts terminal jobs away,
// duplicate idempotency keys are answered from the journal without
// re-executing, and an immediate shutdown (the in-process stand-in for a
// crash) preserves accepted jobs so a restarted server resumes them from
// their spool checkpoint bit-identically.
//
// SvcDeadline: the idle reaper closes silent sessions, a slow-loris
// partial frame trips the frame deadline instead of pinning a session
// thread, and the client's deadline-aware next() throws svc::Timeout
// while leaving the session usable (idle timeouts consume no bytes).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "run/run.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace bfvr::svc {
namespace {

/// Unique-per-process socket path, short enough for sun_path.
std::string sockPath(const char* tag) {
  return "/tmp/bfvr_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Fresh per-process journal directory; any journal left by a previous
/// run under the same pid is removed so replay counts start from zero.
std::string journalDir(const char* tag) {
  const std::string dir = "/tmp/bfvr_jrnl_" + std::string(tag) + "_" +
                          std::to_string(::getpid());
  ::unlink((dir + "/journal.bin").c_str());
  return dir;
}

std::string freshDir(const char* tag) {
  const std::string dir = "/tmp/bfvr_dir_" + std::string(tag) + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

Server::Options baseOptions(const std::string& sock) {
  Server::Options o;
  o.endpoint = "unix:" + sock;
  o.workers = 2;
  o.warm_managers = true;
  o.tenants = parseTenantsString("alpha:3\nbravo:2\ncarol:1\n");
  o.spool_dir = "/tmp";
  o.checkpoint_every = 1;
  o.name = "svc-test";
  return o;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void appendBytes(const std::string& path, const std::uint8_t* p,
                 std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void rewrite(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

JournalRecord acceptedRec(std::uint64_t job, const std::string& idem = "") {
  JournalRecord r;
  r.event = JournalEvent::kAccepted;
  r.job = job;
  r.tenant = "alpha";
  r.idem = idem;
  r.line = "circuit=gen:counter:4:10 engine=bfv";
  return r;
}

JournalRecord doneRec(std::uint64_t job) {
  JournalRecord r;
  r.event = JournalEvent::kDone;
  r.job = job;
  r.iteration = 11;
  r.status = "done";
  r.states = 10.0;
  r.seconds = 0.25;
  return r;
}

template <class Pred>
bool waitFor(Pred pred, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Journal unit tests: codec, replay, torn tail, compaction.
// ---------------------------------------------------------------------------

TEST(SvcJournal, FsyncPolicyGrammar) {
  EXPECT_EQ(parseFsyncPolicy("never"), FsyncPolicy::kNever);
  EXPECT_EQ(parseFsyncPolicy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(parseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_THROW(parseFsyncPolicy("sometimes"), Error);
  EXPECT_THROW(parseFsyncPolicy(""), Error);
  EXPECT_STREQ(to_string(FsyncPolicy::kBatch), "batch");
  EXPECT_STREQ(to_string(JournalEvent::kCheckpointed), "checkpointed");
}

TEST(SvcJournal, RecordRoundTripAllFields) {
  JournalRecord rec;
  rec.event = JournalEvent::kDone;
  rec.job = 42;
  rec.tenant = "alpha";
  rec.idem = "key-1";
  rec.line = "circuit=gen:counter:4:10";
  rec.iteration = 7;
  rec.status = "done";
  rec.message = "all good";
  rec.states = 1024.0;
  rec.seconds = 0.5;

  const std::vector<std::uint8_t> bytes = Journal::encodeRecord(rec);
  ASSERT_GT(bytes.size(), kJournalHeaderBytes);

  JournalRecord out;
  ASSERT_EQ(Journal::decodeRecord(bytes.data(), bytes.size(), &out),
            bytes.size());
  EXPECT_EQ(out.event, rec.event);
  EXPECT_EQ(out.job, rec.job);
  EXPECT_EQ(out.tenant, rec.tenant);
  EXPECT_EQ(out.idem, rec.idem);
  EXPECT_EQ(out.line, rec.line);
  EXPECT_EQ(out.iteration, rec.iteration);
  EXPECT_EQ(out.status, rec.status);
  EXPECT_EQ(out.message, rec.message);
  EXPECT_DOUBLE_EQ(out.states, rec.states);
  EXPECT_DOUBLE_EQ(out.seconds, rec.seconds);

  // Every truncated prefix is "not one complete record" — the torn-tail
  // boundary decodeRecord reports as 0, never a throw or a bogus decode.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    JournalRecord t;
    EXPECT_EQ(Journal::decodeRecord(bytes.data(), n, &t), 0u)
        << "prefix of " << n << " bytes decoded";
  }

  // Every single-byte flip is rejected: header fields are each validated
  // (magic, version, event range, reserved zeros, length) and the payload
  // is CRC-checked, so no position survives an inversion.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> mut = bytes;
    mut[i] ^= 0xFF;
    JournalRecord t;
    EXPECT_EQ(Journal::decodeRecord(mut.data(), mut.size(), &t), 0u)
        << "flip at byte " << i << " decoded";
  }
}

TEST(SvcJournal, ReopenReplaysAppendedRecords) {
  const std::string dir = journalDir("reopen");
  {
    Journal j(dir, FsyncPolicy::kAlways);
    EXPECT_TRUE(j.replayed().empty());
    j.append(acceptedRec(1, "idem-1"));
    JournalRecord disp;
    disp.event = JournalEvent::kDispatched;
    disp.job = 1;
    j.append(disp);
    j.append(doneRec(1));
    j.append(acceptedRec(2));
    EXPECT_EQ(j.stats().appended, 4u);
    EXPECT_GE(j.stats().fsyncs, 4u);  // kAlways: one per append
  }
  Journal j(dir, FsyncPolicy::kNever);
  ASSERT_EQ(j.replayed().size(), 4u);
  EXPECT_EQ(j.stats().replayed_records, 4u);
  EXPECT_EQ(j.stats().torn_bytes, 0u);
  EXPECT_EQ(j.replayed()[0].event, JournalEvent::kAccepted);
  EXPECT_EQ(j.replayed()[0].idem, "idem-1");
  EXPECT_EQ(j.replayed()[1].event, JournalEvent::kDispatched);
  EXPECT_EQ(j.replayed()[2].event, JournalEvent::kDone);
  EXPECT_EQ(j.replayed()[2].status, "done");
  EXPECT_EQ(j.replayed()[3].job, 2u);
}

TEST(SvcJournal, TornTailIsTruncatedAndAppendable) {
  const std::string dir = journalDir("torn");
  std::string path;
  {
    Journal j(dir, FsyncPolicy::kBatch);
    path = j.path();
    j.append(acceptedRec(1));
    j.append(acceptedRec(2));
  }
  const std::size_t intact = slurp(path).size();
  // kill -9 mid-append leaves half a record at the tail.
  const std::vector<std::uint8_t> next = Journal::encodeRecord(doneRec(1));
  appendBytes(path, next.data(), next.size() / 2);
  {
    Journal j(dir, FsyncPolicy::kBatch);
    ASSERT_EQ(j.replayed().size(), 2u);
    EXPECT_EQ(j.stats().torn_bytes, next.size() / 2);
    // The tail was physically truncated back to the valid prefix...
    EXPECT_EQ(slurp(path).size(), intact);
    // ...and the journal accepts appends again at that boundary.
    j.append(doneRec(1));
  }
  Journal j(dir, FsyncPolicy::kNever);
  ASSERT_EQ(j.replayed().size(), 3u);
  EXPECT_EQ(j.replayed()[2].event, JournalEvent::kDone);
}

TEST(SvcJournal, CorruptMiddleRecordEndsReplay) {
  const std::string dir = journalDir("corrupt");
  std::string path;
  {
    Journal j(dir, FsyncPolicy::kAlways);
    path = j.path();
    j.append(acceptedRec(1));
    j.append(acceptedRec(2));
    j.append(doneRec(2));
  }
  const std::size_t r1 = Journal::encodeRecord(acceptedRec(1)).size();
  std::vector<std::uint8_t> bytes = slurp(path);
  // Flip one payload byte of the second record: its CRC no longer matches,
  // so the valid prefix ends after record one and everything from the
  // corruption on is torn tail.
  bytes.at(r1 + kJournalHeaderBytes + 2) ^= 0xFF;
  const std::size_t total = bytes.size();
  rewrite(path, bytes);

  Journal j(dir, FsyncPolicy::kNever);
  ASSERT_EQ(j.replayed().size(), 1u);
  EXPECT_EQ(j.replayed()[0].job, 1u);
  EXPECT_EQ(j.stats().torn_bytes, total - r1);
  EXPECT_EQ(slurp(path).size(), r1);
}

TEST(SvcJournal, CompactionRewritesAtomically) {
  const std::string dir = journalDir("compact");
  {
    Journal j(dir, FsyncPolicy::kBatch);
    for (std::uint64_t id = 1; id <= 5; ++id) j.append(acceptedRec(id));
    for (std::uint64_t id = 1; id <= 3; ++id) j.append(doneRec(id));
    // Keep only the two still-live accepted records.
    j.compact({acceptedRec(4, "keep-4"), acceptedRec(5, "keep-5")});
    EXPECT_EQ(j.stats().compactions, 1u);
    // The reopened-after-rename fd keeps accepting appends.
    j.append(doneRec(4));
  }
  Journal j(dir, FsyncPolicy::kNever);
  ASSERT_EQ(j.replayed().size(), 3u);
  EXPECT_EQ(j.replayed()[0].job, 4u);
  EXPECT_EQ(j.replayed()[0].idem, "keep-4");
  EXPECT_EQ(j.replayed()[1].job, 5u);
  EXPECT_EQ(j.replayed()[2].event, JournalEvent::kDone);
  EXPECT_EQ(j.replayed()[2].job, 4u);
}

// ---------------------------------------------------------------------------
// Server-level durability over a real socket.
// ---------------------------------------------------------------------------

TEST(SvcJournal, ServerWritesLifecycleRecords) {
  const std::string sock = sockPath("jlife");
  const std::string dir = journalDir("jlife");
  Server::Options opts = baseOptions(sock);
  opts.journal_dir = dir;
  opts.journal_compact_on_shutdown = false;  // keep the full log to inspect
  {
    Server server(opts);
    server.start();
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag =
        client.submit("circuit=gen:counter:4:10 engine=bfv", "life-1");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
    server.requestShutdown(true);
    server.waitStopped();
  }
  Journal j(dir, FsyncPolicy::kNever);
  bool accepted = false, dispatched = false, checkpointed = false,
       done = false;
  for (const JournalRecord& r : j.replayed()) {
    switch (r.event) {
      case JournalEvent::kAccepted:
        accepted = true;
        EXPECT_EQ(r.tenant, "alpha");
        EXPECT_EQ(r.idem, "life-1");
        EXPECT_NE(r.line.find("gen:counter:4:10"), std::string::npos);
        break;
      case JournalEvent::kDispatched:
        dispatched = true;
        break;
      case JournalEvent::kCheckpointed:
        checkpointed = true;
        EXPECT_GT(r.iteration, 0u);
        break;
      case JournalEvent::kDone:
        done = true;
        EXPECT_EQ(r.status, "done");
        EXPECT_DOUBLE_EQ(r.states, 10.0);
        break;
    }
  }
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(dispatched);
  EXPECT_TRUE(checkpointed);  // checkpoint_every=1: the watermark advanced
  EXPECT_TRUE(done);
}

TEST(SvcJournal, CompactionOnCleanShutdownEmptiesTheLog) {
  const std::string sock = sockPath("jcompact");
  const std::string dir = journalDir("jcompact");
  Server::Options opts = baseOptions(sock);
  opts.journal_dir = dir;  // journal_compact_on_shutdown defaults to true
  {
    Server server(opts);
    server.start();
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:3:4");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
    server.requestShutdown(true);
    server.waitStopped();
    ASSERT_NE(server.journal(), nullptr);
    EXPECT_EQ(server.journal()->stats().compactions, 1u);
  }
  // Everything was terminal, so the compacted log holds nothing: a restart
  // has no work to replay and no stale records to scan.
  Journal j(dir, FsyncPolicy::kNever);
  EXPECT_TRUE(j.replayed().empty());
}

TEST(SvcJournal, DuplicateIdemAnswersFromCacheWithoutReexecution) {
  const std::string sock = sockPath("jdup");
  const std::string dir = journalDir("jdup");
  Server::Options opts = baseOptions(sock);
  opts.journal_dir = dir;
  Server server(opts);
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::string line = "circuit=gen:counter:4:10 engine=bfv";
    const std::uint64_t tag1 = client.submit(line, "dup-1");
    std::optional<std::uint64_t> job1 = client.awaitAdmission(tag1);
    ASSERT_TRUE(job1.has_value());
    const JobDone first = client.awaitDone(*job1);
    EXPECT_EQ(first.status, "done");

    // Same idempotency key again — the retried-after-reconnect shape. The
    // server answers with the original job id and its cached terminal
    // result instead of executing a second time.
    const std::uint64_t tag2 = client.submit(line, "dup-1");
    std::optional<std::uint64_t> job2 = client.awaitAdmission(tag2);
    ASSERT_TRUE(job2.has_value());
    EXPECT_EQ(*job2, *job1);
    const JobDone replay = client.awaitDone(*job2);
    EXPECT_EQ(replay.status, "done");
    EXPECT_DOUBLE_EQ(replay.states, first.states);
    EXPECT_EQ(replay.iterations, first.iterations);
    client.bye();
  }
  EXPECT_EQ(server.dedupHits(), 1u);
  // One dispatch total: the duplicate never reached a worker.
  EXPECT_EQ(server.dispatchLog().size(), 1u);
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcJournal, RestartAnswersTerminalJobsFromTheJournal) {
  const std::string sock = sockPath("jterm");
  const std::string dir = journalDir("jterm");
  Server::Options opts = baseOptions(sock);
  opts.journal_dir = dir;
  opts.journal_compact_on_shutdown = false;  // keep terminal records around
  const std::string line = "circuit=gen:counter:4:10 engine=bfv";
  JobDone first;
  {
    Server server(opts);
    server.start();
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit(line, "term-1");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    first = client.awaitDone(*job);
    EXPECT_EQ(first.status, "done");
    client.bye();
    server.requestShutdown(true);
    server.waitStopped();
  }
  // Restart over the same journal: the terminal job is remembered, and a
  // duplicate submission is answered entirely from the log — the dispatch
  // log stays empty because nothing executed.
  Server server(opts);
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit(line, "term-1");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(*job, first.job);
    const JobDone replay = client.awaitDone(*job);
    EXPECT_EQ(replay.status, "done");
    EXPECT_DOUBLE_EQ(replay.states, first.states);
    EXPECT_EQ(replay.iterations, first.iterations);
    client.bye();
  }
  EXPECT_EQ(server.dedupHits(), 1u);
  EXPECT_TRUE(server.dispatchLog().empty());
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcJournal, ImmediateShutdownPreservesJobsAndRestartResumesBitIdentical) {
  const std::string sock = sockPath("jresume");
  const std::string dir = journalDir("jresume");
  const std::string spool = freshDir("jresume_spool");
  const std::string line = "circuit=gen:counter:12:4096";
  Server::Options opts = baseOptions(sock);
  opts.journal_dir = dir;
  opts.spool_dir = spool;

  // Phase 1: get the job well into its run, then pull the plug. Immediate
  // shutdown with a journal is the in-process stand-in for a crash: the
  // cancelled-by-shutdown job keeps its accepted record and its spool
  // checkpoint, and no JobDone is fabricated.
  {
    Server server(opts);
    server.start();
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit(line, "resume-1");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    unsigned updates = 0;
    while (updates < 3) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* u = std::get_if<IterationUpdate>(&*ev)) {
        if (u->job == *job) ++updates;
      } else if (std::get_if<JobDone>(&*ev) != nullptr) {
        FAIL() << "job finished before the simulated crash";
      }
    }
    server.requestShutdown(false);
    server.waitStopped();
  }

  // Phase 2: a fresh server over the same journal + spool re-enqueues the
  // preserved job and resumes it from its checkpoint. Alongside it runs an
  // uninterrupted control of the same line; the resume contract is that
  // both land on identical states and iteration counts.
  Server::Options opts2 = opts;
  opts2.stream_iterations = false;
  Server server(opts2);
  EXPECT_GE(server.replayedJobs(), 1u);
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag_base = client.submit(line);
    const std::uint64_t tag_dup = client.submit(line, "resume-1");
    std::uint64_t base_job = 0, dup_job = 0;
    std::map<std::uint64_t, JobDone> dones;
    while (base_job == 0 || dup_job == 0 || dones.count(base_job) == 0 ||
           dones.count(dup_job) == 0) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* a = std::get_if<Accepted>(&*ev)) {
        if (a->tag == tag_base) base_job = a->job;
        if (a->tag == tag_dup) dup_job = a->job;
      } else if (const auto* r = std::get_if<Rejected>(&*ev)) {
        FAIL() << "rejected: " << r->reason;
      } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
        dones[d->job] = *d;
      }
    }
    EXPECT_NE(base_job, dup_job);
    const JobDone& control = dones[base_job];
    const JobDone& resumed = dones[dup_job];
    EXPECT_EQ(control.status, "done");
    EXPECT_EQ(resumed.status, "done");
    EXPECT_FALSE(control.resumed);
    EXPECT_TRUE(resumed.resumed);
    // Bit-identical resume: same reachable-state count, same iteration
    // count, as if the crash never happened.
    EXPECT_DOUBLE_EQ(resumed.states, control.states);
    EXPECT_DOUBLE_EQ(resumed.states, 4096.0);
    EXPECT_EQ(resumed.iterations, control.iterations);
    client.bye();
  }
  EXPECT_EQ(server.dedupHits(), 1u);
  server.requestShutdown(true);
  server.waitStopped();
}

// ---------------------------------------------------------------------------
// Socket deadlines: idle reaper, slow-loris frame deadline, client timeout.
// ---------------------------------------------------------------------------

TEST(SvcDeadline, IdleSessionsAreReaped) {
  const std::string sock = sockPath("didle");
  Server::Options opts = baseOptions(sock);
  opts.idle_timeout = 0.2;
  Server server(opts);
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    // Say nothing. The reaper must notice within a few timeout periods.
    ASSERT_TRUE(waitFor([&] { return server.sessionsReaped() >= 1; }, 5.0))
        << "idle session was never reaped";
    // The server closed our socket: the next read ends the stream (either
    // a clean EOF or a reset, depending on close timing).
    bool closed = false;
    try {
      for (int i = 0; i < 10 && !closed; ++i) {
        if (!client.next().has_value()) closed = true;
      }
    } catch (const Error&) {
      closed = true;
    }
    EXPECT_TRUE(closed);
  }
  EXPECT_EQ(server.sessionsReaped(), 1u);
  EXPECT_EQ(server.frameTimeouts(), 0u);
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcDeadline, SlowLorisPartialFrameTimesOut) {
  const std::string sock = sockPath("dloris");
  Server::Options opts = baseOptions(sock);
  opts.frame_timeout = 0.3;  // no idle timeout: only the started frame stalls
  Server server(opts);
  server.start();
  {
    // A raw connection that sends 4 bytes of a frame header and stalls —
    // the slow-loris shape. The frame clock starts at byte one, so the
    // session is dropped ~frame_timeout later instead of pinning its
    // thread forever.
    Fd fd = connectTo(Endpoint::parse("unix:" + sock));
    ASSERT_EQ(::send(fd.get(), "BFVS", 4, MSG_NOSIGNAL), 4);
    ASSERT_TRUE(waitFor([&] { return server.frameTimeouts() >= 1; }, 5.0))
        << "stalled frame never timed out";
  }
  EXPECT_EQ(server.frameTimeouts(), 1u);
  EXPECT_EQ(server.sessionsReaped(), 0u);
  // The server is unharmed: a well-behaved client still gets service.
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:3:4");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcDeadline, ClientNextDeadlineThrowsTimeoutAndSessionSurvives) {
  const std::string sock = sockPath("dnext");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    // Nothing is in flight, so a deadline-bounded next() must time out —
    // and because an idle timeout consumes no bytes, the stream is still
    // clean afterwards.
    const auto t0 = std::chrono::steady_clock::now();
    bool timed_out = false;
    try {
      client.next(0.2);
    } catch (const Timeout& t) {
      timed_out = true;
      EXPECT_TRUE(t.idle);
    }
    EXPECT_TRUE(timed_out);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(waited, 0.15);
    const std::uint64_t tag = client.submit("circuit=gen:counter:4:10");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

}  // namespace
}  // namespace bfvr::svc
