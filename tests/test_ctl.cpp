// CTL model checking against an explicit-state oracle.
#include <gtest/gtest.h>

#include <set>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/ctl.hpp"
#include "util/rng.hpp"

namespace bfvr::reach {
namespace {

using circuit::Netlist;
using circuit::OrderKind;

/// Explicit transition graph over ALL 2^nl states (not just reachable
/// ones: CTL semantics quantifies over the whole graph).
struct ExplicitModel {
  std::size_t nl;
  std::vector<std::vector<std::uint32_t>> succ;  // successors per state

  explicit ExplicitModel(const Netlist& n)
      : nl(n.latches().size()), succ(std::size_t{1} << nl) {
    const circuit::ConcreteSim sim(n);
    const std::size_t ni = n.inputs().size();
    for (std::uint32_t st = 0; st < succ.size(); ++st) {
      std::set<std::uint32_t> outs;
      std::vector<bool> sv(nl);
      for (std::size_t i = 0; i < nl; ++i) sv[i] = ((st >> i) & 1U) != 0;
      for (std::uint64_t iv = 0; iv < (std::uint64_t{1} << ni); ++iv) {
        std::vector<bool> in(ni);
        for (std::size_t i = 0; i < ni; ++i) in[i] = ((iv >> i) & 1U) != 0;
        const auto nx = sim.step(sv, in);
        std::uint32_t t = 0;
        for (std::size_t i = 0; i < nl; ++i) {
          if (nx[i]) t |= 1U << i;
        }
        outs.insert(t);
      }
      succ[st].assign(outs.begin(), outs.end());
    }
  }

  using StateSet = std::vector<bool>;  // indexed by state

  StateSet ex(const StateSet& p) const {
    StateSet r(succ.size(), false);
    for (std::size_t st = 0; st < succ.size(); ++st) {
      for (std::uint32_t t : succ[st]) {
        if (p[t]) {
          r[st] = true;
          break;
        }
      }
    }
    return r;
  }

  StateSet eu(const StateSet& p, const StateSet& q) const {
    StateSet z = q;
    for (;;) {
      const StateSet pre = ex(z);
      bool changed = false;
      for (std::size_t st = 0; st < z.size(); ++st) {
        if (!z[st] && p[st] && pre[st]) {
          z[st] = true;
          changed = true;
        }
      }
      if (!changed) return z;
    }
  }

  StateSet eg(const StateSet& p) const {
    StateSet z = p;
    for (;;) {
      const StateSet pre = ex(z);
      bool changed = false;
      for (std::size_t st = 0; st < z.size(); ++st) {
        if (z[st] && !(p[st] && pre[st])) {
          z[st] = false;
          changed = true;
        }
      }
      if (!changed) return z;
    }
  }
};

/// chi of an explicit state set over the space's current variables.
bdd::Bdd charOf(sym::StateSpace& s, const ExplicitModel::StateSet& set) {
  bdd::Manager& m = s.manager();
  bdd::Bdd chi = m.zero();
  for (std::size_t st = 0; st < set.size(); ++st) {
    if (!set[st]) continue;
    bdd::Bdd cube = m.one();
    for (std::size_t p = 0; p < s.numLatches(); ++p) {
      const bdd::Bdd v = m.var(s.currentVar(p));
      cube &= ((st >> p) & 1U) != 0 ? v : ~v;
    }
    chi |= cube;
  }
  return chi;
}

struct Fixture {
  Netlist n;
  ExplicitModel model;
  bdd::Manager m;
  sym::StateSpace space;
  sym::TransitionRelation tr;

  explicit Fixture(Netlist nl)
      : n(std::move(nl)),
        model(n),
        m(0),
        space(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0})),
        tr(space) {}

  /// Random state predicate: explicit set + matching Ctl atom.
  std::pair<ExplicitModel::StateSet, Ctl> randomAtom(Rng& rng) {
    ExplicitModel::StateSet set(model.succ.size());
    for (std::size_t st = 0; st < set.size(); ++st) set[st] = rng.flip();
    return {set, Ctl::atom(charOf(space, set))};
  }

  void expectEqual(const ExplicitModel::StateSet& expect, const Ctl& f) {
    EXPECT_EQ(evalCtl(space, tr, f), charOf(space, expect));
  }
};

class CtlSweep : public ::testing::TestWithParam<int> {};

TEST_P(CtlSweep, OperatorsMatchExplicitSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 607 + 3);
  Fixture fx(GetParam() % 2 == 0
                 ? circuit::makeRandomSeq(5, 2, 25,
                                          static_cast<std::uint64_t>(
                                              GetParam()))
                 : circuit::makeCounter(4, 11));
  const auto [ps, p] = fx.randomAtom(rng);
  const auto [qs, q] = fx.randomAtom(rng);
  // EX / EU / EG against the explicit fixpoints.
  fx.expectEqual(fx.model.ex(ps), Ctl::EX(p));
  fx.expectEqual(fx.model.eu(ps, qs), Ctl::EU(p, q));
  fx.expectEqual(fx.model.eg(ps), Ctl::EG(p));
  // EF p == EU(true, p).
  const ExplicitModel::StateSet all(fx.model.succ.size(), true);
  fx.expectEqual(fx.model.eu(all, ps), Ctl::EF(p));
  // Duals.
  auto complement = [](ExplicitModel::StateSet s) {
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = !s[i];
    return s;
  };
  fx.expectEqual(complement(fx.model.ex(complement(ps))), Ctl::AX(p));
  fx.expectEqual(complement(fx.model.eg(complement(ps))), Ctl::AF(p));
  fx.expectEqual(complement(fx.model.eu(all, complement(ps))), Ctl::AG(p));
  // Boolean structure.
  ExplicitModel::StateSet inter(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) inter[i] = ps[i] && qs[i];
  fx.expectEqual(inter, p && q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtlSweep, ::testing::Range(0, 10));

TEST(Ctl, CounterProperties) {
  Fixture fx(circuit::makeCounter(4, 11));
  bdd::Manager& m = fx.m;
  auto value_is = [&](unsigned v) {
    bdd::Bdd cube = m.one();
    for (unsigned p = 0; p < 4; ++p) {
      const bdd::Bdd var = m.var(fx.space.currentVar(p));
      cube &= ((v >> p) & 1U) != 0 ? var : ~var;
    }
    return Ctl::atom(cube);
  };
  // From the initial state, 10 is eventually reachable along some path.
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, Ctl::EF(value_is(10))));
  // ... but not along all paths (the enable can stay low forever).
  EXPECT_FALSE(holdsInInit(fx.space, fx.tr, Ctl::AF(value_is(10))));
  // 12 is outside the modulus: never reachable.
  EXPECT_FALSE(holdsInInit(fx.space, fx.tr, Ctl::EF(value_is(12))));
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, Ctl::AG(!value_is(12))));
  // The counter can stall at 0 forever.
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, Ctl::EG(value_is(0))));
  // E[ (cnt==0) U (cnt==1) ]: step once with enable.
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, Ctl::EU(value_is(0), value_is(1))));
  // AX(0 or 1): from 0, every input leads to 0 or 1.
  EXPECT_TRUE(
      holdsInInit(fx.space, fx.tr, Ctl::AX(value_is(0) || value_is(1))));
  EXPECT_FALSE(holdsInInit(fx.space, fx.tr, Ctl::AX(value_is(1))));
}

TEST(Ctl, ArbiterLiveness) {
  // In the round-robin arbiter, from every reachable pointer position the
  // pointer can eventually return: EF over one-hot states is total.
  Fixture fx(circuit::makeArbiter(3));
  bdd::Manager& m = fx.m;
  bdd::Bdd ptr0 = m.one();
  for (unsigned j = 0; j < 3; ++j) {
    const bdd::Bdd v = m.var(fx.space.currentVar(j));
    ptr0 &= j == 0 ? v : ~v;
  }
  // AG EF (pointer back at client 0) restricted to the reachable set:
  // check init |= EF ptr0 and init |= AG(one-hot -> EF ptr0).
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, Ctl::EF(Ctl::atom(ptr0))));
  bdd::Bdd one_hot = m.zero();
  for (unsigned i = 0; i < 3; ++i) {
    bdd::Bdd cube = m.one();
    for (unsigned j = 0; j < 3; ++j) {
      const bdd::Bdd v = m.var(fx.space.currentVar(j));
      cube &= i == j ? v : ~v;
    }
    one_hot |= cube;
  }
  const Ctl prop =
      Ctl::AG(!Ctl::atom(one_hot) || Ctl::EF(Ctl::atom(ptr0)));
  EXPECT_TRUE(holdsInInit(fx.space, fx.tr, prop));
}

TEST(Ctl, PreimageMatchesExplicitPredecessors) {
  Fixture fx(circuit::makeJohnson(4));
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    ExplicitModel::StateSet target(fx.model.succ.size());
    for (std::size_t i = 0; i < target.size(); ++i) target[i] = rng.flip();
    const bdd::Bdd pre = fx.tr.preimage(charOf(fx.space, target));
    EXPECT_EQ(pre, charOf(fx.space, fx.model.ex(target)));
  }
}

}  // namespace
}  // namespace bfvr::reach
