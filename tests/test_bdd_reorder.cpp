// Dynamic variable reordering: adjacent swaps, sifting, window passes,
// automatic triggering, and interaction with GC, budgets, and the level map.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

/// (x0 & x3) | (x1 & x4) | (x2 & x5): the classic family whose size is
/// exponential under the natural order and linear under the interleaved
/// order — sifting has something real to find.
Bdd badlyOrderedAndOr(Manager& m, unsigned pairs, unsigned stride) {
  Bdd f = m.zero();
  for (unsigned i = 0; i < pairs; ++i) {
    f |= m.var(i) & m.var(i + stride);
  }
  return f;
}

TEST(BddReorder, SwapPreservesEveryLiveFunction) {
  Manager m(6);
  Rng rng(11);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  std::vector<Bdd> pool;
  std::vector<std::uint64_t> truths;
  for (int i = 0; i < 10; ++i) {
    truths.push_back(randomTruth(rng, 6));
    pool.push_back(bddFromTruth(m, vars, truths.back()));
  }
  for (unsigned l = 0; l + 1 < 6; ++l) {
    m.swapLevels(l);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      ASSERT_EQ(truthOf(m, pool[i], vars), truths[i]) << "after swap " << l;
    }
  }
  // Order is now 1,2,3,4,5,0 (variable 0 bubbled to the bottom).
  EXPECT_EQ(m.varAtLevel(5), 0U);
  EXPECT_EQ(m.levelOfVar(0), 5U);
}

TEST(BddReorder, SwapTwiceIsIdentity) {
  Manager m(4);
  Bdd f = (m.var(0) ^ m.var(1)) | (m.var(2) & m.var(3));
  m.gc();  // swapLevels GCs in its prologue; start from a collected state
  const std::vector<unsigned> before = m.currentOrder();
  const std::size_t nodes_before = m.inUseNodes();
  const Edge raw_before = f.raw();
  m.swapLevels(1);
  m.swapLevels(1);
  EXPECT_EQ(m.currentOrder(), before);
  EXPECT_EQ(m.inUseNodes(), nodes_before);
  EXPECT_EQ(f.raw(), raw_before);
}

TEST(BddReorder, RawEdgesStableAcrossReorder) {
  Manager m(6);
  Rng rng(5);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  const std::uint64_t tt = randomTruth(rng, 6);
  Bdd f = bddFromTruth(m, vars, tt);
  const Edge raw = f.raw();
  std::vector<unsigned> order{5, 3, 1, 0, 2, 4};
  m.setVarOrder(order);
  // In-place rewriting: the handle's raw edge still denotes the same
  // function, so memo tables keyed on raw() stay correct.
  EXPECT_EQ(f.raw(), raw);
  EXPECT_EQ(truthOf(m, f, vars), tt);
  EXPECT_EQ(m.currentOrder(), order);
}

TEST(BddReorder, SiftReducesBadlyOrderedFunction) {
  Manager m(12);
  Bdd f = badlyOrderedAndOr(m, 6, 6);
  const std::size_t before = f.nodeCount();
  m.reorder(ReorderMethod::kSift);
  EXPECT_LT(f.nodeCount(), before);
  // 12 variables exceed the 64-bit truth tables of tests/support/brute, so
  // check semantics by evaluating every assignment of the 4096-point space.
  for (std::uint32_t a = 0; a < (1U << 12); ++a) {
    std::vector<bool> values(12);
    bool expect = false;
    for (unsigned i = 0; i < 12; ++i) values[i] = ((a >> i) & 1U) != 0;
    for (unsigned i = 0; i < 6; ++i) expect |= values[i] && values[i + 6];
    ASSERT_EQ(m.eval(f, values), expect) << "assignment " << a;
  }
  EXPECT_EQ(m.stats().reorder_runs, 1U);
  EXPECT_GT(m.stats().reorder_swaps, 0U);
  EXPECT_GT(m.stats().reorder_nodes_saved, 0U);
}

TEST(BddReorder, SiftIsNoOpOnOptimalOrder) {
  Manager m(8);
  // Interleaved pairs: already the optimal order for this function.
  Bdd f = (m.var(0) & m.var(1)) | (m.var(2) & m.var(3)) |
          (m.var(4) & m.var(5)) | (m.var(6) & m.var(7));
  m.gc();
  const std::size_t before = m.inUseNodes();
  m.reorder(ReorderMethod::kSift);
  EXPECT_EQ(m.inUseNodes(), before);
}

TEST(BddReorder, SiftConvergeAndWindowsPreserveSemantics) {
  for (const ReorderMethod method :
       {ReorderMethod::kSiftConverge, ReorderMethod::kWindow2,
        ReorderMethod::kWindow3}) {
    Manager m(10);
    Rng rng(23);
    const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<Bdd> pool;
    std::vector<std::uint64_t> truths;
    for (int i = 0; i < 6; ++i) {
      truths.push_back(randomTruth(rng, 6));
      std::vector<unsigned> sub(vars.begin() + (i % 4),
                                vars.begin() + (i % 4) + 6);
      pool.push_back(bddFromTruth(m, sub, truths.back()));
    }
    m.gc();
    const std::size_t before = m.inUseNodes();
    m.reorder(method);
    EXPECT_LE(m.inUseNodes(), before) << to_string(method);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      std::vector<unsigned> sub(vars.begin() + (i % 4),
                                vars.begin() + (i % 4) + 6);
      ASSERT_EQ(truthOf(m, pool[i], sub), truths[i]) << to_string(method);
    }
  }
}

TEST(BddReorder, AutoReorderFiresUnderNodePressure) {
  Manager::Config cfg;
  cfg.auto_reorder = true;
  cfg.reorder_threshold = 128;
  Manager m(16, cfg);
  Bdd f = badlyOrderedAndOr(m, 8, 8);
  ASSERT_GE(m.inUseNodes(), m.nextAutoReorderAt());
  m.maybeGc();  // the engines' safe point
  EXPECT_EQ(m.stats().reorder_runs, 1U);
  EXPECT_GE(m.nextAutoReorderAt(), 128U);  // rescheduled
  // The badly ordered conjunction collapses to the linear-size form.
  EXPECT_LT(f.nodeCount(), 50U);
}

TEST(BddReorder, AutoReorderDisabledByDefault) {
  Manager m(16);
  Bdd f = badlyOrderedAndOr(m, 8, 8);
  (void)f;
  m.maybeGc();
  EXPECT_EQ(m.stats().reorder_runs, 0U);
}

TEST(BddReorder, ReorderWorksUnderNodeBudget) {
  Manager::Config cfg;
  cfg.max_nodes = 600;
  Manager m(16, cfg);
  Bdd f = badlyOrderedAndOr(m, 6, 8);
  // Reordering may transiently allocate past the budget without throwing.
  m.reorder(ReorderMethod::kSift);
  EXPECT_LT(f.nodeCount(), 50U);
  // The budget is enforced again after the reorder completes: piling up
  // live functions must still hit the ceiling.
  Rng rng(1);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  std::vector<Bdd> keep;
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i) {
          keep.push_back(bddFromTruth(m, vars, randomTruth(rng, 6)));
        }
      },
      NodeBudgetExceeded);
}

TEST(BddReorder, GcAfterReorderKeepsFunctions) {
  Manager m(12);
  Rng rng(7);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  const std::uint64_t tt = randomTruth(rng, 6);
  Bdd f = bddFromTruth(m, vars, tt);
  { Bdd dead = badlyOrderedAndOr(m, 6, 6); (void)dead; }
  m.reorder(ReorderMethod::kSift);
  m.gc();
  EXPECT_EQ(truthOf(m, f, vars), tt);
  m.reorder(ReorderMethod::kSift);
  EXPECT_EQ(truthOf(m, f, vars), tt);
}

TEST(BddReorder, SupportCubeEvalPickCubeUseVariableIndices) {
  Manager m(6);
  Bdd f = (m.var(1) & m.var(4)) | m.var(2);
  std::vector<unsigned> rev{5, 4, 3, 2, 1, 0};
  m.setVarOrder(rev);
  // support() reports variable indices, sorted by index, not by level.
  EXPECT_EQ(m.support(f), (std::vector<unsigned>{1, 2, 4}));
  // eval() indexes the assignment by variable.
  EXPECT_TRUE(m.eval(f, {false, true, false, false, true, false}));
  EXPECT_TRUE(m.eval(f, {false, false, true, false, false, false}));
  EXPECT_FALSE(m.eval(f, {true, false, false, true, false, true}));
  // pickCube() yields a var-indexed cube consistent with eval().
  const std::vector<signed char> cube = m.pickCube(f);
  std::vector<bool> values(6, false);
  for (unsigned i = 0; i < 6; ++i) values[i] = cube[i] == 1;
  EXPECT_TRUE(m.eval(f, values));
  // cube() builds the same conjunction regardless of the current order.
  Bdd c = m.cube(std::vector<unsigned>{1, 2, 4});
  EXPECT_EQ(c, m.var(1) & m.var(2) & m.var(4));
}

TEST(BddReorder, PermuteAndComposeRespectLevelMap) {
  Manager m(6);
  std::vector<unsigned> rev{5, 4, 3, 2, 1, 0};
  m.setVarOrder(rev);
  Bdd f = (m.var(0) & m.var(1)) ^ m.var(2);
  // Rename 0->3, 1->4, 2->5 under the reversed order.
  const std::vector<unsigned> perm{3, 4, 5, 3, 4, 5};
  Bdd g = m.permute(f, perm);
  EXPECT_EQ(g, (m.var(3) & m.var(4)) ^ m.var(5));
  // compose with a function above/below in level order.
  Bdd h = m.compose(f, 2, m.var(5));
  EXPECT_EQ(h, (m.var(0) & m.var(1)) ^ m.var(5));
}

TEST(BddReorder, QuantifyAndCofactorAfterReorder) {
  Manager m(6);
  Rng rng(42);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  const std::uint64_t tt = randomTruth(rng, 6);
  Bdd f = bddFromTruth(m, vars, tt);
  m.setVarOrder(std::vector<unsigned>{2, 0, 5, 1, 4, 3});
  // exists x1 f == f|x1=0 | f|x1=1, computed post-reorder.
  Bdd q = m.exists(f, m.var(1));
  Bdd expect = m.cofactor(f, 1, false) | m.cofactor(f, 1, true);
  EXPECT_EQ(q, expect);
}

TEST(BddReorder, SetVarOrderValidates) {
  Manager m(4);
  EXPECT_THROW(m.setVarOrder(std::vector<unsigned>{0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(m.setVarOrder(std::vector<unsigned>{0, 1, 2, 2}),
               std::invalid_argument);
  EXPECT_THROW(m.setVarOrder(std::vector<unsigned>{0, 1, 2, 7}),
               std::invalid_argument);
  EXPECT_THROW(m.swapLevels(3), std::out_of_range);
}

TEST(BddReorder, GroupsMoveAsBlocks) {
  Manager m(8);
  // Bind (0,1) and (6,7); give sifting a reason to move things.
  Bdd f = badlyOrderedAndOr(m, 4, 4);
  const std::vector<unsigned> g1{0, 1};
  const std::vector<unsigned> g2{6, 7};
  m.bindVarGroup(g1);
  m.bindVarGroup(g2);
  m.reorder(ReorderMethod::kSiftConverge);
  // Group members stay at adjacent levels, in their original internal order.
  EXPECT_EQ(m.levelOfVar(1), m.levelOfVar(0) + 1);
  EXPECT_EQ(m.levelOfVar(7), m.levelOfVar(6) + 1);
  EXPECT_EQ(f, (m.var(0) & m.var(4)) | (m.var(1) & m.var(5)) |
                   (m.var(2) & m.var(6)) | (m.var(3) & m.var(7)));
  // Binding a non-adjacent set is rejected.
  m.clearVarGroups();
  std::vector<unsigned> lv{m.varAtLevel(0), m.varAtLevel(2)};
  EXPECT_THROW(m.bindVarGroup(lv), std::invalid_argument);
}

TEST(BddReorder, BfvCanonicalFormSurvivesReorder) {
  Manager m(8);
  Rng rng(9);
  const std::vector<unsigned> vars{0, 1, 2, 3};
  const test::Set s = test::randomSet(rng, 4, 1, 3);
  if (s.empty()) GTEST_SKIP();
  bfv::Bfv f = test::bfvOf(m, vars, s);
  ASSERT_TRUE(f.checkCanonical());
  m.reorder(ReorderMethod::kSift);
  std::string why;
  EXPECT_TRUE(f.checkCanonical(&why)) << why;
  EXPECT_EQ(test::setOf(f), s);
  m.setVarOrder(std::vector<unsigned>{7, 6, 5, 4, 3, 2, 1, 0});
  EXPECT_TRUE(f.checkCanonical(&why)) << why;
  EXPECT_EQ(test::setOf(f), s);
}

TEST(BddReorder, StressRandomOpsInterleavedWithReorders) {
  Manager m(10);
  Rng rng(123);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  std::vector<Bdd> pool;
  std::vector<std::uint64_t> truths;
  for (int i = 0; i < 6; ++i) {
    truths.push_back(randomTruth(rng, 6));
    pool.push_back(bddFromTruth(m, vars, truths.back()));
  }
  const ReorderMethod methods[] = {
      ReorderMethod::kSift, ReorderMethod::kWindow2, ReorderMethod::kWindow3};
  for (int step = 0; step < 120; ++step) {
    const std::size_t i = rng.below(pool.size());
    const std::size_t j = rng.below(pool.size());
    switch (rng.below(3)) {
      case 0:
        pool[i] = pool[i] & pool[j];
        truths[i] = truths[i] & truths[j];
        break;
      case 1:
        pool[i] = pool[i] | pool[j];
        truths[i] = truths[i] | truths[j];
        break;
      default:
        pool[i] = pool[i] ^ pool[j];
        truths[i] = truths[i] ^ truths[j];
        break;
    }
    if (step % 17 == 0) m.reorder(methods[(step / 17) % 3]);
    if (step % 29 == 0) m.gc();
    if (step % 13 == 0) {
      ASSERT_EQ(truthOf(m, pool[i], vars), truths[i]) << "step " << step;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(truthOf(m, pool[i], vars), truths[i]);
  }
}

}  // namespace
}  // namespace bfvr::bdd
