#include "svc/client.hpp"

namespace bfvr::svc {

Client::Client(const std::string& endpoint_spec, const std::string& tenant)
    : fd_(connectTo(Endpoint::parse(endpoint_spec))) {
  Hello hello;
  hello.tenant = tenant;
  sendFrame(fd_, hello.encode());
  std::optional<Frame> reply = recvFrame(fd_);
  if (!reply.has_value()) {
    throw Error("client: server closed the connection during handshake");
  }
  if (reply->type == FrameType::kError) {
    throw Error("client: handshake rejected: " +
                WireError::decode(*reply).message);
  }
  const HelloAck ack = HelloAck::decode(*reply);
  session_ = ack.session;
  server_ = ack.server;
}

std::uint64_t Client::submit(const std::string& manifest_line,
                             const std::string& idem) {
  Submit s;
  s.tag = next_tag_++;
  s.line = manifest_line;
  s.idem = idem;
  sendFrame(fd_, s.encode());
  return s.tag;
}

void Client::cancel(std::uint64_t job) {
  Cancel c;
  c.job = job;
  sendFrame(fd_, c.encode());
}

void Client::evict(std::uint64_t job) {
  Evict e;
  e.job = job;
  sendFrame(fd_, e.encode());
}

void Client::queryStats(std::uint32_t flags) {
  StatsQuery q;
  q.flags = flags;
  sendFrame(fd_, q.encode());
}

void Client::shutdownServer(bool drain) {
  Shutdown s;
  s.drain = drain;
  sendFrame(fd_, s.encode());
}

void Client::bye() {
  // Best-effort courtesy frame: after a shutdown request the server may
  // close the connection before the Bye lands, and that is not an error.
  try {
    sendFrame(fd_, Bye{}.encode());
  } catch (const Error&) {
  }
}

std::optional<Event> Client::next() { return next(0.0); }

std::optional<Event> Client::next(double timeout_seconds) {
  RecvDeadlines dl;
  dl.idle_seconds = timeout_seconds;
  std::optional<Frame> f = recvFrame(fd_, dl);
  if (!f.has_value()) return std::nullopt;
  switch (f->type) {
    case FrameType::kAccepted:
      return Event(Accepted::decode(*f));
    case FrameType::kRejected:
      return Event(Rejected::decode(*f));
    case FrameType::kJobStarted:
      return Event(JobStarted::decode(*f));
    case FrameType::kIteration:
      return Event(IterationUpdate::decode(*f));
    case FrameType::kJobEvicted:
      return Event(JobEvicted::decode(*f));
    case FrameType::kJobDone:
      return Event(JobDone::decode(*f));
    case FrameType::kStatsReply:
      return Event(StatsReply::decode(*f));
    case FrameType::kError:
      return Event(WireError::decode(*f));
    default:
      throw Error(std::string("client: unexpected ") + to_string(f->type) +
                  " frame from server");
  }
}

std::optional<std::uint64_t> Client::awaitAdmission(std::uint64_t tag,
                                                    std::string* reason) {
  for (;;) {
    std::optional<Event> ev = next();
    if (!ev.has_value()) {
      throw Error("client: connection closed awaiting admission");
    }
    if (const auto* acc = std::get_if<Accepted>(&*ev);
        acc != nullptr && acc->tag == tag) {
      return acc->job;
    }
    if (const auto* rej = std::get_if<Rejected>(&*ev);
        rej != nullptr && rej->tag == tag) {
      if (reason != nullptr) *reason = rej->reason;
      return std::nullopt;
    }
  }
}

JobDone Client::awaitDone(std::uint64_t job) {
  for (;;) {
    std::optional<Event> ev = next();
    if (!ev.has_value()) {
      throw Error("client: connection closed awaiting job " +
                  std::to_string(job));
    }
    if (const auto* done = std::get_if<JobDone>(&*ev);
        done != nullptr && done->job == job) {
      return *done;
    }
  }
}

}  // namespace bfvr::svc
