# Empty compiler generated dependencies file for bfvr_tests.
# This may be replaced when dependencies are built.
