// Framed binary wire protocol of the reachability service (bfv_serve /
// bfv_client): compact, self-described, length-prefixed frames with the
// same versioned-magic + CRC discipline as the src/io checkpoint format.
//
// Frame layout (all integers little-endian):
//
//   offset size  field
//   0      4     magic "BFVS"
//   4      1     protocol version (kWireVersion)
//   5      1     frame type (FrameType)
//   6      2     reserved, must be 0
//   8      4     payload byte count (<= kMaxFramePayload)
//   12     4     CRC-32 (IEEE 802.3) of the payload bytes
//   16     ...   payload
//
// Every malformed input — bad magic, unknown version, oversized length
// prefix, CRC mismatch, truncated payload, short read mid-frame — is a
// svc::Error, never undefined behaviour and never a crash: the reader is a
// bounds-checked cursor exactly like the checkpoint loader's. Frame
// payloads are typed per FrameType (see protocol.hpp); a frame is
// self-described by its (version, type) pair plus the explicit field
// encodings, so either end can skip or reject frames it does not know.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace bfvr::svc {

/// Thrown on any protocol failure: malformed frame, CRC mismatch, version
/// skew, oversized payload, short read/write, or a broken connection.
struct Error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Protocol revision. v2 added observability: Accepted carries the
/// server-assigned span trace id, and Stats carries a flags word selecting
/// which live sections (metrics / spans / flight ring) the reply embeds.
/// v3 added durability: Submit carries a client-chosen idempotency key so
/// a retried submission after a crash or disconnect can be deduplicated
/// against the server's job journal instead of executing twice.
inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard ceiling on one frame's payload: large enough for any checkpoint
/// image the shipped workloads produce, small enough that a corrupted (or
/// hostile) length prefix cannot drive an allocation bomb.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Frame types. Client->server frames are marked (c), server->client (s);
/// a few flow both ways.
enum class FrameType : std::uint8_t {
  kHello = 1,        ///< (c) tenant name + protocol version
  kHelloAck = 2,     ///< (s) session id + server tag
  kSubmit = 3,       ///< (c) one manifest-format job line
  kAccepted = 4,     ///< (s) job admitted: client tag -> server job id
  kRejected = 5,     ///< (s) job refused by admission control
  kJobStarted = 6,   ///< (s) job dispatched to a worker
  kIteration = 7,    ///< (s) one live frontier-iteration record
  kJobEvicted = 8,   ///< (s) job suspended via checkpoint, requeued
  kJobDone = 9,      ///< (s) final result of a job
  kCancel = 10,      ///< (c) cancel a queued or running job
  kEvict = 11,       ///< (c) suspend a running job to its checkpoint
  kStats = 12,       ///< (c) request the server metrics report
  kStatsReply = 13,  ///< (s) the report, as one JSON document
  kShutdown = 14,    ///< (c) stop the server (drain or immediate)
  kBye = 15,         ///< (c/s) orderly end of session
  kError = 16,       ///< (s) protocol-level error report
};

/// One decoded frame: type plus raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Payload codec: little-endian, bounds-checked — the same discipline as the
// checkpoint (de)serializer, with svc::Error as the failure mode.
// ---------------------------------------------------------------------------

/// Append-only payload builder.
struct Writer {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf.insert(buf.end(), b.begin(), b.end());
  }
};

/// Bounds-checked payload cursor; every malformed-input path is a
/// svc::Error.
struct Reader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t pos = 0;

  explicit Reader(const std::vector<std::uint8_t>& b)
      : p(b.data()), n(b.size()) {}
  Reader(const std::uint8_t* data, std::size_t size) : p(data), n(size) {}

  void need(std::size_t k) const {
    if (n - pos < k) throw Error("wire: truncated payload");
  }
  std::uint8_t u8() {
    need(1);
    return p[pos++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t{p[pos++]} << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[pos++]} << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t len = u32();
    need(len);
    std::vector<std::uint8_t> b(p + pos, p + pos + len);
    pos += len;
    return b;
  }
  /// A payload must be consumed exactly; trailing bytes mean the two ends
  /// disagree about the message layout.
  void done() const {
    if (pos != n) throw Error("wire: trailing bytes in payload");
  }
};

/// Serialize a frame: header (magic, version, type, length, CRC) + payload.
/// Throws svc::Error when the payload exceeds kMaxFramePayload.
std::vector<std::uint8_t> encodeFrame(const Frame& f);

/// Parse and validate the 16-byte frame header. Returns the payload length
/// and writes the type/expected CRC through the out-params. Throws
/// svc::Error on bad magic, version skew, nonzero reserved bits or an
/// oversized length prefix.
std::uint32_t decodeFrameHeader(const std::uint8_t header[kFrameHeaderBytes],
                                FrameType* type, std::uint32_t* crc);

/// Verify a received payload against the header's CRC. Throws svc::Error
/// on mismatch.
void checkPayloadCrc(const std::uint8_t* payload, std::size_t n,
                     std::uint32_t want);

const char* to_string(FrameType t) noexcept;

}  // namespace bfvr::svc
