# Empty dependencies file for bfvr_bfv.
# This may be replaced when dependencies are built.
