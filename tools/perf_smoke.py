#!/usr/bin/env python3
"""CI perf smoke: guard recursive_steps and peak_live_nodes against
committed baselines.

Usage: perf_smoke.py <current.json> <baseline.json> [<current2> <baseline2> ...]
                     [--tolerance 0.10]

Each (current, baseline) pair is a BENCH_*.json-shaped array of run objects
(bench_quantsched and bench_table2 emit the same row schema). Rows are
matched on (circuit, order, engine, schedule) and compared on
`recursive_steps` — the deterministic work metric, immune to CI-runner noise
(wall time on shared runners swings far more than 10%) — and on
`peak_live_nodes`, the memory-pressure metric the governor PR exists to
protect (a creeping peak silently erodes every node-budget headroom the
retry ladder depends on). The check fails if any matched row regresses by
more than the tolerance on either metric, or if a baseline row disappears;
new rows are reported but allowed, so adding circuits to a bench does not
require a lockstep baseline update.

Rows whose status is not "done" (timeouts, memouts) are skipped on both
sides: a run cut off by a wall-clock deadline stops at a machine-dependent
iteration, so its counters are not comparable across runners.

Update a baseline (after a deliberate algorithmic change) with:
    ./build/bench/bench_quantsched --quick --trace \
        --json=baselines/BENCH_quantsched.json
    ./build/bench/bench_table2 --quick --trace \
        --json=baselines/BENCH_table2.json
(--trace matters: the tracer's per-iteration snapshots perform a little BDD
work, so step counts in trace mode differ slightly from plain runs, and CI
runs with both flags.)
"""

import argparse
import json
import sys


def key(row):
    return (
        row.get("circuit"),
        row.get("order"),
        row.get("engine"),
        row.get("schedule"),
    )


METRICS = ("recursive_steps", "peak_live_nodes")


def load(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    skipped = 0
    for row in rows:
        if row.get("status", "done") != "done":
            skipped += 1
            continue
        metrics = {m: row[m] for m in METRICS if m in row}
        if metrics:
            out[key(row)] = metrics
    if skipped:
        print(f"note: {path}: skipped {skipped} non-done row(s)")
    return out


def compare(cur_path, base_path, tolerance):
    """Gate one (current, baseline) pair; returns True on failure."""
    cur = load(cur_path)
    base = load(base_path)
    if not base:
        print(f"error: no comparable rows in baseline {base_path}")
        return True

    print(f"--- {cur_path} vs {base_path}")
    failed = False
    for k, base_metrics in sorted(base.items()):
        label = "/".join(str(p) for p in k)
        if k not in cur:
            print(f"FAIL {label}: row missing from current run")
            failed = True
            continue
        for metric, base_val in sorted(base_metrics.items()):
            if metric not in cur[k]:
                print(f"FAIL {label}: {metric} missing from current run")
                failed = True
                continue
            cur_val = cur[k][metric]
            ratio = cur_val / base_val if base_val else float("inf")
            verdict = "ok"
            if ratio > 1.0 + tolerance:
                verdict = "FAIL"
                failed = True
            print(
                f"{verdict:4s} {label}: {metric} {cur_val} vs "
                f"baseline {base_val} ({(ratio - 1.0) * 100:+.1f}%)"
            )
    for k in sorted(set(cur) - set(base)):
        label = "/".join(str(p) for p in k)
        print(f"new  {label}: {cur[k]} (not in baseline)")
    return failed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("pairs", nargs="+",
                    metavar="current.json baseline.json",
                    help="one or more (current, baseline) file pairs")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    if len(args.pairs) % 2 != 0:
        print("error: expected (current, baseline) file pairs")
        return 2

    failed = False
    for i in range(0, len(args.pairs), 2):
        failed |= compare(args.pairs[i], args.pairs[i + 1], args.tolerance)

    if failed:
        print(f"\nperf smoke failed (tolerance {args.tolerance:.0%}); "
              "if the regression is intentional, regenerate the baseline "
              "(see header).")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
