// Quantification (exists / forall / andExists) against truth-table brute
// force.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

const std::vector<unsigned> kVars{0, 1, 2, 3};

// Brute-force exists over variable j of a 4-var truth table.
std::uint64_t existsTruth(std::uint64_t tt, unsigned j) {
  std::uint64_t out = 0;
  for (unsigned a = 0; a < 16; ++a) {
    const unsigned a0 = a & ~(1U << j);
    const unsigned a1 = a | (1U << j);
    if (((tt >> a0) & 1U) != 0 || ((tt >> a1) & 1U) != 0) {
      out |= std::uint64_t{1} << a;
    }
  }
  return out;
}

std::uint64_t forallTruth(std::uint64_t tt, unsigned j) {
  return ~existsTruth(~tt & 0xFFFFU, j) & 0xFFFFU;
}

class QuantSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantSweep, ExistsForallSingleVar) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  Manager m(4);
  const std::uint64_t tt = randomTruth(rng, 4);
  const Bdd f = bddFromTruth(m, kVars, tt);
  for (unsigned j = 0; j < 4; ++j) {
    const unsigned cv[] = {j};
    const Bdd cube = m.cube(cv);
    EXPECT_EQ(truthOf(m, m.exists(f, cube), kVars), existsTruth(tt, j));
    EXPECT_EQ(truthOf(m, m.forall(f, cube), kVars), forallTruth(tt, j));
  }
}

TEST_P(QuantSweep, ExistsMultiVarEqualsIterated) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  const unsigned both[] = {1, 3};
  const unsigned one[] = {1};
  const unsigned three[] = {3};
  EXPECT_EQ(m.exists(f, m.cube(both)),
            m.exists(m.exists(f, m.cube(one)), m.cube(three)));
  EXPECT_EQ(m.forall(f, m.cube(both)),
            m.forall(m.forall(f, m.cube(three)), m.cube(one)));
}

TEST_P(QuantSweep, AndExistsEqualsComposition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 5);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  const Bdd g = bddFromTruth(m, kVars, randomTruth(rng, 4));
  const unsigned cv[] = {0, 2};
  const Bdd cube = m.cube(cv);
  EXPECT_EQ(m.andExists(f, g, cube), m.exists(f & g, cube));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantSweep, ::testing::Range(0, 30));

TEST(BddQuant, QuantifyingAbsentVariableIsIdentity) {
  Manager m(4);
  const Bdd f = m.var(0) & m.var(1);
  const unsigned cv[] = {3};
  EXPECT_EQ(m.exists(f, m.cube(cv)), f);
  EXPECT_EQ(m.forall(f, m.cube(cv)), f);
}

TEST(BddQuant, QuantifyConstants) {
  Manager m(4);
  const unsigned cv[] = {0, 1};
  const Bdd cube = m.cube(cv);
  EXPECT_EQ(m.exists(m.one(), cube), m.one());
  EXPECT_EQ(m.exists(m.zero(), cube), m.zero());
  EXPECT_EQ(m.forall(m.one(), cube), m.one());
  EXPECT_EQ(m.forall(m.zero(), cube), m.zero());
}

TEST(BddQuant, ExistsIsMonotone) {
  Manager m(4);
  const Bdd f = m.var(0) & m.var(1);
  const unsigned cv[] = {1};
  const Bdd cube = m.cube(cv);
  EXPECT_TRUE(f.implies(m.exists(f, cube)));
  EXPECT_TRUE(m.forall(f, cube).implies(f));
}

TEST(BddQuant, AndExistsEarlyTermination) {
  // exists over everything of complementary functions is FALSE.
  Manager m(4);
  const Bdd f = m.var(0) ^ m.var(1);
  const unsigned cv[] = {0, 1, 2, 3};
  EXPECT_EQ(m.andExists(f, ~f, m.cube(cv)), m.zero());
  EXPECT_EQ(m.andExists(f, f, m.cube(cv)), m.one());
}

TEST(BddQuant, RelationalProductComputesImage) {
  // A 2-bit increment relation: u = v+1 mod 4. Image of {0} is {1}.
  Manager m(4);
  const Bdd v0 = m.var(0);
  const Bdd v1 = m.var(1);
  const Bdd u0 = m.var(2);
  const Bdd u1 = m.var(3);
  const Bdd rel = m.xnorB(u0, ~v0) & m.xnorB(u1, v1 ^ v0);
  const Bdd from = ~v0 & ~v1;  // state 00
  const unsigned cv[] = {0, 1};
  const Bdd img = m.andExists(from, rel, m.cube(cv));
  EXPECT_EQ(img, u0 & ~u1);  // state 01 (bit0 = 1)
}

}  // namespace
}  // namespace bfvr::bdd
