// Experiment: the §3 re-parameterization quantification schedule — the
// paper uses "a dynamic quantification schedule based on a simple support
// based cost heuristic"; this ablation compares it against quantifying
// parameters in a fixed (variable-index) order.
#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

int main() {
  const circuit::Netlist circuits[] = {
      circuit::makeTwinShift(14), circuit::makeFifoCtrl(4),
      circuit::makeJohnson(20), circuit::makeRandomSeq(14, 4, 80, 11),
      circuit::makeRandomSeq(16, 5, 100, 23)};

  std::printf("Re-parameterization schedule ablation (BFV engine, topo)\n");
  std::printf("%-12s | %10s %9s | %10s %9s\n", "circuit", "static t",
              "Peak(K)", "dynamic t", "Peak(K)");
  hr(60);
  for (const auto& n : circuits) {
    RunSpec stat;
    stat.engine = RunSpec::Engine::kBfv;
    stat.opts.budget.max_seconds = 30.0;
    stat.opts.reparam.schedule = bfv::QuantSchedule::kStaticOrder;
    RunSpec dyn = stat;
    dyn.opts.reparam.schedule = bfv::QuantSchedule::kSupportCost;
    const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
    const reach::ReachResult a = runOnce(n, order, stat);
    const reach::ReachResult b = runOnce(n, order, dyn);
    std::printf("%-12s | %10s %9s | %10s %9s\n", n.name().c_str(),
                timeCell(a).c_str(), peakCell(a).c_str(),
                timeCell(b).c_str(), peakCell(b).c_str());
  }
  hr(60);
  std::printf(
      "\nThe dynamic schedule touches fewer components per quantification\n"
      "(\"we compute supports to avoid BDD operations on vector components\n"
      "that do not depend on the variable being quantified\", §3).\n");
  return 0;
}
