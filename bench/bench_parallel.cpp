// Experiment: thread scaling of the parallel BDD kernel (sharded unique
// table + concurrent computed cache + task-parallel apply, DESIGN.md §15).
//
// Every circuit/engine pair is swept over a thread list (default 1,2,4).
// The threads=1 run is the reference: parallel runs must reproduce its
// status, iteration count, and state count exactly — the kernel may differ
// in op schedule, never in results — and the speedup column is wall-clock
// of threads=1 over wall-clock of threads=N.
//
// JSON rows carry `threads`, `host_cpus` and `speedup` alongside the usual
// run object. `host_cpus` is what makes committed baselines honest: a row
// recorded on a 1-CPU builder legitimately shows speedup ~1.0, and the CI
// speedup gate (tools/perf_smoke.py --speedup) only binds when the row was
// produced on a machine with enough cores.
//
// `--quick` keeps the two rows the CI gate reads (fifo4/BFV, twin14/TR);
// the full sweep adds the bigger table-2 circuits.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

namespace {

std::vector<unsigned> parseThreadList(const std::string& s) {
  std::vector<unsigned> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string tok = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<unsigned> threads = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = parseThreadList(argv[i] + 10);
    }
  }
  if (threads.empty() || threads.front() != 1) {
    threads.insert(threads.begin(), 1);  // the reference run is mandatory
  }
  JsonLog log = jsonLogFromArgs(argc, argv, "parallel");
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  struct Row {
    circuit::Netlist n;
    RunSpec::Engine engine;
  };
  std::vector<Row> rows;
  rows.push_back({circuit::makeFifoCtrl(4), RunSpec::Engine::kBfv});
  rows.push_back({circuit::makeTwinShift(14), RunSpec::Engine::kTr});
  if (!quick) {
    rows.push_back({circuit::makeTwinShift(16), RunSpec::Engine::kTr});
    rows.push_back({circuit::makeRandomSeq(16, 5, 100, 23),
                    RunSpec::Engine::kTr});
    rows.push_back({circuit::makeFifoCtrl(4), RunSpec::Engine::kCdec});
  }

  std::printf("Parallel-kernel thread scaling (host has %u cpu%s)\n",
              host_cpus, host_cpus == 1 ? "" : "s");
  std::printf("%-12s %-10s %8s %10s %9s %12s\n", "circuit", "engine",
              "threads", "time(s)", "speedup", "states");
  hr(68);
  bool ok = true;
  for (const Row& row : rows) {
    reach::ReachResult base;
    for (const unsigned t : threads) {
      RunSpec spec;
      spec.engine = row.engine;
      spec.opts.budget.max_seconds = quick ? 20.0 : 60.0;
      spec.mgr.max_nodes = 400000;
      spec.mgr.threads = t;
      const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
      const reach::ReachResult r = runOnce(row.n, order, spec);
      if (t == 1) base = r;
      double speedup = 0.0;
      if (base.status == RunStatus::kDone && r.status == RunStatus::kDone &&
          r.seconds > 0.0) {
        speedup = base.seconds / r.seconds;
      }
      // Results contract: any thread count computes the same fixpoint.
      const bool match = r.status == base.status &&
                         r.iterations == base.iterations &&
                         r.states == base.states;
      if (!match) ok = false;
      log.push(runObject(row.n.name(), order.label(), engineName(row.engine), r)
                   .add("threads", static_cast<std::uint64_t>(t))
                   .add("host_cpus", static_cast<std::uint64_t>(host_cpus))
                   .add("speedup", speedup));
      char states[32];
      std::snprintf(states, sizeof states, "%.6g", r.states);
      std::printf("%-12s %-10s %8u %10s %9.2f %12s%s\n", row.n.name().c_str(),
                  engineName(row.engine), t, timeCell(r).c_str(), speedup,
                  r.status == RunStatus::kDone ? states : "-",
                  match ? "" : "  <- MISMATCH vs threads=1");
    }
  }
  hr(68);
  if (!ok) {
    std::printf("\nFAIL: a parallel run diverged from its threads=1 "
                "reference.\n");
  }
  return ok && log.write() ? 0 : 1;
}
