// ISCAS89 `.bench` reader/writer, so the paper's actual benchmark circuits
// (s1269, s3271, ...) can be dropped in unchanged when available.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace bfvr::circuit {

/// Parse a `.bench` netlist. Supported lines: `INPUT(x)`, `OUTPUT(x)`,
/// `y = OP(a, b, ...)` with OP in {AND, NAND, OR, NOR, XOR, XNOR, NOT,
/// BUF, BUFF, DFF}, and `#` comments. DFF initial values default to 0 (the
/// ISCAS89 convention).
Netlist parseBench(std::istream& in, const std::string& name = "bench");
Netlist parseBenchString(const std::string& text,
                         const std::string& name = "bench");
Netlist parseBenchFile(const std::string& path);

/// Serialize back to `.bench` (gates with more than two fanins are kept
/// as-is; round-trips through parseBench).
std::string toBench(const Netlist& n);

}  // namespace bfvr::circuit
