// Single-job execution: fresh manager, deadline + cancellation through the
// interrupt hook, engine dispatch, and the engine-boundary catch that turns
// every failure mode into a RunStatus (a runaway or crashing job must never
// take the pool — or the process — down with it).
#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "io/checkpoint.hpp"
#include "lz/lz_reach.hpp"
#include "obs/metrics.hpp"
#include "run/run.hpp"
#include "sym/space.hpp"
#include "util/stats.hpp"

namespace bfvr::run {

const char* to_string(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kTr:
      return "tr";
    case EngineKind::kTrMono:
      return "tr-mono";
    case EngineKind::kCbm:
      return "cbm";
    case EngineKind::kBfv:
      return "bfv";
    case EngineKind::kCdec:
      return "cdec";
    case EngineKind::kHybrid:
      return "hybrid";
    case EngineKind::kLz:
      return "lz";
  }
  return "?";
}

std::span<const EngineKind> allEngineKinds() noexcept {
  static const EngineKind kAll[] = {
      EngineKind::kTr,   EngineKind::kTrMono, EngineKind::kCbm,
      EngineKind::kBfv,  EngineKind::kCdec,   EngineKind::kHybrid,
      EngineKind::kLz,
  };
  return kAll;
}

EngineKind parseEngineKind(const std::string& s) {
  if (s == "tr") return EngineKind::kTr;
  if (s == "tr-mono" || s == "trmono") return EngineKind::kTrMono;
  if (s == "cbm") return EngineKind::kCbm;
  if (s == "bfv") return EngineKind::kBfv;
  if (s == "cdec") return EngineKind::kCdec;
  if (s == "hybrid") return EngineKind::kHybrid;
  if (s == "lz") return EngineKind::kLz;
  std::string known;
  for (EngineKind e : allEngineKinds()) {
    if (!known.empty()) known += ", ";
    known += to_string(e);
  }
  throw std::invalid_argument("unknown engine '" + s + "' (known: " + known +
                              ")");
}

std::string JobSpec::displayName() const {
  if (!name.empty()) return name;
  return circuit + "/" + to_string(engine);
}

namespace {

/// Split "a:b:c" into segments.
std::vector<std::string> splitColons(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ':')) out.push_back(cur);
  return out;
}

unsigned argAt(const std::vector<std::string>& parts, std::size_t i,
               const std::string& spec) {
  if (i >= parts.size()) {
    throw std::invalid_argument("generator spec needs more arguments: " +
                                spec);
  }
  return static_cast<unsigned>(std::stoul(parts[i]));
}

reach::ReachResult dispatchEngine(EngineKind e, sym::StateSpace& s,
                                  reach::ReachOptions opts) {
  switch (e) {
    case EngineKind::kTr:
      return reach::reachTr(s, opts);
    case EngineKind::kTrMono:
      opts.transition.cluster_limit = 0;
      return reach::reachTr(s, opts);
    case EngineKind::kCbm:
      return reach::reachCbm(s, opts);
    case EngineKind::kBfv:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    case EngineKind::kCdec:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
    case EngineKind::kHybrid:
      return reach::reachHybrid(s, opts);
    case EngineKind::kLz:
      // Handled before a StateSpace (or a manager) ever exists; reaching
      // the BDD dispatcher with kLz is a programming error.
      throw std::logic_error("lz engine dispatched to the BDD path");
  }
  throw std::logic_error("bad engine kind");
}

/// The kLz attempt body: no manager, no state space — the netlist goes
/// straight into the zonotope engine, and the LzResult is adapted onto the
/// ReachResult the job/report layers already speak. Cancellation is polled
/// through the job's CancelToken (there is no interrupt hook to install);
/// the deadline rides on ReachOptions::budget.max_seconds, which the caller
/// already folded the deadline into.
reach::ReachResult runLzAttempt(const JobSpec& spec, const circuit::Netlist& n,
                                const reach::ReachOptions& opts,
                                const CancelToken* cancel) {
  lz::LzOptions lo;
  lo.budget = opts.budget;
  lo.max_iterations = opts.max_iterations;
  if (spec.lz_merge != 0) lo.merge_threshold = spec.lz_merge;
  if (!spec.lz_target.empty()) {
    const circuit::SignalId sig = n.signal(spec.lz_target);
    int pos = -1;
    for (std::size_t i = 0; i < n.outputs().size(); ++i) {
      if (n.outputs()[i] == sig) pos = static_cast<int>(i);
    }
    if (pos < 0) {
      throw std::invalid_argument("target is not a primary output: " +
                                  spec.lz_target);
    }
    lo.target_output = pos;
  }
  if (cancel != nullptr) {
    lo.cancelled = [cancel] { return cancel->cancelled(); };
  }
  obs::RunTrace trace;
  std::size_t peak_members = 0;
  if (opts.trace || opts.on_iteration) {
    lo.on_iteration = [&trace, &peak_members,
                       &opts](const lz::IterationStats& s) {
      obs::IterationRecord rec;
      rec.iteration = s.iteration;
      rec.frontier_states = s.frontier_states;
      rec.frontier_nodes = s.frontier_members;
      // No BDD nodes exist; the member census (zonotopes + points) is the
      // closest live-size analogue the record can carry.
      rec.live_nodes = s.zonotopes + s.points;
      peak_members = std::max(peak_members, rec.live_nodes);
      rec.peak_nodes = peak_members;
      if (opts.trace) trace.iterations.push_back(rec);
      if (opts.on_iteration) {
        try {
          opts.on_iteration(rec);
        } catch (...) {
          // Streaming hooks must not abort the run (engine contract).
        }
      }
    };
  }
  lz::LzResult r = lz::lzReach(n, lo);
  reach::ReachResult out;
  out.status = r.status;
  out.message = r.message;
  if (r.target_reachable.has_value()) {
    const std::string verdict = *r.target_reachable
                                    ? "target '" + spec.lz_target +
                                          "' reachable"
                                    : "target '" + spec.lz_target +
                                          "' unreachable";
    out.message = out.message.empty() ? verdict : verdict + "; " + out.message;
  }
  out.iterations = r.iterations;
  out.states = r.states;
  out.seconds = r.seconds;
  out.peak_live_nodes = 0;  // the whole point: no BDD was ever built
  if (opts.trace) out.trace = std::move(trace);
  static obs::Counter& runs =
      obs::Registry::global().counter("bfvr_lz_runs_total");
  static obs::Counter& exact =
      obs::Registry::global().counter("bfvr_lz_exact_runs_total");
  static obs::Counter& lossy =
      obs::Registry::global().counter("bfvr_lz_lossy_products_total");
  runs.inc();
  if (r.exact) exact.inc();
  if (r.lossy_products != 0) lossy.inc(r.lossy_products);
  return out;
}

}  // namespace

circuit::Netlist resolveCircuit(const std::string& spec) {
  if (spec.rfind("gen:", 0) != 0) return circuit::parseBenchFile(spec);
  const std::vector<std::string> parts = splitColons(spec.substr(4));
  if (parts.empty()) throw std::invalid_argument("empty generator spec");
  const std::string& kind = parts[0];
  if (kind == "counter") {
    return circuit::makeCounter(argAt(parts, 1, spec), argAt(parts, 2, spec));
  }
  if (kind == "johnson") return circuit::makeJohnson(argAt(parts, 1, spec));
  if (kind == "lfsr") return circuit::makeLfsr(argAt(parts, 1, spec));
  if (kind == "lfsr-free") {
    return circuit::makeLfsrFree(argAt(parts, 1, spec));
  }
  if (kind == "twinshift") {
    return circuit::makeTwinShift(argAt(parts, 1, spec));
  }
  if (kind == "arbiter") return circuit::makeArbiter(argAt(parts, 1, spec));
  if (kind == "fifo") return circuit::makeFifoCtrl(argAt(parts, 1, spec));
  if (kind == "gray") return circuit::makeGrayCounter(argAt(parts, 1, spec));
  if (kind == "crc") return circuit::makeCrc(argAt(parts, 1, spec));
  if (kind == "random") {
    return circuit::makeRandomSeq(argAt(parts, 1, spec), argAt(parts, 2, spec),
                                  argAt(parts, 3, spec), argAt(parts, 4, spec));
  }
  throw std::invalid_argument("unknown generator kind: " + spec);
}

namespace {

/// One attempt on one manager — fresh, or acquired warm from the worker's
/// ManagerCache: deadline + cancellation wired to the interrupt hook, fault
/// plan installed, engine dispatched (or resumed from an in-memory image /
/// a checkpoint file when one is available). Never throws: every failure
/// mode folds into the result status — which is what lets a worker release
/// this attempt's manager (scoped here, released whatever happened) and
/// move on to the next queued job or retry.
JobResult executeAttempt(const JobSpec& spec, const CancelToken* cancel,
                         bool try_resume, ManagerCache* warm,
                         AttemptRecord& rec) noexcept {
  JobResult out;
  const Timer timer;  // the deadline clock: covers setup AND engine
  std::unique_ptr<bdd::Manager> owned;
  try {
    reach::ReachOptions opts = spec.opts;
    if (spec.deadline_seconds > 0.0) {
      // Fold the deadline into the engine budget too: a job whose
      // iterations are too small to reach a manager poll point must still
      // time out at the engine's per-iteration budget check.
      opts.budget.max_seconds =
          opts.budget.max_seconds > 0.0
              ? std::min(opts.budget.max_seconds, spec.deadline_seconds)
              : spec.deadline_seconds;
    }
    const circuit::Netlist n = resolveCircuit(spec.circuit);
    if (spec.engine == EngineKind::kLz) {
      // The zonotope backend: no manager, no state space, no warm-cache
      // traffic — the attempt runs entirely on generator matrices. The
      // deadline was folded into opts.budget above; cancellation is polled
      // directly (there is no interrupt hook without a manager).
      out.reach = runLzAttempt(spec, n, opts, cancel);
      out.status = out.reach.status;
      out.message = out.reach.message;
      out.seconds = timer.seconds();
      rec.status = out.status;
      rec.message = out.message;
      rec.seconds = out.seconds;
      return out;
    }
    owned = warm != nullptr ? warm->acquire(spec.mgr)
                            : std::make_unique<bdd::Manager>(0, spec.mgr);
    bdd::Manager& m = *owned;
    // Parallel-kernel counters are cumulative per manager (and managers are
    // reused warm), so publish per-attempt deltas on scope exit — whatever
    // the attempt's outcome.
    const bdd::Manager::ParCounters par_before = m.parCounters();
    struct ParPublish {
      bdd::Manager& m;
      bdd::Manager::ParCounters before;
      ~ParPublish() {
        static obs::Counter& tasks =
            obs::Registry::global().counter("bfvr_bdd_par_tasks_total");
        static obs::Counter& steals =
            obs::Registry::global().counter("bfvr_bdd_par_steals_total");
        static obs::Counter& shard = obs::Registry::global().counter(
            "bfvr_bdd_par_shard_contention_total");
        static obs::Counter& races =
            obs::Registry::global().counter("bfvr_bdd_par_cache_races_total");
        const bdd::Manager::ParCounters now = m.parCounters();
        tasks.inc(now.tasks_spawned - before.tasks_spawned);
        steals.inc(now.tasks_stolen - before.tasks_stolen);
        shard.inc(now.shard_contention - before.shard_contention);
        races.inc(now.cache_races - before.cache_races);
      }
    } par_publish{m, par_before};
    if (!spec.faults.empty()) m.setFaultPlan(spec.faults);
    if (cancel != nullptr || spec.deadline_seconds > 0.0) {
      const double deadline = spec.deadline_seconds;
      m.setInterruptCheck([cancel, deadline, &timer] {
        if (cancel != nullptr && cancel->cancelled()) {
          throw bdd::Interrupted(bdd::Interrupted::Reason::kCancelled);
        }
        if (deadline > 0.0 && timer.seconds() > deadline) {
          throw bdd::Interrupted(bdd::Interrupted::Reason::kDeadline);
        }
      });
    }
    // Scoped so the state space's handles die before the manager is
    // released to the warm cache below.
    {
      sym::StateSpace s(m, n, circuit::makeOrder(n, spec.order));
      if (spec.resume_image != nullptr && !spec.resume_image->empty()) {
        // Migration resume: the image was captured when this job was
        // evicted from another worker.
        try {
          out.reach = reach::resumeReach(
              s, std::span<const std::uint8_t>(*spec.resume_image), opts);
          rec.resumed = true;
        } catch (const io::Error&) {
          out.reach = dispatchEngine(spec.engine, s, opts);
        }
      } else if (try_resume && !opts.checkpoint_path.empty()) {
        try {
          out.reach = reach::resumeReach(s, opts.checkpoint_path, opts);
          rec.resumed = true;
        } catch (const io::Error&) {
          // No (or no usable) checkpoint yet: fall back to a fresh run.
          out.reach = dispatchEngine(spec.engine, s, opts);
        }
      } else {
        out.reach = dispatchEngine(spec.engine, s, opts);
      }
    }
    out.status = out.reach.status;
    out.message = out.reach.message;
    // The reached set lives in this manager, which dies (or is reset for
    // reuse) with the job: drop the handles here, explicitly, rather than
    // letting the release orphan them after the result already escaped.
    out.reach.reached_bfv.reset();
    out.reach.reached_chi = bdd::Bdd();
    rec.faults_injected = m.faultsInjected();
  } catch (const bdd::NodeBudgetExceeded& e) {
    // Setup (netlist -> BDDs) blew the manager's hard node budget before
    // the engine's own boundary could catch it.
    out.status = RunStatus::kMemOut;
    out.message = e.what();
  } catch (const bdd::Interrupted& e) {
    out.status = e.reason() == bdd::Interrupted::Reason::kDeadline
                     ? RunStatus::kTimeOut
                     : RunStatus::kCancelled;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = RunStatus::kError;
    out.message = e.what();
  } catch (...) {
    out.status = RunStatus::kError;
    out.message = "unknown exception";
  }
  // Hand the attempt's manager back to the warm cache (reset-not-destroy);
  // without a cache the unique_ptr destroys it right here, exactly like
  // the old stack object did.
  if (warm != nullptr) warm->release(std::move(owned));
  owned.reset();
  out.seconds = timer.seconds();
  rec.status = out.status;
  rec.message = out.message;
  rec.seconds = out.seconds;
  return out;
}

/// Apply the escalation step for the NEXT attempt (1-based `attempt` just
/// finished) and return its tag for the attempt record.
const char* escalate(JobSpec& spec, unsigned attempt) {
  if (attempt == 1) {
    spec.mgr.auto_reorder = true;
    spec.mgr.pressure_ladder.enabled = true;
    return "auto-reorder+ladder";
  }
  if (attempt == 2) {
    spec.mgr.cache_bits = spec.mgr.cache_bits > 14u
                              ? spec.mgr.cache_bits - 2u
                              : std::min(12u, spec.mgr.cache_bits);
    return "cache-shrink";
  }
  const double g = spec.retry.node_budget_growth;
  const auto grow = [g](std::size_t v) {
    return v == 0 ? v : static_cast<std::size_t>(static_cast<double>(v) * g);
  };
  spec.mgr.max_nodes = grow(spec.mgr.max_nodes);
  spec.opts.budget.max_live_nodes = grow(spec.opts.budget.max_live_nodes);
  return "raise-budget";
}

}  // namespace

JobResult executeJob(const JobSpec& spec, const CancelToken* cancel,
                     ManagerCache* warm) noexcept {
  const Timer timer;
  JobSpec cur = spec;
  const unsigned max_attempts = std::max(1u, spec.retry.max_attempts);
  std::string escalation;  // tag of the step applied before this attempt
  JobResult out;
  for (unsigned attempt = 1;; ++attempt) {
    AttemptRecord rec;
    rec.escalation = escalation;
    std::vector<AttemptRecord> history = std::move(out.attempts);
    out = executeAttempt(cur, cancel,
                         attempt > 1 && cur.retry.resume_from_checkpoint, warm,
                         rec);
    out.attempts = std::move(history);
    out.attempts.push_back(std::move(rec));
    // Only an out-of-nodes attempt is worth escalating: a timeout would
    // burn the same wall-clock again, an error or a cancellation would
    // repeat verbatim.
    if (out.status != RunStatus::kMemOut || attempt >= max_attempts) break;
    if (cancel != nullptr && cancel->cancelled()) break;
    escalation = escalate(cur, attempt);
    if (spec.retry.backoff_seconds > 0.0) {
      // Exponential backoff, polled so a cancellation cuts the wait short.
      const double wait = spec.retry.backoff_seconds *
                          static_cast<double>(1u << (attempt - 1));
      const Timer backoff;
      while (backoff.seconds() < wait) {
        if (cancel != nullptr && cancel->cancelled()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  out.seconds = timer.seconds();
  // Job-level observability counters. Registered lazily (function-local
  // statics) and updated with relaxed increments; nothing here touches the
  // manager or engine state, so instrumented runs stay op-count identical.
  static obs::Counter& retries =
      obs::Registry::global().counter("bfvr_job_retries_total");
  static obs::Counter& resumes =
      obs::Registry::global().counter("bfvr_job_resumes_total");
  static obs::Counter& faults =
      obs::Registry::global().counter("bfvr_job_faults_injected_total");
  if (out.retriesUsed() > 0) retries.inc(out.retriesUsed());
  for (const AttemptRecord& rec : out.attempts) {
    if (rec.resumed) resumes.inc();
    if (rec.faults_injected != 0) faults.inc(rec.faults_injected);
  }
  return out;
}

}  // namespace bfvr::run
