#include "sym/ordersearch.hpp"

#include <limits>

#include "sym/simulate.hpp"

namespace bfvr::sym {

std::size_t orderCost(const circuit::Netlist& n,
                      const std::vector<circuit::ObjRef>& order,
                      std::size_t eval_node_budget) {
  bdd::Manager::Config cfg;
  cfg.max_nodes = eval_node_budget;
  bdd::Manager m(0, cfg);
  try {
    StateSpace s(m, n, order);
    const std::vector<Bdd> delta = transitionFunctions(s);
    return m.sharedNodeCount(delta);
  } catch (const bdd::NodeBudgetExceeded&) {
    return std::numeric_limits<std::size_t>::max();
  }
}

std::vector<circuit::ObjRef> searchOrder(const circuit::Netlist& n,
                                         std::vector<circuit::ObjRef> start,
                                         const OrderSearchOptions& opts) {
  std::size_t best = orderCost(n, start, opts.eval_node_budget);
  for (unsigned pass = 0; pass < opts.passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < start.size(); ++i) {
      std::swap(start[i], start[i + 1]);
      const std::size_t cost = orderCost(n, start, opts.eval_node_budget);
      if (cost < best) {
        best = cost;
        improved = true;
      } else {
        std::swap(start[i], start[i + 1]);  // revert
      }
    }
    if (!improved) break;
  }
  return start;
}

}  // namespace bfvr::sym
