// Symbolic simulation: evaluate the netlist over BDDs. This is the image
// half of the paper's Fig. 2 flow — feed the current state set's BFV
// components into the latch outputs, fresh input variables into the primary
// inputs, and read the next-state functions at the latch data inputs.
#pragma once

#include "sym/space.hpp"

namespace bfvr::sym {

struct SimResult {
  /// Next-state functions in *component order* (aligned with the BFV).
  std::vector<Bdd> next_state;
  /// Primary output functions (netlist output order).
  std::vector<Bdd> outputs;
};

/// Symbolically simulate one cycle. `latch_values[i]` is the function
/// driven onto the output of the latch of component i (component order);
/// if empty, the current-state variables v_i are used (transition-function
/// extraction). Inputs are driven with their input variables.
SimResult simulate(const StateSpace& s, std::span<const Bdd> latch_values);

/// Next-state functions delta_i(v, x) in component order — simulation from
/// the identity state assignment.
std::vector<Bdd> transitionFunctions(const StateSpace& s);

}  // namespace bfvr::sym
