// The zonotope fixpoint engine. Shape of the loop mirrors the BDD engines
// (expand the frontier, union into the reached set, stop when nothing new),
// but every set is a GeneratorSet and every image is an affine-form
// symbolic simulation — see lz_reach.hpp for the representation story.
#include "lz/lz_reach.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace bfvr::lz {

namespace {

// ---- affine forms ----------------------------------------------------------
// A form is a packed row over [bit 0 = constant | bit 1+k = coefficient of
// parameter k]. Rows have ragged widths (parameters are minted on demand);
// all operations treat missing tail words as zero.

/// Drop trailing zero words — canonical widths, so equal linear parts
/// compare equal and map keys dedupe.
void trimForm(Bits& f) {
  while (!f.empty() && f.back() == 0) f.pop_back();
}

void xorIntoWide(Bits& a, const Bits& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  xorInto(a, b);
}

bool formIsConst(const Bits& f) {
  if (f.empty()) return true;
  if ((f[0] >> 1) != 0) return false;
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (f[i] != 0) return false;
  }
  return true;
}

bool formConstVal(const Bits& f) {
  return !f.empty() && (f[0] & 1u) != 0;
}

Bits formConst(bool v) { return v ? Bits{1} : Bits{}; }

Bits formParam(unsigned k) {
  Bits f(wordsFor(k + 2), 0);
  setBit(f, k + 1, true);
  return f;
}

Bits formXor(const Bits& a, const Bits& b) {
  Bits r = a;
  xorIntoWide(r, b);
  return r;
}

Bits formNot(Bits f) {
  if (f.empty()) f.assign(1, 0);
  f[0] ^= 1u;
  return f;
}

/// Shared evaluation state of one member expansion: the growing parameter
/// pool and the memo of AND cross-term parameters. Memoizing delta per
/// unordered (A, B) pair keeps identical products correlated, so e.g.
/// (s&a) XOR (s&a) still cancels exactly.
struct FormCtx {
  unsigned ngens = 0;
  bool exact = true;
  std::uint64_t lossy = 0;  ///< fresh deltas minted
  std::map<std::pair<Bits, Bits>, unsigned> products;
};

/// f AND g over affine forms. Writing f = a0 ^ A.beta and g = b0 ^ B.beta:
///   f&g = a0b0 ^ a0(B.beta) ^ b0(A.beta) ^ (A.beta)(B.beta)
/// The cross term is exact when A == B ((A.beta)^2 = A.beta over GF(2)) or
/// an operand is constant; otherwise it is a quadratic the affine form
/// cannot carry, over-approximated by a fresh (memoized) free parameter.
Bits formAnd(FormCtx& ctx, const Bits& a, const Bits& b) {
  if (formIsConst(a)) return formConstVal(a) ? b : formConst(false);
  if (formIsConst(b)) return formConstVal(b) ? a : formConst(false);
  const bool a0 = (a[0] & 1u) != 0;
  const bool b0 = (b[0] & 1u) != 0;
  Bits A = a;
  A[0] &= ~Word{1};
  trimForm(A);
  Bits B = b;
  B[0] &= ~Word{1};
  trimForm(B);
  Bits r;
  if (A == B) {
    r = A;  // (A.beta)^2 = A.beta
  } else {
    ctx.exact = false;
    auto key = A < B ? std::make_pair(A, B) : std::make_pair(B, A);
    auto [it, fresh] = ctx.products.try_emplace(std::move(key), 0u);
    if (fresh) {
      it->second = ctx.ngens++;
      ++ctx.lossy;
    }
    r = formParam(it->second);
  }
  if (a0) xorIntoWide(r, B);
  if (b0) xorIntoWide(r, A);
  if (a0 && b0) {
    if (r.empty()) r.assign(1, 0);
    r[0] ^= 1u;
  }
  return r;
}

Bits formOr(FormCtx& ctx, const Bits& a, const Bits& b) {
  return formNot(formAnd(ctx, formNot(a), formNot(b)));
}

// ---- member expansion ------------------------------------------------------

struct MemberImage {
  GeneratorSet img;
  bool exact = true;
  bool out_can_be_1 = false;  ///< target form is not identically false
  unsigned gens_used = 0;
  std::uint64_t lossy = 0;
};

MemberImage evalMember(const circuit::Netlist& n,
                       const std::vector<circuit::SignalId>& topo,
                       const GeneratorSet& member, int target_output) {
  const unsigned dims = static_cast<unsigned>(n.latches().size());
  FormCtx ctx;
  ctx.ngens = member.rank();
  std::vector<Bits> form(n.numSignals());

  // Sources: latches slice the member's column structure (parameter k of
  // latch p is bit p of generator k); each primary input is a fresh free
  // parameter — inputs re-randomize every step.
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    Bits f(wordsFor(member.rank() + 1), 0);
    setBit(f, 0, getBit(member.center(), static_cast<unsigned>(p)));
    for (unsigned k = 0; k < member.rank(); ++k) {
      if (getBit(member.generators()[k], static_cast<unsigned>(p))) {
        setBit(f, k + 1, true);
      }
    }
    trimForm(f);
    form[n.latches()[p]] = std::move(f);
  }
  for (circuit::SignalId in : n.inputs()) form[in] = formParam(ctx.ngens++);

  for (circuit::SignalId id : topo) {
    const circuit::Gate& g = n.gate(id);
    if (circuit::isSource(g.op)) continue;
    switch (g.op) {
      case circuit::GateOp::kConst0:
        form[id] = formConst(false);
        break;
      case circuit::GateOp::kConst1:
        form[id] = formConst(true);
        break;
      case circuit::GateOp::kBuf:
        form[id] = form[g.fanins[0]];
        break;
      case circuit::GateOp::kNot:
        form[id] = formNot(form[g.fanins[0]]);
        break;
      case circuit::GateOp::kAnd:
      case circuit::GateOp::kNand: {
        Bits acc = form[g.fanins[0]];
        for (std::size_t i = 1; i < g.fanins.size(); ++i) {
          acc = formAnd(ctx, acc, form[g.fanins[i]]);
        }
        form[id] = g.op == circuit::GateOp::kNand ? formNot(std::move(acc))
                                                  : std::move(acc);
        break;
      }
      case circuit::GateOp::kOr:
      case circuit::GateOp::kNor: {
        Bits acc = form[g.fanins[0]];
        for (std::size_t i = 1; i < g.fanins.size(); ++i) {
          acc = formOr(ctx, acc, form[g.fanins[i]]);
        }
        form[id] = g.op == circuit::GateOp::kNor ? formNot(std::move(acc))
                                                 : std::move(acc);
        break;
      }
      case circuit::GateOp::kXor:
      case circuit::GateOp::kXnor: {
        Bits acc = form[g.fanins[0]];
        for (std::size_t i = 1; i < g.fanins.size(); ++i) {
          acc = formXor(acc, form[g.fanins[i]]);
        }
        form[id] = g.op == circuit::GateOp::kXnor ? formNot(std::move(acc))
                                                  : std::move(acc);
        break;
      }
      default:
        break;  // sources filtered above
    }
  }

  MemberImage out{GeneratorSet(dims)};
  // Column-slice the latch-data forms into the image zonotope: latch bit p
  // of the center is the constant of form p, generator k is the column of
  // coefficient k across the latch-data forms. addGenerator drops zero and
  // dependent columns, so the image arrives already reduced.
  Bits center(wordsFor(dims), 0);
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    const Bits& f = form[n.latchData(p)];
    if (!f.empty() && (f[0] & 1u) != 0) {
      setBit(center, static_cast<unsigned>(p), true);
    }
  }
  out.img = GeneratorSet(dims, std::move(center));
  for (unsigned k = 0; k < ctx.ngens; ++k) {
    Bits col(wordsFor(dims), 0);
    bool any = false;
    for (std::size_t p = 0; p < n.latches().size(); ++p) {
      const Bits& f = form[n.latchData(p)];
      const unsigned bit = k + 1;
      if (bit / 64 < f.size() && getBit(f, bit)) {
        setBit(col, static_cast<unsigned>(p), true);
        any = true;
      }
    }
    if (any) out.img.addGenerator(std::move(col));
  }
  if (target_output >= 0 &&
      static_cast<std::size_t>(target_output) < n.outputs().size()) {
    const Bits& f = form[n.outputs()[static_cast<std::size_t>(target_output)]];
    // A non-constant affine form attains both values; constant-true always
    // does. Only the identically-false form can never assert the output.
    out.out_can_be_1 = !(formIsConst(f) && !formConstVal(f));
  }
  out.exact = ctx.exact;
  out.gens_used = ctx.ngens;
  out.lossy = ctx.lossy;
  return out;
}

// ---- reached-set bookkeeping ----------------------------------------------

Bits unpack(std::uint64_t v, unsigned dims) {
  Bits b(wordsFor(dims), 0);
  if (!b.empty()) b[0] = v;
  return b;
}

void addPoint(StateSet& s, const Bits& p) {
  if (s.dims <= 64) {
    s.points.insert(packLow(p));
  } else {
    s.wide_points.insert(p);
  }
}

}  // namespace

bool StateSet::containsPoint(const Bits& p) const {
  if (dims <= 64) {
    if (points.contains(packLow(p))) return true;
  } else if (wide_points.contains(p)) {
    return true;
  }
  for (const GeneratorSet& z : zonos) {
    if (z.contains(p)) return true;
  }
  return false;
}

double StateSet::upperBound() const noexcept {
  double total = static_cast<double>(pointCount());
  for (const GeneratorSet& z : zonos) total += z.count();
  return total;
}

LzResult lzReach(const circuit::Netlist& n, const LzOptions& opts) {
  const Timer timer;
  LzResult res;
  if (opts.target_output >= 0 &&
      static_cast<std::size_t>(opts.target_output) >= n.outputs().size()) {
    throw std::invalid_argument("lzReach: target output out of range");
  }
  const unsigned dims = static_cast<unsigned>(n.latches().size());
  const std::vector<circuit::SignalId> topo = n.topoOrder();
  res.reached = StateSet(dims);
  std::vector<std::string> caveats;

  Bits init(wordsFor(dims), 0);
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    if (n.latchInit(p)) setBit(init, static_cast<unsigned>(p), true);
  }
  addPoint(res.reached, init);
  std::vector<GeneratorSet> frontier;
  frontier.emplace_back(dims, init);

  bool all_exact = true;
  bool capped = false;
  bool hit = false;        // target output seen attainable
  bool hit_exact = false;  // ...while the run was still exact
  bool stopped = false;    // cancelled / timed out mid-iteration

  while (!frontier.empty() && !stopped) {
    ++res.iterations;
    double frontier_upper = 0.0;
    for (const GeneratorSet& m : frontier) frontier_upper += m.count();
    std::vector<GeneratorSet> next;

    for (const GeneratorSet& member : frontier) {
      if (opts.cancelled && opts.cancelled()) {
        res.status = RunStatus::kCancelled;
        res.message = "cancelled";
        stopped = true;
        break;
      }
      if (opts.budget.max_seconds > 0.0 &&
          timer.seconds() > opts.budget.max_seconds) {
        res.status = RunStatus::kTimeOut;
        std::ostringstream os;
        os << "time budget " << opts.budget.max_seconds << "s exceeded";
        res.message = os.str();
        stopped = true;
        break;
      }
      MemberImage mi = evalMember(n, topo, member, opts.target_output);
      res.peak_generators = std::max(res.peak_generators, mi.gens_used);
      res.lossy_products += mi.lossy;
      if (!mi.exact) all_exact = false;
      if (opts.target_output >= 0 && mi.out_can_be_1 && !hit) {
        hit = true;
        hit_exact = all_exact;
      }
      if (mi.img.rank() == 0) {
        if (!res.reached.containsPoint(mi.img.center())) {
          addPoint(res.reached, mi.img.center());
          next.push_back(std::move(mi.img));
        }
      } else {
        bool covered = false;
        for (const GeneratorSet& z : res.reached.zonos) {
          if (z.containsSet(mi.img)) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          // Prune members the new image subsumes — image chains of affine
          // circuits are nested, so this keeps the list at size 1 there.
          std::erase_if(res.reached.zonos, [&](const GeneratorSet& z) {
            return mi.img.containsSet(z);
          });
          res.reached.zonos.push_back(mi.img);
          next.push_back(std::move(mi.img));
        }
      }
    }
    if (stopped) break;

    // Merge pressure: too many members — fold them into their affine hull.
    // The hull's rank strictly exceeds any folded member's (they are
    // mutually non-contained), so at most `dims` inexact folds can ever
    // happen: the termination guarantee on lossy circuits.
    if (res.reached.zonos.size() > opts.merge_threshold ||
        res.reached.pointCount() > opts.max_points) {
      bool fold_exact = true;
      std::vector<GeneratorSet> members = std::move(res.reached.zonos);
      res.reached.zonos.clear();
      const bool fold_points =
          res.reached.pointCount() > opts.max_points || members.empty();
      GeneratorSet hull =
          members.empty() ? GeneratorSet(dims, init) : std::move(members[0]);
      for (std::size_t i = 1; i < members.size(); ++i) {
        bool e = false;
        hull = GeneratorSet::unionHull(hull, members[i], &e);
        fold_exact = fold_exact && e;
      }
      if (fold_points || !fold_exact) {
        // Absorb the explicit points too, so the single hull covers every
        // state the (replaced) frontier members represented.
        auto absorb = [&](const Bits& p) {
          bool e = false;
          hull = GeneratorSet::unionHull(hull, GeneratorSet(dims, p), &e);
          fold_exact = fold_exact && e;
        };
        for (std::uint64_t v : res.reached.points) absorb(unpack(v, dims));
        for (const Bits& p : res.reached.wide_points) absorb(p);
        res.reached.points.clear();
        res.reached.wide_points.clear();
      }
      res.reached.zonos.push_back(hull);
      if (!fold_exact) {
        // The hull gained states no member ever represented; they have not
        // been simulated, so the frontier restarts from the hull itself.
        all_exact = false;
        next.clear();
        next.push_back(std::move(hull));
        caveats.push_back("member overflow folded into an inexact hull");
      }
    }

    if (opts.on_iteration) {
      IterationStats it;
      it.iteration = res.iterations;
      it.frontier_states = frontier_upper;
      it.frontier_members = frontier.size();
      it.zonotopes = res.reached.zonos.size();
      it.points = res.reached.pointCount();
      it.generators = res.peak_generators;
      it.reached_upper = res.reached.upperBound();
      it.seconds = timer.seconds();
      opts.on_iteration(it);
    }

    if (hit) break;  // conclusive (exact hit) or hopeless (lossy hit)
    if (opts.max_iterations != 0 && res.iterations >= opts.max_iterations &&
        !next.empty()) {
      capped = true;
      break;
    }
    frontier = std::move(next);
  }

  res.zonotopes = res.reached.zonos.size();
  res.point_states = res.reached.pointCount();
  res.seconds = timer.seconds();

  // State count: exact when the members are provably disjoint (no member,
  // one member, or a full deduplicating enumeration under the cap).
  bool count_exact = false;
  if (res.reached.zonos.empty()) {
    res.states = static_cast<double>(res.reached.pointCount());
    count_exact = true;
  } else if (res.reached.zonos.size() == 1) {
    const GeneratorSet& z = res.reached.zonos.front();
    double extra = 0.0;
    for (std::uint64_t v : res.reached.points) {
      if (!z.contains(unpack(v, dims))) extra += 1.0;
    }
    for (const Bits& p : res.reached.wide_points) {
      if (!z.contains(p)) extra += 1.0;
    }
    res.states = z.count() + extra;
    count_exact = true;
  } else if (res.reached.upperBound() <=
             static_cast<double>(opts.enum_cap)) {
    if (dims <= 64) {
      std::unordered_set<std::uint64_t> all = res.reached.points;
      for (const GeneratorSet& z : res.reached.zonos) {
        z.forEachPoint([&](const Bits& p) { all.insert(packLow(p)); });
      }
      res.states = static_cast<double>(all.size());
    } else {
      std::set<Bits> all = res.reached.wide_points;
      for (const GeneratorSet& z : res.reached.zonos) {
        z.forEachPoint([&](const Bits& p) { all.insert(p); });
      }
      res.states = static_cast<double>(all.size());
    }
    count_exact = true;
  } else {
    res.states = res.reached.upperBound();
    caveats.push_back("state count is an upper bound (enumeration cap)");
  }
  res.exact = all_exact && count_exact;

  if (res.status == RunStatus::kCancelled ||
      res.status == RunStatus::kTimeOut) {
    res.exact = false;
    return res;
  }

  if (res.lossy_products != 0) {
    std::ostringstream os;
    os << res.lossy_products << " lossy AND cross term(s) over-approximated";
    caveats.insert(caveats.begin(), os.str());
  }
  if (capped) caveats.push_back("stopped at the iteration cap");
  const auto joined = [&caveats] {
    std::string s;
    for (const std::string& c : caveats) {
      if (!s.empty()) s += "; ";
      s += c;
    }
    return s;
  };

  if (opts.target_output >= 0) {
    if (hit && hit_exact) {
      // The exact prefix of the run witnessed a state+input asserting the
      // output: conclusively reachable.
      res.status = RunStatus::kDone;
      res.target_reachable = true;
    } else if (!hit && !capped) {
      // Fixpoint of a sound over-approximation never asserts the output:
      // conclusively unreachable — the pre-filter verdict, valid even when
      // the state count itself is approximate.
      res.status = RunStatus::kDone;
      res.target_reachable = false;
      res.message = joined();
    } else {
      res.status = RunStatus::kInconclusive;
      res.message = hit ? "target asserted only in the over-approximation"
                        : joined();
    }
    return res;
  }

  if (res.exact) {
    res.status = RunStatus::kDone;
    res.message = capped ? joined() : "";
  } else {
    res.status = RunStatus::kInconclusive;
    res.message = joined();
  }
  return res;
}

}  // namespace bfvr::lz
