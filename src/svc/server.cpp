#include "svc/server.hpp"

#include <sys/socket.h>

#include <cstdio>
#include <fstream>

#include "run/manifest.hpp"
#include "svc/protocol.hpp"

namespace bfvr::svc {

namespace {

/// Read a spool checkpoint file whole. Empty on any failure: an eviction
/// that raced ahead of the first snapshot simply restarts from scratch.
std::shared_ptr<const std::vector<std::uint8_t>> slurpSpool(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.empty()) return nullptr;
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

}  // namespace

Server::Server(const Options& opts)
    : opts_(opts),
      endpoint_(Endpoint::parse(opts.endpoint)),
      listener_(listenOn(endpoint_)),
      pool_(opts.workers, opts.warm_managers),
      queue_(opts.tenants) {
  for (const TenantConfig& t : opts.tenants) {
    obs::SvcTenantStats s;
    s.name = t.name;
    s.weight = t.weight;
    tenant_stats_.push_back(std::move(s));
  }
}

Server::~Server() {
  requestShutdown(false);
  waitStopped();
}

void Server::start() {
  accept_thread_ = std::thread([this] { acceptLoop(); });
}

void Server::requestShutdown(bool drain) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_requested_) return;
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
    draining_ = true;
    if (!drain) {
      // Immediate: cancel every running job and drop the queue. Dropped
      // jobs' owners get no JobDone — their sessions are about to close.
      for (auto& [id, r] : running_) r.cancel->cancel();
      for (QueuedJob& dropped : queue_.dropAll()) {
        statsFor(dropped.tenant).cancelled += 1;
      }
    } else {
      pump();  // capped tenants may have runnable work and idle workers
    }
  }
  cv_.notify_all();
}

void Server::waitStopped() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) return;
    cv_.wait(lock, [this] { return shutdown_requested_; });
    // Drain: wait until nothing is queued and no worker is busy.
    cv_.wait(lock, [this] {
      return outstanding_ == 0 && queue_.queuedCount() == 0;
    });
    if (!opts_.report_path.empty()) {
      const std::string json = buildReportLocked();
      std::ofstream out(opts_.report_path);
      if (out) {
        out << json << "\n";
        std::printf("wrote %s\n", opts_.report_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", opts_.report_path.c_str());
      }
    }
    stopped_ = true;
    // Wake the accept thread out of accept(2) and every session reader out
    // of recv(2).
    ::shutdown(listener_.get(), SHUT_RDWR);
    for (auto& [id, s] : sessions_) {
      s->alive.store(false, std::memory_order_relaxed);
      ::shutdown(s->fd.get(), SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread spawns session threads; with it joined the vector is
  // final.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) t.join();
  listener_.close();
  if (endpoint_.is_unix) std::remove(endpoint_.path.c_str());
}

void Server::acceptLoop() {
  for (;;) {
    Fd conn = acceptOn(listener_);
    if (!conn.valid()) return;  // listener shut down: orderly exit
    auto s = std::make_shared<Session>();
    s->fd = std::move(conn);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      s->id = next_session_++;
      sessions_accepted_ += 1;
      sessions_[s->id] = s;
      session_threads_.emplace_back([this, s] { sessionLoop(s); });
    }
  }
}

void Server::sessionLoop(std::shared_ptr<Session> s) {
  // First frame must be Hello; everything else on this connection is a
  // protocol error reported back (best-effort) before closing.
  try {
    std::optional<Frame> first = recvFrame(s->fd);
    if (!first.has_value()) throw Error("session: closed before hello");
    const Hello hello = Hello::decode(*first);
    if (hello.proto != kWireVersion) {
      throw Error("session: client protocol version " +
                  std::to_string(hello.proto) + " (server speaks " +
                  std::to_string(kWireVersion) + ")");
    }
    if (hello.tenant.empty()) throw Error("session: empty tenant name");
    s->tenant = hello.tenant;
    HelloAck ack;
    ack.session = s->id;
    ack.server = opts_.name;
    sendTo(s, ack.encode());
    while (s->alive.load(std::memory_order_relaxed)) {
      std::optional<Frame> f = recvFrame(s->fd);
      if (!f.has_value()) break;  // orderly close without Bye: fine
      if (!handleFrame(s, *f)) break;
    }
  } catch (const Error& e) {
    // Malformed traffic (bad magic/CRC/truncation) or version skew: tell
    // the client why, if the pipe still works, then drop the session. The
    // server itself never goes down with a session.
    WireError err;
    err.message = e.what();
    sendTo(s, err.encode());
  }
  // Session teardown: orphan its queued jobs and cancel its running ones —
  // results with no one to read them are wasted worker time.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s->alive.store(false, std::memory_order_relaxed);
    for (QueuedJob& dropped : queue_.dropSession(s->id)) {
      statsFor(dropped.tenant).cancelled += 1;
    }
    for (auto& [id, r] : running_) {
      if (r.job.session == s->id) r.cancel->cancel();
    }
    sessions_.erase(s->id);
    pump();  // dropping queued jobs may unblock a tenant's queue cap
  }
  cv_.notify_all();
}

bool Server::handleFrame(const std::shared_ptr<Session>& s, const Frame& f) {
  switch (f.type) {
    case FrameType::kSubmit:
      handleSubmit(s, f);
      return true;
    case FrameType::kCancel: {
      const Cancel c = Cancel::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(c.job); it != running_.end()) {
        it->second.cancel->cancel();
      } else if (std::optional<QueuedJob> dropped = queue_.dropJob(c.job);
                 dropped.has_value()) {
        statsFor(dropped->tenant).cancelled += 1;
        JobDone done;
        done.job = dropped->id;
        done.status = to_string(RunStatus::kCancelled);
        done.message = "cancelled while queued";
        done.evictions = dropped->evictions;
        sendTo(s, done.encode());
        pump();
      }
      return true;
    }
    case FrameType::kEvict: {
      const Evict e = Evict::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(e.job); it != running_.end()) {
        it->second.evict_requested->store(true, std::memory_order_relaxed);
        it->second.cancel->cancel();
      }
      return true;
    }
    case FrameType::kStats: {
      StatsReply reply;
      reply.json = statsJson();
      sendTo(s, reply.encode());
      return true;
    }
    case FrameType::kShutdown: {
      const Shutdown sd = Shutdown::decode(f);
      requestShutdown(sd.drain);
      return true;
    }
    case FrameType::kBye:
      return false;
    default:
      throw Error(std::string("session: unexpected ") + to_string(f.type) +
                  " frame");
  }
}

void Server::handleSubmit(const std::shared_ptr<Session>& s, const Frame& f) {
  const Submit sub = Submit::decode(f);
  Rejected rej;
  rej.tag = sub.tag;
  QueuedJob job;
  try {
    // One submission = one manifest line; portfolio entries are a batch
    // feature and not accepted over the wire.
    std::vector<run::ManifestEntry> entries =
        run::parseManifestString(sub.line);
    if (entries.size() != 1) {
      throw std::invalid_argument("expected exactly one job line");
    }
    if (!entries[0].portfolio.empty()) {
      throw std::invalid_argument("portfolio= is not accepted over the wire");
    }
    job.spec = std::move(entries[0].spec);
  } catch (const std::exception& e) {
    rej.reason = e.what();
    const std::lock_guard<std::mutex> lock(mu_);
    statsFor(s->tenant).submitted += 1;
    statsFor(s->tenant).rejected += 1;
    sendTo(s, rej.encode());
    return;
  }
  job.session = s->id;
  job.tenant = s->tenant;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    obs::SvcTenantStats& ts = statsFor(s->tenant);
    ts.submitted += 1;
    if (draining_) {
      ts.rejected += 1;
      rej.reason = "server is draining";
      sendTo(s, rej.encode());
      return;
    }
    job.id = next_job_++;
    // Make the job evictable: wire up the spool checkpoint unless the
    // submission already checkpoints somewhere of its own.
    if (job.spec.opts.checkpoint_path.empty() && opts_.checkpoint_every > 0) {
      job.spec.opts.checkpoint_every = opts_.checkpoint_every;
      job.spec.opts.checkpoint_path = spoolPathFor(job.id);
    }
    const std::uint64_t id = job.id;
    if (std::optional<std::string> reason = queue_.admit(std::move(job));
        reason.has_value()) {
      ts.rejected += 1;
      rej.reason = *reason;
      sendTo(s, rej.encode());
      return;
    }
    Accepted acc;
    acc.tag = sub.tag;
    acc.job = id;
    sendTo(s, acc.encode());
    pump();
  }
}

void Server::pump() {
  while (outstanding_ < pool_.workers()) {
    std::optional<QueuedJob> picked = queue_.pick();
    if (!picked.has_value()) return;
    const std::uint64_t id = picked->id;
    Running r;
    r.job = std::move(*picked);
    r.cancel = std::make_shared<run::CancelToken>();
    r.evict_requested = std::make_shared<std::atomic<bool>>(false);
    run::JobSpec spec = r.job.spec;  // the Running keeps the pristine copy
    const unsigned avoid = r.job.avoid_worker;
    const bool resumed = spec.resume_image != nullptr;
    // Stream iteration records to the owning session. The hook runs on the
    // worker thread; it takes only the session write mutex (inner to mu_),
    // and swallows everything — a dead client must not disturb the engine.
    if (opts_.stream_iterations) {
      const std::uint64_t session_id = r.job.session;
      spec.opts.on_iteration = [this, id,
                                session_id](const obs::IterationRecord& it) {
        // Worker thread: take mu_ only to look the session up (lock order
        // mu_ -> write_mu, same as everywhere else), send outside it.
        std::shared_ptr<Session> owner;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          owner = sessionById(session_id);
        }
        if (owner == nullptr) return;
        IterationUpdate u;
        u.job = id;
        u.iteration = it.iteration;
        u.frontier_nodes = it.frontier_nodes;
        u.live_nodes = it.live_nodes;
        u.peak_nodes = it.peak_nodes;
        u.frontier_states = it.frontier_states;
        sendTo(owner, u.encode());
      };
    }
    const std::uint64_t session_id = r.job.session;
    outstanding_ += 1;
    dispatches_ += 1;
    auto cancel = r.cancel;
    running_[id] = std::move(r);
    pool_.submit(
        std::move(spec), cancel,
        [this, id](const run::JobResult& res) { onJobDone(id, res); }, avoid);
    if (std::shared_ptr<Session> owner = sessionById(session_id);
        owner != nullptr) {
      JobStarted started;
      started.job = id;
      started.resumed = resumed;
      sendTo(owner, started.encode());
    }
  }
}

void Server::onJobDone(std::uint64_t id, const run::JobResult& r) {
  // Runs on the worker thread, right before the job's future is fulfilled.
  std::shared_ptr<Session> owner;
  Frame out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = running_.find(id);
    if (it == running_.end()) return;  // cannot happen; defensive
    Running rec = std::move(it->second);
    running_.erase(it);
    queue_.release(rec.job.tenant);
    outstanding_ -= 1;
    owner = sessionById(rec.job.session);
    const bool evicting =
        rec.evict_requested->load(std::memory_order_relaxed) &&
        r.status == RunStatus::kCancelled && !draining_;
    if (evicting) {
      // Lift the latest spool snapshot into memory and requeue at the
      // front, steered away from the worker that ran the job. No snapshot
      // yet (evicted before the first checkpoint) still migrates — the
      // resume just starts from scratch.
      QueuedJob again = std::move(rec.job);
      again.spec.resume_image = slurpSpool(again.spec.opts.checkpoint_path);
      again.avoid_worker = r.worker;
      again.evictions += 1;
      statsFor(again.tenant).evictions += 1;
      if (again.spec.resume_image != nullptr) {
        statsFor(again.tenant).resumes += 1;
      }
      JobEvicted ev;
      ev.job = id;
      ev.iteration = r.reach.iterations;
      ev.worker = r.worker;
      out = ev.encode();
      queue_.requeueFront(std::move(again));
    } else {
      obs::SvcTenantStats& ts = statsFor(rec.job.tenant);
      switch (r.status) {
        case RunStatus::kDone:
          ts.done += 1;
          break;
        case RunStatus::kTimeOut:
          ts.timeout += 1;
          break;
        case RunStatus::kMemOut:
          ts.memout += 1;
          break;
        case RunStatus::kCancelled:
          ts.cancelled += 1;
          break;
        case RunStatus::kError:
          ts.error += 1;
          break;
      }
      ts.queue_seconds += r.queue_seconds;
      ts.exec_seconds += r.seconds;
      // The job is finished for good: its spool snapshot is garbage now.
      if (!rec.job.spec.opts.checkpoint_path.empty() &&
          rec.job.spec.opts.checkpoint_path.rfind(opts_.spool_dir, 0) == 0) {
        std::remove(rec.job.spec.opts.checkpoint_path.c_str());
      }
      JobDone done;
      done.job = id;
      done.status = to_string(r.status);
      done.message = r.message;
      done.seconds = r.seconds;
      done.queue_seconds = r.queue_seconds;
      done.worker = r.worker;
      done.iterations = r.reach.iterations;
      done.states = r.reach.states;
      done.peak_live_nodes = r.reach.peak_live_nodes;
      done.attempts = static_cast<std::uint32_t>(r.attempts.size());
      done.evictions = rec.job.evictions;
      done.resumed = rec.job.spec.resume_image != nullptr ||
                     (!r.attempts.empty() && r.attempts.back().resumed);
      out = done.encode();
    }
    if (owner != nullptr) sendTo(owner, out);
    pump();
  }
  cv_.notify_all();
}

void Server::sendTo(const std::shared_ptr<Session>& s, const Frame& f) {
  const std::lock_guard<std::mutex> lock(s->write_mu);
  if (!s->alive.load(std::memory_order_relaxed)) return;
  try {
    sendFrame(s->fd, f);
  } catch (const Error&) {
    // Peer is gone; its reader thread will notice and tear the session
    // down. Until then, drop further frames silently.
    s->alive.store(false, std::memory_order_relaxed);
  }
}

std::shared_ptr<Server::Session> Server::sessionById(std::uint64_t id) {
  // Callers either hold mu_ already or race benignly with teardown (the
  // shared_ptr keeps the session alive; `alive` gates actual sends).
  auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

obs::SvcTenantStats& Server::statsFor(const std::string& tenant) {
  for (obs::SvcTenantStats& t : tenant_stats_) {
    if (t.name == tenant) return t;
  }
  obs::SvcTenantStats s;
  s.name = tenant;
  if (const TenantConfig* cfg = queue_.tenantConfig(tenant)) {
    s.weight = cfg->weight;
  }
  tenant_stats_.push_back(std::move(s));
  return tenant_stats_.back();
}

std::string Server::spoolPathFor(std::uint64_t job_id) const {
  return opts_.spool_dir + "/svc_job_" + std::to_string(job_id) + ".ckpt";
}

std::string Server::buildReportLocked() const {
  const run::ManagerCache::Stats warm = pool_.warmStats();
  obs::SvcServerStats server;
  server.name = opts_.name;
  server.endpoint = endpoint_.describe();
  server.workers = pool_.workers();
  server.seconds = uptime_.seconds();
  server.sessions = sessions_accepted_;
  server.dispatches = dispatches_;
  server.warm_hits = warm.hits;
  server.warm_misses = warm.misses;
  server.resets_failed = warm.resets_failed;
  server.leaked_nodes = warm.leaked_nodes;
  return obs::svcReportJson(server, tenant_stats_);
}

std::string Server::statsJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buildReportLocked();
}

std::vector<std::string> Server::dispatchLog() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.dispatchLog();
}

}  // namespace bfvr::svc
