// Synchronous client of the reachability service: one connection, one
// tenant, blocking sends and a typed event stream for everything the
// server pushes back. The bfv_client CLI and the service tests are both
// built on this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace bfvr::svc {

/// One server-pushed event, as a tagged union over the protocol's
/// server->client messages.
using Event = std::variant<Accepted, Rejected, JobStarted, IterationUpdate,
                           JobEvicted, JobDone, StatsReply, WireError>;

class Client {
 public:
  /// Connect and perform the hello handshake. Throws svc::Error when the
  /// endpoint is unreachable or the server rejects the handshake.
  Client(const std::string& endpoint_spec, const std::string& tenant);

  std::uint64_t session() const noexcept { return session_; }
  const std::string& serverName() const noexcept { return server_; }

  /// Submit one job (manifest-line grammar). Returns the client-side tag
  /// echoed by the matching Accepted/Rejected event. `idem` is the
  /// optional idempotency key (wire v3): a journaling server answers a
  /// duplicate key with the original job instead of running it again, so
  /// a resubmit after a reconnect is safe.
  std::uint64_t submit(const std::string& manifest_line,
                       const std::string& idem = "");
  void cancel(std::uint64_t job);
  void evict(std::uint64_t job);
  /// Ask for the live stats report; `flags` selects the optional sections
  /// (StatsQuery::kInclude*, default metrics + spans). The StatsReply
  /// arrives as an event.
  void queryStats(std::uint32_t flags = StatsQuery::kIncludeMetrics |
                                        StatsQuery::kIncludeSpans);
  void shutdownServer(bool drain = true);
  /// Orderly goodbye; the connection is unusable afterwards.
  void bye();

  /// Block for the next server event. nullopt on orderly connection close;
  /// throws svc::Error on a broken or corrupted stream.
  std::optional<Event> next();

  /// Deadline-aware next(): additionally throws svc::Timeout when no
  /// event starts arriving within `timeout_seconds` (<= 0 blocks
  /// forever) — the engine of bfv_client --deadline.
  std::optional<Event> next(double timeout_seconds);

  /// Convenience: pump events until the Accepted/Rejected for `tag`
  /// arrives; intervening events are discarded. Returns the job id, or
  /// nullopt (with the reason in *reject_reason) when rejected.
  std::optional<std::uint64_t> awaitAdmission(
      std::uint64_t tag, std::string* reject_reason = nullptr);

  /// Convenience: pump events until JobDone for `job`; other jobs' events
  /// are discarded. Throws svc::Error if the stream ends first.
  JobDone awaitDone(std::uint64_t job);

 private:
  Fd fd_;
  std::uint64_t session_ = 0;
  std::uint64_t next_tag_ = 1;
  std::string server_;
};

}  // namespace bfvr::svc
