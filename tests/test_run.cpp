// The job runner (src/run): cooperative interruption at the manager's poll
// points (apply, GC, sifting) leaving the manager usable, job execution
// with deadlines / cancellation / budgets folded into RunStatus, the
// worker pool, portfolio races, and the manifest grammar.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "run/manifest.hpp"
#include "run/run.hpp"
#include "support/brute.hpp"
#include "sym/space.hpp"

namespace bfvr::run {
namespace {

using bdd::Bdd;
using bdd::Interrupted;
using bdd::Manager;
using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

/// Builds random functions until the manager's allocation-stride poll
/// fires (or the build budget runs out, which fails the test).
void buildUntilInterrupt(Manager& m) {
  Rng rng(17);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  std::vector<Bdd> keep;
  EXPECT_THROW(
      {
        for (int i = 0; i < 500; ++i) {
          keep.push_back(bddFromTruth(m, vars, randomTruth(rng, 6)));
        }
      },
      Interrupted);
}

TEST(RunInterrupt, DuringApplyLeavesManagerUsable) {
  Manager m(8);
  bool armed = true;
  m.setInterruptCheck([&armed] {
    if (armed) throw Interrupted(Interrupted::Reason::kCancelled);
  });
  buildUntilInterrupt(m);
  // Disarmed, the same manager keeps working: builds, evaluation, GC.
  armed = false;
  Rng rng(4);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  const std::uint64_t tt = randomTruth(rng, 6);
  Bdd f = bddFromTruth(m, vars, tt);
  EXPECT_EQ(truthOf(m, f, vars), tt);
  m.gc();
  EXPECT_EQ(truthOf(m, f, vars), tt);
}

TEST(RunInterrupt, DuringGcLeavesManagerUsable) {
  Manager m(8);
  Bdd keep = (m.var(0) & m.var(1)) | m.var(2);
  bool armed = true;
  m.setInterruptCheck([&armed] {
    if (armed) throw Interrupted(Interrupted::Reason::kDeadline);
  });
  // gc() polls on entry, before touching any node.
  EXPECT_THROW(m.gc(), Interrupted);
  EXPECT_THROW(m.maybeGc(), Interrupted);
  armed = false;
  m.gc();
  EXPECT_EQ(keep, (m.var(0) & m.var(1)) | m.var(2));
}

TEST(RunInterrupt, DuringSiftLeavesManagerUsable) {
  Manager m(12);
  // Badly ordered and-or: sifting has many block swaps to do, so an
  // interrupt lands mid-pass.
  Bdd f = m.zero();
  for (unsigned i = 0; i < 6; ++i) f |= m.var(i) & m.var(i + 6);
  int polls_left = 3;
  m.setInterruptCheck([&polls_left] {
    if (--polls_left < 0) throw Interrupted(Interrupted::Reason::kCancelled);
  });
  EXPECT_THROW(m.reorder(bdd::ReorderMethod::kSift), Interrupted);
  // The pass stopped between two complete adjacent-level swaps: the order
  // is consistent and every handle still denotes its function.
  m.setInterruptCheck({});
  for (std::uint32_t a = 0; a < (1U << 12); ++a) {
    std::vector<bool> values(12);
    bool expect = false;
    for (unsigned i = 0; i < 12; ++i) values[i] = ((a >> i) & 1U) != 0;
    for (unsigned i = 0; i < 6; ++i) expect |= values[i] && values[i + 6];
    ASSERT_EQ(m.eval(f, values), expect) << "assignment " << a;
  }
  // And a fresh full pass still converges to the small form.
  m.reorder(bdd::ReorderMethod::kSift);
  EXPECT_LT(f.nodeCount(), 50U);
}

TEST(RunInterrupt, PollsSkippedWhileReordering) {
  // The allocation-stride poll is suppressed during a swap (nodes are
  // mid-rewrite); only the between-swaps poll point may fire. A check
  // that only counts must therefore see far fewer calls than allocations.
  Manager m(12);
  Bdd f = m.zero();
  for (unsigned i = 0; i < 6; ++i) f |= m.var(i) & m.var(i + 6);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  int calls = 0;
  m.setInterruptCheck([&calls] { ++calls; });
  m.reorder(bdd::ReorderMethod::kSift);
  EXPECT_GT(calls, 0);  // the between-swaps point did poll
  EXPECT_LT(f.nodeCount(), 50U);  // and a non-throwing check is harmless
}

TEST(RunJob, CompletesSmallCircuit) {
  JobSpec spec;
  spec.circuit = "gen:johnson:8";
  spec.engine = EngineKind::kBfv;
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_EQ(r.reach.states, 16.0);
  EXPECT_EQ(r.reach.iterations, 16U);
  // The reached-set handles were dropped with the job's manager.
  EXPECT_TRUE(r.reach.reached_chi.isNull());
}

TEST(RunJob, DeadlineTimesOut) {
  JobSpec spec;
  spec.circuit = "gen:counter:26:67108864";  // ~67M iterations: unreachable
  spec.engine = EngineKind::kTr;
  spec.deadline_seconds = 0.2;
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kTimeOut);
  EXPECT_LT(r.seconds, 30.0);  // fired near the deadline, not at the end
}

TEST(RunJob, PreCancelledTokenCancels) {
  CancelToken token;
  token.cancel();
  JobSpec spec;
  spec.circuit = "gen:counter:20:1048576";
  spec.engine = EngineKind::kTr;
  const JobResult r = executeJob(spec, &token);
  EXPECT_EQ(r.status, RunStatus::kCancelled);
}

TEST(RunJob, BadSpecsFoldToErrorStatus) {
  JobSpec spec;
  spec.circuit = "gen:nosuchkind:3";
  JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kError);
  EXPECT_FALSE(r.message.empty());

  spec.circuit = "/nonexistent/path.bench";
  r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kError);
  EXPECT_FALSE(r.message.empty());
}

TEST(RunJob, TinyManagerBudgetIsMemOut) {
  JobSpec spec;
  spec.circuit = "gen:crc:8";
  spec.engine = EngineKind::kCbm;
  spec.mgr.max_nodes = 64;  // setup itself blows this
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kMemOut);
  // The failure reason is reported, not swallowed: budget and node count.
  EXPECT_FALSE(r.message.empty());
  EXPECT_NE(r.message.find("nodes"), std::string::npos) << r.message;
  ASSERT_EQ(r.attempts.size(), 1U);
  EXPECT_EQ(r.attempts[0].status, RunStatus::kMemOut);
  EXPECT_EQ(r.retriesUsed(), 0U);
}

TEST(RunJob, TimeOutCarriesAMessage) {
  JobSpec spec;
  spec.circuit = "gen:counter:26:67108864";
  spec.engine = EngineKind::kTr;
  spec.deadline_seconds = 0.2;
  const JobResult r = executeJob(spec);
  ASSERT_EQ(r.status, RunStatus::kTimeOut);
  EXPECT_FALSE(r.message.empty());
}

TEST(RunJob, OpCountsMatchDirectRun) {
  JobSpec spec;
  spec.circuit = "gen:johnson:8";
  spec.engine = EngineKind::kBfv;
  const JobResult viaJob = executeJob(spec);
  ASSERT_EQ(viaJob.status, RunStatus::kDone);

  const circuit::Netlist n = resolveCircuit(spec.circuit);
  Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, spec.order));
  reach::ReachOptions opts = spec.opts;
  opts.backend = reach::SetBackend::kBfv;
  const reach::ReachResult direct = reach::reachBfv(s, opts);

  // The runner adds scheduling and interrupt plumbing but must not perturb
  // the computation: identical op counters, iteration and state counts.
  EXPECT_EQ(viaJob.reach.iterations, direct.iterations);
  EXPECT_EQ(viaJob.reach.states, direct.states);
  EXPECT_EQ(viaJob.reach.peak_live_nodes, direct.peak_live_nodes);
  EXPECT_EQ(viaJob.reach.ops.top_ops, direct.ops.top_ops);
  EXPECT_EQ(viaJob.reach.ops.recursive_steps, direct.ops.recursive_steps);
  EXPECT_EQ(viaJob.reach.ops.cache_lookups, direct.ops.cache_lookups);
  EXPECT_EQ(viaJob.reach.ops.cache_hits, direct.ops.cache_hits);
  EXPECT_EQ(viaJob.reach.ops.nodes_created, direct.ops.nodes_created);
}

TEST(RunPool, RunsJobsAcrossWorkers) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.workers(), 2U);
  const char* circuits[] = {"gen:johnson:8", "gen:gray:6", "gen:lfsr:8",
                            "gen:twinshift:6"};
  std::vector<std::future<JobResult>> futs;
  for (const char* c : circuits) {
    JobSpec spec;
    spec.circuit = c;
    spec.engine = EngineKind::kBfv;
    futs.push_back(pool.submit(std::move(spec)));
  }
  for (auto& f : futs) {
    const JobResult r = f.get();
    EXPECT_EQ(r.status, RunStatus::kDone) << r.message;
    EXPECT_LT(r.worker, 2U);
    EXPECT_GE(r.queue_seconds, 0.0);
  }
}

TEST(RunPool, CancelStopsRunningJobQuickly) {
  WorkerPool pool(1);
  JobSpec spec;
  spec.circuit = "gen:counter:26:67108864";  // would run ~forever
  spec.engine = EngineKind::kTr;
  auto token = std::make_shared<CancelToken>();
  std::future<JobResult> fut = pool.submit(spec, token);
  // Let the job get well into its fixpoint loop, then pull the plug. The
  // engines poll at least once per iteration (the maybeGc safe point), so
  // the latency bound is one iteration, far below the seconds granted.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  token->cancel();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  const JobResult r = fut.get();
  EXPECT_EQ(r.status, RunStatus::kCancelled);
}

TEST(RunPortfolio, WinnerCancelsLosers) {
  WorkerPool pool(3);
  JobSpec base;
  base.name = "cnt13";
  base.circuit = "gen:counter:13:8192";  // 8192 iterations: ~a second, not ms
  const EngineKind engines[] = {EngineKind::kTr, EngineKind::kBfv,
                                EngineKind::kCbm};
  const PortfolioResult race = runPortfolio(pool, base, engines);
  ASSERT_EQ(race.jobs.size(), 3U);
  ASSERT_NE(race.winner, -1);
  EXPECT_EQ(race.jobs[race.winner].status, RunStatus::kDone);
  EXPECT_EQ(race.jobs[race.winner].reach.states, 8192.0);
  // Cancellation is prompt: a cancelled loser stopped well short of the
  // 32768 iterations it would have needed to finish on its own.
  for (int i = 0; i < 3; ++i) {
    if (i == race.winner) continue;
    EXPECT_TRUE(race.jobs[i].status == RunStatus::kCancelled ||
                race.jobs[i].status == RunStatus::kDone);
    if (race.jobs[i].status == RunStatus::kCancelled) {
      EXPECT_LT(race.jobs[i].reach.iterations, 8192U);
    }
  }
}

TEST(RunPortfolio, NoWinnerWhenAllTimeOut) {
  WorkerPool pool(2);
  JobSpec base;
  base.circuit = "gen:counter:26:67108864";
  base.deadline_seconds = 0.2;
  const EngineKind engines[] = {EngineKind::kTr, EngineKind::kBfv};
  const PortfolioResult race = runPortfolio(pool, base, engines);
  ASSERT_EQ(race.jobs.size(), 2U);
  EXPECT_EQ(race.winner, -1);
  for (const JobResult& r : race.jobs) {
    EXPECT_EQ(r.status, RunStatus::kTimeOut);
  }
}

TEST(RunManifest, ParsesKeysAndPortfolio) {
  const std::string text =
      "# a comment line\n"
      "circuit=data/a.bench name=a engine=cbm order=random:7 deadline=1.5\n"
      "\n"
      "circuit=gen:johnson:8 portfolio=tr,bfv trace=1 nodes=5000 "
      "max-nodes=100000  # trailing comment\n";
  const std::vector<ManifestEntry> entries = parseManifestString(text);
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].spec.name, "a");
  EXPECT_EQ(entries[0].spec.circuit, "data/a.bench");
  EXPECT_EQ(entries[0].spec.engine, EngineKind::kCbm);
  EXPECT_EQ(entries[0].spec.order.kind, circuit::OrderKind::kRandom);
  EXPECT_EQ(entries[0].spec.order.seed, 7U);
  EXPECT_EQ(entries[0].spec.deadline_seconds, 1.5);
  EXPECT_TRUE(entries[0].portfolio.empty());
  EXPECT_EQ(entries[1].portfolio,
            (std::vector<EngineKind>{EngineKind::kTr, EngineKind::kBfv}));
  EXPECT_TRUE(entries[1].spec.opts.trace);
  EXPECT_EQ(entries[1].spec.opts.budget.max_live_nodes, 5000U);
  EXPECT_EQ(entries[1].spec.mgr.max_nodes, 100000U);
}

TEST(RunManifest, ThreadsKeyConfiguresTheKernel) {
  const std::vector<ManifestEntry> entries = parseManifestString(
      "circuit=a.bench\ncircuit=b.bench threads=4\n");
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].spec.mgr.threads, 1U);  // default: sequential kernel
  EXPECT_EQ(entries[1].spec.mgr.threads, 4U);
  // Zero and junk are rejected with the key and line named.
  try {
    parseManifestString("circuit=a.bench\ncircuit=b.bench threads=0\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("key 'threads'"), std::string::npos) << msg;
  }
  EXPECT_THROW(parseManifestString("circuit=a.bench threads=many\n"),
               std::runtime_error);
}

TEST(RunManifest, ErrorsCarryLineNumbers) {
  EXPECT_THROW(parseManifestString("circuit=a.bench\nbogus\n"),
               std::runtime_error);
  EXPECT_THROW(parseManifestString("name=x engine=bfv\n"),  // no circuit=
               std::runtime_error);
  EXPECT_THROW(parseManifestString("circuit=a.bench engine=warp\n"),
               std::runtime_error);
  try {
    parseManifestString("circuit=ok.bench\n\ncircuit=b.bench order=bad\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(RunManifest, ErrorsNameTheOffendingKey) {
  // A bad value must point at the key AND the line, so a 500-line manifest
  // (or a service Rejected frame) is debuggable from the message alone.
  try {
    parseManifestString("circuit=a.bench\ncircuit=b.bench nodes=abc\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("key 'nodes'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'abc'"), std::string::npos) << msg;
  }
  try {
    parseManifestString("circuit=a.bench deadline=fast\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("key 'deadline'"), std::string::npos) << msg;
  }
  try {
    parseManifestString("circuit=a.bench frobnicate=1\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'frobnicate'"), std::string::npos) << msg;
  }
}

TEST(RunManifest, DuplicateKeysAreRejectedNamingBothOccurrences) {
  // Silent last-wins turns `deadline=30 ... deadline=5` into a hidden bug
  // in a long sweep row; the parser must name the line and both values.
  try {
    parseManifestString(
        "circuit=a.bench\n"
        "circuit=b.bench deadline=30 engine=bfv deadline=5\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate key 'deadline'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deadline=30"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deadline=5"), std::string::npos) << msg;
  }
  // Even an identical repeated value is a duplicate (likely a copy-paste
  // slip worth surfacing).
  EXPECT_THROW(parseManifestString("circuit=a.bench name=x name=x\n"),
               std::runtime_error);
  // The duplicate check is per line: the same key on different lines is
  // of course fine, and distinct keys on one line still parse.
  const std::vector<ManifestEntry> entries = parseManifestString(
      "circuit=a.bench deadline=1\ncircuit=b.bench deadline=2\n");
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].spec.deadline_seconds, 1.0);
  EXPECT_EQ(entries[1].spec.deadline_seconds, 2.0);
}

TEST(RunManifest, ParsesShippedSmokeManifest) {
  const std::vector<ManifestEntry> entries =
      parseManifestFile(BFVR_DATA_DIR "/ci_smoke.manifest");
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].spec.name, "smoke-johnson8");
  EXPECT_EQ(entries[1].spec.engine, EngineKind::kTr);
  EXPECT_EQ(entries[1].spec.deadline_seconds, 0.5);
}

// ---------------------------------------------------------------------------
// Retry escalation, fault plans and checkpoint-resuming retries.
// ---------------------------------------------------------------------------

/// A budget that a plain run (no GC pressure relief, garbage accumulating
/// in the table) blows, but a governed/escalated run fits: 1.5x the
/// reference run's live-node peak.
std::size_t tightBudgetFor(const char* circuit) {
  JobSpec probe;
  probe.circuit = circuit;
  probe.engine = EngineKind::kBfv;
  const JobResult ref = executeJob(probe);
  EXPECT_EQ(ref.status, RunStatus::kDone);
  return ref.reach.peak_live_nodes * 3 / 2;
}

TEST(RunRetry, EscalationClimbsTheLadderToSuccess) {
  const char* circuit = "gen:counter:8:200";
  JobSpec spec;
  spec.circuit = circuit;
  spec.engine = EngineKind::kBfv;
  spec.mgr.max_nodes = tightBudgetFor(circuit);

  // Sanity: without retries, the tight budget is fatal.
  const JobResult plain = executeJob(spec);
  ASSERT_EQ(plain.status, RunStatus::kMemOut) << plain.message;

  spec.retry.max_attempts = 6;
  const JobResult r = executeJob(spec);
  ASSERT_EQ(r.status, RunStatus::kDone) << r.message;
  EXPECT_EQ(r.reach.states, 200.0);
  EXPECT_TRUE(r.message.empty());
  ASSERT_GE(r.attempts.size(), 2U);
  EXPECT_GE(r.retriesUsed(), 1U);
  // Escalation steps are applied cumulatively, in the documented order,
  // and every attempt but the last ended out-of-nodes.
  const char* expected[] = {"", "auto-reorder+ladder", "cache-shrink",
                            "raise-budget", "raise-budget", "raise-budget"};
  for (std::size_t i = 0; i < r.attempts.size(); ++i) {
    EXPECT_EQ(r.attempts[i].escalation, expected[i]) << "attempt " << i;
    EXPECT_EQ(r.attempts[i].status, i + 1 == r.attempts.size()
                                        ? RunStatus::kDone
                                        : RunStatus::kMemOut)
        << "attempt " << i;
  }
}

TEST(RunRetry, ResumesFromTheLatestCheckpoint) {
  const char* circuit = "gen:counter:8:200";
  const std::string path = ::testing::TempDir() + "bfvr_retry_resume.bin";
  std::remove(path.c_str());
  JobSpec spec;
  spec.circuit = circuit;
  spec.engine = EngineKind::kBfv;
  spec.mgr.max_nodes = tightBudgetFor(circuit);
  spec.retry.max_attempts = 6;
  spec.opts.checkpoint_every = 1;
  spec.opts.checkpoint_path = path;

  const JobResult r = executeJob(spec);
  ASSERT_EQ(r.status, RunStatus::kDone) << r.message;
  EXPECT_EQ(r.reach.states, 200.0);
  ASSERT_GE(r.attempts.size(), 2U);
  // The first attempt got far enough to snapshot, so at least one retry
  // restarted from the file rather than from the initial state.
  bool any_resumed = false;
  for (const AttemptRecord& a : r.attempts) any_resumed |= a.resumed;
  EXPECT_TRUE(any_resumed);
  std::remove(path.c_str());
}

TEST(RunRetry, NoRetryOnTimeouts) {
  JobSpec spec;
  spec.circuit = "gen:counter:26:67108864";
  spec.engine = EngineKind::kTr;
  spec.deadline_seconds = 0.2;
  spec.retry.max_attempts = 4;  // must be ignored: a timeout repeats
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kTimeOut);
  EXPECT_EQ(r.attempts.size(), 1U);
}

TEST(RunFaults, InjectedAllocationFailureFoldsToMemOut) {
  JobSpec spec;
  spec.circuit = "gen:counter:8:200";
  spec.engine = EngineKind::kBfv;
  spec.faults.alloc_failures = {2000};  // mid-run, well past setup
  const JobResult r = executeJob(spec);
  ASSERT_EQ(r.status, RunStatus::kMemOut);
  EXPECT_NE(r.message.find("injected"), std::string::npos) << r.message;
  ASSERT_EQ(r.attempts.size(), 1U);
  EXPECT_EQ(r.attempts[0].faults_injected, 1U);
}

TEST(RunFaults, WorkerSurvivesInjectedFaultsAndRunsTheNextJob) {
  // Regression: a failed or interrupted attempt must release its manager
  // and leave the worker able to complete subsequent jobs.
  WorkerPool pool(1);

  JobSpec crash;
  crash.circuit = "gen:counter:8:200";
  crash.engine = EngineKind::kBfv;
  crash.faults.alloc_failures = {2000};
  std::future<JobResult> f1 = pool.submit(crash);

  JobSpec interrupt;  // spurious interrupt at a GC/poll boundary
  interrupt.circuit = "gen:counter:8:200";
  interrupt.engine = EngineKind::kBfv;
  interrupt.faults.spurious_interrupts = {2};
  std::future<JobResult> f2 = pool.submit(interrupt);

  JobSpec clean;
  clean.circuit = "gen:johnson:8";
  clean.engine = EngineKind::kBfv;
  std::future<JobResult> f3 = pool.submit(clean);

  const JobResult r1 = f1.get();
  EXPECT_EQ(r1.status, RunStatus::kMemOut);
  EXPECT_EQ(r1.attempts[0].faults_injected, 1U);
  const JobResult r2 = f2.get();
  EXPECT_EQ(r2.status, RunStatus::kCancelled);
  EXPECT_EQ(r2.attempts[0].faults_injected, 1U);
  // The same (sole) worker completes the clean job afterwards.
  const JobResult r3 = f3.get();
  EXPECT_EQ(r3.status, RunStatus::kDone) << r3.message;
  EXPECT_EQ(r3.reach.states, 16.0);
  EXPECT_EQ(r1.worker, 0U);
  EXPECT_EQ(r3.worker, 0U);
}

TEST(RunManifest, ParsesRobustnessKeys) {
  const std::vector<ManifestEntry> entries = parseManifestString(
      "circuit=gen:johnson:8 ladder=1 cache-bits=16 retries=4 backoff=0.5 "
      "budget-growth=3 checkpoint-every=5 checkpoint-path=ck.bin "
      "fault-allocs=10,20 fault-polls=7\n");
  ASSERT_EQ(entries.size(), 1U);
  const JobSpec& j = entries[0].spec;
  EXPECT_TRUE(j.mgr.pressure_ladder.enabled);
  EXPECT_EQ(j.mgr.cache_bits, 16U);
  EXPECT_EQ(j.retry.max_attempts, 4U);
  EXPECT_EQ(j.retry.backoff_seconds, 0.5);
  EXPECT_EQ(j.retry.node_budget_growth, 3.0);
  EXPECT_EQ(j.opts.checkpoint_every, 5U);
  EXPECT_EQ(j.opts.checkpoint_path, "ck.bin");
  EXPECT_EQ(j.faults.alloc_failures,
            (std::vector<std::uint64_t>{10, 20}));
  EXPECT_EQ(j.faults.spurious_interrupts, (std::vector<std::uint64_t>{7}));
  EXPECT_THROW(parseManifestString("circuit=a.bench fault-allocs=\n"),
               std::runtime_error);
  EXPECT_THROW(parseManifestString("circuit=a.bench ladder=2\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Warm manager reuse, in-memory resume images and worker steering — the
// serving layer's building blocks.
// ---------------------------------------------------------------------------

TEST(RunWarm, CacheReusesAManagerAndStaysBitIdentical) {
  JobSpec spec;
  spec.circuit = "gen:counter:6:40";
  spec.engine = EngineKind::kBfv;
  const JobResult cold = executeJob(spec);
  ASSERT_EQ(cold.status, RunStatus::kDone);

  ManagerCache cache;
  const JobResult first = executeJob(spec, nullptr, &cache);
  const JobResult second = executeJob(spec, nullptr, &cache);
  EXPECT_EQ(cache.stats().misses, 1U);  // only the first build was cold
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().resets_failed, 0U);
  EXPECT_EQ(cache.stats().leaked_nodes, 0U);
  // Warm reuse is purely a cold-start saving: results are bit-identical.
  for (const JobResult* r : {&first, &second}) {
    EXPECT_EQ(r->status, RunStatus::kDone);
    EXPECT_EQ(r->reach.states, cold.reach.states);
    EXPECT_EQ(r->reach.iterations, cold.reach.iterations);
    EXPECT_EQ(r->reach.peak_live_nodes, cold.reach.peak_live_nodes);
  }
}

TEST(RunWarm, CacheReconfiguresBetweenDifferentJobs) {
  ManagerCache cache;
  JobSpec a;
  a.circuit = "gen:counter:5:20";
  JobSpec b;
  b.circuit = "gen:johnson:8";  // different variable count entirely
  const JobResult ra = executeJob(a, nullptr, &cache);
  const JobResult rb = executeJob(b, nullptr, &cache);
  EXPECT_EQ(ra.status, RunStatus::kDone);
  EXPECT_EQ(rb.status, RunStatus::kDone);
  EXPECT_EQ(cache.stats().hits, 1U);
  const JobResult fresh = executeJob(b);
  EXPECT_EQ(rb.reach.states, fresh.reach.states);
  EXPECT_EQ(rb.reach.iterations, fresh.reach.iterations);
}

TEST(RunResume, InMemoryImageContinuesBitIdentically) {
  // Run to completion once for the reference, then snapshot an interrupted
  // run into an in-memory image (no filesystem) and resume from it.
  JobSpec ref;
  ref.circuit = "gen:counter:8:200";
  const JobResult full = executeJob(ref);
  ASSERT_EQ(full.status, RunStatus::kDone);

  const std::string ckpt =
      ::testing::TempDir() + "bfvr_run_image_test.ckpt";
  JobSpec half = ref;
  half.opts.checkpoint_path = ckpt;
  half.opts.checkpoint_every = 1;
  half.opts.max_iterations = 50;  // stop mid-fixpoint (still kDone)
  const JobResult cut = executeJob(half);
  ASSERT_EQ(cut.status, RunStatus::kDone);
  ASSERT_LT(cut.reach.states, full.reach.states);

  // Lift the snapshot into memory, delete the file, resume purely from the
  // image — the migration path a checkpoint file never travels.
  std::ifstream in(ckpt, std::ios::binary);
  ASSERT_TRUE(in.good());
  auto image = std::make_shared<std::vector<std::uint8_t>>(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  in.close();
  std::remove(ckpt.c_str());
  ASSERT_FALSE(image->empty());

  JobSpec resumed = ref;
  resumed.resume_image = image;
  const JobResult r = executeJob(resumed);
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_EQ(r.reach.states, full.reach.states);
  EXPECT_EQ(r.reach.iterations, full.reach.iterations);
  ASSERT_FALSE(r.attempts.empty());
  EXPECT_TRUE(r.attempts.front().resumed);
}

TEST(RunResume, CorruptImageFallsBackToAFreshRun) {
  JobSpec spec;
  spec.circuit = "gen:counter:5:20";
  auto junk = std::make_shared<std::vector<std::uint8_t>>(64, 0x5A);
  spec.resume_image = junk;
  const JobResult r = executeJob(spec);
  // The fixpoint is the same either way; only the recomputation differs.
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_EQ(r.reach.states, 20.0);
  ASSERT_FALSE(r.attempts.empty());
  EXPECT_FALSE(r.attempts.front().resumed);
}

TEST(RunPool, AvoidWorkerSteersPlacement) {
  WorkerPool pool(2);
  JobSpec spec;
  spec.circuit = "gen:counter:4:10";
  // Every job steered away from worker 0 must land on worker 1, no matter
  // how the two workers race for the queue.
  std::vector<std::future<JobResult>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit(spec, nullptr, {}, /*avoid_worker=*/0));
  }
  for (auto& f : futs) {
    const JobResult r = f.get();
    EXPECT_EQ(r.status, RunStatus::kDone);
    EXPECT_EQ(r.worker, 1U);
  }
}

TEST(RunPool, WarmPoolCountsHitsAcrossJobs) {
  WorkerPool pool(1, /*warm_managers=*/true);
  JobSpec spec;
  spec.circuit = "gen:counter:4:10";
  pool.submit(spec).get();
  pool.submit(spec).get();
  pool.submit(spec).get();
  const ManagerCache::Stats s = pool.warmStats();
  EXPECT_EQ(s.misses, 1U);
  EXPECT_EQ(s.hits, 2U);
  EXPECT_EQ(s.leaked_nodes, 0U);
}

TEST(RunEngineKind, RoundTripsAllTags) {
  for (const EngineKind e : allEngineKinds()) {
    EXPECT_EQ(parseEngineKind(to_string(e)), e);
  }
  EXPECT_THROW(parseEngineKind("warp"), std::invalid_argument);
}

TEST(RunEngineKind, UnknownEngineErrorNamesTheKnownOnes) {
  try {
    (void)parseEngineKind("frob");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frob"), std::string::npos) << msg;
    for (const EngineKind k : allEngineKinds()) {
      EXPECT_NE(msg.find(to_string(k)), std::string::npos)
          << "missing " << to_string(k) << " in: " << msg;
    }
  }
}

TEST(RunManifest, LzKeysParse) {
  const std::vector<ManifestEntry> entries = parseManifestString(
      "circuit=data/a.bench engine=lz target=q15 lz-merge=8\n");
  ASSERT_EQ(entries.size(), 1U);
  EXPECT_EQ(entries[0].spec.engine, EngineKind::kLz);
  EXPECT_EQ(entries[0].spec.lz_target, "q15");
  EXPECT_EQ(entries[0].spec.lz_merge, 8U);
}

TEST(RunJob, LzEngineCompletesAffineCircuit) {
  JobSpec spec;
  spec.circuit = "gen:lfsr-free:8";
  spec.engine = EngineKind::kLz;
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_EQ(r.reach.states, 255.0);
  EXPECT_EQ(r.reach.iterations, 255U);
}

TEST(RunJob, LzEngineReportsInconclusiveOnLossyCircuit) {
  JobSpec spec;
  spec.circuit = "gen:arbiter:4";
  spec.engine = EngineKind::kLz;
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kInconclusive);
  EXPECT_FALSE(r.message.empty());
}

TEST(RunJob, LzEngineTargetPrefilterVerdictInMessage) {
  JobSpec spec;
  spec.circuit = "gen:twinshift:6";  // mismatch output is never asserted
  spec.engine = EngineKind::kLz;
  spec.lz_target = "mismatch";
  const JobResult r = executeJob(spec);
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_NE(r.message.find("unreachable"), std::string::npos) << r.message;

  spec.lz_target = "nosuchoutput";
  const JobResult bad = executeJob(spec);
  EXPECT_EQ(bad.status, RunStatus::kError);
  EXPECT_NE(bad.message.find("nosuchoutput"), std::string::npos)
      << bad.message;
}

TEST(RunPortfolio, LzWinsAffineRaceAndNeverWinsInconclusive) {
  WorkerPool pool(3);
  {
    // Affine circuit: lz is conclusive (and fast); it must be a valid
    // winner against the BDD engines.
    JobSpec base;
    base.circuit = "gen:lfsr-free:8";
    const std::vector<EngineKind> engines{EngineKind::kLz, EngineKind::kTr,
                                          EngineKind::kBfv};
    const PortfolioResult race = runPortfolio(pool, base, engines);
    ASSERT_GE(race.winner, 0);
    EXPECT_EQ(race.jobs[static_cast<std::size_t>(race.winner)].status,
              RunStatus::kDone);
    EXPECT_EQ(race.jobs[static_cast<std::size_t>(race.winner)].reach.states,
              255.0);
  }
  {
    // Lossy circuit: the lz leg finishes first but inconclusive — the BDD
    // leg must be crowned instead.
    JobSpec base;
    base.circuit = "gen:arbiter:4";
    const std::vector<EngineKind> engines{EngineKind::kLz, EngineKind::kTr};
    const PortfolioResult race = runPortfolio(pool, base, engines);
    ASSERT_GE(race.winner, 0);
    EXPECT_EQ(engines[static_cast<std::size_t>(race.winner)],
              EngineKind::kTr);
    // The lz leg either finished inconclusive before the crowning or was
    // cancelled by it; it is never the done winner.
    EXPECT_NE(race.jobs[0].status, RunStatus::kDone);
  }
}

}  // namespace
}  // namespace bfvr::run
