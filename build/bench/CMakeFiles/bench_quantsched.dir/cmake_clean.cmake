file(REMOVE_RECURSE
  "CMakeFiles/bench_quantsched.dir/bench_quantsched.cpp.o"
  "CMakeFiles/bench_quantsched.dir/bench_quantsched.cpp.o.d"
  "bench_quantsched"
  "bench_quantsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
