#!/usr/bin/env python3
"""CI perf trajectory gate: guard recursive_steps and peak_live_nodes
against committed baselines, across every bench surface in one run.

Usage (trajectory gate):
    perf_smoke.py <current.json> <baseline.json> [<current2> <baseline2> ...]
                  [--tolerance 0.10]

Usage (parallel speedup gate):
    perf_smoke.py --speedup BENCH_parallel.json [--min-speedup 2.5]
                  [--min-cpus 4]

Each (current, baseline) pair is a BENCH_*.json-shaped array of run objects
(bench_quantsched, bench_table2 and bench_parallel emit the same row
schema). Rows are matched on (circuit, order, engine, schedule, threads)
and compared on `recursive_steps` — the deterministic work metric, immune
to CI-runner noise (wall time on shared runners swings far more than 10%)
— and on `peak_live_nodes`, the memory-pressure metric the governor PR
exists to protect. The check fails if any matched row regresses by more
than the tolerance on either metric, or if a baseline row disappears; new
rows are reported but allowed, so adding circuits to a bench does not
require a lockstep baseline update. A per-row delta table is printed for
every pair, pass or fail, so the perf trajectory is visible in every CI
log, not only on regression.

Rows with threads > 1 are never gated on step counts: the parallel kernel
is deterministic in its *results*, not in its op schedule (fork placement
and cache-population order vary run to run). They are listed informationally
and gated separately by --speedup.

The --speedup mode reads bench_parallel rows and requires each circuit's
highest-thread-count "done" row to reach --min-speedup over its threads=1
twin — but only when the row's recorded host_cpus is at least --min-cpus.
Rows recorded on smaller hosts (e.g. a 1-CPU dev container, where any
speedup is physically impossible) are reported and skipped, which is what
keeps committed baselines honest without making them machine-dependent.

Rows whose status is not "done" (timeouts, memouts) are skipped on both
sides: a run cut off by a wall-clock deadline stops at a machine-dependent
iteration, so its counters are not comparable across runners.

Update a baseline (after a deliberate algorithmic change) with:
    ./build/bench/bench_quantsched --quick --trace \
        --json=baselines/BENCH_quantsched.json
    ./build/bench/bench_table2 --quick --trace \
        --json=baselines/BENCH_table2.json
    ./build/bench/bench_lz --json=baselines/BENCH_lz.json
    ./build/bench/bench_parallel --quick \
        --json=baselines/BENCH_parallel.json
(--trace matters where shown: the tracer's per-iteration snapshots perform
a little BDD work, so step counts in trace mode differ slightly from plain
runs, and CI runs with both flags.)
"""

import argparse
import json
import sys


def key(row):
    return (
        row.get("circuit"),
        row.get("order"),
        row.get("engine"),
        row.get("schedule"),
        row.get("threads", 1),
    )


METRICS = ("recursive_steps", "peak_live_nodes")


def load(path):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    skipped = 0
    parallel = 0
    for row in rows:
        if row.get("status", "done") != "done":
            skipped += 1
            continue
        if row.get("threads", 1) > 1:
            parallel += 1
            continue
        metrics = {m: row[m] for m in METRICS if m in row}
        if metrics:
            out[key(row)] = metrics
    if skipped:
        print(f"note: {path}: skipped {skipped} non-done row(s)")
    if parallel:
        print(f"note: {path}: {parallel} threads>1 row(s) not step-gated "
              "(parallel schedules are nondeterministic; see --speedup)")
    return out


def compare(cur_path, base_path, tolerance):
    """Gate one (current, baseline) pair; returns True on failure."""
    cur = load(cur_path)
    base = load(base_path)
    if not base:
        print(f"error: no comparable rows in baseline {base_path}")
        return True

    print(f"--- {cur_path} vs {base_path}")
    failed = False
    for k, base_metrics in sorted(base.items()):
        label = "/".join(str(p) for p in k)
        if k not in cur:
            print(f"FAIL {label}: row missing from current run")
            failed = True
            continue
        for metric, base_val in sorted(base_metrics.items()):
            if metric not in cur[k]:
                print(f"FAIL {label}: {metric} missing from current run")
                failed = True
                continue
            cur_val = cur[k][metric]
            ratio = cur_val / base_val if base_val else float("inf")
            verdict = "ok"
            if ratio > 1.0 + tolerance:
                verdict = "FAIL"
                failed = True
            print(
                f"{verdict:4s} {label}: {metric} {cur_val} vs "
                f"baseline {base_val} ({(ratio - 1.0) * 100:+.1f}%)"
            )
    for k in sorted(set(cur) - set(base)):
        label = "/".join(str(p) for p in k)
        print(f"new  {label}: {cur[k]} (not in baseline)")
    return failed


def check_speedup(path, min_speedup, min_cpus):
    """Gate the bench_parallel thread-scaling rows; returns True on failure."""
    with open(path) as f:
        rows = json.load(f)
    # Highest-thread-count done row per (circuit, engine).
    best = {}
    for row in rows:
        if row.get("status") != "done":
            continue
        t = row.get("threads", 1)
        if t <= 1:
            continue
        k = (row.get("circuit"), row.get("engine"))
        if k not in best or t > best[k].get("threads", 1):
            best[k] = row

    print(f"--- speedup gate on {path} "
          f"(min {min_speedup:.2f}x at >= {min_cpus} cpus)")
    if not best:
        print("FAIL: no threads>1 done rows found")
        return True
    gated = 0
    reached = 0
    for (circuit, engine), row in sorted(best.items()):
        t = row.get("threads", 1)
        cpus = row.get("host_cpus", 1)
        sp = row.get("speedup", 0.0)
        label = f"{circuit}/{engine} threads={t}"
        if cpus < min_cpus:
            print(f"skip {label}: recorded on {cpus}-cpu host "
                  f"(speedup {sp:.2f}x, gate needs >= {min_cpus} cpus)")
            continue
        gated += 1
        if sp >= min_speedup:
            reached += 1
        print(f"{'ok' if sp >= min_speedup else 'low':4s} "
              f"{label}: {sp:.2f}x on {cpus} cpus")
    if gated == 0:
        print("note: every row was recorded below the cpu floor; "
              "gate did not bind")
        return False
    # The contract is "the kernel can scale": at least one gated row must
    # reach the floor. Per-row "low" lines keep the others visible without
    # making the gate hostage to the smallest circuit in the sweep.
    if reached == 0:
        print(f"FAIL: no gated row reached {min_speedup:.2f}x")
        return True
    return False


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("pairs", nargs="*",
                    metavar="current.json baseline.json",
                    help="one or more (current, baseline) file pairs")
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--speedup", metavar="BENCH_parallel.json",
                    help="gate thread-scaling speedup instead of step counts")
    ap.add_argument("--min-speedup", type=float, default=2.5)
    ap.add_argument("--min-cpus", type=int, default=4)
    args = ap.parse_args()

    if args.speedup:
        if args.pairs:
            print("error: --speedup takes no (current, baseline) pairs")
            return 2
        return 1 if check_speedup(args.speedup, args.min_speedup,
                                  args.min_cpus) else 0

    if not args.pairs or len(args.pairs) % 2 != 0:
        print("error: expected (current, baseline) file pairs")
        return 2

    failed = False
    for i in range(0, len(args.pairs), 2):
        failed |= compare(args.pairs[i], args.pairs[i + 1], args.tolerance)

    if failed:
        print(f"\nperf smoke failed (tolerance {args.tolerance:.0%}); "
              "if the regression is intentional, regenerate the baseline "
              "(see header).")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
