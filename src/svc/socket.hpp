// Thin POSIX socket layer for the service: RAII fds, Unix-domain and TCP
// endpoints behind one "unix:PATH" / "tcp:HOST:PORT" spec grammar, and
// blocking whole-frame send/recv with EINTR retry. Everything network is
// quarantined here; server.cpp and client.cpp only see Frames.
#pragma once

#include <optional>
#include <string>

#include "svc/wire.hpp"

namespace bfvr::svc {

/// A read deadline expired (svc::Error subclass, so generic error paths
/// keep working). `idle` distinguishes "peer sent nothing at all" (the
/// reaper's case) from "peer stalled mid-frame" (a slow-loris or a torn
/// send — protocol-error territory).
struct Timeout : Error {
  bool idle = false;
  Timeout(const std::string& what, bool idle_) : Error(what), idle(idle_) {}
};

/// Per-recv deadlines, both in seconds, 0 = no limit. `idle_seconds` caps
/// the wait for the *first* byte of the next frame; once a frame has
/// started, `frame_seconds` caps the time until its last byte arrives.
struct RecvDeadlines {
  double idle_seconds = 0.0;
  double frame_seconds = 0.0;
};

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Parsed endpoint spec: "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< socket path (unix)
  std::string host;  ///< host (tcp)
  std::uint16_t port = 0;

  /// Throws svc::Error on an unrecognized spec.
  static Endpoint parse(const std::string& spec);
  std::string describe() const;
};

/// Bind + listen on the endpoint (unlinking a stale unix socket path
/// first). Throws svc::Error on failure.
Fd listenOn(const Endpoint& ep, int backlog = 64);

/// Accept one connection; returns an invalid Fd when the listener was
/// closed/shut down (the server's exit signal) instead of throwing.
Fd acceptOn(const Fd& listener);

/// Connect to the endpoint. Throws svc::Error on failure.
Fd connectTo(const Endpoint& ep);

/// Write one whole frame (header + payload), retrying short writes and
/// EINTR. Throws svc::Error if the peer is gone.
void sendFrame(const Fd& fd, const Frame& f);

/// Read one whole frame. Returns nullopt on a clean EOF at a frame
/// boundary (orderly close); throws svc::Error on EOF mid-frame, bad
/// magic/version/length, or CRC mismatch.
std::optional<Frame> recvFrame(const Fd& fd);

/// Deadline-aware recvFrame: additionally throws svc::Timeout when the
/// peer stays silent past `idle_seconds` or stalls a started frame past
/// `frame_seconds` (poll-based, so a partial frame cannot pin the reader
/// forever the way a blocking recv can).
std::optional<Frame> recvFrame(const Fd& fd, const RecvDeadlines& deadlines);

/// Cap how long a send may block on a full socket buffer (SO_SNDTIMEO);
/// past it, sendFrame throws svc::Error. 0 restores blocking sends.
void setSendTimeout(const Fd& fd, double seconds);

/// Ignore SIGPIPE process-wide. Library sends already use MSG_NOSIGNAL on
/// every write, so this is **not** called implicitly anywhere in the
/// library (a library must not clobber its host's signal handlers);
/// binaries that own their process (bfv_serve, bfv_client) call it once at
/// startup to cover any straggler descriptor.
void ignoreSigpipe();

}  // namespace bfvr::svc
