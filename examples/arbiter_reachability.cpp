// Reachability analysis of a round-robin arbiter with all three engines —
// the paper's Fig. 2 flow against the Fig. 1 flow and the VIS-style
// transition-relation baseline — plus an invariant check on the result.
//
//   ./examples/arbiter_reachability [clients]
#include <cstdio>
#include <cstdlib>

#include "circuit/generators.hpp"
#include "reach/engine.hpp"

using namespace bfvr;

int main(int argc, char** argv) {
  const unsigned clients =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const circuit::Netlist n = circuit::makeArbiter(clients);
  std::printf("circuit %s: %zu latches, %zu inputs, %zu signals\n\n",
              n.name().c_str(), n.latches().size(), n.inputs().size(),
              n.numSignals());

  const auto order = circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0});

  struct Row {
    const char* name;
    reach::ReachResult r;
  };
  std::vector<Row> rows;
  {
    bdd::Manager m(0);
    sym::StateSpace s(m, n, order);
    rows.push_back({"TR-IWLS95 (chi)", reach::reachTr(s, {})});
  }
  {
    bdd::Manager m(0);
    sym::StateSpace s(m, n, order);
    rows.push_back({"CBM (Fig. 1)", reach::reachCbm(s, {})});
  }

  // Keep the BFV run's manager alive: we reuse its reached set below.
  bdd::Manager m(0);
  sym::StateSpace s(m, n, order);
  const reach::ReachResult bfv_run = reach::reachBfv(s, {});
  rows.push_back({"BFV (Fig. 2)", bfv_run});

  std::printf("%-16s %10s %9s %6s %8s %8s %8s\n", "engine", "time(s)",
              "Peak(K)", "iters", "states", "chi sz", "bfv sz");
  for (const Row& row : rows) {
    std::printf("%-16s %10.4f %9.1f %6u %8.0f %8zu %8zu\n", row.name,
                row.r.seconds, row.r.peak_live_nodes / 1000.0,
                row.r.iterations, row.r.states, row.r.chi_nodes,
                row.r.bfv_nodes);
  }

  // Invariant: the priority pointer stays one-hot. The bad set is built
  // from a predicate and intersected with the reached BFV (§2.4) — the
  // paper's algebra needs no set complement on the vector side.
  bdd::Bdd one_hot = m.zero();
  for (unsigned i = 0; i < clients; ++i) {
    bdd::Bdd cube = m.one();
    for (unsigned j = 0; j < clients; ++j) {
      const bdd::Bdd v = m.var(s.currentVar(j));
      cube &= i == j ? v : ~v;
    }
    one_hot |= cube;
  }
  const bfv::Bfv bad = bfv::fromChar(m, ~one_hot, s.currentVars());
  const bfv::Bfv violations = setIntersect(*bfv_run.reached_bfv, bad);
  std::printf("\nAG one-hot(pointer): %s\n",
              violations.isEmpty() ? "HOLDS (no reachable violation)"
                                   : "VIOLATED");
  return violations.isEmpty() ? 0 : 1;
}
