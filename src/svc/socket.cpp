#include "svc/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace bfvr::svc {

namespace {

// Wire instruments, resolved once so every frame pays only relaxed atomic
// updates. Encode/decode time covers serialization + CRC + the socket I/O
// itself — the client-visible cost of a frame.
struct WireMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& errors;
  obs::Histogram& encode_seconds;
  obs::Histogram& decode_seconds;

  static WireMetrics& get() {
    static WireMetrics m{
        obs::Registry::global().counter("bfvr_wire_frames_sent_total"),
        obs::Registry::global().counter("bfvr_wire_frames_received_total"),
        obs::Registry::global().counter("bfvr_wire_bytes_sent_total"),
        obs::Registry::global().counter("bfvr_wire_bytes_received_total"),
        obs::Registry::global().counter("bfvr_wire_errors_total"),
        obs::Registry::global().histogram("bfvr_wire_frame_encode_seconds",
                                          "", obs::kSecondsScale),
        obs::Registry::global().histogram("bfvr_wire_frame_decode_seconds",
                                          "", obs::kSecondsScale),
    };
    return m;
  }
};

std::string errnoText(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Write all of `n` bytes, retrying EINTR and short writes. Every library
/// send passes MSG_NOSIGNAL, so a vanished peer surfaces as EPIPE here
/// instead of a process-wide SIGPIPE — see ignoreSigpipe() for the
/// binary-level belt-and-braces.
void writeAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only reachable with SO_SNDTIMEO set (setSendTimeout): the peer
        // stopped draining its socket for the configured window.
        throw Error("wire: send timed out");
      }
      throw Error(errnoText("wire: send failed"));
    }
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
}

double monoSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Block until `fd` is readable or the absolute monotonic deadline passes
/// (0 = no deadline). Returns false on deadline expiry.
bool waitReadable(int fd, double deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline > 0.0) {
      const double left = deadline - monoSeconds();
      if (left <= 0.0) return false;
      // +1 rounds up so a sub-millisecond remainder still sleeps instead
      // of spinning.
      timeout_ms = static_cast<int>(std::min(left * 1000.0 + 1.0, 3.6e6));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;  // readable, EOF, or error: recv resolves it
    if (rc == 0) {
      if (deadline <= 0.0) continue;  // spurious zero without a deadline
      continue;  // re-check the clock at the top of the loop
    }
    if (errno == EINTR) continue;
    throw Error(errnoText("wire: poll failed"));
  }
}

/// Read exactly `n` bytes. Returns false on EOF *before the first byte*
/// (clean close); throws on EOF after a partial read (truncated frame).
bool readAll(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd, p + got, n - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw Error(errnoText("wire: recv failed"));
    }
    if (k == 0) {
      if (got == 0) return false;
      throw Error("wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

/// Deadline-aware readAll: polls before every recv. `*deadline` is the
/// absolute limit (0 = none); `first_frame_byte` marks the read that
/// starts a frame, whose expiry is the *idle* flavour of Timeout.
bool readAllDeadline(int fd, std::uint8_t* p, std::size_t n, double deadline,
                     bool first_frame_byte) {
  std::size_t got = 0;
  while (got < n) {
    if (!waitReadable(fd, deadline)) {
      throw Timeout(first_frame_byte && got == 0
                        ? "wire: session idle past deadline"
                        : "wire: frame stalled past deadline",
                    first_frame_byte && got == 0);
    }
    const ssize_t k = ::recv(fd, p + got, n - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw Error(errnoText("wire: recv failed"));
    }
    if (k == 0) {
      if (got == 0 && first_frame_byte) return false;
      throw Error("wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

void setSendTimeout(const Fd& fd, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - double(tv.tv_sec)) * 1e6);
  }
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw Error(errnoText("wire: setsockopt(SO_SNDTIMEO)"));
  }
}

void Fd::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw Error("endpoint: empty unix socket path");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw Error("endpoint: expected tcp:host:port, got '" + spec + "'");
    }
    ep.host = rest.substr(0, colon);
    const std::string port_s = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
      throw Error("endpoint: bad port '" + port_s + "'");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw Error("endpoint: expected unix:PATH or tcp:HOST:PORT, got '" + spec +
              "'");
}

std::string Endpoint::describe() const {
  return is_unix ? "unix:" + path : "tcp:" + host + ":" + std::to_string(port);
}

Fd listenOn(const Endpoint& ep, int backlog) {
  if (ep.is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      throw Error("endpoint: unix socket path too long: " + ep.path);
    }
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw Error(errnoText("socket(AF_UNIX)"));
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw Error(errnoText("bind " + ep.describe()));
    }
    if (::listen(fd.get(), backlog) != 0) {
      throw Error(errnoText("listen " + ep.describe()));
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_s = std::to_string(ep.port);
  if (::getaddrinfo(ep.host.empty() ? nullptr : ep.host.c_str(),
                    port_s.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    throw Error("endpoint: cannot resolve " + ep.describe());
  }
  Fd fd(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!fd.valid()) {
    ::freeaddrinfo(res);
    throw Error(errnoText("socket(tcp)"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int ok = ::bind(fd.get(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (ok != 0) throw Error(errnoText("bind " + ep.describe()));
  if (::listen(fd.get(), backlog) != 0) {
    throw Error(errnoText("listen " + ep.describe()));
  }
  return fd;
}

Fd acceptOn(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    // EBADF / EINVAL: the listener was closed or shut down under us — the
    // server's orderly exit path, not an error.
    return Fd();
  }
}

Fd connectTo(const Endpoint& ep) {
  if (ep.is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      throw Error("endpoint: unix socket path too long: " + ep.path);
    }
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw Error(errnoText("socket(AF_UNIX)"));
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw Error(errnoText("connect " + ep.describe()));
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_s = std::to_string(ep.port);
  if (::getaddrinfo(ep.host.c_str(), port_s.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    throw Error("endpoint: cannot resolve " + ep.describe());
  }
  Error last("connect " + ep.describe() + ": no addresses");
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) continue;
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return fd;
    }
    last = Error(errnoText("connect " + ep.describe()));
  }
  ::freeaddrinfo(res);
  throw last;
}

void sendFrame(const Fd& fd, const Frame& f) {
  WireMetrics& wm = WireMetrics::get();
  const Timer t;
  const std::vector<std::uint8_t> bytes = encodeFrame(f);
  try {
    writeAll(fd.get(), bytes.data(), bytes.size());
  } catch (...) {
    wm.errors.inc();
    throw;
  }
  wm.encode_seconds.observeSeconds(t.seconds());
  wm.frames_sent.inc();
  wm.bytes_sent.inc(bytes.size());
}

std::optional<Frame> recvFrame(const Fd& fd) {
  WireMetrics& wm = WireMetrics::get();
  std::uint8_t header[kFrameHeaderBytes];
  if (!readAll(fd.get(), header, sizeof(header))) return std::nullopt;
  // The decode clock starts once the header has arrived: recvFrame blocks
  // here for however long the peer stays idle, and that wait is not a
  // decoding cost.
  const Timer t;
  try {
    Frame f;
    std::uint32_t crc = 0;
    const std::uint32_t len = decodeFrameHeader(header, &f.type, &crc);
    f.payload.resize(len);
    if (len > 0 && !readAll(fd.get(), f.payload.data(), len)) {
      throw Error("wire: connection closed mid-frame");
    }
    checkPayloadCrc(f.payload.data(), f.payload.size(), crc);
    wm.decode_seconds.observeSeconds(t.seconds());
    wm.frames_received.inc();
    wm.bytes_received.inc(kFrameHeaderBytes + f.payload.size());
    return f;
  } catch (...) {
    wm.errors.inc();
    throw;
  }
}

std::optional<Frame> recvFrame(const Fd& fd, const RecvDeadlines& deadlines) {
  if (deadlines.idle_seconds <= 0.0 && deadlines.frame_seconds <= 0.0) {
    return recvFrame(fd);  // no deadlines: the plain blocking path
  }
  WireMetrics& wm = WireMetrics::get();
  const double idle_deadline =
      deadlines.idle_seconds > 0.0 ? monoSeconds() + deadlines.idle_seconds
                                   : 0.0;
  std::uint8_t header[kFrameHeaderBytes];
  try {
    // The idle clock covers only the wait for byte 0; the moment a frame
    // starts, the (usually much shorter) frame clock takes over so a
    // peer trickling one byte per idle-window cannot hold the session.
    if (!readAllDeadline(fd.get(), header, 1, idle_deadline, true)) {
      return std::nullopt;
    }
    const double frame_deadline =
        deadlines.frame_seconds > 0.0
            ? monoSeconds() + deadlines.frame_seconds
            : 0.0;
    readAllDeadline(fd.get(), header + 1, sizeof(header) - 1, frame_deadline,
                    false);
    const Timer t;
    Frame f;
    std::uint32_t crc = 0;
    const std::uint32_t len = decodeFrameHeader(header, &f.type, &crc);
    f.payload.resize(len);
    if (len > 0) {
      readAllDeadline(fd.get(), f.payload.data(), len, frame_deadline, false);
    }
    checkPayloadCrc(f.payload.data(), f.payload.size(), crc);
    wm.decode_seconds.observeSeconds(t.seconds());
    wm.frames_received.inc();
    wm.bytes_received.inc(kFrameHeaderBytes + f.payload.size());
    return f;
  } catch (...) {
    wm.errors.inc();
    throw;
  }
}

}  // namespace bfvr::svc
