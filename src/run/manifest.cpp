#include "run/manifest.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bfvr::run {

namespace {

/// Strict numeric parses: the std::sto* family throws bare "stoul"-style
/// messages and accepts trailing junk ("3x" parses as 3); manifest errors
/// must instead name exactly what was wrong with the value.
std::uint64_t parseU64(const std::string& s) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("expected a number, got '" + s + "'");
  }
  if (pos != s.size() || s[0] == '-') {
    throw std::invalid_argument("expected a number, got '" + s + "'");
  }
  return v;
}

double parseF64(const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("expected a number, got '" + s + "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("expected a number, got '" + s + "'");
  }
  return v;
}

unsigned parseU32(const std::string& s) {
  const std::uint64_t v = parseU64(s);
  if (v > 0xFFFFFFFFull) {
    throw std::invalid_argument("value out of range: '" + s + "'");
  }
  return static_cast<unsigned>(v);
}

circuit::OrderSpec parseOrder(const std::string& s) {
  if (s == "natural") return {circuit::OrderKind::kNatural, 0};
  if (s == "topo") return {circuit::OrderKind::kTopo, 0};
  if (s == "reverse") return {circuit::OrderKind::kReverse, 0};
  if (s == "random") return {circuit::OrderKind::kRandom, 0};
  if (s.rfind("random:", 0) == 0) {
    return {circuit::OrderKind::kRandom, parseU64(s.substr(7))};
  }
  throw std::invalid_argument("unknown order: " + s);
}

std::vector<EngineKind> parseEngineList(const std::string& s) {
  std::vector<EngineKind> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) out.push_back(parseEngineKind(cur));
  }
  if (out.empty()) throw std::invalid_argument("empty engine list");
  return out;
}

bool parseBool(const std::string& s) {
  if (s == "0" || s == "false") return false;
  if (s == "1" || s == "true") return true;
  throw std::invalid_argument("expected 0/1: " + s);
}

std::vector<std::uint64_t> parseU64List(const std::string& s) {
  std::vector<std::uint64_t> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) out.push_back(parseU64(cur));
  }
  if (out.empty()) throw std::invalid_argument("empty count list");
  return out;
}

/// Internal marker so the unknown-key diagnostic is not double-prefixed
/// with the "key '...'" context applyKey adds to value errors.
struct UnknownKey {};

void applyKey(ManifestEntry& e, const std::string& key,
              const std::string& value) {
  JobSpec& j = e.spec;
  try {
    if (key == "circuit") {
      j.circuit = value;
    } else if (key == "name") {
      j.name = value;
    } else if (key == "engine") {
      j.engine = parseEngineKind(value);
    } else if (key == "order") {
      j.order = parseOrder(value);
    } else if (key == "deadline") {
      j.deadline_seconds = parseF64(value);
    } else if (key == "seconds") {
      j.opts.budget.max_seconds = parseF64(value);
    } else if (key == "nodes") {
      j.opts.budget.max_live_nodes = parseU64(value);
    } else if (key == "max-nodes") {
      j.mgr.max_nodes = parseU64(value);
    } else if (key == "iters") {
      j.opts.max_iterations = parseU32(value);
    } else if (key == "reorder-every") {
      j.opts.reorder.every = parseU32(value);
    } else if (key == "auto-reorder") {
      j.mgr.auto_reorder = parseBool(value);
    } else if (key == "trace") {
      j.opts.trace = parseBool(value);
    } else if (key == "portfolio") {
      e.portfolio = parseEngineList(value);
    } else if (key == "ladder") {
      j.mgr.pressure_ladder.enabled = parseBool(value);
    } else if (key == "cache-bits") {
      j.mgr.cache_bits = parseU32(value);
    } else if (key == "threads") {
      j.mgr.threads = parseU32(value);
      if (j.mgr.threads == 0) {
        throw std::invalid_argument("threads must be >= 1, got '" + value +
                                    "'");
      }
    } else if (key == "retries") {
      j.retry.max_attempts = parseU32(value);
    } else if (key == "backoff") {
      j.retry.backoff_seconds = parseF64(value);
    } else if (key == "budget-growth") {
      j.retry.node_budget_growth = parseF64(value);
    } else if (key == "checkpoint-every") {
      j.opts.checkpoint_every = parseU32(value);
    } else if (key == "checkpoint-path") {
      j.opts.checkpoint_path = value;
    } else if (key == "target") {
      j.lz_target = value;
    } else if (key == "lz-merge") {
      j.lz_merge = parseU64(value);
    } else if (key == "fault-allocs") {
      j.faults.alloc_failures = parseU64List(value);
    } else if (key == "fault-polls") {
      j.faults.spurious_interrupts = parseU64List(value);
    } else {
      throw UnknownKey{};
    }
  } catch (const UnknownKey&) {
    throw std::invalid_argument("unknown key '" + key + "'");
  } catch (const std::exception& ex) {
    // Name the offending key alongside the value diagnostic, so a bad
    // entry in a thousand-line sweep manifest is a one-glance fix.
    throw std::invalid_argument("key '" + key + "': " + ex.what());
  }
}

}  // namespace

std::vector<ManifestEntry> parseManifest(std::istream& in) {
  std::vector<ManifestEntry> out;
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string tok;
    ManifestEntry entry;
    bool any = false;
    // key -> the value it first appeared with, for the duplicate
    // diagnostic. Silent last-wins would make `deadline=30 ... deadline=5`
    // a hidden bug in a long sweep row, so duplicates are errors that name
    // both occurrences.
    std::map<std::string, std::string> seen;
    try {
      while (tokens >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw std::invalid_argument("expected key=value, got: " + tok);
        }
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        const auto [it, inserted] = seen.emplace(key, value);
        if (!inserted) {
          throw std::invalid_argument(
              "duplicate key '" + key + "' (first " + key + "=" + it->second +
              ", then " + key + "=" + value + ")");
        }
        applyKey(entry, key, value);
        any = true;
      }
      if (!any) continue;  // blank / comment-only line
      if (entry.spec.circuit.empty()) {
        throw std::invalid_argument("missing circuit=");
      }
    } catch (const std::exception& ex) {
      throw std::runtime_error("manifest line " + std::to_string(lineno) +
                               ": " + ex.what());
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<ManifestEntry> parseManifestString(const std::string& text) {
  std::istringstream in(text);
  return parseManifest(in);
}

std::vector<ManifestEntry> parseManifestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open manifest: " + path);
  return parseManifest(in);
}

}  // namespace bfvr::run
