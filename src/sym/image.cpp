#include "sym/image.hpp"

#include <unordered_map>

namespace bfvr::sym {

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<bdd::Edge>& v) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (bdd::Edge e : v) {
      h ^= e + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RangeSplitter {
  Manager& m;
  const StateSpace& s;
  // Memo keyed by the raw edges of the remaining suffix. No GC can run
  // while this object is alive (we never call maybeGc inside), so raw
  // edges are stable.
  std::unordered_map<std::vector<bdd::Edge>, Bdd, VecHash> memo;

  Bdd run(std::size_t i, const std::vector<Bdd>& vec) {
    const std::size_t n = vec.size();
    if (i == n) return m.one();
    std::vector<bdd::Edge> key;
    key.reserve(n - i + 1);
    key.push_back(static_cast<bdd::Edge>(i));
    for (std::size_t j = i; j < n; ++j) key.push_back(vec[j].raw());
    if (auto it = memo.find(key); it != memo.end()) return it->second;

    const unsigned u = s.paramVars()[i];
    const Bdd d = vec[i];
    Bdd r;
    if (d.isConst()) {
      const Bdd rest = run(i + 1, vec);
      r = d.isTrue() ? (m.var(u) & rest) : (~m.var(u) & rest);
    } else {
      std::vector<Bdd> on(vec), off(vec);
      for (std::size_t j = i + 1; j < n; ++j) {
        on[j] = m.constrain(vec[j], d);
        off[j] = m.constrain(vec[j], ~d);
      }
      r = (m.var(u) & run(i + 1, on)) | (~m.var(u) & run(i + 1, off));
    }
    memo.emplace(std::move(key), r);
    return r;
  }
};

}  // namespace

Bdd rangeChar(const StateSpace& s, std::span<const Bdd> deltas,
              const Bdd& care) {
  Manager& m = s.manager();
  if (care.isFalse()) return m.zero();
  std::vector<Bdd> vec(deltas.begin(), deltas.end());
  for (Bdd& d : vec) d = m.constrain(d, care);
  RangeSplitter rs{m, s, {}};
  return rs.run(0, vec);
}

}  // namespace bfvr::sym
