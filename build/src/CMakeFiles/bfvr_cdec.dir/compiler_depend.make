# Empty compiler generated dependencies file for bfvr_cdec.
# This may be replaced when dependencies are built.
