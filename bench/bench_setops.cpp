// Experiment: micro-benchmarks of the §2 set algorithms (google-benchmark).
// Union is linear in the vector width in BDD operations; intersection is
// quadratic (§2.4); the chi conversions bracket them. Counters report BDD
// operations ("ops") alongside wall time.
//
// On top of the google-benchmark tables, `--json[=path]` /
// `--trace[=path]` (stripped from argv before benchmark::Initialize sees
// it) write one deterministic counter sweep per (operation, width) —
// top-level ops, recursive steps, and the per-op computed-cache hit/miss
// split — so the perf trajectory of the set algorithms lands in the same
// BENCH_/TRACE_ artifact shape as the reachability benches.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bfv/bfv.hpp"
#include "support.hpp"
#include "util/rng.hpp"

using namespace bfvr;
using bfv::Bfv;

namespace {

/// A pseudo-random non-empty set of width n as a characteristic function:
/// a conjunction of random parity/majority-ish constraints, which keeps
/// BDDs nontrivial but far from exponential.
bdd::Bdd randomChi(bdd::Manager& m, const std::vector<unsigned>& vars,
                   Rng& rng) {
  bdd::Bdd chi = m.one();
  const unsigned n = static_cast<unsigned>(vars.size());
  // Clauses draw their literals from a small window of adjacent variables:
  // random wide 3-CNF conjunctions have exponentially large BDDs under any
  // fixed order, which would benchmark the pathology instead of the
  // algorithms.
  for (unsigned c = 0; c < n / 2; ++c) {
    const unsigned base = rng.below(n);
    bdd::Bdd clause = m.zero();
    for (int lit = 0; lit < 3; ++lit) {
      const unsigned v = vars[(base + rng.below(5)) % n];
      clause |= rng.flip() ? m.var(v) : ~m.var(v);
    }
    chi &= clause;
  }
  if (chi.isFalse()) chi = m.var(vars[0]);
  return chi;
}

struct SetPair {
  bdd::Manager m;
  std::vector<unsigned> vars;
  Bfv a, b;

  explicit SetPair(unsigned n, std::uint64_t seed) : m(n) {
    Rng rng(seed);
    vars.resize(n);
    for (unsigned i = 0; i < n; ++i) vars[i] = i;
    a = bfv::fromChar(m, randomChi(m, vars, rng), vars);
    b = bfv::fromChar(m, randomChi(m, vars, rng), vars);
  }
};

void BM_Union(benchmark::State& state) {
  SetPair p(static_cast<unsigned>(state.range(0)), 42);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    p.m.resetStats();
    Bfv u = setUnion(p.a, p.b);
    benchmark::DoNotOptimize(u);
    ops += p.m.stats().top_ops;
    p.m.gc();
  }
  state.counters["ops"] =
      benchmark::Counter(static_cast<double>(ops) /
                         static_cast<double>(state.iterations()));
}

void BM_Intersect(benchmark::State& state) {
  SetPair p(static_cast<unsigned>(state.range(0)), 43);
  std::uint64_t ops = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    p.m.resetStats();
    Bfv i = setIntersect(p.a, p.b);
    benchmark::DoNotOptimize(i);
    ops += p.m.stats().top_ops;
    // The quadratic §2.4 cost shows up in the recursion of the final
    // substitution pass, not in the top-level call count.
    steps += p.m.stats().recursive_steps;
    p.m.gc();
  }
  state.counters["ops"] =
      benchmark::Counter(static_cast<double>(ops) /
                         static_cast<double>(state.iterations()));
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(steps) /
                         static_cast<double>(state.iterations()));
}

void BM_ToChar(benchmark::State& state) {
  SetPair p(static_cast<unsigned>(state.range(0)), 44);
  for (auto _ : state) {
    bdd::Bdd chi = p.a.toChar();
    benchmark::DoNotOptimize(chi);
  }
}

void BM_FromChar(benchmark::State& state) {
  SetPair p(static_cast<unsigned>(state.range(0)), 45);
  const bdd::Bdd chi = p.a.toChar();
  for (auto _ : state) {
    Bfv f = bfv::fromChar(p.m, chi, p.vars);
    benchmark::DoNotOptimize(f);
    p.m.gc();
  }
}

void BM_Reparam(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  bdd::Manager m(2 * n);
  Rng rng(46);
  std::vector<unsigned> choice(n);
  std::vector<unsigned> params(n);
  for (unsigned i = 0; i < n; ++i) {
    choice[i] = i;
    params[i] = n + i;
  }
  // Raw vector: each output a small random function of three parameters.
  std::vector<bdd::Bdd> outs(n);
  for (unsigned i = 0; i < n; ++i) {
    const bdd::Bdd x = m.var(params[rng.below(n)]);
    const bdd::Bdd y = m.var(params[rng.below(n)]);
    const bdd::Bdd z = m.var(params[rng.below(n)]);
    outs[i] = (x & y) | (~x & z);
  }
  for (auto _ : state) {
    Bfv f = bfv::reparameterize(m, outs, choice, params);
    benchmark::DoNotOptimize(f);
    m.gc();
  }
}

/// One sweep row: deterministic counters of a counter delta, including the
/// per-op computed-cache split the reachability benches also publish.
util::JsonObject statsRow(const char* op, unsigned width,
                          const bdd::OpStats& d) {
  util::JsonObject o;
  o.add("op", op)
      .add("width", width)
      .add("top_ops", d.top_ops)
      .add("recursive_steps", d.recursive_steps)
      .add("cache_lookups", d.cache_lookups)
      .add("cache_hits", d.cache_hits)
      .addRaw("op_cache", obs::opCacheJson(d));
  return o;
}

/// Deterministic counter sweep behind `--json` / `--trace`: reruns each
/// set algorithm kSweepReps times without intermediate GC, logging the
/// whole-sweep counters (summary) and the per-repetition deltas (trace —
/// repetitions after the first show how much the computed cache retains).
void counterSweep(util::JsonLog& json, util::JsonLog& trace) {
  constexpr int kSweepReps = 5;
  const auto sweep = [&](const char* op, unsigned width, bdd::Manager& m,
                         auto&& body) {
    std::vector<std::string> reps;
    const bdd::OpStats start = m.stats();
    for (int rep = 0; rep < kSweepReps; ++rep) {
      const bdd::OpStats pre = m.stats();
      body();
      if (trace.enabled()) {
        reps.push_back(statsRow(op, width, m.stats().since(pre)).str());
      }
    }
    json.push(statsRow(op, width, m.stats().since(start))
                  .add("reps", kSweepReps));
    if (trace.enabled()) {
      util::JsonObject t;
      t.add("op", op).add("width", width).addRaw("reps",
                                                 util::jsonArray(reps));
      trace.push(t);
    }
  };

  for (unsigned n : {8U, 16U, 32U, 64U}) {
    {
      SetPair p(n, 42);
      sweep("union", n, p.m, [&] {
        Bfv u = setUnion(p.a, p.b);
        benchmark::DoNotOptimize(u);
      });
    }
    {
      SetPair p(n, 43);
      sweep("intersect", n, p.m, [&] {
        Bfv i = setIntersect(p.a, p.b);
        benchmark::DoNotOptimize(i);
      });
    }
    {
      SetPair p(n, 44);
      sweep("to_char", n, p.m, [&] {
        bdd::Bdd chi = p.a.toChar();
        benchmark::DoNotOptimize(chi);
      });
    }
    {
      SetPair p(n, 45);
      const bdd::Bdd chi = p.a.toChar();
      sweep("from_char", n, p.m, [&] {
        Bfv f = bfv::fromChar(p.m, chi, p.vars);
        benchmark::DoNotOptimize(f);
      });
    }
  }
  for (unsigned n : {4U, 8U, 16U}) {
    bdd::Manager m(2 * n);
    Rng rng(46);
    std::vector<unsigned> choice(n);
    std::vector<unsigned> params(n);
    for (unsigned i = 0; i < n; ++i) {
      choice[i] = i;
      params[i] = n + i;
    }
    std::vector<bdd::Bdd> outs(n);
    for (unsigned i = 0; i < n; ++i) {
      const bdd::Bdd x = m.var(params[rng.below(n)]);
      const bdd::Bdd y = m.var(params[rng.below(n)]);
      const bdd::Bdd z = m.var(params[rng.below(n)]);
      outs[i] = (x & y) | (~x & z);
    }
    sweep("reparam", n, m, [&] {
      Bfv f = bfv::reparameterize(m, outs, choice, params);
      benchmark::DoNotOptimize(f);
    });
  }
}

}  // namespace

BENCHMARK(BM_Union)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Intersect)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_ToChar)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_FromChar)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Reparam)->Arg(4)->Arg(8)->Arg(16);

// Custom main instead of BENCHMARK_MAIN(): the `--json` / `--trace` flags
// are ours, and google-benchmark aborts on flags it does not recognize, so
// they are parsed and stripped before benchmark::Initialize runs.
int main(int argc, char** argv) {
  util::JsonLog json = bench::jsonLogFromArgs(argc, argv, "setops");
  util::JsonLog trace = bench::traceLogFromArgs(argc, argv, "setops");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json", 6) == 0 ||
        std::strncmp(argv[i], "--trace", 7) == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  counterSweep(json, trace);
  return json.write() && trace.write() ? 0 : 1;
}
