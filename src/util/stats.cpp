#include "util/stats.hpp"

namespace bfvr {

std::string to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kDone:
      return "done";
    case RunStatus::kTimeOut:
      return "T.O.";
    case RunStatus::kMemOut:
      return "M.O.";
  }
  return "?";
}

std::optional<RunStatus> parse_run_status(std::string_view s) {
  if (s == "done") return RunStatus::kDone;
  if (s == "T.O.") return RunStatus::kTimeOut;
  if (s == "M.O.") return RunStatus::kMemOut;
  return std::nullopt;
}

}  // namespace bfvr
