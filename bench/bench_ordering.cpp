// Experiment: the §3 variable-ordering discussion — for
// chi = (v1 == v2) & (v3 == v4) & ... the characteristic function needs the
// paired variables adjacent, while the Boolean functional vector is small
// under EVERY order because the functional dependencies are factored out
// (Hu & Dill's observation, built into the representation).
//
// We sweep the number of pairs k and build the same set under two orders:
//   adjacent:  pairs sit next to each other (the good chi order)
//   separated: all left elements precede all right elements (the bad one)
// and report BDD sizes of chi and shared sizes of the canonical BFV.
#include <cstdio>

#include "bfv/bfv.hpp"

using namespace bfvr;
using bfv::Bfv;

namespace {

struct Sizes {
  std::size_t chi;
  std::size_t bfv;
};

/// Build chi = AND_i (var(a_i) == var(b_i)) and the canonical BFV of its
/// set over the given (increasing) choice variables.
Sizes build(unsigned k, bool adjacent) {
  bdd::Manager m(2 * k);
  std::vector<unsigned> vars(2 * k);
  for (unsigned i = 0; i < 2 * k; ++i) vars[i] = i;
  bdd::Bdd chi = m.one();
  for (unsigned i = 0; i < k; ++i) {
    const unsigned a = adjacent ? 2 * i : i;
    const unsigned b = adjacent ? 2 * i + 1 : k + i;
    chi &= m.xnorB(m.var(a), m.var(b));
  }
  const Bfv f = bfv::fromChar(m, chi, vars);
  return Sizes{m.nodeCount(chi), f.sharedSize()};
}

}  // namespace

int main() {
  std::printf(
      "Ordering sensitivity: chi = AND_i (v_a == v_b), k pairs\n"
      "%-4s | %14s %14s | %14s %14s\n",
      "k", "chi adjacent", "chi separated", "BFV adjacent", "BFV separated");
  for (unsigned k = 2; k <= 16; k += 2) {
    const Sizes adj = build(k, true);
    const Sizes sep = build(k, false);
    std::printf("%-4u | %14zu %14zu | %14zu %14zu\n", k, adj.chi, sep.chi,
                adj.bfv, sep.bfv);
  }
  std::printf(
      "\nShape to compare with the paper: chi grows linearly under the\n"
      "paired order but exponentially when the pairs are separated; the\n"
      "BFV stays linear under both (\"with the Boolean functional vector,\n"
      "all orderings are good in this case\", §3).\n");
  return 0;
}
