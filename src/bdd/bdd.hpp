// A self-contained ROBDD package with complement edges — the substrate the
// paper builds on (it used CUDD; see DESIGN.md for the substitution note).
//
// Features: shared unique table, lossy computed cache, ITE / AND / XOR,
// existential & universal quantification, AND-EXISTS (relational product),
// generalized cofactor (constrain) and restrict, (vector) composition,
// variable permutation, support, minterm counting, mark-and-sweep garbage
// collection driven by RAII handles, node budgets with out-of-nodes
// reporting, and operation counters used by the benchmark harness.
//
// Representation notes:
//  * An Edge is a 32-bit node index shifted left by one, with the low bit as
//    the complement flag. Edge 0 is the constant TRUE, edge 1 is FALSE.
//  * Canonical form: the `high` (then) edge of every node is regular
//    (never complemented); complements are pushed to `low` and to the
//    incoming edge. This makes negation O(1).
//  * Variable vs level: a node stores its *variable* (stable identity); the
//    position in the order is its *level*, looked up through a level <->
//    variable indirection that dynamic reordering permutes (see
//    bdd/reorder.hpp). Static order sweeps (the paper uses several fixed
//    orders per circuit) are realized by mapping problem signals to indices
//    differently (see sym/space.hpp); sifting can then re-permute at runtime.
//  * The unique table is split per variable (CUDD-style subtables) so the
//    adjacent-level swap touches only the nodes of the level being moved.
//  * Threading: with Config::threads == 1 (the default) a Manager is
//    single-threaded state — one Manager per thread, exactly the historical
//    contract, and every code path is bit-identical to the sequential-only
//    build. With Config::threads > 1 the manager owns a small work-stealing
//    pool (bdd/par.hpp) and runs its apply-family kernels task-parallel:
//    the unique table is guarded by 64 sharded spinlocks keyed by variable,
//    node allocation by one allocation lock, and the computed cache is
//    replaced by a lossy seqlock-published concurrent cache. Public
//    operations are still issued by ONE external thread at a time; the
//    parallelism is internal (plus parallelInvoke() for component-level
//    fan-out). GC, reordering and checkpointing need no stop-the-world
//    machinery: every forked task is joined by its parent frame before the
//    public operation returns (or unwinds), so the pool is quiescent at
//    every sequential safe point by construction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "bdd/reorder.hpp"

namespace bfvr::bdd {

class Manager;
class Bdd;

namespace detail {

inline constexpr std::uint64_t kMul1 = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kMul2 = 0xc2b2ae3d27d4eb4fULL;

/// Mixer behind both the unique table and the computed cache. Lives in the
/// header so the cache probe inlines into the recursive kernels.
inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) noexcept {
  std::uint64_t h = a * kMul1;
  h ^= (b + kMul2) * kMul1;
  h = (h << 31) | (h >> 33);
  h ^= (c + kMul1) * kMul2;
  h ^= h >> 29;
  h *= kMul1;
  h ^= h >> 32;
  return h;
}

/// Pause/relax hint for spin loops.
inline void cpuRelax() noexcept {
#if defined(__SSE2__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Tiny test-and-test-and-set spinlock used by the parallel kernel paths
/// (unique-table shards, node allocation, handle registry). Critical
/// sections are a handful of loads/stores, so spinning beats a mutex; the
/// contended counter feeds the bfvr_bdd_par_shard_contention metric.
struct Spinlock {
  std::atomic<bool> locked{false};
  std::atomic<std::uint64_t> contended{0};

  void lock() noexcept {
    if (!locked.exchange(true, std::memory_order_acquire)) return;
    contended.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      while (locked.load(std::memory_order_relaxed)) cpuRelax();
      if (!locked.exchange(true, std::memory_order_acquire)) return;
    }
  }
  void unlock() noexcept { locked.store(false, std::memory_order_release); }
};

/// Internal unwind signal of the parallel allocator: the node store hit its
/// reserved capacity mid-region, but the configured budget still allows
/// growth. Reallocating nodes_ while workers read it lock-free is UB, so
/// the allocation site throws this instead; withPressure catches it at the
/// operation boundary — the region has unwound and every task is joined —
/// grows the store, and reruns the operation. Never escapes the manager.
struct ParCapacityExhausted {};

/// RAII guard: unlocks on scope exit, including exceptional unwind (node
/// budget / cancellation can throw from inside locked sections).
struct SpinGuard {
  Spinlock& lk;
  explicit SpinGuard(Spinlock& l) noexcept : lk(l) { lk.lock(); }
  ~SpinGuard() { lk.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;
};

}  // namespace detail

class ParPool;
struct ParTask;

/// Internal edge handle: (node index << 1) | complement bit.
using Edge = std::uint32_t;

inline constexpr Edge kTrueEdge = 0;   // regular edge to the terminal node
inline constexpr Edge kFalseEdge = 1;  // complemented edge to the terminal

/// Thrown when an operation would exceed the manager's node budget. The
/// reachability engines map this to the paper's "M.O." outcome. Carries the
/// budget and the in-use node count at the throw point so the failure can
/// be reported (JobResult) instead of reduced to a bare status.
class NodeBudgetExceeded : public std::runtime_error {
 public:
  explicit NodeBudgetExceeded(std::size_t budget, std::size_t in_use = 0,
                              bool injected = false)
      : std::runtime_error(
            std::string(injected ? "BDD allocation failure injected (budget "
                                 : "BDD node budget exceeded (") +
            std::to_string(budget) + " nodes, " + std::to_string(in_use) +
            " in use)"),
        budget_(budget),
        in_use_(in_use),
        injected_(injected) {}

  std::size_t budget() const noexcept { return budget_; }
  std::size_t inUse() const noexcept { return in_use_; }
  /// True when thrown by an installed fault plan rather than the budget.
  bool injected() const noexcept { return injected_; }

 private:
  std::size_t budget_;
  std::size_t in_use_;
  bool injected_;
};

/// Thrown out of a Manager operation when the installed interrupt check
/// (Manager::setInterruptCheck) decides the computation must stop — the
/// cooperative-cancellation signal of the job runner (src/run). The check
/// itself throws this, tagged with why; the reachability engines map
/// kDeadline to RunStatus::kTimeOut and kCancelled to RunStatus::kCancelled.
///
/// Safety: the throw points are the same as NodeBudgetExceeded's (node
/// allocation, i.e. mid-operation) plus GC entry and between reordering
/// swaps. In all cases the manager survives: partially built recursion
/// results become garbage the next GC reclaims, the computed cache is
/// cleared with it, and an aborted reorder leaves a consistent (if
/// intermediate) order with every live handle still denoting its function.
class Interrupted : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t { kDeadline, kCancelled };
  explicit Interrupted(Reason r)
      : std::runtime_error(r == Reason::kDeadline
                               ? "BDD operation interrupted: deadline"
                               : "BDD operation interrupted: cancelled"),
        reason_(r) {}
  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

/// Deterministic fault-injection schedule (Manager::setFaultPlan). Faults
/// fire at exact points of the manager's own deterministic clocks, so a
/// failing run replays bit-identically:
///  * `alloc_failures` — 1-based node-allocation counts (counted from the
///    moment the plan is installed) at which allocNode() throws
///    NodeBudgetExceeded with injected() == true, simulating an allocation
///    failure mid-operation;
///  * `spurious_interrupts` — 1-based interrupt-poll counts (the stride
///    poll in allocNode, plus every pollInterrupt() boundary: GC entry,
///    maybeGc, reorder swaps) at which the poll throws
///    Interrupted(kCancelled) even with no interrupt check installed.
/// With an empty plan the manager's behavior — including every OpStats
/// counter — is bit-identical to a manager that never heard of fault plans.
struct FaultPlan {
  std::vector<std::uint64_t> alloc_failures;
  std::vector<std::uint64_t> spurious_interrupts;

  bool empty() const noexcept {
    return alloc_failures.empty() && spurious_interrupts.empty();
  }
};

/// The degradation ladder's rungs, in escalation order (see
/// Manager::Config::PressureLadder). Reported through the kPressure event.
enum class PressureRung : std::uint8_t {
  kForcedGc,     ///< mark-and-sweep to refill the free list
  kCacheShrink,  ///< halve the computed cache (plus a GC)
  kReorder,      ///< emergency dynamic reordering (plus a GC)
};
/// "forced-gc" / "cache-shrink" / "reorder".
const char* to_string(PressureRung r) noexcept;

/// Public identity of a computed-cache operation family, used to break the
/// aggregate cache counters down per operation (OpStats::op_cache_hits /
/// op_cache_misses). All compose variants share one tag (the internal tag
/// space is open-ended per substituted variable); everything else maps 1:1
/// to its recursive kernel.
enum class OpTag : std::uint8_t {
  kAnd,
  kXor,
  kIte,
  kExists,
  kAndExists,
  kConstrain,
  kRestrict,
  kCofactor2,
  kCompose,
};
inline constexpr std::size_t kNumOpTags = 9;
/// "and" / "xor" / "ite" / "exists" / "and-exists" / "constrain" /
/// "restrict" / "cofactor2" / "compose".
const char* to_string(OpTag t) noexcept;

/// Cumulative operation counters (monotone; reset with Manager::resetStats).
/// `recursive_steps` counts every cache-missing recursion step of the apply
/// family — the unit behind the paper's "number of BDD operations" claims
/// (quadratic intersection, cdec-vs-BFV op counts).
struct OpStats {
  std::uint64_t top_ops = 0;          ///< public operation entry points
  std::uint64_t recursive_steps = 0;  ///< cache-missing recursion steps
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;    ///< computed-cache stores (cacheStore)
  std::uint64_t cache_collisions = 0; ///< stores that evicted a live entry
                                      ///  with a different key
  std::uint64_t nodes_created = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t reorder_runs = 0;         ///< completed reorder() invocations
  std::uint64_t reorder_swaps = 0;        ///< adjacent-level swaps performed
  std::uint64_t reorder_nodes_saved = 0;  ///< nodes reclaimed by reordering
  /// Per-operation split of cache_lookups: hits/misses indexed by OpTag, so
  /// a hit-rate regression in one kernel (say the re-parameterization
  /// cofactors) is visible even when the aggregate rate looks healthy.
  std::array<std::uint64_t, kNumOpTags> op_cache_hits{};
  std::array<std::uint64_t, kNumOpTags> op_cache_misses{};

  std::uint64_t opHits(OpTag t) const noexcept {
    return op_cache_hits[static_cast<std::size_t>(t)];
  }
  std::uint64_t opMisses(OpTag t) const noexcept {
    return op_cache_misses[static_cast<std::size_t>(t)];
  }

  /// Field-wise accumulation, used to fold the per-worker counter slots of
  /// a parallel region back into the manager's main stats. Totals stay
  /// exact in parallel mode; only the split across threads is scheduling-
  /// dependent.
  OpStats& operator+=(const OpStats& o) noexcept {
    top_ops += o.top_ops;
    recursive_steps += o.recursive_steps;
    cache_lookups += o.cache_lookups;
    cache_hits += o.cache_hits;
    cache_inserts += o.cache_inserts;
    cache_collisions += o.cache_collisions;
    nodes_created += o.nodes_created;
    gc_runs += o.gc_runs;
    reorder_runs += o.reorder_runs;
    reorder_swaps += o.reorder_swaps;
    reorder_nodes_saved += o.reorder_nodes_saved;
    for (std::size_t i = 0; i < kNumOpTags; ++i) {
      op_cache_hits[i] += o.op_cache_hits[i];
      op_cache_misses[i] += o.op_cache_misses[i];
    }
    return *this;
  }

  /// Field-wise difference `this - before`: the counters spent between two
  /// stats() snapshots. All counters are monotone, so `before` must be the
  /// earlier snapshot (no reset in between).
  OpStats since(const OpStats& before) const noexcept {
    OpStats d;
    d.top_ops = top_ops - before.top_ops;
    d.recursive_steps = recursive_steps - before.recursive_steps;
    d.cache_lookups = cache_lookups - before.cache_lookups;
    d.cache_hits = cache_hits - before.cache_hits;
    d.cache_inserts = cache_inserts - before.cache_inserts;
    d.cache_collisions = cache_collisions - before.cache_collisions;
    d.nodes_created = nodes_created - before.nodes_created;
    d.gc_runs = gc_runs - before.gc_runs;
    d.reorder_runs = reorder_runs - before.reorder_runs;
    d.reorder_swaps = reorder_swaps - before.reorder_swaps;
    d.reorder_nodes_saved = reorder_nodes_saved - before.reorder_nodes_saved;
    for (std::size_t i = 0; i < kNumOpTags; ++i) {
      d.op_cache_hits[i] = op_cache_hits[i] - before.op_cache_hits[i];
      d.op_cache_misses[i] = op_cache_misses[i] - before.op_cache_misses[i];
    }
    return d;
  }
};

/// A manager lifecycle event, delivered to the installed EventSink. What
/// `size_before` / `size_after` measure depends on the kind:
///  * kGc        — in-use nodes before / after the collection
///  * kReorder   — in-use nodes at reorder start (post-prologue GC) / end
///  * kCacheResize — computed-cache slots before / after
///  * kNodeBudget  — in-use nodes / the configured budget (the event fires
///                   immediately before NodeBudgetExceeded is thrown)
///  * kPressure    — in-use nodes before / after one governor rung (`rung`
///                   says which; see Config::PressureLadder)
struct ManagerEvent {
  enum class Kind : std::uint8_t {
    kGc,
    kReorder,
    kCacheResize,
    kNodeBudget,
    kPressure,
  };
  Kind kind = Kind::kGc;
  std::size_t size_before = 0;
  std::size_t size_after = 0;
  double seconds = 0.0;    ///< time spent inside the event (0 for kNodeBudget)
  bool automatic = false;  ///< fired by maybeGc() rather than an explicit call
  /// Which ladder rung ran; meaningful for kPressure only.
  PressureRung rung = PressureRung::kForcedGc;
};

/// "gc" / "reorder" / "cache-resize" / "node-budget" / "pressure".
const char* to_string(ManagerEvent::Kind k) noexcept;

/// Receiver for ManagerEvents (see Manager::setEventSink). Implementations
/// must not call back into the manager (the event fires mid-operation) and
/// should not throw.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void onManagerEvent(const ManagerEvent& e) = 0;
};

/// RAII handle to a BDD function. Copyable and movable; registers itself
/// with the owning Manager so garbage collection can mark from all live
/// handles. A default-constructed handle is "null" and owns nothing.
class Bdd {
 public:
  Bdd() noexcept = default;
  Bdd(const Bdd& o) noexcept;
  Bdd(Bdd&& o) noexcept;
  Bdd& operator=(const Bdd& o) noexcept;
  Bdd& operator=(Bdd&& o) noexcept;
  ~Bdd();

  bool isNull() const noexcept { return mgr_ == nullptr; }
  bool isTrue() const noexcept { return !isNull() && e_ == kTrueEdge; }
  bool isFalse() const noexcept { return !isNull() && e_ == kFalseEdge; }
  bool isConst() const noexcept { return !isNull() && (e_ >> 1) == 0; }

  /// Variable tested at the top (outermost) level of the function. This is
  /// a variable *index*; which variable sits on top can change when the
  /// manager reorders. Requires a non-constant function.
  unsigned topVar() const;
  /// Cofactors with respect to the top variable. Require non-constant.
  Bdd high() const;
  Bdd low() const;

  Bdd operator~() const;
  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }

  /// Canonical (structural) equality: equal iff same function.
  bool operator==(const Bdd& o) const noexcept {
    return mgr_ == o.mgr_ && e_ == o.e_;
  }
  bool operator!=(const Bdd& o) const noexcept { return !(*this == o); }

  /// f <= g in the implication order (f implies g).
  bool implies(const Bdd& o) const;

  // Convenience forwarders to the Manager (see there for semantics).
  Bdd exists(const Bdd& cube) const;
  Bdd forall(const Bdd& cube) const;
  Bdd constrain(const Bdd& c) const;
  Bdd restrict(const Bdd& c) const;
  Bdd cofactor(unsigned var, bool value) const;
  std::size_t nodeCount() const;
  double satCount(unsigned num_vars) const;

  Manager* manager() const noexcept { return mgr_; }
  /// Raw edge value, used for hashing/interning by higher layers. Two
  /// stability rules:
  ///  * Function-stability: a live edge keeps denoting the same function
  ///    across garbage collection AND across dynamic reordering (reorders
  ///    rewrite nodes in place), so memo tables keyed by raw() stay correct
  ///    as long as their entries are protected by handles.
  ///  * Structural instability: reordering changes what topVar()/high()/
  ///    low() observe for the same raw edge. Never cache structural facts
  ///    derived from raw() across a possible reorder point (maybeGc()).
  Edge raw() const noexcept { return e_; }

 private:
  friend class Manager;
  Bdd(Manager* m, Edge e) noexcept;
  void link() noexcept;
  void unlink() noexcept;

  Manager* mgr_ = nullptr;
  Edge e_ = kFalseEdge;
  Bdd* prev_ = nullptr;  // intrusive registry for GC marking
  Bdd* next_ = nullptr;
};

/// The BDD manager: node store, unique table, computed cache, GC.
class Manager {
 public:
  struct Config {
    /// Hard ceiling on allocated nodes; 0 = unlimited. Exceeding it throws
    /// NodeBudgetExceeded (after a GC attempt).
    std::size_t max_nodes = 0;
    /// log2 of computed-cache slots.
    unsigned cache_bits = 18;
    /// Initial GC threshold (in-use nodes); grows geometrically when GC
    /// reclaims too little.
    std::size_t gc_threshold = 1U << 16;
    /// Automatic dynamic reordering: when true, maybeGc() (the engines'
    /// documented safe point) runs `reorder_method` whenever the in-use
    /// node count crosses a threshold that starts at `reorder_threshold`
    /// and grows geometrically (by `reorder_growth`) after each run.
    bool auto_reorder = false;
    ReorderMethod reorder_method = ReorderMethod::kSift;
    std::size_t reorder_threshold = 1U << 13;
    double reorder_growth = 2.0;
    /// Sifting abandons a direction when the in-use node count exceeds
    /// this factor of the size at sift start.
    double reorder_max_growth = 1.2;
    /// Memory-pressure governor: a degradation ladder run when the node
    /// budget trips inside a public operation, instead of letting
    /// NodeBudgetExceeded escape immediately. The failed operation's
    /// partial results are unwound (they are unreachable garbage by
    /// design), one rung of relief runs — forced GC, then GC + computed-
    /// cache shrink, then GC + emergency reorder — and the operation is
    /// retried from its (handle-protected) operands; only when every rung
    /// is spent does the exception propagate. Each rung fires a kPressure
    /// event. Off by default: the disabled path is bit-identical in every
    /// OpStats counter to a build without the governor.
    struct PressureLadder {
      bool enabled = false;
      bool forced_gc = true;
      bool shrink_cache = true;
      /// Cache shrink halves cache_bits per rung but never below this.
      unsigned min_cache_bits = 12;
      /// Emergency reorder uses Config::reorder_method.
      bool emergency_reorder = true;
    };
    PressureLadder pressure_ladder;
    /// Worker threads for intra-operation parallelism. 1 (the default)
    /// keeps every code path bit-identical to the historical sequential
    /// manager — same OpStats, same structures, no locks taken. Values > 1
    /// spawn `threads - 1` pool workers (clamped to kMaxThreads) and run
    /// the apply-family kernels task-parallel; results (BDD roots, state
    /// counts) are identical, op counters are totals-exact but the
    /// split across cache/step counters is schedule-dependent.
    unsigned threads = 1;
  };

  /// Upper clamp on Config::threads (shard count and deque bookkeeping are
  /// sized for this).
  static constexpr unsigned kMaxThreads = 64;

  /// Monotone counters of the parallel machinery, for the
  /// `bfvr_bdd_par_*` metrics. All zero when threads == 1.
  struct ParCounters {
    std::uint64_t tasks_spawned = 0;     ///< tasks forked to the pool
    std::uint64_t tasks_stolen = 0;      ///< tasks executed by a non-owner
    std::uint64_t shard_contention = 0;  ///< contended shard/alloc lock waits
    std::uint64_t cache_races = 0;       ///< lossy concurrent-cache races
  };

  explicit Manager(unsigned num_vars);
  Manager(unsigned num_vars, Config cfg);
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- constants and variables -------------------------------------------
  Bdd one() { return make(kTrueEdge); }
  Bdd zero() { return make(kFalseEdge); }
  /// Projection function of variable `idx` (extends the variable count if
  /// needed).
  Bdd var(unsigned idx);
  /// Negated projection function.
  Bdd nvar(unsigned idx) { return ~var(idx); }
  unsigned numVars() const noexcept { return num_vars_; }

  // ---- core operations ----------------------------------------------------
  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd andB(const Bdd& f, const Bdd& g);
  Bdd orB(const Bdd& f, const Bdd& g);
  Bdd xorB(const Bdd& f, const Bdd& g);
  Bdd xnorB(const Bdd& f, const Bdd& g) { return ~xorB(f, g); }

  /// Existential quantification over all variables of the positive cube.
  Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification over all variables of the positive cube.
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// exists(vars(cube), f & g) without building f & g — the relational
  /// product at the heart of characteristic-function image computation.
  Bdd andExists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Coudert–Madre generalized cofactor ("constrain"): agrees with f on c,
  /// and constrain(f,c) & c == f & c. Requires c != 0.
  Bdd constrain(const Bdd& f, const Bdd& c);
  /// Sibling-substitution "restrict": like constrain but never grows the
  /// result's support beyond f's. Requires c != 0.
  Bdd restrict(const Bdd& f, const Bdd& c);
  /// Shannon cofactor with respect to a single variable.
  Bdd cofactor(const Bdd& f, unsigned var, bool value);
  /// Both Shannon cofactors {f|var=0, f|var=1} from ONE traversal of f. The
  /// fused kernel caches the pair under its own tag, so the second cofactor
  /// is free instead of a second full walk — the hot path of the §2.6
  /// re-parameterization loop, which needs both slices of every component.
  /// Results are bit-identical to two cofactor() calls (both canonical).
  std::pair<Bdd, Bdd> cofactor2(const Bdd& f, unsigned var);

  /// Substitute g for variable `var` in f.
  Bdd compose(const Bdd& f, unsigned var, const Bdd& g);
  /// Simultaneous substitution: map[i] replaces variable i. Null entries
  /// (or entries past the end) mean identity.
  Bdd vectorCompose(const Bdd& f, std::span<const Bdd> map);
  /// Variable renaming: variable i becomes perm[i]. perm must be injective
  /// on the support of f.
  Bdd permute(const Bdd& f, std::span<const unsigned> perm);

  // ---- dynamic variable reordering (reorder.cpp) ---------------------------
  /// Reorder now with the configured (or given) method. Safe at the same
  /// points as gc(): between operations, never during one. Live handles
  /// keep their functions and their raw edge values; only levels (and hence
  /// topVar() results and node counts) change.
  void reorder() { reorder(cfg_.reorder_method); }
  void reorder(ReorderMethod method);
  /// Swap the variables at `level` and `level + 1` — one reordering step,
  /// exposed for tests and custom reordering loops.
  void swapLevels(unsigned level);
  /// Install a complete order: order[l] = variable to place at level l.
  /// Must be a permutation of 0 .. numVars()-1. Realized by adjacent swaps,
  /// so the same safety rules as reorder() apply.
  void setVarOrder(std::span<const unsigned> order);
  /// Current level of a variable / variable at a level.
  unsigned levelOfVar(unsigned var) const { return var2level_.at(var); }
  unsigned varAtLevel(unsigned level) const { return level2var_.at(level); }
  /// Variables from the top level to the bottom — the current order.
  std::vector<unsigned> currentOrder() const;
  /// Tie variables (currently at adjacent levels) into a group that every
  /// reordering method moves as one block.
  void bindVarGroup(std::span<const unsigned> vars);
  void clearVarGroups();
  /// In-use node count that will trigger the next automatic reorder.
  std::size_t nextAutoReorderAt() const noexcept { return next_reorder_at_; }

  // ---- inspection ----------------------------------------------------------
  /// Variables f depends on, sorted by variable index (not by level).
  std::vector<unsigned> support(const Bdd& f);
  /// Positive cube of the support variables.
  Bdd supportCube(const Bdd& f);
  /// Positive cube over the given variables.
  Bdd cube(std::span<const unsigned> vars);
  /// Number of minterms over `num_vars` variables.
  double satCount(const Bdd& f, unsigned num_vars);
  /// Distinct nodes reachable from f (including the terminal), à la
  /// Cudd_DagSize.
  std::size_t nodeCount(const Bdd& f);
  /// Distinct nodes reachable from any of the given functions — the paper's
  /// "shared size" of a Boolean functional vector.
  std::size_t sharedNodeCount(std::span<const Bdd> fs);
  /// Evaluate under a total assignment (values[i] = value of variable i).
  bool eval(const Bdd& f, const std::vector<bool>& values);
  /// One satisfying assignment as var->{0,1,-1=dontcare}; f must not be 0.
  std::vector<signed char> pickCube(const Bdd& f);

  // ---- resources -----------------------------------------------------------
  /// Force a mark-and-sweep collection now.
  void gc();
  /// Run GC if the in-use count crossed the adaptive threshold; with
  /// Config::auto_reorder this is also the trigger point for automatic
  /// dynamic reordering. Safe to call between operations only (never during
  /// one — handles protect operands, but intermediate recursion results are
  /// unprotected by design).
  void maybeGc();
  /// Nodes currently allocated and not on the free list (live + garbage).
  std::size_t inUseNodes() const noexcept { return in_use_; }
  /// Reset-not-destroy, for warm reuse of a manager across jobs (the
  /// serving layer's per-worker manager cache). Uninstalls the interrupt
  /// check, fault plan, event sink and reorder groups, collects everything,
  /// and — when nothing is live — returns the manager to the pristine
  /// zero-variable state while KEEPING the node store and computed-cache
  /// allocations, so the next job skips the cold-start of growing them.
  /// Counters, peaks, GC/reorder thresholds and the variable order all
  /// reset, so a job on a reused manager is bit-identical to one on a
  /// fresh manager with the same config. Returns false — leaving the
  /// manager untouched apart from the uninstalled hooks and the GC — when
  /// live handles still reference nodes (the caller leaked; destroy the
  /// manager instead).
  bool resetForReuse();
  /// Swap in a new configuration. Only legal on a pristine manager (zero
  /// variables, no live handles — i.e. right after a successful
  /// resetForReuse() or on a freshly constructed Manager(0)); returns
  /// false otherwise. Resizes the computed cache when cache_bits differs.
  bool reconfigure(const Config& cfg);
  /// Exact number of nodes reachable from live handles (runs a mark pass).
  std::size_t liveNodeCount();
  /// High-water mark of inUseNodes() since construction / resetPeak().
  std::size_t peakNodes() const noexcept { return peak_nodes_; }
  void resetPeak() noexcept { peak_nodes_ = in_use_; }

  const OpStats& stats() const noexcept { return stats_; }
  /// Reset all operation counters to zero. Note that the peak node count is
  /// NOT part of OpStats; it is reset separately via resetPeak().
  void resetStats() noexcept { stats_ = OpStats{}; }

  // ---- parallelism (par.cpp) ----------------------------------------------
  /// Configured thread count (1 = sequential).
  unsigned threads() const noexcept { return cfg_.threads; }
  /// Run the given bodies concurrently on the manager's pool, returning
  /// when all have finished. The first body runs on the calling thread;
  /// the rest are forked as pool tasks. Bodies may perform full public
  /// manager operations (apply family, cofactors, handle construction) but
  /// must only touch PRE-EXISTING variables (no ensureVar growth) and must
  /// not call gc()/reorder()/checkpoint entry points. With threads == 1
  /// (or when already inside a parallel region) the bodies simply run
  /// sequentially in order. The first exception thrown by any body is
  /// rethrown after all bodies have completed.
  void parallelInvoke(std::span<const std::function<void()>> fns);
  /// Snapshot of the parallel-machinery counters (all zero sequentially).
  ParCounters parCounters() const noexcept;
  /// Tasks currently forked and not yet joined — 0 at every public-API
  /// boundary by construction (fork/join discipline). Test hook.
  std::size_t parPendingTasks() const noexcept;

  /// Install (or clear, with nullptr) the sink that receives GC, reorder,
  /// cache-resize and node-budget events. The manager does not own the
  /// sink; it must outlive the registration. Near-zero cost when unset.
  void setEventSink(EventSink* sink) noexcept { sink_ = sink; }
  EventSink* eventSink() const noexcept { return sink_; }

  /// Cooperative cancellation/deadline hook. The callback is polled at
  /// node-allocation (every kInterruptStride allocations), GC and
  /// reordering boundaries; to stop the computation it throws Interrupted
  /// (tagged with the reason), which unwinds out of the public operation.
  /// The callback must not call back into the manager. Pass a default-
  /// constructed function to uninstall. Near-zero cost when unset; op
  /// counters (OpStats) are never affected by polling, so interrupted and
  /// uninterrupted runs stay bit-identical in their counters.
  using InterruptCheck = std::function<void()>;
  void setInterruptCheck(InterruptCheck fn) {
    interrupt_check_ = std::move(fn);
    interrupt_tick_ = 0;
  }
  bool hasInterruptCheck() const noexcept {
    return static_cast<bool>(interrupt_check_);
  }
  /// Invoke the check now (no-op without one) — an extra poll point for
  /// higher layers with long manager-free stretches. Also a fault-injection
  /// point: with a plan armed, a scheduled spurious interrupt fires here.
  void pollInterrupt() {
    if (fault_armed_) faultPollTick();
    if (interrupt_check_) interrupt_check_();
  }
  /// Install a deterministic fault plan (see FaultPlan); pass {} to disarm.
  /// Schedules are consumed in sorted order against clocks that start at
  /// zero when the plan is installed. Every recovery layer above — the
  /// pressure ladder, the engines' M.O. fold, the job runner's retry
  /// escalation — can be driven through its failure paths this way, on an
  /// exact, replayable step count.
  void setFaultPlan(FaultPlan plan);
  bool hasFaultPlan() const noexcept { return fault_armed_; }
  /// Faults fired since the last setFaultPlan (allocation failures plus
  /// spurious interrupts).
  std::uint64_t faultsInjected() const noexcept { return faults_injected_; }
  /// Node allocations between two interrupt polls (the poll granularity —
  /// and the cancel-latency unit — of a running apply chain).
  static constexpr std::uint32_t kInterruptStride = 1024;

  /// Resize the computed cache to 2^bits slots, dropping all entries.
  /// Emits a kCacheResize event.
  void resizeCache(unsigned bits);
  /// Current number of computed-cache slots.
  std::size_t cacheSlots() const noexcept {
    return (par_enabled_ ? pcache_sets_ : cache_keys_.size()) * kCacheWays;
  }

  /// Graphviz dump of the given (labelled) functions, for debugging & docs.
  std::string toDot(std::span<const Bdd> fs,
                    std::span<const std::string> labels);

 private:
  friend class Bdd;
  friend class ParPool;  // workers bind their stats slot and run tasks

  struct Node {
    std::uint32_t var;   // variable index (NOT level); kTermVar for the
                         // terminal, kFreeVar if on the free list
    Edge high;           // regular by canonical-form invariant
    Edge low;            // may be complemented
    std::uint32_t next;  // unique-subtable chain / free list link
    std::uint32_t mark;  // GC mark epoch
  };

  /// Per-variable unique table: holds exactly the nodes labelled with one
  /// variable, so the adjacent-level swap can enumerate a level in O(level
  /// size) instead of scanning the node store.
  struct SubTable {
    std::vector<std::uint32_t> buckets;  // power-of-two, kNil-terminated
    std::size_t count = 0;               // nodes currently in this subtable
  };

  /// Set associativity of the computed cache. Replacement within a set is
  /// generation-based aging: hits refresh an entry's generation, stores
  /// evict the stalest way, so a hot entry survives collisions that the old
  /// direct-mapped cache would have evicted on immediately.
  static constexpr std::size_t kCacheWays = 4;
  /// Inserts between two bumps of the cache generation counter.
  static constexpr std::uint32_t kCacheGenPeriod = 4096;
  /// cacheFind() miss sentinel.
  static constexpr std::size_t kCacheMiss = ~std::size_t{0};

  /// One way's key. The cache is split structure-of-arrays so the probe —
  /// the only part every recursive step pays — stays on a single cache
  /// line: four 16-byte keys fill exactly one 64-byte CacheKeySet.
  struct CacheKey {
    Edge a = 0, b = 0, c = 0;
    std::uint32_t op = 0;  // 0 = empty way
  };
  /// All keys of one set, line-aligned so a whole-set probe is one touch.
  struct alignas(64) CacheKeySet {
    CacheKey way[kCacheWays];
  };
  /// Results live apart from the keys: they are read on hits only, and a
  /// dual-result operation (cofactor2) fills both fields.
  struct CacheResult {
    Edge result = 0;
    Edge result2 = 0;
  };
  /// One set's results and aging stamps, packed into a second line so a
  /// hit (result read + gen refresh) and an insert each touch exactly one
  /// line beyond the key probe. Gens are mod-256 distances from the
  /// current generation; staleness comparisons survive the wrap-around.
  struct alignas(64) CacheSetData {
    CacheResult result[kCacheWays];
    std::uint8_t gen[kCacheWays];
  };

  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFU;
  static constexpr std::uint32_t kFreeVar = 0xFFFFFFFEU;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;

  // Operation tags for the computed cache.
  enum Op : std::uint32_t {
    kOpNone = 0,
    kOpAnd,
    kOpXor,
    kOpIte,
    kOpExists,
    kOpAndExists,
    kOpConstrain,
    kOpRestrict,
    kOpCofactor2,   // key: (f, var); dual result
    kOpComposeBase  // kOpComposeBase + var; must stay last (open-ended)
  };

  /// Stats bucket of an internal op tag (compose variants collapse to one).
  static OpTag tagOf(std::uint32_t op) noexcept {
    switch (op) {
      case kOpAnd:
        return OpTag::kAnd;
      case kOpXor:
        return OpTag::kXor;
      case kOpIte:
        return OpTag::kIte;
      case kOpExists:
        return OpTag::kExists;
      case kOpAndExists:
        return OpTag::kAndExists;
      case kOpConstrain:
        return OpTag::kConstrain;
      case kOpRestrict:
        return OpTag::kRestrict;
      case kOpCofactor2:
        return OpTag::kCofactor2;
      default:
        return OpTag::kCompose;
    }
  }

  // -- edge helpers ----------------------------------------------------------
  static Edge negate(Edge e) noexcept { return e ^ 1U; }
  static bool isCompl(Edge e) noexcept { return (e & 1U) != 0; }
  static Edge regular(Edge e) noexcept { return e & ~1U; }
  static std::uint32_t index(Edge e) noexcept { return e >> 1; }
  /// Variable labelling the top node (kTermVar for constants).
  std::uint32_t varOf(Edge e) const noexcept { return nodes_[index(e)].var; }
  /// Current level of the top node. The sentinels kTermVar/kFreeVar map to
  /// themselves, so constants still compare below every real level.
  std::uint32_t level(Edge e) const noexcept {
    const std::uint32_t v = nodes_[index(e)].var;
    return v < var2level_.size() ? var2level_[v] : v;
  }
  bool isConstEdge(Edge e) const noexcept { return index(e) == 0; }
  // Cofactors at the node's own level, with complement pushed through.
  Edge highOf(Edge e) const noexcept {
    const Node& n = nodes_[index(e)];
    return n.high ^ (e & 1U);
  }
  Edge lowOf(Edge e) const noexcept {
    const Node& n = nodes_[index(e)];
    return n.low ^ (e & 1U);
  }

  // -- node store ------------------------------------------------------------
  Edge mkNode(std::uint32_t var, Edge high, Edge low);
  std::uint32_t allocNode();
  void ensureVar(unsigned idx);
  void growSubTable(std::uint32_t var);
  std::size_t subSlot(const SubTable& st, Edge high, Edge low) const noexcept;

  // -- dynamic reordering (reorder.cpp) ---------------------------------------
  // Reordering runs with exact per-node reference counts (built on entry,
  // discarded on exit) so dead nodes are reclaimed swap-by-swap and in_use_
  // is the exact live size sifting optimizes.
  void reorderPrologue();
  void reorderDone();
  void buildRefs();
  void edgeRef(Edge e) noexcept { ++refs_[index(e)]; }
  void edgeDeref(Edge e);
  void unlinkFromSubtable(std::uint32_t i);
  Edge swapMkNode(std::uint32_t var, Edge high, Edge low);
  void swapRaw(unsigned level);
  std::vector<std::uint32_t> blockSizes() const;
  void swapBlockWithNext(std::vector<std::uint32_t>& sizes, unsigned i);
  void siftPass();
  void siftBlock(std::uint32_t top_var);
  void windowPass(unsigned window);

  // -- computed cache ---------------------------------------------------------
  /// Way of `ks` whose key equals (a,b,c,op), or kCacheWays if absent.
  static std::size_t probeSet(const CacheKeySet& ks, Edge a, Edge b, Edge c,
                              std::uint32_t op) noexcept;
  /// Probe the set of (op,a,b,c); on a hit refreshes the way's generation
  /// and returns its flat index (set * kCacheWays + way) into the result /
  /// gen arrays, else kCacheMiss. Counts aggregate and per-tag hit/miss.
  std::size_t cacheFind(std::uint32_t op, Edge a, Edge b, Edge c);
  /// Insert (op,a,b,c) -> (r, r2), evicting the stalest way of a full set.
  void cacheInsert(std::uint32_t op, Edge a, Edge b, Edge c, Edge r, Edge r2);
  bool cacheLookup(std::uint32_t op, Edge a, Edge b, Edge c, Edge& out) {
    if (par_enabled_) {
      Edge out2;
      return pcacheLookup(op, a, b, c, out, out2);
    }
    const std::size_t i = cacheFind(op, a, b, c);
    if (i == kCacheMiss) return false;
    out = cache_data_[i / kCacheWays].result[i % kCacheWays].result;
    return true;
  }
  bool cacheLookup2(std::uint32_t op, Edge a, Edge b, Edge c, Edge& out,
                    Edge& out2) {
    if (par_enabled_) return pcacheLookup(op, a, b, c, out, out2);
    const std::size_t i = cacheFind(op, a, b, c);
    if (i == kCacheMiss) return false;
    const CacheResult& r = cache_data_[i / kCacheWays].result[i % kCacheWays];
    out = r.result;
    out2 = r.result2;
    return true;
  }
  void cacheStore(std::uint32_t op, Edge a, Edge b, Edge c, Edge r) {
    if (par_enabled_) {
      pcacheInsert(op, a, b, c, r, 0);
      return;
    }
    cacheInsert(op, a, b, c, r, 0);
  }
  void cacheStore2(std::uint32_t op, Edge a, Edge b, Edge c, Edge r, Edge r2) {
    if (par_enabled_) {
      pcacheInsert(op, a, b, c, r, r2);
      return;
    }
    cacheInsert(op, a, b, c, r, r2);
  }

  // -- concurrent computed cache (threads > 1 only) ---------------------------
  /// One set of the parallel computed cache: the same 4-way aging design as
  /// the sequential cache, published per-set through a seqlock. Writers
  /// bump `ver` to odd with a CAS (losing the CAS skips the insert — the
  /// cache is lossy by contract), fill the ways with relaxed stores, and
  /// release-publish `ver` back to even. Readers validate `ver` around
  /// relaxed payload loads; a torn read is counted as a race and reported
  /// as a miss. Node-field visibility for cached edges rides the acquire
  /// load of `ver` paired with the writer's release store.
  struct alignas(64) PCacheSet {
    std::atomic<std::uint32_t> ver;
    std::atomic<std::uint8_t> gen[kCacheWays];
    std::atomic<std::uint32_t> op[kCacheWays];
    std::atomic<Edge> a[kCacheWays];
    std::atomic<Edge> b[kCacheWays];
    std::atomic<Edge> c[kCacheWays];
    std::atomic<Edge> r[kCacheWays];
    std::atomic<Edge> r2[kCacheWays];
  };
  bool pcacheLookup(std::uint32_t op, Edge a, Edge b, Edge c, Edge& out,
                    Edge& out2);
  void pcacheInsert(std::uint32_t op, Edge a, Edge b, Edge c, Edge r, Edge r2);
  /// Drop every parallel-cache entry (sequential safe points only).
  void pcacheClear() noexcept;

  // -- events ------------------------------------------------------------------
  /// Forward an event to the installed sink (no-op without one). The
  /// `automatic` flag comes from auto_event_, set around maybeGc() work.
  void emitEvent(ManagerEvent::Kind kind, std::size_t before,
                 std::size_t after, double seconds,
                 PressureRung rung = PressureRung::kForcedGc);

  // -- pressure governor & fault injection -------------------------------------
  /// Run the `rung`-th enabled ladder rung (0-based escalation order);
  /// false when the ladder is spent. Safe only at an operation boundary:
  /// every live function must be reachable from a handle.
  bool relieve(unsigned rung);
  /// Fault clocks (manager.cpp); both throw when a scheduled point fires.
  void faultAllocTick();
  void faultPollTick();

  /// Retry wrapper around a public operation body. With the ladder enabled
  /// it catches NodeBudgetExceeded at the operation boundary — where the
  /// operands are handle-protected and the failed attempt's partial results
  /// are collectible garbage — runs one relief rung per attempt, and
  /// re-runs the body. Nested public entries (compose inside permute, ...)
  /// run bare: only the outermost operation owns the retry loop.
  template <typename F>
  auto withPressure(F&& f) {
    // Public operations issued from inside a parallel region (the bodies of
    // parallelInvoke run on pool workers) must run bare: the retry loop
    // mutates manager-global state and its relief rungs (gc, reorder) are
    // only legal at sequential points. The outermost operation that OPENED
    // the region still owns a retry loop — tasks are joined before its
    // region unwinds, so relief runs quiesced.
    if (in_par_region_.load(std::memory_order_relaxed)) return f();
    if (!cfg_.pressure_ladder.enabled || in_pressure_op_) {
      if (!par_enabled_) return f();
      // Bare entry on a parallel manager: no relief rungs, but capacity
      // exhaustion inside a region must still grow-and-retry here — the
      // sequential allocator would simply have grown the vector.
      for (;;) {
        try {
          return f();
        } catch (const detail::ParCapacityExhausted&) {
          growParCapacity();
        }
      }
    }
    struct Scope {  // exception-safe reset of the outermost-op flag
      bool& flag;
      explicit Scope(bool& fl) : flag(fl) { flag = true; }
      ~Scope() { flag = false; }
    } scope(in_pressure_op_);
    for (unsigned rung = 0;;) {
      try {
        return f();
      } catch (const NodeBudgetExceeded&) {
        if (!relieve(rung)) throw;
        ++rung;
      } catch (const detail::ParCapacityExhausted&) {
        growParCapacity();  // does not consume a relief rung
      }
    }
  }

  // -- recursive kernels (raw edges; no handle churn) -------------------------
  Edge andRec(Edge f, Edge g);
  Edge xorRec(Edge f, Edge g);
  Edge iteRec(Edge f, Edge g, Edge h);
  Edge existsRec(Edge f, Edge cube);
  Edge andExistsRec(Edge f, Edge g, Edge cube);
  Edge constrainRec(Edge f, Edge c);
  Edge restrictRec(Edge f, Edge c);
  Edge composeRec(Edge f, std::uint32_t var, Edge g);
  /// Fused dual cofactor: returns f|var=0 and writes f|var=1 to `hi`.
  Edge cofactor2Rec(Edge f, std::uint32_t var, Edge& hi);

  // -- task-parallel kernels (par.cpp; threads > 1 only) ----------------------
  // Semantically identical twins of the sequential kernels above that fork
  // the LOW Shannon branch as a pool task while the caller descends the
  // HIGH branch inline, when `depth` is above water and the pool is hungry.
  // Node-by-node results are identical (mkNode is canonicalizing and the
  // unique table is shared); only op-counter *distribution* and cache
  // population order differ from the sequential kernels.
  Edge andParRec(Edge f, Edge g, unsigned depth);
  Edge xorParRec(Edge f, Edge g, unsigned depth);
  Edge iteParRec(Edge f, Edge g, Edge h, unsigned depth);
  Edge existsParRec(Edge f, Edge cube, unsigned depth);
  Edge andExistsParRec(Edge f, Edge g, Edge cube, unsigned depth);
  Edge cofactor2ParRec(Edge f, std::uint32_t var, Edge& hi, unsigned depth);
  /// Dispatch one forked task (called by pool workers and by join helping).
  void runParTask(ParTask& t);
  /// Fork only above this recursion depth: below it subproblems are too
  /// small to amortize a deque push + steal.
  static constexpr unsigned kParMaxForkDepth = 24;

  /// RAII bracket around the parallel execution of one public operation:
  /// reserves node-store headroom (nodes_ must not reallocate while workers
  /// read it lock-free), flips in_par_region_, and on exit folds the
  /// workers' OpStats slots into stats_. Inert when the manager is
  /// sequential or the region is already open (nested public ops issued by
  /// parallelInvoke bodies). Defined in par.cpp.
  struct ParRegion {
    Manager* m = nullptr;
    explicit ParRegion(Manager& mgr);
    ~ParRegion();
    ParRegion(const ParRegion&) = delete;
    ParRegion& operator=(const ParRegion&) = delete;
  };

  void setupParallel();
  void ensureParHeadroom();
  /// Sequential-point response to ParCapacityExhausted: double the node
  /// store's reserved capacity (bounded by max_nodes when set).
  void growParCapacity();
  void mergeParStats() noexcept;
  Edge mkNodePar(std::uint32_t var, Edge high, Edge low);
  std::uint32_t allocNodePar();

  /// Counter sink for the current thread: pool workers write their private
  /// slot (bound once at worker start), every other thread writes stats_
  /// directly. Sequential managers always take the stats_ arm, so their
  /// counter behavior is bit-identical to the historical code.
  OpStats& curStats() noexcept {
    OpStats* s = tl_stats_;
    return s != nullptr ? *s : stats_;
  }

  // -- GC ----------------------------------------------------------------------
  void markFrom(Edge e);

  Bdd make(Edge e) noexcept { return Bdd(this, e); }
  Edge requireSameManager(const Bdd& b) const;

  unsigned num_vars_;
  Config cfg_;
  std::vector<Node> nodes_;
  std::vector<SubTable> subtables_;        // unique table, one per variable
  std::vector<std::uint32_t> var2level_;   // variable -> level
  std::vector<std::uint32_t> level2var_;   // level -> variable
  std::vector<std::uint32_t> group_of_var_;  // reorder group id or kNil
  std::uint32_t next_group_ = 0;
  bool reordering_ = false;
  std::size_t next_reorder_at_ = 0;        // auto-reorder trigger
  std::vector<std::uint32_t> refs_;        // refcounts, valid while reordering_
  std::vector<std::uint32_t> rewrite_list_;
  std::vector<std::uint32_t> deref_stack_;
  std::uint32_t free_list_ = kNil;
  std::size_t in_use_ = 0;
  std::size_t peak_nodes_ = 0;
  std::size_t gc_threshold_ = 0;
  std::uint32_t mark_epoch_ = 0;
  std::vector<CacheKeySet> cache_keys_;      // one key line per set
  std::vector<CacheSetData> cache_data_;     // one result/gen line per set
  std::uint32_t cache_set_mask_ = 0;         // (number of sets) - 1
  std::uint32_t cache_gen_ = 1;              // current aging generation
  std::uint32_t cache_gen_tick_ = 0;         // inserts since the last bump
  OpStats stats_;
  InterruptCheck interrupt_check_;
  std::uint32_t interrupt_tick_ = 0;  // allocations since the last poll
  bool in_pressure_op_ = false;  // inside a withPressure retry loop
  bool fault_armed_ = false;     // fault_plan_ has unconsumed points
  FaultPlan fault_plan_;         // sorted schedules, consumed by the cursors
  std::uint64_t fault_alloc_count_ = 0;  // allocations since plan install
  std::uint64_t fault_poll_count_ = 0;   // interrupt polls since install
  std::size_t fault_alloc_cursor_ = 0;
  std::size_t fault_poll_cursor_ = 0;
  std::uint64_t faults_injected_ = 0;
  EventSink* sink_ = nullptr;
  bool auto_event_ = false;  // inside maybeGc(): events are "automatic"
  Bdd* handles_ = nullptr;  // head of intrusive handle registry
  std::vector<std::uint32_t> mark_stack_;

  // -- parallel machinery (all unused / null when threads == 1) --------------
  /// Unique-table shard count; shard of variable v is v & (kNumShards - 1).
  static constexpr std::size_t kNumShards = 64;
  struct alignas(64) ShardLock {
    detail::Spinlock lk;
  };
  bool par_enabled_ = false;                  // cfg_.threads > 1
  std::unique_ptr<ParPool> pool_;             // workers + deques (par.hpp)
  std::unique_ptr<ShardLock[]> shard_locks_;  // kNumShards, keyed by var
  /// Parallel-mode interrupt stride clock: a monotonic allocation counter
  /// shared by all threads, polled OUTSIDE alloc_lock_ so a slow user
  /// callback never stalls other allocating threads (allocNodePar).
  std::atomic<std::uint32_t> par_interrupt_tick_{0};
  detail::Spinlock alloc_lock_;    // free list / node store / fault clocks
  detail::Spinlock handle_lock_;   // Bdd handle registry (link/unlink)
  detail::Spinlock event_lock_;    // serializes sink callbacks in par mode
  std::unique_ptr<PCacheSet[]> pcache_;  // concurrent computed cache
  std::size_t pcache_sets_ = 0;
  std::uint32_t pcache_mask_ = 0;
  std::atomic<std::uint32_t> pcache_gen_{1};   // shared aging generation
  std::atomic<std::uint64_t> pcache_races_{0}; // lossy publish/probe races
  std::atomic<bool> in_par_region_{false};     // a public op is running wide
  /// Per-thread counter sink (see curStats) and cache-aging tick. Static
  /// thread_locals: a pool worker serves exactly one manager, so the slot
  /// binding is unambiguous; non-worker threads leave tl_stats_ null.
  inline static thread_local OpStats* tl_stats_ = nullptr;
  inline static thread_local std::uint32_t tl_cache_tick_ = 0;
};

// ---------------------------------------------------------------------------
// Computed-cache fast path. Defined inline: these run once per recursive
// step of every kernel, and the call overhead is measurable there.
// ---------------------------------------------------------------------------

/// Index of the way whose 16-byte key equals (a,b,c,op), or kCacheWays.
/// The keys of a set share one 64-byte line (CacheKeySet is line-aligned),
/// so the whole probe is a single memory touch; with SSE2 each way is one
/// 128-bit compare instead of four compare-and-branch pairs.
inline std::size_t Manager::probeSet(const CacheKeySet& ks, Edge a, Edge b,
                                     Edge c, std::uint32_t op) noexcept {
#if defined(__SSE2__)
  const __m128i probe =
      _mm_setr_epi32(static_cast<int>(a), static_cast<int>(b),
                     static_cast<int>(c), static_cast<int>(op));
  for (std::size_t w = 0; w < kCacheWays; ++w) {
    const __m128i key =
        _mm_load_si128(reinterpret_cast<const __m128i*>(&ks.way[w]));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(key, probe)) == 0xFFFF) return w;
  }
#else
  for (std::size_t w = 0; w < kCacheWays; ++w) {
    const CacheKey& k = ks.way[w];
    if (k.op == op && k.a == a && k.b == b && k.c == c) return w;
  }
#endif
  return kCacheWays;
}

inline std::size_t Manager::cacheFind(std::uint32_t op, Edge a, Edge b,
                                      Edge c) {
  ++stats_.cache_lookups;
  const std::size_t set =
      detail::hash3((static_cast<std::uint64_t>(op) << 32) | a, b, c) &
      cache_set_mask_;
#if defined(__SSE2__)
  // A hit needs the result line next; start that fetch under the probe.
  _mm_prefetch(reinterpret_cast<const char*>(&cache_data_[set]), _MM_HINT_T0);
#endif
  const std::size_t w = probeSet(cache_keys_[set], a, b, c, op);
  if (w != kCacheWays) {
    // Refresh the aging stamp: a hot entry outlives set pressure.
    cache_data_[set].gen[w] = static_cast<std::uint8_t>(cache_gen_);
    ++stats_.cache_hits;
    ++stats_.op_cache_hits[static_cast<std::size_t>(tagOf(op))];
    return set * kCacheWays + w;
  }
  ++stats_.op_cache_misses[static_cast<std::size_t>(tagOf(op))];
  return kCacheMiss;
}

inline void Manager::cacheInsert(std::uint32_t op, Edge a, Edge b, Edge c,
                                 Edge r, Edge r2) {
  ++stats_.cache_inserts;
  if (++cache_gen_tick_ >= kCacheGenPeriod) {
    cache_gen_tick_ = 0;
    ++cache_gen_;
  }
  const std::size_t set =
      detail::hash3((static_cast<std::uint64_t>(op) << 32) | a, b, c) &
      cache_set_mask_;
  CacheKeySet& ks = cache_keys_[set];
  CacheSetData& data = cache_data_[set];
  const std::uint8_t now = static_cast<std::uint8_t>(cache_gen_);
  // Victim: the first empty way, else the stalest age (a mod-256 distance
  // from the current generation, so staleness survives counter wrap).
  // No match probe: stores only follow a missed lookup of the same key,
  // and no descendant of the pending computation can insert that key (the
  // subproblem would be recursing into itself), so the key cannot already
  // be present. A duplicate way would be harmless anyway — results are
  // deterministic, so both ways would agree.
  std::size_t w = 0;
  std::uint8_t stale_age = 0;
  for (std::size_t i = 0; i < kCacheWays; ++i) {
    if (ks.way[i].op == 0) {
      w = i;
      stale_age = 0xFF;  // an empty way cannot lose to a live one
      break;
    }
    const std::uint8_t age = static_cast<std::uint8_t>(now - data.gen[i]);
    if (age >= stale_age) {
      stale_age = age;
      w = i;
    }
  }
  if (ks.way[w].op != 0) ++stats_.cache_collisions;
  ks.way[w] = CacheKey{a, b, c, op};
  data.result[w] = CacheResult{r, r2};
  data.gen[w] = now;
}

// ---------------------------------------------------------------------------
// Concurrent computed cache (threads > 1). Same per-step cost class as the
// sequential probe: one set index, up to four key compares, and the seqlock
// validation pair.
// ---------------------------------------------------------------------------

inline bool Manager::pcacheLookup(std::uint32_t op, Edge a, Edge b, Edge c,
                                  Edge& out, Edge& out2) {
  OpStats& st = curStats();
  ++st.cache_lookups;
  const std::size_t set =
      detail::hash3((static_cast<std::uint64_t>(op) << 32) | a, b, c) &
      pcache_mask_;
  PCacheSet& s = pcache_[set];
  // Seqlock read: acquire the version (synchronizes with the publishing
  // writer, making the cached nodes' fields visible), relaxed-load the
  // payload, then validate the version did not move. An in-flight or
  // intervening write is a lossy race: count it, report a miss.
  const std::uint32_t v0 = s.ver.load(std::memory_order_acquire);
  if ((v0 & 1U) == 0) {
    for (std::size_t w = 0; w < kCacheWays; ++w) {
      if (s.op[w].load(std::memory_order_relaxed) == op &&
          s.a[w].load(std::memory_order_relaxed) == a &&
          s.b[w].load(std::memory_order_relaxed) == b &&
          s.c[w].load(std::memory_order_relaxed) == c) {
        const Edge r = s.r[w].load(std::memory_order_relaxed);
        const Edge r2 = s.r2[w].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.ver.load(std::memory_order_relaxed) == v0) {
          s.gen[w].store(
              static_cast<std::uint8_t>(
                  pcache_gen_.load(std::memory_order_relaxed)),
              std::memory_order_relaxed);
          ++st.cache_hits;
          ++st.op_cache_hits[static_cast<std::size_t>(tagOf(op))];
          out = r;
          out2 = r2;
          return true;
        }
        pcache_races_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  } else {
    pcache_races_.fetch_add(1, std::memory_order_relaxed);
  }
  ++st.op_cache_misses[static_cast<std::size_t>(tagOf(op))];
  return false;
}

inline void Manager::pcacheInsert(std::uint32_t op, Edge a, Edge b, Edge c,
                                  Edge r, Edge r2) {
  OpStats& st = curStats();
  ++st.cache_inserts;
  if (++tl_cache_tick_ >= kCacheGenPeriod) {
    tl_cache_tick_ = 0;
    pcache_gen_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t set =
      detail::hash3((static_cast<std::uint64_t>(op) << 32) | a, b, c) &
      pcache_mask_;
  PCacheSet& s = pcache_[set];
  // Seqlock write, lossy on contention: if another writer holds the set
  // (odd version) or wins the CAS, simply drop the insert — the result is
  // recomputable and the recursion keyed on it has already returned.
  std::uint32_t v = s.ver.load(std::memory_order_relaxed);
  if ((v & 1U) != 0 ||
      !s.ver.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    pcache_races_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Canonical seqlock writer ordering: the odd version must be visible
  // before any payload store (the CAS alone does not order the relaxed
  // stores below after it on weakly-ordered hardware). This release fence
  // pairs with the reader's acquire fence: a reader that observes any of
  // the new payload must also observe the odd/advanced version on its
  // validation load, so a torn way can never validate.
  std::atomic_thread_fence(std::memory_order_release);
  const std::uint8_t now = static_cast<std::uint8_t>(
      pcache_gen_.load(std::memory_order_relaxed));
  // Victim selection mirrors the sequential cache: first empty way, else
  // the stalest mod-256 age.
  std::size_t w = 0;
  std::uint8_t stale_age = 0;
  for (std::size_t i = 0; i < kCacheWays; ++i) {
    if (s.op[i].load(std::memory_order_relaxed) == 0) {
      w = i;
      stale_age = 0xFF;
      break;
    }
    const std::uint8_t age = static_cast<std::uint8_t>(
        now - s.gen[i].load(std::memory_order_relaxed));
    if (age >= stale_age) {
      stale_age = age;
      w = i;
    }
  }
  if (s.op[w].load(std::memory_order_relaxed) != 0) ++st.cache_collisions;
  s.a[w].store(a, std::memory_order_relaxed);
  s.b[w].store(b, std::memory_order_relaxed);
  s.c[w].store(c, std::memory_order_relaxed);
  s.r[w].store(r, std::memory_order_relaxed);
  s.r2[w].store(r2, std::memory_order_relaxed);
  s.gen[w].store(now, std::memory_order_relaxed);
  s.op[w].store(op, std::memory_order_relaxed);
  s.ver.store(v + 2, std::memory_order_release);
}

}  // namespace bfvr::bdd
