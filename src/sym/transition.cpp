#include "sym/transition.hpp"

#include <algorithm>

#include "sym/simulate.hpp"

namespace bfvr::sym {

namespace {

std::vector<unsigned> supportOf(Manager& m, const Bdd& f) {
  return m.support(f);
}

}  // namespace

TransitionRelation::TransitionRelation(const StateSpace& s,
                                       const TransitionOptions& opts)
    : space_(&s) {
  Manager& m = s.manager();
  const std::vector<Bdd> delta = transitionFunctions(s);

  // Per-latch conjuncts u_i XNOR delta_i.
  std::vector<Bdd> parts(delta.size());
  for (std::size_t c = 0; c < delta.size(); ++c) {
    const unsigned u = s.paramVar(s.latchOfComponent(c));
    parts[c] = m.xnorB(m.var(u), delta[c]);
  }

  // Greedy IWLS95-style ordering: repeatedly pick the conjunct that retires
  // the most quantifiable (v/x) variables not used by any other remaining
  // conjunct, normalized by its support size.
  std::vector<std::vector<unsigned>> sup(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    sup[i] = supportOf(m, parts[i]);
  }
  std::vector<bool> is_quantifiable(s.numVars(), false);
  for (unsigned v : s.currentVars()) is_quantifiable[v] = true;
  for (unsigned x : s.inputVars()) is_quantifiable[x] = true;

  std::vector<std::size_t> remaining(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) remaining[i] = i;
  std::vector<std::size_t> sequence;
  std::vector<unsigned> use_count(s.numVars(), 0);
  for (const auto& su : sup) {
    for (unsigned v : su) {
      if (is_quantifiable[v]) ++use_count[v];
    }
  }
  while (!remaining.empty()) {
    double best_score = -1.0;
    std::size_t best_pos = 0;
    for (std::size_t p = 0; p < remaining.size(); ++p) {
      const std::size_t i = remaining[p];
      unsigned retires = 0;
      for (unsigned v : sup[i]) {
        if (is_quantifiable[v] && use_count[v] == 1) ++retires;
      }
      const double score =
          (retires + 1.0) / (static_cast<double>(sup[i].size()) + 1.0);
      if (score > best_score) {
        best_score = score;
        best_pos = p;
      }
    }
    const std::size_t i = remaining[best_pos];
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(best_pos));
    sequence.push_back(i);
    for (unsigned v : sup[i]) {
      if (is_quantifiable[v] && use_count[v] > 0) --use_count[v];
    }
  }

  // Conjoin along the sequence into clusters bounded by cluster_limit.
  for (std::size_t k = 0; k < sequence.size();) {
    Bdd cluster = parts[sequence[k]];
    ++k;
    while (k < sequence.size() && opts.cluster_limit != 0 &&
           m.nodeCount(cluster) < opts.cluster_limit) {
      cluster &= parts[sequence[k]];
      ++k;
    }
    if (opts.cluster_limit == 0) {
      while (k < sequence.size()) {
        cluster &= parts[sequence[k]];
        ++k;
      }
    }
    clusters_.push_back(cluster);
    m.maybeGc();
  }

  // Early-quantification cubes: variable v goes into the cube of the LAST
  // cluster whose support mentions it (so quantification is sound).
  std::vector<int> last_use(s.numVars(), -1);
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    for (unsigned v : m.support(clusters_[k])) {
      if (is_quantifiable[v]) last_use[v] = static_cast<int>(k);
    }
  }
  std::vector<std::vector<unsigned>> cube_vars(clusters_.size());
  std::vector<unsigned> unused;  // quantifiable vars in no cluster: handled
                                 // by quantifying within the 'from' BDD step
  for (unsigned v = 0; v < s.numVars(); ++v) {
    if (!is_quantifiable[v]) continue;
    if (last_use[v] >= 0) {
      cube_vars[static_cast<std::size_t>(last_use[v])].push_back(v);
    } else {
      unused.push_back(v);
    }
  }
  cubes_.resize(clusters_.size());
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    cubes_[k] = m.cube(cube_vars[k]);
  }
  // Fold variables no cluster mentions into the first cube: they only ever
  // appear in `from`.
  if (!unused.empty() && !cubes_.empty()) {
    cubes_[0] = m.andB(cubes_[0], m.cube(unused));
  }
}

Bdd TransitionRelation::image(const Bdd& from) const {
  Manager& m = space_->manager();
  Bdd p = from;
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    p = m.andExists(p, clusters_[k], cubes_[k]);
    m.maybeGc();
  }
  return m.permute(p, space_->permParamToCurrent());
}

Bdd TransitionRelation::preimage(const Bdd& to) const {
  Manager& m = space_->manager();
  // Rename the target onto the next-state bank, then fold the clusters
  // with early quantification of the u/x variables (each retired at the
  // last cluster whose support mentions it — computed lazily once).
  if (cubes_bw_.empty()) {
    std::vector<bool> quantifiable(space_->numVars(), false);
    for (unsigned u : space_->paramVars()) quantifiable[u] = true;
    for (unsigned x : space_->inputVars()) quantifiable[x] = true;
    std::vector<int> last_use(space_->numVars(), -1);
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
      for (unsigned v : m.support(clusters_[k])) {
        if (quantifiable[v]) last_use[v] = static_cast<int>(k);
      }
    }
    std::vector<std::vector<unsigned>> cube_vars(clusters_.size());
    std::vector<unsigned> unused;
    for (unsigned v = 0; v < space_->numVars(); ++v) {
      if (!quantifiable[v]) continue;
      if (last_use[v] >= 0) {
        cube_vars[static_cast<std::size_t>(last_use[v])].push_back(v);
      } else {
        unused.push_back(v);
      }
    }
    cubes_bw_.resize(clusters_.size());
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
      cubes_bw_[k] = m.cube(cube_vars[k]);
    }
    if (!unused.empty() && !cubes_bw_.empty()) {
      cubes_bw_[0] = m.andB(cubes_bw_[0], m.cube(unused));
    }
  }
  Bdd p = m.permute(to, space_->permCurrentToParam());
  for (std::size_t k = 0; k < clusters_.size(); ++k) {
    p = m.andExists(p, clusters_[k], cubes_bw_[k]);
    m.maybeGc();
  }
  return p;
}

std::size_t TransitionRelation::sharedSize() const {
  return space_->manager().sharedNodeCount(clusters_);
}

Bdd initialChar(const StateSpace& s) {
  Manager& m = s.manager();
  const std::vector<bool> bits = s.initialBits();
  Bdd chi = m.one();
  for (std::size_t c = 0; c < bits.size(); ++c) {
    const Bdd v = m.var(s.currentVars()[c]);
    chi &= bits[c] ? v : ~v;
  }
  return chi;
}

}  // namespace bfvr::sym
