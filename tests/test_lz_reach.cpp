// The logical-zonotope reachability engine (src/lz): bit-exact counts on
// the XOR-affine class, sound over-approximation elsewhere, the target
// pre-filter protocol, and the resource statuses.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "circuit/orders.hpp"
#include "lz/lz_reach.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr {
namespace {

circuit::Netlist fromData(const char* name) {
  return circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/" + name);
}

lz::Bits rowFromMask(unsigned dims, std::uint64_t mask) {
  lz::Bits b(lz::wordsFor(dims), 0);
  b[0] = mask;
  return b;
}

TEST(LzReach, ExactOnFreeLfsr) {
  const circuit::Netlist n = circuit::makeLfsrFree(8);
  const lz::LzResult r = lz::lzReach(n);
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.states, 255.0);  // all but the XNOR lockup state
  EXPECT_EQ(r.lossy_products, 0U);

  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  ASSERT_EQ(oracle->size(), 255U);
  for (std::uint64_t s : *oracle) {
    EXPECT_TRUE(r.reached.containsPoint(rowFromMask(8, s)));
  }
}

TEST(LzReach, ExactOnShippedCrcFiles) {
  {
    const lz::LzResult r = lz::lzReach(fromData("crc8.bench"));
    ASSERT_EQ(r.status, RunStatus::kDone);
    EXPECT_TRUE(r.exact);
    EXPECT_DOUBLE_EQ(r.states, 256.0);
  }
  {
    const lz::LzResult r = lz::lzReach(fromData("crc16.bench"));
    ASSERT_EQ(r.status, RunStatus::kDone);
    EXPECT_TRUE(r.exact);
    EXPECT_DOUBLE_EQ(r.states, 65536.0);
  }
}

TEST(LzReach, FullLfsr16FixpointMatchesOracle) {
  const circuit::Netlist n = fromData("lfsr16.bench");
  const lz::LzResult r = lz::lzReach(n);
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.states, 65535.0);
  EXPECT_EQ(r.iterations, 65535U);

  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(oracle->size(), 65535U);
}

TEST(LzReach, WideAffineCircuitCountsWithoutEnumeration) {
  // twin40 has 80 latches and 2^40 reachable states: far beyond any
  // enumeration cap, countable only through the single-zonotope 2^rank
  // fast path (and the dims > 64 wide-row machinery).
  const lz::LzResult r = lz::lzReach(circuit::makeTwinShift(40));
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.states, std::ldexp(1.0, 40));
}

TEST(LzReach, SoundOverApproximationOnNonAffineCircuits) {
  for (const char* name :
       {"arb4.bench", "fifo3.bench", "johnson8.bench", "cnt8m200.bench"}) {
    const circuit::Netlist n = fromData(name);
    const lz::LzResult r = lz::lzReach(n);
    ASSERT_EQ(r.status, RunStatus::kInconclusive) << name;
    EXPECT_FALSE(r.exact) << name;
    EXPECT_FALSE(r.message.empty()) << name;

    const auto oracle = circuit::explicitReach(n);
    ASSERT_TRUE(oracle.has_value()) << name;
    const unsigned dims = static_cast<unsigned>(n.latches().size());
    for (std::uint64_t s : *oracle) {
      ASSERT_TRUE(r.reached.containsPoint(rowFromMask(dims, s)))
          << name << " lost state " << s;
    }
    EXPECT_GE(r.states, static_cast<double>(oracle->size())) << name;
  }
}

TEST(LzReach, IterationCapMatchesBddEngineAtEqualCap) {
  const circuit::Netlist n = fromData("lfsr32.bench");
  lz::LzOptions o;
  o.max_iterations = 300;
  const lz::LzResult z = lz::lzReach(n, o);
  ASSERT_EQ(z.status, RunStatus::kDone);  // exact prefix is a done answer
  EXPECT_TRUE(z.exact);

  bdd::Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  reach::ReachOptions ro;
  ro.max_iterations = 300;
  const reach::ReachResult b = reach::reachTr(s, ro);
  ASSERT_EQ(b.status, RunStatus::kDone);
  EXPECT_EQ(b.iterations, z.iterations);
  EXPECT_DOUBLE_EQ(b.states, z.states);
}

TEST(LzReach, TargetReachableOnAffineCircuitConcludes) {
  // lfsrf8's output q7 goes high within the cycle: exact hit, early exit.
  const circuit::Netlist n = circuit::makeLfsrFree(8);
  lz::LzOptions o;
  o.target_output = 0;
  const lz::LzResult r = lz::lzReach(n, o);
  ASSERT_EQ(r.status, RunStatus::kDone);
  ASSERT_TRUE(r.target_reachable.has_value());
  EXPECT_TRUE(*r.target_reachable);
}

TEST(LzReach, TargetUnreachableOnAffineCircuitConcludes) {
  // twin6's mismatch output XORs two identical shift chains: never 1.
  const circuit::Netlist n = fromData("twin6.bench");
  lz::LzOptions o;
  o.target_output = 0;
  const lz::LzResult r = lz::lzReach(n, o);
  ASSERT_EQ(r.status, RunStatus::kDone);
  ASSERT_TRUE(r.target_reachable.has_value());
  EXPECT_FALSE(*r.target_reachable);
}

TEST(LzReach, TargetMissedByLossyOverApproximationIsConclusive) {
  // The pre-filter contract: even when AND gates made the reached set an
  // over-approximation, a target that is never asserted in the BIGGER set
  // is conclusively unreachable in the real one.
  circuit::Netlist n("prefilter");
  const auto a = n.addInput("a");
  const auto b = n.addInput("b");
  const auto p = n.addLatch("p", false);
  const auto q = n.addLatch("q", false);
  n.setLatchData(p, n.mkAnd(a, b, "pa"));  // lossy cross term
  n.setLatchData(q, n.addGate(circuit::GateOp::kBuf, {q}, "qh"));
  n.markOutput(q);  // exactly {0} forever
  n.validate();

  lz::LzOptions o;
  o.target_output = 0;
  const lz::LzResult r = lz::lzReach(n, o);
  EXPECT_GT(r.lossy_products, 0U);
  ASSERT_EQ(r.status, RunStatus::kDone);
  ASSERT_TRUE(r.target_reachable.has_value());
  EXPECT_FALSE(*r.target_reachable);
}

TEST(LzReach, TargetHitThroughLossyGateIsInconclusive) {
  // The asserted output itself rides a lossy AND: the hit may be an
  // artifact of the over-approximation, so no verdict is allowed.
  circuit::Netlist n("lossyhit");
  const auto a = n.addInput("a");
  const auto b = n.addInput("b");
  const auto q = n.addLatch("q", false);
  n.setLatchData(q, n.mkAnd(a, b, "qa"));
  n.markOutput(n.mkAnd(q, a, "o"));
  n.validate();

  lz::LzOptions o;
  o.target_output = 0;
  const lz::LzResult r = lz::lzReach(n, o);
  EXPECT_EQ(r.status, RunStatus::kInconclusive);
  EXPECT_FALSE(r.target_reachable.has_value());
}

TEST(LzReach, TargetOutOfRangeThrows) {
  lz::LzOptions o;
  o.target_output = 3;
  EXPECT_THROW((void)lz::lzReach(circuit::makeLfsrFree(8), o),
               std::invalid_argument);
}

TEST(LzReach, CancellationAndTimeout) {
  const circuit::Netlist n = circuit::makeLfsrFree(16);
  {
    lz::LzOptions o;
    o.cancelled = [] { return true; };
    const lz::LzResult r = lz::lzReach(n, o);
    EXPECT_EQ(r.status, RunStatus::kCancelled);
    EXPECT_FALSE(r.exact);
  }
  {
    lz::LzOptions o;
    o.budget.max_seconds = 1e-9;
    const lz::LzResult r = lz::lzReach(n, o);
    EXPECT_EQ(r.status, RunStatus::kTimeOut);
    EXPECT_FALSE(r.exact);
  }
}

TEST(LzReach, MergePressureStaysSoundAndTerminates) {
  // An aggressive merge threshold forces hull folds on a lossy circuit;
  // the result must stay a superset of the true reached set.
  const circuit::Netlist n = circuit::makeRandomSeq(12, 4, 60, 7);
  lz::LzOptions o;
  o.merge_threshold = 2;
  const lz::LzResult r = lz::lzReach(n, o);
  ASSERT_EQ(r.status, RunStatus::kInconclusive);

  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  for (std::uint64_t s : *oracle) {
    ASSERT_TRUE(r.reached.containsPoint(rowFromMask(12, s)));
  }
  EXPECT_GE(r.states, static_cast<double>(oracle->size()));
}

TEST(LzReach, StreamsIterationStats) {
  unsigned calls = 0, last = 0;
  lz::LzOptions o;
  o.on_iteration = [&](const lz::IterationStats& it) {
    ++calls;
    EXPECT_EQ(it.iteration, calls);
    EXPECT_GE(it.reached_upper, it.frontier_states);
    last = it.iteration;
  };
  const lz::LzResult r = lz::lzReach(circuit::makeLfsrFree(8), o);
  EXPECT_EQ(calls, r.iterations);
  EXPECT_EQ(last, r.iterations);
}

}  // namespace
}  // namespace bfvr
