# Empty dependencies file for bfvr_reach.
# This may be replaced when dependencies are built.
