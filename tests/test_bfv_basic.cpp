// Canonical Boolean functional vectors: construction, observers, and the
// paper's Table 1 example.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

const std::vector<unsigned> kVars{0, 1, 2};

TEST(BfvBasic, Table1Example) {
  // The paper's running example: S = {000, 001, 010, 011, 100, 101}
  // (first bit = component 0). Canonical vector: F = (v1, ~v1 & v2, v3).
  Manager m(3);
  const Set s{0b000, 0b100, 0b010, 0b110, 0b001, 0b101};
  // Members above written as (bit2 bit1 bit0); component i is bit i:
  // {000,001,010,011,100,101} with component 0 the FIRST bit.
  Set members;
  for (unsigned first = 0; first <= 1; ++first) {
    for (unsigned second = 0; second <= 1; ++second) {
      for (unsigned third = 0; third <= 1; ++third) {
        if (first == 1 && second == 1) continue;  // excludes 110, 111
        members.insert(first | (second << 1) | (third << 2));
      }
    }
  }
  const Bfv f = test::bfvOf(m, kVars, members);
  ASSERT_EQ(f.width(), 3U);
  // f1 = v1
  EXPECT_EQ(f.comps()[0], m.var(0));
  // f2 = ~v1 & v2
  EXPECT_EQ(f.comps()[1], ~m.var(0) & m.var(1));
  // f3 = v3
  EXPECT_EQ(f.comps()[2], m.var(2));
  // chi = ~(v1 & v2)
  EXPECT_EQ(f.toChar(), ~(m.var(0) & m.var(1)));
  EXPECT_DOUBLE_EQ(f.countStates(), 6.0);
}

TEST(BfvBasic, UniverseAndEmpty) {
  Manager m(3);
  const Bfv u = Bfv::universe(m, kVars);
  EXPECT_DOUBLE_EQ(u.countStates(), 8.0);
  EXPECT_TRUE(u.toChar().isTrue());
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(u.comps()[i], m.var(kVars[i]));

  const Bfv e = Bfv::emptySet(m, kVars);
  EXPECT_TRUE(e.isEmpty());
  EXPECT_DOUBLE_EQ(e.countStates(), 0.0);
  EXPECT_TRUE(e.toChar().isFalse());
  EXPECT_FALSE(e.contains({false, false, false}));
}

TEST(BfvBasic, PointIsSingleton) {
  Manager m(3);
  const Bfv p = Bfv::point(m, kVars, {true, false, true});
  EXPECT_DOUBLE_EQ(p.countStates(), 1.0);
  EXPECT_TRUE(p.contains({true, false, true}));
  EXPECT_FALSE(p.contains({true, true, true}));
  EXPECT_TRUE(p.checkCanonical());
  // Every choice selects the single member.
  EXPECT_EQ(p.select({false, true, false}),
            (std::vector<bool>{true, false, true}));
}

TEST(BfvBasic, CubeSetSemantics) {
  Manager m(3);
  const signed char vals[] = {1, -1, 0};  // 1?0
  const Bfv c = Bfv::cubeSet(m, kVars, vals);
  EXPECT_DOUBLE_EQ(c.countStates(), 2.0);
  EXPECT_TRUE(c.contains({true, false, false}));
  EXPECT_TRUE(c.contains({true, true, false}));
  EXPECT_FALSE(c.contains({false, true, false}));
  EXPECT_TRUE(c.checkCanonical());
}

TEST(BfvBasic, CanonicalUniqueness) {
  Manager m(3);
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    Set s = test::randomSet(rng, 3, 1, 2);
    if (s.empty()) s.insert(5);
    std::vector<std::uint64_t> fwd(s.begin(), s.end());
    std::vector<std::uint64_t> rev(s.rbegin(), s.rend());
    const Bfv a = Bfv::fromMembers(m, kVars, fwd);
    const Bfv b = Bfv::fromMembers(m, kVars, rev);
    EXPECT_EQ(a, b);
  }
}

TEST(BfvBasic, NearestMemberSelection) {
  // The canonical vector maps every choice to the nearest member under the
  // weighted metric (§2.1).
  Manager m(4);
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    Set s = test::randomSet(rng, 4, 1, 3);
    if (s.empty()) s.insert(9);
    const Bfv f = test::bfvOf(m, vars, s);
    for (std::uint64_t v = 0; v < 16; ++v) {
      std::vector<bool> choices(4);
      for (unsigned i = 0; i < 4; ++i) choices[i] = ((v >> i) & 1U) != 0;
      const std::vector<bool> sel = f.select(choices);
      std::uint64_t got = 0;
      for (unsigned i = 0; i < 4; ++i) {
        if (sel[i]) got |= std::uint64_t{1} << i;
      }
      EXPECT_EQ(got, test::nearestMember(s, v, 4));
    }
  }
}

TEST(BfvBasic, MembersMapToThemselves) {
  Manager m(3);
  const Set s{1, 2, 5, 6};
  const Bfv f = test::bfvOf(m, kVars, s);
  for (std::uint64_t x : s) {
    std::vector<bool> bits(3);
    for (unsigned i = 0; i < 3; ++i) bits[i] = ((x >> i) & 1U) != 0;
    EXPECT_TRUE(f.contains(bits));
    EXPECT_EQ(f.select(bits), bits);
  }
}

TEST(BfvBasic, ConditionsPartition) {
  Manager m(3);
  const Set s{0, 1, 3, 4};
  const Bfv f = test::bfvOf(m, kVars, s);
  for (unsigned i = 0; i < 3; ++i) {
    const ComponentConditions c = f.conditions(i);
    // Mutually exclusive and complete.
    EXPECT_TRUE((c.forced1 & c.forced0).isFalse());
    EXPECT_TRUE((c.forced1 & c.choice).isFalse());
    EXPECT_TRUE((c.forced0 & c.choice).isFalse());
    EXPECT_TRUE((c.forced1 | c.forced0 | c.choice).isTrue());
  }
}

TEST(BfvBasic, EnumerateAscendingWeightedOrder) {
  Manager m(3);
  const Set s{0b011, 0b000, 0b101};
  const Bfv f = test::bfvOf(m, kVars, s);
  const auto members = f.enumerate(10);
  ASSERT_EQ(members.size(), 3U);
  // Component 0 is the most significant digit of the paper's order.
  auto rank = [](const std::vector<bool>& bits) {
    std::uint64_t r = 0;
    for (bool b : bits) r = (r << 1) | (b ? 1U : 0U);
    return r;
  };
  EXPECT_LT(rank(members[0]), rank(members[1]));
  EXPECT_LT(rank(members[1]), rank(members[2]));
  EXPECT_EQ(test::setOf(f), s);
}

TEST(BfvBasic, EnumerateHonorsLimit) {
  Manager m(3);
  const Bfv u = Bfv::universe(m, kVars);
  EXPECT_EQ(u.enumerate(3).size(), 3U);
  EXPECT_EQ(u.enumerate(0).size(), 0U);
}

TEST(BfvBasic, FromComponentsValidates) {
  Manager m(3);
  // Component 1 illegally depends on v3 (outside its prefix).
  std::vector<Bdd> comps{m.var(0), m.var(2), m.var(2)};
  EXPECT_THROW((void)Bfv::fromComponents(m, kVars, comps),
               std::invalid_argument);
  // Negative unateness in own choice variable is rejected.
  std::vector<Bdd> comps2{~m.var(0), m.var(1), m.var(2)};
  EXPECT_THROW((void)Bfv::fromComponents(m, kVars, comps2),
               std::invalid_argument);
  // A valid vector passes.
  std::vector<Bdd> comps3{m.var(0), m.var(0) | m.var(1), m.var(2)};
  EXPECT_NO_THROW((void)Bfv::fromComponents(m, kVars, comps3));
}

TEST(BfvBasic, ChoiceVarsMustIncrease) {
  Manager m(4);
  EXPECT_THROW((void)Bfv::universe(m, {2, 1, 3}), std::invalid_argument);
}

TEST(BfvBasic, OperandCompatibilityEnforced) {
  Manager m(6);
  const Bfv a = Bfv::universe(m, {0, 1, 2});
  const Bfv b = Bfv::universe(m, {3, 4, 5});
  EXPECT_THROW((void)setUnion(a, b), std::invalid_argument);
  EXPECT_THROW((void)setIntersect(a, b), std::invalid_argument);
  EXPECT_THROW((void)setUnion(Bfv(), a), std::logic_error);
}

TEST(BfvBasic, SharedSizeReflectsSharing) {
  Manager m(6);
  // Twin structure: later components equal earlier ones.
  std::vector<Bdd> comps{m.var(0), m.var(2), m.var(0), m.var(2)};
  const Bfv f = Bfv::fromComponents(m, {0, 2, 4, 5}, comps);
  EXPECT_LE(f.sharedSize(), 3U);  // two projections + terminal
}

}  // namespace
}  // namespace bfvr::bfv
