// Netlist construction, validation and structural queries.
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/netlist.hpp"

namespace bfvr::circuit {
namespace {

TEST(Netlist, BuildAndLookup) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  const SignalId b = n.addInput("b");
  const SignalId g = n.mkAnd(a, b, "g");
  n.markOutput(g);
  EXPECT_EQ(n.inputs().size(), 2U);
  EXPECT_EQ(n.outputs().size(), 1U);
  EXPECT_EQ(n.signal("g"), g);
  EXPECT_TRUE(n.hasSignal("a"));
  EXPECT_FALSE(n.hasSignal("zz"));
  EXPECT_THROW((void)n.signal("zz"), std::invalid_argument);
}

TEST(Netlist, DuplicateNamesRejected) {
  Netlist n("t");
  (void)n.addInput("a");
  EXPECT_THROW((void)n.addInput("a"), std::invalid_argument);
}

TEST(Netlist, AnonymousNamesAreGenerated) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  const SignalId g1 = n.mkNot(a);
  const SignalId g2 = n.mkNot(g1);
  EXPECT_NE(n.gate(g1).name, n.gate(g2).name);
}

TEST(Netlist, LatchLoopMustBeClosed) {
  Netlist n("t");
  (void)n.addLatch("q", false);
  EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, LatchSelfLoopIsSequentialNotCombinational) {
  Netlist n("t");
  const SignalId q = n.addLatch("q", false);
  const SignalId inv = n.mkNot(q, "inv");
  n.setLatchData(q, inv);  // toggle flip-flop
  EXPECT_NO_THROW(n.validate());
}

// Note: combinational cycles cannot be expressed through the builder API
// (gate fanins must already exist, and latches legally break loops), so the
// topoOrder() cycle check is purely defensive; see bench_io tests for the
// parser-side rejection of unresolvable definitions.

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  const SignalId b = n.addInput("b");
  const SignalId x = n.mkXor(a, b, "x");
  const SignalId y = n.mkAnd(x, a, "y");
  n.markOutput(y);
  const auto order = n.topoOrder();
  std::vector<std::size_t> pos(n.numSignals());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (SignalId id = 0; id < n.numSignals(); ++id) {
    const Gate& g = n.gate(id);
    if (isSource(g.op)) continue;
    for (SignalId f : g.fanins) {
      EXPECT_LT(pos[f], pos[id]) << n.gate(f).name << " vs " << g.name;
    }
  }
}

TEST(Netlist, FaninConeStopsAtLatches) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  const SignalId q = n.addLatch("q", false);
  const SignalId g = n.mkAnd(a, q, "g");
  n.setLatchData(q, g);
  n.markOutput(g);
  const auto cone = n.faninCone({g});
  EXPECT_EQ(cone.size(), 2U);  // a and q, not g's transitive closure
}

TEST(Netlist, MuxSemantics) {
  Netlist n("t");
  const SignalId s = n.addInput("s");
  const SignalId a = n.addInput("a");
  const SignalId b = n.addInput("b");
  n.markOutput(n.mkMux(s, a, b, "m"));
  n.validate();
  const ConcreteSim sim(n);
  for (unsigned v = 0; v < 8; ++v) {
    const bool sv = (v & 1U) != 0;
    const bool av = (v & 2U) != 0;
    const bool bv = (v & 4U) != 0;
    const auto out = sim.outputs({}, {sv, av, bv});
    EXPECT_EQ(out[0], sv ? av : bv);
  }
}

TEST(Netlist, GateArityChecked) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  EXPECT_THROW((void)n.addGate(GateOp::kNot, {a, a}, "bad"),
               std::invalid_argument);
  EXPECT_THROW((void)n.addGate(GateOp::kAnd, {}, "bad2"),
               std::invalid_argument);
  EXPECT_THROW((void)n.addGate(GateOp::kInput, {}, "bad3"),
               std::invalid_argument);
  EXPECT_THROW((void)n.addGate(GateOp::kAnd, {a, SignalId{999}}, "bad4"),
               std::invalid_argument);
}

TEST(Netlist, EvalGateTruthTables) {
  EXPECT_TRUE(evalGate(GateOp::kAnd, {true, true, true}));
  EXPECT_FALSE(evalGate(GateOp::kAnd, {true, false, true}));
  EXPECT_TRUE(evalGate(GateOp::kNand, {true, false}));
  EXPECT_TRUE(evalGate(GateOp::kOr, {false, true}));
  EXPECT_TRUE(evalGate(GateOp::kNor, {false, false}));
  EXPECT_TRUE(evalGate(GateOp::kXor, {true, true, true}));
  EXPECT_FALSE(evalGate(GateOp::kXor, {true, true}));
  EXPECT_TRUE(evalGate(GateOp::kXnor, {true, true}));
  EXPECT_FALSE(evalGate(GateOp::kNot, {true}));
  EXPECT_TRUE(evalGate(GateOp::kBuf, {true}));
  EXPECT_FALSE(evalGate(GateOp::kConst0, {}));
  EXPECT_TRUE(evalGate(GateOp::kConst1, {}));
  EXPECT_THROW((void)evalGate(GateOp::kInput, {}), std::logic_error);
}

TEST(Netlist, SetLatchDataValidation) {
  Netlist n("t");
  const SignalId a = n.addInput("a");
  EXPECT_THROW(n.setLatchData(a, a), std::invalid_argument);
  const SignalId q = n.addLatch("q", true);
  EXPECT_THROW(n.setLatchData(q, SignalId{42}), std::invalid_argument);
  n.setLatchData(q, a);
  EXPECT_EQ(n.latchData(0), a);
  EXPECT_TRUE(n.latchInit(0));
}

}  // namespace
}  // namespace bfvr::circuit
