// The Coudert/Berthet/Madre flow of Fig. 1: image computation by symbolic
// simulation, but all set manipulation on characteristic functions. Every
// iteration pays a chi -> BFV conversion (parameterization) before
// simulating and a BFV -> chi conversion (recursive range splitting) after.
#include "bfv/bfv.hpp"
#include "reach/internal.hpp"
#include "sym/image.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

ReachResult reachCbm(sym::StateSpace& s, const ReachOptions& opts) {
  Manager& m = s.manager();
  return internal::runGuarded(
      m, opts, [&](ReachResult& r, internal::RunGuard& guard,
                   internal::Tracer& tracer) {
        internal::applyReorderPolicy(s, opts);
        Bdd reached, from;
        if (opts.resume != nullptr) {
          r.iterations = opts.resume->iteration;
          reached = opts.resume->reached_chi;
          from = opts.resume->from_chi;
        } else {
          reached = sym::initialChar(s);
          from = reached;
        }
        for (;;) {
          ++r.iterations;
          tracer.beginIteration(r.iterations, [&] {
            return std::pair{m.satCount(from, s.numLatches()),
                             m.nodeCount(from)};
          });
          // Characteristic function -> Boolean functional vector. Both
          // per-iteration conversions — the Fig. 1 flow's defining cost —
          // are attributed to the kConvert phase.
          const Bfv f = tracer.timed(obs::Phase::kConvert, [&] {
            return bfv::fromChar(m, from, s.currentVars());
          });
          guard.sample();
          // Symbolic simulation gives the image as a raw vector ...
          const sym::SimResult sim = tracer.timed(
              obs::Phase::kImage, [&] { return sym::simulate(s, f.comps()); });
          guard.sample();
          // ... which the Fig. 1 flow converts straight back to a
          // characteristic function by recursive range splitting.
          const Bdd img_u = tracer.timed(obs::Phase::kConvert, [&] {
            return sym::rangeChar(s, sim.next_state, m.one());
          });
          const Bdd img = tracer.timed(obs::Phase::kConvert, [&] {
            return m.permute(img_u, s.permParamToCurrent());
          });
          guard.sample();
          const Bdd next = tracer.timed(obs::Phase::kUnion,
                                        [&] { return reached | img; });
          const bool fixpoint = next == reached;
          Bdd frontier;  // iteration scope: alive across the maybeGc() below
          if (!fixpoint) {
            const auto check = tracer.phase(obs::Phase::kCheck);
            frontier = img & ~reached;
            reached = next;
            if (opts.use_frontier &&
                m.nodeCount(frontier) < m.nodeCount(reached)) {
              from = frontier;
            } else {
              from = reached;
            }
          }
          tracer.endIteration();
          if (fixpoint) break;
          internal::maybeStepReorder(m, opts, r.iterations);
          m.maybeGc();
          guard.sample();
          if (internal::checkpointDue(opts, r.iterations)) {
            io::Checkpoint c;
            c.engine = "cbm";
            c.iteration = r.iterations;
            c.reached = {reached};
            c.frontier = {from};
            internal::writeCheckpoint(m, opts, std::move(c));
          }
          if (opts.max_iterations != 0 &&
              r.iterations >= opts.max_iterations) {
            break;
          }
        }
        r.states = m.satCount(reached, s.numLatches());
        r.chi_nodes = m.nodeCount(reached);
        r.reached_chi = reached;
        const Bfv f = bfv::fromChar(m, reached, s.currentVars());
        r.bfv_nodes = f.sharedSize();
        r.reached_bfv = f;
      });
}

}  // namespace bfvr::reach
