// Experiment: the §3 re-parameterization quantification schedule — the
// paper uses "a dynamic quantification schedule based on a simple support
// based cost heuristic"; this ablation compares it against quantifying
// parameters in a fixed (variable-index) order.
//
// `--quick` pins the suite to the heaviest row (fifo4) — the configuration
// the CI perf smoke compares against baselines/BENCH_quantsched.json, so
// its `recursive_steps` guard stays on one stable circuit.
#include <cstring>

#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  JsonLog log = jsonLogFromArgs(argc, argv, "quantsched");
  JsonLog trace = traceLogFromArgs(argc, argv, "quantsched");

  std::vector<circuit::Netlist> circuits;
  circuits.push_back(circuit::makeFifoCtrl(4));
  if (!quick) {
    circuits.push_back(circuit::makeTwinShift(14));
    circuits.push_back(circuit::makeJohnson(20));
    circuits.push_back(circuit::makeRandomSeq(14, 4, 80, 11));
    circuits.push_back(circuit::makeRandomSeq(16, 5, 100, 23));
  }

  std::printf("Re-parameterization schedule ablation (BFV engine, topo)\n");
  std::printf("%-12s | %10s %9s | %10s %9s\n", "circuit", "static t",
              "Peak(K)", "dynamic t", "Peak(K)");
  hr(60);
  for (const auto& n : circuits) {
    RunSpec stat;
    stat.engine = RunSpec::Engine::kBfv;
    stat.opts.budget.max_seconds = 30.0;
    stat.opts.reparam.schedule = bfv::QuantSchedule::kStaticOrder;
    stat.opts.trace = trace.enabled();
    RunSpec dyn = stat;
    dyn.opts.reparam.schedule = bfv::QuantSchedule::kSupportCost;
    const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
    const reach::ReachResult a = runOnce(n, order, stat);
    const reach::ReachResult b = runOnce(n, order, dyn);
    log.push(runObject(n.name(), order.label(), engineName(stat.engine), a)
                 .add("schedule", "static"));
    log.push(runObject(n.name(), order.label(), engineName(dyn.engine), b)
                 .add("schedule", "dynamic"));
    pushTrace(trace, n.name(), order.label(), engineName(stat.engine), a);
    pushTrace(trace, n.name(), order.label(), engineName(dyn.engine), b);
    std::printf("%-12s | %10s %9s | %10s %9s\n", n.name().c_str(),
                timeCell(a).c_str(), peakCell(a).c_str(),
                timeCell(b).c_str(), peakCell(b).c_str());
  }
  hr(60);
  std::printf(
      "\nThe dynamic schedule touches fewer components per quantification\n"
      "(\"we compute supports to avoid BDD operations on vector components\n"
      "that do not depend on the variable being quantified\", §3).\n");
  return log.write() && trace.write() ? 0 : 1;
}
