// Shared kernels behind the Bfv operations. The cores work on raw component
// vectors so that re-parameterization can apply them to vectors that still
// depend on parameter variables: for every fixed assignment of the leftover
// parameters, the operand slices are canonical BFVs, and the algorithms
// commute with slicing (see DESIGN.md and reparam.cpp).
#pragma once

#include <vector>

#include "bfv/bfv.hpp"

namespace bfvr::bfv::internal {

/// §2.3 union core: exclusion-condition sweep. Operands must be
/// (slice-)canonical component vectors over the same choice variables.
std::vector<Bdd> unionCore(Manager& m, const std::vector<unsigned>& vars,
                           const std::vector<Bdd>& f,
                           const std::vector<Bdd>& g);

/// §2.4 intersection core: elimination-condition backward sweep, forced
/// approximation, then the forward normalization (substitution) pass.
/// Returns false (and leaves `out` empty) when the intersection is empty.
bool intersectCore(Manager& m, const std::vector<unsigned>& vars,
                   const std::vector<Bdd>& f, const std::vector<Bdd>& g,
                   std::vector<Bdd>& out);

/// Combines the two cofactor slices of a component vector into one (the
/// union-of-cofactors step of existential quantification). Both the BFV
/// union core and the conjunctive-decomposition union fit this signature.
using SliceUnion = std::vector<Bdd> (*)(Manager&,
                                        const std::vector<unsigned>&,
                                        const std::vector<Bdd>&,
                                        const std::vector<Bdd>&);

/// The §2.6 parameter-quantification loop shared by bfv::reparameterize and
/// cdec::reparameterizeCdec: existentially quantifies every variable of
/// `param_vars` out of `comps` by cofactor + `slice_union`, picking the
/// order per `opts` (support-based dynamic schedule or the given order).
std::vector<Bdd> quantifyParams(Manager& m, std::vector<Bdd> comps,
                                const std::vector<unsigned>& choice_vars,
                                std::span<const unsigned> param_vars,
                                const ReparamOptions& opts,
                                SliceUnion slice_union);

}  // namespace bfvr::bfv::internal
