// Re-parameterization (§2.6): canonicalize the raw vector produced by
// symbolic simulation.
//
// The simulated next-state functions depend on *parameter* variables (the
// previous iteration's choice variables and the primary inputs), not on the
// target choice variables. For every fixed assignment of the parameters the
// vector is constant — i.e. the canonical representation of a singleton —
// so existentially quantifying the parameters one at a time with the
// union-of-cofactors rule keeps every parameter slice canonical and ends
// with the canonical vector of the simulated range.
//
// The quantification order matters for intermediate sizes; following §3 we
// implement a dynamic schedule driven by per-component supports (quantify
// first the parameter that the fewest / smallest components depend on), and
// skip components that do not depend on the variable being quantified.
//
// The loop is shared with the conjunctive-decomposition backend
// (cdec::reparameterizeCdec), which plugs in its constrain-based union.
#include <algorithm>

#include "bfv/internal.hpp"

namespace bfvr::bfv {

namespace internal {

namespace {

/// Cost of quantifying `var` now: (number of dependent components, total
/// node count of those components). Smaller is better — fewer components
/// touched means more of the union sweep stays on its fast path.
struct QuantCost {
  std::size_t dependents = 0;
  std::size_t nodes = 0;

  bool operator<(const QuantCost& o) const {
    if (dependents != o.dependents) return dependents < o.dependents;
    return nodes < o.nodes;
  }
};

}  // namespace

std::vector<Bdd> quantifyParams(Manager& m, std::vector<Bdd> cur,
                                const std::vector<unsigned>& choice_vars,
                                std::span<const unsigned> param_vars,
                                const ReparamOptions& opts,
                                SliceUnion slice_union) {
  std::vector<unsigned> pending(param_vars.begin(), param_vars.end());

  // Per-component support sets, refreshed after each quantification.
  const std::size_t n = cur.size();
  std::vector<std::vector<unsigned>> supports(n);
  auto refresh = [&](std::size_t i) { supports[i] = m.support(cur[i]); };
  for (std::size_t i = 0; i < n; ++i) refresh(i);

  auto dependsOn = [&](std::size_t i, unsigned v) {
    return std::binary_search(supports[i].begin(), supports[i].end(), v);
  };

  while (!pending.empty()) {
    // Pick the next parameter variable to quantify out.
    std::size_t pick = 0;
    if (opts.schedule == QuantSchedule::kSupportCost) {
      QuantCost best;
      bool have = false;
      for (std::size_t c = 0; c < pending.size(); ++c) {
        QuantCost cost;
        for (std::size_t i = 0; i < n; ++i) {
          if (dependsOn(i, pending[c])) {
            ++cost.dependents;
            cost.nodes += m.nodeCount(cur[i]);
          }
        }
        if (!have || cost < best) {
          best = cost;
          pick = c;
          have = true;
        }
      }
    }
    const unsigned v = pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));

    bool touched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (dependsOn(i, v)) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;  // nothing depends on v: exists is the identity

    std::vector<Bdd> lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (dependsOn(i, v)) {
        lo[i] = m.cofactor(cur[i], v, false);
        hi[i] = m.cofactor(cur[i], v, true);
      } else {
        lo[i] = cur[i];
        hi[i] = cur[i];
      }
    }
    cur = slice_union(m, choice_vars, lo, hi);
    for (std::size_t i = 0; i < n; ++i) refresh(i);
    m.maybeGc();
  }
  return cur;
}

}  // namespace internal

Bfv reparameterize(Manager& m, std::span<const Bdd> outputs,
                   std::vector<unsigned> choice_vars,
                   std::span<const unsigned> param_vars,
                   const ReparamOptions& opts) {
  if (outputs.size() != choice_vars.size()) {
    throw std::invalid_argument("reparameterize: arity mismatch");
  }
  std::vector<Bdd> cur(outputs.begin(), outputs.end());
  cur = internal::quantifyParams(m, std::move(cur), choice_vars, param_vars,
                                 opts, &internal::unionCore);
  return Bfv::fromComponents(m, std::move(choice_vars), std::move(cur),
                             /*trusted=*/true);
}

}  // namespace bfvr::bfv
