// §2.4 set intersection: elimination conditions, the normalization pass,
// and the forced-value regression the naive recurrence misses.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

TEST(BfvIntersect, ExhaustiveWidth2) {
  const std::vector<unsigned> vars{0, 1};
  for (unsigned am = 0; am < 16; ++am) {
    for (unsigned bm = 0; bm < 16; ++bm) {
      Manager m(2);
      Set a;
      Set b;
      for (unsigned x = 0; x < 4; ++x) {
        if (((am >> x) & 1U) != 0) a.insert(x);
        if (((bm >> x) & 1U) != 0) b.insert(x);
      }
      const Bfv fi = setIntersect(test::bfvOf(m, vars, a),
                                  test::bfvOf(m, vars, b));
      const Set want = test::setIntersectOf(a, b);
      if (want.empty()) {
        ASSERT_TRUE(fi.isEmpty()) << "a=" << am << " b=" << bm;
      } else {
        ASSERT_EQ(test::setOf(fi), want) << "a=" << am << " b=" << bm;
        ASSERT_TRUE(fi.checkCanonical());
        ASSERT_EQ(fi, test::bfvOf(m, vars, want));
      }
    }
  }
}

class IntersectSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(IntersectSweep, MatchesBruteForce) {
  const unsigned n = std::get<0>(GetParam());
  Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) * 389 + n);
  std::vector<unsigned> vars(n);
  for (unsigned i = 0; i < n; ++i) vars[i] = i;
  Manager m(n);
  // Denser sets so intersections are often non-empty.
  const Set a = test::randomSet(rng, n, 2, 3);
  const Set b = test::randomSet(rng, n, 2, 3);
  const Bfv fa = test::bfvOf(m, vars, a);
  const Bfv fb = test::bfvOf(m, vars, b);
  const Bfv fi = setIntersect(fa, fb);
  const Set want = test::setIntersectOf(a, b);
  if (want.empty()) {
    EXPECT_TRUE(fi.isEmpty());
  } else {
    std::string why;
    EXPECT_TRUE(fi.checkCanonical(&why)) << why;
    EXPECT_EQ(test::setOf(fi), want);
    EXPECT_EQ(fi, setIntersect(fb, fa));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntersectSweep,
                         ::testing::Combine(::testing::Values(3U, 4U, 5U),
                                            ::testing::Range(0, 12)));

TEST(BfvIntersect, ForcedBitDoomRegression) {
  // Regression for the elimination recurrence: A = {00}, B = {10, 01}.
  // Bit 0 is forced (to 0 by A, free in B); every completion conflicts at
  // bit 1, but only through forced choices — the naive
  // "conflict | forall_v e" recurrence misses it and returns {10}.
  Manager m(2);
  const std::vector<unsigned> vars{0, 1};
  const Bfv fa = test::bfvOf(m, vars, Set{0});
  const Bfv fb = test::bfvOf(m, vars, Set{1, 2});
  EXPECT_TRUE(setIntersect(fa, fb).isEmpty());
}

TEST(BfvIntersect, FreeChoiceRestrictedByOtherOperand) {
  // §2.4's motivating situation: one operand leaves a bit free, the other
  // couples it to a later component; the normalization pass must propagate
  // the restricted choice.
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  // A = {000, 010} (bit2 free, bit3 = 0); B = {000, 010, 011}.
  const Bfv fa = test::bfvOf(m, vars, Set{0, 2});
  const Bfv fb = test::bfvOf(m, vars, Set{0, 2, 6});
  const Bfv fi = setIntersect(fa, fb);
  EXPECT_EQ(test::setOf(fi), (Set{0, 2}));
  EXPECT_EQ(fi, fa);
}

TEST(BfvIntersect, EmptyAbsorbs) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv e = Bfv::emptySet(m, vars);
  const Bfv s = test::bfvOf(m, vars, Set{1, 4});
  EXPECT_TRUE(setIntersect(e, s).isEmpty());
  EXPECT_TRUE(setIntersect(s, e).isEmpty());
}

TEST(BfvIntersect, UniverseIsIdentity) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv u = Bfv::universe(m, vars);
  const Bfv s = test::bfvOf(m, vars, Set{1, 4, 7});
  EXPECT_EQ(setIntersect(u, s), s);
  EXPECT_EQ(setIntersect(s, u), s);
}

TEST(BfvIntersect, DisjointSetsAreEmpty) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv a = test::bfvOf(m, vars, Set{0, 1, 2});
  const Bfv b = test::bfvOf(m, vars, Set{5, 6, 7});
  EXPECT_TRUE(setIntersect(a, b).isEmpty());
}

TEST(BfvIntersect, IdempotentAndAbsorbsUnion) {
  Manager m(4);
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Rng rng(17);
  const Set a = test::randomSet(rng, 4, 1, 2);
  const Set b = test::randomSet(rng, 4, 1, 2);
  const Bfv fa = test::bfvOf(m, vars, a);
  const Bfv fb = test::bfvOf(m, vars, b);
  EXPECT_EQ(setIntersect(fa, fa), fa);
  // A ∩ (A ∪ B) == A.
  EXPECT_EQ(setIntersect(fa, setUnion(fa, fb)), fa);
}

TEST(BfvIntersect, QuadraticOperationBound) {
  // §2.4: intersection needs O(n^2) BDD operations. Check super-linear but
  // bounded growth of recursive apply steps with the vector width.
  std::vector<std::uint64_t> steps;
  for (unsigned n : {4U, 8U, 16U}) {
    Manager m(n);
    std::vector<unsigned> vars(n);
    for (unsigned i = 0; i < n; ++i) vars[i] = i;
    // Two staggered cube sets with a nontrivial intersection.
    std::vector<signed char> va(n, -1);
    std::vector<signed char> vb(n, -1);
    for (unsigned i = 0; i < n; i += 2) va[i] = 1;
    for (unsigned i = 1; i < n; i += 2) vb[i] = 0;
    const Bfv fa = Bfv::cubeSet(m, vars, va);
    const Bfv fb = Bfv::cubeSet(m, vars, vb);
    m.resetStats();
    const Bfv fi = setIntersect(fa, fb);
    steps.push_back(m.stats().top_ops);
    EXPECT_FALSE(fi.isEmpty());
  }
  // Doubling n should grow ops by more than 2x (super-linear) but at most
  // ~4x-ish (quadratic); allow slack for constants.
  EXPECT_GT(steps[1], steps[0]);
  EXPECT_GT(steps[2], steps[1]);
  EXPECT_LE(steps[2], steps[1] * 8);
}

}  // namespace
}  // namespace bfvr::bfv
