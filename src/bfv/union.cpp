// Set union on canonical Boolean functional vectors (§2.3).
//
// Selecting a vector from the union chooses from either operand set. A bit
// is forced in the union only when it is forced to that value in both sets,
// or when one set has been *excluded* by an earlier choice and the bit is
// forced in the other. The exclusion conditions fx/gx track, per prefix of
// choices, which operand can no longer supply the selected vector — this is
// what the naive "free choice if either allows it" rule misses (the paper's
// over-approximation example).
#include <functional>
#include <tuple>

#include "bfv/internal.hpp"

namespace bfvr::bfv {

namespace internal {

std::vector<Bdd> unionCore(Manager& m, const std::vector<unsigned>& vars,
                           const std::vector<Bdd>& f,
                           const std::vector<Bdd>& g) {
  const std::size_t n = vars.size();
  std::vector<Bdd> h(n);
  Bdd fx = m.zero();  // F excluded by the choices made so far
  Bdd gx = m.zero();  // G excluded by the choices made so far
  for (std::size_t i = 0; i < n; ++i) {
    // While neither operand is excludable and the components agree, the
    // result component is that same function and the exclusions stay 0 —
    // the support optimization the paper applies during quantification.
    if (fx.isFalse() && gx.isFalse() && f[i] == g[i]) {
      h[i] = f[i];
      continue;
    }
    const Bdd v = m.var(vars[i]);
    // f_i = f1 | fc & v_i  =>  f_i|v=0 = f1,  ~(f_i|v=1) = f0.
    Bdd f_lo, f_hi, g_lo, g_hi;
    if (m.threads() > 1) {
      // The two operand cofactor pairs are independent; fuse each pair into
      // one cofactor2 walk and let the pool run them concurrently.
      const std::function<void()> fns[2] = {
          [&] { std::tie(f_lo, f_hi) = m.cofactor2(f[i], vars[i]); },
          [&] { std::tie(g_lo, g_hi) = m.cofactor2(g[i], vars[i]); }};
      m.parallelInvoke(fns);
    } else {
      f_lo = m.cofactor(f[i], vars[i], false);
      f_hi = m.cofactor(f[i], vars[i], true);
      g_lo = m.cofactor(g[i], vars[i], false);
      g_hi = m.cofactor(g[i], vars[i], true);
    }
    const Bdd f1 = f_lo;
    const Bdd f0 = ~f_hi;
    const Bdd g1 = g_lo;
    const Bdd g0 = ~g_hi;
    // Forced in the union: forced in both, or forced in the sole remaining
    // operand.
    const Bdd h1 = (f1 & g1) | (f1 & gx) | (fx & g1);
    const Bdd h0 = (f0 & g0) | (f0 & gx) | (fx & g0);
    // h = h1 | hc & v with hc = ~h1 & ~h0; h1 and h0 are disjoint, so this
    // simplifies to h1 | (~h0 & v).
    h[i] = h1 | (~h0 & v);
    // A choice against an operand's forced value excludes that operand for
    // the rest of the selection.
    fx = fx | (f0 & h[i]) | (f1 & ~h[i]);
    gx = gx | (g0 & h[i]) | (g1 & ~h[i]);
  }
  return h;
}

}  // namespace internal

Bfv setUnion(const Bfv& a, const Bfv& b) {
  a.requireCompatible(b);
  if (a.isEmpty()) return b;
  if (b.isEmpty()) return a;
  Manager& m = *a.manager();
  std::vector<Bdd> h = internal::unionCore(m, a.vars_, a.comps_, b.comps_);
  return Bfv(&m, a.vars_, std::move(h), /*empty=*/false);
}

}  // namespace bfvr::bfv
