// Gate-level sequential netlist: the circuit model under verification.
// Mirrors the ISCAS89 `.bench` primitives (the paper's benchmark format):
// primary inputs, DFF latches, and simple gates with arbitrary fan-in.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace bfvr::circuit {

/// Signal identifier: index of the driving gate in the netlist.
using SignalId = std::uint32_t;

enum class GateOp : std::uint8_t {
  kInput,   ///< primary input (no fanins)
  kConst0,  ///< constant 0
  kConst1,  ///< constant 1
  kBuf,     ///< identity (1 fanin)
  kNot,
  kAnd,  ///< >= 1 fanins
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kLatch  ///< DFF output; fanin[0] is the next-state (data) signal
};

/// True for ops whose output is a state element or source (not evaluated by
/// the combinational simulator).
bool isSource(GateOp op) noexcept;

/// Evaluate a gate op over concrete fanin values.
bool evalGate(GateOp op, const std::vector<bool>& values);

struct Gate {
  GateOp op = GateOp::kInput;
  std::vector<SignalId> fanins;
  std::string name;
};

/// A sequential circuit. Gates are stored in creation order; latches may be
/// created before their data input exists (setLatchData closes the loop).
class Netlist {
 public:
  explicit Netlist(std::string name = "circuit") : name_(std::move(name)) {}

  // ---- construction ---------------------------------------------------------
  SignalId addInput(const std::string& name);
  SignalId addConst(bool value, const std::string& name);
  SignalId addGate(GateOp op, std::vector<SignalId> fanins,
                   const std::string& name);
  /// Creates the latch output signal; data input may be set later.
  SignalId addLatch(const std::string& name, bool init_value);
  void setLatchData(SignalId latch, SignalId data);
  void markOutput(SignalId sig, const std::string& name = "");

  // Convenience builders for common two-input logic.
  SignalId mkAnd(SignalId a, SignalId b, const std::string& name = "");
  SignalId mkOr(SignalId a, SignalId b, const std::string& name = "");
  SignalId mkXor(SignalId a, SignalId b, const std::string& name = "");
  SignalId mkNot(SignalId a, const std::string& name = "");
  /// Multiplexer: s ? a : b.
  SignalId mkMux(SignalId s, SignalId a, SignalId b,
                 const std::string& name = "");

  // ---- observers ------------------------------------------------------------
  const std::string& name() const noexcept { return name_; }
  std::size_t numSignals() const noexcept { return gates_.size(); }
  const Gate& gate(SignalId id) const { return gates_.at(id); }
  const std::vector<SignalId>& inputs() const noexcept { return inputs_; }
  const std::vector<SignalId>& latches() const noexcept { return latches_; }
  const std::vector<SignalId>& outputs() const noexcept { return outputs_; }
  bool latchInit(std::size_t latch_pos) const {
    return latch_init_.at(latch_pos);
  }
  /// Position of a latch signal in latches(), or npos.
  std::size_t latchPos(SignalId sig) const;
  SignalId latchData(std::size_t latch_pos) const;
  /// Lookup by name; throws if unknown.
  SignalId signal(const std::string& name) const;
  bool hasSignal(const std::string& name) const {
    return by_name_.contains(name);
  }

  /// Combinational topological order: every non-source gate appears after
  /// its fanins; sources (inputs, latches, constants) come first. Throws on
  /// combinational cycles or latches with unset data inputs.
  std::vector<SignalId> topoOrder() const;

  /// Structural sanity check (fanin arities, closed latch loops).
  void validate() const;

  /// The set of sources (input/latch positions) in the transitive fanin of
  /// `roots`: used by ordering heuristics and cone-of-influence reduction.
  std::vector<SignalId> faninCone(const std::vector<SignalId>& roots) const;

 private:
  SignalId add(Gate g);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> latches_;
  std::vector<bool> latch_init_;
  std::vector<SignalId> outputs_;
  std::unordered_map<std::string, SignalId> by_name_;
  std::uint32_t anon_counter_ = 0;
};

}  // namespace bfvr::circuit
