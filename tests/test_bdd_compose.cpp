// Composition, vector composition and variable renaming.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

const std::vector<unsigned> kVars{0, 1, 2, 3};

class ComposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ComposeSweep, ComposeMatchesShannonExpansion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  const Bdd g = bddFromTruth(m, kVars, randomTruth(rng, 4));
  for (unsigned j = 0; j < 4; ++j) {
    // f[v_j <- g] == (g & f|v=1) | (~g & f|v=0)
    const Bdd expect = (g & m.cofactor(f, j, true)) |
                       (~g & m.cofactor(f, j, false));
    EXPECT_EQ(m.compose(f, j, g), expect);
  }
}

TEST_P(ComposeSweep, VectorComposeIsSimultaneous) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 7);
  Manager m(6);
  const Bdd f = bddFromTruth(m, {0, 1}, randomTruth(rng, 2));
  // Substitute v0 <- v1, v1 <- v0 simultaneously: a swap, NOT a chain.
  std::vector<Bdd> map(2);
  map[0] = m.var(1);
  map[1] = m.var(0);
  const Bdd swapped = m.vectorCompose(f, map);
  const unsigned perm[] = {1, 0};
  EXPECT_EQ(swapped, m.permute(f, perm));
}

TEST(BddCompose, SimultaneousSwapDiffersFromChained) {
  Manager m(4);
  const Bdd f = m.var(0) & ~m.var(1);
  std::vector<Bdd> map(2);
  map[0] = m.var(1);
  map[1] = m.var(0);
  // Simultaneous swap: v1 & ~v0.
  EXPECT_EQ(m.vectorCompose(f, map), m.var(1) & ~m.var(0));
  // Chained substitution collapses to false: (v1 & ~v1) then [v1 <- v0].
  const Bdd chained = m.compose(m.compose(f, 0, m.var(1)), 1, m.var(0));
  EXPECT_TRUE(chained.isFalse());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposeSweep, ::testing::Range(0, 30));

TEST(BddCompose, ComposeWithConstantsIsCofactor) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) ^ m.var(2);
  EXPECT_EQ(m.compose(f, 1, m.one()), m.cofactor(f, 1, true));
  EXPECT_EQ(m.compose(f, 1, m.zero()), m.cofactor(f, 1, false));
}

TEST(BddCompose, ComposeAbsentVariableIsIdentity) {
  Manager m(4);
  const Bdd f = m.var(0) & m.var(1);
  EXPECT_EQ(m.compose(f, 3, m.var(2)), f);
}

TEST(BddCompose, ComposeUpwardSubstitution) {
  // Substituting a function of an EARLIER variable for a later one must
  // still produce an ordered result.
  Manager m(4);
  const Bdd f = m.var(2) & m.var(3);
  const Bdd g = m.var(0) | m.var(1);
  const Bdd r = m.compose(f, 3, g);
  EXPECT_EQ(r, m.var(2) & (m.var(0) | m.var(1)));
}

TEST(BddCompose, PermuteRenamesBanks) {
  // Interleaved banks v={0,2,4}, u={1,3,5}: rename u->v.
  Manager m(6);
  const Bdd f = (m.var(1) & m.var(3)) | m.var(5);
  std::vector<unsigned> perm{0, 0, 2, 2, 4, 4};
  const Bdd r = m.permute(f, perm);
  EXPECT_EQ(r, (m.var(0) & m.var(2)) | m.var(4));
}

TEST(BddCompose, PermuteIdentity) {
  Manager m(4);
  const Bdd f = m.var(0) ^ m.var(3);
  const unsigned perm[] = {0, 1, 2, 3};
  EXPECT_EQ(m.permute(f, perm), f);
}

TEST(BddCompose, PermuteRoundTrip) {
  Manager m(6);
  const Bdd f = (m.var(0) & m.var(2)) ^ m.var(4);
  const unsigned up[] = {1, 0, 3, 2, 5, 4};
  EXPECT_EQ(m.permute(m.permute(f, up), up), f);
}

TEST(BddCompose, VectorComposeNullEntriesAreIdentity) {
  Manager m(4);
  const Bdd f = m.var(0) & m.var(1) & m.var(2);
  std::vector<Bdd> map(3);
  map[1] = m.var(3);
  EXPECT_EQ(m.vectorCompose(f, map), m.var(0) & m.var(3) & m.var(2));
}

TEST(BddCompose, VectorComposeOnConstants) {
  Manager m(4);
  std::vector<Bdd> map(2, m.var(3));
  EXPECT_EQ(m.vectorCompose(m.one(), map), m.one());
  EXPECT_EQ(m.vectorCompose(m.zero(), map), m.zero());
}

}  // namespace
}  // namespace bfvr::bdd
