// Checkpoint serialization (src/io) and resumable reachability: byte-level
// format checks (magic/version/CRC/truncation), DAG round trips across
// managers, and the headline guarantee — a run killed mid-fixpoint and
// resumed from its checkpoint in a fresh manager finishes with bit-identical
// states / iterations / status on every shipped .bench circuit and engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "io/checkpoint.hpp"
#include "reach/engine.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr::io {
namespace {

using bdd::Bdd;
using bdd::Manager;

std::string tmpPath(const std::string& name) {
  return ::testing::TempDir() + "bfvr_ckpt_" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard check vector for CRC-32/ISO-HDLC.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926U);
  EXPECT_EQ(crc32(nullptr, 0), 0U);
}

TEST(Crc32, SeedChains) {
  const char* s = "123456789";
  const auto* b = reinterpret_cast<const std::uint8_t*>(s);
  EXPECT_EQ(crc32(b + 4, 5, crc32(b, 4)), crc32(b, 9));
}

Checkpoint sampleCheckpoint(Manager& m) {
  Checkpoint c;
  c.engine = "tr";
  c.kind = RootKind::kChi;
  c.iteration = 7;
  c.level2var = m.currentOrder();
  const Bdd f = (m.var(0) & m.var(1)) | (~m.var(2) ^ m.var(3));
  const Bdd g = m.var(1) | ~m.var(3);
  c.reached = {f};
  c.frontier = {g};
  return c;
}

TEST(CheckpointFile, RoundTripsAcrossManagers) {
  const std::string path = tmpPath("roundtrip.bin");
  Manager a(4);
  const Checkpoint c = sampleCheckpoint(a);
  save(path, c);

  Manager b(4);
  const Checkpoint d = load(path, b);
  EXPECT_EQ(d.engine, "tr");
  EXPECT_EQ(d.kind, RootKind::kChi);
  EXPECT_EQ(d.iteration, 7U);
  EXPECT_EQ(d.level2var, a.currentOrder());
  ASSERT_EQ(d.reached.size(), 1U);
  ASSERT_EQ(d.frontier.size(), 1U);
  // Semantically identical on every assignment, and node-for-node the same
  // shape (same order, canonical form).
  for (unsigned bits = 0; bits < 16; ++bits) {
    std::vector<bool> v(4);
    for (unsigned i = 0; i < 4; ++i) v[i] = ((bits >> i) & 1U) != 0;
    EXPECT_EQ(b.eval(d.reached[0], v), a.eval(c.reached[0], v)) << bits;
    EXPECT_EQ(b.eval(d.frontier[0], v), a.eval(c.frontier[0], v)) << bits;
  }
  EXPECT_EQ(b.nodeCount(d.reached[0]), a.nodeCount(c.reached[0]));
  std::remove(path.c_str());
}

TEST(CheckpointMemory, EncodeBytesAreExactlyTheFileBytes) {
  // encode() is the wire/migration twin of save(): byte-identical output,
  // and decode() restores the same checkpoint without touching the
  // filesystem.
  const std::string path = tmpPath("encode_twin.bin");
  Manager a(4);
  const Checkpoint c = sampleCheckpoint(a);
  const std::vector<std::uint8_t> image = encode(c);
  save(path, c);
  const std::vector<char> file = slurp(path);
  ASSERT_EQ(image.size(), file.size());
  EXPECT_TRUE(std::equal(image.begin(), image.end(),
                         reinterpret_cast<const std::uint8_t*>(file.data())));

  Manager b(4);
  const Checkpoint d = decode(image.data(), image.size(), b);
  EXPECT_EQ(d.engine, c.engine);
  EXPECT_EQ(d.iteration, c.iteration);
  ASSERT_EQ(d.reached.size(), 1U);
  EXPECT_EQ(b.nodeCount(d.reached[0]), a.nodeCount(c.reached[0]));
  std::remove(path.c_str());
}

TEST(CheckpointMemory, DecodeRejectsACorruptedImage) {
  Manager a(4);
  std::vector<std::uint8_t> image = encode(sampleCheckpoint(a));
  image[image.size() / 2] ^= 0x01;  // one payload bit
  Manager b(4);
  EXPECT_THROW(decode(image.data(), image.size(), b), Error);
  // Truncation is rejected too, at any cut point.
  const std::vector<std::uint8_t> ok = encode(sampleCheckpoint(a));
  Manager c2(4);
  EXPECT_THROW(decode(ok.data(), ok.size() - 1, c2), Error);
  EXPECT_THROW(decode(ok.data(), 10, c2), Error);
}

TEST(CheckpointFile, RestoresTheRecordedVariableOrder) {
  const std::string path = tmpPath("order.bin");
  Manager a(4);
  const std::vector<unsigned> order{3, 1, 0, 2};
  a.setVarOrder(order);
  save(path, sampleCheckpoint(a));

  Manager b(4);  // natural order until load() restores the recorded one
  load(path, b);
  EXPECT_EQ(b.currentOrder(), order);
  std::remove(path.c_str());
}

TEST(CheckpointFile, ConstantAndSharedRootsSurvive) {
  const std::string path = tmpPath("shared.bin");
  Manager a(3);
  Checkpoint c;
  c.engine = "bfv";
  c.kind = RootKind::kBfv;
  c.level2var = a.currentOrder();
  c.choice_vars = {0, 2};
  const Bdd f = a.var(0) ^ a.var(1);
  c.reached = {f, ~f, a.one(), a.zero()};  // shared DAG + both constants
  c.frontier = {};
  save(path, c);

  Manager b(3);
  const Checkpoint d = load(path, b);
  EXPECT_EQ(d.choice_vars, (std::vector<unsigned>{0, 2}));
  ASSERT_EQ(d.reached.size(), 4U);
  EXPECT_EQ(d.reached[1], ~d.reached[0]);
  EXPECT_TRUE(d.reached[2].isTrue());
  EXPECT_TRUE(d.reached[3].isFalse());
  EXPECT_TRUE(d.frontier.empty());
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileThrows) {
  Manager m(2);
  EXPECT_THROW(load(tmpPath("no-such-file.bin"), m), Error);
}

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = tmpPath("corrupt.bin");
    Manager a(4);
    save(path_, sampleCheckpoint(a));
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 24U);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void expectRejected() {
    spit(path_, bytes_);
    Manager m(4);
    EXPECT_THROW(load(path_, m), Error);
  }

  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(CheckpointCorruption, BadMagic) {
  bytes_[0] ^= 0x40;
  expectRejected();
}

TEST_F(CheckpointCorruption, FutureVersion) {
  bytes_[8] = static_cast<char>(kCheckpointVersion + 1);
  expectRejected();
}

TEST_F(CheckpointCorruption, FlippedPayloadByteFailsCrc) {
  bytes_[bytes_.size() / 2] ^= 0x01;
  expectRejected();
}

TEST_F(CheckpointCorruption, TruncatedPayload) {
  bytes_.resize(bytes_.size() - 3);
  expectRejected();
}

TEST_F(CheckpointCorruption, TruncatedHeader) {
  bytes_.resize(12);
  expectRejected();
}

TEST_F(CheckpointCorruption, TrailingGarbage) {
  bytes_.push_back('x');
  expectRejected();
}

// ---------------------------------------------------------------------------
// Fuzz-style corruption sweeps: EVERY truncated prefix and EVERY
// single-byte-flipped variant of a valid image must be rejected with
// io::Error — never a crash, hang, or silently-wrong checkpoint. Runs in
// memory through decode() (the common core of load()), so the whole sweep
// is a few thousand decodes; the ASan/UBSan CI lane runs these by name to
// catch any out-of-bounds read a malformed length could provoke.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCorruption, EveryTruncatedPrefixIsRejected) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes_.data());
  Manager m(4);
  for (std::size_t n = 0; n < bytes_.size(); ++n) {
    EXPECT_THROW(decode(data, n, m), Error) << "prefix length " << n;
  }
  // The untouched image still decodes — the sweep failed for the right
  // reason, not because the fixture image was bad.
  EXPECT_NO_THROW(decode(data, bytes_.size(), m));
}

TEST_F(CheckpointCorruption, EverySingleByteFlipIsRejected) {
  // Two flip patterns per position: the low bit (minimal corruption, the
  // classic bit-rot shape) and all eight bits (maximal). Either must trip
  // magic, version, CRC, or a size check — there is no unvalidated byte.
  std::vector<std::uint8_t> image(bytes_.begin(), bytes_.end());
  Manager m(4);
  for (const std::uint8_t flip : {0x01, 0xFF}) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] ^= flip;
      EXPECT_THROW(decode(image.data(), image.size(), m), Error)
          << "byte " << i << " ^ " << static_cast<int>(flip);
      image[i] ^= flip;  // restore
    }
  }
  EXPECT_NO_THROW(decode(image.data(), image.size(), m));
}

TEST(CheckpointFile, SaveIsAtomicNoTmpLeftBehind) {
  const std::string path = tmpPath("atomic.bin");
  Manager a(4);
  save(path, sampleCheckpoint(a));
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // renamed away
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill-and-resume on the shipped circuits: the PR's acceptance matrix.
// ---------------------------------------------------------------------------

enum class Engine { kTr, kCbm, kBfv, kCdec, kHybrid };

const char* name(Engine e) {
  switch (e) {
    case Engine::kTr:
      return "tr";
    case Engine::kCbm:
      return "cbm";
    case Engine::kBfv:
      return "bfv";
    case Engine::kCdec:
      return "cdec";
    case Engine::kHybrid:
      return "hybrid";
  }
  return "?";
}

reach::ReachResult dispatch(Engine e, sym::StateSpace& s,
                            reach::ReachOptions opts) {
  switch (e) {
    case Engine::kTr:
      return reach::reachTr(s, opts);
    case Engine::kCbm:
      return reach::reachCbm(s, opts);
    case Engine::kBfv:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    case Engine::kCdec:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
    case Engine::kHybrid:
      return reach::reachHybrid(s, opts);
  }
  throw std::logic_error("bad engine");
}

class ResumeMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, Engine>> {};

TEST_P(ResumeMatrix, KilledRunResumesToBitIdenticalFixpoint) {
  const auto [file, engine] = GetParam();
  const circuit::Netlist n =
      circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/" + file);
  const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};

  // Reference: the uninterrupted fixpoint.
  reach::ReachResult ref;
  {
    Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, order));
    ref = dispatch(engine, s, {});
    ref.reached_bfv.reset();
    ref.reached_chi = Bdd();
  }
  ASSERT_EQ(ref.status, RunStatus::kDone) << file << " " << name(engine);

  const std::string path =
      tmpPath(std::string("resume_") + file + "_" + name(engine));
  if (ref.iterations > 1) {
    // Kill the run mid-fixpoint (max_iterations plays the crash), leaving a
    // checkpoint of every completed iteration behind.
    Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, order));
    reach::ReachOptions opts;
    opts.checkpoint_every = 1;
    opts.checkpoint_path = path;
    opts.max_iterations = ref.iterations / 2;
    const reach::ReachResult killed = dispatch(engine, s, opts);
    ASSERT_EQ(killed.status, RunStatus::kDone);
    ASSERT_EQ(killed.iterations, ref.iterations / 2);
  } else {
    // One-iteration fixpoints (arb4) break out of the loop before the
    // post-iteration checkpoint hook ever runs, so there is no mid-run
    // snapshot to crash on. Drive the same save -> load -> resume path from
    // a handwritten iteration-0 checkpoint instead: reached = frontier =
    // initial state, which is exactly where a fresh run starts.
    Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, order));
    Checkpoint c;
    c.engine = name(engine);
    c.iteration = 0;
    c.level2var = m.currentOrder();
    switch (engine) {
      case Engine::kTr:
      case Engine::kCbm:
      case Engine::kHybrid: {
        const Bdd init = sym::initialChar(s);
        c.kind = RootKind::kChi;
        c.reached = {init};
        c.frontier = {init};
        break;
      }
      case Engine::kBfv: {
        const bfv::Bfv init =
            bfv::Bfv::point(m, s.currentVars(), s.initialBits());
        c.kind = RootKind::kBfv;
        c.choice_vars = s.currentVars();
        c.reached = init.comps();
        c.frontier = init.comps();
        break;
      }
      case Engine::kCdec: {
        const cdec::Cdec init = cdec::Cdec::fromBfv(
            bfv::Bfv::point(m, s.currentVars(), s.initialBits()));
        c.kind = RootKind::kCdec;
        c.choice_vars = s.currentVars();
        c.reached = init.constraints();
        c.frontier = init.constraints();
        break;
      }
    }
    save(path, c);
  }

  // Resume in a completely fresh universe.
  Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, order));
  const reach::ReachResult resumed = reach::resumeReach(s, path, {});
  EXPECT_EQ(resumed.status, ref.status) << file << " " << name(engine);
  EXPECT_EQ(resumed.iterations, ref.iterations) << file << " " << name(engine);
  EXPECT_DOUBLE_EQ(resumed.states, ref.states) << file << " " << name(engine);
  EXPECT_EQ(resumed.chi_nodes, ref.chi_nodes) << file << " " << name(engine);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Shipped, ResumeMatrix,
    ::testing::Combine(::testing::Values("arb4.bench", "cnt8m200.bench",
                                         "crc8.bench", "fifo3.bench",
                                         "johnson8.bench", "twin6.bench"),
                       ::testing::Values(Engine::kTr, Engine::kCbm,
                                         Engine::kBfv, Engine::kCdec,
                                         Engine::kHybrid)));

TEST(Resume, MissingCheckpointThrowsIoError) {
  const circuit::Netlist n = circuit::makeJohnson(5);
  Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  EXPECT_THROW(reach::resumeReach(s, tmpPath("never-written.bin"), {}),
               Error);
}

}  // namespace
}  // namespace bfvr::io
