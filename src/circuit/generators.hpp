// Parameterized sequential circuit generators — the workload suite standing
// in for the ISCAS89 benchmarks (see DESIGN.md §3 for the substitution
// rationale). Each generator documents its reachable-state count, which the
// tests use as an oracle.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"

namespace bfvr::circuit {

/// Mod-K up counter with an enable input. Reachable from 0: exactly K
/// states (requires 2 <= k <= 2^bits).
Netlist makeCounter(unsigned bits, std::uint64_t modulo);

/// Johnson (twisted-ring) counter with enable. Reachable: 2*bits states.
Netlist makeJohnson(unsigned bits);

/// Fibonacci LFSR with a primitive polynomial and an enable input, seeded
/// with 1. Reachable: 2^bits - 1 states. Supported widths: 3..12, 16, 17,
/// 20, 24, 28, 32.
Netlist makeLfsr(unsigned bits);

/// Free-running Fibonacci LFSR with XNOR feedback and no inputs at all —
/// the enable mux of makeLfsr is an AND structure, which makes that
/// circuit non-affine; this one is pure shift + XNOR, i.e. XOR-affine, the
/// exact class of the logical-zonotope backend (src/lz). XNOR feedback
/// lets the register start from the all-zero state (the natural DFF init,
/// expressible in .bench) and still cycle through 2^bits - 1 states; the
/// excluded lockup state is all-ones. Same width table as makeLfsr.
Netlist makeLfsrFree(unsigned bits);

/// Twin shift register: two `bits`-deep shift registers fed by the same
/// serial input. Reachable: the 2^bits states with a == b — the paper's §3
/// functional-dependency example chi = AND_i (a_i == b_i). With the twin
/// latches separated in the variable order the characteristic function is
/// exponential in `bits`; the BFV stays linear in every order.
Netlist makeTwinShift(unsigned bits);

/// Round-robin arbiter over `clients` request lines: one-hot priority
/// pointer, cyclic priority chain, grant outputs. Reachable: `clients`
/// one-hot pointer states.
Netlist makeArbiter(unsigned clients);

/// FIFO controller with 2^ptr_bits entries: read/write pointers plus an
/// occupancy counter (a redundant state encoding rich in functional
/// dependencies). Reachable: 4^ptr_bits + 2^ptr_bits states.
Netlist makeFifoCtrl(unsigned ptr_bits);

/// Gray-code counter with enable: successive states differ in one bit.
/// Reachable: all 2^bits states.
Netlist makeGrayCounter(unsigned bits);

/// Serial CRC register: an LFSR-style feedback register that also XORs a
/// data input into the feedback — every state becomes reachable quickly
/// (short diameter), unlike the autonomous LFSR. Reachable: 2^bits.
/// Supported widths: the same table as makeLfsr.
Netlist makeCrc(unsigned bits);

/// Random sequential netlist: `gates` random 2-input gates over the
/// sources, the last `latches` signals feeding the latch data inputs.
/// Deterministic in `seed`.
Netlist makeRandomSeq(unsigned latches, unsigned inputs, unsigned gates,
                      std::uint64_t seed);

/// Side-by-side composition (no interconnection): state space is the
/// product, reachable set the product of the operands' reachable sets.
Netlist concatenate(const Netlist& a, const Netlist& b,
                    const std::string& name);

}  // namespace bfvr::circuit
