// Shared engine plumbing: budget enforcement and peak-live-node sampling.
#pragma once

#include "reach/engine.hpp"

namespace bfvr::reach::internal {

/// Thrown inside the iteration loop when the wall-clock budget expires.
struct TimeBudgetExceeded {};

/// Samples the paper's Peak(K) metric after every major step and enforces
/// the run budget.
class RunGuard {
 public:
  RunGuard(Manager& m, const Budget& budget) : m_(m), budget_(budget) {}

  /// Record the current live node count; throw on exhausted budgets.
  void sample() {
    const std::size_t live = m_.liveNodeCount();
    if (live > peak_) peak_ = live;
    if (budget_.max_live_nodes != 0 && live > budget_.max_live_nodes) {
      throw bdd::NodeBudgetExceeded(budget_.max_live_nodes);
    }
    if (budget_.max_seconds > 0.0 && timer_.seconds() > budget_.max_seconds) {
      throw TimeBudgetExceeded{};
    }
  }

  std::size_t peak() const noexcept { return peak_; }
  double seconds() const noexcept { return timer_.seconds(); }

 private:
  Manager& m_;
  Budget budget_;
  Timer timer_;
  std::size_t peak_ = 0;
};

/// Apply the run's reorder policy before the iteration loop: bind each
/// latch's (v, u) pair into a reorder group. Pairs that are not at adjacent
/// levels (the manager was reordered before this run) are left unbound.
inline void applyReorderPolicy(sym::StateSpace& s, const ReachOptions& opts) {
  if (!opts.reorder.group_state_pairs) return;
  Manager& m = s.manager();
  for (unsigned i = 0; i < s.numLatches(); ++i) {
    const unsigned pair[2] = {s.currentVar(i), s.paramVar(i)};
    if (m.levelOfVar(pair[1]) == m.levelOfVar(pair[0]) + 1) {
      m.bindVarGroup(pair);
    }
  }
}

/// Per-iteration reorder hook (called from the engines' safe point, next to
/// maybeGc()).
inline void maybeStepReorder(Manager& m, const ReachOptions& opts,
                             unsigned iteration) {
  if (opts.reorder.every != 0 && iteration % opts.reorder.every == 0) {
    m.reorder(opts.reorder.method);
  }
}

/// Runs `body` (the iteration loop) and folds budget violations into the
/// result's status; records time/peak/op metrics.
template <typename Body>
ReachResult runGuarded(Manager& m, const Budget& budget, Body&& body) {
  ReachResult r;
  RunGuard guard(m, budget);
  const bdd::OpStats before = m.stats();
  try {
    body(r, guard);
    r.status = RunStatus::kDone;
  } catch (const bdd::NodeBudgetExceeded&) {
    r.status = RunStatus::kMemOut;
  } catch (const TimeBudgetExceeded&) {
    r.status = RunStatus::kTimeOut;
  }
  r.seconds = guard.seconds();
  r.peak_live_nodes = guard.peak();
  const bdd::OpStats after = m.stats();
  r.ops.top_ops = after.top_ops - before.top_ops;
  r.ops.recursive_steps = after.recursive_steps - before.recursive_steps;
  r.ops.cache_lookups = after.cache_lookups - before.cache_lookups;
  r.ops.cache_hits = after.cache_hits - before.cache_hits;
  r.ops.nodes_created = after.nodes_created - before.nodes_created;
  r.ops.gc_runs = after.gc_runs - before.gc_runs;
  r.ops.reorder_runs = after.reorder_runs - before.reorder_runs;
  r.ops.reorder_swaps = after.reorder_swaps - before.reorder_swaps;
  r.ops.reorder_nodes_saved =
      after.reorder_nodes_saved - before.reorder_nodes_saved;
  return r;
}

}  // namespace bfvr::reach::internal
