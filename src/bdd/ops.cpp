// Apply-family recursive kernels: AND, XOR, ITE, EXISTS, AND-EXISTS.
#include <algorithm>
#include <utility>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

// ---------------------------------------------------------------------------
// AND
// ---------------------------------------------------------------------------

Edge Manager::andRec(Edge f, Edge g) {
  // Terminal cases.
  if (f == g) return f;
  if (f == negate(g)) return kFalseEdge;
  if (f == kTrueEdge) return g;
  if (g == kTrueEdge) return f;
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  // Commutative: normalize operand order for the cache.
  if (f > g) std::swap(f, g);
  Edge out;
  if (cacheLookup(kOpAnd, f, g, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t top = std::min(lf, lg);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  const Edge rh = andRec(fh, gh);
  const Edge rl = andRec(fl, gl);
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpAnd, f, g, 0, r);
  return r;
}

// ---------------------------------------------------------------------------
// XOR
// ---------------------------------------------------------------------------

Edge Manager::xorRec(Edge f, Edge g) {
  if (f == g) return kFalseEdge;
  if (f == negate(g)) return kTrueEdge;
  if (f == kFalseEdge) return g;
  if (g == kFalseEdge) return f;
  if (f == kTrueEdge) return negate(g);
  if (g == kTrueEdge) return negate(f);
  // xor(~f, g) == ~xor(f, g): strip complements, remember parity.
  std::uint32_t parity = 0;
  if (isCompl(f)) {
    f = regular(f);
    parity ^= 1;
  }
  if (isCompl(g)) {
    g = regular(g);
    parity ^= 1;
  }
  if (f > g) std::swap(f, g);
  Edge out;
  if (cacheLookup(kOpXor, f, g, 0, out)) return out ^ parity;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t top = std::min(lf, lg);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  const Edge rh = xorRec(fh, gh);
  const Edge rl = xorRec(fl, gl);
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpXor, f, g, 0, r);
  return r ^ parity;
}

// ---------------------------------------------------------------------------
// ITE
// ---------------------------------------------------------------------------

Edge Manager::iteRec(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return negate(f);
  // Collapse equal / opposite operands.
  if (f == g) g = kTrueEdge;
  if (f == negate(g)) g = kFalseEdge;
  if (f == h) h = kFalseEdge;
  if (f == negate(h)) h = kTrueEdge;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return negate(f);
  if (g == h) return g;
  // Delegate two-operand forms to the cheaper kernels.
  if (g == kTrueEdge) return negate(andRec(negate(f), negate(h)));  // f | h
  if (h == kFalseEdge) return andRec(f, g);
  if (g == kFalseEdge) return andRec(negate(f), h);
  if (h == kTrueEdge) return negate(andRec(f, negate(g)));  // ~f | g
  if (g == negate(h)) return xorRec(f, h);
  // Canonicalize: first operand regular; then-edge regular via output flip.
  if (isCompl(f)) {
    f = negate(f);
    std::swap(g, h);
  }
  std::uint32_t parity = 0;
  if (isCompl(g)) {
    g = negate(g);
    h = negate(h);
    parity = 1;
  }
  Edge out;
  if (cacheLookup(kOpIte, f, g, h, out)) return out ^ parity;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t lh = level(h);
  const std::uint32_t top = std::min(lf, std::min(lg, lh));
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  const Edge hh = lh == top ? highOf(h) : h;
  const Edge hl = lh == top ? lowOf(h) : h;
  const Edge rh = iteRec(fh, gh, hh);
  const Edge rl = iteRec(fl, gl, hl);
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpIte, f, g, h, r);
  return r ^ parity;
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

Edge Manager::existsRec(Edge f, Edge cube) {
  if (isConstEdge(f) || cube == kTrueEdge) return f;
  // Skip quantified variables above f's top variable.
  while (!isConstEdge(cube) && level(cube) < level(f)) {
    cube = highOf(cube);
  }
  if (cube == kTrueEdge) return f;
  Edge out;
  if (cacheLookup(kOpExists, f, cube, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t top = level(f);
  const Edge fh = highOf(f);
  const Edge fl = lowOf(f);
  Edge r;
  if (level(cube) == top) {
    const Edge rest = highOf(cube);
    const Edge rh = existsRec(fh, rest);
    if (rh == kTrueEdge) {
      r = kTrueEdge;
    } else {
      const Edge rl = existsRec(fl, rest);
      r = negate(andRec(negate(rh), negate(rl)));  // rh | rl
    }
  } else {
    r = mkNode(level2var_[top], existsRec(fh, cube), existsRec(fl, cube));
  }
  cacheStore(kOpExists, f, cube, 0, r);
  return r;
}

Edge Manager::andExistsRec(Edge f, Edge g, Edge cube) {
  // Terminal cases.
  if (f == kFalseEdge || g == kFalseEdge || f == negate(g)) return kFalseEdge;
  if (f == kTrueEdge && g == kTrueEdge) return kTrueEdge;
  if (f == g || g == kTrueEdge) return existsRec(f, cube);
  if (f == kTrueEdge) return existsRec(g, cube);
  if (f > g) std::swap(f, g);
  const std::uint32_t top = std::min(level(f), level(g));
  // Skip quantified variables above both operands.
  while (!isConstEdge(cube) && level(cube) < top) {
    cube = highOf(cube);
  }
  if (cube == kTrueEdge) return andRec(f, g);
  Edge out;
  if (cacheLookup(kOpAndExists, f, g, cube, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  Edge r;
  if (level(cube) == top) {
    const Edge rest = highOf(cube);
    const Edge rh = andExistsRec(fh, gh, rest);
    if (rh == kTrueEdge) {
      r = kTrueEdge;
    } else {
      const Edge rl = andExistsRec(fl, gl, rest);
      r = negate(andRec(negate(rh), negate(rl)));  // rh | rl
    }
  } else {
    r = mkNode(level2var_[top], andExistsRec(fh, gh, cube),
               andExistsRec(fl, gl, cube));
  }
  cacheStore(kOpAndExists, f, g, cube, r);
  return r;
}

// ---------------------------------------------------------------------------
// Public wrappers
// ---------------------------------------------------------------------------

// Each wrapper retries under the pressure ladder (withPressure): at this
// boundary the operands are handle-protected, so a failed attempt's partial
// results are collectible garbage and the relieve() GC is safe.
//
// With threads > 1, the wrapper opens a ParRegion (node-store headroom, the
// in-par-region flag, stats merge on exit) and runs the task-parallel twin
// of its kernel (par.cpp). Sequentially, ParRegion is inert and the ternary
// takes the historical kernel — bit-identical behavior.

Bdd Manager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = requireSameManager(f);
    const Edge ge = requireSameManager(g);
    const Edge he = requireSameManager(h);
    return make(par_enabled_ ? iteParRec(fe, ge, he, 0) : iteRec(fe, ge, he));
  });
}

Bdd Manager::andB(const Bdd& f, const Bdd& g) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = requireSameManager(f);
    const Edge ge = requireSameManager(g);
    return make(par_enabled_ ? andParRec(fe, ge, 0) : andRec(fe, ge));
  });
}

Bdd Manager::orB(const Bdd& f, const Bdd& g) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = negate(requireSameManager(f));
    const Edge ge = negate(requireSameManager(g));
    return make(
        negate(par_enabled_ ? andParRec(fe, ge, 0) : andRec(fe, ge)));
  });
}

Bdd Manager::xorB(const Bdd& f, const Bdd& g) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = requireSameManager(f);
    const Edge ge = requireSameManager(g);
    return make(par_enabled_ ? xorParRec(fe, ge, 0) : xorRec(fe, ge));
  });
}

Bdd Manager::exists(const Bdd& f, const Bdd& cube) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = requireSameManager(f);
    const Edge ce = requireSameManager(cube);
    return make(par_enabled_ ? existsParRec(fe, ce, 0) : existsRec(fe, ce));
  });
}

Bdd Manager::forall(const Bdd& f, const Bdd& cube) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = negate(requireSameManager(f));
    const Edge ce = requireSameManager(cube);
    return make(
        negate(par_enabled_ ? existsParRec(fe, ce, 0) : existsRec(fe, ce)));
  });
}

Bdd Manager::andExists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  ++curStats().top_ops;
  return withPressure([&] {
    ParRegion region(*this);
    const Edge fe = requireSameManager(f);
    const Edge ge = requireSameManager(g);
    const Edge ce = requireSameManager(cube);
    return make(par_enabled_ ? andExistsParRec(fe, ge, ce, 0)
                             : andExistsRec(fe, ge, ce));
  });
}

Bdd Manager::cube(std::span<const unsigned> vars) {
  Bdd c = one();
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  for (unsigned v : sorted) ensureVar(v);
  // Build bottom-up (deepest level first) so each mkNode is O(1); under a
  // reordered manager the level order differs from the index order.
  std::sort(sorted.begin(), sorted.end(), [this](unsigned a, unsigned b) {
    return var2level_[a] < var2level_[b];
  });
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    c = make(mkNode(*it, c.raw(), kFalseEdge));
  }
  return c;
}

}  // namespace bfvr::bdd
