// Service soak (the PR's acceptance scenario, in-process): a 4-worker
// server, three weighted tenants pushing 1000+ queued jobs concurrently,
// an exact fairness check on the dispatch log, one eviction-with-migration
// resumed bit-identically, and node accounting back to zero at shutdown.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "run/run.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace bfvr::svc {
namespace {

constexpr unsigned kJobsPerTenant = 334;  // 3 tenants -> 1002 queued jobs

struct TenantOutcome {
  unsigned accepted = 0;
  unsigned done = 0;
  unsigned failed = 0;
};

/// One tenant's client: submit kJobsPerTenant tiny jobs, then pump the
/// event stream until every one of them reports JobDone.
TenantOutcome runTenant(const std::string& sock, const std::string& tenant) {
  TenantOutcome out;
  Client client("unix:" + sock, tenant);
  for (unsigned i = 0; i < kJobsPerTenant; ++i) {
    client.submit("circuit=gen:counter:3:4");
  }
  while (out.done + out.failed < kJobsPerTenant) {
    std::optional<Event> ev = client.next();
    if (!ev.has_value()) break;  // server hung up: the counts will show it
    if (std::get_if<Accepted>(&*ev) != nullptr) {
      ++out.accepted;
    } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
      if (d->status == "done") {
        ++out.done;
      } else {
        ++out.failed;
      }
    } else if (std::get_if<Rejected>(&*ev) != nullptr) {
      ++out.failed;
    }
  }
  client.bye();
  return out;
}

TEST(SvcSoak, MultiTenantFairnessEvictionAndCleanShutdown) {
  const std::string sock =
      "/tmp/bfvr_soak_" + std::to_string(::getpid()) + ".sock";
  Server::Options opts;
  opts.endpoint = "unix:" + sock;
  opts.workers = 4;
  opts.warm_managers = true;
  opts.tenants = parseTenantsString("alpha:3\nbravo:2\ncarol:1\n");
  opts.spool_dir = "/tmp";
  opts.checkpoint_every = 1;
  opts.stream_iterations = false;  // throughput mode; eviction needs no feed
  opts.name = "soak";
  opts.flight_dir = ::testing::TempDir();
  const std::string flight_path = opts.flight_dir + "/FLIGHT_soak.json";
  std::remove(flight_path.c_str());
  Server server(opts);
  server.start();

  // --- phase 1: saturate, backlog, drain -------------------------------
  // Four deliberately oversized "plug" jobs occupy every worker while the
  // three tenants build their backlog, so the dispatch log right after the
  // plugs is a clean all-tenants-contending window.
  Client plug_client("unix:" + sock, "plug");
  std::set<std::uint64_t> plugs;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t tag =
        plug_client.submit("circuit=gen:counter:20:1000000 deadline=3");
    std::optional<std::uint64_t> job = plug_client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    plugs.insert(*job);
  }

  TenantOutcome alpha, bravo, carol;
  std::thread ta([&] { alpha = runTenant(sock, "alpha"); });
  std::thread tb([&] { bravo = runTenant(sock, "bravo"); });
  std::thread tc([&] { carol = runTenant(sock, "carol"); });
  // Drain the plug dones in *completion* order — under load the four do
  // not finish in submission order.
  while (!plugs.empty()) {
    std::optional<Event> ev = plug_client.next();
    ASSERT_TRUE(ev.has_value());
    if (const auto* d = std::get_if<JobDone>(&*ev)) {
      ASSERT_EQ(plugs.erase(d->job), 1u);
      // A plug either hits its deadline or (on a very fast machine)
      // finishes; both mean the worker is free again.
      EXPECT_TRUE(d->status == "T.O." || d->status == "done") << d->status;
    }
  }
  ta.join();
  tb.join();
  tc.join();

  for (const TenantOutcome* t : {&alpha, &bravo, &carol}) {
    EXPECT_EQ(t->accepted, kJobsPerTenant);
    EXPECT_EQ(t->done, kJobsPerTenant);
    EXPECT_EQ(t->failed, 0u);
  }

  // Fairness evidence: the first 4 dispatches are the plugs; in the next
  // 60 every tenant is backlogged, so smooth WRR must hand out shares in
  // exact weight proportion (3:2:1 of 60 = 30/20/10; +-2 absorbs the
  // submission race on the window edge).
  const std::vector<std::string> log = server.dispatchLog();
  ASSERT_GE(log.size(), 64u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(log[i], "plug");
  int a = 0, b = 0, c = 0;
  for (std::size_t i = 4; i < 64; ++i) {
    if (log[i] == "alpha") ++a;
    if (log[i] == "bravo") ++b;
    if (log[i] == "carol") ++c;
  }
  EXPECT_EQ(a + b + c, 60);
  EXPECT_NEAR(a, 30, 2);
  EXPECT_NEAR(b, 20, 2);
  EXPECT_NEAR(c, 10, 2);

  // --- phase 2: evict, migrate, resume bit-identically -----------------
  run::JobSpec ref;
  ref.circuit = "gen:counter:14:12000";
  const run::JobResult ref_result = run::executeJob(ref);
  ASSERT_EQ(ref_result.status, RunStatus::kDone);
  std::uint64_t evicted_job = 0;
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:14:12000");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    evicted_job = *job;
    // Wait for the dispatch, give the engine a moment to lay down a spool
    // snapshot (checkpoint_every=1: any completed iteration suffices),
    // then pull the rug.
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (std::get_if<JobStarted>(&*ev) != nullptr) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client.evict(*job);
    bool evicted_seen = false;
    std::uint32_t evicted_from = 0;
    JobDone done;
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* e = std::get_if<JobEvicted>(&*ev)) {
        evicted_seen = true;
        evicted_from = e->worker;
        EXPECT_GE(e->iteration, 1u);
      } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
        done = *d;
        break;
      }
    }
    ASSERT_TRUE(evicted_seen) << "job finished before the evict landed";
    EXPECT_TRUE(done.resumed);
    EXPECT_EQ(done.evictions, 1u);
    EXPECT_NE(done.worker, evicted_from);  // migrated off the old worker
    EXPECT_EQ(done.status, "done");
    EXPECT_DOUBLE_EQ(done.states, ref_result.reach.states);
    EXPECT_EQ(done.iterations, ref_result.reach.iterations);
    client.bye();
  }

  // The evicted job's span timeline shows the full migration story: two
  // different workers, an "evicted" stamp and a "resumed" stamp.
  {
    bool span_found = false;
    for (const obs::JobSpan& span : server.spans()) {
      if (span.job != evicted_job) continue;
      span_found = true;
      EXPECT_EQ(span.status, "done");
      EXPECT_EQ(span.evictions, 1u);
      ASSERT_EQ(span.workers.size(), 2u);
      EXPECT_NE(span.workers[0], span.workers[1]);
      bool saw_evicted = false, saw_resumed = false;
      for (const obs::SpanEvent& ev : span.events) {
        if (ev.what == "evicted") saw_evicted = true;
        // Migration ordering: the resume comes after the eviction.
        if (ev.what == "resumed") saw_resumed = saw_evicted;
      }
      EXPECT_TRUE(saw_evicted);
      EXPECT_TRUE(saw_resumed);
    }
    EXPECT_TRUE(span_found);
  }

  // --- phase 3: injected worker fault dumps the flight ring ------------
  // A deterministic mid-run allocation failure folds to memout; the server
  // notices faults_injected != 0 and writes the post-mortem dump.
  {
    Client client("unix:" + sock, "fault");
    const std::uint64_t tag =
        client.submit("circuit=gen:counter:8:200 fault-allocs=2000");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    const JobDone done = client.awaitDone(*job);
    EXPECT_EQ(done.status, "M.O.");
    EXPECT_NE(done.message.find("injected"), std::string::npos);
    client.bye();
  }
  {
    // The dump is written after the JobDone frame goes out (file I/O stays
    // off the scheduler lock), so give the worker thread a moment.
    std::string dump;
    for (int tries = 0; tries < 100; ++tries) {
      std::ifstream in(flight_path);
      if (in.good()) {
        dump.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
        if (dump.find("worker-fault") != std::string::npos) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_FALSE(dump.empty()) << "no flight dump at " << flight_path;
    EXPECT_NE(dump.find("\"reason\": \"worker-fault\""), std::string::npos);
    // The ring's recent events cover the whole incident sequence: the
    // eviction and resume from phase 2, then the injected fault.
    const std::size_t fault_at = dump.find("\"category\": \"fault\"");
    EXPECT_NE(fault_at, std::string::npos);
    EXPECT_NE(dump.find("\"category\": \"eviction\""), std::string::npos);
    EXPECT_NE(dump.find("\"category\": \"resume\""), std::string::npos);
    EXPECT_LT(dump.find("\"category\": \"eviction\""), fault_at);
  }

  // Per-tenant span accounting: one span per accepted job, exactly.
  EXPECT_EQ(server.spanCount("alpha"), kJobsPerTenant + 1u);  // + evict job
  EXPECT_EQ(server.spanCount("bravo"), kJobsPerTenant);
  EXPECT_EQ(server.spanCount("carol"), kJobsPerTenant);
  EXPECT_EQ(server.spanCount("plug"), 4u);
  EXPECT_EQ(server.spanCount("fault"), 1u);

  // --- shutdown: accounting back to zero -------------------------------
  server.requestShutdown(true);
  server.waitStopped();
  // 4 plugs + 1002 tenant jobs + the evicted job dispatched twice + the
  // fault-injected job.
  EXPECT_EQ(server.dispatchLog().size(), 4u + 3u * kJobsPerTenant + 3u);
  const std::string stats = server.statsJson();
  EXPECT_NE(stats.find("\"evictions\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"resumes\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"leaked_nodes\": 0"), std::string::npos) << stats;
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
  EXPECT_EQ(server.warmStats().resets_failed, 0u);
}

}  // namespace
}  // namespace bfvr::svc
