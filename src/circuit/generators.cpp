#include "circuit/generators.hpp"

#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace bfvr::circuit {

namespace {

std::string idx(const std::string& base, unsigned i) {
  return base + std::to_string(i);
}

/// Primitive polynomial tap positions (1-based, Fibonacci form), shared by
/// the LFSR and CRC generators. Every entry has an even tap count, which
/// makeLfsrFree relies on: with an even number of taps the XNOR-feedback
/// lockup state is all-ones, so the all-zero start state is on the long
/// cycle.
const std::vector<unsigned>& lfsrTaps(unsigned bits) {
  static const std::map<unsigned, std::vector<unsigned>> kTaps = {
      {3, {3, 2}},           {4, {4, 3}},
      {5, {5, 3}},           {6, {6, 5}},
      {7, {7, 6}},           {8, {8, 6, 5, 4}},
      {9, {9, 5}},           {10, {10, 7}},
      {11, {11, 9}},         {12, {12, 11, 10, 4}},
      {16, {16, 15, 13, 4}}, {17, {17, 14}},
      {20, {20, 17}},        {24, {24, 23, 22, 17}},
      {28, {28, 25}},        {32, {32, 22, 2, 1}}};
  const auto it = kTaps.find(bits);
  if (it == kTaps.end()) {
    throw std::invalid_argument("lfsrTaps: unsupported width");
  }
  return it->second;
}

}  // namespace

Netlist makeCounter(unsigned bits, std::uint64_t modulo) {
  if (bits == 0 || bits > 63 || modulo < 2 ||
      modulo > (std::uint64_t{1} << bits)) {
    throw std::invalid_argument("makeCounter: bad parameters");
  }
  Netlist n("cnt" + std::to_string(bits) + "m" + std::to_string(modulo));
  const SignalId en = n.addInput("en");
  std::vector<SignalId> q(bits);
  for (unsigned i = 0; i < bits; ++i) q[i] = n.addLatch(idx("q", i), false);

  // Incrementer: inc_i = q_i XOR carry_{i-1}, carry chain of ANDs.
  std::vector<SignalId> inc(bits);
  SignalId carry = n.addGate(GateOp::kBuf, {en}, "c0");
  for (unsigned i = 0; i < bits; ++i) {
    inc[i] = n.mkXor(q[i], carry, idx("inc", i));
    if (i + 1 < bits) carry = n.mkAnd(q[i], carry, idx("c", i + 1));
  }
  // Wrap detector: next == modulo (compare the incremented value).
  SignalId at_wrap = n.addGate(GateOp::kBuf, {en}, "wrap_seed");
  for (unsigned i = 0; i < bits; ++i) {
    const bool bit = ((modulo >> i) & 1U) != 0;
    const SignalId cmp =
        bit ? inc[i] : n.mkNot(inc[i], idx("wn", i));
    at_wrap = n.mkAnd(at_wrap, cmp, idx("wrap", i));
  }
  for (unsigned i = 0; i < bits; ++i) {
    // next = wrap ? 0 : inc (inc already holds q when !en).
    const SignalId nx =
        n.mkAnd(inc[i], n.mkNot(at_wrap, idx("nw", i)), idx("nq", i));
    n.setLatchData(q[i], nx);
  }
  n.markOutput(at_wrap);
  n.markOutput(q[bits - 1]);
  n.validate();
  return n;
}

Netlist makeJohnson(unsigned bits) {
  if (bits < 2) throw std::invalid_argument("makeJohnson: bits >= 2");
  Netlist n("johnson" + std::to_string(bits));
  const SignalId en = n.addInput("en");
  std::vector<SignalId> q(bits);
  for (unsigned i = 0; i < bits; ++i) q[i] = n.addLatch(idx("q", i), false);
  const SignalId fb = n.mkNot(q[bits - 1], "fb");
  for (unsigned i = 0; i < bits; ++i) {
    const SignalId shifted = i == 0 ? fb : q[i - 1];
    n.setLatchData(q[i], n.mkMux(en, shifted, q[i], idx("nq", i)));
  }
  n.markOutput(q[bits - 1]);
  n.validate();
  return n;
}

Netlist makeLfsr(unsigned bits) {
  const std::vector<unsigned>& taps = lfsrTaps(bits);
  Netlist n("lfsr" + std::to_string(bits));
  const SignalId en = n.addInput("en");
  std::vector<SignalId> q(bits);
  for (unsigned i = 0; i < bits; ++i) {
    q[i] = n.addLatch(idx("q", i), i == 0);  // seed = 000..01
  }
  SignalId fb = q[taps[0] - 1];
  for (std::size_t t = 1; t < taps.size(); ++t) {
    fb = n.mkXor(fb, q[taps[t] - 1], idx("fb", static_cast<unsigned>(t)));
  }
  for (unsigned i = 0; i < bits; ++i) {
    const SignalId shifted = i == 0 ? fb : q[i - 1];
    n.setLatchData(q[i], n.mkMux(en, shifted, q[i], idx("nq", i)));
  }
  n.markOutput(q[bits - 1]);
  n.validate();
  return n;
}

Netlist makeLfsrFree(unsigned bits) {
  const std::vector<unsigned>& taps = lfsrTaps(bits);
  Netlist n("lfsrf" + std::to_string(bits));
  std::vector<SignalId> q(bits);
  for (unsigned i = 0; i < bits; ++i) q[i] = n.addLatch(idx("q", i), false);
  // XNOR feedback: fold the taps with XOR, complement on the last step.
  // From all-zero the feedback is 1, so the register leaves the init state
  // immediately; the (all-ones) lockup state is never reached.
  SignalId fb = q[taps[0] - 1];
  for (std::size_t t = 1; t + 1 < taps.size(); ++t) {
    fb = n.mkXor(fb, q[taps[t] - 1], idx("fb", static_cast<unsigned>(t)));
  }
  fb = n.addGate(GateOp::kXnor, {fb, q[taps.back() - 1]}, "fbn");
  for (unsigned i = 0; i < bits; ++i) {
    n.setLatchData(q[i], i == 0 ? fb : q[i - 1]);
  }
  n.markOutput(q[bits - 1]);
  n.validate();
  return n;
}

Netlist makeTwinShift(unsigned bits) {
  if (bits == 0) throw std::invalid_argument("makeTwinShift: bits >= 1");
  Netlist n("twin" + std::to_string(bits));
  const SignalId d = n.addInput("d");
  std::vector<SignalId> a(bits);
  std::vector<SignalId> b(bits);
  // Declared a-bank first, b-bank second: in the "natural" order the twin
  // latches sit maximally far apart — the adversarial ordering for the
  // characteristic function.
  for (unsigned i = 0; i < bits; ++i) a[i] = n.addLatch(idx("a", i), false);
  for (unsigned i = 0; i < bits; ++i) b[i] = n.addLatch(idx("b", i), false);
  for (unsigned i = 0; i < bits; ++i) {
    n.setLatchData(a[i], i == 0 ? d : a[i - 1]);
    n.setLatchData(b[i], i == 0 ? d : b[i - 1]);
  }
  n.markOutput(n.mkXor(a[bits - 1], b[bits - 1], "mismatch"));
  n.validate();
  return n;
}

Netlist makeArbiter(unsigned clients) {
  if (clients < 2) throw std::invalid_argument("makeArbiter: clients >= 2");
  Netlist n("arb" + std::to_string(clients));
  std::vector<SignalId> req(clients);
  for (unsigned i = 0; i < clients; ++i) req[i] = n.addInput(idx("req", i));
  // One-hot priority pointer; client `ptr` has the highest priority.
  std::vector<SignalId> ptr(clients);
  for (unsigned i = 0; i < clients; ++i) {
    ptr[i] = n.addLatch(idx("ptr", i), i == 0);
  }
  // Cyclic priority chain: grant_j = req_j & no request from a client with
  // strictly higher priority. Unrolled per pointer position.
  std::vector<SignalId> grant(clients);
  for (unsigned j = 0; j < clients; ++j) {
    // For each pointer position p, compute "no earlier request" along the
    // cyclic order p, p+1, .., j-1 and AND with ptr_p.
    SignalId any = 0;
    bool have = false;
    for (unsigned p = 0; p < clients; ++p) {
      SignalId none_before = n.addGate(GateOp::kBuf, {ptr[p]},
                                       "g" + std::to_string(j) + "_p" +
                                           std::to_string(p));
      for (unsigned k = p; (k % clients) != j; ++k) {
        const unsigned c = k % clients;
        none_before = n.mkAnd(none_before, n.mkNot(req[c]));
      }
      any = have ? n.mkOr(any, none_before) : none_before;
      have = true;
    }
    grant[j] = n.mkAnd(req[j], any, idx("grant", j));
    n.markOutput(grant[j]);
  }
  // Pointer update: move to the client after the granted one; hold when no
  // request.
  SignalId any_req = req[0];
  for (unsigned i = 1; i < clients; ++i) any_req = n.mkOr(any_req, req[i]);
  for (unsigned i = 0; i < clients; ++i) {
    const SignalId next_on_grant = grant[(i + clients - 1) % clients];
    n.setLatchData(ptr[i], n.mkMux(any_req, next_on_grant, ptr[i],
                                   idx("nptr", i)));
  }
  n.validate();
  return n;
}

Netlist makeFifoCtrl(unsigned ptr_bits) {
  if (ptr_bits == 0 || ptr_bits > 8) {
    throw std::invalid_argument("makeFifoCtrl: 1 <= ptr_bits <= 8");
  }
  Netlist n("fifo" + std::to_string(ptr_bits));
  const SignalId push = n.addInput("push");
  const SignalId pop = n.addInput("pop");
  const unsigned cw = ptr_bits + 1;  // occupancy counter width
  std::vector<SignalId> wr(ptr_bits);
  std::vector<SignalId> rd(ptr_bits);
  std::vector<SignalId> cnt(cw);
  for (unsigned i = 0; i < ptr_bits; ++i) wr[i] = n.addLatch(idx("wr", i), false);
  for (unsigned i = 0; i < ptr_bits; ++i) rd[i] = n.addLatch(idx("rd", i), false);
  for (unsigned i = 0; i < cw; ++i) cnt[i] = n.addLatch(idx("cnt", i), false);

  // full <=> cnt == 2^ptr_bits (top bit set); empty <=> cnt == 0.
  const SignalId full = n.addGate(GateOp::kBuf, {cnt[cw - 1]}, "full");
  SignalId nonempty = cnt[0];
  for (unsigned i = 1; i < cw; ++i) nonempty = n.mkOr(nonempty, cnt[i]);
  const SignalId do_push = n.mkAnd(push, n.mkNot(full), "do_push");
  const SignalId do_pop = n.mkAnd(pop, nonempty, "do_pop");
  n.markOutput(full);
  n.markOutput(n.mkNot(nonempty, "empty"));

  auto increment = [&](const std::vector<SignalId>& v, SignalId enable,
                       const std::string& base) {
    std::vector<SignalId> out(v.size());
    SignalId carry = enable;
    for (unsigned i = 0; i < v.size(); ++i) {
      out[i] = n.mkXor(v[i], carry, base + std::to_string(i));
      if (i + 1 < v.size()) carry = n.mkAnd(v[i], carry);
    }
    return out;
  };
  const std::vector<SignalId> wr_n = increment(wr, do_push, "wrn");
  const std::vector<SignalId> rd_n = increment(rd, do_pop, "rdn");
  for (unsigned i = 0; i < ptr_bits; ++i) {
    n.setLatchData(wr[i], wr_n[i]);
    n.setLatchData(rd[i], rd_n[i]);
  }
  // cnt' = cnt + do_push - do_pop. Increment then decrement.
  const SignalId dec = n.mkAnd(do_pop, n.mkNot(do_push), "dec");
  const SignalId inc = n.mkAnd(do_push, n.mkNot(do_pop), "inc");
  const std::vector<SignalId> cnt_i = increment(cnt, inc, "cni");
  // Decrement = add all-ones when dec: borrow chain.
  std::vector<SignalId> cnt_n(cw);
  SignalId borrow = dec;
  for (unsigned i = 0; i < cw; ++i) {
    cnt_n[i] = n.mkXor(cnt_i[i], borrow, idx("cnn", i));
    if (i + 1 < cw) borrow = n.mkAnd(n.mkNot(cnt_i[i]), borrow);
  }
  for (unsigned i = 0; i < cw; ++i) n.setLatchData(cnt[i], cnt_n[i]);
  n.validate();
  return n;
}

Netlist makeGrayCounter(unsigned bits) {
  if (bits < 2 || bits > 24) {
    throw std::invalid_argument("makeGrayCounter: 2 <= bits <= 24");
  }
  Netlist n("gray" + std::to_string(bits));
  const SignalId en = n.addInput("en");
  std::vector<SignalId> g(bits);
  for (unsigned i = 0; i < bits; ++i) g[i] = n.addLatch(idx("g", i), false);
  // Decode to binary (b_i = XOR of g_j, j >= i), increment, re-encode.
  std::vector<SignalId> b(bits);
  b[bits - 1] = n.addGate(GateOp::kBuf, {g[bits - 1]}, idx("b", bits - 1));
  for (unsigned i = bits - 1; i-- > 0;) {
    b[i] = n.mkXor(g[i], b[i + 1], idx("b", i));
  }
  std::vector<SignalId> inc(bits);
  SignalId carry = en;
  for (unsigned i = 0; i < bits; ++i) {
    inc[i] = n.mkXor(b[i], carry, idx("inc", i));
    if (i + 1 < bits) carry = n.mkAnd(b[i], carry, idx("c", i));
  }
  for (unsigned i = 0; i < bits; ++i) {
    const SignalId ng = i + 1 < bits
                            ? n.mkXor(inc[i], inc[i + 1], idx("ng", i))
                            : n.addGate(GateOp::kBuf, {inc[i]}, idx("ng", i));
    n.setLatchData(g[i], ng);
  }
  n.markOutput(g[bits - 1]);
  n.validate();
  return n;
}

Netlist makeCrc(unsigned bits) {
  // LFSR structure with a data input injected into the feedback.
  Netlist n("crc" + std::to_string(bits));
  const SignalId din = n.addInput("din");
  std::vector<SignalId> q(bits);
  for (unsigned i = 0; i < bits; ++i) q[i] = n.addLatch(idx("q", i), false);
  const std::vector<unsigned>& taps = lfsrTaps(bits);
  SignalId fb = q[taps[0] - 1];
  for (std::size_t t = 1; t < taps.size(); ++t) {
    fb = n.mkXor(fb, q[taps[t] - 1], idx("fb", static_cast<unsigned>(t)));
  }
  fb = n.mkXor(fb, din, "fbd");
  for (unsigned i = 0; i < bits; ++i) {
    n.setLatchData(q[i], i == 0 ? fb : q[i - 1]);
  }
  n.markOutput(q[bits - 1]);
  n.validate();
  return n;
}

Netlist makeRandomSeq(unsigned latches, unsigned inputs, unsigned gates,
                      std::uint64_t seed) {
  if (latches == 0 || gates < latches) {
    throw std::invalid_argument("makeRandomSeq: need gates >= latches >= 1");
  }
  Rng rng(seed);
  Netlist n("rnd_l" + std::to_string(latches) + "i" + std::to_string(inputs) +
            "g" + std::to_string(gates) + "s" + std::to_string(seed));
  std::vector<SignalId> pool;
  for (unsigned i = 0; i < inputs; ++i) pool.push_back(n.addInput(idx("x", i)));
  for (unsigned i = 0; i < latches; ++i) {
    pool.push_back(n.addLatch(idx("q", i), rng.flip()));
  }
  static constexpr GateOp kOps[] = {GateOp::kAnd, GateOp::kOr, GateOp::kXor,
                                    GateOp::kNand, GateOp::kNor};
  std::vector<SignalId> made;
  for (unsigned g = 0; g < gates; ++g) {
    const GateOp op = kOps[rng.below(std::size(kOps))];
    const SignalId a = pool[rng.below(pool.size())];
    SignalId b = pool[rng.below(pool.size())];
    if (b == a) b = pool[rng.below(pool.size())];
    SignalId s;
    if (a == b) {
      s = n.mkNot(a, idx("g", g));
    } else {
      s = n.addGate(op, {a, b}, idx("g", g));
    }
    pool.push_back(s);
    made.push_back(s);
  }
  for (unsigned i = 0; i < latches; ++i) {
    n.setLatchData(n.signal(idx("q", i)), made[made.size() - latches + i]);
  }
  n.markOutput(made.back());
  n.validate();
  return n;
}

Netlist concatenate(const Netlist& a, const Netlist& b,
                    const std::string& name) {
  Netlist n(name);
  auto copyIn = [&n](const Netlist& src, const std::string& prefix) {
    std::vector<SignalId> remap(src.numSignals());
    // Creation order guarantees gate fanins refer to earlier signals,
    // except latch data loops, which are closed afterwards.
    for (SignalId id = 0; id < src.numSignals(); ++id) {
      const Gate& g = src.gate(id);
      const std::string nm = prefix + g.name;
      switch (g.op) {
        case GateOp::kInput:
          remap[id] = n.addInput(nm);
          break;
        case GateOp::kLatch:
          remap[id] = n.addLatch(nm, src.latchInit(src.latchPos(id)));
          break;
        case GateOp::kConst0:
        case GateOp::kConst1:
          remap[id] = n.addConst(g.op == GateOp::kConst1, nm);
          break;
        default: {
          std::vector<SignalId> fi;
          fi.reserve(g.fanins.size());
          for (SignalId f : g.fanins) fi.push_back(remap[f]);
          remap[id] = n.addGate(g.op, std::move(fi), nm);
        }
      }
    }
    for (std::size_t p = 0; p < src.latches().size(); ++p) {
      n.setLatchData(remap[src.latches()[p]], remap[src.latchData(p)]);
    }
    for (SignalId o : src.outputs()) n.markOutput(remap[o]);
  };
  copyIn(a, "a_");
  copyIn(b, "b_");
  n.validate();
  return n;
}

}  // namespace bfvr::circuit
