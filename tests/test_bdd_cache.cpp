// The set-associative aging computed cache is a performance structure only:
// results must be independent of its geometry. A 16-slot cache (cache_bits=4,
// i.e. 4 sets x 4 ways) evicts constantly, so running the same operation
// sequence against it and against the 2^18-slot default catches any result
// corruption in the way-probe, the victim selection, or the dual-result
// (cofactor2) storage.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

const std::vector<unsigned> kVars{0, 1, 2, 3, 4, 5};

Manager::Config withCacheBits(unsigned bits) {
  Manager::Config cfg;
  cfg.cache_bits = bits;
  return cfg;
}

/// Runs the same randomized operation mix on two managers and returns the
/// truth tables each produced, in call order.
std::vector<std::uint64_t> opMixTruths(Manager& m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bdd> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(bddFromTruth(m, kVars, randomTruth(rng, 6)));
  }
  const auto pick = [&]() -> const Bdd& {
    return pool[rng.below(pool.size())];
  };
  std::vector<std::uint64_t> out;
  for (int step = 0; step < 200; ++step) {
    Bdd r;
    switch (rng.below(8)) {
      case 0: r = pick() & pick(); break;
      case 1: r = pick() ^ pick(); break;
      case 2: r = m.ite(pick(), pick(), pick()); break;
      case 3: {
        const unsigned cv[] = {static_cast<unsigned>(rng.below(6))};
        r = m.exists(pick(), m.cube(cv));
        break;
      }
      case 4: {
        const unsigned cv[] = {static_cast<unsigned>(rng.below(6))};
        r = m.andExists(pick(), pick(), m.cube(cv));
        break;
      }
      case 5: {
        Bdd c = pick();
        if (c.isFalse()) c = m.var(0);
        r = m.constrain(pick(), c);
        break;
      }
      case 6: {
        const unsigned v = static_cast<unsigned>(rng.below(6));
        const auto [lo, hi] = m.cofactor2(pick(), v);
        out.push_back(truthOf(m, lo, kVars));
        r = hi;
        break;
      }
      default: {
        const unsigned v = static_cast<unsigned>(rng.below(6));
        r = m.compose(pick(), v, pick());
        break;
      }
    }
    out.push_back(truthOf(m, r, kVars));
    pool[rng.below(pool.size())] = r;
  }
  return out;
}

TEST(BddCache, TinyCacheMatchesDefaultCache) {
  Manager tiny(6, withCacheBits(4));
  Manager dflt(6, withCacheBits(18));
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    EXPECT_EQ(opMixTruths(tiny, seed), opMixTruths(dflt, seed))
        << "cache geometry changed an operation result (seed " << seed << ")";
  }
  // The tiny cache really was under pressure, or the test proves nothing.
  EXPECT_GT(tiny.stats().cache_collisions, 0U);
}

TEST(BddCache, CacheBitsBelowOneSetStillWork) {
  // cache_bits=0 rounds up to a single 4-way set.
  Manager one(6, withCacheBits(0));
  EXPECT_EQ(one.cacheSlots(), 4U);
  Manager dflt(6, withCacheBits(18));
  EXPECT_EQ(opMixTruths(one, 7), opMixTruths(dflt, 7));
}

TEST(BddCache, ResizePreservesResults) {
  Manager m(6, withCacheBits(4));
  Rng rng(11);
  const std::uint64_t tt_f = randomTruth(rng, 6);
  const std::uint64_t tt_g = randomTruth(rng, 6);
  const Bdd f = bddFromTruth(m, kVars, tt_f);
  const Bdd g = bddFromTruth(m, kVars, tt_g);
  const Bdd before = f & g;
  m.resizeCache(10);
  EXPECT_EQ(m.cacheSlots(), std::size_t{1} << 10);
  EXPECT_EQ(f & g, before);  // recomputed into the fresh cache
  EXPECT_EQ(truthOf(m, before, kVars), tt_f & tt_g);
}

TEST(BddCache, PerOpCountersLandInTheRightBucket) {
  Manager m(8);
  Rng rng(5);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 6));
  const Bdd g = bddFromTruth(m, kVars, randomTruth(rng, 6));

  OpStats pre = m.stats();
  (void)(f & g);
  OpStats d = m.stats().since(pre);
  EXPECT_GT(d.opMisses(OpTag::kAnd), 0U);
  EXPECT_EQ(d.opMisses(OpTag::kXor) + d.opHits(OpTag::kXor), 0U);

  // Repeating the identical call must be answered from the cache: one
  // lookup, one hit, charged to the same bucket.
  pre = m.stats();
  (void)(f & g);
  d = m.stats().since(pre);
  EXPECT_EQ(d.opHits(OpTag::kAnd), 1U);
  EXPECT_EQ(d.opMisses(OpTag::kAnd), 0U);

  pre = m.stats();
  (void)m.cofactor2(f, 2);
  d = m.stats().since(pre);
  EXPECT_GT(d.opMisses(OpTag::kCofactor2) + d.opHits(OpTag::kCofactor2), 0U);
  EXPECT_EQ(d.opHits(OpTag::kAnd) + d.opMisses(OpTag::kAnd), 0U);

  // Aggregate counters stay consistent with the per-op split.
  const OpStats& s = m.stats();
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < kNumOpTags; ++i) {
    hits += s.opHits(static_cast<OpTag>(i));
    misses += s.opMisses(static_cast<OpTag>(i));
  }
  EXPECT_EQ(hits, s.cache_hits);
  EXPECT_EQ(hits + misses, s.cache_lookups);
}

TEST(BddCache, DualResultEntriesSurviveAndRoundTrip) {
  // A cofactor2 hit must return both halves, not just the primary edge.
  Manager m(6);
  Rng rng(9);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 6));
  const auto first = m.cofactor2(f, 3);
  const OpStats pre = m.stats();
  const auto second = m.cofactor2(f, 3);
  const OpStats d = m.stats().since(pre);
  EXPECT_EQ(second, first);
  EXPECT_EQ(d.opHits(OpTag::kCofactor2), 1U);
  EXPECT_EQ(d.opMisses(OpTag::kCofactor2), 0U);
}

}  // namespace
}  // namespace bfvr::bdd
