#include "svc/server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "run/manifest.hpp"
#include "svc/protocol.hpp"

namespace bfvr::svc {

namespace {

/// Read a spool checkpoint file whole. Empty on any failure: an eviction
/// that raced ahead of the first snapshot simply restarts from scratch.
std::shared_ptr<const std::vector<std::uint8_t>> slurpSpool(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.empty()) return nullptr;
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Per-tenant serving counter (admission decisions, outcomes, churn).
/// Registry lookup per call — these fire per job-lifecycle event, not per
/// frame or per BDD op, so the mutex there is noise.
obs::Counter& tenantCounter(const char* name, const std::string& tenant) {
  return obs::Registry::global().counter(name,
                                         obs::metricLabel("tenant", tenant));
}

obs::Histogram& dispatchHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_svc_dispatch_seconds", "", obs::kSecondsScale);
  return h;
}
obs::Histogram& iterationHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_svc_iteration_seconds", "", obs::kSecondsScale);
  return h;
}

std::string statusDetail(const std::string& status, unsigned worker) {
  return status + " worker=" + std::to_string(worker);
}

}  // namespace

Server::Server(const Options& opts)
    : opts_(opts),
      endpoint_(Endpoint::parse(opts.endpoint)),
      listener_(listenOn(endpoint_)),
      pool_(opts.workers, opts.warm_managers),
      queue_(opts.tenants),
      flight_(opts.flight_capacity) {
  for (const TenantConfig& t : opts.tenants) {
    obs::SvcTenantStats s;
    s.name = t.name;
    s.weight = t.weight;
    tenant_stats_.push_back(std::move(s));
  }
}

Server::~Server() {
  requestShutdown(false);
  waitStopped();
}

void Server::start() {
  accept_thread_ = std::thread([this] { acceptLoop(); });
  if (opts_.metrics_every > 0.0) {
    metrics_thread_ = std::thread([this] { metricsLoop(); });
  }
  obs::logLine(obs::LogLevel::kInfo, "svc",
               "listening on " + endpoint_.describe() + " with " +
                   std::to_string(pool_.workers()) + " workers");
}

void Server::requestShutdown(bool drain) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_requested_) return;
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
    draining_ = true;
    obs::logLine(obs::LogLevel::kInfo, "svc",
                 std::string("shutdown requested (") +
                     (drain ? "drain" : "immediate") + ")");
    flight_.record(obs::FlightSeverity::kInfo, "shutdown",
                   drain ? "drain requested" : "immediate stop requested");
    if (!drain) {
      // Immediate: cancel every running job and drop the queue. Dropped
      // jobs' owners get no JobDone — their sessions are about to close.
      for (auto& [id, r] : running_) r.cancel->cancel();
      for (QueuedJob& dropped : queue_.dropAll()) {
        statsFor(dropped.tenant).cancelled += 1;
      }
    } else {
      pump();  // capped tenants may have runnable work and idle workers
    }
  }
  cv_.notify_all();
}

void Server::waitStopped() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) return;
    cv_.wait(lock, [this] { return shutdown_requested_; });
    // Drain: wait until nothing is queued and no worker is busy.
    cv_.wait(lock, [this] {
      return outstanding_ == 0 && queue_.queuedCount() == 0;
    });
    if (!opts_.report_path.empty()) {
      const std::string json =
          buildReportLocked(StatsQuery::kIncludeMetrics |
                            StatsQuery::kIncludeSpans);
      std::ofstream out(opts_.report_path);
      if (out) {
        out << json << "\n";
        obs::logLine(obs::LogLevel::kInfo, "svc",
                     "wrote " + opts_.report_path);
      } else {
        obs::logLine(obs::LogLevel::kError, "svc",
                     "cannot write " + opts_.report_path);
      }
    }
    stopped_ = true;
    // Wake the accept thread out of accept(2) and every session reader out
    // of recv(2).
    ::shutdown(listener_.get(), SHUT_RDWR);
    for (auto& [id, s] : sessions_) {
      s->alive.store(false, std::memory_order_relaxed);
      ::shutdown(s->fd.get(), SHUT_RDWR);
    }
  }
  cv_.notify_all();  // wake the metrics writer so it sees stopped_
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // The accept thread spawns session threads; with it joined the vector is
  // final.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) t.join();
  listener_.close();
  if (endpoint_.is_unix) std::remove(endpoint_.path.c_str());
  // Final observability snapshots, after all workers and writers are quiet.
  if (opts_.metrics_every > 0.0) writeMetricsFiles();
  flight_.record(obs::FlightSeverity::kInfo, "shutdown", "server stopped");
  dumpFlight("shutdown");
  obs::logLine(obs::LogLevel::kInfo, "svc", "stopped");
}

void Server::acceptLoop() {
  for (;;) {
    Fd conn = acceptOn(listener_);
    if (!conn.valid()) return;  // listener shut down: orderly exit
    auto s = std::make_shared<Session>();
    s->fd = std::move(conn);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      s->id = next_session_++;
      sessions_accepted_ += 1;
      sessions_[s->id] = s;
      session_threads_.emplace_back([this, s] { sessionLoop(s); });
    }
  }
}

void Server::sessionLoop(std::shared_ptr<Session> s) {
  // First frame must be Hello; everything else on this connection is a
  // protocol error reported back (best-effort) before closing.
  try {
    std::optional<Frame> first = recvFrame(s->fd);
    if (!first.has_value()) throw Error("session: closed before hello");
    const Hello hello = Hello::decode(*first);
    if (hello.proto != kWireVersion) {
      throw Error("session: client protocol version " +
                  std::to_string(hello.proto) + " (server speaks " +
                  std::to_string(kWireVersion) + ")");
    }
    if (hello.tenant.empty()) throw Error("session: empty tenant name");
    s->tenant = hello.tenant;
    HelloAck ack;
    ack.session = s->id;
    ack.server = opts_.name;
    sendTo(s, ack.encode());
    obs::logLine(obs::LogLevel::kDebug, "svc",
                 "session " + std::to_string(s->id) + " opened", s->tenant);
    while (s->alive.load(std::memory_order_relaxed)) {
      std::optional<Frame> f = recvFrame(s->fd);
      if (!f.has_value()) break;  // orderly close without Bye: fine
      if (!handleFrame(s, *f)) break;
    }
  } catch (const Error& e) {
    // Malformed traffic (bad magic/CRC/truncation) or version skew: tell
    // the client why, if the pipe still works, then drop the session. The
    // server itself never goes down with a session.
    obs::logLine(obs::LogLevel::kError, "svc",
                 "session " + std::to_string(s->id) + ": " + e.what(),
                 s->tenant);
    flight_.record(obs::FlightSeverity::kError, "wire", e.what(), s->tenant);
    obs::Registry::global().counter("bfvr_svc_session_errors_total").inc();
    WireError err;
    err.message = e.what();
    sendTo(s, err.encode());
  }
  // Session teardown: orphan its queued jobs and cancel its running ones —
  // results with no one to read them are wasted worker time.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s->alive.store(false, std::memory_order_relaxed);
    for (QueuedJob& dropped : queue_.dropSession(s->id)) {
      statsFor(dropped.tenant).cancelled += 1;
    }
    for (auto& [id, r] : running_) {
      if (r.job.session == s->id) r.cancel->cancel();
    }
    sessions_.erase(s->id);
    pump();  // dropping queued jobs may unblock a tenant's queue cap
  }
  obs::logLine(obs::LogLevel::kDebug, "svc",
               "session " + std::to_string(s->id) + " closed", s->tenant);
  cv_.notify_all();
}

bool Server::handleFrame(const std::shared_ptr<Session>& s, const Frame& f) {
  switch (f.type) {
    case FrameType::kSubmit:
      handleSubmit(s, f);
      return true;
    case FrameType::kCancel: {
      const Cancel c = Cancel::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(c.job); it != running_.end()) {
        it->second.cancel->cancel();
      } else if (std::optional<QueuedJob> dropped = queue_.dropJob(c.job);
                 dropped.has_value()) {
        statsFor(dropped->tenant).cancelled += 1;
        JobDone done;
        done.job = dropped->id;
        done.status = to_string(RunStatus::kCancelled);
        done.message = "cancelled while queued";
        done.evictions = dropped->evictions;
        sendTo(s, done.encode());
        pump();
      }
      return true;
    }
    case FrameType::kEvict: {
      const Evict e = Evict::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(e.job); it != running_.end()) {
        it->second.evict_requested->store(true, std::memory_order_relaxed);
        it->second.cancel->cancel();
      }
      return true;
    }
    case FrameType::kStats: {
      const StatsQuery q = StatsQuery::decode(f);
      StatsReply reply;
      reply.json = statsJson(q.flags);
      sendTo(s, reply.encode());
      return true;
    }
    case FrameType::kShutdown: {
      const Shutdown sd = Shutdown::decode(f);
      requestShutdown(sd.drain);
      return true;
    }
    case FrameType::kBye:
      return false;
    default:
      throw Error(std::string("session: unexpected ") + to_string(f.type) +
                  " frame");
  }
}

void Server::handleSubmit(const std::shared_ptr<Session>& s, const Frame& f) {
  const Submit sub = Submit::decode(f);
  Rejected rej;
  rej.tag = sub.tag;
  QueuedJob job;
  try {
    // One submission = one manifest line; portfolio entries are a batch
    // feature and not accepted over the wire.
    std::vector<run::ManifestEntry> entries =
        run::parseManifestString(sub.line);
    if (entries.size() != 1) {
      throw std::invalid_argument("expected exactly one job line");
    }
    if (!entries[0].portfolio.empty()) {
      throw std::invalid_argument("portfolio= is not accepted over the wire");
    }
    job.spec = std::move(entries[0].spec);
  } catch (const std::exception& e) {
    rej.reason = e.what();
    const std::lock_guard<std::mutex> lock(mu_);
    statsFor(s->tenant).submitted += 1;
    statsFor(s->tenant).rejected += 1;
    tenantCounter("bfvr_svc_submissions_total", s->tenant).inc();
    tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
    flight_.record(obs::FlightSeverity::kWarn, "admission",
                   "rejected: " + rej.reason, s->tenant);
    sendTo(s, rej.encode());
    return;
  }
  job.session = s->id;
  job.tenant = s->tenant;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    obs::SvcTenantStats& ts = statsFor(s->tenant);
    ts.submitted += 1;
    tenantCounter("bfvr_svc_submissions_total", s->tenant).inc();
    if (draining_) {
      ts.rejected += 1;
      tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
      rej.reason = "server is draining";
      flight_.record(obs::FlightSeverity::kWarn, "admission",
                     "rejected: " + rej.reason, s->tenant);
      sendTo(s, rej.encode());
      return;
    }
    job.id = next_job_++;
    // Make the job evictable: wire up the spool checkpoint unless the
    // submission already checkpoints somewhere of its own.
    if (job.spec.opts.checkpoint_path.empty() && opts_.checkpoint_every > 0) {
      job.spec.opts.checkpoint_every = opts_.checkpoint_every;
      job.spec.opts.checkpoint_path = spoolPathFor(job.id);
    }
    const std::uint64_t id = job.id;
    const std::string display = job.spec.displayName();
    if (std::optional<std::string> reason = queue_.admit(std::move(job));
        reason.has_value()) {
      ts.rejected += 1;
      tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
      rej.reason = *reason;
      flight_.record(obs::FlightSeverity::kWarn, "admission",
                     "rejected: " + rej.reason, s->tenant);
      sendTo(s, rej.encode());
      return;
    }
    // The job exists: open its span. The received/admitted/queued stamps
    // land together — one frame handler performed all three transitions.
    obs::JobSpan& span = spans_[id];
    span.trace_id = next_trace_++;
    span.job = id;
    span.tenant = s->tenant;
    span.start = uptime_.seconds();
    span_counts_[s->tenant] += 1;
    spanEventLocked(id, "received", display);
    spanEventLocked(id, "admitted");
    spanEventLocked(id, "queued");
    tenantCounter("bfvr_svc_admitted_total", s->tenant).inc();
    flight_.record(obs::FlightSeverity::kInfo, "admission",
                   "admitted " + display, s->tenant, id);
    obs::logLine(obs::LogLevel::kDebug, "svc", "admitted " + display,
                 s->tenant, id);
    Accepted acc;
    acc.tag = sub.tag;
    acc.job = id;
    acc.trace = span.trace_id;
    sendTo(s, acc.encode());
    pump();
  }
}

void Server::pump() {
  while (outstanding_ < pool_.workers()) {
    std::optional<QueuedJob> picked = queue_.pick();
    if (!picked.has_value()) return;
    const std::uint64_t id = picked->id;
    Running r;
    r.job = std::move(*picked);
    r.cancel = std::make_shared<run::CancelToken>();
    r.evict_requested = std::make_shared<std::atomic<bool>>(false);
    run::JobSpec spec = r.job.spec;  // the Running keeps the pristine copy
    const unsigned avoid = r.job.avoid_worker;
    const bool resumed = spec.resume_image != nullptr;
    // Stream iteration records to the owning session. The hook runs on the
    // worker thread; it takes only the session write mutex (inner to mu_),
    // and swallows everything — a dead client must not disturb the engine.
    if (opts_.stream_iterations) {
      const std::uint64_t session_id = r.job.session;
      // `last_mark` carries the previous iteration's timestamp across hook
      // invocations (one lambda per dispatch, called sequentially on the
      // worker thread), so each observation is one iteration's wall-clock.
      auto last_mark = std::make_shared<double>(uptime_.seconds());
      spec.opts.on_iteration = [this, id, session_id,
                                last_mark](const obs::IterationRecord& it) {
        const double now_s = uptime_.seconds();
        iterationHistogram().observeSeconds(now_s - *last_mark);
        *last_mark = now_s;
        // Worker thread: take mu_ only to look the session up (lock order
        // mu_ -> write_mu, same as everywhere else), send outside it.
        std::shared_ptr<Session> owner;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          owner = sessionById(session_id);
          // Fold the live iteration count into the span's running stamp
          // instead of appending one event per iteration — timelines stay
          // bounded however long the fixpoint runs.
          if (auto sit = spans_.find(id); sit != spans_.end()) {
            obs::JobSpan& span = sit->second;
            if (!span.events.empty() && span.events.back().what == "running") {
              span.events.back().t = now_s - span.start;
              span.events.back().detail =
                  "iter=" + std::to_string(it.iteration);
            } else {
              spanEventLocked(id, "running",
                              "iter=" + std::to_string(it.iteration));
            }
          }
        }
        if (owner == nullptr) return;
        IterationUpdate u;
        u.job = id;
        u.iteration = it.iteration;
        u.frontier_nodes = it.frontier_nodes;
        u.live_nodes = it.live_nodes;
        u.peak_nodes = it.peak_nodes;
        u.frontier_states = it.frontier_states;
        sendTo(owner, u.encode());
      };
    }
    const std::uint64_t session_id = r.job.session;
    outstanding_ += 1;
    dispatches_ += 1;
    if (auto sit = spans_.find(id); sit != spans_.end()) {
      // Scheduling latency: span open (admission) to this dispatch. A
      // resumed job measures its requeue wait, which is the point.
      const obs::JobSpan& span = sit->second;
      double queued_at = span.start;
      for (const obs::SpanEvent& ev : span.events) {
        if (ev.what == "queued") queued_at = span.start + ev.t;
      }
      dispatchHistogram().observeSeconds(uptime_.seconds() - queued_at);
      spanEventLocked(id, resumed ? "resumed" : "dispatched",
                      resumed ? "from eviction image" : "");
    }
    if (resumed) {
      flight_.record(obs::FlightSeverity::kInfo, "resume",
                     "resumed from eviction image", r.job.tenant, id);
    }
    obs::logLine(obs::LogLevel::kDebug, "svc",
                 resumed ? "resumed" : "dispatched", r.job.tenant, id);
    auto cancel = r.cancel;
    running_[id] = std::move(r);
    pool_.submit(
        std::move(spec), cancel,
        [this, id](const run::JobResult& res) { onJobDone(id, res); }, avoid);
    if (std::shared_ptr<Session> owner = sessionById(session_id);
        owner != nullptr) {
      JobStarted started;
      started.job = id;
      started.resumed = resumed;
      sendTo(owner, started.encode());
    }
  }
}

void Server::onJobDone(std::uint64_t id, const run::JobResult& r) {
  // Runs on the worker thread, right before the job's future is fulfilled.
  std::shared_ptr<Session> owner;
  Frame out;
  // Flight dump triggers, resolved under mu_ and acted on after it: a
  // failed job or an injected worker fault is post-mortem material.
  std::string dump_reason;
  std::uint64_t faults_injected = 0;
  for (const run::AttemptRecord& a : r.attempts) {
    faults_injected += a.faults_injected;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = running_.find(id);
    if (it == running_.end()) return;  // cannot happen; defensive
    Running rec = std::move(it->second);
    running_.erase(it);
    queue_.release(rec.job.tenant);
    outstanding_ -= 1;
    owner = sessionById(rec.job.session);
    if (faults_injected != 0) {
      flight_.record(obs::FlightSeverity::kError, "fault",
                     "worker " + std::to_string(r.worker) + " injected " +
                         std::to_string(faults_injected) + " fault(s)",
                     rec.job.tenant, id);
      dump_reason = "worker-fault";
    }
    if (r.retriesUsed() > 0) {
      flight_.record(obs::FlightSeverity::kWarn, "retry",
                     std::to_string(r.retriesUsed()) + " retry attempt(s), " +
                         "final status " + to_string(r.status),
                     rec.job.tenant, id);
    }
    const bool evicting =
        rec.evict_requested->load(std::memory_order_relaxed) &&
        r.status == RunStatus::kCancelled && !draining_;
    if (evicting) {
      // Lift the latest spool snapshot into memory and requeue at the
      // front, steered away from the worker that ran the job. No snapshot
      // yet (evicted before the first checkpoint) still migrates — the
      // resume just starts from scratch.
      QueuedJob again = std::move(rec.job);
      again.spec.resume_image = slurpSpool(again.spec.opts.checkpoint_path);
      again.avoid_worker = r.worker;
      again.evictions += 1;
      statsFor(again.tenant).evictions += 1;
      tenantCounter("bfvr_svc_evictions_total", again.tenant).inc();
      if (again.spec.resume_image != nullptr) {
        statsFor(again.tenant).resumes += 1;
        tenantCounter("bfvr_svc_resumes_total", again.tenant).inc();
      }
      if (auto sit = spans_.find(id); sit != spans_.end()) {
        sit->second.evictions = again.evictions;
        sit->second.workers.push_back(r.worker);
      }
      spanEventLocked(id, "evicted",
                      "iter=" + std::to_string(r.reach.iterations) +
                          " worker=" + std::to_string(r.worker));
      spanEventLocked(id, "queued", "requeued after eviction");
      flight_.record(obs::FlightSeverity::kWarn, "eviction",
                     "evicted at iteration " +
                         std::to_string(r.reach.iterations) + " from worker " +
                         std::to_string(r.worker) +
                         (again.spec.resume_image != nullptr
                              ? ", snapshot captured"
                              : ", no snapshot yet"),
                     again.tenant, id);
      obs::logLine(obs::LogLevel::kInfo, "svc",
                   "evicted from worker " + std::to_string(r.worker),
                   again.tenant, id);
      JobEvicted ev;
      ev.job = id;
      ev.iteration = r.reach.iterations;
      ev.worker = r.worker;
      out = ev.encode();
      queue_.requeueFront(std::move(again));
    } else {
      obs::SvcTenantStats& ts = statsFor(rec.job.tenant);
      switch (r.status) {
        case RunStatus::kDone:
          ts.done += 1;
          break;
        case RunStatus::kTimeOut:
          ts.timeout += 1;
          break;
        case RunStatus::kMemOut:
          ts.memout += 1;
          break;
        case RunStatus::kCancelled:
          ts.cancelled += 1;
          break;
        case RunStatus::kError:
          ts.error += 1;
          break;
        case RunStatus::kInconclusive:
          ts.inconclusive += 1;
          break;
      }
      ts.queue_seconds += r.queue_seconds;
      ts.exec_seconds += r.seconds;
      const std::string status = to_string(r.status);
      tenantCounter("bfvr_svc_jobs_finished_total", rec.job.tenant).inc();
      finishSpanLocked(id, status, r.worker, rec.job.evictions);
      if (r.status == RunStatus::kError) {
        flight_.record(obs::FlightSeverity::kError, "job",
                       "failed: " + r.message, rec.job.tenant, id);
        if (dump_reason.empty()) dump_reason = "job-error";
      }
      obs::logLine(obs::LogLevel::kDebug, "svc",
                   status + " on worker " + std::to_string(r.worker),
                   rec.job.tenant, id);
      // The job is finished for good: its spool snapshot is garbage now.
      if (!rec.job.spec.opts.checkpoint_path.empty() &&
          rec.job.spec.opts.checkpoint_path.rfind(opts_.spool_dir, 0) == 0) {
        std::remove(rec.job.spec.opts.checkpoint_path.c_str());
      }
      JobDone done;
      done.job = id;
      done.status = to_string(r.status);
      done.message = r.message;
      done.seconds = r.seconds;
      done.queue_seconds = r.queue_seconds;
      done.worker = r.worker;
      done.iterations = r.reach.iterations;
      done.states = r.reach.states;
      done.peak_live_nodes = r.reach.peak_live_nodes;
      done.attempts = static_cast<std::uint32_t>(r.attempts.size());
      done.evictions = rec.job.evictions;
      done.resumed = rec.job.spec.resume_image != nullptr ||
                     (!r.attempts.empty() && r.attempts.back().resumed);
      out = done.encode();
    }
    if (owner != nullptr) sendTo(owner, out);
    pump();
  }
  if (!dump_reason.empty()) dumpFlight(dump_reason);
  cv_.notify_all();
}

void Server::sendTo(const std::shared_ptr<Session>& s, const Frame& f) {
  const std::lock_guard<std::mutex> lock(s->write_mu);
  if (!s->alive.load(std::memory_order_relaxed)) return;
  try {
    sendFrame(s->fd, f);
  } catch (const Error&) {
    // Peer is gone; its reader thread will notice and tear the session
    // down. Until then, drop further frames silently.
    s->alive.store(false, std::memory_order_relaxed);
  }
}

std::shared_ptr<Server::Session> Server::sessionById(std::uint64_t id) {
  // Callers either hold mu_ already or race benignly with teardown (the
  // shared_ptr keeps the session alive; `alive` gates actual sends).
  auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

obs::SvcTenantStats& Server::statsFor(const std::string& tenant) {
  for (obs::SvcTenantStats& t : tenant_stats_) {
    if (t.name == tenant) return t;
  }
  obs::SvcTenantStats s;
  s.name = tenant;
  if (const TenantConfig* cfg = queue_.tenantConfig(tenant)) {
    s.weight = cfg->weight;
  }
  tenant_stats_.push_back(std::move(s));
  return tenant_stats_.back();
}

std::string Server::spoolPathFor(std::uint64_t job_id) const {
  return opts_.spool_dir + "/svc_job_" + std::to_string(job_id) + ".ckpt";
}

void Server::spanEventLocked(std::uint64_t id, const char* what,
                             std::string detail) {
  auto it = spans_.find(id);
  if (it == spans_.end()) return;
  obs::SpanEvent ev;
  ev.what = what;
  ev.t = uptime_.seconds() - it->second.start;
  ev.detail = std::move(detail);
  it->second.events.push_back(std::move(ev));
}

void Server::finishSpanLocked(std::uint64_t id, const std::string& status,
                              unsigned worker, unsigned evictions) {
  auto it = spans_.find(id);
  if (it == spans_.end()) return;
  obs::JobSpan& span = it->second;
  span.status = status;
  span.evictions = evictions;
  span.workers.push_back(worker);
  spanEventLocked(id, "done", statusDetail(status, worker));
  finished_spans_.push_back(id);
  while (finished_spans_.size() > opts_.span_retain) {
    spans_.erase(finished_spans_.front());
    finished_spans_.pop_front();
  }
}

void Server::sampleGaugesLocked() const {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("bfvr_svc_queue_depth").set(
      static_cast<std::int64_t>(queue_.queuedCount()));
  reg.gauge("bfvr_svc_running").set(static_cast<std::int64_t>(running_.size()));
  reg.gauge("bfvr_svc_sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  const run::ManagerCache::Stats warm = pool_.warmStats();
  reg.gauge("bfvr_svc_warm_hits").set(static_cast<std::int64_t>(warm.hits));
  reg.gauge("bfvr_svc_warm_misses").set(
      static_cast<std::int64_t>(warm.misses));
  reg.gauge("bfvr_svc_leaked_nodes").set(
      static_cast<std::int64_t>(warm.leaked_nodes));
  // Integer-friendly hit rate: parts per million of acquires served warm.
  const std::uint64_t acquires = warm.hits + warm.misses;
  reg.gauge("bfvr_svc_warm_hit_rate_ppm")
      .set(acquires == 0 ? 0
                         : static_cast<std::int64_t>(warm.hits * 1000000 /
                                                     acquires));
}

std::string Server::buildReportLocked(std::uint32_t flags) const {
  sampleGaugesLocked();
  const run::ManagerCache::Stats warm = pool_.warmStats();
  obs::SvcServerStats server;
  server.name = opts_.name;
  server.endpoint = endpoint_.describe();
  server.workers = pool_.workers();
  server.seconds = uptime_.seconds();
  server.sessions = sessions_accepted_;
  server.dispatches = dispatches_;
  server.warm_hits = warm.hits;
  server.warm_misses = warm.misses;
  server.resets_failed = warm.resets_failed;
  server.leaked_nodes = warm.leaked_nodes;
  obs::SvcReportExtras extras;
  extras.queue_depth = queue_.queuedCount();
  extras.running = running_.size();
  std::vector<obs::JobSpan> spans;
  if ((flags & StatsQuery::kIncludeSpans) != 0) {
    spans.reserve(spans_.size());
    for (const auto& [id, span] : spans_) spans.push_back(span);
    extras.spans = spans;
  }
  if ((flags & StatsQuery::kIncludeMetrics) != 0) {
    extras.metrics_json = obs::Registry::global().json();
  }
  if ((flags & StatsQuery::kIncludeFlight) != 0) {
    extras.flight_json = flight_.json("stats-query");
  }
  return obs::svcReportJson(server, tenant_stats_, extras);
}

std::string Server::statsJson() const {
  return statsJson(StatsQuery::kIncludeMetrics | StatsQuery::kIncludeSpans);
}

std::string Server::statsJson(std::uint32_t flags) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buildReportLocked(flags);
}

std::vector<std::string> Server::dispatchLog() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.dispatchLog();
}

std::vector<obs::JobSpan> Server::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<obs::JobSpan> out;
  out.reserve(spans_.size());
  for (const auto& [id, span] : spans_) out.push_back(span);
  return out;
}

std::uint64_t Server::spanCount(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = span_counts_.find(tenant);
  return it != span_counts_.end() ? it->second : 0;
}

void Server::metricsLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock,
                 std::chrono::duration<double>(opts_.metrics_every),
                 [this] { return stopped_; });
    if (stopped_) return;  // waitStopped writes the final snapshot
    sampleGaugesLocked();
    lock.unlock();  // exposition takes only the registry's own lock
    writeMetricsFiles();
    lock.lock();
  }
}

void Server::writeMetricsFiles() const {
  const std::string base = opts_.metrics_dir + "/METRICS_" + opts_.name;
  {
    std::ofstream out(base + ".prom");
    if (out) {
      out << obs::Registry::global().text();
    } else {
      obs::logLine(obs::LogLevel::kError, "svc",
                   "cannot write " + base + ".prom");
    }
  }
  std::ofstream out(base + ".json");
  if (out) {
    out << obs::Registry::global().json();
  } else {
    obs::logLine(obs::LogLevel::kError, "svc",
                 "cannot write " + base + ".json");
  }
}

void Server::dumpFlight(const std::string& reason) const {
  if (opts_.flight_dir.empty()) return;
  const std::string path =
      opts_.flight_dir + "/FLIGHT_" + opts_.name + ".json";
  if (flight_.dump(path, reason)) {
    obs::logLine(obs::LogLevel::kInfo, "svc",
                 "flight recorder dumped to " + path + " (" + reason + ")");
  } else {
    obs::logLine(obs::LogLevel::kError, "svc", "cannot write " + path);
  }
}

}  // namespace bfvr::svc
