// Garbage collection, node budgets, and resource accounting.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

TEST(BddGc, CollectsDeadNodes) {
  Manager m(16);
  const std::size_t base = m.inUseNodes();
  {
    Bdd acc = m.one();
    for (unsigned i = 0; i < 16; ++i) acc &= m.var(i);
    EXPECT_GT(m.inUseNodes(), base);
  }
  m.gc();
  // Only the 16 projection nodes can remain referenced... they are not
  // referenced either (no live handles), so we are back to the terminal.
  EXPECT_EQ(m.inUseNodes(), 1U);
}

TEST(BddGc, LiveHandlesSurviveGc) {
  Manager m(8);
  Bdd keep = (m.var(0) & m.var(1)) | m.var(2);
  Bdd dead = m.var(3) ^ m.var(4);
  const Bdd copy = keep;
  dead = Bdd();  // drop
  m.gc();
  EXPECT_EQ(keep, copy);
  EXPECT_EQ(keep, (m.var(0) & m.var(1)) | m.var(2));  // rebuild matches
  EXPECT_TRUE((keep ^ copy).isFalse());
}

TEST(BddGc, ReusedSlotsKeepSemantics) {
  Manager m(8);
  Rng rng(3);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4};
  // Build, drop, and rebuild random functions across collections; results
  // must stay semantically stable.
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t tt = test::randomTruth(rng, 5);
    Bdd f = test::bddFromTruth(m, vars, tt);
    EXPECT_EQ(test::truthOf(m, f, vars), tt);
    m.gc();
    EXPECT_EQ(test::truthOf(m, f, vars), tt);  // survives its own GC
  }
}

TEST(BddGc, LiveNodeCountTracksReachable) {
  Manager m(8);
  EXPECT_EQ(m.liveNodeCount(), 1U);  // just the terminal
  Bdd a = m.var(0);
  EXPECT_EQ(m.liveNodeCount(), 2U);
  Bdd f = m.var(0) & m.var(1);
  EXPECT_GE(m.liveNodeCount(), 3U);
  a = Bdd();
  f = Bdd();
  EXPECT_EQ(m.liveNodeCount(), 1U);
}

TEST(BddGc, PeakMonotoneAndResettable) {
  Manager m(8);
  { Bdd f = (m.var(0) ^ m.var(1)) & (m.var(2) ^ m.var(3)); (void)f; }
  const std::size_t peak = m.peakNodes();
  EXPECT_GT(peak, 1U);
  m.gc();
  EXPECT_EQ(m.peakNodes(), peak);  // gc does not lower the high-water mark
  m.resetPeak();
  EXPECT_LE(m.peakNodes(), peak);
}

TEST(BddGc, NodeBudgetThrows) {
  Manager::Config cfg;
  cfg.max_nodes = 64;
  Manager m(32, cfg);
  Bdd acc = m.one();
  EXPECT_THROW(
      {
        // A function family with exponential growth under this order.
        for (unsigned i = 0; i < 16; ++i) {
          acc ^= m.var(i) & m.var(31 - i);
        }
      },
      NodeBudgetExceeded);
}

TEST(BddGc, ManagerUsableAfterBudgetError) {
  Manager::Config cfg;
  cfg.max_nodes = 80;
  Manager m(32, cfg);
  Bdd acc = m.one();
  try {
    for (unsigned i = 0; i < 16; ++i) acc ^= m.var(i) & m.var(31 - i);
    FAIL() << "expected NodeBudgetExceeded";
  } catch (const NodeBudgetExceeded&) {
  }
  acc = Bdd();
  m.gc();
  // Small work still fits after collecting the wreckage.
  EXPECT_EQ(m.var(0) & m.var(1), m.var(0) & m.var(1));
}

TEST(BddGc, MaybeGcHonorsThreshold) {
  Manager::Config cfg;
  cfg.gc_threshold = 8;
  Manager m(16, cfg);
  { Bdd f = (m.var(0) ^ m.var(1)) ^ (m.var(2) & m.var(3)); (void)f; }
  const auto runs_before = m.stats().gc_runs;
  m.maybeGc();
  EXPECT_GT(m.stats().gc_runs, runs_before);
}

TEST(BddGc, StatsAccumulateAndReset) {
  Manager m(8);
  (void)(m.var(0) & m.var(1));
  EXPECT_GT(m.stats().top_ops, 0U);
  EXPECT_GT(m.stats().nodes_created, 0U);
  m.resetStats();
  EXPECT_EQ(m.stats().top_ops, 0U);
  EXPECT_EQ(m.stats().recursive_steps, 0U);
}

TEST(BddGc, StressRandomOpsWithPeriodicGc) {
  Manager m(12);
  Rng rng(77);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  std::vector<Bdd> pool;
  std::vector<std::uint64_t> truths;
  for (int i = 0; i < 8; ++i) {
    truths.push_back(test::randomTruth(rng, 6));
    pool.push_back(test::bddFromTruth(m, vars, truths.back()));
  }
  for (int step = 0; step < 300; ++step) {
    const std::size_t i = rng.below(pool.size());
    const std::size_t j = rng.below(pool.size());
    switch (rng.below(3)) {
      case 0:
        pool[i] = pool[i] & pool[j];
        truths[i] = truths[i] & truths[j];
        break;
      case 1:
        pool[i] = pool[i] | pool[j];
        truths[i] = truths[i] | truths[j];
        break;
      default:
        pool[i] = pool[i] ^ pool[j];
        truths[i] = truths[i] ^ truths[j];
        break;
    }
    if (step % 37 == 0) m.gc();
    if (step % 91 == 0) {
      ASSERT_EQ(test::truthOf(m, pool[i], vars), truths[i]) << "step " << step;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(test::truthOf(m, pool[i], vars), truths[i]);
  }
}

}  // namespace
}  // namespace bfvr::bdd
