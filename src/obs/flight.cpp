#include "obs/flight.hpp"

#include <chrono>
#include <cstdio>

namespace bfvr::obs {
namespace {

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(FlightSeverity s) {
  switch (s) {
    case FlightSeverity::kInfo: return "info";
    case FlightSeverity::kWarn: return "warn";
    case FlightSeverity::kError: return "error";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(nowNs()) {
  ring_.resize(capacity_);
}

void FlightRecorder::record(FlightSeverity severity,
                            const std::string& category,
                            const std::string& message,
                            const std::string& tenant, std::uint64_t job) {
  FlightEvent ev;
  ev.t = static_cast<double>(nowNs() - epoch_ns_) * 1e-9;
  ev.severity = severity;
  ev.category = category;
  ev.message = message;
  ev.tenant = tenant;
  ev.job = job;
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  ring_[ev.seq % capacity_] = std::move(ev);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  const std::uint64_t n = next_seq_;
  const std::uint64_t first = n > capacity_ ? n - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t s = first; s < n; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

std::uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::string FlightRecorder::json(const std::string& reason) const {
  const std::vector<FlightEvent> events = snapshot();
  std::string out = "{\n";
  out += "  \"reason\": \"" + jsonEscape(reason) + "\",\n";
  out += "  \"recorded\": " + std::to_string(totalRecorded()) + ",\n";
  out += "  \"capacity\": " + std::to_string(capacity_) + ",\n";
  out += "  \"events\": [";
  bool first = true;
  for (const FlightEvent& ev : events) {
    out += first ? "\n" : ",\n";
    first = false;
    char tbuf[32];
    std::snprintf(tbuf, sizeof tbuf, "%.6f", ev.t);
    out += "    {\"seq\": " + std::to_string(ev.seq) + ", \"t\": " + tbuf +
           ", \"severity\": \"" + to_string(ev.severity) + "\", \"category\": \"" +
           jsonEscape(ev.category) + "\", \"message\": \"" +
           jsonEscape(ev.message) + "\"";
    if (!ev.tenant.empty()) {
      out += ", \"tenant\": \"" + jsonEscape(ev.tenant) + "\"";
    }
    if (ev.job != 0) out += ", \"job\": " + std::to_string(ev.job);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool FlightRecorder::dump(const std::string& path,
                          const std::string& reason) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = json(reason);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace bfvr::obs
