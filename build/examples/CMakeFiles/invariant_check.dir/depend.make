# Empty dependencies file for invariant_check.
# This may be replaced when dependencies are built.
