// Cofactors and quantification on canonical vectors (§2.5).
//
// Cofactoring a canonical vector with respect to one of its own choice
// variables fixes that selection choice; the result is still canonical for
// its (sub)range. Existential quantification ("set smoothing") is then the
// union of the two cofactors, universal quantification ("consensus") their
// intersection — the same expansion as the domain partitioning of
// Coudert/Berthet/Madre, but without recursive splitting, because we have a
// direct union algorithm.
#include "bfv/internal.hpp"

namespace bfvr::bfv {

Bfv Bfv::cofactor(unsigned comp, bool value) const {
  if (isNull()) throw std::logic_error("cofactor on null Bfv");
  if (comp >= vars_.size()) throw std::out_of_range("cofactor: bad component");
  if (empty_) return *this;
  const unsigned v = vars_[comp];
  std::vector<Bdd> h(comps_.size());
  // Components before `comp` cannot depend on v (canonical support rule).
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    h[i] = i < comp ? comps_[i] : mgr_->cofactor(comps_[i], v, value);
  }
  return Bfv(mgr_, vars_, std::move(h), false);
}

Bfv Bfv::existsChoice(unsigned comp) const {
  if (isNull()) throw std::logic_error("existsChoice on null Bfv");
  if (empty_) return *this;
  const Bfv lo = cofactor(comp, false);
  const Bfv hi = cofactor(comp, true);
  std::vector<Bdd> h = internal::unionCore(*mgr_, vars_, lo.comps_, hi.comps_);
  return Bfv(mgr_, vars_, std::move(h), false);
}

Bfv Bfv::forallChoice(unsigned comp) const {
  if (isNull()) throw std::logic_error("forallChoice on null Bfv");
  if (empty_) return *this;
  const Bfv lo = cofactor(comp, false);
  const Bfv hi = cofactor(comp, true);
  std::vector<Bdd> h;
  if (!internal::intersectCore(*mgr_, vars_, lo.comps_, hi.comps_, h)) {
    return emptySet(*mgr_, vars_);
  }
  return Bfv(mgr_, vars_, std::move(h), false);
}

}  // namespace bfvr::bfv
