# Empty compiler generated dependencies file for bfvr_bdd.
# This may be replaced when dependencies are built.
