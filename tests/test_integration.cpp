// End-to-end stories: invariant checking with BFV set algebra, the paper's
// ordering-robustness claim, and cross-representation size relations.
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/engine.hpp"

namespace bfvr {
namespace {

using bfv::Bfv;
using circuit::Netlist;
using circuit::OrderKind;
using reach::ReachOptions;
using reach::ReachResult;

TEST(Integration, ArbiterPointerOneHotInvariant) {
  // AG "pointer is one-hot": reach with the BFV engine, intersect with the
  // bad set (pointer not one-hot) — must be empty. No negation is needed on
  // the BFV side: the bad set is built from a characteristic function.
  const Netlist n = circuit::makeArbiter(4);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  ReachOptions opts;
  const ReachResult r = reach::reachBfv(s, opts);
  ASSERT_EQ(r.status, RunStatus::kDone);

  // Bad set: not exactly one pointer bit set.
  bdd::Bdd one_hot = m.zero();
  for (std::size_t i = 0; i < 4; ++i) {
    bdd::Bdd cube = m.one();
    for (std::size_t j = 0; j < 4; ++j) {
      const bdd::Bdd v = m.var(s.currentVar(j));
      cube &= (i == j) ? v : ~v;
    }
    one_hot |= cube;
  }
  const Bfv bad = bfv::fromChar(m, ~one_hot, s.currentVars());
  ASSERT_FALSE(bad.isEmpty());
  EXPECT_TRUE(setIntersect(*r.reached_bfv, bad).isEmpty());
}

TEST(Integration, TwinShiftBanksAlwaysAgree) {
  const Netlist n = circuit::makeTwinShift(5);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  // Bad set: some a_i != b_i.
  bdd::Bdd mismatch = m.zero();
  for (std::size_t i = 0; i < 5; ++i) {
    mismatch |= m.var(s.currentVar(i)) ^ m.var(s.currentVar(5 + i));
  }
  const Bfv bad = bfv::fromChar(m, mismatch, s.currentVars());
  EXPECT_TRUE(setIntersect(*r.reached_bfv, bad).isEmpty());
}

TEST(Integration, CounterUpperBoundViolationFound) {
  // A mod-11 counter CAN reach 10 — the intersection with "count >= 10"
  // must be non-empty (sanity that intersections do find real violations).
  const Netlist n = circuit::makeCounter(4, 11);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  // count >= 10 over latch-order bits (q1 & q3) | (q2 & q3) | ... : encode
  // by enumeration.
  bdd::Bdd ge10 = m.zero();
  for (unsigned v = 10; v < 16; ++v) {
    bdd::Bdd cube = m.one();
    for (std::size_t p = 0; p < 4; ++p) {
      const bdd::Bdd var = m.var(s.currentVar(p));
      cube &= ((v >> p) & 1U) != 0 ? var : ~var;
    }
    ge10 |= cube;
  }
  const Bfv bad = bfv::fromChar(m, ge10, s.currentVars());
  const Bfv hits = setIntersect(*r.reached_bfv, bad);
  ASSERT_FALSE(hits.isEmpty());
  EXPECT_DOUBLE_EQ(hits.countStates(), 1.0);  // exactly the state 10
}

TEST(Integration, TwinShiftSizesShowTheTable3Effect) {
  // With the twin banks maximally separated in the order, the reached
  // set's characteristic function is exponential in the bank width while
  // the shared BFV stays linear (§3 / Table 3).
  const unsigned bits = 8;
  const Netlist n = circuit::makeTwinShift(bits);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(r.states, 256.0);
  EXPECT_GT(r.chi_nodes, std::size_t{1} << bits);  // exponential blowup
  EXPECT_LE(r.bfv_nodes, 4U * bits);               // linear
}

TEST(Integration, TwinShiftInterleavedOrderShrinksChi) {
  // The same circuit under an interleaved order has a small chi: the
  // ordering-sensitivity half of the §3 discussion.
  const unsigned bits = 8;
  const Netlist n = circuit::makeTwinShift(bits);
  // Hand-build the interleaved order: d, a0, b0, a1, b1, ...
  std::vector<circuit::ObjRef> order;
  order.push_back({true, 0});
  for (unsigned i = 0; i < bits; ++i) {
    order.push_back({false, i});
    order.push_back({false, bits + i});
  }
  bdd::Manager m(0);
  sym::StateSpace s(m, n, order);
  const ReachResult r = reach::reachTr(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(r.states, 256.0);
  EXPECT_LE(r.chi_nodes, 4U * bits);  // linear under the good order
  EXPECT_LE(r.bfv_nodes, 4U * bits);  // BFV is small under EVERY order
}

TEST(Integration, ReachedSetMembershipQueries) {
  const Netlist n = circuit::makeJohnson(4);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  // Query every state (latch order -> component order mapping applied).
  for (std::uint64_t st = 0; st < 16; ++st) {
    std::vector<bool> bits(4);
    for (std::size_t c = 0; c < 4; ++c) {
      bits[c] = ((st >> s.latchOfComponent(c)) & 1U) != 0;
    }
    const bool expect =
        std::binary_search(oracle->begin(), oracle->end(), st);
    EXPECT_EQ(r.reached_bfv->contains(bits), expect) << st;
  }
}

TEST(Integration, ConcatenatedCircuitsReachProductSet) {
  const Netlist n = circuit::concatenate(circuit::makeCounter(3, 5),
                                         circuit::makeJohnson(3), "prod");
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const ReachResult r = reach::reachBfv(s, {});
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(r.states, 30.0);
}

TEST(Integration, CbmAndBfvEnginesAgreeOnSizesOfReachedSet) {
  const Netlist n = circuit::makeFifoCtrl(2);
  bdd::Manager m1(0);
  sym::StateSpace s1(m1, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  bdd::Manager m2(0);
  sym::StateSpace s2(m2, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const ReachResult a = reach::reachCbm(s1, {});
  const ReachResult b = reach::reachBfv(s2, {});
  ASSERT_EQ(a.status, RunStatus::kDone);
  ASSERT_EQ(b.status, RunStatus::kDone);
  // Same set, same order, same canonical representations -> same sizes.
  EXPECT_DOUBLE_EQ(a.states, b.states);
  EXPECT_EQ(a.chi_nodes, b.chi_nodes);
  EXPECT_EQ(a.bfv_nodes, b.bfv_nodes);
}

}  // namespace
}  // namespace bfvr
