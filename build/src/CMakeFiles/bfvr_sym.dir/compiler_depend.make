# Empty compiler generated dependencies file for bfvr_sym.
# This may be replaced when dependencies are built.
