// Safety checking with BFV set algebra on a FIFO controller: the occupancy
// counter must always equal wr - rd (mod depth) — and, as a sanity check
// that violations are actually detectable, we also ask a question whose
// answer is "reachable".
//
//   ./examples/invariant_check [ptr_bits]
#include <cstdio>
#include <cstdlib>

#include "circuit/generators.hpp"
#include "reach/engine.hpp"

using namespace bfvr;

int main(int argc, char** argv) {
  const unsigned k =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  const circuit::Netlist n = circuit::makeFifoCtrl(k);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));

  const reach::ReachResult r = reach::reachBfv(s, {});
  std::printf("%s: %.0f reachable states in %u iterations (%.4f s)\n",
              n.name().c_str(), r.states, r.iterations, r.seconds);

  // Latch layout of makeFifoCtrl: wr[0..k-1], rd[0..k-1], cnt[0..k].
  auto bit = [&](unsigned latch_pos) { return m.var(s.currentVar(latch_pos)); };

  // Build chi of "cnt mod 2^k != wr - rd mod 2^k" with a k-bit symbolic
  // subtractor over the current-state variables.
  bdd::Bdd differs = m.zero();
  bdd::Bdd borrow = m.zero();
  for (unsigned i = 0; i < k; ++i) {
    const bdd::Bdd w = bit(i);
    const bdd::Bdd rd = bit(k + i);
    const bdd::Bdd diff = (w ^ rd) ^ borrow;
    borrow = (~w & rd) | ((~w | rd) & borrow);
    differs |= diff ^ bit(2 * k + i);
  }
  const bfv::Bfv bad = bfv::fromChar(m, differs, s.currentVars());
  const bfv::Bfv hit = setIntersect(*r.reached_bfv, bad);
  std::printf("AG (cnt == wr - rd mod %u): %s\n", 1U << k,
              hit.isEmpty() ? "HOLDS" : "VIOLATED");

  // Reachability of "FIFO completely full" — expected reachable.
  const bdd::Bdd full = bit(3 * k);  // cnt top bit
  const bfv::Bfv full_set = bfv::fromChar(m, full, s.currentVars());
  const bfv::Bfv reachable_full = setIntersect(*r.reached_bfv, full_set);
  std::printf("EF full: %s (%.0f full states reachable)\n",
              reachable_full.isEmpty() ? "unreachable (!?)" : "reachable",
              reachable_full.isEmpty() ? 0.0 : reachable_full.countStates());

  // Print one witness state for "full".
  if (!reachable_full.isEmpty()) {
    const auto w = reachable_full.enumerate(1).front();
    std::printf("witness (component order): ");
    for (bool b : w) std::printf("%d", b ? 1 : 0);
    std::printf("\n");
  }
  return hit.isEmpty() && !reachable_full.isEmpty() ? 0 : 1;
}
