// Machine-readable output for the experiment binaries: every bench accepts
// `--json[=path]` and then writes one JSON file per run (an array of run
// objects) so the perf trajectory — peak nodes, recursive steps, reorder
// counters — can be tracked across commits (BENCH_*.json artifacts).
//
// Deliberately tiny: an ordered field builder and an array-file writer, no
// external dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "reach/engine.hpp"

namespace bfvr::bench {

/// Ordered JSON object builder. Field order follows insertion order, so
/// diffs between bench runs stay line-stable.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& v) {
    return addRaw(key, quote(v));
  }
  JsonObject& add(const std::string& key, const char* v) {
    return addRaw(key, quote(v));
  }
  JsonObject& add(const std::string& key, bool v) {
    return addRaw(key, v ? "true" : "false");
  }
  JsonObject& add(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return addRaw(key, buf);
  }
  JsonObject& add(const std::string& key, std::uint64_t v) {
    return addRaw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, unsigned v) {
    return addRaw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, int v) {
    return addRaw(key, std::to_string(v));
  }
  /// Nested object / array: `v` must already be valid JSON.
  JsonObject& addRaw(const std::string& key, const std::string& v) {
    body_ += body_.empty() ? "" : ", ";
    body_ += quote(key) + ": " + v;
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

 private:
  std::string body_;
};

/// Accumulates run objects and writes them as a JSON array. A default-
/// constructed (disabled) log swallows writes, so benches can log
/// unconditionally.
class JsonLog {
 public:
  JsonLog() = default;
  explicit JsonLog(std::string path) : path_(std::move(path)) {}

  bool enabled() const noexcept { return !path_.empty(); }
  void push(const JsonObject& o) {
    if (enabled()) entries_.push_back(o.str());
  }

  /// Write the array file; returns false (with a stderr note) on IO error.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", entries_[i].c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("wrote %s (%zu runs)\n", path_.c_str(), entries_.size());
    return true;
  }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<std::string> entries_;
};

/// Parse `--json` / `--json=path` out of argv; `bench_name` picks the
/// default file name `BENCH_<name>.json`. Returns a disabled log when the
/// flag is absent.
inline JsonLog jsonLogFromArgs(int argc, char** argv,
                               const std::string& bench_name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") return JsonLog("BENCH_" + bench_name + ".json");
    if (arg.rfind("--json=", 0) == 0) return JsonLog(arg.substr(7));
  }
  return JsonLog();
}

/// The common fields of one engine run (everything the tables print, plus
/// the op counters the tables do not have room for).
inline JsonObject runObject(const std::string& circuit,
                            const std::string& order,
                            const std::string& engine,
                            const reach::ReachResult& r) {
  JsonObject o;
  o.add("circuit", circuit)
      .add("order", order)
      .add("engine", engine)
      .add("status", to_string(r.status))
      .add("seconds", r.seconds)
      .add("iterations", r.iterations)
      .add("states", r.states)
      .add("peak_live_nodes", r.peak_live_nodes)
      .add("chi_nodes", r.chi_nodes)
      .add("bfv_nodes", r.bfv_nodes)
      .add("top_ops", r.ops.top_ops)
      .add("recursive_steps", r.ops.recursive_steps)
      .add("cache_lookups", r.ops.cache_lookups)
      .add("cache_hits", r.ops.cache_hits)
      .add("nodes_created", r.ops.nodes_created)
      .add("gc_runs", r.ops.gc_runs)
      .add("reorder_runs", r.ops.reorder_runs)
      .add("reorder_swaps", r.ops.reorder_swaps)
      .add("reorder_nodes_saved", r.ops.reorder_nodes_saved);
  return o;
}

}  // namespace bfvr::bench
