// Experiment: the §3 variable-ordering discussion, in two parts.
//
// Pair mode (default) — for chi = (v1 == v2) & (v3 == v4) & ... the
// characteristic function needs the paired variables adjacent, while the
// Boolean functional vector is small under EVERY order because the
// functional dependencies are factored out (Hu & Dill's observation, built
// into the representation).
//
// Circuit mode (--circuits) — ordering robustness on the shipped netlists:
// sweep the static order suite with the TR engine, pick the worst order by
// peak live nodes, then rerun that worst order with and without
// Config::auto_reorder (sifting). Demonstrates that dynamic reordering
// recovers from a bad static order: the auto-reorder run should complete
// with a lower peak.
//
// `--json[=path]` writes every run as a JSON record (BENCH_ordering.json by
// default in circuit mode).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bfv/bfv.hpp"
#include "circuit/bench_io.hpp"
#include "support.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

using namespace bfvr;
using bfv::Bfv;

namespace {

struct Sizes {
  std::size_t chi;
  std::size_t bfv;
};

/// Build chi = AND_i (var(a_i) == var(b_i)) and the canonical BFV of its
/// set over the given (increasing) choice variables.
Sizes build(unsigned k, bool adjacent) {
  bdd::Manager m(2 * k);
  std::vector<unsigned> vars(2 * k);
  for (unsigned i = 0; i < 2 * k; ++i) vars[i] = i;
  bdd::Bdd chi = m.one();
  for (unsigned i = 0; i < k; ++i) {
    const unsigned a = adjacent ? 2 * i : i;
    const unsigned b = adjacent ? 2 * i + 1 : k + i;
    chi &= m.xnorB(m.var(a), m.var(b));
  }
  const Bfv f = bfv::fromChar(m, chi, vars);
  return Sizes{m.nodeCount(chi), f.sharedSize()};
}

int runPairs(bench::JsonLog& log) {
  std::printf(
      "Ordering sensitivity: chi = AND_i (v_a == v_b), k pairs\n"
      "%-4s | %14s %14s | %14s %14s\n",
      "k", "chi adjacent", "chi separated", "BFV adjacent", "BFV separated");
  for (unsigned k = 2; k <= 16; k += 2) {
    const Sizes adj = build(k, true);
    const Sizes sep = build(k, false);
    std::printf("%-4u | %14zu %14zu | %14zu %14zu\n", k, adj.chi, sep.chi,
                adj.bfv, sep.bfv);
    bench::JsonObject o;
    o.add("mode", "pairs")
        .add("k", k)
        .add("chi_adjacent", adj.chi)
        .add("chi_separated", sep.chi)
        .add("bfv_adjacent", adj.bfv)
        .add("bfv_separated", sep.bfv);
    log.push(o);
  }
  std::printf(
      "\nShape to compare with the paper: chi grows linearly under the\n"
      "paired order but exponentially when the pairs are separated; the\n"
      "BFV stays linear under both (\"with the Boolean functional vector,\n"
      "all orderings are good in this case\", §3).\n");
  return log.write() ? 0 : 1;
}

/// The static order suite swept to find each circuit's worst order.
std::vector<circuit::OrderSpec> orderSuite() {
  using circuit::OrderKind;
  return {{OrderKind::kTopo, 0},   {OrderKind::kNatural, 0},
          {OrderKind::kReverse, 0}, {OrderKind::kRandom, 1},
          {OrderKind::kRandom, 2},  {OrderKind::kRandom, 3}};
}

int runCircuits(bench::JsonLog& log, bench::JsonLog& trace) {
  const char* kCircuits[] = {"arb4",  "cnt8m200", "crc8",
                             "fifo3", "johnson8", "twin6"};
  // Small circuits never reach the default 8K trigger; a low threshold
  // makes the auto-reorder path actually fire here.
  bench::RunSpec baseline;
  baseline.engine = bench::RunSpec::Engine::kTr;
  bench::RunSpec reorder = baseline;
  reorder.mgr.auto_reorder = true;
  reorder.mgr.reorder_threshold = 512;

  // Only the two final worst-order runs are traced; the sweep probes stay
  // untraced to keep the sweep cheap.
  bench::RunSpec baseline_traced = baseline;
  baseline_traced.opts.trace = trace.enabled();
  bench::RunSpec reorder_traced = reorder;
  reorder_traced.opts.trace = trace.enabled();

  std::printf(
      "Ordering robustness: TR engine from each circuit's worst static "
      "order\n"
      "%-10s %-10s | %12s | %12s %12s | %s\n",
      "circuit", "worst", "sweep peaks", "peak base", "peak sift",
      "reorders");
  bench::hr(84);

  unsigned improved = 0;
  for (const char* name : kCircuits) {
    const circuit::Netlist n = circuit::parseBenchFile(
        std::string(BFVR_DATA_DIR) + "/" + name + ".bench");

    // Sweep: probe every static order, keep the worst by peak live nodes.
    circuit::OrderSpec worst;
    std::size_t worst_peak = 0, best_peak = 0;
    for (const circuit::OrderSpec& spec : orderSuite()) {
      const reach::ReachResult probe = bench::runOnce(n, spec, baseline);
      log.push(bench::runObject(name, spec.label(),
                                bench::engineName(baseline.engine), probe)
                   .add("mode", "sweep"));
      if (best_peak == 0 || probe.peak_live_nodes < best_peak) {
        best_peak = probe.peak_live_nodes;
      }
      if (probe.peak_live_nodes > worst_peak) {
        worst_peak = probe.peak_live_nodes;
        worst = spec;
      }
    }

    // Final comparison from the worst order: plain vs auto-reorder.
    const reach::ReachResult base = bench::runOnce(n, worst, baseline_traced);
    const reach::ReachResult sift = bench::runOnce(n, worst, reorder_traced);
    log.push(bench::runObject(name, worst.label(),
                              bench::engineName(baseline.engine), base)
                 .add("mode", "worst_baseline"));
    log.push(bench::runObject(name, worst.label(),
                              bench::engineName(reorder.engine), sift)
                 .add("mode", "worst_auto_reorder")
                 .add("reorder_threshold", reorder.mgr.reorder_threshold));
    bench::pushTrace(trace, name, worst.label(),
                     bench::engineName(baseline.engine), base);
    bench::pushTrace(trace, name, worst.label(),
                     bench::engineName(reorder.engine), sift);

    char sweep[32];
    std::snprintf(sweep, sizeof sweep, "%zu..%zu", best_peak, worst_peak);
    std::printf("%-10s %-10s | %12s | %12zu %12zu | %llu runs, %llu saved\n",
                name, worst.label().c_str(), sweep, base.peak_live_nodes,
                sift.peak_live_nodes,
                static_cast<unsigned long long>(sift.ops.reorder_runs),
                static_cast<unsigned long long>(sift.ops.reorder_nodes_saved));
    if (sift.status == RunStatus::kDone &&
        sift.peak_live_nodes < base.peak_live_nodes) {
      ++improved;
    }
  }
  bench::hr(84);
  std::printf(
      "auto-reorder (sift, threshold %zu) lowered the worst-order peak on "
      "%u/6 circuits\n",
      reorder.mgr.reorder_threshold, improved);
  if (!log.write() || !trace.write()) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool circuits = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--circuits") == 0) circuits = true;
  }
  bench::JsonLog log = bench::jsonLogFromArgs(argc, argv, "ordering");
  bench::JsonLog trace = bench::traceLogFromArgs(argc, argv, "ordering");
  return circuits ? runCircuits(log, trace) : runPairs(log);
}
