// §2.7: the conjunctive decomposition, its isomorphism with canonical BFVs,
// and the constrain-based union.
#include <gtest/gtest.h>

#include "cdec/cdec.hpp"
#include "support/brute.hpp"

namespace bfvr::cdec {
namespace {

using bfv::Bfv;
using test::Set;

const std::vector<unsigned> kVars{0, 1, 2, 3};

class CdecSweep : public ::testing::TestWithParam<int> {};

TEST_P(CdecSweep, FromBfvAndFromCharAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 83 + 1);
  Manager m(4);
  Set s = test::randomSet(rng, 4, 1, 2);
  if (s.empty()) s.insert(6);
  const Bfv f = test::bfvOf(m, kVars, s);
  const Cdec a = Cdec::fromBfv(f);
  const Cdec b = Cdec::fromChar(m, f.toChar(), kVars);
  // The constrain-canonical components coincide with v_i XNOR f_i — the
  // §2.7 connection made exact (both encode the same nearest-member map).
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.toChar(), f.toChar());
  EXPECT_EQ(a.toBfv(), f);
  EXPECT_DOUBLE_EQ(a.countStates(), static_cast<double>(s.size()));
}

TEST_P(CdecSweep, UnionMatchesBfvUnion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 11);
  Manager m(4);
  const Set sa = test::randomSet(rng, 4, 1, 3);
  const Set sb = test::randomSet(rng, 4, 1, 3);
  const Bfv fa = test::bfvOf(m, kVars, sa);
  const Bfv fb = test::bfvOf(m, kVars, sb);
  const Cdec cu = setUnion(Cdec::fromBfv(fa), Cdec::fromBfv(fb));
  const Bfv fu = bfv::setUnion(fa, fb);
  EXPECT_EQ(cu.toChar(), fu.toChar());
  if (!fu.isEmpty()) {
    EXPECT_EQ(cu.toBfv(), fu);
    EXPECT_EQ(cu, Cdec::fromBfv(fu));
  }
}

TEST_P(CdecSweep, IntersectMatchesBfvIntersect) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 29);
  Manager m(4);
  const Set sa = test::randomSet(rng, 4, 2, 3);
  const Set sb = test::randomSet(rng, 4, 2, 3);
  const Bfv fa = test::bfvOf(m, kVars, sa);
  const Bfv fb = test::bfvOf(m, kVars, sb);
  const Cdec ci = setIntersect(Cdec::fromBfv(fa), Cdec::fromBfv(fb));
  const Bfv fi = bfv::setIntersect(fa, fb);
  EXPECT_EQ(ci.toChar(), fi.toChar());
  EXPECT_EQ(ci.isEmpty(), fi.isEmpty());
}

TEST_P(CdecSweep, ReparamMatchesBfvReparam) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 3);
  Manager m(8);
  const std::vector<unsigned> params{4, 5, 6};
  std::vector<Bdd> outs(4);
  for (unsigned i = 0; i < 4; ++i) {
    outs[i] = test::bddFromTruth(m, params, test::randomTruth(rng, 3));
  }
  const Cdec c = reparameterizeCdec(m, outs, kVars, params);
  const Bfv f = bfv::reparameterize(m, outs, kVars, params);
  EXPECT_EQ(c.toBfv(), f);
  EXPECT_EQ(c, Cdec::fromBfv(f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdecSweep, ::testing::Range(0, 20));

TEST(Cdec, UniverseAndEmpty) {
  Manager m(4);
  const Cdec u = Cdec::universe(m, kVars);
  EXPECT_TRUE(u.toChar().isTrue());
  EXPECT_DOUBLE_EQ(u.countStates(), 16.0);
  const Cdec e = Cdec::emptySet(m, kVars);
  EXPECT_TRUE(e.isEmpty());
  EXPECT_TRUE(e.toChar().isFalse());
  EXPECT_EQ(setUnion(e, u), u);
  EXPECT_TRUE(setIntersect(e, u).isEmpty());
}

TEST(Cdec, ConstraintComponentsHavePrefixSupport) {
  Manager m(4);
  Rng rng(15);
  const Set s = test::randomSet(rng, 4, 1, 2);
  if (s.empty()) GTEST_SKIP();
  const Cdec c = Cdec::fromBfv(test::bfvOf(m, kVars, s));
  for (std::size_t i = 0; i < 4; ++i) {
    for (unsigned v : m.support(c.constraints()[i])) {
      EXPECT_LE(v, kVars[i]);
    }
  }
}

TEST(Cdec, ProjectionInvariant) {
  // AND_{j<=i} c_j equals the projection exists v_{>i} chi.
  Manager m(4);
  Rng rng(23);
  const Set s = test::randomSet(rng, 4, 1, 2);
  if (s.empty()) GTEST_SKIP();
  const Bfv f = test::bfvOf(m, kVars, s);
  const Cdec c = Cdec::fromBfv(f);
  const Bdd chi = f.toChar();
  Bdd prefix = m.one();
  for (std::size_t i = 0; i < 4; ++i) {
    prefix &= c.constraints()[i];
    std::vector<unsigned> rest(kVars.begin() + i + 1, kVars.end());
    EXPECT_EQ(prefix, m.exists(chi, m.cube(rest)));
  }
}

TEST(Cdec, UnionUsesFewerTopOpsThanBfv) {
  // The §2.7 claim: with matching orders the constrain-based union needs
  // fewer BDD operations per component than the exclusion-condition sweep.
  Manager m(16);
  std::vector<unsigned> vars(8);
  for (unsigned i = 0; i < 8; ++i) vars[i] = i;
  Rng rng(2);
  const Set sa = test::randomSet(rng, 8, 1, 7);
  const Set sb = test::randomSet(rng, 8, 1, 7);
  if (sa.empty() || sb.empty()) GTEST_SKIP();
  const Bfv fa = test::bfvOf(m, vars, sa);
  const Bfv fb = test::bfvOf(m, vars, sb);
  const Cdec ca = Cdec::fromBfv(fa);
  const Cdec cb = Cdec::fromBfv(fb);
  m.resetStats();
  (void)bfv::setUnion(fa, fb);
  const auto bfv_ops = m.stats().top_ops;
  m.resetStats();
  (void)setUnion(ca, cb);
  const auto cdec_ops = m.stats().top_ops;
  EXPECT_LT(cdec_ops, bfv_ops);
}

TEST(Cdec, FromConstraintsRejectsBadArity) {
  Manager m(4);
  std::vector<Bdd> comps{m.one()};
  EXPECT_THROW((void)Cdec::fromConstraints(m, kVars, comps),
               std::invalid_argument);
}

TEST(Cdec, OperandCompatibilityEnforced) {
  Manager m(8);
  const Cdec a = Cdec::universe(m, {0, 1});
  const Cdec b = Cdec::universe(m, {2, 3});
  EXPECT_THROW((void)setUnion(a, b), std::invalid_argument);
  EXPECT_THROW((void)setIntersect(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace bfvr::cdec
