// The parallel kernel (DESIGN.md §15): sharded unique table, concurrent
// computed cache, and the task pool. The contract under test is always the
// same — any thread count computes the same functions as the sequential
// kernel; parallelism may change schedules and op counts, never results.
//
// The three named concurrency tests (BddParShardHammer, BddParCachePublish,
// BddParForkJoinCancel) are the ones CI additionally builds under
// ThreadSanitizer: they drive the unique-table shard locks, the lossy
// seqlock cache publish, and pool fork/join under cancellation, which is
// where a missed barrier would surface as a TSan report.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bfv/bfv.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/orders.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr {
namespace {

using bdd::Bdd;
using bdd::Manager;

Manager::Config parCfg(unsigned threads) {
  Manager::Config cfg;
  cfg.threads = threads;
  return cfg;
}

/// Deterministic formula family: mixes XOR chains (wide, cache-heavy) with
/// AND/ITE structure so every task exercises mkNode on many variables.
Bdd buildFormula(Manager& m, unsigned seed) {
  Bdd acc = (seed & 1U) != 0 ? m.one() : m.zero();
  for (unsigned k = 0; k < 24; ++k) {
    const unsigned v = (seed * 7U + k * 5U) % 48U;
    const Bdd x = m.var(v);
    switch ((seed + k) % 3U) {
      case 0:
        acc = acc ^ x;
        break;
      case 1:
        acc = acc | (x & m.var((v + 13U) % 48U));
        break;
      default:
        acc = m.ite(x, acc, ~acc);
        break;
    }
  }
  return acc;
}

// -- BddParShardHammer -------------------------------------------------------
// Many tasks build node-heavy functions over overlapping variable ranges:
// every subtable shard sees concurrent probe/insert/grow traffic. Results
// must match a sequential manager function-for-function.
TEST(BddParShardHammer, ConcurrentMkNodeMatchesSequential) {
  Manager par(48, parCfg(4));
  Manager seq(48, parCfg(1));
  constexpr unsigned kTasks = 32;
  std::vector<Bdd> got(kTasks);
  std::vector<std::function<void()>> fns;
  fns.reserve(kTasks);
  for (unsigned i = 0; i < kTasks; ++i) {
    fns.push_back([&par, &got, i] { got[i] = buildFormula(par, i); });
  }
  par.parallelInvoke(fns);
  for (unsigned i = 0; i < kTasks; ++i) {
    ASSERT_FALSE(got[i].isNull()) << "task " << i;
    const Bdd ref = buildFormula(seq, i);
    EXPECT_DOUBLE_EQ(par.satCount(got[i], 48), seq.satCount(ref, 48))
        << "task " << i;
    EXPECT_EQ(par.support(got[i]), seq.support(ref)) << "task " << i;
  }
  // Canonicity survived the hammer: rebuilding on the owner thread must hit
  // the very same nodes.
  for (unsigned i = 0; i < kTasks; ++i) {
    EXPECT_EQ(buildFormula(par, i).raw(), got[i].raw()) << "task " << i;
  }
  EXPECT_EQ(par.parPendingTasks(), 0U);
}

// -- BddParCachePublish ------------------------------------------------------
// All tasks compute the SAME operations concurrently: identical cache keys
// published and probed from every worker at once. The seqlock lines may
// drop inserts under a race (lossy), but every returned edge must be the
// one canonical result.
TEST(BddParCachePublish, RacingIdenticalOpsAgree) {
  Manager m(48, parCfg(4));
  const Bdd f = buildFormula(m, 3);
  const Bdd g = buildFormula(m, 11);
  const Bdd h = buildFormula(m, 19);
  constexpr unsigned kTasks = 24;
  std::vector<Bdd> and_r(kTasks), ite_r(kTasks), xor_r(kTasks);
  std::vector<std::function<void()>> fns;
  fns.reserve(kTasks);
  for (unsigned i = 0; i < kTasks; ++i) {
    fns.push_back([&, i] {
      and_r[i] = f & g;
      ite_r[i] = m.ite(f, g, h);
      xor_r[i] = g ^ h;
    });
  }
  m.parallelInvoke(fns);
  const Bdd and_ref = f & g;
  const Bdd ite_ref = m.ite(f, g, h);
  const Bdd xor_ref = g ^ h;
  for (unsigned i = 0; i < kTasks; ++i) {
    EXPECT_EQ(and_r[i].raw(), and_ref.raw()) << "task " << i;
    EXPECT_EQ(ite_r[i].raw(), ite_ref.raw()) << "task " << i;
    EXPECT_EQ(xor_r[i].raw(), xor_ref.raw()) << "task " << i;
  }
}

// -- BddParForkJoinCancel ----------------------------------------------------
// A cancellation raised inside the pool: the worker's Interrupted unwinds
// through the fork guards (each join()s its outstanding child), so the op
// aborts without leaking queued tasks and the manager stays usable.
TEST(BddParForkJoinCancel, CancelledApplyLeavesNoPendingTasks) {
  Manager m(48, parCfg(4));
  const Bdd f = buildFormula(m, 5);
  const Bdd g = buildFormula(m, 23);
  bool armed = false;
  m.setInterruptCheck([&armed] {
    if (armed) throw bdd::Interrupted(bdd::Interrupted::Reason::kCancelled);
  });
  armed = true;
  EXPECT_THROW(
      {
        Bdd r = f & g;
        // Enough fresh structure to guarantee allocations (and thus interrupt
        // polls) even if the AND above was fully cached.
        for (unsigned i = 0; i < 64; ++i) r = r ^ buildFormula(m, 100 + i);
      },
      bdd::Interrupted);
  EXPECT_EQ(m.parPendingTasks(), 0U);
  // Disarm: the manager must still run parallel ops and produce canonical
  // results after the aborted one.
  armed = false;
  const Bdd back = f & g;
  EXPECT_EQ((g & f).raw(), back.raw());
  EXPECT_EQ(m.parPendingTasks(), 0U);
}

// -- apply equivalence -------------------------------------------------------
TEST(BddParallel, ParallelApplyMatchesSequentialOnFormulaFamily) {
  Manager par(48, parCfg(4));
  Manager seq(48, parCfg(1));
  for (unsigned i = 0; i < 5; ++i) {
    const Bdd pf = buildFormula(par, i);
    const Bdd pg = buildFormula(par, i + 40);
    const Bdd sf = buildFormula(seq, i);
    const Bdd sg = buildFormula(seq, i + 40);
    EXPECT_DOUBLE_EQ(par.satCount(pf & pg, 48), seq.satCount(sf & sg, 48));
    EXPECT_DOUBLE_EQ(par.satCount(pf ^ pg, 48), seq.satCount(sf ^ sg, 48));
    const std::vector<unsigned> cube_vars = {1, 5, 9};
    const Bdd pc = par.cube(cube_vars);
    const Bdd sc = seq.cube(cube_vars);
    EXPECT_DOUBLE_EQ(par.satCount(par.exists(pf, pc), 48),
                     seq.satCount(seq.exists(sf, sc), 48));
    EXPECT_DOUBLE_EQ(par.satCount(par.andExists(pf, pg, pc), 48),
                     seq.satCount(seq.andExists(sf, sg, sc), 48));
    auto [plo, phi] = par.cofactor2(pf, 7);
    auto [slo, shi] = seq.cofactor2(sf, 7);
    EXPECT_DOUBLE_EQ(par.satCount(plo, 48), seq.satCount(slo, 48));
    EXPECT_DOUBLE_EQ(par.satCount(phi, 48), seq.satCount(shi, 48));
  }
  EXPECT_EQ(par.parPendingTasks(), 0U);
}

TEST(BddParallel, CountersReportPoolActivity) {
  Manager m(48, parCfg(4));
  EXPECT_EQ(m.threads(), 4U);
  std::vector<Bdd> out(16);
  std::vector<std::function<void()>> fns;
  for (unsigned i = 0; i < 16; ++i) {
    fns.push_back([&m, &out, i] { out[i] = buildFormula(m, i); });
  }
  m.parallelInvoke(fns);
  EXPECT_GT(m.parCounters().tasks_spawned, 0U);
}

TEST(BddParallel, ThreadsOneNeverSpawnsTasks) {
  Manager m(48, parCfg(1));
  const Bdd f = buildFormula(m, 2);
  const Bdd g = buildFormula(m, 9);
  (void)(f & g);
  (void)m.ite(f, g, ~f);
  const Manager::ParCounters c = m.parCounters();
  EXPECT_EQ(c.tasks_spawned, 0U);
  EXPECT_EQ(c.tasks_stolen, 0U);
}

// -- BFV component-parallel steps -------------------------------------------
TEST(BddParallel, BfvSetOpsMatchSequentialAcrossThreadCounts) {
  const std::vector<unsigned> vars = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint64_t> a_members = {0, 3, 17, 42, 100, 200, 255};
  const std::vector<std::uint64_t> b_members = {3, 5, 42, 99, 128, 255};
  Manager seq(8, parCfg(1));
  const bfv::Bfv sa = bfv::Bfv::fromMembers(seq, vars, a_members);
  const bfv::Bfv sb = bfv::Bfv::fromMembers(seq, vars, b_members);
  const double seq_union = bfv::setUnion(sa, sb).countStates();
  const double seq_inter = bfv::setIntersect(sa, sb).countStates();
  for (const unsigned t : {2U, 4U}) {
    Manager par(8, parCfg(t));
    const bfv::Bfv pa = bfv::Bfv::fromMembers(par, vars, a_members);
    const bfv::Bfv pb = bfv::Bfv::fromMembers(par, vars, b_members);
    EXPECT_DOUBLE_EQ(bfv::setUnion(pa, pb).countStates(), seq_union)
        << "threads=" << t;
    EXPECT_DOUBLE_EQ(bfv::setIntersect(pa, pb).countStates(), seq_inter)
        << "threads=" << t;
    std::string why;
    EXPECT_TRUE(bfv::setUnion(pa, pb).checkCanonical(&why)) << why;
    EXPECT_EQ(par.parPendingTasks(), 0U);
  }
}

// -- toChar under the pressure ladder ---------------------------------------
// Regression: every parallelInvoke body must be idempotent, because a
// NodeBudgetExceeded thrown mid-batch makes withPressure rerun the WHOLE
// batch after relief. toChar's XNOR fan-out once wrote v_i XNOR f_i back
// into the slot holding v_i, so components that completed the first
// attempt computed (v_i XNOR f_i) XNOR f_i == v_i on the rerun — silently
// dropping their constraint from chi. Injected allocation failures at
// exact ticks force the rerun; the characteristic function must still
// count exactly the member set.
TEST(BddParallel, ToCharSurvivesPressureLadderRerun) {
  std::vector<unsigned> vars(16);
  for (unsigned i = 0; i < 16; ++i) vars[i] = i;
  std::vector<std::uint64_t> members;
  for (std::uint64_t k = 0; k < 40; ++k) {
    members.push_back((k * 2654435761ULL) & 0xFFFFU);  // odd stride: distinct
  }
  Manager seq(16, parCfg(1));
  const double want =
      bfv::Bfv::fromMembers(seq, vars, members).countStates();
  ASSERT_DOUBLE_EQ(want, 40.0);

  Manager::Config cfg = parCfg(4);
  cfg.pressure_ladder.enabled = true;  // three rungs: one per injected fault
  Manager m(16, cfg);
  const bfv::Bfv s = bfv::Bfv::fromMembers(m, vars, members);
  bdd::FaultPlan plan;
  plan.alloc_failures = {10, 60, 150};
  m.setFaultPlan(plan);
  const Bdd chi = s.toChar();
  // At least one fault must have fired inside toChar, or this test proved
  // nothing (read before disarming: setFaultPlan resets the counter).
  EXPECT_GE(m.faultsInjected(), 1U);
  m.setFaultPlan({});
  EXPECT_DOUBLE_EQ(m.satCount(chi, 16), want);
  EXPECT_EQ(m.parPendingTasks(), 0U);
}

// -- differential suite: shipped circuits × engines × thread counts ----------
// Every data/*.bench runs under every BDD engine at 1, 2 and 4 threads with
// capped iterations/budgets; the parallel runs must reproduce the
// threads=1 status, iteration count and state count exactly.
class ParDiff : public ::testing::TestWithParam<const char*> {};

reach::ReachResult runEngine(const circuit::Netlist& n, unsigned engine,
                             unsigned threads) {
  Manager m(0, parCfg(threads));
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  reach::ReachOptions opts;
  opts.max_iterations = 6;
  opts.budget.max_seconds = 30.0;
  switch (engine) {
    case 0:
      return reach::reachTr(s, opts);
    case 1:
      return reach::reachCbm(s, opts);
    case 2:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    default:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
  }
}

TEST_P(ParDiff, EnginesAgreeAcrossThreadCounts) {
  const circuit::Netlist n = circuit::parseBenchFile(
      std::string(BFVR_DATA_DIR) + "/" + GetParam());
  static const char* const kEngines[] = {"tr", "cbm", "bfv", "cdec"};
  for (unsigned e = 0; e < 4; ++e) {
    const reach::ReachResult ref = runEngine(n, e, 1);
    for (const unsigned t : {2U, 4U}) {
      const reach::ReachResult r = runEngine(n, e, t);
      EXPECT_EQ(to_string(r.status), to_string(ref.status))
          << kEngines[e] << " threads=" << t;
      EXPECT_EQ(r.iterations, ref.iterations)
          << kEngines[e] << " threads=" << t;
      EXPECT_DOUBLE_EQ(r.states, ref.states)
          << kEngines[e] << " threads=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, ParDiff,
                         ::testing::Values("arb4.bench", "cnt8m200.bench",
                                           "crc8.bench", "crc16.bench",
                                           "fifo3.bench", "johnson8.bench",
                                           "lfsr16.bench", "lfsr32.bench",
                                           "twin6.bench"));

}  // namespace
}  // namespace bfvr
