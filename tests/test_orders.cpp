// Static variable-ordering heuristics.
#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/generators.hpp"
#include "circuit/orders.hpp"

namespace bfvr::circuit {
namespace {

bool isPermutationOfSources(const Netlist& n, const std::vector<ObjRef>& o) {
  if (o.size() != n.inputs().size() + n.latches().size()) return false;
  std::vector<bool> seen_in(n.inputs().size(), false);
  std::vector<bool> seen_l(n.latches().size(), false);
  for (const ObjRef& r : o) {
    auto& seen = r.is_input ? seen_in : seen_l;
    if (r.pos >= seen.size() || seen[r.pos]) return false;
    seen[r.pos] = true;
  }
  return true;
}

class OrderKinds : public ::testing::TestWithParam<OrderKind> {};

TEST_P(OrderKinds, ProducesPermutationOnEveryGenerator) {
  const OrderSpec spec{GetParam(), 7};
  for (const Netlist& n :
       {makeCounter(5, 21), makeJohnson(4), makeTwinShift(4), makeArbiter(4),
        makeFifoCtrl(2), makeRandomSeq(6, 3, 30, 4)}) {
    EXPECT_TRUE(isPermutationOfSources(n, makeOrder(n, spec))) << n.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, OrderKinds,
                         ::testing::Values(OrderKind::kNatural,
                                           OrderKind::kTopo,
                                           OrderKind::kReverse,
                                           OrderKind::kRandom));

TEST(Orders, NaturalIsDeclarationOrder) {
  const Netlist n = makeCounter(3, 8);
  const auto o = makeOrder(n, {OrderKind::kNatural, 0});
  EXPECT_TRUE(o[0].is_input);  // en declared first
  EXPECT_FALSE(o[1].is_input);
  EXPECT_EQ(o[1].pos, 0U);
  EXPECT_EQ(o[3].pos, 2U);
}

TEST(Orders, ReverseInvertsNatural) {
  const Netlist n = makeCounter(3, 8);
  auto nat = makeOrder(n, {OrderKind::kNatural, 0});
  const auto rev = makeOrder(n, {OrderKind::kReverse, 0});
  std::reverse(nat.begin(), nat.end());
  EXPECT_EQ(nat, rev);
}

TEST(Orders, RandomIsSeedDeterministic) {
  const Netlist n = makeRandomSeq(8, 4, 40, 9);
  EXPECT_EQ(makeOrder(n, {OrderKind::kRandom, 5}),
            makeOrder(n, {OrderKind::kRandom, 5}));
  EXPECT_NE(makeOrder(n, {OrderKind::kRandom, 5}),
            makeOrder(n, {OrderKind::kRandom, 6}));
}

TEST(Orders, TopoIsDeterministicAndConeDriven) {
  const Netlist n = makeCounter(4, 13);
  const auto a = makeOrder(n, {OrderKind::kTopo, 0});
  const auto b = makeOrder(n, {OrderKind::kTopo, 99});  // seed ignored
  EXPECT_EQ(a, b);
  // The enable input feeds every next-state cone, so it must appear next
  // to the first latch (within the first two objects).
  ASSERT_GE(a.size(), 2U);
  EXPECT_TRUE(a[0].is_input || a[1].is_input);
}

TEST(Orders, TopoCoversDanglingSources) {
  Netlist n("dangling");
  (void)n.addInput("unused");
  const SignalId q = n.addLatch("q", false);
  n.setLatchData(q, q);
  const auto o = makeOrder(n, {OrderKind::kTopo, 0});
  EXPECT_TRUE(isPermutationOfSources(n, o));
}

TEST(Orders, Labels) {
  EXPECT_EQ((OrderSpec{OrderKind::kNatural, 0}).label(), "natural");
  EXPECT_EQ((OrderSpec{OrderKind::kTopo, 0}).label(), "topo");
  EXPECT_EQ((OrderSpec{OrderKind::kReverse, 0}).label(), "reverse");
  EXPECT_EQ((OrderSpec{OrderKind::kRandom, 3}).label(), "rand3");
}

}  // namespace
}  // namespace bfvr::circuit
