file(REMOVE_RECURSE
  "CMakeFiles/bfvr_cdec.dir/cdec/cdec.cpp.o"
  "CMakeFiles/bfvr_cdec.dir/cdec/cdec.cpp.o.d"
  "libbfvr_cdec.a"
  "libbfvr_cdec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_cdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
