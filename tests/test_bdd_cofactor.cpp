// Shannon cofactors and the generalized cofactors `constrain` / `restrict`.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

const std::vector<unsigned> kVars{0, 1, 2, 3};

class GenCofSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenCofSweep, ConstrainAgreesOnCareSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  Bdd c = bddFromTruth(m, kVars, randomTruth(rng, 4));
  if (c.isFalse()) c = m.var(0);
  const Bdd k = m.constrain(f, c);
  // Defining property of a generalized cofactor.
  EXPECT_EQ(k & c, f & c);
}

TEST_P(GenCofSweep, RestrictAgreesOnCareSetAndShrinksSupport) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 29);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  Bdd c = bddFromTruth(m, kVars, randomTruth(rng, 4));
  if (c.isFalse()) c = m.var(1);
  const Bdd r = m.restrict(f, c);
  EXPECT_EQ(r & c, f & c);
  // restrict never introduces variables outside f's support.
  const auto sf = m.support(f);
  for (unsigned v : m.support(r)) {
    EXPECT_TRUE(std::find(sf.begin(), sf.end(), v) != sf.end())
        << "restrict introduced v" << v;
  }
}

TEST_P(GenCofSweep, CofactorMatchesTruthTable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 3);
  Manager m(4);
  const std::uint64_t tt = randomTruth(rng, 4);
  const Bdd f = bddFromTruth(m, kVars, tt);
  for (unsigned j = 0; j < 4; ++j) {
    for (bool val : {false, true}) {
      std::uint64_t expect = 0;
      for (unsigned a = 0; a < 16; ++a) {
        const unsigned aa = val ? (a | (1U << j)) : (a & ~(1U << j));
        if (((tt >> aa) & 1U) != 0) expect |= std::uint64_t{1} << a;
      }
      EXPECT_EQ(truthOf(m, m.cofactor(f, j, val), kVars), expect);
    }
  }
}

TEST_P(GenCofSweep, Cofactor2MatchesTwoSingleCofactors) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 11);
  Manager m(4);
  const Bdd f = bddFromTruth(m, kVars, randomTruth(rng, 4));
  for (unsigned j = 0; j < 4; ++j) {
    const auto [lo, hi] = m.cofactor2(f, j);
    EXPECT_EQ(lo, m.cofactor(f, j, false));
    EXPECT_EQ(hi, m.cofactor(f, j, true));
  }
  // Complemented input: the fused kernel factors the parity out of the
  // cache key, so exercise both polarities explicitly.
  const auto [nlo, nhi] = m.cofactor2(~f, 2);
  EXPECT_EQ(nlo, m.cofactor(~f, 2, false));
  EXPECT_EQ(nhi, m.cofactor(~f, 2, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenCofSweep, ::testing::Range(0, 30));

TEST(BddCofactor, Cofactor2Basics) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | (m.var(1) & m.var(2));
  // Cofactors on the top variable, below the support, and on constants.
  const auto [l1, h1] = m.cofactor2(f, 1);
  EXPECT_EQ(l1, m.zero());
  EXPECT_EQ(h1, m.var(0) | m.var(2));
  const auto [l3, h3] = m.cofactor2(f, 3);
  EXPECT_EQ(l3, f);
  EXPECT_EQ(h3, f);
  const auto [lt, ht] = m.cofactor2(m.one(), 0);
  EXPECT_EQ(lt, m.one());
  EXPECT_EQ(ht, m.one());
}

TEST(BddCofactor, Cofactor2MatchesSinglesUnderReordering) {
  // The fused kernel indexes levels through var2level_, so it must agree
  // with the single-variable cofactor before and after sifting permutes
  // the order (same variable identities, different levels).
  Rng rng(2027);
  Manager m(8);
  std::vector<Bdd> fs;
  for (int i = 0; i < 6; ++i) {
    Bdd f = m.zero();
    for (int c = 0; c < 6; ++c) {
      Bdd cube = m.one();
      for (int lit = 0; lit < 3; ++lit) {
        const unsigned v = static_cast<unsigned>(rng.below(8));
        cube &= rng.flip() ? m.var(v) : ~m.var(v);
      }
      f |= cube;
    }
    fs.push_back(f);
  }
  const auto check = [&] {
    for (const Bdd& f : fs) {
      for (unsigned j = 0; j < 8; ++j) {
        const auto [lo, hi] = m.cofactor2(f, j);
        EXPECT_EQ(lo, m.cofactor(f, j, false));
        EXPECT_EQ(hi, m.cofactor(f, j, true));
      }
    }
  };
  check();
  m.reorder(ReorderMethod::kSift);
  check();
  m.reorder(ReorderMethod::kWindow3);
  check();
}

TEST(BddCofactor, ConstrainIdentities) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  EXPECT_EQ(m.constrain(f, m.one()), f);
  EXPECT_EQ(m.constrain(f, f), m.one());
  EXPECT_EQ(m.constrain(~f, f), m.zero());
  EXPECT_EQ(m.constrain(m.one(), f), m.one());
  EXPECT_EQ(m.constrain(m.zero(), f), m.zero());
  EXPECT_THROW((void)m.constrain(f, m.zero()), std::invalid_argument);
  EXPECT_THROW((void)m.restrict(f, m.zero()), std::invalid_argument);
}

TEST(BddCofactor, ConstrainOnCubeIsCofactor) {
  // Constraining with a positive cube equals ordinary cofactoring.
  Manager m(4);
  const Bdd f = (m.var(0) ^ m.var(1)) | (m.var(2) & m.var(3));
  const Bdd cube = m.var(0) & m.var(2);
  const Bdd expect = m.cofactor(m.cofactor(f, 0, true), 2, true);
  EXPECT_EQ(m.constrain(f, cube), expect);
  EXPECT_EQ(m.restrict(f, cube), expect);
}

TEST(BddCofactor, ConstrainPicksNearestUnderTheWeightedMetric) {
  // The Coudert–Madre mapping sends an off-care point to the nearest care
  // point, weighting earlier variables heavier — the same metric as the
  // paper's canonical BFV (§2.1). For care = {v0=1}, f evaluated at v0=0
  // must equal f at v0=1 with other bits kept.
  Manager m(3);
  const Bdd f = m.var(0) ^ m.var(1) ^ m.var(2);
  const Bdd care = m.var(0);
  const Bdd k = m.constrain(f, care);
  for (unsigned a = 0; a < 8; ++a) {
    std::vector<bool> x{(a & 1U) != 0, (a & 2U) != 0, (a & 4U) != 0};
    std::vector<bool> nearest = x;
    nearest[0] = true;  // nearest care point flips only v0
    EXPECT_EQ(m.eval(k, x), m.eval(f, nearest));
  }
}

TEST(BddCofactor, CofactorRemovesVariable) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | (m.var(1) & m.var(2));
  const Bdd g = m.cofactor(f, 1, true);
  const auto sup = m.support(g);
  EXPECT_TRUE(std::find(sup.begin(), sup.end(), 1U) == sup.end());
  EXPECT_EQ(g, m.var(0) | m.var(2));
}

TEST(BddCofactor, HandleForwardersMatchManagerCalls) {
  Manager m(4);
  const Bdd f = m.var(0) | (m.var(1) & m.var(2));
  const Bdd c = m.var(1);
  EXPECT_EQ(f.constrain(c), m.constrain(f, c));
  EXPECT_EQ(f.restrict(c), m.restrict(f, c));
  EXPECT_EQ(f.cofactor(1, true), m.cofactor(f, 1, true));
  const unsigned cv[] = {2};
  EXPECT_EQ(f.exists(m.cube(cv)), m.exists(f, m.cube(cv)));
  EXPECT_EQ(f.forall(m.cube(cv)), m.forall(f, m.cube(cv)));
}

}  // namespace
}  // namespace bfvr::bdd
