// Concrete (bit-level) simulation and explicit-state reachability. The
// explicit BFS is the ground-truth oracle the symbolic engines are tested
// against on small circuits.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/netlist.hpp"

namespace bfvr::circuit {

/// Evaluates the combinational logic of a netlist for concrete state and
/// input vectors.
class ConcreteSim {
 public:
  explicit ConcreteSim(const Netlist& n);

  /// Values of every signal given latch values (latch order) and input
  /// values (input order).
  std::vector<bool> evalAll(const std::vector<bool>& state,
                            const std::vector<bool>& inputs) const;

  /// Next latch state.
  std::vector<bool> step(const std::vector<bool>& state,
                         const std::vector<bool>& inputs) const;

  /// Primary output values.
  std::vector<bool> outputs(const std::vector<bool>& state,
                            const std::vector<bool>& inputs) const;

  /// Initial latch state.
  std::vector<bool> initialState() const;

 private:
  const Netlist& n_;
  std::vector<SignalId> topo_;
};

/// Explicit-state breadth-first reachability from the initial state over
/// all input combinations. Requires #latches <= 24 and #inputs <= 20;
/// `limit` aborts (returns nullopt) when more states than that are found.
/// Returns the set of reachable states as latch bit masks (bit i = latch i).
std::optional<std::vector<std::uint64_t>> explicitReach(
    const Netlist& n, std::size_t limit = 1U << 22);

}  // namespace bfvr::circuit
