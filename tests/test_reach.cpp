// The three reachability engines against the explicit-state oracle, across
// circuits, variable orders and engine options.
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/engine.hpp"

namespace bfvr::reach {
namespace {

using circuit::Netlist;
using circuit::OrderKind;
using circuit::OrderSpec;

enum class Engine { kTr, kCbm, kBfv, kCdec };

const char* name(Engine e) {
  switch (e) {
    case Engine::kTr:
      return "tr";
    case Engine::kCbm:
      return "cbm";
    case Engine::kBfv:
      return "bfv";
    case Engine::kCdec:
      return "cdec";
  }
  return "?";
}

ReachResult run(Engine e, sym::StateSpace& s, ReachOptions opts = {}) {
  opts.max_iterations = 2000;
  switch (e) {
    case Engine::kTr:
      return reachTr(s, opts);
    case Engine::kCbm:
      return reachCbm(s, opts);
    case Engine::kBfv:
      opts.backend = SetBackend::kBfv;
      return reachBfv(s, opts);
    case Engine::kCdec:
      opts.backend = SetBackend::kCdec;
      return reachBfv(s, opts);
  }
  throw std::logic_error("bad engine");
}

Netlist circuitByIndex(int idx) {
  switch (idx) {
    case 0:
      return circuit::makeCounter(4, 11);
    case 1:
      return circuit::makeJohnson(5);
    case 2:
      return circuit::makeLfsr(5);
    case 3:
      return circuit::makeTwinShift(4);
    case 4:
      return circuit::makeArbiter(4);
    case 5:
      return circuit::makeFifoCtrl(2);
    default:
      return circuit::makeRandomSeq(6, 3, 30, static_cast<std::uint64_t>(idx));
  }
}

class ReachMatrix
    : public ::testing::TestWithParam<std::tuple<int, OrderKind, Engine>> {};

TEST_P(ReachMatrix, CountsMatchExplicitOracle) {
  const auto [cidx, kind, engine] = GetParam();
  const Netlist n = circuitByIndex(cidx);
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());

  bdd::Manager m(0);
  sym::StateSpace space(m, n, circuit::makeOrder(n, {kind, 1}));
  const ReachResult r = run(engine, space);
  ASSERT_EQ(r.status, RunStatus::kDone) << n.name() << " " << name(engine);
  EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()))
      << n.name() << " " << name(engine);
  // The reached characteristic function must contain exactly the oracle
  // states.
  ASSERT_FALSE(r.reached_chi.isNull());
  std::vector<bool> assignment(m.numVars(), false);
  const std::size_t nl = n.latches().size();
  for (std::uint64_t st = 0; st < (std::uint64_t{1} << nl); ++st) {
    for (std::size_t p = 0; p < nl; ++p) {
      assignment[space.currentVar(p)] = ((st >> p) & 1U) != 0;
    }
    const bool in_oracle =
        std::binary_search(oracle->begin(), oracle->end(), st);
    EXPECT_EQ(m.eval(r.reached_chi, assignment), in_oracle)
        << n.name() << " state " << st;
  }
  // Reached BFV is canonical and consistent with chi.
  ASSERT_TRUE(r.reached_bfv.has_value());
  std::string why;
  EXPECT_TRUE(r.reached_bfv->checkCanonical(&why)) << why;
  EXPECT_EQ(r.reached_bfv->toChar(), r.reached_chi);
  EXPECT_GT(r.iterations, 0U);
  EXPECT_GT(r.peak_live_nodes, 0U);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReachMatrix,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(OrderKind::kNatural, OrderKind::kTopo,
                                         OrderKind::kReverse,
                                         OrderKind::kRandom),
                       ::testing::Values(Engine::kTr, Engine::kCbm,
                                         Engine::kBfv, Engine::kCdec)));

TEST(Reach, FrontierHeuristicDoesNotChangeTheResult) {
  const Netlist n = circuit::makeFifoCtrl(2);
  for (const Engine e : {Engine::kTr, Engine::kCbm, Engine::kBfv}) {
    bdd::Manager m1(0);
    sym::StateSpace s1(m1, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
    ReachOptions with;
    with.use_frontier = true;
    const ReachResult a = run(e, s1, with);

    bdd::Manager m2(0);
    sym::StateSpace s2(m2, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
    ReachOptions without;
    without.use_frontier = false;
    const ReachResult b = run(e, s2, without);

    EXPECT_EQ(a.status, RunStatus::kDone);
    EXPECT_EQ(b.status, RunStatus::kDone);
    EXPECT_DOUBLE_EQ(a.states, b.states) << name(e);
    EXPECT_EQ(a.chi_nodes, b.chi_nodes) << name(e);
  }
}

TEST(Reach, QuantScheduleDoesNotChangeTheResult) {
  const Netlist n = circuit::makeLfsr(6);
  ReachOptions a;
  a.reparam.schedule = bfv::QuantSchedule::kStaticOrder;
  ReachOptions b;
  b.reparam.schedule = bfv::QuantSchedule::kSupportCost;
  bdd::Manager m1(0);
  sym::StateSpace s1(m1, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  bdd::Manager m2(0);
  sym::StateSpace s2(m2, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const ReachResult ra = run(Engine::kBfv, s1, a);
  const ReachResult rb = run(Engine::kBfv, s2, b);
  EXPECT_DOUBLE_EQ(ra.states, rb.states);
  EXPECT_EQ(ra.bfv_nodes, rb.bfv_nodes);
}

TEST(Reach, NodeBudgetReportsMemOut) {
  const Netlist n = circuit::makeLfsr(10);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  ReachOptions opts;
  opts.budget.max_live_nodes = 40;  // absurdly small
  const ReachResult r = reachTr(s, opts);
  EXPECT_EQ(r.status, RunStatus::kMemOut);
}

TEST(Reach, TimeBudgetReportsTimeOut) {
  const Netlist n = circuit::makeLfsr(12);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  ReachOptions opts;
  opts.budget.max_seconds = 1e-9;
  const ReachResult r = reachBfv(s, opts);
  EXPECT_EQ(r.status, RunStatus::kTimeOut);
}

TEST(Reach, MaxIterationsStopsEarly) {
  const Netlist n = circuit::makeCounter(6, 64);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  ReachOptions opts;
  opts.max_iterations = 3;
  const ReachResult r = reachTr(s, opts);
  EXPECT_EQ(r.iterations, 3U);
  EXPECT_LT(r.states, 64.0);
}

TEST(Reach, IterationCountsMatchCircuitDepth) {
  // A mod-2^k counter driven by one enable has diameter 2^k - 1; with the
  // image containing the predecessor set each iteration adds one state, so
  // all engines need ~2^k iterations.
  const Netlist n = circuit::makeCounter(4, 16);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const ReachResult r = run(Engine::kBfv, s);
  EXPECT_GE(r.iterations, 15U);
  EXPECT_LE(r.iterations, 17U);
}

TEST(Reach, BfvAndCdecBackendsProduceTheSameSet) {
  const Netlist n = circuit::makeTwinShift(5);
  bdd::Manager m1(0);
  sym::StateSpace s1(m1, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  bdd::Manager m2(0);
  sym::StateSpace s2(m2, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const ReachResult a = run(Engine::kBfv, s1);
  const ReachResult b = run(Engine::kCdec, s2);
  EXPECT_DOUBLE_EQ(a.states, b.states);
  EXPECT_EQ(a.bfv_nodes, b.bfv_nodes);
  EXPECT_EQ(a.chi_nodes, b.chi_nodes);
}

}  // namespace
}  // namespace bfvr::reach
