file(REMOVE_RECURSE
  "CMakeFiles/bfvr_circuit.dir/circuit/bench_io.cpp.o"
  "CMakeFiles/bfvr_circuit.dir/circuit/bench_io.cpp.o.d"
  "CMakeFiles/bfvr_circuit.dir/circuit/concrete_sim.cpp.o"
  "CMakeFiles/bfvr_circuit.dir/circuit/concrete_sim.cpp.o.d"
  "CMakeFiles/bfvr_circuit.dir/circuit/generators.cpp.o"
  "CMakeFiles/bfvr_circuit.dir/circuit/generators.cpp.o.d"
  "CMakeFiles/bfvr_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/bfvr_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/bfvr_circuit.dir/circuit/orders.cpp.o"
  "CMakeFiles/bfvr_circuit.dir/circuit/orders.cpp.o.d"
  "libbfvr_circuit.a"
  "libbfvr_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
