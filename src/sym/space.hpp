// Binds a netlist and a variable order to BDD variable indices.
//
// Layout: walking the ordered source list, each latch gets an adjacent pair
// of indices — v (current-state / choice variable) then u (parameter bank,
// used as the re-parameterization target and as the next-state variable of
// transition relations) — and each input gets one index. Interleaving the
// banks keeps the u->v renaming after each image step cheap and gives both
// banks the same quality of order.
//
// The *component order* of every state set (BFV or conjunctive
// decomposition) is the order latches appear in the source list, so choice
// variables are strictly increasing as the paper requires.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "circuit/netlist.hpp"
#include "circuit/orders.hpp"

namespace bfvr::sym {

using bdd::Bdd;
using bdd::Manager;

class StateSpace {
 public:
  StateSpace(Manager& m, const circuit::Netlist& n,
             const std::vector<circuit::ObjRef>& order);

  Manager& manager() const noexcept { return *mgr_; }
  const circuit::Netlist& netlist() const noexcept { return *netlist_; }
  unsigned numLatches() const noexcept {
    return static_cast<unsigned>(comp_to_latch_.size());
  }

  // ---- variable indices -----------------------------------------------------
  unsigned currentVar(std::size_t latch_pos) const {
    return v_of_latch_.at(latch_pos);
  }
  unsigned paramVar(std::size_t latch_pos) const {
    return v_of_latch_.at(latch_pos) + 1;
  }
  unsigned inputVar(std::size_t input_pos) const {
    return x_of_input_.at(input_pos);
  }

  /// Choice variables of the current-state bank, in component order.
  const std::vector<unsigned>& currentVars() const noexcept { return v_; }
  /// Choice variables of the parameter/next bank, in component order.
  const std::vector<unsigned>& paramVars() const noexcept { return u_; }
  /// Input variables (declaration order).
  const std::vector<unsigned>& inputVars() const noexcept { return x_; }

  /// Latch position (within netlist.latches()) of component i.
  std::size_t latchOfComponent(std::size_t comp) const {
    return comp_to_latch_.at(comp);
  }
  /// Component index of a latch position.
  std::size_t componentOfLatch(std::size_t latch_pos) const {
    return comp_of_latch_.at(latch_pos);
  }

  /// Renaming permutation: param bank -> current bank (u_i |-> v_i).
  const std::vector<unsigned>& permParamToCurrent() const noexcept {
    return perm_u_to_v_;
  }
  /// Renaming permutation: current bank -> param bank.
  const std::vector<unsigned>& permCurrentToParam() const noexcept {
    return perm_v_to_u_;
  }

  /// Initial state of component i (latch init values in component order).
  std::vector<bool> initialBits() const;

  /// Cube of all current-bank variables (for quantification).
  Bdd currentCube() const;
  /// Cube of all input variables.
  Bdd inputCube() const;

  /// Total number of allocated BDD variables.
  unsigned numVars() const noexcept { return num_vars_; }

 private:
  Manager* mgr_;
  const circuit::Netlist* netlist_;
  std::vector<unsigned> v_of_latch_;   // by latch position
  std::vector<unsigned> x_of_input_;   // by input position
  std::vector<unsigned> v_, u_, x_;    // banks in order
  std::vector<std::size_t> comp_to_latch_;
  std::vector<std::size_t> comp_of_latch_;
  std::vector<unsigned> perm_u_to_v_, perm_v_to_u_;
  unsigned num_vars_ = 0;
};

}  // namespace bfvr::sym
