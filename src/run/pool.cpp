// The fixed-size worker pool: a mutex+condvar FIFO of queued jobs, N
// worker threads, one live bdd::Manager per worker at a time (inside
// executeJob). Results travel by future; an optional on_done callback runs
// on the worker thread first, so a portfolio controller can cancel the
// losers the instant a winner concludes.
//
// Fault containment: executeJob is noexcept and every attempt's Manager is
// scoped to the attempt, so an interrupted or failed attempt — including an
// allocation failure injected mid-GC by a FaultPlan — always releases its
// manager on scope exit and the worker moves on to the next queued job with
// nothing leaked and nothing poisoned. With warm_managers the release goes
// through the worker's ManagerCache instead of the destructor: a clean
// manager is reset and kept for the next job, a dirty one is destroyed and
// its leak counted.
#include <algorithm>

#include "obs/metrics.hpp"
#include "run/run.hpp"
#include "util/stats.hpp"

namespace bfvr::run {

namespace {

// Pool instruments, resolved once (function-local statics) so the
// scheduling path pays one relaxed atomic op per update, not a registry
// lookup. The gauge counts jobs submitted but not yet picked up.
obs::Gauge& queueDepthGauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("bfvr_pool_queue_depth");
  return g;
}
obs::Histogram& queueWaitHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_pool_queue_wait_seconds", "", obs::kSecondsScale);
  return h;
}
obs::Histogram& execHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_pool_exec_seconds", "", obs::kSecondsScale);
  return h;
}

}  // namespace

std::unique_ptr<bdd::Manager> ManagerCache::acquire(
    const bdd::Manager::Config& cfg) {
  if (cached_ != nullptr && cached_->reconfigure(cfg)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cached_);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  cached_.reset();
  return std::make_unique<bdd::Manager>(0, cfg);
}

void ManagerCache::release(std::unique_ptr<bdd::Manager> m) {
  if (m == nullptr) return;
  if (m->resetForReuse()) {
    cached_ = std::move(m);
    return;
  }
  // The job leaked handles (or nodes): this manager cannot be reused. The
  // terminal is manager-owned, so live - 1 is the leak the job caused.
  resets_failed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t live = m->liveNodeCount();
  leaked_nodes_.fetch_add(live > 0 ? live - 1 : 0, std::memory_order_relaxed);
}

ManagerCache::Stats ManagerCache::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.resets_failed = resets_failed_.load(std::memory_order_relaxed);
  s.leaked_nodes = leaked_nodes_.load(std::memory_order_relaxed);
  return s;
}

struct WorkerPool::Queued {
  JobSpec spec;
  std::shared_ptr<CancelToken> cancel;
  std::function<void(const JobResult&)> on_done;
  std::promise<JobResult> promise;
  unsigned avoid_worker = kAnyWorker;
  Timer queued;  // starts at submit(); read when a worker picks the job up
};

WorkerPool::WorkerPool(unsigned workers, bool warm_managers) {
  const unsigned n = workers == 0 ? 1 : workers;
  if (warm_managers) {
    caches_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      caches_.push_back(std::make_unique<ManagerCache>());
    }
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<JobResult> WorkerPool::submit(
    JobSpec spec, std::shared_ptr<CancelToken> cancel,
    std::function<void(const JobResult&)> on_done, unsigned avoid_worker) {
  auto q = std::make_unique<Queued>();
  q->spec = std::move(spec);
  q->cancel = std::move(cancel);
  q->on_done = std::move(on_done);
  // A 1-worker pool has nowhere else to place the job.
  q->avoid_worker = threads_.size() > 1 ? avoid_worker : kAnyWorker;
  std::future<JobResult> fut = q->promise.get_future();
  const bool steered = q->avoid_worker != kAnyWorker;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::logic_error("WorkerPool::submit after shutdown");
    }
    queue_.push_back(std::move(q));
  }
  queueDepthGauge().add(1);
  // A steered job is ineligible for one specific worker; wake everyone so
  // an eligible worker (not necessarily the longest-waiting one) sees it.
  if (steered) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  return fut;
}

ManagerCache::Stats WorkerPool::warmStats() const noexcept {
  ManagerCache::Stats total;
  for (const auto& c : caches_) total += c->stats();
  return total;
}

void WorkerPool::workerMain(unsigned index) {
  ManagerCache* warm = index < caches_.size() ? caches_[index].get() : nullptr;
  for (;;) {
    std::unique_ptr<Queued> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto eligible = [this, index] {
        return std::any_of(queue_.begin(), queue_.end(),
                           [index](const std::unique_ptr<Queued>& q) {
                             return q->avoid_worker != index;
                           });
      };
      cv_.wait(lock, [&] { return shutdown_ || eligible(); });
      // Drain-on-shutdown: pending jobs still run (their tokens can be
      // cancelled for a fast exit); exit only once the queue is empty.
      // During the drain, placement steering yields to liveness: any
      // worker — the avoided one included — may take a leftover job.
      if (queue_.empty()) return;
      auto it = std::find_if(queue_.begin(), queue_.end(),
                             [index](const std::unique_ptr<Queued>& q) {
                               return q->avoid_worker != index;
                             });
      if (it == queue_.end()) {
        if (!shutdown_) continue;  // spurious wake; someone else will run it
        it = queue_.begin();
      }
      job = std::move(*it);
      queue_.erase(it);
    }
    queueDepthGauge().add(-1);
    const double waited = job->queued.seconds();
    queueWaitHistogram().observeSeconds(waited);
    JobResult r = executeJob(job->spec, job->cancel.get(), warm);
    r.queue_seconds = waited;
    r.worker = index;
    execHistogram().observeSeconds(r.seconds);
    obs::Registry::global()
        .counter("bfvr_pool_jobs_total",
                 obs::metricLabel("status", to_string(r.status)))
        .inc();
    if (job->on_done) {
      try {
        job->on_done(r);
      } catch (...) {
        // A misbehaving callback must not take the worker down.
      }
    }
    job->promise.set_value(std::move(r));
  }
}

}  // namespace bfvr::run
