// Generator circuits: structure and reachable-state oracles.
#include <gtest/gtest.h>

#include <bit>

#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"

namespace bfvr::circuit {
namespace {

std::size_t reachCount(const Netlist& n) {
  const auto r = explicitReach(n);
  EXPECT_TRUE(r.has_value());
  return r->size();
}

class CounterSweep
    : public ::testing::TestWithParam<std::pair<unsigned, std::uint64_t>> {};

TEST_P(CounterSweep, ReachableStatesEqualModulo) {
  const auto [bits, mod] = GetParam();
  const Netlist n = makeCounter(bits, mod);
  EXPECT_EQ(n.latches().size(), bits);
  EXPECT_EQ(n.inputs().size(), 1U);
  EXPECT_EQ(reachCount(n), mod);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CounterSweep,
    ::testing::Values(std::pair<unsigned, std::uint64_t>{3, 5},
                      std::pair<unsigned, std::uint64_t>{4, 16},
                      std::pair<unsigned, std::uint64_t>{4, 11},
                      std::pair<unsigned, std::uint64_t>{5, 2},
                      std::pair<unsigned, std::uint64_t>{6, 64},
                      std::pair<unsigned, std::uint64_t>{6, 37}));

class JohnsonSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(JohnsonSweep, ReachableStatesAreTwoN) {
  const unsigned bits = GetParam();
  EXPECT_EQ(reachCount(makeJohnson(bits)), 2U * bits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JohnsonSweep,
                         ::testing::Values(2U, 3U, 5U, 8U, 12U));

class LfsrSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrSweep, PrimitivePolynomialGivesFullPeriod) {
  const unsigned bits = GetParam();
  EXPECT_EQ(reachCount(makeLfsr(bits)), (std::size_t{1} << bits) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LfsrSweep,
                         ::testing::Values(3U, 4U, 5U, 6U, 7U, 8U, 9U, 10U));

TEST(Generators, LfsrUnsupportedWidthThrows) {
  EXPECT_THROW((void)makeLfsr(13), std::invalid_argument);
}

class TwinShiftSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TwinShiftSweep, ReachableIsDiagonal) {
  const unsigned bits = GetParam();
  const Netlist n = makeTwinShift(bits);
  EXPECT_EQ(n.latches().size(), 2U * bits);
  const auto r = explicitReach(n);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), std::size_t{1} << bits);
  // Every reachable state has the two banks equal (a_i == b_i).
  for (std::uint64_t s : *r) {
    const std::uint64_t a = s & ((std::uint64_t{1} << bits) - 1);
    const std::uint64_t b = s >> bits;
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwinShiftSweep,
                         ::testing::Values(1U, 2U, 4U, 6U, 8U));

class ArbiterSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArbiterSweep, PointerStaysOneHot) {
  const unsigned clients = GetParam();
  const Netlist n = makeArbiter(clients);
  const auto r = explicitReach(n);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), clients);
  for (std::uint64_t s : *r) {
    EXPECT_EQ(std::popcount(s), 1) << "state " << s << " is not one-hot";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArbiterSweep, ::testing::Values(2U, 3U, 4U, 5U));

TEST(Generators, ArbiterGrantsExactlyOneRequester) {
  const Netlist n = makeArbiter(4);
  const ConcreteSim sim(n);
  std::vector<bool> state{true, false, false, false};  // pointer at 0
  for (unsigned req = 1; req < 16; ++req) {
    std::vector<bool> in(4);
    for (unsigned i = 0; i < 4; ++i) in[i] = ((req >> i) & 1U) != 0;
    const auto out = sim.outputs(state, in);
    int grants = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (out[i]) {
        ++grants;
        EXPECT_TRUE(in[i]) << "granted a non-requesting client";
      }
    }
    EXPECT_EQ(grants, 1) << "req mask " << req;
  }
  // No requests: no grants, pointer holds.
  const auto out = sim.outputs(state, {false, false, false, false});
  for (bool g : out) EXPECT_FALSE(g);
  EXPECT_EQ(sim.step(state, {false, false, false, false}), state);
}

class FifoSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FifoSweep, ReachableMatchesOccupancyInvariant) {
  const unsigned k = GetParam();
  const Netlist n = makeFifoCtrl(k);
  const auto r = explicitReach(n);
  ASSERT_TRUE(r.has_value());
  // count == wr - rd (mod 2^k), count <= 2^k; when wr == rd the count is
  // 0 or 2^k: (2^k)^2 + 2^k states.
  const std::size_t ptr_states = std::size_t{1} << k;
  EXPECT_EQ(r->size(), ptr_states * ptr_states + ptr_states);
  for (std::uint64_t s : *r) {
    const std::uint64_t wr = s & (ptr_states - 1);
    const std::uint64_t rd = (s >> k) & (ptr_states - 1);
    const std::uint64_t cnt = s >> (2 * k);
    EXPECT_LE(cnt, ptr_states);
    EXPECT_EQ(cnt & (ptr_states - 1), (wr - rd) & (ptr_states - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FifoSweep, ::testing::Values(1U, 2U, 3U));

TEST(Generators, RandomSeqIsDeterministicInSeed) {
  const Netlist a = makeRandomSeq(5, 3, 25, 42);
  const Netlist b = makeRandomSeq(5, 3, 25, 42);
  const Netlist c = makeRandomSeq(5, 3, 25, 43);
  EXPECT_EQ(toBench(a), toBench(b));
  EXPECT_NE(toBench(a), toBench(c));
}

TEST(Generators, RandomSeqHasRequestedShape) {
  const Netlist n = makeRandomSeq(7, 4, 40, 1);
  EXPECT_EQ(n.latches().size(), 7U);
  EXPECT_EQ(n.inputs().size(), 4U);
  EXPECT_NO_THROW(n.validate());
}

TEST(Generators, ConcatenateMultipliesStateSpaces) {
  const Netlist a = makeCounter(3, 5);
  const Netlist b = makeJohnson(3);
  const Netlist c = concatenate(a, b, "prod");
  EXPECT_EQ(c.latches().size(), 6U);
  EXPECT_EQ(c.inputs().size(), 2U);
  EXPECT_EQ(reachCount(c), 5U * 6U);
}

TEST(Generators, ParameterValidation) {
  EXPECT_THROW((void)makeCounter(0, 2), std::invalid_argument);
  EXPECT_THROW((void)makeCounter(3, 9), std::invalid_argument);
  EXPECT_THROW((void)makeJohnson(1), std::invalid_argument);
  EXPECT_THROW((void)makeTwinShift(0), std::invalid_argument);
  EXPECT_THROW((void)makeArbiter(1), std::invalid_argument);
  EXPECT_THROW((void)makeFifoCtrl(0), std::invalid_argument);
  EXPECT_THROW((void)makeRandomSeq(0, 1, 5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bfvr::circuit
