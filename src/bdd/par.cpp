// Task-parallel apply kernels and the work-stealing pool behind them (see
// par.hpp for the fork/join discipline and DESIGN.md §15 for the design).
//
// Every *ParRec kernel is a semantically exact twin of its sequential
// counterpart in ops.cpp / cofactor.cpp: same terminal cases, same cache
// keys, same mkNode calls. The only difference is that the LOW Shannon
// branch may be forked to the pool while the caller descends the HIGH
// branch inline. Because mkNode is canonicalizing and the unique table is
// shared (under shard locks), the RESULT edges are identical to the
// sequential kernels'; what differs is which thread performed which step
// and hence the per-counter split (totals stay exact after the region's
// stats merge).
#include <algorithm>
#include <utility>

#include "bdd/par.hpp"

namespace bfvr::bdd {

// ---------------------------------------------------------------------------
// ParPool
// ---------------------------------------------------------------------------

ParPool::ParPool(Manager& mgr, unsigned workers)
    : mgr_(mgr),
      workers_(workers),
      hungry_limit_(static_cast<int>(2 * (workers + 1))),
      deques_(std::make_unique<Deque[]>(workers + 1)),
      slots_(std::make_unique<WorkerSlot[]>(workers + 1)) {
  threads_.reserve(workers_);
  for (unsigned i = 1; i <= workers_; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

ParPool::~ParPool() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void ParPool::fork(ParTask& t) {
  Deque& d = deques_[selfId()];
  {
    detail::SpinGuard g(d.lk);
    d.q.push_back(&t);
  }
  // Publish-then-check, the mirror image of the parking worker's
  // register-then-check (both seq_cst): in every interleaving either this
  // thread sees sleepers_ > 0 and notifies under mu_, or the worker sees
  // pending_ > 0 in its predicate and never blocks. Notifying under the
  // lock makes the signal reliable — the worker is either not yet inside
  // wait() (then its predicate, evaluated under mu_ after we release it,
  // sees the new task) or it is blocked and receives the notify. This is
  // what lets idle workers park on an UNTIMED wait.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_one();
  }
}

void ParPool::execute(ParTask& t) noexcept {
  t.state.store(ParTask::kRunning, std::memory_order_relaxed);
  try {
    t.mgr->runParTask(t);
  } catch (...) {
    t.error = std::current_exception();
  }
  t.state.store(ParTask::kDone, std::memory_order_release);
}

bool ParPool::runOne(unsigned self) {
  const unsigned n = workers_ + 1;
  for (unsigned k = 0; k < n; ++k) {
    const unsigned victim = (self + k) % n;  // own deque first
    Deque& d = deques_[victim];
    ParTask* t = nullptr;
    {
      detail::SpinGuard g(d.lk);
      if (!d.q.empty()) {
        // Own deque: LIFO (cache-hot, the task just forked). Others: FIFO
        // steal from the front, taking the largest pending subtree.
        if (victim == self) {
          t = d.q.back();
          d.q.pop_back();
        } else {
          t = d.q.front();
          d.q.erase(d.q.begin());
        }
      }
    }
    if (t != nullptr) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      if (victim != self) stolen_.fetch_add(1, std::memory_order_relaxed);
      execute(*t);
      return true;
    }
  }
  return false;
}

void ParPool::join(ParTask& t) {
  const unsigned self = selfId();
  // Fast path: the task is still the tail of our own deque — un-fork and
  // run it inline, exactly as the sequential kernel would have.
  {
    Deque& d = deques_[self];
    bool mine = false;
    {
      detail::SpinGuard g(d.lk);
      if (!d.q.empty() && d.q.back() == &t) {
        d.q.pop_back();
        mine = true;
      }
    }
    if (mine) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      execute(t);
      if (t.error) std::rethrow_exception(t.error);
      return;
    }
  }
  // Stolen (or already running): help with other pending work until done.
  unsigned spins = 0;
  while (t.state.load(std::memory_order_acquire) != ParTask::kDone) {
    if (runOne(self)) {
      spins = 0;
      continue;
    }
    detail::cpuRelax();
    if (++spins >= 256) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  if (t.error) std::rethrow_exception(t.error);
}

void ParPool::joinQuiet(ParTask& t) noexcept {
  try {
    join(t);
  } catch (...) {
    // Unwind path: a primary exception is already propagating; the forked
    // branch's own failure is redundant (its partial results are garbage).
  }
}

void ParPool::invoke(std::span<const std::function<void()>> fns) {
  if (fns.empty()) return;
  std::vector<ParTask> tasks(fns.size());
  for (std::size_t i = 1; i < fns.size(); ++i) {
    tasks[i].mgr = &mgr_;
    tasks[i].kind = ParTask::kInvoke;
    tasks[i].fn = &fns[i];
    fork(tasks[i]);
  }
  tasks[0].mgr = &mgr_;
  tasks[0].kind = ParTask::kInvoke;
  tasks[0].fn = &fns[0];
  execute(tasks[0]);
  std::exception_ptr first = tasks[0].error;
  for (std::size_t i = 1; i < fns.size(); ++i) {
    if (first) {
      joinQuiet(tasks[i]);
    } else {
      try {
        join(tasks[i]);
      } catch (...) {
        first = std::current_exception();
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

void ParPool::workerMain(unsigned id) {
  tl_pool_ = this;
  tl_id_ = id;
  Manager::tl_stats_ = &slots_[id].stats;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (runOne(id)) continue;
    // Brief spin for imminent work, then park until fork() or shutdown
    // signals. The untimed wait is safe because registration and signal
    // are ordered: we register in sleepers_ and THEN check the predicate
    // (both seq_cst, under mu_), while fork() publishes pending_ and THEN
    // checks sleepers_ (also seq_cst) — at least one side always sees the
    // other, so a wakeup cannot be lost and idle workers burn no CPU.
    unsigned spins = 0;
    bool found = false;
    while (spins < 2048) {
      if (pending_.load(std::memory_order_relaxed) > 0 ||
          shutdown_.load(std::memory_order_relaxed)) {
        found = true;
        break;
      }
      detail::cpuRelax();
      ++spins;
    }
    if (found) continue;
    std::unique_lock<std::mutex> lk(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [this] {
      return shutdown_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// ParRegion — the per-operation bracket
// ---------------------------------------------------------------------------

Manager::ParRegion::ParRegion(Manager& mgr) {
  if (!mgr.par_enabled_ || mgr.pool_ == nullptr) return;
  if (mgr.in_par_region_.load(std::memory_order_relaxed)) return;  // nested
  mgr.ensureParHeadroom();
  mgr.in_par_region_.store(true, std::memory_order_relaxed);
  m = &mgr;
}

Manager::ParRegion::~ParRegion() {
  if (m == nullptr) return;
  // All forked tasks have been joined by their ForkGuards (including on
  // unwind), so the pool is quiescent here and the merge is race-free.
  m->in_par_region_.store(false, std::memory_order_relaxed);
  m->mergeParStats();
}

void Manager::mergeParStats() noexcept {
  if (pool_ == nullptr) return;
  for (unsigned i = 1; i <= pool_->workers(); ++i) {
    OpStats& s = pool_->slotStats(i);
    stats_ += s;
    s = OpStats{};
  }
}

void Manager::ensureParHeadroom() {
  // Workers read nodes_[i] lock-free, so the store must not reallocate
  // while a region is open. Reserve INCREMENTALLY — current size doubled
  // plus a fixed floor — never the whole node budget up front (a large
  // safety cap would otherwise become a multi-GB allocation on tiny
  // workloads); the budget only CLAMPS the request, with the max(...,
  // nodes_.size()) keeping the clamp a no-op when reordering overshot the
  // budget. A mid-region capacity hit surfaces as NodeBudgetExceeded when
  // the budget is spent, else as ParCapacityExhausted, which withPressure
  // answers with a quiesced growParCapacity() + rerun.
  std::size_t want =
      std::max(nodes_.size() * 2 + (std::size_t{1} << 17), std::size_t{1}
                                                               << 20);
  if (cfg_.max_nodes != 0) {
    want = std::min(want, std::max(cfg_.max_nodes, nodes_.size()));
  }
  if (want > nodes_.capacity()) nodes_.reserve(want);
}

void Manager::growParCapacity() {
  // Only called at a sequential point (no open region, every task joined),
  // so reallocating the store is safe. Double the reservation; with a
  // budget configured the cap mirrors ensureParHeadroom's clamp.
  std::size_t want = std::max(nodes_.capacity() * 2, std::size_t{1} << 20);
  if (cfg_.max_nodes != 0) {
    want = std::min(want, std::max(cfg_.max_nodes, nodes_.size()));
  }
  if (want > nodes_.capacity()) nodes_.reserve(want);
}

// ---------------------------------------------------------------------------
// Public parallel API
// ---------------------------------------------------------------------------

void Manager::parallelInvoke(std::span<const std::function<void()>> fns) {
  if (!par_enabled_ || pool_ == nullptr || fns.size() <= 1 ||
      in_par_region_.load(std::memory_order_relaxed)) {
    for (const auto& fn : fns) fn();
    return;
  }
  // The pressure ladder wraps the whole batch: a NodeBudgetExceeded thrown
  // inside a worker surfaces here after the region quiesces, the ladder
  // GCs, and the batch reruns — tasks only (re)write their own slots, so a
  // rerun is safe.
  withPressure([&] {
    ParRegion region(*this);
    pool_->invoke(fns);
    return 0;
  });
}

Manager::ParCounters Manager::parCounters() const noexcept {
  ParCounters c;
  if (pool_ != nullptr) {
    c.tasks_spawned = pool_->spawned();
    c.tasks_stolen = pool_->stolen();
  }
  if (shard_locks_ != nullptr) {
    for (std::size_t i = 0; i < kNumShards; ++i) {
      c.shard_contention +=
          shard_locks_[i].lk.contended.load(std::memory_order_relaxed);
    }
  }
  c.shard_contention += alloc_lock_.contended.load(std::memory_order_relaxed);
  c.cache_races = pcache_races_.load(std::memory_order_relaxed);
  return c;
}

std::size_t Manager::parPendingTasks() const noexcept {
  return pool_ != nullptr ? pool_->pendingTasks() : 0;
}

// ---------------------------------------------------------------------------
// Task dispatch
// ---------------------------------------------------------------------------

void Manager::runParTask(ParTask& t) {
  switch (t.kind) {
    case ParTask::kAnd:
      t.result = andParRec(t.a, t.b, t.depth);
      break;
    case ParTask::kXor:
      t.result = xorParRec(t.a, t.b, t.depth);
      break;
    case ParTask::kIte:
      t.result = iteParRec(t.a, t.b, t.c, t.depth);
      break;
    case ParTask::kExists:
      t.result = existsParRec(t.a, t.b, t.depth);
      break;
    case ParTask::kAndExists:
      t.result = andExistsParRec(t.a, t.b, t.c, t.depth);
      break;
    case ParTask::kCof2: {
      Edge hi = kFalseEdge;
      t.result = cofactor2ParRec(t.a, t.var, hi, t.depth);
      t.result2 = hi;
      break;
    }
    case ParTask::kInvoke:
      (*t.fn)();
      break;
  }
}

// ---------------------------------------------------------------------------
// Parallel kernels
// ---------------------------------------------------------------------------

// Fork gate: above the depth cutoff, with a hungry pool, and only when the
// forked branch is non-trivial (a constant operand makes it terminal).

Edge Manager::andParRec(Edge f, Edge g, unsigned depth) {
  if (f == g) return f;
  if (f == negate(g)) return kFalseEdge;
  if (f == kTrueEdge) return g;
  if (g == kTrueEdge) return f;
  if (f == kFalseEdge || g == kFalseEdge) return kFalseEdge;
  if (f > g) std::swap(f, g);
  Edge out;
  if (cacheLookup(kOpAnd, f, g, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t top = std::min(lf, lg);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  Edge rh, rl;
  if (depth < kParMaxForkDepth && !isConstEdge(fl) && !isConstEdge(gl) &&
      pool_->hungry()) {
    ParTask t;
    t.mgr = this;
    t.kind = ParTask::kAnd;
    t.a = fl;
    t.b = gl;
    t.depth = static_cast<std::uint8_t>(depth + 1);
    ForkGuard fork(*pool_, t);
    rh = andParRec(fh, gh, depth + 1);
    rl = fork.join();
  } else {
    rh = andParRec(fh, gh, depth + 1);
    rl = andParRec(fl, gl, depth + 1);
  }
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpAnd, f, g, 0, r);
  return r;
}

Edge Manager::xorParRec(Edge f, Edge g, unsigned depth) {
  if (f == g) return kFalseEdge;
  if (f == negate(g)) return kTrueEdge;
  if (f == kFalseEdge) return g;
  if (g == kFalseEdge) return f;
  if (f == kTrueEdge) return negate(g);
  if (g == kTrueEdge) return negate(f);
  std::uint32_t parity = 0;
  if (isCompl(f)) {
    f = regular(f);
    parity ^= 1;
  }
  if (isCompl(g)) {
    g = regular(g);
    parity ^= 1;
  }
  if (f > g) std::swap(f, g);
  Edge out;
  if (cacheLookup(kOpXor, f, g, 0, out)) return out ^ parity;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t top = std::min(lf, lg);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  Edge rh, rl;
  if (depth < kParMaxForkDepth && !isConstEdge(fl) && !isConstEdge(gl) &&
      pool_->hungry()) {
    ParTask t;
    t.mgr = this;
    t.kind = ParTask::kXor;
    t.a = fl;
    t.b = gl;
    t.depth = static_cast<std::uint8_t>(depth + 1);
    ForkGuard fork(*pool_, t);
    rh = xorParRec(fh, gh, depth + 1);
    rl = fork.join();
  } else {
    rh = xorParRec(fh, gh, depth + 1);
    rl = xorParRec(fl, gl, depth + 1);
  }
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpXor, f, g, 0, r);
  return r ^ parity;
}

Edge Manager::iteParRec(Edge f, Edge g, Edge h, unsigned depth) {
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return negate(f);
  if (f == g) g = kTrueEdge;
  if (f == negate(g)) g = kFalseEdge;
  if (f == h) h = kFalseEdge;
  if (f == negate(h)) h = kTrueEdge;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return negate(f);
  if (g == h) return g;
  if (g == kTrueEdge)
    return negate(andParRec(negate(f), negate(h), depth));  // f | h
  if (h == kFalseEdge) return andParRec(f, g, depth);
  if (g == kFalseEdge) return andParRec(negate(f), h, depth);
  if (h == kTrueEdge) return negate(andParRec(f, negate(g), depth));
  if (g == negate(h)) return xorParRec(f, h, depth);
  if (isCompl(f)) {
    f = negate(f);
    std::swap(g, h);
  }
  std::uint32_t parity = 0;
  if (isCompl(g)) {
    g = negate(g);
    h = negate(h);
    parity = 1;
  }
  Edge out;
  if (cacheLookup(kOpIte, f, g, h, out)) return out ^ parity;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const std::uint32_t lh = level(h);
  const std::uint32_t top = std::min(lf, std::min(lg, lh));
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  const Edge hh = lh == top ? highOf(h) : h;
  const Edge hl = lh == top ? lowOf(h) : h;
  Edge rh, rl;
  if (depth < kParMaxForkDepth && !isConstEdge(fl) && pool_->hungry()) {
    ParTask t;
    t.mgr = this;
    t.kind = ParTask::kIte;
    t.a = fl;
    t.b = gl;
    t.c = hl;
    t.depth = static_cast<std::uint8_t>(depth + 1);
    ForkGuard fork(*pool_, t);
    rh = iteParRec(fh, gh, hh, depth + 1);
    rl = fork.join();
  } else {
    rh = iteParRec(fh, gh, hh, depth + 1);
    rl = iteParRec(fl, gl, hl, depth + 1);
  }
  const Edge r = mkNode(level2var_[top], rh, rl);
  cacheStore(kOpIte, f, g, h, r);
  return r ^ parity;
}

Edge Manager::existsParRec(Edge f, Edge cube, unsigned depth) {
  if (isConstEdge(f) || cube == kTrueEdge) return f;
  while (!isConstEdge(cube) && level(cube) < level(f)) {
    cube = highOf(cube);
  }
  if (cube == kTrueEdge) return f;
  Edge out;
  if (cacheLookup(kOpExists, f, cube, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t top = level(f);
  const Edge fh = highOf(f);
  const Edge fl = lowOf(f);
  Edge r;
  if (level(cube) == top) {
    const Edge rest = highOf(cube);
    if (depth < kParMaxForkDepth && !isConstEdge(fl) && pool_->hungry()) {
      // Forked form computes both cofactor quantifications, giving up the
      // sequential rh == TRUE shortcut for branch parallelism.
      ParTask t;
      t.mgr = this;
      t.kind = ParTask::kExists;
      t.a = fl;
      t.b = rest;
      t.depth = static_cast<std::uint8_t>(depth + 1);
      ForkGuard fork(*pool_, t);
      const Edge rh = existsParRec(fh, rest, depth + 1);
      const Edge rl = fork.join();
      r = negate(andParRec(negate(rh), negate(rl), depth + 1));  // rh | rl
    } else {
      const Edge rh = existsParRec(fh, rest, depth + 1);
      if (rh == kTrueEdge) {
        r = kTrueEdge;
      } else {
        const Edge rl = existsParRec(fl, rest, depth + 1);
        r = negate(andParRec(negate(rh), negate(rl), depth + 1));  // rh | rl
      }
    }
  } else {
    if (depth < kParMaxForkDepth && !isConstEdge(fl) && pool_->hungry()) {
      ParTask t;
      t.mgr = this;
      t.kind = ParTask::kExists;
      t.a = fl;
      t.b = cube;
      t.depth = static_cast<std::uint8_t>(depth + 1);
      ForkGuard fork(*pool_, t);
      const Edge rh = existsParRec(fh, cube, depth + 1);
      const Edge rl = fork.join();
      r = mkNode(level2var_[top], rh, rl);
    } else {
      r = mkNode(level2var_[top], existsParRec(fh, cube, depth + 1),
                 existsParRec(fl, cube, depth + 1));
    }
  }
  cacheStore(kOpExists, f, cube, 0, r);
  return r;
}

Edge Manager::andExistsParRec(Edge f, Edge g, Edge cube, unsigned depth) {
  if (f == kFalseEdge || g == kFalseEdge || f == negate(g)) return kFalseEdge;
  if (f == kTrueEdge && g == kTrueEdge) return kTrueEdge;
  if (f == g || g == kTrueEdge) return existsParRec(f, cube, depth);
  if (f == kTrueEdge) return existsParRec(g, cube, depth);
  if (f > g) std::swap(f, g);
  const std::uint32_t top = std::min(level(f), level(g));
  while (!isConstEdge(cube) && level(cube) < top) {
    cube = highOf(cube);
  }
  if (cube == kTrueEdge) return andParRec(f, g, depth);
  Edge out;
  if (cacheLookup(kOpAndExists, f, g, cube, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lg = level(g);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge gh = lg == top ? highOf(g) : g;
  const Edge gl = lg == top ? lowOf(g) : g;
  Edge r;
  const bool forkable = depth < kParMaxForkDepth && !isConstEdge(fl) &&
                        !isConstEdge(gl) && pool_->hungry();
  if (level(cube) == top) {
    const Edge rest = highOf(cube);
    if (forkable) {
      ParTask t;
      t.mgr = this;
      t.kind = ParTask::kAndExists;
      t.a = fl;
      t.b = gl;
      t.c = rest;
      t.depth = static_cast<std::uint8_t>(depth + 1);
      ForkGuard fork(*pool_, t);
      const Edge rh = andExistsParRec(fh, gh, rest, depth + 1);
      const Edge rl = fork.join();
      r = negate(andParRec(negate(rh), negate(rl), depth + 1));  // rh | rl
    } else {
      const Edge rh = andExistsParRec(fh, gh, rest, depth + 1);
      if (rh == kTrueEdge) {
        r = kTrueEdge;
      } else {
        const Edge rl = andExistsParRec(fl, gl, rest, depth + 1);
        r = negate(andParRec(negate(rh), negate(rl), depth + 1));  // rh | rl
      }
    }
  } else {
    if (forkable) {
      ParTask t;
      t.mgr = this;
      t.kind = ParTask::kAndExists;
      t.a = fl;
      t.b = gl;
      t.c = cube;
      t.depth = static_cast<std::uint8_t>(depth + 1);
      ForkGuard fork(*pool_, t);
      const Edge rh = andExistsParRec(fh, gh, cube, depth + 1);
      const Edge rl = fork.join();
      r = mkNode(level2var_[top], rh, rl);
    } else {
      r = mkNode(level2var_[top], andExistsParRec(fh, gh, cube, depth + 1),
                 andExistsParRec(fl, gl, cube, depth + 1));
    }
  }
  cacheStore(kOpAndExists, f, g, cube, r);
  return r;
}

Edge Manager::cofactor2ParRec(Edge f, std::uint32_t var, Edge& hi,
                              unsigned depth) {
  if (isConstEdge(f) || level(f) > var2level_[var]) {
    hi = f;
    return f;
  }
  const Edge parity = f & 1U;
  f = regular(f);
  const std::uint32_t top = varOf(f);
  const Edge fh = highOf(f);
  const Edge fl = lowOf(f);
  if (top == var) {
    hi = fh ^ parity;
    return fl ^ parity;
  }
  Edge lo;
  if (cacheLookup2(kOpCofactor2, f, var, 0, lo, hi)) {
    hi ^= parity;
    return lo ^ parity;
  }
  ++curStats().recursive_steps;
  Edge fh1, fl1, fh0, fl0;
  if (depth < kParMaxForkDepth && !isConstEdge(fl) && pool_->hungry()) {
    ParTask t;
    t.mgr = this;
    t.kind = ParTask::kCof2;
    t.a = fl;
    t.var = var;
    t.depth = static_cast<std::uint8_t>(depth + 1);
    ForkGuard fork(*pool_, t);
    fh0 = cofactor2ParRec(fh, var, fh1, depth + 1);
    fl0 = fork.join();
    fl1 = fork.result2();
  } else {
    fh0 = cofactor2ParRec(fh, var, fh1, depth + 1);
    fl0 = cofactor2ParRec(fl, var, fl1, depth + 1);
  }
  lo = mkNode(top, fh0, fl0);
  const Edge hi_reg = mkNode(top, fh1, fl1);
  cacheStore2(kOpCofactor2, f, var, 0, lo, hi_reg);
  hi = hi_reg ^ parity;
  return lo ^ parity;
}

}  // namespace bfvr::bdd
