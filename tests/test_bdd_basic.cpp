#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {
namespace {

TEST(BddBasic, ConstantsAreDistinctAndConst) {
  Manager m(4);
  EXPECT_TRUE(m.one().isTrue());
  EXPECT_TRUE(m.zero().isFalse());
  EXPECT_TRUE(m.one().isConst());
  EXPECT_TRUE(m.zero().isConst());
  EXPECT_NE(m.one(), m.zero());
  EXPECT_EQ(~m.one(), m.zero());
}

TEST(BddBasic, NullHandle) {
  Bdd b;
  EXPECT_TRUE(b.isNull());
  EXPECT_FALSE(b.isTrue());
  EXPECT_FALSE(b.isFalse());
  EXPECT_THROW((void)~b, std::logic_error);
}

TEST(BddBasic, VarProjection) {
  Manager m(4);
  const Bdd a = m.var(0);
  EXPECT_FALSE(a.isConst());
  EXPECT_EQ(a.topVar(), 0U);
  EXPECT_TRUE(a.high().isTrue());
  EXPECT_TRUE(a.low().isFalse());
  EXPECT_EQ(m.nvar(0), ~a);
}

TEST(BddBasic, VarExtendsManager) {
  Manager m(2);
  EXPECT_EQ(m.numVars(), 2U);
  (void)m.var(7);
  EXPECT_EQ(m.numVars(), 8U);
}

TEST(BddBasic, HandleCopyAndMove) {
  Manager m(4);
  Bdd a = m.var(0);
  Bdd b = a;            // copy
  Bdd c = std::move(a);  // move
  EXPECT_TRUE(a.isNull());
  EXPECT_EQ(b, c);
  b = b;  // self-assignment is harmless
  EXPECT_EQ(b, c);
}

TEST(BddBasic, StructuralEqualityIsSemantic) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(a ^ b, (a & ~b) | (~a & b));
  EXPECT_EQ(m.ite(a, b, ~b), m.xnorB(a, b));
}

TEST(BddBasic, ComplementEdgesMakeNegationFree) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | m.var(2);
  const std::size_t before = m.inUseNodes();
  const Bdd g = ~f;
  EXPECT_EQ(m.inUseNodes(), before);  // no new nodes for negation
  EXPECT_EQ(~g, f);
}

TEST(BddBasic, TopVarOfConstantThrows) {
  Manager m(2);
  EXPECT_THROW((void)m.one().topVar(), std::logic_error);
  EXPECT_THROW((void)m.zero().high(), std::logic_error);
}

TEST(BddBasic, Implies) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_TRUE((a & b).implies(a));
  EXPECT_FALSE(a.implies(a & b));
  EXPECT_TRUE(m.zero().implies(a));
  EXPECT_TRUE(a.implies(m.one()));
}

TEST(BddBasic, MixedManagersRejected) {
  Manager m1(2);
  Manager m2(2);
  const Bdd a = m1.var(0);
  const Bdd b = m2.var(0);
  EXPECT_THROW((void)(a & b), std::logic_error);
  EXPECT_NE(a, b);  // different managers are never equal
}

TEST(BddBasic, CompoundAssignments) {
  Manager m(4);
  Bdd acc = m.one();
  acc &= m.var(0);
  acc |= m.var(1);
  acc ^= m.var(2);
  const Bdd expect = (m.var(0) | m.var(1)) ^ m.var(2);
  EXPECT_EQ(acc, expect);
}

TEST(BddBasic, ManagerOutlivedHandlesBecomeNull) {
  Bdd survivor;
  {
    Manager m(2);
    survivor = m.var(0);
    EXPECT_FALSE(survivor.isNull());
  }
  EXPECT_TRUE(survivor.isNull());
}

TEST(BddBasic, CubeBuildsPositiveConjunction) {
  Manager m(6);
  const unsigned vars[] = {4, 1, 3};
  const Bdd c = m.cube(vars);
  EXPECT_EQ(c, m.var(1) & m.var(3) & m.var(4));
}

TEST(BddBasic, EmptyCubeIsOne) {
  Manager m(2);
  EXPECT_TRUE(m.cube({}).isTrue());
}

}  // namespace
}  // namespace bfvr::bdd
