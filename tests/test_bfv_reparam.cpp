// §2.6 re-parameterization: canonicalizing raw simulated vectors.
#include <gtest/gtest.h>

#include <string>

#include "bfv/internal.hpp"
#include "circuit/bench_io.hpp"
#include "support/brute.hpp"
#include "sym/simulate.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

const std::vector<unsigned> kChoice{0, 1, 2, 3};
const std::vector<unsigned> kParams{4, 5, 6, 7};

/// Random raw vector over the parameter variables plus its brute-force
/// range.
struct RawVector {
  std::vector<Bdd> outputs;
  Set range;
};

RawVector randomRaw(Manager& m, Rng& rng, unsigned n, unsigned np) {
  RawVector rv;
  std::vector<std::uint64_t> tts(n);
  std::vector<unsigned> pvars(kParams.begin(), kParams.begin() + np);
  for (unsigned i = 0; i < n; ++i) {
    tts[i] = test::randomTruth(rng, np);
    rv.outputs.push_back(test::bddFromTruth(m, pvars, tts[i]));
  }
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << np); ++a) {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (((tts[i] >> a) & 1U) != 0) x |= std::uint64_t{1} << i;
    }
    rv.range.insert(x);
  }
  return rv;
}

class ReparamSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReparamSweep, RangeIsPreservedAndCanonical) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  Manager m(8);
  const RawVector rv = randomRaw(m, rng, 4, 4);
  for (const QuantSchedule sched :
       {QuantSchedule::kStaticOrder, QuantSchedule::kSupportCost}) {
    ReparamOptions opts;
    opts.schedule = sched;
    const Bfv f = reparameterize(m, rv.outputs, kChoice, kParams, opts);
    std::string why;
    ASSERT_TRUE(f.checkCanonical(&why)) << why;
    EXPECT_EQ(test::setOf(f), rv.range);
  }
}

TEST_P(ReparamSweep, SchedulesAgreeOnTheCanonicalResult) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
  Manager m(8);
  const RawVector rv = randomRaw(m, rng, 4, 3);
  ReparamOptions a;
  a.schedule = QuantSchedule::kStaticOrder;
  ReparamOptions b;
  b.schedule = QuantSchedule::kSupportCost;
  const std::vector<unsigned> params(kParams.begin(), kParams.begin() + 3);
  EXPECT_EQ(reparameterize(m, rv.outputs, kChoice, params, a),
            reparameterize(m, rv.outputs, kChoice, params, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReparamSweep, ::testing::Range(0, 20));

TEST(BfvReparam, ConstantVectorBecomesPoint) {
  Manager m(8);
  std::vector<Bdd> outs{m.one(), m.zero(), m.one(), m.zero()};
  const Bfv f = reparameterize(m, outs, kChoice, kParams);
  EXPECT_EQ(f, Bfv::point(m, kChoice, {true, false, true, false}));
}

TEST(BfvReparam, NoParametersIsAlreadyDone) {
  // A vector that is constant per parameter slice and uses no parameters
  // must come back unchanged (it is a singleton's canonical form).
  Manager m(8);
  std::vector<Bdd> outs{m.zero(), m.zero(), m.zero(), m.zero()};
  const Bfv f = reparameterize(m, outs, kChoice, {});
  EXPECT_DOUBLE_EQ(f.countStates(), 1.0);
}

TEST(BfvReparam, IdentityVectorGivesUniverse) {
  Manager m(8);
  std::vector<Bdd> outs;
  for (unsigned p : kParams) outs.push_back(m.var(p));
  const Bfv f = reparameterize(m, outs, kChoice, kParams);
  EXPECT_EQ(f, Bfv::universe(m, kChoice));
}

TEST(BfvReparam, SharedParameterCouplesComponents) {
  // (p, p, ~p): range {110, 001} — strong coupling across components.
  Manager m(8);
  const Bdd p = m.var(4);
  std::vector<Bdd> outs{p, p, ~p};
  const std::vector<unsigned> choice{0, 1, 2};
  const std::vector<unsigned> params{4};
  const Bfv f = reparameterize(m, outs, choice, params);
  EXPECT_EQ(test::setOf(f), (Set{0b011, 0b100}));
}

TEST(BfvReparam, ArityMismatchThrows) {
  Manager m(8);
  std::vector<Bdd> outs{m.one()};
  EXPECT_THROW((void)reparameterize(m, outs, kChoice, kParams),
               std::invalid_argument);
}

TEST(BfvReparam, ManyParametersFewValues) {
  // 6 parameters collapsing to a 2-member range exercises the support
  // optimization (most components ignore most parameters).
  Manager m(16);
  const std::vector<unsigned> choice{0, 1, 2, 3};
  std::vector<unsigned> params{8, 9, 10, 11, 12, 13};
  const Bdd p = m.var(8);
  std::vector<Bdd> outs{p, m.zero(), p, m.one()};
  const Bfv f = reparameterize(m, outs, choice, params);
  EXPECT_EQ(test::setOf(f), (Set{0b1000, 0b1101}));
}

// ---------------------------------------------------------------------------
// Differential against the pre-overhaul quantification loop.
//
// `referenceQuantifyParams` is a verbatim copy of internal::quantifyParams
// before the incremental-support rewrite: it recomputes every component's
// support from scratch after each quantification and re-counts nodes inside
// the cost scan. Same math, brute force — the rewrite must be bit-identical
// to it on real circuits, for both schedules.

struct RefQuantCost {
  std::size_t dependents = 0;
  std::size_t nodes = 0;

  bool operator<(const RefQuantCost& o) const {
    if (dependents != o.dependents) return dependents < o.dependents;
    return nodes < o.nodes;
  }
};

std::vector<Bdd> referenceQuantifyParams(Manager& m, std::vector<Bdd> cur,
                                         const std::vector<unsigned>& choice,
                                         std::span<const unsigned> param_vars,
                                         const ReparamOptions& opts) {
  std::vector<unsigned> pending(param_vars.begin(), param_vars.end());
  const std::size_t n = cur.size();
  std::vector<std::vector<unsigned>> supports(n);
  auto refresh = [&](std::size_t i) { supports[i] = m.support(cur[i]); };
  for (std::size_t i = 0; i < n; ++i) refresh(i);
  auto dependsOn = [&](std::size_t i, unsigned v) {
    return std::binary_search(supports[i].begin(), supports[i].end(), v);
  };
  while (!pending.empty()) {
    std::size_t pick = 0;
    if (opts.schedule == QuantSchedule::kSupportCost) {
      RefQuantCost best;
      bool have = false;
      for (std::size_t c = 0; c < pending.size(); ++c) {
        RefQuantCost cost;
        for (std::size_t i = 0; i < n; ++i) {
          if (dependsOn(i, pending[c])) {
            ++cost.dependents;
            cost.nodes += m.nodeCount(cur[i]);
          }
        }
        if (!have || cost < best) {
          best = cost;
          pick = c;
          have = true;
        }
      }
    }
    const unsigned v = pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    bool touched = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (dependsOn(i, v)) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    std::vector<Bdd> lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (dependsOn(i, v)) {
        lo[i] = m.cofactor(cur[i], v, false);
        hi[i] = m.cofactor(cur[i], v, true);
      } else {
        lo[i] = cur[i];
        hi[i] = cur[i];
      }
    }
    cur = internal::unionCore(m, choice, lo, hi);
    for (std::size_t i = 0; i < n; ++i) refresh(i);
    m.maybeGc();
  }
  return cur;
}

class ReparamCircuitDiff : public ::testing::TestWithParam<const char*> {};

TEST_P(ReparamCircuitDiff, BitIdenticalToPreOverhaulLoop) {
  const circuit::Netlist n =
      circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/" + GetParam());
  Manager m(0);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  std::vector<unsigned> params = s.currentVars();
  params.insert(params.end(), s.inputVars().begin(), s.inputVars().end());

  // Walk a few image steps of the Fig. 2 flow; at each step compare the
  // rewritten quantification loop against the reference on the raw
  // simulated vector. Same manager, deterministic kernels: identical
  // handles, not just identical sets.
  Bfv from = Bfv::point(m, s.currentVars(), s.initialBits());
  for (int iter = 0; iter < 3; ++iter) {
    const sym::SimResult sim = sym::simulate(s, from.comps());
    for (const QuantSchedule sched :
         {QuantSchedule::kStaticOrder, QuantSchedule::kSupportCost}) {
      ReparamOptions opts;
      opts.schedule = sched;
      const std::vector<Bdd> got = internal::quantifyParams(
          m, sim.next_state, s.paramVars(), params, opts,
          &internal::unionCore);
      const std::vector<Bdd> want = referenceQuantifyParams(
          m, sim.next_state, s.paramVars(), params, opts);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i])
            << GetParam() << " iter " << iter << " component " << i
            << " differs under schedule "
            << (sched == QuantSchedule::kStaticOrder ? "static" : "dynamic");
      }
    }
    // Advance with the production path (dynamic schedule, like the engine).
    const Bfv img_u =
        reparameterize(m, sim.next_state, s.paramVars(), params, {});
    std::vector<Bdd> renamed(img_u.comps().size());
    for (std::size_t i = 0; i < renamed.size(); ++i) {
      renamed[i] = m.permute(img_u.comps()[i], s.permParamToCurrent());
    }
    const Bfv img = Bfv::fromComponents(m, s.currentVars(),
                                        std::move(renamed), /*trusted=*/true);
    const Bfv next = setUnion(from, img);
    if (next == from) break;
    from = next;
    m.maybeGc();
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, ReparamCircuitDiff,
                         ::testing::Values("arb4.bench", "cnt8m200.bench",
                                           "crc8.bench", "fifo3.bench",
                                           "johnson8.bench", "twin6.bench"));

}  // namespace
}  // namespace bfvr::bfv
