#include "circuit/orders.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bfvr::circuit {

std::string OrderSpec::label() const {
  switch (kind) {
    case OrderKind::kNatural:
      return "natural";
    case OrderKind::kTopo:
      return "topo";
    case OrderKind::kReverse:
      return "reverse";
    case OrderKind::kRandom:
      return "rand" + std::to_string(seed);
  }
  return "?";
}

std::vector<ObjRef> makeOrder(const Netlist& n, const OrderSpec& spec) {
  std::vector<ObjRef> natural;
  for (unsigned i = 0; i < n.inputs().size(); ++i) {
    natural.push_back(ObjRef{true, i});
  }
  for (unsigned p = 0; p < n.latches().size(); ++p) {
    natural.push_back(ObjRef{false, p});
  }
  switch (spec.kind) {
    case OrderKind::kNatural:
      return natural;
    case OrderKind::kReverse: {
      std::reverse(natural.begin(), natural.end());
      return natural;
    }
    case OrderKind::kRandom: {
      Rng rng(spec.seed * 0x9e3779b9U + 0x1234567U);
      rng.shuffle(natural);
      return natural;
    }
    case OrderKind::kTopo:
      break;
  }
  // Topological DFS from each next-state function and each primary output,
  // in turn; sources are emitted in first-visit order. This groups each
  // latch with the inputs/latches its cone reads — the classic static
  // interleaving heuristic.
  std::vector<bool> seen(n.numSignals(), false);
  std::vector<ObjRef> order;
  std::vector<SignalId> stack;
  auto visit = [&](SignalId root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const SignalId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      const Gate& g = n.gate(id);
      if (g.op == GateOp::kInput) {
        order.push_back(ObjRef{true, static_cast<unsigned>(
                                          std::find(n.inputs().begin(),
                                                    n.inputs().end(), id) -
                                          n.inputs().begin())});
        continue;
      }
      if (g.op == GateOp::kLatch) {
        order.push_back(ObjRef{false, static_cast<unsigned>(n.latchPos(id))});
        continue;  // stop at the sequential boundary
      }
      // Push fanins in reverse so the first fanin is visited first.
      for (auto it = g.fanins.rbegin(); it != g.fanins.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  };
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    // Seed each cone with the latch itself so its variable sits next to
    // the variables its next-state function reads.
    visit(n.latches()[p]);
    visit(n.latchData(p));
  }
  for (SignalId o : n.outputs()) visit(o);
  if (order.size() != n.inputs().size() + n.latches().size()) {
    // Unreferenced sources (e.g. dangling inputs) go last.
    for (const ObjRef& o : natural) {
      if (std::find(order.begin(), order.end(), o) == order.end()) {
        order.push_back(o);
      }
    }
  }
  return order;
}

}  // namespace bfvr::circuit
