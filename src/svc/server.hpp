// The multi-tenant reachability server: accepts framed-protocol sessions
// on a Unix-domain or TCP endpoint, runs submitted jobs on a warm
// run::WorkerPool, and streams progress back to the owning session.
//
// Scheduling: submissions pass admission control (per-tenant budget clamps
// and queue caps) into the FairQueue; the server dispatches to the pool
// only when a worker slot is free — at most `workers` jobs are ever
// outstanding in the pool, so the pool's FIFO never reorders the fair
// queue's smooth-WRR schedule.
//
// Eviction/migration: every admitted job checkpoints to a per-job spool
// file; an Evict request cancels the running job cooperatively, and its
// completion handler lifts the latest snapshot into an in-memory resume
// image, requeues the job at the front of its tenant's line steered AWAY
// from the worker it ran on, and announces JobEvicted. The resumed run is
// bit-identical to an uninterrupted one (io checkpoint contract).
//
// Locking: mu_ guards all scheduling state; each session's write mutex is
// strictly inner to mu_ (frames may be sent while holding mu_, but mu_ is
// never taken while holding a write mutex).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/report.hpp"
#include "run/run.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/socket.hpp"
#include "util/stats.hpp"

namespace bfvr::svc {

class Server {
 public:
  struct Options {
    /// "unix:/path/to.sock" or "tcp:host:port".
    std::string endpoint = "unix:bfv_serve.sock";
    unsigned workers = 4;
    /// Reuse each worker's manager across jobs (reset-not-destroy).
    bool warm_managers = true;
    /// Tenant policies; unknown tenants get a default (weight-1) config.
    std::vector<TenantConfig> tenants;
    /// Directory for per-job eviction spool checkpoints.
    std::string spool_dir = ".";
    /// Checkpoint cadence imposed on jobs that do not set their own
    /// (iterations between snapshots; 0 = only jobs that opt in are
    /// evictable-with-resume).
    unsigned checkpoint_every = 1;
    /// Stream per-iteration updates to the owning session. Costs a
    /// live-node census per iteration (same as tracing).
    bool stream_iterations = true;
    /// Write the SVC_<name>.json report here at shutdown ("" = skip).
    std::string report_path;
    /// Server tag in HelloAck and the report.
    std::string name = "bfv_serve";
    /// Seconds between METRICS_<name>.{prom,json} snapshots written to
    /// `metrics_dir` (0 = never; a final snapshot is still written at
    /// shutdown when a cadence was set).
    double metrics_every = 0.0;
    std::string metrics_dir = ".";
    /// Directory for FLIGHT_<name>.json post-mortem dumps, written on job
    /// error, injected worker fault, and shutdown ("" = no dumps; the ring
    /// still records and stays queryable over the stats frame).
    std::string flight_dir;
    /// Flight-recorder ring capacity (recent events retained).
    std::size_t flight_capacity = 512;
    /// Finished span timelines retained for stats/report queries;
    /// in-flight spans are always kept. Per-tenant span counts survive
    /// the trim.
    std::size_t span_retain = 4096;
    /// Durability: directory of the append-only job journal ("" = no
    /// journal — crash forgets everything, exactly the pre-journal
    /// behaviour). With a journal, accepted jobs survive kill -9: on the
    /// next start the log is replayed, non-terminal jobs re-enqueue
    /// (resuming from their spool checkpoint when one exists) and
    /// duplicate submissions keyed by Submit.idem are answered from the
    /// journal instead of executing twice.
    std::string journal_dir;
    /// When journal appends reach the disk (--fsync grammar).
    FsyncPolicy journal_fsync = FsyncPolicy::kBatch;
    /// Rewrite the journal at clean shutdown keeping only non-terminal
    /// jobs. Tests disable this to inspect the full log.
    bool journal_compact_on_shutdown = true;
    /// Reap sessions that send nothing for this long (seconds; 0 = never).
    double idle_timeout = 0.0;
    /// Cap the time between a frame's first and last byte (seconds;
    /// 0 = unlimited) — a slow-loris client cannot pin a session thread.
    double frame_timeout = 0.0;
    /// Cap how long a send may block on a full client socket (seconds;
    /// 0 = unlimited).
    double send_timeout = 0.0;
  };

  /// Binds and listens on the endpoint (throws svc::Error on failure); the
  /// socket is accepting by the time the constructor returns.
  explicit Server(const Options& opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the accept loop (non-blocking).
  void start();
  /// Ask the server to stop: drain (finish queued + running jobs) or
  /// immediate (cancel everything). Also triggered by a Shutdown frame.
  void requestShutdown(bool drain);
  /// Block until fully stopped: queue drained, workers idle, sessions
  /// closed, report written.
  void waitStopped();
  /// start() + waitStopped().
  void run() {
    start();
    waitStopped();
  }

  /// The server metrics report (obs::svcReportJson) with the default
  /// sections (metrics + spans), valid at any time.
  std::string statsJson() const;
  /// Same report with an explicit StatsQuery section selection.
  std::string statsJson(std::uint32_t flags) const;
  /// Tenant name per dispatch, in dispatch order (fairness evidence).
  std::vector<std::string> dispatchLog() const;
  /// Aggregated warm-manager stats from the pool.
  run::ManagerCache::Stats warmStats() const noexcept {
    return pool_.warmStats();
  }
  /// Snapshot of the retained span timelines (in-flight + recent finished).
  std::vector<obs::JobSpan> spans() const;
  /// Spans ever opened per tenant (survives span_retain trimming).
  std::uint64_t spanCount(const std::string& tenant) const;
  /// The server's flight recorder (for tests and embedding).
  const obs::FlightRecorder& flight() const noexcept { return flight_; }
  /// The job journal, or nullptr when running without one.
  const Journal* journal() const noexcept { return journal_.get(); }
  /// Jobs re-enqueued from the journal at startup / duplicate submissions
  /// answered from it (test + drill evidence).
  std::uint64_t replayedJobs() const;
  std::uint64_t dedupHits() const;
  /// Sessions closed by the idle reaper.
  std::uint64_t sessionsReaped() const;
  /// Sessions dropped for stalling a started frame past frame_timeout.
  std::uint64_t frameTimeouts() const;

 private:
  struct Session {
    std::uint64_t id = 0;
    std::string tenant;
    Fd fd;
    std::mutex write_mu;
    std::atomic<bool> alive{true};
  };

  /// A job the pool is currently executing.
  struct Running {
    QueuedJob job;  ///< full queued record, for requeue-after-eviction
    std::shared_ptr<run::CancelToken> cancel;
    std::shared_ptr<std::atomic<bool>> evict_requested;
    unsigned worker_hint = 0;  ///< filled by JobResult on completion
  };

  void acceptLoop();
  void sessionLoop(std::shared_ptr<Session> s);
  /// Handle one client frame; returns false when the session should end.
  bool handleFrame(const std::shared_ptr<Session>& s, const Frame& f);
  void handleSubmit(const std::shared_ptr<Session>& s, const Frame& f);
  /// Dispatch queued jobs while worker slots are free. Caller holds mu_.
  void pump();
  /// Worker-thread completion handler for job `id`.
  void onJobDone(std::uint64_t id, const run::JobResult& r);
  /// Send a frame to a session, marking it dead on failure. Safe to call
  /// with or without mu_ held (takes only the session's write mutex).
  void sendTo(const std::shared_ptr<Session>& s, const Frame& f);
  std::shared_ptr<Session> sessionById(std::uint64_t id);
  obs::SvcTenantStats& statsFor(const std::string& tenant);
  std::string spoolPathFor(std::uint64_t job_id) const;
  /// Re-enqueue every non-terminal journaled job and remember terminal
  /// ones for idempotent replay. Runs in the constructor, before any
  /// session exists.
  void replayJournal();
  /// Append to the journal, absorbing write failures into a log line and
  /// a counter (worker threads and frame handlers must not die on a full
  /// disk). Returns false when the record did not reach the journal.
  bool journalAppend(const JournalRecord& rec) noexcept;
  /// Compact the journal down to live jobs and write the
  /// JOURNAL_<name>.json summary. Caller holds mu_.
  void finishJournalLocked();
  std::string buildReportLocked(std::uint32_t flags) const;
  /// Stamp one event on job `id`'s span timeline. Caller holds mu_.
  void spanEventLocked(std::uint64_t id, const char* what,
                       std::string detail = "");
  /// Close job `id`'s span with its terminal status and trim the retained
  /// set to span_retain. Caller holds mu_.
  void finishSpanLocked(std::uint64_t id, const std::string& status,
                        unsigned worker, unsigned evictions);
  /// Refresh the sampled gauges (queue depth, running, sessions, warm
  /// cache) from current scheduler state. Caller holds mu_.
  void sampleGaugesLocked() const;
  /// Periodic METRICS_<name>.{prom,json} writer (own thread).
  void metricsLoop();
  void writeMetricsFiles() const;
  /// Dump the flight ring to FLIGHT_<name>.json (no-op without flight_dir).
  void dumpFlight(const std::string& reason) const;

  Options opts_;
  Endpoint endpoint_;
  Fd listener_;
  run::WorkerPool pool_;
  Timer uptime_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  FairQueue queue_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::map<std::uint64_t, Running> running_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_job_ = 1;
  unsigned outstanding_ = 0;  ///< jobs handed to the pool, not yet done
  bool draining_ = false;     ///< reject new submissions
  bool shutdown_requested_ = false;
  bool shutdown_drain_ = true;
  bool stopped_ = false;
  std::uint64_t sessions_accepted_ = 0;
  std::uint64_t dispatches_ = 0;
  std::vector<obs::SvcTenantStats> tenant_stats_;

  // Durability state (populated only when opts_.journal_dir is set).
  std::unique_ptr<Journal> journal_;
  /// idempotency key -> server job id, spanning this process's accepts
  /// and everything replayed from the journal.
  std::map<std::string, std::uint64_t> idem_to_job_;
  /// Terminal results remembered for duplicate submissions (by job id).
  std::map<std::uint64_t, JobDone> done_cache_;
  /// Accepted-records of jobs not yet terminal — the compaction set.
  std::map<std::uint64_t, JournalRecord> journal_live_;
  std::uint64_t replayed_jobs_ = 0;
  std::uint64_t replayed_resumed_ = 0;
  std::uint64_t replayed_terminal_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t journal_errors_ = 0;
  std::atomic<std::uint64_t> sessions_reaped_{0};
  std::atomic<std::uint64_t> frame_timeouts_{0};

  // Observability state. Spans are keyed by server job id; finished ones
  // are trimmed FIFO to opts_.span_retain while per-tenant counts persist.
  std::uint64_t next_trace_ = 1;
  std::map<std::uint64_t, obs::JobSpan> spans_;
  std::deque<std::uint64_t> finished_spans_;
  std::map<std::string, std::uint64_t> span_counts_;
  obs::FlightRecorder flight_;

  std::thread accept_thread_;
  std::thread metrics_thread_;
  std::vector<std::thread> session_threads_;
};

}  // namespace bfvr::svc
