// Batch manifests for the `bfv_run` CLI: a dependency-free, line-oriented
// job list. One job per non-comment line, whitespace-separated key=value
// tokens:
//
//   # circuit is the only required key
//   circuit=data/arb4.bench engine=bfv order=topo deadline=30
//   circuit=gen:johnson:16  engine=tr  nodes=1000000 name=j16
//   circuit=data/twin6.bench portfolio=tr,cbm,bfv,hybrid deadline=10
//
// Keys:
//   circuit        .bench path or gen:<kind>:<args> (see run::resolveCircuit)
//   name           report key (default "<circuit>/<engine>")
//   engine         tr | tr-mono | cbm | bfv | cdec | hybrid | lz
//                  (default bfv)
//   order          natural | topo | reverse | random[:seed]   (default topo)
//   deadline       wall-clock deadline in seconds, setup included (0 = none)
//   seconds        engine time budget (ReachOptions::budget.max_seconds)
//   nodes          engine live-node budget (budget.max_live_nodes)
//   max-nodes      manager hard node budget (Manager::Config::max_nodes)
//   iters          ReachOptions::max_iterations
//   reorder-every  sift after every k-th frontier iteration
//   auto-reorder   0/1: Manager::Config::auto_reorder
//   trace          0/1: record the per-iteration obs trace
//   portfolio      comma-separated engine list — expands this line into a
//                  portfolio race instead of a single job
//   ladder         0/1: Manager::Config::pressure_ladder.enabled
//   cache-bits     log2 computed-cache slots (Manager::Config::cache_bits)
//   retries        RetryPolicy::max_attempts (total attempts; 1 = none)
//   backoff        RetryPolicy::backoff_seconds (exponential per retry)
//   budget-growth  RetryPolicy::node_budget_growth
//   checkpoint-every  snapshot each N iterations (ReachOptions)
//   checkpoint-path   snapshot file (atomic tmp+rename; retries resume
//                     from it)
//   target         primary-output name the lz engine checks reachability
//                  of (pre-filter mode; ignored by the BDD engines)
//   lz-merge       lz engine merge threshold (LzOptions::merge_threshold;
//                  0 = engine default)
//   fault-allocs   comma-separated allocation counts at which the fault
//                  plan injects an allocation failure (FaultPlan)
//   fault-polls    comma-separated poll counts at which it injects a
//                  spurious interrupt
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "run/run.hpp"

namespace bfvr::run {

/// One manifest line: the base spec plus the (possibly empty) portfolio
/// engine list it expands into.
struct ManifestEntry {
  JobSpec spec;
  std::vector<EngineKind> portfolio;  ///< empty = plain single-engine job
};

/// Parse a manifest; throws std::runtime_error naming the offending line on
/// any malformed entry. Circuits are NOT resolved here — a missing .bench
/// file surfaces per job as RunStatus::kError, not as a batch failure.
std::vector<ManifestEntry> parseManifest(std::istream& in);
std::vector<ManifestEntry> parseManifestString(const std::string& text);
std::vector<ManifestEntry> parseManifestFile(const std::string& path);

}  // namespace bfvr::run
