file(REMOVE_RECURSE
  "CMakeFiles/bfvr_sym.dir/sym/image.cpp.o"
  "CMakeFiles/bfvr_sym.dir/sym/image.cpp.o.d"
  "CMakeFiles/bfvr_sym.dir/sym/ordersearch.cpp.o"
  "CMakeFiles/bfvr_sym.dir/sym/ordersearch.cpp.o.d"
  "CMakeFiles/bfvr_sym.dir/sym/simulate.cpp.o"
  "CMakeFiles/bfvr_sym.dir/sym/simulate.cpp.o.d"
  "CMakeFiles/bfvr_sym.dir/sym/space.cpp.o"
  "CMakeFiles/bfvr_sym.dir/sym/space.cpp.o.d"
  "CMakeFiles/bfvr_sym.dir/sym/transition.cpp.o"
  "CMakeFiles/bfvr_sym.dir/sym/transition.cpp.o.d"
  "libbfvr_sym.a"
  "libbfvr_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
