// Experiment: Table 1 of the paper — the example set
// S = {000, 001, 010, 011, 100, 101} as a characteristic function and as a
// canonical Boolean functional vector, plus the full selection table.
#include <cstdio>

#include "bfv/bfv.hpp"
#include "support.hpp"

using namespace bfvr;
using bfv::Bfv;

int main(int argc, char** argv) {
  bench::JsonLog log = bench::jsonLogFromArgs(argc, argv, "table1");
  bench::JsonLog trace = bench::traceLogFromArgs(argc, argv, "table1");
  bdd::Manager m(3);
  // No reach run here, so the trace report is events-only: record manager
  // lifecycle events (a forced GC at the end guarantees at least one).
  obs::RunTrace events_trace;
  obs::ScopedEventRecorder recorder(m, events_trace.events);
  const std::vector<unsigned> vars{0, 1, 2};
  // Members as component masks (bit i = component i, component 0 is the
  // paper's first / highest-weighted bit).
  const std::uint64_t members[] = {0b000, 0b100, 0b010, 0b110, 0b001, 0b101};
  const Bfv f = Bfv::fromMembers(m, vars, members);
  const bdd::Bdd chi = f.toChar();

  std::printf("Table 1: S = {000,001,010,011,100,101}\n");
  std::printf("%-10s %-6s %-22s\n", "v1 v2 v3", "chi_S", "F(v) = (f1 f2 f3)");
  for (unsigned v = 0; v < 8; ++v) {
    // Paper lists v1 as the leftmost column bit.
    const bool v1 = (v >> 2) & 1U;
    const bool v2 = (v >> 1) & 1U;
    const bool v3 = v & 1U;
    const std::vector<bool> choices{v1, v2, v3};
    std::vector<bool> assignment(3);
    assignment[0] = v1;
    assignment[1] = v2;
    assignment[2] = v3;
    const auto sel = f.select(choices);
    std::printf(" %d  %d  %d   %-6d %d%d%d\n", v1, v2, v3,
                m.eval(chi, assignment) ? 1 : 0, sel[0] ? 1 : 0,
                sel[1] ? 1 : 0, sel[2] ? 1 : 0);
  }
  std::printf("\ncanonical components: f1 = v1, f2 = ~v1 & v2, f3 = v3\n");
  std::printf("  f1 == v1        : %s\n",
              f.comps()[0] == m.var(0) ? "yes" : "NO");
  std::printf("  f2 == ~v1 & v2  : %s\n",
              f.comps()[1] == (~m.var(0) & m.var(1)) ? "yes" : "NO");
  std::printf("  f3 == v3        : %s\n",
              f.comps()[2] == m.var(2) ? "yes" : "NO");
  std::printf("  chi == ~(v1&v2) : %s\n",
              chi == ~(m.var(0) & m.var(1)) ? "yes" : "NO");
  std::printf("chi BDD nodes: %zu, BFV shared nodes: %zu, |S| = %.0f\n",
              m.nodeCount(chi), f.sharedSize(), f.countStates());
  bench::JsonObject o;
  o.add("table", "table1")
      .add("set", "{000,001,010,011,100,101}")
      .add("chi_nodes", static_cast<std::uint64_t>(m.nodeCount(chi)))
      .add("bfv_shared_nodes", static_cast<std::uint64_t>(f.sharedSize()))
      .add("states", f.countStates());
  log.push(o);
  if (trace.enabled()) {
    m.gc();
    obs::RunMeta meta;
    meta.circuit = "table1-example";
    meta.order = "natural";
    meta.engine = "BFV-construct";
    meta.states = f.countStates();
    meta.peak_live_nodes = m.peakNodes();
    meta.ops = m.stats();
    trace.push(obs::reportJson(meta, events_trace));
  }
  return log.write() && trace.write() ? 0 : 1;
}
