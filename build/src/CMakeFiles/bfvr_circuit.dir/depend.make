# Empty dependencies file for bfvr_circuit.
# This may be replaced when dependencies are built.
