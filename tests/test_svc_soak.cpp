// Service soak (the PR's acceptance scenario, in-process): a 4-worker
// server, three weighted tenants pushing 1000+ queued jobs concurrently,
// an exact fairness check on the dispatch log, one eviction-with-migration
// resumed bit-identically, and node accounting back to zero at shutdown.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "run/run.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace bfvr::svc {
namespace {

constexpr unsigned kJobsPerTenant = 334;  // 3 tenants -> 1002 queued jobs

struct TenantOutcome {
  unsigned accepted = 0;
  unsigned done = 0;
  unsigned failed = 0;
};

/// One tenant's client: submit kJobsPerTenant tiny jobs, then pump the
/// event stream until every one of them reports JobDone.
TenantOutcome runTenant(const std::string& sock, const std::string& tenant) {
  TenantOutcome out;
  Client client("unix:" + sock, tenant);
  for (unsigned i = 0; i < kJobsPerTenant; ++i) {
    client.submit("circuit=gen:counter:3:4");
  }
  while (out.done + out.failed < kJobsPerTenant) {
    std::optional<Event> ev = client.next();
    if (!ev.has_value()) break;  // server hung up: the counts will show it
    if (std::get_if<Accepted>(&*ev) != nullptr) {
      ++out.accepted;
    } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
      if (d->status == "done") {
        ++out.done;
      } else {
        ++out.failed;
      }
    } else if (std::get_if<Rejected>(&*ev) != nullptr) {
      ++out.failed;
    }
  }
  client.bye();
  return out;
}

TEST(SvcSoak, MultiTenantFairnessEvictionAndCleanShutdown) {
  const std::string sock =
      "/tmp/bfvr_soak_" + std::to_string(::getpid()) + ".sock";
  Server::Options opts;
  opts.endpoint = "unix:" + sock;
  opts.workers = 4;
  opts.warm_managers = true;
  opts.tenants = parseTenantsString("alpha:3\nbravo:2\ncarol:1\n");
  opts.spool_dir = "/tmp";
  opts.checkpoint_every = 1;
  opts.stream_iterations = false;  // throughput mode; eviction needs no feed
  opts.name = "soak";
  Server server(opts);
  server.start();

  // --- phase 1: saturate, backlog, drain -------------------------------
  // Four deliberately oversized "plug" jobs occupy every worker while the
  // three tenants build their backlog, so the dispatch log right after the
  // plugs is a clean all-tenants-contending window.
  Client plug_client("unix:" + sock, "plug");
  std::set<std::uint64_t> plugs;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t tag =
        plug_client.submit("circuit=gen:counter:20:1000000 deadline=3");
    std::optional<std::uint64_t> job = plug_client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    plugs.insert(*job);
  }

  TenantOutcome alpha, bravo, carol;
  std::thread ta([&] { alpha = runTenant(sock, "alpha"); });
  std::thread tb([&] { bravo = runTenant(sock, "bravo"); });
  std::thread tc([&] { carol = runTenant(sock, "carol"); });
  // Drain the plug dones in *completion* order — under load the four do
  // not finish in submission order.
  while (!plugs.empty()) {
    std::optional<Event> ev = plug_client.next();
    ASSERT_TRUE(ev.has_value());
    if (const auto* d = std::get_if<JobDone>(&*ev)) {
      ASSERT_EQ(plugs.erase(d->job), 1u);
      // A plug either hits its deadline or (on a very fast machine)
      // finishes; both mean the worker is free again.
      EXPECT_TRUE(d->status == "T.O." || d->status == "done") << d->status;
    }
  }
  ta.join();
  tb.join();
  tc.join();

  for (const TenantOutcome* t : {&alpha, &bravo, &carol}) {
    EXPECT_EQ(t->accepted, kJobsPerTenant);
    EXPECT_EQ(t->done, kJobsPerTenant);
    EXPECT_EQ(t->failed, 0u);
  }

  // Fairness evidence: the first 4 dispatches are the plugs; in the next
  // 60 every tenant is backlogged, so smooth WRR must hand out shares in
  // exact weight proportion (3:2:1 of 60 = 30/20/10; +-2 absorbs the
  // submission race on the window edge).
  const std::vector<std::string> log = server.dispatchLog();
  ASSERT_GE(log.size(), 64u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(log[i], "plug");
  int a = 0, b = 0, c = 0;
  for (std::size_t i = 4; i < 64; ++i) {
    if (log[i] == "alpha") ++a;
    if (log[i] == "bravo") ++b;
    if (log[i] == "carol") ++c;
  }
  EXPECT_EQ(a + b + c, 60);
  EXPECT_NEAR(a, 30, 2);
  EXPECT_NEAR(b, 20, 2);
  EXPECT_NEAR(c, 10, 2);

  // --- phase 2: evict, migrate, resume bit-identically -----------------
  run::JobSpec ref;
  ref.circuit = "gen:counter:14:12000";
  const run::JobResult ref_result = run::executeJob(ref);
  ASSERT_EQ(ref_result.status, RunStatus::kDone);
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:14:12000");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    // Wait for the dispatch, give the engine a moment to lay down a spool
    // snapshot (checkpoint_every=1: any completed iteration suffices),
    // then pull the rug.
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (std::get_if<JobStarted>(&*ev) != nullptr) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client.evict(*job);
    bool evicted_seen = false;
    std::uint32_t evicted_from = 0;
    JobDone done;
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* e = std::get_if<JobEvicted>(&*ev)) {
        evicted_seen = true;
        evicted_from = e->worker;
        EXPECT_GE(e->iteration, 1u);
      } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
        done = *d;
        break;
      }
    }
    ASSERT_TRUE(evicted_seen) << "job finished before the evict landed";
    EXPECT_TRUE(done.resumed);
    EXPECT_EQ(done.evictions, 1u);
    EXPECT_NE(done.worker, evicted_from);  // migrated off the old worker
    EXPECT_EQ(done.status, "done");
    EXPECT_DOUBLE_EQ(done.states, ref_result.reach.states);
    EXPECT_EQ(done.iterations, ref_result.reach.iterations);
    client.bye();
  }

  // --- shutdown: accounting back to zero -------------------------------
  server.requestShutdown(true);
  server.waitStopped();
  // 4 plugs + 1002 tenant jobs + the evicted job dispatched twice.
  EXPECT_EQ(server.dispatchLog().size(), 4u + 3u * kJobsPerTenant + 2u);
  const std::string stats = server.statsJson();
  EXPECT_NE(stats.find("\"evictions\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"resumes\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"leaked_nodes\": 0"), std::string::npos) << stats;
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
  EXPECT_EQ(server.warmStats().resets_failed, 0u);
}

}  // namespace
}  // namespace bfvr::svc
