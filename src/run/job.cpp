// Single-job execution: fresh manager, deadline + cancellation through the
// interrupt hook, engine dispatch, and the engine-boundary catch that turns
// every failure mode into a RunStatus (a runaway or crashing job must never
// take the pool — or the process — down with it).
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "run/run.hpp"
#include "sym/space.hpp"
#include "util/stats.hpp"

namespace bfvr::run {

const char* to_string(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kTr:
      return "tr";
    case EngineKind::kTrMono:
      return "tr-mono";
    case EngineKind::kCbm:
      return "cbm";
    case EngineKind::kBfv:
      return "bfv";
    case EngineKind::kCdec:
      return "cdec";
    case EngineKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

EngineKind parseEngineKind(const std::string& s) {
  if (s == "tr") return EngineKind::kTr;
  if (s == "tr-mono" || s == "trmono") return EngineKind::kTrMono;
  if (s == "cbm") return EngineKind::kCbm;
  if (s == "bfv") return EngineKind::kBfv;
  if (s == "cdec") return EngineKind::kCdec;
  if (s == "hybrid") return EngineKind::kHybrid;
  throw std::invalid_argument("unknown engine: " + s);
}

std::string JobSpec::displayName() const {
  if (!name.empty()) return name;
  return circuit + "/" + to_string(engine);
}

namespace {

/// Split "a:b:c" into segments.
std::vector<std::string> splitColons(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ':')) out.push_back(cur);
  return out;
}

unsigned argAt(const std::vector<std::string>& parts, std::size_t i,
               const std::string& spec) {
  if (i >= parts.size()) {
    throw std::invalid_argument("generator spec needs more arguments: " +
                                spec);
  }
  return static_cast<unsigned>(std::stoul(parts[i]));
}

reach::ReachResult dispatchEngine(EngineKind e, sym::StateSpace& s,
                                  reach::ReachOptions opts) {
  switch (e) {
    case EngineKind::kTr:
      return reach::reachTr(s, opts);
    case EngineKind::kTrMono:
      opts.transition.cluster_limit = 0;
      return reach::reachTr(s, opts);
    case EngineKind::kCbm:
      return reach::reachCbm(s, opts);
    case EngineKind::kBfv:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    case EngineKind::kCdec:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
    case EngineKind::kHybrid:
      return reach::reachHybrid(s, opts);
  }
  throw std::logic_error("bad engine kind");
}

}  // namespace

circuit::Netlist resolveCircuit(const std::string& spec) {
  if (spec.rfind("gen:", 0) != 0) return circuit::parseBenchFile(spec);
  const std::vector<std::string> parts = splitColons(spec.substr(4));
  if (parts.empty()) throw std::invalid_argument("empty generator spec");
  const std::string& kind = parts[0];
  if (kind == "counter") {
    return circuit::makeCounter(argAt(parts, 1, spec), argAt(parts, 2, spec));
  }
  if (kind == "johnson") return circuit::makeJohnson(argAt(parts, 1, spec));
  if (kind == "lfsr") return circuit::makeLfsr(argAt(parts, 1, spec));
  if (kind == "twinshift") {
    return circuit::makeTwinShift(argAt(parts, 1, spec));
  }
  if (kind == "arbiter") return circuit::makeArbiter(argAt(parts, 1, spec));
  if (kind == "fifo") return circuit::makeFifoCtrl(argAt(parts, 1, spec));
  if (kind == "gray") return circuit::makeGrayCounter(argAt(parts, 1, spec));
  if (kind == "crc") return circuit::makeCrc(argAt(parts, 1, spec));
  if (kind == "random") {
    return circuit::makeRandomSeq(argAt(parts, 1, spec), argAt(parts, 2, spec),
                                  argAt(parts, 3, spec), argAt(parts, 4, spec));
  }
  throw std::invalid_argument("unknown generator kind: " + spec);
}

JobResult executeJob(const JobSpec& spec, const CancelToken* cancel) noexcept {
  JobResult out;
  const Timer timer;  // the deadline clock: covers setup AND engine
  try {
    reach::ReachOptions opts = spec.opts;
    if (spec.deadline_seconds > 0.0) {
      // Fold the deadline into the engine budget too: a job whose
      // iterations are too small to reach a manager poll point must still
      // time out at the engine's per-iteration budget check.
      opts.budget.max_seconds =
          opts.budget.max_seconds > 0.0
              ? std::min(opts.budget.max_seconds, spec.deadline_seconds)
              : spec.deadline_seconds;
    }
    const circuit::Netlist n = resolveCircuit(spec.circuit);
    bdd::Manager m(0, spec.mgr);
    if (cancel != nullptr || spec.deadline_seconds > 0.0) {
      const double deadline = spec.deadline_seconds;
      m.setInterruptCheck([cancel, deadline, &timer] {
        if (cancel != nullptr && cancel->cancelled()) {
          throw bdd::Interrupted(bdd::Interrupted::Reason::kCancelled);
        }
        if (deadline > 0.0 && timer.seconds() > deadline) {
          throw bdd::Interrupted(bdd::Interrupted::Reason::kDeadline);
        }
      });
    }
    sym::StateSpace s(m, n, circuit::makeOrder(n, spec.order));
    out.reach = dispatchEngine(spec.engine, s, opts);
    out.status = out.reach.status;
    // The reached set lives in this manager, which dies with the job: drop
    // the handles here, explicitly, rather than letting ~Manager orphan
    // them after the result already escaped the scope.
    out.reach.reached_bfv.reset();
    out.reach.reached_chi = bdd::Bdd();
  } catch (const bdd::NodeBudgetExceeded&) {
    // Setup (netlist -> BDDs) blew the manager's hard node budget before
    // the engine's own boundary could catch it.
    out.status = RunStatus::kMemOut;
  } catch (const bdd::Interrupted& e) {
    out.status = e.reason() == bdd::Interrupted::Reason::kDeadline
                     ? RunStatus::kTimeOut
                     : RunStatus::kCancelled;
  } catch (const std::exception& e) {
    out.status = RunStatus::kError;
    out.failure = e.what();
  } catch (...) {
    out.status = RunStatus::kError;
    out.failure = "unknown exception";
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace bfvr::run
