#include "sym/simulate.hpp"

#include <stdexcept>

namespace bfvr::sym {

SimResult simulate(const StateSpace& s, std::span<const Bdd> latch_values) {
  Manager& m = s.manager();
  const circuit::Netlist& n = s.netlist();
  if (!latch_values.empty() && latch_values.size() != s.numLatches()) {
    throw std::invalid_argument("simulate: wrong latch vector width");
  }
  std::vector<Bdd> val(n.numSignals());
  for (std::size_t i = 0; i < n.inputs().size(); ++i) {
    val[n.inputs()[i]] = m.var(s.inputVar(i));
  }
  for (std::size_t p = 0; p < n.latches().size(); ++p) {
    const std::size_t comp = s.componentOfLatch(p);
    val[n.latches()[p]] = latch_values.empty()
                              ? m.var(s.currentVar(p))
                              : latch_values[comp];
  }
  for (circuit::SignalId id : n.topoOrder()) {
    const circuit::Gate& g = n.gate(id);
    using circuit::GateOp;
    switch (g.op) {
      case GateOp::kInput:
      case GateOp::kLatch:
        break;
      case GateOp::kConst0:
        val[id] = m.zero();
        break;
      case GateOp::kConst1:
        val[id] = m.one();
        break;
      case GateOp::kBuf:
        val[id] = val[g.fanins[0]];
        break;
      case GateOp::kNot:
        val[id] = ~val[g.fanins[0]];
        break;
      case GateOp::kAnd:
      case GateOp::kNand: {
        Bdd acc = m.one();
        for (circuit::SignalId f : g.fanins) acc &= val[f];
        val[id] = g.op == GateOp::kNand ? ~acc : acc;
        break;
      }
      case GateOp::kOr:
      case GateOp::kNor: {
        Bdd acc = m.zero();
        for (circuit::SignalId f : g.fanins) acc |= val[f];
        val[id] = g.op == GateOp::kNor ? ~acc : acc;
        break;
      }
      case GateOp::kXor:
      case GateOp::kXnor: {
        Bdd acc = m.zero();
        for (circuit::SignalId f : g.fanins) acc ^= val[f];
        val[id] = g.op == GateOp::kXnor ? ~acc : acc;
        break;
      }
    }
  }
  SimResult r;
  r.next_state.resize(s.numLatches());
  for (std::size_t c = 0; c < s.numLatches(); ++c) {
    r.next_state[c] = val[n.latchData(s.latchOfComponent(c))];
  }
  r.outputs.reserve(n.outputs().size());
  for (circuit::SignalId o : n.outputs()) r.outputs.push_back(val[o]);
  return r;
}

std::vector<Bdd> transitionFunctions(const StateSpace& s) {
  return simulate(s, {}).next_state;
}

}  // namespace bfvr::sym
