// State space layout and symbolic simulation vs concrete simulation.
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "sym/simulate.hpp"
#include "util/rng.hpp"

namespace bfvr::sym {
namespace {

using circuit::Netlist;
using circuit::ObjRef;
using circuit::OrderKind;
using circuit::OrderSpec;

TEST(StateSpace, InterleavedBanksAndComponentOrder) {
  const Netlist n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  EXPECT_EQ(s.numLatches(), 3U);
  // natural order: input en, then latches q0..q2.
  EXPECT_EQ(s.inputVar(0), 0U);
  EXPECT_EQ(s.currentVar(0), 1U);
  EXPECT_EQ(s.paramVar(0), 2U);
  EXPECT_EQ(s.currentVar(1), 3U);
  // Choice variables strictly increase in component order.
  const auto& v = s.currentVars();
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
  // Param bank sits right above the current bank.
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(s.paramVars()[i], v[i] + 1);
  }
  // Component <-> latch maps are inverse bijections.
  for (std::size_t c = 0; c < s.numLatches(); ++c) {
    EXPECT_EQ(s.componentOfLatch(s.latchOfComponent(c)), c);
  }
}

TEST(StateSpace, PermutationsAreMutualInverses) {
  const Netlist n = circuit::makeJohnson(4);
  bdd::Manager m(0);
  const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const auto& uv = s.permParamToCurrent();
  const auto& vu = s.permCurrentToParam();
  for (unsigned c = 0; c < s.numLatches(); ++c) {
    const unsigned latch = static_cast<unsigned>(s.latchOfComponent(c));
    EXPECT_EQ(uv[s.paramVar(latch)], s.currentVar(latch));
    EXPECT_EQ(vu[s.currentVar(latch)], s.paramVar(latch));
  }
}

TEST(StateSpace, InitialBitsFollowComponentOrder) {
  const Netlist n = circuit::makeLfsr(4);  // init 0001 in latch order
  bdd::Manager m(0);
  const auto order = circuit::makeOrder(n, {OrderKind::kReverse, 0});
  const StateSpace s(m, n, order);
  const auto bits = s.initialBits();
  for (std::size_t c = 0; c < s.numLatches(); ++c) {
    EXPECT_EQ(bits[c], n.latchInit(s.latchOfComponent(c)));
  }
}

TEST(StateSpace, RejectsIncompleteOrder) {
  const Netlist n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  std::vector<ObjRef> partial{{true, 0}};
  EXPECT_THROW((void)StateSpace(m, n, partial), std::invalid_argument);
}

class SimAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SimAgreement, SymbolicMatchesConcreteOnRandomVectors) {
  bfvr::Rng rng(static_cast<std::uint64_t>(GetParam()) * 5 + 7);
  const Netlist circuits[] = {
      circuit::makeCounter(4, 11), circuit::makeJohnson(4),
      circuit::makeTwinShift(3), circuit::makeArbiter(3),
      circuit::makeFifoCtrl(2),
      circuit::makeRandomSeq(5, 3, 30, static_cast<std::uint64_t>(GetParam()))};
  for (const Netlist& n : circuits) {
    bdd::Manager m(0);
    const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 3}));
    const std::vector<bdd::Bdd> delta = transitionFunctions(s);
    const circuit::ConcreteSim csim(n);
    const std::size_t nl = n.latches().size();
    const std::size_t ni = n.inputs().size();
    for (int trial = 0; trial < 12; ++trial) {
      std::vector<bool> state(nl);
      std::vector<bool> inputs(ni);
      for (std::size_t i = 0; i < nl; ++i) state[i] = rng.flip();
      for (std::size_t i = 0; i < ni; ++i) inputs[i] = rng.flip();
      const std::vector<bool> next = csim.step(state, inputs);
      std::vector<bool> assignment(m.numVars(), false);
      for (std::size_t p = 0; p < nl; ++p) {
        assignment[s.currentVar(p)] = state[p];
      }
      for (std::size_t i = 0; i < ni; ++i) {
        assignment[s.inputVar(i)] = inputs[i];
      }
      for (std::size_t c = 0; c < nl; ++c) {
        EXPECT_EQ(m.eval(delta[c], assignment),
                  next[s.latchOfComponent(c)])
            << n.name() << " component " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimAgreement, ::testing::Range(0, 8));

TEST(Simulate, LatchValueInjection) {
  // Driving latch outputs with explicit functions: a counter whose state
  // is pinned to a constant must produce that state's successor.
  const Netlist n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  // Pin state to 0b011 (in component order).
  std::vector<bdd::Bdd> pinned(3);
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t latch = s.latchOfComponent(c);
    pinned[c] = (latch == 0 || latch == 1) ? m.one() : m.zero();
  }
  const SimResult r = simulate(s, pinned);
  // With en=1, next = 4 = 0b100.
  std::vector<bool> assignment(m.numVars(), false);
  assignment[s.inputVar(0)] = true;
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t latch = s.latchOfComponent(c);
    EXPECT_EQ(m.eval(r.next_state[c], assignment), latch == 2);
  }
}

TEST(Simulate, OutputsAreProduced) {
  const Netlist n = circuit::makeArbiter(3);
  bdd::Manager m(0);
  const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const SimResult r = simulate(s, {});
  EXPECT_EQ(r.outputs.size(), n.outputs().size());
  for (const bdd::Bdd& o : r.outputs) EXPECT_FALSE(o.isNull());
}

TEST(Simulate, WrongWidthRejected) {
  const Netlist n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  const StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  std::vector<bdd::Bdd> two(2, m.one());
  EXPECT_THROW((void)simulate(s, two), std::invalid_argument);
}

}  // namespace
}  // namespace bfvr::sym
