// Shared engine plumbing: budget enforcement, peak-live-node sampling and
// the per-iteration trace recorder behind ReachOptions::trace.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>

#include "io/checkpoint.hpp"
#include "obs/obs.hpp"
#include "reach/engine.hpp"

namespace bfvr::reach::internal {

/// Thrown inside the iteration loop when the wall-clock budget expires.
struct TimeBudgetExceeded {};

/// Samples the paper's Peak(K) metric after every major step and enforces
/// the run budget.
class RunGuard {
 public:
  RunGuard(Manager& m, const Budget& budget) : m_(m), budget_(budget) {}

  /// Record the current live node count; throw on exhausted budgets.
  void sample() {
    const std::size_t live = m_.liveNodeCount();
    if (live > peak_) peak_ = live;
    if (budget_.max_live_nodes != 0 && live > budget_.max_live_nodes) {
      throw bdd::NodeBudgetExceeded(budget_.max_live_nodes, live);
    }
    if (budget_.max_seconds > 0.0 && timer_.seconds() > budget_.max_seconds) {
      throw TimeBudgetExceeded{};
    }
  }

  std::size_t peak() const noexcept { return peak_; }
  double seconds() const noexcept { return timer_.seconds(); }

 private:
  Manager& m_;
  Budget budget_;
  Timer timer_;
  std::size_t peak_ = 0;
};

/// Per-iteration trace recorder. Disabled (every member a near-no-op)
/// unless ReachOptions::trace is set; engines therefore call it
/// unconditionally. While enabled it also installs itself as the manager's
/// EventSink (forwarding to any previously installed sink) so GC/reorder/
/// budget events land in the trace.
class Tracer {
 public:
  Tracer(Manager& m, const ReachOptions& opts, RunGuard& guard)
      : m_(m),
        guard_(guard),
        record_(opts.trace),
        stream_(opts.on_iteration ? &opts.on_iteration : nullptr) {
    if (record_) recorder_.emplace(m, trace_.events);
  }

  /// True when iteration records are being built at all — for the result's
  /// trace (ReachOptions::trace), for live streaming (on_iteration), or
  /// both. The per-iteration census cost applies in every enabled case.
  bool enabled() const noexcept { return record_ || stream_ != nullptr; }

  /// Scoped phase attribution; a no-op scope when disabled.
  obs::PhaseTimer::Scope phase(obs::Phase p) {
    return enabled() ? timer_.scope(p) : obs::PhaseTimer::Scope(nullptr);
  }

  /// Run `f` under the given phase scope and return its result.
  template <typename F>
  decltype(auto) timed(obs::Phase p, F&& f) {
    const auto scope = phase(p);
    return std::forward<F>(f)();
  }

  /// Open iteration `iteration`'s record. `frontier` is invoked only when
  /// tracing is on; it returns {states, (shared) nodes} of the set this
  /// iteration simulates from, so untraced runs skip the counting cost.
  template <typename F>
  void beginIteration(unsigned iteration, F&& frontier) {
    if (!enabled()) return;
    cur_ = obs::IterationRecord{};
    cur_.iteration = iteration;
    const auto [states, nodes] = frontier();
    cur_.frontier_states = states;
    cur_.frontier_nodes = nodes;
    iter_ops_ = m_.stats();
    iter_phases_ = timer_.totals();
  }

  /// Close the current record: phase split, counter deltas and node census.
  /// Streams the record (ReachOptions::on_iteration) before appending it to
  /// the trace, so a client sees the iteration as soon as it completes.
  void endIteration() {
    if (!enabled()) return;
    cur_.phase_seconds = timer_.totals().since(iter_phases_);
    cur_.ops_delta = m_.stats().since(iter_ops_);
    const std::size_t live = m_.liveNodeCount();
    cur_.live_nodes = live;
    cur_.peak_nodes = std::max(guard_.peak(), live);
    if (stream_ != nullptr) {
      try {
        (*stream_)(cur_);
      } catch (...) {
        // A streaming failure (dead client, full pipe) must not abort the
        // run; the consumer notices through its own channel.
      }
    }
    if (record_) trace_.iterations.push_back(cur_);
  }

  /// Attach the collected trace to the result (uninstalling the event
  /// recorder first). Called once, after the iteration loop ends — normally
  /// or by budget exception.
  void finish(ReachResult& r) {
    if (!record_) return;
    trace_.phase_totals = timer_.totals();
    recorder_.reset();
    r.trace.emplace(std::move(trace_));
    trace_ = obs::RunTrace{};
  }

 private:
  Manager& m_;
  RunGuard& guard_;
  bool record_;
  const std::function<void(const obs::IterationRecord&)>* stream_;
  obs::PhaseTimer timer_;
  obs::RunTrace trace_;
  std::optional<obs::ScopedEventRecorder> recorder_;
  obs::IterationRecord cur_;
  bdd::OpStats iter_ops_;
  obs::PhaseSeconds iter_phases_;
};

/// Apply the run's reorder policy before the iteration loop: bind each
/// latch's (v, u) pair into a reorder group. Pairs that are not at adjacent
/// levels (the manager was reordered before this run) are left unbound.
inline void applyReorderPolicy(sym::StateSpace& s, const ReachOptions& opts) {
  if (!opts.reorder.group_state_pairs) return;
  Manager& m = s.manager();
  for (unsigned i = 0; i < s.numLatches(); ++i) {
    const unsigned pair[2] = {s.currentVar(i), s.paramVar(i)};
    if (m.levelOfVar(pair[1]) == m.levelOfVar(pair[0]) + 1) {
      m.bindVarGroup(pair);
    }
  }
}

/// Per-iteration reorder hook (called from the engines' safe point, next to
/// maybeGc()).
inline void maybeStepReorder(Manager& m, const ReachOptions& opts,
                             unsigned iteration) {
  if (opts.reorder.every != 0 && iteration % opts.reorder.every == 0) {
    m.reorder(opts.reorder.method);
  }
}

/// Whether this iteration ends with a snapshot (ReachOptions::checkpoint_*).
inline bool checkpointDue(const ReachOptions& opts, unsigned iteration) {
  return opts.checkpoint_every != 0 && !opts.checkpoint_path.empty() &&
         iteration % opts.checkpoint_every == 0;
}

/// Stamp the manager's current variable order onto the checkpoint and write
/// it. Engines call this from the post-iteration safe point — after
/// maybeStepReorder()/maybeGc() — so the recorded order is the one the next
/// iteration would run with.
inline void writeCheckpoint(Manager& m, const ReachOptions& opts,
                            io::Checkpoint c) {
  c.level2var = m.currentOrder();
  io::save(opts.checkpoint_path, c);
}

/// Runs `body` (the iteration loop) and folds budget violations into the
/// result's status; records time/peak/op metrics and, when tracing is on,
/// attaches the per-iteration trace.
template <typename Body>
ReachResult runGuarded(Manager& m, const ReachOptions& opts, Body&& body) {
  ReachResult r;
  RunGuard guard(m, opts.budget);
  Tracer tracer(m, opts, guard);
  const bdd::OpStats before = m.stats();
  try {
    body(r, guard, tracer);
    r.status = RunStatus::kDone;
  } catch (const bdd::NodeBudgetExceeded& e) {
    r.status = RunStatus::kMemOut;
    r.message = e.what();
  } catch (const TimeBudgetExceeded&) {
    r.status = RunStatus::kTimeOut;
    r.message = "time budget " + std::to_string(opts.budget.max_seconds) +
                "s exceeded";
  } catch (const bdd::Interrupted& e) {
    // Cooperative interrupt (Manager::setInterruptCheck): a job-runner
    // deadline maps to the paper's T.O. outcome, a portfolio cancellation
    // to its own status. Either way the manager stays usable for the next
    // job on this worker.
    r.status = e.reason() == bdd::Interrupted::Reason::kDeadline
                   ? RunStatus::kTimeOut
                   : RunStatus::kCancelled;
    r.message = e.what();
  }
  r.seconds = guard.seconds();
  r.peak_live_nodes = guard.peak();
  r.ops = m.stats().since(before);
  tracer.finish(r);
  return r;
}

}  // namespace bfvr::reach::internal
