// Safety checking with counterexample traces (the future-work model
// checker built on the Fig. 2 flow).
#include <gtest/gtest.h>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/invariant.hpp"

namespace bfvr::reach {
namespace {

using circuit::Netlist;
using circuit::OrderKind;

/// Replays the trace through the concrete simulator and checks it ends in
/// a state satisfying `bad_pred` (a callback over latch-order bits).
template <typename Pred>
void verifyTrace(const Netlist& n, const InvariantResult& r,
                 Pred&& bad_pred) {
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.bad_state.has_value());
  const circuit::ConcreteSim sim(n);
  std::vector<bool> cur = sim.initialState();
  if (!r.trace.empty()) {
    EXPECT_EQ(r.trace.front().state, cur) << "trace must start at init";
  }
  for (const TraceStep& step : r.trace) {
    EXPECT_EQ(step.state, cur) << "trace discontinuity";
    cur = sim.step(cur, step.inputs);
  }
  EXPECT_EQ(cur, *r.bad_state);
  EXPECT_TRUE(bad_pred(cur));
}

/// chi of a predicate over latch-order state bits, by enumeration (small
/// circuits only).
template <typename Pred>
bdd::Bdd predChar(sym::StateSpace& s, Pred&& pred) {
  bdd::Manager& m = s.manager();
  const std::size_t nl = s.numLatches();
  bdd::Bdd chi = m.zero();
  for (std::uint64_t st = 0; st < (std::uint64_t{1} << nl); ++st) {
    std::vector<bool> bits(nl);
    for (std::size_t p = 0; p < nl; ++p) bits[p] = ((st >> p) & 1U) != 0;
    if (!pred(bits)) continue;
    bdd::Bdd cube = m.one();
    for (std::size_t p = 0; p < nl; ++p) {
      const bdd::Bdd v = m.var(s.currentVar(p));
      cube &= bits[p] ? v : ~v;
    }
    chi |= cube;
  }
  return chi;
}

TEST(Invariant, HoldsOnUnreachableBadStates) {
  // Counter mod 11 never reaches values >= 11.
  const Netlist n = circuit::makeCounter(4, 11);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  auto ge11 = [](const std::vector<bool>& b) {
    unsigned v = 0;
    for (unsigned i = 0; i < 4; ++i) {
      if (b[i]) v |= 1U << i;
    }
    return v >= 11;
  };
  const InvariantResult r = checkInvariant(s, predChar(s, ge11));
  EXPECT_EQ(r.status, RunStatus::kDone);
  EXPECT_TRUE(r.holds);
  EXPECT_TRUE(r.trace.empty());
}

TEST(Invariant, FindsCounterexampleAtExactDepth) {
  // Reaching counter value 7 takes exactly 7 enabled steps.
  const Netlist n = circuit::makeCounter(4, 11);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  auto is7 = [](const std::vector<bool>& b) {
    return b[0] && b[1] && b[2] && !b[3];
  };
  const InvariantResult r = checkInvariant(s, predChar(s, is7));
  EXPECT_EQ(r.status, RunStatus::kDone);
  ASSERT_FALSE(r.holds);
  EXPECT_EQ(r.trace.size(), 7U);
  verifyTrace(n, r, is7);
  // Every step must have the enable asserted.
  for (const TraceStep& st : r.trace) EXPECT_TRUE(st.inputs.at(0));
}

TEST(Invariant, ViolationInInitialState) {
  const Netlist n = circuit::makeLfsr(4);  // init state 0001
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  auto is_init = [](const std::vector<bool>& b) {
    return b[0] && !b[1] && !b[2] && !b[3];
  };
  const InvariantResult r = checkInvariant(s, predChar(s, is_init));
  ASSERT_FALSE(r.holds);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.iterations, 0U);
  verifyTrace(n, r, is_init);
}

TEST(Invariant, EmptyBadSetHoldsTrivially) {
  const Netlist n = circuit::makeJohnson(4);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const InvariantResult r = checkInvariant(s, m.zero());
  EXPECT_TRUE(r.holds);
}

TEST(Invariant, EarlyTerminationBeatsFullTraversal) {
  // Bad state adjacent to init: one iteration suffices even though the
  // full reachable set needs 2^8 - 1 iterations (LFSR).
  const Netlist n = circuit::makeLfsr(8);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const circuit::ConcreteSim sim(n);
  const std::vector<bool> succ = sim.step(sim.initialState(), {true});
  auto is_succ = [&](const std::vector<bool>& b) { return b == succ; };
  const InvariantResult r = checkInvariant(s, predChar(s, is_succ));
  ASSERT_FALSE(r.holds);
  EXPECT_EQ(r.iterations, 1U);
  EXPECT_EQ(r.trace.size(), 1U);
  verifyTrace(n, r, is_succ);
}

class InvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(InvariantSweep, RandomTargetStatesGetValidTraces) {
  // Pick random reachable states of random circuits as "bad" and validate
  // the returned trace end-to-end.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Netlist n = circuit::makeRandomSeq(6, 3, 30, seed + 100);
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  const std::uint64_t target = (*oracle)[seed % oracle->size()];
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  auto is_target = [&](const std::vector<bool>& b) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i]) v |= std::uint64_t{1} << i;
    }
    return v == target;
  };
  const InvariantResult r = checkInvariant(s, predChar(s, is_target));
  ASSERT_EQ(r.status, RunStatus::kDone);
  verifyTrace(n, r, is_target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep, ::testing::Range(0, 10));

TEST(Invariant, BudgetsAreHonored) {
  const Netlist n = circuit::makeLfsr(12);
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  ReachOptions opts;
  opts.budget.max_seconds = 1e-9;
  // An unreachable bad state forces a full traversal, which the budget cuts
  // short. (All-zero is the LFSR lock-up state, never reached from seed 1.)
  bdd::Bdd bad = m.one();
  for (std::size_t p = 0; p < s.numLatches(); ++p) {
    bad &= ~m.var(s.currentVar(p));
  }
  const InvariantResult r = checkInvariant(s, bad, opts);
  EXPECT_EQ(r.status, RunStatus::kTimeOut);
}

}  // namespace
}  // namespace bfvr::reach
