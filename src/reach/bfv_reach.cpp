// The paper's reachability flow (Fig. 2): symbolic simulation for images,
// re-parameterization and set union directly on the canonical functional
// vector — no characteristic function is ever built during the run. The
// kCdec backend performs the same steps on the conjunctive decomposition
// (§2.7), using the constrain-based union.
#include "reach/internal.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

namespace {

/// Rename a canonical vector (components over the u bank) onto the v bank.
/// The banks are interleaved, so the renaming preserves relative order and
/// canonicity.
std::vector<Bdd> renameToCurrent(const sym::StateSpace& s,
                                 const std::vector<Bdd>& comps) {
  Manager& m = s.manager();
  std::vector<Bdd> out(comps.size());
  for (std::size_t i = 0; i < comps.size(); ++i) {
    out[i] = m.permute(comps[i], s.permParamToCurrent());
  }
  return out;
}

std::vector<unsigned> simulationParams(const sym::StateSpace& s) {
  std::vector<unsigned> params = s.currentVars();
  params.insert(params.end(), s.inputVars().begin(), s.inputVars().end());
  return params;
}

void runBfvBackend(sym::StateSpace& s, const ReachOptions& opts,
                   ReachResult& r, internal::RunGuard& guard,
                   internal::Tracer& tracer) {
  Manager& m = s.manager();
  const std::vector<unsigned> params = simulationParams(s);
  internal::applyReorderPolicy(s, opts);
  Bfv reached, from;
  if (opts.resume != nullptr && opts.resume->reached_bfv.has_value()) {
    r.iterations = opts.resume->iteration;
    reached = *opts.resume->reached_bfv;
    from = *opts.resume->from_bfv;
  } else {
    reached = Bfv::point(m, s.currentVars(), s.initialBits());
    from = reached;
  }
  for (;;) {
    ++r.iterations;
    tracer.beginIteration(r.iterations, [&] {
      return std::pair{from.countStates(), from.sharedSize()};
    });
    const sym::SimResult sim = tracer.timed(
        obs::Phase::kImage, [&] { return sym::simulate(s, from.comps()); });
    guard.sample();
    // Re-parameterize onto the u bank, then rename back to the v bank.
    // img_u stays at iteration scope (its handles live exactly as long as
    // they did before tracing existed); both steps are one kReparam phase.
    const Bfv img_u = tracer.timed(obs::Phase::kReparam, [&] {
      return bfv::reparameterize(m, sim.next_state, s.paramVars(), params,
                                 opts.reparam);
    });
    guard.sample();
    const Bfv img = tracer.timed(obs::Phase::kReparam, [&] {
      return Bfv::fromComponents(m, s.currentVars(),
                                 renameToCurrent(s, img_u.comps()),
                                 /*trusted=*/true);
    });
    const Bfv next = tracer.timed(obs::Phase::kUnion,
                                  [&] { return setUnion(reached, img); });
    guard.sample();
    const bool fixpoint = next == reached;
    if (!fixpoint) {
      const auto check = tracer.phase(obs::Phase::kCheck);
      reached = next;
      // Selection heuristic: simulate from the smaller of the image and the
      // reached set. (BFVs have no set difference — §2 has no negation — so
      // the whole image plays the frontier role.)
      if (opts.use_frontier && img.sharedSize() < reached.sharedSize()) {
        from = img;
      } else {
        from = reached;
      }
    }
    tracer.endIteration();
    if (fixpoint) break;
    internal::maybeStepReorder(m, opts, r.iterations);
    m.maybeGc();
    guard.sample();
    if (internal::checkpointDue(opts, r.iterations)) {
      io::Checkpoint c;
      c.engine = "bfv";
      c.kind = io::RootKind::kBfv;
      c.iteration = r.iterations;
      c.choice_vars.assign(s.currentVars().begin(), s.currentVars().end());
      c.reached = reached.comps();
      c.frontier = from.comps();
      c.reached_empty = reached.isEmpty();
      c.frontier_empty = from.isEmpty();
      internal::writeCheckpoint(m, opts, std::move(c));
    }
    if (opts.max_iterations != 0 && r.iterations >= opts.max_iterations) {
      break;
    }
  }
  r.states = reached.countStates();
  r.bfv_nodes = reached.sharedSize();
  r.reached_bfv = reached;
  // Table 3's chi size: built once, after the measured run.
  r.reached_chi = reached.toChar();
  r.chi_nodes = m.nodeCount(r.reached_chi);
}

void runCdecBackend(sym::StateSpace& s, const ReachOptions& opts,
                    ReachResult& r, internal::RunGuard& guard,
                    internal::Tracer& tracer) {
  using cdec::Cdec;
  Manager& m = s.manager();
  const std::vector<unsigned> params = simulationParams(s);
  internal::applyReorderPolicy(s, opts);
  Cdec reached, from;
  if (opts.resume != nullptr && opts.resume->reached_cdec.has_value()) {
    r.iterations = opts.resume->iteration;
    reached = *opts.resume->reached_cdec;
    from = *opts.resume->from_cdec;
  } else {
    reached =
        Cdec::fromBfv(Bfv::point(m, s.currentVars(), s.initialBits()));
    from = reached;
  }
  for (;;) {
    ++r.iterations;
    tracer.beginIteration(r.iterations, [&] {
      return std::pair{from.countStates(), from.sharedSize()};
    });
    // Simulation needs evaluating components: derive the BFV view (two
    // cofactor operations per component).
    const Bfv from_bfv =
        tracer.timed(obs::Phase::kConvert, [&] { return from.toBfv(); });
    const sym::SimResult sim = tracer.timed(obs::Phase::kImage, [&] {
      return sym::simulate(s, from_bfv.comps());
    });
    guard.sample();
    // img_u stays at iteration scope (handle lifetimes as before tracing).
    const Cdec img_u = tracer.timed(obs::Phase::kReparam, [&] {
      return cdec::reparameterizeCdec(m, sim.next_state, s.paramVars(),
                                      params, opts.reparam);
    });
    guard.sample();
    const Cdec img_v = tracer.timed(obs::Phase::kReparam, [&] {
      // Rename constraints u -> v; constrain-canonical form is preserved by
      // the order-preserving renaming.
      std::vector<Bdd> renamed(img_u.constraints().size());
      for (std::size_t i = 0; i < renamed.size(); ++i) {
        renamed[i] =
            m.permute(img_u.constraints()[i], s.permParamToCurrent());
      }
      return Cdec::fromConstraints(m, s.currentVars(), std::move(renamed));
    });
    const Cdec next = tracer.timed(obs::Phase::kUnion,
                                   [&] { return setUnion(reached, img_v); });
    guard.sample();
    const bool fixpoint = next == reached;
    if (!fixpoint) {
      const auto check = tracer.phase(obs::Phase::kCheck);
      reached = next;
      if (opts.use_frontier && img_v.sharedSize() < reached.sharedSize()) {
        from = img_v;
      } else {
        from = reached;
      }
    }
    tracer.endIteration();
    if (fixpoint) break;
    internal::maybeStepReorder(m, opts, r.iterations);
    m.maybeGc();
    guard.sample();
    if (internal::checkpointDue(opts, r.iterations)) {
      io::Checkpoint c;
      c.engine = "cdec";
      c.kind = io::RootKind::kCdec;
      c.iteration = r.iterations;
      c.choice_vars.assign(s.currentVars().begin(), s.currentVars().end());
      c.reached = reached.constraints();
      c.frontier = from.constraints();
      c.reached_empty = reached.isEmpty();
      c.frontier_empty = from.isEmpty();
      internal::writeCheckpoint(m, opts, std::move(c));
    }
    if (opts.max_iterations != 0 && r.iterations >= opts.max_iterations) {
      break;
    }
  }
  r.states = reached.countStates();
  r.reached_bfv = reached.toBfv();
  r.bfv_nodes = r.reached_bfv->sharedSize();
  r.reached_chi = reached.toChar();
  r.chi_nodes = m.nodeCount(r.reached_chi);
}

}  // namespace

ReachResult reachBfv(sym::StateSpace& s, const ReachOptions& opts) {
  Manager& m = s.manager();
  return internal::runGuarded(
      m, opts, [&](ReachResult& r, internal::RunGuard& guard,
                   internal::Tracer& tracer) {
        if (opts.backend == SetBackend::kBfv) {
          runBfvBackend(s, opts, r, guard, tracer);
        } else {
          runCdecBackend(s, opts, r, guard, tracer);
        }
      });
}

}  // namespace bfvr::reach
