// Deterministic pseudo-random number generation for workload generators and
// property tests. A thin wrapper around a fixed xoshiro256** implementation so
// results are reproducible across platforms and standard-library versions
// (std::mt19937 streams are portable, but distributions are not).
#pragma once

#include <cstdint>
#include <vector>

namespace bfvr {

/// Portable deterministic RNG (xoshiro256**). Same seed => same stream on
/// every platform and compiler.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Bernoulli draw: true with probability num/den. Requires den > 0.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Fair coin.
  bool flip() noexcept { return (next() & 1U) != 0U; }

  /// Uniform double in [0, 1).
  double real() noexcept;

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.empty()) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Random permutation of {0, .., n-1}.
  std::vector<unsigned> permutation(unsigned n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace bfvr
