#!/usr/bin/env python3
"""Deterministic seeded chaos TCP proxy for the bfv_serve wire protocol.

Sits between bfv_client and bfv_serve and injects the network failures a
crash-safe serving tier must shrug off:

  torn frames         forward only a prefix of a frame, then sever the
                      connection (the kill-9-mid-send shape; the server
                      must report a wire error and drop only that session)
  mid-frame stalls    pause between a frame's first and last byte (the
                      slow-loris shape; bounded by the server's
                      --frame-timeout, survivable below it)
  connection drops    sever at a clean frame boundary (client reconnects
                      and resubmits under the same idempotency keys)
  duplicated submits  forward a Submit frame twice (the retry-after-lost-
                      Accepted shape; the journal's idempotency dedup must
                      execute it once)

Every decision comes from a per-connection random.Random seeded with
(--seed, connection index), so a failing soak replays exactly with the
same seed — no wall-clock or PID leaks into the schedule.

The client->server direction is frame-aware (header magic "BFVS", u32
payload length at offset 8) so faults land on frame boundaries or
deliberately inside one frame, never as uninterpretable byte noise; the
server->client direction is relayed verbatim. Counters are written as
CHAOS_<name>.json on SIGTERM/SIGINT so a soak can assert each fault shape
actually fired.

Usage:
    chaos_proxy.py --listen PORT --connect HOST:PORT --seed N
                   [--tear P] [--stall P] [--stall-ms MS] [--drop P]
                   [--dup P] [--name chaos]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import random
import signal
import socket
import struct
import sys
import threading

FRAME_HEADER = 16
FRAME_MAGIC = b"BFVS"
TYPE_SUBMIT = 3


class Stats:
    def __init__(self):
        self.lock = threading.Lock()
        self.connections = 0
        self.frames_forwarded = 0
        self.torn = 0
        self.stalls = 0
        self.drops = 0
        self.duplicated_submits = 0

    def bump(self, field, n=1):
        with self.lock:
            setattr(self, field, getattr(self, field) + n)

    def snapshot(self):
        with self.lock:
            return {
                "connections": self.connections,
                "frames_forwarded": self.frames_forwarded,
                "torn_frames": self.torn,
                "mid_frame_stalls": self.stalls,
                "connection_drops": self.drops,
                "duplicated_submits": self.duplicated_submits,
            }


STATS = Stats()


def read_exact(sock, n):
    """Read exactly n bytes; returns fewer only at EOF."""
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            break
        buf += chunk
    return buf


def sever(*socks):
    """Hard close: RST where possible, so the peer sees the break at once.

    shutdown() before close() matters: close() alone does not wake a
    sibling pump thread blocked in recv() on the same socket (the in-
    flight syscall pins the descriptor), which would leave the *other*
    side of the relay open forever — the peer would never see the break.
    """
    for s in socks:
        try:
            s.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                         struct.pack("ii", 1, 0))
        except OSError:
            pass
        try:
            s.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            s.close()
        except OSError:
            pass


def pump_c2s(client, server, rng, args, conn_id):
    """Frame-aware client->server relay with fault injection."""
    try:
        while True:
            header = read_exact(client, FRAME_HEADER)
            if len(header) < FRAME_HEADER:
                break  # client went away (EOF or its own torn send)
            if header[:4] != FRAME_MAGIC:
                # Not a frame we understand: relay verbatim and go dumb —
                # the server's codec is the component whose rejection path
                # we want to exercise, not ours.
                server.sendall(header)
                while True:
                    data = client.recv(65536)
                    if not data:
                        return
                    server.sendall(data)
            (length,) = struct.unpack_from("<I", header, 8)
            payload = read_exact(client, length)
            if len(payload) < length:
                break
            frame = header + payload

            roll = rng.random()
            if roll < args.drop:
                STATS.bump("drops")
                print(f"chaos[{conn_id}]: drop at frame boundary",
                      file=sys.stderr)
                sever(client, server)
                return
            roll = rng.random()
            if roll < args.tear and length > 0:
                cut = FRAME_HEADER + rng.randrange(length)
                STATS.bump("torn")
                print(f"chaos[{conn_id}]: tear frame after {cut} bytes",
                      file=sys.stderr)
                server.sendall(frame[:cut])
                sever(client, server)
                return
            roll = rng.random()
            if roll < args.stall and length > 0:
                cut = FRAME_HEADER + rng.randrange(length)
                STATS.bump("stalls")
                print(f"chaos[{conn_id}]: stall {args.stall_ms}ms mid-frame",
                      file=sys.stderr)
                server.sendall(frame[:cut])
                threading.Event().wait(args.stall_ms / 1000.0)
                server.sendall(frame[cut:])
            else:
                server.sendall(frame)
            STATS.bump("frames_forwarded")
            if header[5] == TYPE_SUBMIT and rng.random() < args.dup:
                STATS.bump("duplicated_submits")
                print(f"chaos[{conn_id}]: duplicate Submit", file=sys.stderr)
                server.sendall(frame)
    except OSError:
        pass
    finally:
        sever(client, server)


def pump_s2c(server, client):
    """Verbatim server->client relay."""
    try:
        while True:
            data = server.recv(65536)
            if not data:
                break
            client.sendall(data)
    except OSError:
        pass
    finally:
        sever(client, server)


def serve(args):
    host, _, port = args.connect.rpartition(":")
    upstream = (host or "127.0.0.1", int(port))
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", args.listen))
    listener.listen(64)
    print(f"chaos: listening on 127.0.0.1:{args.listen} -> "
          f"{upstream[0]}:{upstream[1]} seed={args.seed}", file=sys.stderr)

    def shut(_sig, _frm):
        path = f"CHAOS_{args.name}.json"
        with open(path, "w") as f:
            json.dump(STATS.snapshot(), f, indent=2)
            f.write("\n")
        print(f"chaos: wrote {path}", file=sys.stderr)
        listener.close()
        sys.exit(0)

    signal.signal(signal.SIGTERM, shut)
    signal.signal(signal.SIGINT, shut)

    conn_id = 0
    while True:
        try:
            client, _addr = listener.accept()
        except OSError:
            return
        conn_id += 1
        STATS.bump("connections")
        try:
            server = socket.create_connection(upstream, timeout=5.0)
            server.settimeout(None)
        except OSError as e:
            # Upstream down (mid-restart in the soak): the client sees a
            # refused connection, which is exactly what --retry is for.
            print(f"chaos[{conn_id}]: upstream unavailable: {e}",
                  file=sys.stderr)
            sever(client)
            continue
        rng = random.Random(args.seed * 1_000_003 + conn_id)
        threading.Thread(target=pump_c2s,
                         args=(client, server, rng, args, conn_id),
                         daemon=True).start()
        threading.Thread(target=pump_s2c, args=(server, client),
                         daemon=True).start()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--listen", type=int, required=True,
                    metavar="PORT", help="local port to accept clients on")
    ap.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="upstream bfv_serve tcp endpoint")
    ap.add_argument("--seed", type=int, default=1,
                    help="fault-schedule seed (per-connection derivation)")
    ap.add_argument("--tear", type=float, default=0.0,
                    help="per-frame probability of a torn frame + sever")
    ap.add_argument("--stall", type=float, default=0.0,
                    help="per-frame probability of a mid-frame stall")
    ap.add_argument("--stall-ms", type=float, default=200.0,
                    help="mid-frame stall duration (keep below the "
                         "server's --frame-timeout to be survivable)")
    ap.add_argument("--drop", type=float, default=0.0,
                    help="per-frame probability of a clean-boundary drop")
    ap.add_argument("--dup", type=float, default=0.0,
                    help="per-Submit probability of a duplicated frame")
    ap.add_argument("--name", default="chaos",
                    help="tag for the CHAOS_<name>.json counters file")
    serve(ap.parse_args())


if __name__ == "__main__":
    main()
