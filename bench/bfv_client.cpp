// Client CLI of the reachability service: push a manifest of jobs to a
// running bfv_serve as one tenant, stream results, and print the same
// per-job table and status roll-up as the batch runner.
//
//   bfv_client --connect SPEC --tenant NAME [manifest]
//              [--window N] [--stats] [--shutdown[=drain|now]] [--quiet]
//              [--strict] [--deadline S] [--retry N] [--idem PREFIX]
//
//   --connect SPEC    unix:PATH or tcp:HOST:PORT (required)
//   --tenant NAME     tenant to submit as (required)
//   manifest          manifest file of jobs to submit (omit with --stats /
//                     --shutdown for control-only invocations)
//   --window N        max submissions awaiting admission at once
//                     (default 8; bounds client-side memory, exercises the
//                     server's fair queue rather than its accept path)
//   --stats           fetch and print the live server snapshot (counters,
//                     queue depth, metrics, span timelines, flight ring)
//   --shutdown[=drain|now]  ask the server to stop (default drain)
//   --quiet           suppress per-job rows (roll-up still prints)
//   --strict          exit 1 also on memout/timeout jobs
//   --deadline S      overall wall-clock budget in seconds; exit 3 when it
//                     expires before every job finished
//   --retry N         survive up to N broken connections: reconnect with
//                     backoff and resubmit every unfinished line under its
//                     original idempotency key, so a journaling server
//                     reattaches the in-flight jobs instead of rerunning
//                     them (duplicate Accepted/JobDone frames are absorbed)
//   --idem PREFIX     idempotency-key prefix; per-line keys are
//                     PREFIX-<index>. Defaults to a fresh value per
//                     invocation (tenant-pid-nanos), so retries within one
//                     run dedup but separate runs do not. Pass an explicit
//                     PREFIX to make resubmission safe across client
//                     restarts too.
//
// Exit status: 0 when every submitted job completed "done" (or with
// --strict, no job erred/memout/timeout and none were rejected); 1
// otherwise, or on any connection/protocol failure; 2 on a usage error;
// 3 when --deadline expired.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"

using namespace bfvr;

namespace {

struct Args {
  std::string connect;
  std::string tenant;
  std::string manifest;
  unsigned window = 8;
  bool stats = false;
  bool do_shutdown = false;
  bool drain = true;
  bool quiet = false;
  bool strict = false;
  double deadline = 0.0;  ///< 0 = no deadline
  unsigned retry = 0;     ///< reconnect attempts after a broken connection
  std::string idem_prefix;
};

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      a.connect = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      a.tenant = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      a.window = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--deadline" && i + 1 < argc) {
      a.deadline = std::stod(argv[++i]);
    } else if (arg == "--retry" && i + 1 < argc) {
      a.retry = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--idem" && i + 1 < argc) {
      a.idem_prefix = argv[++i];
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--shutdown" || arg == "--shutdown=drain") {
      a.do_shutdown = true;
    } else if (arg == "--shutdown=now") {
      a.do_shutdown = true;
      a.drain = false;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (!arg.empty() && arg[0] != '-' && a.manifest.empty()) {
      a.manifest = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (a.connect.empty() || a.tenant.empty()) return false;
  return !a.manifest.empty() || a.stats || a.do_shutdown;
}

/// Raw manifest lines (comments/blanks stripped) — submitted verbatim, so
/// the server's parser is the one source of truth for the grammar.
std::vector<std::string> manifestLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::vector<std::string> out;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    std::string line(buf);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                             line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    out.push_back(std::move(line));
  }
  std::fclose(f);
  return out;
}

/// Everything the client remembers about one manifest line, surviving
/// reconnects (per-connection submission state lives elsewhere).
struct LineState {
  std::string line;
  std::string idem;
  bool finished = false;  ///< JobDone or Rejected seen
  bool rejected = false;
  svc::JobDone done;
};

/// Thrown when --deadline expires.
struct DeadlineExpired {};

using Clock = std::chrono::steady_clock;

class BatchRunner {
 public:
  BatchRunner(const Args& args, std::vector<LineState> lines,
              Clock::time_point deadline_at)
      : args_(args), lines_(std::move(lines)), deadline_at_(deadline_at) {}

  /// Run the whole batch over the supplied (fresh) connection. Throws
  /// svc::Error on a broken connection (the caller may reconnect and call
  /// again: finished lines are kept, unfinished ones resubmitted under
  /// their original idempotency keys) and DeadlineExpired on --deadline.
  void run(svc::Client& client) {
    // Per-connection state: what is in flight on *this* connection.
    std::map<std::uint64_t, std::size_t> pending;  // tag -> line index
    std::map<std::uint64_t, std::size_t> by_job;   // job id -> line index
    std::vector<bool> submitted(lines_.size(), false);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].finished) submitted[i] = true;  // nothing to do
    }
    std::size_t next_submit = 0;
    const auto unfinished = [&] {
      std::size_t n = 0;
      for (const LineState& l : lines_) n += l.finished ? 0 : 1;
      return n;
    };
    while (unfinished() > 0) {
      // Keep up to `window` submissions awaiting admission.
      while (pending.size() < args_.window) {
        while (next_submit < lines_.size() && submitted[next_submit]) {
          ++next_submit;
        }
        if (next_submit >= lines_.size()) break;
        const std::size_t idx = next_submit;
        pending[client.submit(lines_[idx].line, lines_[idx].idem)] = idx;
        submitted[idx] = true;
        ++next_submit;
      }
      std::optional<svc::Event> ev = client.next(remainingSeconds());
      if (!ev.has_value()) {
        throw svc::Error("server closed the connection mid-batch");
      }
      handle(*ev, pending, by_job);
    }
  }

  /// Seconds left on --deadline (0 = none set ⇒ block forever); throws
  /// when already expired.
  double remainingSeconds() const {
    if (args_.deadline <= 0.0) return 0.0;
    const double left =
        std::chrono::duration<double>(deadline_at_ - Clock::now()).count();
    if (left <= 0.0) throw DeadlineExpired{};
    return left;
  }

  const std::vector<LineState>& lines() const noexcept { return lines_; }
  std::size_t evictions() const noexcept { return evictions_; }

 private:
  void handle(const svc::Event& ev,
              std::map<std::uint64_t, std::size_t>& pending,
              std::map<std::uint64_t, std::size_t>& by_job) {
    if (const auto* acc = std::get_if<svc::Accepted>(&ev)) {
      // A duplicated Submit frame (chaos proxy) can produce an Accepted
      // whose tag we never issued, or a second Accepted for a tag already
      // consumed: both are ignored, so counters never double.
      auto it = pending.find(acc->tag);
      if (it == pending.end()) return;
      by_job[acc->job] = it->second;
      pending.erase(it);
    } else if (const auto* rej = std::get_if<svc::Rejected>(&ev)) {
      auto it = pending.find(rej->tag);
      if (it == pending.end()) return;
      LineState& l = lines_[it->second];
      std::fprintf(stderr, "rejected: %s (%s)\n", l.line.c_str(),
                   rej->reason.c_str());
      l.finished = true;
      l.rejected = true;
      pending.erase(it);
    } else if (const auto* evd = std::get_if<svc::JobEvicted>(&ev)) {
      ++evictions_;
      if (!args_.quiet) {
        std::printf("job %llu evicted from w%u at iteration %llu\n",
                    static_cast<unsigned long long>(evd->job), evd->worker,
                    static_cast<unsigned long long>(evd->iteration));
      }
    } else if (const auto* jd = std::get_if<svc::JobDone>(&ev)) {
      auto it = by_job.find(jd->job);
      if (it == by_job.end() || lines_[it->second].finished) return;
      LineState& l = lines_[it->second];
      l.finished = true;
      l.done = *jd;
      if (!args_.quiet) {
        std::printf("%-40s %-9s %8.3fs %6llu iters  w%u%s%s\n",
                    l.line.substr(0, 40).c_str(), jd->status.c_str(),
                    jd->seconds,
                    static_cast<unsigned long long>(jd->iterations),
                    jd->worker, jd->resumed ? "  resumed" : "",
                    jd->evictions > 0 ? "  (evicted)" : "");
      }
    } else if (const auto* we = std::get_if<svc::WireError>(&ev)) {
      // The server reports a protocol error and then drops the session
      // (a torn or corrupted frame reached it — the chaos-proxy shapes).
      // Surface it as a broken connection so --retry reconnects and
      // resubmits under the same idempotency keys; without a retry budget
      // it propagates and fails the run, as before.
      throw svc::Error("server reported: " + we->message);
    }
    // JobStarted / IterationUpdate / StatsReply: progress noise here.
  }

  const Args& args_;
  std::vector<LineState> lines_;
  Clock::time_point deadline_at_;
  std::size_t evictions_ = 0;
};

std::string defaultIdemPrefix(const std::string& tenant) {
  const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  return tenant + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(nanos);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s --connect unix:PATH|tcp:HOST:PORT --tenant NAME "
                 "[manifest] [--window N] [--stats] [--shutdown[=drain|now]] "
                 "[--quiet] [--strict] [--deadline S] [--retry N] "
                 "[--idem PREFIX]\n",
                 argv[0]);
    return 2;
  }
  svc::ignoreSigpipe();
  const Clock::time_point deadline_at =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(
              args.deadline > 0.0 ? args.deadline : 0.0));
  try {
    std::unique_ptr<svc::Client> client;
    const auto connect = [&] {
      client = std::make_unique<svc::Client>(args.connect, args.tenant);
    };
    // Initial connect participates in the --retry budget too (a restarting
    // server may not be listening yet).
    unsigned attempts_left = args.retry;
    const auto backoff = [&](unsigned attempt) {
      const double s = std::min(0.25 * static_cast<double>(1u << attempt), 2.0);
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    };
    for (unsigned attempt = 0;; ++attempt) {
      try {
        connect();
        break;
      } catch (const svc::Error& e) {
        if (attempts_left == 0) throw;
        --attempts_left;
        std::fprintf(stderr, "connect failed (%s), retrying...\n", e.what());
        backoff(attempt);
      }
    }

    bool ok = true;
    std::size_t done = 0, memout = 0, timeout = 0, cancelled = 0, error = 0,
                rejected = 0, evictions = 0;

    if (!args.manifest.empty()) {
      const std::vector<std::string> raw = manifestLines(args.manifest);
      const std::string prefix = args.idem_prefix.empty()
                                     ? defaultIdemPrefix(args.tenant)
                                     : args.idem_prefix;
      std::vector<LineState> lines(raw.size());
      for (std::size_t i = 0; i < raw.size(); ++i) {
        lines[i].line = raw[i];
        lines[i].idem = prefix + "-" + std::to_string(i);
      }
      BatchRunner runner(args, std::move(lines), deadline_at);
      for (unsigned attempt = 0;; ++attempt) {
        try {
          runner.run(*client);
          break;
        } catch (const svc::Timeout&) {
          throw DeadlineExpired{};
        } catch (const svc::Error& e) {
          if (attempts_left == 0) throw;
          --attempts_left;
          std::fprintf(stderr,
                       "connection lost (%s), reconnecting and resubmitting "
                       "%zu unfinished job(s) under idem prefix %s...\n",
                       e.what(),
                       [&] {
                         std::size_t n = 0;
                         for (const LineState& l : runner.lines()) {
                           n += l.finished ? 0 : 1;
                         }
                         return n;
                       }(),
                       prefix.c_str());
          backoff(attempt);
          // Reconnect may itself fail while the server restarts; each
          // failure burns one retry.
          for (;;) {
            try {
              runner.remainingSeconds();  // deadline check between attempts
              connect();
              break;
            } catch (const svc::Error& e2) {
              if (attempts_left == 0) throw;
              --attempts_left;
              std::fprintf(stderr, "reconnect failed (%s), retrying...\n",
                           e2.what());
              backoff(attempt);
            }
          }
        }
      }
      for (const LineState& l : runner.lines()) {
        if (l.rejected) {
          ++rejected;
          continue;
        }
        if (l.done.status == "done") ++done;
        else if (l.done.status == "M.O.") ++memout;
        else if (l.done.status == "T.O.") ++timeout;
        else if (l.done.status == "cancelled") ++cancelled;
        else ++error;
      }
      evictions = runner.evictions();
      if (rejected > 0) ok = false;
      std::printf(
          "%zu jobs as tenant %s: %zu done, %zu memout, %zu timeout, "
          "%zu cancelled, %zu error, %zu rejected; %zu eviction%s\n",
          raw.size(), args.tenant.c_str(), done, memout, timeout, cancelled,
          error, rejected, evictions, evictions == 1 ? "" : "s");
    }

    if (args.stats) {
      client->queryStats(svc::StatsQuery::kAllSections);
      for (;;) {
        double wait = 0.0;
        if (args.deadline > 0.0) {
          wait = std::chrono::duration<double>(deadline_at - Clock::now())
                     .count();
          if (wait <= 0.0) throw DeadlineExpired{};
        }
        std::optional<svc::Event> ev = client->next(wait);
        if (!ev.has_value()) throw svc::Error("connection closed on stats");
        if (const auto* reply = std::get_if<svc::StatsReply>(&*ev)) {
          std::printf("%s\n", reply->json.c_str());
          break;
        }
      }
    }

    if (args.do_shutdown) client->shutdownServer(args.drain);
    client->bye();

    if (error > 0 || rejected > 0) ok = false;
    if (args.strict && (memout > 0 || timeout > 0 || cancelled > 0)) {
      ok = false;
    }
    if (!args.strict) {
      // Non-strict mirrors bfv_run: resource-model statuses are outcomes,
      // not failures.
      ok = ok && error == 0;
    }
    return ok ? 0 : 1;
  } catch (const DeadlineExpired&) {
    std::fprintf(stderr, "bfv_client: --deadline %.3gs expired\n",
                 args.deadline);
    return 3;
  } catch (const svc::Timeout&) {
    std::fprintf(stderr, "bfv_client: --deadline %.3gs expired\n",
                 args.deadline);
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfv_client: %s\n", e.what());
    return 1;
  }
}
