// ISCAS89 .bench parsing and serialization.
#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

namespace bfvr::circuit {
namespace {

// A miniature sequential benchmark in ISCAS89 style (structure of s27-like
// circuits: inputs, three DFFs, a small gate cloud).
constexpr const char* kSmallBench = R"(
# tiny sequential benchmark
INPUT(x0)
INPUT(x1)
OUTPUT(z)
q0 = DFF(d0)
q1 = DFF(d1)
n1 = NAND(x0, q0)
n2 = NOR(x1, q1)
n3 = XOR(n1, n2)
d0 = NOT(n3)
d1 = BUFF(n1)
z = AND(n3, q0)
)";

TEST(BenchIo, ParsesSmallCircuit) {
  const Netlist n = parseBenchString(kSmallBench, "tiny");
  EXPECT_EQ(n.inputs().size(), 2U);
  EXPECT_EQ(n.latches().size(), 2U);
  EXPECT_EQ(n.outputs().size(), 1U);
  EXPECT_EQ(n.gate(n.outputs()[0]).name, "z");
  EXPECT_EQ(n.gate(n.latchData(0)).name, "d0");
  EXPECT_FALSE(n.latchInit(0));  // ISCAS89 convention: DFFs reset to 0
}

TEST(BenchIo, ForwardReferencesResolve) {
  // d0 uses n3 which is defined later in the file order above — already
  // covered; also check a deeper chain.
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = AND(w, a)
w = NOT(v)
v = BUFF(a)
)";
  const Netlist n = parseBenchString(text);
  const ConcreteSim sim(n);
  EXPECT_FALSE(sim.outputs({}, {true})[0]);   // y = !a & a = 0
  EXPECT_FALSE(sim.outputs({}, {false})[0]);
}

TEST(BenchIo, RoundTripPreservesBehavior) {
  const Netlist n1 = parseBenchString(kSmallBench, "tiny");
  const Netlist n2 = parseBenchString(toBench(n1), "tiny2");
  const ConcreteSim s1(n1);
  const ConcreteSim s2(n2);
  for (unsigned st = 0; st < 4; ++st) {
    for (unsigned in = 0; in < 4; ++in) {
      const std::vector<bool> state{(st & 1U) != 0, (st & 2U) != 0};
      const std::vector<bool> inputs{(in & 1U) != 0, (in & 2U) != 0};
      EXPECT_EQ(s1.step(state, inputs), s2.step(state, inputs));
      EXPECT_EQ(s1.outputs(state, inputs), s2.outputs(state, inputs));
    }
  }
}

TEST(BenchIo, GeneratorCircuitsRoundTrip) {
  for (const Netlist& gen :
       {makeCounter(4, 11), makeJohnson(4), makeTwinShift(3)}) {
    const Netlist back = parseBenchString(toBench(gen), gen.name() + "_rt");
    EXPECT_EQ(back.inputs().size(), gen.inputs().size());
    EXPECT_EQ(back.latches().size(), gen.latches().size());
    const ConcreteSim s1(gen);
    const ConcreteSim s2(back);
    std::vector<bool> state(gen.latches().size(), false);
    const std::vector<bool> inputs(gen.inputs().size(), true);
    for (int step = 0; step < 10; ++step) {
      const auto n1 = s1.step(state, inputs);
      const auto n2 = s2.step(state, inputs);
      EXPECT_EQ(n1, n2);
      state = n1;
    }
  }
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const char* text = "\n# comment only\nINPUT(a)  # trailing\n\nOUTPUT(a)\n";
  const Netlist n = parseBenchString(text);
  EXPECT_EQ(n.inputs().size(), 1U);
  EXPECT_EQ(n.outputs().size(), 1U);
}

TEST(BenchIo, CaseInsensitiveOps) {
  const char* text = "INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n";
  const Netlist n = parseBenchString(text);
  EXPECT_EQ(n.gate(n.signal("y")).op, GateOp::kNand);
}

TEST(BenchIo, MalformedLinesRejected) {
  EXPECT_THROW((void)parseBenchString("INPUT a\n"), std::invalid_argument);
  EXPECT_THROW((void)parseBenchString("y = FROB(a)\nINPUT(a)\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parseBenchString("WIBBLE(a)\n"), std::invalid_argument);
}

TEST(BenchIo, UnresolvableDefinitionRejected) {
  // Mutually recursive combinational definitions can never be built.
  const char* text = "INPUT(a)\ny = NOT(w)\nw = NOT(y)\n";
  EXPECT_THROW((void)parseBenchString(text), std::invalid_argument);
}

TEST(BenchIo, UnknownOutputRejected) {
  EXPECT_THROW((void)parseBenchString("OUTPUT(nope)\n"),
               std::invalid_argument);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW((void)parseBenchFile("/nonexistent/file.bench"),
               std::runtime_error);
}

// --- dedicated XOR / XNOR / NAND gate-path coverage -----------------------
// The shipped LFSR/CRC workloads (tools/gen_lfsr.py) are the first data
// files that lean on the parser's XOR and XNOR paths; until them these ops
// were exercised only incidentally through reachability runs.

TEST(BenchIo, XnorGateTruthTable) {
  const char* text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n";
  const Netlist n = parseBenchString(text);
  const ConcreteSim sim(n);  // ConcreteSim keeps a reference, not a copy
  EXPECT_TRUE(sim.outputs({}, {false, false})[0]);
  EXPECT_FALSE(sim.outputs({}, {false, true})[0]);
  EXPECT_FALSE(sim.outputs({}, {true, false})[0]);
  EXPECT_TRUE(sim.outputs({}, {true, true})[0]);
}

TEST(BenchIo, WideXorAndNandFoldNAry) {
  // 3-input XOR is odd parity; 3-input NAND is NOT(AND of all) — the same
  // n-ary fold semantics Netlist::evalGate defines.
  const char* text =
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(x)\nOUTPUT(n)\n"
      "x = XOR(a, b, c)\nn = NAND(a, b, c)\n";
  const Netlist n = parseBenchString(text);
  const ConcreteSim sim(n);
  for (unsigned v = 0; v < 8; ++v) {
    const std::vector<bool> in{(v & 1U) != 0, (v & 2U) != 0, (v & 4U) != 0};
    const auto out = sim.outputs({}, in);
    EXPECT_EQ(out[0], (((v >> 0) ^ (v >> 1) ^ (v >> 2)) & 1U) != 0) << v;
    EXPECT_EQ(out[1], v != 7U) << v;
  }
}

TEST(BenchIo, ParsedLfsrFileMatchesGenerator) {
  // data/lfsr16.bench is generated by tools/gen_lfsr.py to be structurally
  // identical to circuit::makeLfsrFree(16); lockstep concrete simulation
  // proves the parsed XOR/XNOR feedback cone behaves identically.
  const Netlist file =
      parseBenchFile(std::string(BFVR_DATA_DIR) + "/lfsr16.bench");
  const Netlist gen = makeLfsrFree(16);
  ASSERT_EQ(file.inputs().size(), 0U);
  ASSERT_EQ(file.latches().size(), gen.latches().size());
  bool saw_xnor = false;
  for (SignalId g = 0; g < file.numSignals(); ++g) {
    saw_xnor |= file.gate(g).op == GateOp::kXnor;
  }
  EXPECT_TRUE(saw_xnor);
  const ConcreteSim s1(file);
  const ConcreteSim s2(gen);
  std::vector<bool> a(16, false), b(16, false);
  for (int step = 0; step < 200; ++step) {
    a = s1.step(a, {});
    b = s2.step(b, {});
    ASSERT_EQ(a, b) << "diverged at step " << step;
  }
}

TEST(BenchIo, ParsedCrcFileMatchesGenerator) {
  const Netlist file =
      parseBenchFile(std::string(BFVR_DATA_DIR) + "/crc16.bench");
  const Netlist gen = makeCrc(16);
  ASSERT_EQ(file.inputs().size(), 1U);
  ASSERT_EQ(file.latches().size(), gen.latches().size());
  const ConcreteSim s1(file);
  const ConcreteSim s2(gen);
  std::vector<bool> a(16, false), b(16, false);
  std::uint32_t din = 0x2'7183u;  // arbitrary deterministic bit pattern
  for (int step = 0; step < 64; ++step) {
    const std::vector<bool> in{((din >> (step % 18)) & 1U) != 0};
    a = s1.step(a, in);
    b = s2.step(b, in);
    ASSERT_EQ(a, b) << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace bfvr::circuit
