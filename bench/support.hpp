// Shared harness plumbing for the experiment binaries: circuit/order
// suites, engine runners and fixed-width table printing in the style of the
// paper's tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/orders.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"

namespace bfvr::bench {

/// One engine invocation on a fresh manager (each run gets its own BDD
/// universe so peaks and caches do not leak across rows — the paper runs
/// each configuration as a separate process).
struct RunSpec {
  enum class Engine { kTr, kTrMono, kCbm, kBfv, kCdec };
  Engine engine = Engine::kBfv;
  reach::ReachOptions opts;
  /// Manager configuration of the run's fresh BDD universe — how the
  /// ordering benches turn on Config::auto_reorder per run.
  bdd::Manager::Config mgr;
};

inline const char* engineName(RunSpec::Engine e) {
  switch (e) {
    case RunSpec::Engine::kTr:
      return "TR-IWLS95";
    case RunSpec::Engine::kTrMono:
      return "TR-mono";
    case RunSpec::Engine::kCbm:
      return "CBM-Fig1";
    case RunSpec::Engine::kBfv:
      return "BFV-Fig2";
    case RunSpec::Engine::kCdec:
      return "CDEC-Fig2";
  }
  return "?";
}

inline reach::ReachResult runOnce(const circuit::Netlist& n,
                                  const circuit::OrderSpec& order,
                                  RunSpec spec) {
  bdd::Manager m(0, spec.mgr);
  sym::StateSpace s(m, n, circuit::makeOrder(n, order));
  switch (spec.engine) {
    case RunSpec::Engine::kTr:
      return reach::reachTr(s, spec.opts);
    case RunSpec::Engine::kTrMono:
      spec.opts.transition.cluster_limit = 0;
      return reach::reachTr(s, spec.opts);
    case RunSpec::Engine::kCbm:
      return reach::reachCbm(s, spec.opts);
    case RunSpec::Engine::kBfv:
      spec.opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, spec.opts);
    case RunSpec::Engine::kCdec:
      spec.opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, spec.opts);
  }
  throw std::logic_error("bad engine");
}

/// "time(s)" cell: the run time, or T.O. / M.O. like the paper's Table 2.
inline std::string timeCell(const reach::ReachResult& r) {
  if (r.status != RunStatus::kDone) return to_string(r.status);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", r.seconds);
  return buf;
}

/// "Peak(K)" cell: peak live nodes in thousands (one decimal).
inline std::string peakCell(const reach::ReachResult& r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(r.peak_live_nodes) / 1000.0);
  return buf;
}

inline void hr(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace bfvr::bench
