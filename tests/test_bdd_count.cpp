// Structural queries: support, node counting, minterm counting, evaluation
// and cube extraction.
#include <gtest/gtest.h>

#include <bit>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;

const std::vector<unsigned> kVars{0, 1, 2, 3};

class CountSweep : public ::testing::TestWithParam<int> {};

TEST_P(CountSweep, SatCountMatchesPopcount) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 9);
  Manager m(4);
  const std::uint64_t tt = randomTruth(rng, 4);
  const Bdd f = bddFromTruth(m, kVars, tt);
  EXPECT_DOUBLE_EQ(m.satCount(f, 4), static_cast<double>(std::popcount(tt)));
  // Complement counts the complement.
  EXPECT_DOUBLE_EQ(m.satCount(~f, 4), 16.0 - std::popcount(tt));
  // Over a wider space every extra variable doubles the count.
  EXPECT_DOUBLE_EQ(m.satCount(f, 6), 4.0 * std::popcount(tt));
}

TEST_P(CountSweep, PickCubeSatisfies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 17);
  Manager m(4);
  std::uint64_t tt = randomTruth(rng, 4);
  if (tt == 0) tt = 1;
  const Bdd f = bddFromTruth(m, kVars, tt);
  const auto cube = m.pickCube(f);
  std::vector<bool> assignment(m.numVars(), false);
  for (std::size_t i = 0; i < cube.size(); ++i) {
    assignment[i] = cube[i] == 1;
  }
  EXPECT_TRUE(m.eval(f, assignment));
}

TEST_P(CountSweep, EvalMatchesTruthTable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5 + 23);
  Manager m(4);
  const std::uint64_t tt = randomTruth(rng, 4);
  const Bdd f = bddFromTruth(m, kVars, tt);
  for (unsigned a = 0; a < 16; ++a) {
    std::vector<bool> x(4);
    for (unsigned j = 0; j < 4; ++j) x[j] = ((a >> j) & 1U) != 0;
    EXPECT_EQ(m.eval(f, x), ((tt >> a) & 1U) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountSweep, ::testing::Range(0, 30));

TEST(BddCount, SupportExactness) {
  Manager m(8);
  const Bdd f = (m.var(1) & m.var(3)) | (m.var(5) ^ m.var(3));
  EXPECT_EQ(m.support(f), (std::vector<unsigned>{1, 3, 5}));
  EXPECT_EQ(m.supportCube(f), m.var(1) & m.var(3) & m.var(5));
  EXPECT_TRUE(m.support(m.one()).empty());
  EXPECT_TRUE(m.support(m.zero()).empty());
}

TEST(BddCount, SupportDropsCancelledVariables) {
  Manager m(4);
  const Bdd f = (m.var(0) & m.var(1)) | (~m.var(0) & m.var(1));
  EXPECT_EQ(m.support(f), std::vector<unsigned>{1});
}

TEST(BddCount, NodeCountIncludesTerminal) {
  Manager m(4);
  EXPECT_EQ(m.nodeCount(m.one()), 1U);
  EXPECT_EQ(m.nodeCount(m.zero()), 1U);
  EXPECT_EQ(m.nodeCount(m.var(0)), 2U);
  EXPECT_EQ(m.nodeCount(m.var(0) & m.var(1)), 3U);
  // XOR over k variables has 2k-1 internal nodes with complement edges...
  // at least it is strictly larger than the AND chain.
  const Bdd x = m.var(0) ^ m.var(1) ^ m.var(2);
  EXPECT_GE(m.nodeCount(x), 4U);
}

TEST(BddCount, SharedNodeCountSharesSubgraphs) {
  Manager m(6);
  const Bdd common = m.var(2) & m.var(3);
  const Bdd f = m.var(0) | common;
  const Bdd g = m.var(1) | common;
  const Bdd fs[] = {f, g};
  const std::size_t shared = m.sharedNodeCount(fs);
  EXPECT_LT(shared, m.nodeCount(f) + m.nodeCount(g));
  EXPECT_GE(shared, m.nodeCount(f));
}

TEST(BddCount, SharedNodeCountOfDisjointFunctionsAdds) {
  Manager m(4);
  const Bdd f = m.var(0);
  const Bdd g = m.var(1);
  const Bdd fs[] = {f, g};
  // 2 var nodes + 1 shared terminal.
  EXPECT_EQ(m.sharedNodeCount(fs), 3U);
}

TEST(BddCount, SatCountOfConstants) {
  Manager m(4);
  EXPECT_DOUBLE_EQ(m.satCount(m.one(), 4), 16.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.zero(), 4), 0.0);
  EXPECT_DOUBLE_EQ(m.satCount(m.one(), 0), 1.0);
}

TEST(BddCount, PickCubeOfZeroThrows) {
  Manager m(2);
  EXPECT_THROW((void)m.pickCube(m.zero()), std::invalid_argument);
}

TEST(BddCount, PickCubeLeavesDontCares) {
  Manager m(4);
  const auto cube = m.pickCube(m.var(1));
  EXPECT_EQ(cube[1], 1);
  EXPECT_EQ(cube[0], -1);
  EXPECT_EQ(cube[2], -1);
}

TEST(BddCount, DotOutputMentionsLabels) {
  Manager m(4);
  const Bdd f = m.var(0) & ~m.var(1);
  const Bdd fs[] = {f};
  const std::string labels[] = {"myfunc"};
  const std::string dot = m.toDot(fs, labels);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("myfunc"), std::string::npos);
  EXPECT_NE(dot.find("v1"), std::string::npos);
}

}  // namespace
}  // namespace bfvr::bdd
