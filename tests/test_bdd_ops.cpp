// Apply-family operations validated against truth tables, including an
// exhaustive parameterized sweep over every pair of 2-variable functions.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bdd {
namespace {

using test::bddFromTruth;
using test::randomTruth;
using test::truthOf;

const std::vector<unsigned> kVars2{0, 1};
const std::vector<unsigned> kVars4{0, 1, 2, 3};

class TwoVarPairs : public ::testing::TestWithParam<int> {};

TEST_P(TwoVarPairs, AndOrXorIteMatchTruthTables) {
  const unsigned tf = static_cast<unsigned>(GetParam()) & 0xF;
  const unsigned tg = (static_cast<unsigned>(GetParam()) >> 4) & 0xF;
  Manager m(2);
  const Bdd f = bddFromTruth(m, kVars2, tf);
  const Bdd g = bddFromTruth(m, kVars2, tg);
  EXPECT_EQ(truthOf(m, f & g, kVars2), tf & tg);
  EXPECT_EQ(truthOf(m, f | g, kVars2), tf | tg);
  EXPECT_EQ(truthOf(m, f ^ g, kVars2), (tf ^ tg) & 0xFU);
  EXPECT_EQ(truthOf(m, ~f, kVars2), ~tf & 0xFU);
  EXPECT_EQ(truthOf(m, m.xnorB(f, g), kVars2), ~(tf ^ tg) & 0xFU);
  // ite(f, g, ~g)
  const std::uint64_t ite_tt = (tf & tg) | (~tf & ~tg & 0xFU);
  EXPECT_EQ(truthOf(m, m.ite(f, g, ~g), kVars2), ite_tt & 0xFU);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, TwoVarPairs, ::testing::Range(0, 256));

class RandomFourVar : public ::testing::TestWithParam<int> {};

TEST_P(RandomFourVar, OpsMatchTruthTables) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  Manager m(4);
  const std::uint64_t tf = randomTruth(rng, 4);
  const std::uint64_t tg = randomTruth(rng, 4);
  const std::uint64_t th = randomTruth(rng, 4);
  const std::uint64_t mask = 0xFFFFU;
  const Bdd f = bddFromTruth(m, kVars4, tf);
  const Bdd g = bddFromTruth(m, kVars4, tg);
  const Bdd h = bddFromTruth(m, kVars4, th);
  EXPECT_EQ(truthOf(m, f & g, kVars4), tf & tg);
  EXPECT_EQ(truthOf(m, f | g, kVars4), tf | tg);
  EXPECT_EQ(truthOf(m, f ^ g, kVars4), (tf ^ tg) & mask);
  EXPECT_EQ(truthOf(m, m.ite(f, g, h), kVars4),
            ((tf & tg) | (~tf & th)) & mask);
  // Associativity / De Morgan spot properties on the same operands.
  EXPECT_EQ((f & g) & h, f & (g & h));
  EXPECT_EQ((f | g) | h, f | (g | h));
  EXPECT_EQ(~(f & g & h), ~f | ~g | ~h);
  EXPECT_EQ(f ^ g ^ h, h ^ g ^ f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFourVar, ::testing::Range(0, 40));

TEST(BddOps, IteSpecialCases) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_EQ(m.ite(m.one(), a, b), a);
  EXPECT_EQ(m.ite(m.zero(), a, b), b);
  EXPECT_EQ(m.ite(a, m.one(), m.zero()), a);
  EXPECT_EQ(m.ite(a, m.zero(), m.one()), ~a);
  EXPECT_EQ(m.ite(a, b, b), b);
  EXPECT_EQ(m.ite(a, a, b), a | b);
  EXPECT_EQ(m.ite(a, ~a, b), ~a & b);
  EXPECT_EQ(m.ite(a, b, a), a & b);
  EXPECT_EQ(m.ite(a, b, ~a), ~a | b);
}

TEST(BddOps, XorIdentities) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_EQ(a ^ a, m.zero());
  EXPECT_EQ(a ^ ~a, m.one());
  EXPECT_EQ(a ^ m.zero(), a);
  EXPECT_EQ(a ^ m.one(), ~a);
  EXPECT_EQ(~a ^ ~b, a ^ b);
  EXPECT_EQ(~a ^ b, ~(a ^ b));
}

TEST(BddOps, AbsorptionAndIdempotence) {
  Manager m(4);
  const Bdd a = m.var(0);
  const Bdd b = m.var(1);
  EXPECT_EQ(a & a, a);
  EXPECT_EQ(a | a, a);
  EXPECT_EQ(a & (a | b), a);
  EXPECT_EQ(a | (a & b), a);
  EXPECT_EQ(a & ~a, m.zero());
  EXPECT_EQ(a | ~a, m.one());
}

TEST(BddOps, DeepChainBuilds) {
  // A 64-variable conjunction chain: exercises the unique table growth.
  Manager m(64);
  Bdd acc = m.one();
  for (unsigned i = 0; i < 64; ++i) acc &= m.var(i);
  EXPECT_EQ(m.nodeCount(acc), 65U);  // 64 internal + terminal
  EXPECT_FALSE(acc.isConst());
  // Its negation shares all nodes.
  EXPECT_EQ(m.nodeCount(~acc), 65U);
}

TEST(BddOps, CacheSurvivesRepeatedQueries) {
  Manager m(8);
  Rng rng(5);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  const Bdd f = bddFromTruth(m, vars, randomTruth(rng, 6));
  const Bdd g = bddFromTruth(m, vars, randomTruth(rng, 6));
  const Bdd r1 = f & g;
  const auto lookups_before = m.stats().cache_lookups;
  const auto hits_before = m.stats().cache_hits;
  const Bdd r2 = f & g;
  EXPECT_EQ(r1, r2);
  // The repeat should be answered mostly from the cache.
  EXPECT_GT(m.stats().cache_hits, hits_before);
  EXPECT_GT(m.stats().cache_lookups, lookups_before);
}

}  // namespace
}  // namespace bfvr::bdd
