file(REMOVE_RECURSE
  "libbfvr_util.a"
)
