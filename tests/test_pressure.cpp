// The memory-pressure governor (Config::PressureLadder), the kNodeBudget /
// kPressure event contract, and deterministic fault injection
// (Manager::setFaultPlan): every ladder rung is driven individually, the
// disabled paths are bit-identical in their op counters, and a seeded
// tight-budget suite shows the ladder turning memouts into completed
// fixpoints with the exact same state counts.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "circuit/generators.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"

namespace bfvr::bdd {
namespace {

/// Event sink that records everything it hears.
class Recorder : public EventSink {
 public:
  void onManagerEvent(const ManagerEvent& e) override { events.push_back(e); }

  std::size_t count(ManagerEvent::Kind k) const {
    std::size_t n = 0;
    for (const ManagerEvent& e : events) {
      if (e.kind == k) ++n;
    }
    return n;
  }
  std::vector<PressureRung> rungs() const {
    std::vector<PressureRung> out;
    for (const ManagerEvent& e : events) {
      if (e.kind == ManagerEvent::Kind::kPressure) out.push_back(e.rung);
    }
    return out;
  }

  std::vector<ManagerEvent> events;
};

/// Fills the manager with unreferenced (collectible) nodes: builds and
/// immediately drops a distinct three-variable cube per iteration (every
/// (a, b, c) subset denotes a different function, so each one interns fresh
/// nodes instead of hitting the unique table) until `target` nodes are in
/// use. Each step allocates at most a couple of nodes, so the fill stops
/// just past `target`. The garbage is exactly what a pressure GC can
/// reclaim.
void makeGarbage(Manager& m, std::size_t target) {
  const unsigned nv = m.numVars();
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = a + 1; b < nv; ++b) {
      for (unsigned c = b + 1; c < nv; ++c) {
        if (m.inUseNodes() >= target) return;
        const Bdd junk = m.var(a) & m.var(b) & ~m.var(c);
        (void)junk;
      }
    }
  }
  ASSERT_GE(m.inUseNodes(), target);
}

/// Parity of all the manager's variables — a fresh function the garbage
/// runs above never built, so computing it must allocate.
Bdd parityOfAll(Manager& m) {
  Bdd f = m.zero();
  for (unsigned i = 0; i < m.numVars(); ++i) f = f ^ m.var(i);
  return f;
}

TEST(NodeBudget, EventFiresExactlyOnceStrictlyBeforeThrow) {
  Manager::Config cfg;
  cfg.max_nodes = 128;
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 110);
  bool threw = false;
  try {
    // One public op that cannot fit in the remaining headroom.
    Bdd f = parityOfAll(m);
    (void)f;
  } catch (const NodeBudgetExceeded& e) {
    threw = true;
    // The event was already delivered when the exception reaches us — and
    // exactly once: without the ladder there is no retry to re-fire it.
    EXPECT_EQ(rec.count(ManagerEvent::Kind::kNodeBudget), 1U);
    EXPECT_FALSE(e.injected());
    EXPECT_EQ(e.budget(), 128U);
    EXPECT_GT(e.inUse(), 0U);
  }
  ASSERT_TRUE(threw);
  EXPECT_EQ(rec.count(ManagerEvent::Kind::kPressure), 0U);
}

TEST(PressureLadder, ForcedGcRungRescuesAGarbageHeavyOp) {
  Manager::Config cfg;
  cfg.max_nodes = 128;
  cfg.pressure_ladder.enabled = true;
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 110);
  Bdd f;
  ASSERT_NO_THROW(f = parityOfAll(m));
  EXPECT_EQ(f.nodeCount(), 11U);  // parity over 10 vars, complement edges
  const std::vector<PressureRung> rungs = rec.rungs();
  ASSERT_GE(rungs.size(), 1U);
  EXPECT_EQ(rungs[0], PressureRung::kForcedGc);
  // The rung's event shows the relief: in-use dropped across the GC.
  for (const ManagerEvent& e : rec.events) {
    if (e.kind == ManagerEvent::Kind::kPressure) {
      EXPECT_LT(e.size_after, e.size_before);
      break;
    }
  }
}

TEST(PressureLadder, CacheShrinkRungFiresWhenGcRungIsDisabled) {
  Manager::Config cfg;
  cfg.max_nodes = 128;
  cfg.cache_bits = 16;
  cfg.pressure_ladder.enabled = true;
  cfg.pressure_ladder.forced_gc = false;  // first enabled rung: cache shrink
  cfg.pressure_ladder.min_cache_bits = 12;
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 110);
  const std::size_t slots_before = m.cacheSlots();
  Bdd f;
  ASSERT_NO_THROW(f = parityOfAll(m));
  const std::vector<PressureRung> rungs = rec.rungs();
  ASSERT_GE(rungs.size(), 1U);
  EXPECT_EQ(rungs[0], PressureRung::kCacheShrink);
  EXPECT_EQ(m.cacheSlots(), slots_before / 2);
}

TEST(PressureLadder, CacheShrinkRespectsTheFloor) {
  Manager::Config cfg;
  cfg.max_nodes = 128;
  cfg.cache_bits = 12;
  cfg.pressure_ladder.enabled = true;
  cfg.pressure_ladder.forced_gc = false;
  cfg.pressure_ladder.min_cache_bits = 12;  // already at the floor:
  cfg.pressure_ladder.emergency_reorder = true;  // shrink rung is skipped
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 110);
  const std::size_t slots_before = m.cacheSlots();
  Bdd f;
  ASSERT_NO_THROW(f = parityOfAll(m));
  EXPECT_EQ(m.cacheSlots(), slots_before);
  const std::vector<PressureRung> rungs = rec.rungs();
  ASSERT_GE(rungs.size(), 1U);
  EXPECT_EQ(rungs[0], PressureRung::kReorder);
}

TEST(PressureLadder, ReorderRungFiresWhenLighterRungsAreDisabled) {
  Manager::Config cfg;
  cfg.max_nodes = 128;
  cfg.pressure_ladder.enabled = true;
  cfg.pressure_ladder.forced_gc = false;
  cfg.pressure_ladder.shrink_cache = false;
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 110);
  Bdd f;
  ASSERT_NO_THROW(f = parityOfAll(m));
  const std::vector<PressureRung> rungs = rec.rungs();
  ASSERT_GE(rungs.size(), 1U);
  EXPECT_EQ(rungs[0], PressureRung::kReorder);
  EXPECT_GE(m.stats().reorder_runs, 1U);
}

TEST(PressureLadder, ExhaustedLadderStillThrowsAfterEveryRung) {
  // Build two disjoint cubes keeping a handle on EVERY intermediate, so no
  // rung can reclaim a single node, then freeze the budget at exactly the
  // table size: xor-ing the cubes needs fresh nodes that neither GC nor a
  // cache shrink can provide. The reorder rung stays disabled here — budget
  // checks are off while sifting, so its table churn legitimately leaves
  // free-list slots that can rescue the retry (that escape hatch is the
  // rung's whole point); with it on, "exhausted" is not reachable this way.
  const auto build = [](Manager& m, std::vector<Bdd>& keep) {
    Bdd even = m.one(), odd = m.one();
    for (unsigned i = 0; i < 12; i += 2) {
      even &= m.var(i);
      keep.push_back(even);
    }
    for (unsigned i = 1; i < 12; i += 2) {
      odd &= m.var(i);
      keep.push_back(odd);
    }
    return std::pair{even, odd};
  };
  std::size_t table_size = 0;
  {
    Manager probe(12);
    std::vector<Bdd> keep;
    build(probe, keep);
    table_size = probe.inUseNodes();
  }
  Manager::Config tight;
  tight.pressure_ladder.enabled = true;
  tight.pressure_ladder.emergency_reorder = false;
  tight.max_nodes = table_size + 1;
  Manager m(12, tight);
  Recorder rec;
  m.setEventSink(&rec);
  std::vector<Bdd> keep;
  const auto [even, odd] = build(m, keep);
  EXPECT_THROW(m.xorB(even, odd), NodeBudgetExceeded);
  // Every enabled rung ran, in escalation order, before the throw escaped.
  const std::vector<PressureRung> rungs = rec.rungs();
  ASSERT_EQ(rungs.size(), 2U);
  EXPECT_EQ(rungs[0], PressureRung::kForcedGc);
  EXPECT_EQ(rungs[1], PressureRung::kCacheShrink);
  // And a NodeBudgetExceeded escaped only after the ladder was spent; the
  // manager survives with every kept handle still denoting its function.
  std::vector<bool> all_true(12, true);
  EXPECT_TRUE(m.eval(even, all_true));
  EXPECT_TRUE(m.eval(odd, all_true));
}

void expectSameStats(const OpStats& a, const OpStats& b) {
  EXPECT_EQ(a.top_ops, b.top_ops);
  EXPECT_EQ(a.recursive_steps, b.recursive_steps);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_inserts, b.cache_inserts);
  EXPECT_EQ(a.cache_collisions, b.cache_collisions);
  EXPECT_EQ(a.nodes_created, b.nodes_created);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.reorder_runs, b.reorder_runs);
  EXPECT_EQ(a.reorder_swaps, b.reorder_swaps);
  for (std::size_t i = 0; i < kNumOpTags; ++i) {
    EXPECT_EQ(a.op_cache_hits[i], b.op_cache_hits[i]) << "tag " << i;
    EXPECT_EQ(a.op_cache_misses[i], b.op_cache_misses[i]) << "tag " << i;
  }
}

reach::ReachResult johnsonRun(Manager& m) {
  const circuit::Netlist n = circuit::makeJohnson(6);
  sym::StateSpace s(m, n,
                    circuit::makeOrder(n, {circuit::OrderKind::kTopo, 0}));
  return reach::reachBfv(s, {});
}

TEST(PressureLadder, UntriggeredLadderIsBitIdenticalInOpCounts) {
  Manager plain(0);
  const reach::ReachResult a = johnsonRun(plain);
  Manager::Config cfg;
  cfg.pressure_ladder.enabled = true;  // enabled but never under pressure
  Manager laddered(0, cfg);
  const reach::ReachResult b = johnsonRun(laddered);
  ASSERT_EQ(a.status, RunStatus::kDone);
  ASSERT_EQ(b.status, RunStatus::kDone);
  expectSameStats(plain.stats(), laddered.stats());
}

TEST(FaultPlan, ArmedButNeverFiringPlanIsBitIdenticalInOpCounts) {
  Manager plain(0);
  const reach::ReachResult a = johnsonRun(plain);
  Manager armed(0);
  FaultPlan fp;
  fp.alloc_failures = {std::uint64_t{1} << 60};  // never reached
  fp.spurious_interrupts = {std::uint64_t{1} << 60};
  armed.setFaultPlan(fp);
  const reach::ReachResult b = johnsonRun(armed);
  ASSERT_EQ(a.status, RunStatus::kDone);
  ASSERT_EQ(b.status, RunStatus::kDone);
  EXPECT_EQ(armed.faultsInjected(), 0U);
  expectSameStats(plain.stats(), armed.stats());
}

TEST(FaultPlan, InjectedAllocationFailureIsTaggedAndSurvivable) {
  Manager m(8);
  FaultPlan fp;
  fp.alloc_failures = {3};  // the third allocation after arming
  m.setFaultPlan(fp);
  EXPECT_TRUE(m.hasFaultPlan());
  bool threw = false;
  try {
    Bdd f = parityOfAll(m);
    (void)f;
  } catch (const NodeBudgetExceeded& e) {
    threw = true;
    EXPECT_TRUE(e.injected());
  }
  ASSERT_TRUE(threw);
  EXPECT_EQ(m.faultsInjected(), 1U);
  // One-shot: the schedule is consumed, the manager works again.
  Bdd f;
  ASSERT_NO_THROW(f = parityOfAll(m));
  EXPECT_EQ(f.nodeCount(), 9U);
}

TEST(FaultPlan, SpuriousInterruptFiresAtAPollPoint) {
  Manager m(4);
  FaultPlan fp;
  fp.spurious_interrupts = {1};  // the very next poll
  m.setFaultPlan(fp);
  try {
    m.pollInterrupt();
    FAIL() << "expected an injected interrupt";
  } catch (const Interrupted& e) {
    EXPECT_EQ(e.reason(), Interrupted::Reason::kCancelled);
  }
  EXPECT_EQ(m.faultsInjected(), 1U);
  ASSERT_NO_THROW(m.pollInterrupt());  // consumed
  m.setFaultPlan({});
  EXPECT_FALSE(m.hasFaultPlan());
}

TEST(FaultPlan, LadderAbsorbsAnInjectedAllocationFailure) {
  Manager::Config cfg;
  cfg.pressure_ladder.enabled = true;
  Manager m(10, cfg);
  Recorder rec;
  m.setEventSink(&rec);
  makeGarbage(m, 32);
  FaultPlan fp;
  fp.alloc_failures = {2};
  m.setFaultPlan(fp);
  Bdd f;
  // The injected failure unwinds the op; the ladder's GC rung runs; the
  // retry passes the (consumed) fault point and completes.
  ASSERT_NO_THROW(f = parityOfAll(m));
  EXPECT_EQ(f.nodeCount(), 11U);
  EXPECT_EQ(m.faultsInjected(), 1U);
  EXPECT_GE(rec.count(ManagerEvent::Kind::kPressure), 1U);
}

// ---------------------------------------------------------------------------
// Engine-level behavior: kMemOut folds and the tight-budget rescue suite.
// ---------------------------------------------------------------------------

enum class Engine { kTr, kCbm, kBfv, kCdec };

reach::ReachResult runEngine(Engine e, sym::StateSpace& s,
                             reach::ReachOptions opts = {}) {
  switch (e) {
    case Engine::kTr:
      return reach::reachTr(s, opts);
    case Engine::kCbm:
      return reach::reachCbm(s, opts);
    case Engine::kBfv:
      opts.backend = reach::SetBackend::kBfv;
      return reach::reachBfv(s, opts);
    case Engine::kCdec:
      opts.backend = reach::SetBackend::kCdec;
      return reach::reachBfv(s, opts);
  }
  throw std::logic_error("bad engine");
}

class MemOutFold : public ::testing::TestWithParam<Engine> {};

TEST_P(MemOutFold, BudgetExhaustionFoldsToMemOutWithAMessage) {
  const Engine engine = GetParam();
  const circuit::Netlist n = circuit::makeCounter(8, 200);
  const circuit::OrderSpec ospec{circuit::OrderKind::kTopo, 0};

  // Measure: table size after setup, and after the full run.
  std::size_t setup_nodes = 0, run_peak = 0;
  {
    Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, ospec));
    setup_nodes = m.peakNodes();
    const reach::ReachResult full = runEngine(engine, s);
    ASSERT_EQ(full.status, RunStatus::kDone);
    run_peak = m.peakNodes();
  }
  ASSERT_GT(run_peak, setup_nodes + 64);

  // A budget above setup but below the run's appetite: the engine — not the
  // job runner — must catch the overflow and fold it to kMemOut, with the
  // budget and in-use count in the message.
  Manager::Config cfg;
  cfg.max_nodes = setup_nodes + (run_peak - setup_nodes) / 3;
  Manager m(0, cfg);
  sym::StateSpace s(m, n, circuit::makeOrder(n, ospec));
  const reach::ReachResult r = runEngine(engine, s);
  EXPECT_EQ(r.status, RunStatus::kMemOut);
  EXPECT_FALSE(r.message.empty());
  EXPECT_NE(r.message.find("nodes"), std::string::npos) << r.message;
}

INSTANTIATE_TEST_SUITE_P(Engines, MemOutFold,
                         ::testing::Values(Engine::kTr, Engine::kCbm,
                                           Engine::kBfv, Engine::kCdec));

TEST(PressureLadder, RescuesTightBudgetRunsAtIdenticalStateCounts) {
  // Seeded suite: circuits whose fixpoints die under a tight hard budget
  // without the governor. The ladder must rescue at least half of them —
  // and every rescue must land on the exact reference state count.
  struct Case {
    const char* label;
    circuit::Netlist n;
  };
  const Case cases[] = {
      {"counter", circuit::makeCounter(8, 200)},
      {"johnson", circuit::makeJohnson(8)},
      {"lfsr", circuit::makeLfsr(8)},
      {"twinshift", circuit::makeTwinShift(6)},
      {"crc", circuit::makeCrc(8)},
      {"random", circuit::makeRandomSeq(8, 3, 40, 12345)},
  };
  const circuit::OrderSpec ospec{circuit::OrderKind::kTopo, 0};
  int eligible = 0, rescued = 0;
  for (const Case& c : cases) {
    double ref_states = 0.0;
    std::size_t setup_nodes = 0, run_peak = 0;
    {
      Manager m(0);
      sym::StateSpace s(m, c.n, circuit::makeOrder(c.n, ospec));
      setup_nodes = m.peakNodes();
      const reach::ReachResult full = runEngine(Engine::kBfv, s);
      ASSERT_EQ(full.status, RunStatus::kDone) << c.label;
      ref_states = full.states;
      run_peak = m.peakNodes();
    }
    if (run_peak <= setup_nodes + 128) continue;  // no pressure to create
    Manager::Config tight;
    tight.max_nodes = setup_nodes + (run_peak - setup_nodes) * 2 / 3;

    // Without the governor the budget is fatal...
    {
      Manager m(0, tight);
      sym::StateSpace s(m, c.n, circuit::makeOrder(c.n, ospec));
      const reach::ReachResult r = runEngine(Engine::kBfv, s);
      if (r.status != RunStatus::kMemOut) continue;  // budget not tight here
    }
    ++eligible;

    // ...with it, the same budget should complete — exactly.
    Manager::Config laddered = tight;
    laddered.pressure_ladder.enabled = true;
    Manager m(0, laddered);
    sym::StateSpace s(m, c.n, circuit::makeOrder(c.n, ospec));
    const reach::ReachResult r = runEngine(Engine::kBfv, s);
    if (r.status == RunStatus::kDone) {
      EXPECT_DOUBLE_EQ(r.states, ref_states) << c.label;
      ++rescued;
    }
  }
  ASSERT_GT(eligible, 0);
  EXPECT_GE(rescued * 2, eligible)
      << "ladder rescued " << rescued << "/" << eligible;
}

}  // namespace
}  // namespace bfvr::bdd
