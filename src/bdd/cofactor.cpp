// Shannon cofactors and the two generalized-cofactor operators the paper's
// related work leans on: Coudert–Madre `constrain` (used for range
// computation by recursive splitting and for the conjunctive-decomposition
// algorithms of §2.7) and the size-minimizing `restrict`.
#include <algorithm>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

Bdd Manager::cofactor(const Bdd& f, unsigned var, bool value) {
  ++curStats().top_ops;
  ensureVar(var);
  // f|v=c is composition of the constant c for v.
  const Edge g = value ? kTrueEdge : kFalseEdge;
  return withPressure(
      [&] { return make(composeRec(requireSameManager(f), var, g)); });
}

// ---------------------------------------------------------------------------
// Fused dual cofactor: both Shannon cofactors from one traversal
// ---------------------------------------------------------------------------

Edge Manager::cofactor2Rec(Edge f, std::uint32_t var, Edge& hi) {
  // f is independent of var when its top level is below var's level.
  if (isConstEdge(f) || level(f) > var2level_[var]) {
    hi = f;
    return f;
  }
  // Cofactors of ~f are the complements of f's; cache regular edges only.
  const Edge parity = f & 1U;
  f = regular(f);
  // Copy the node fields: recursion below may grow (reallocate) nodes_.
  const std::uint32_t top = varOf(f);
  const Edge fh = highOf(f);
  const Edge fl = lowOf(f);
  if (top == var) {
    hi = fh ^ parity;
    return fl ^ parity;
  }
  Edge lo;
  if (cacheLookup2(kOpCofactor2, f, var, 0, lo, hi)) {
    hi ^= parity;
    return lo ^ parity;
  }
  ++curStats().recursive_steps;
  // Both children's cofactor pairs in the same walk, then one mkNode per
  // output slice. Children's cofactors no longer contain var, so their
  // levels stay strictly below top's and mkNode's invariants hold.
  Edge fh1, fl1;
  const Edge fh0 = cofactor2Rec(fh, var, fh1);
  const Edge fl0 = cofactor2Rec(fl, var, fl1);
  lo = mkNode(top, fh0, fl0);
  const Edge hi_reg = mkNode(top, fh1, fl1);
  cacheStore2(kOpCofactor2, f, var, 0, lo, hi_reg);
  hi = hi_reg ^ parity;
  return lo ^ parity;
}

std::pair<Bdd, Bdd> Manager::cofactor2(const Bdd& f, unsigned var) {
  ++curStats().top_ops;
  ensureVar(var);
  return withPressure([&] {
    ParRegion region(*this);
    Edge hi = kFalseEdge;
    const Edge lo = par_enabled_
                        ? cofactor2ParRec(requireSameManager(f), var, hi, 0)
                        : cofactor2Rec(requireSameManager(f), var, hi);
    return std::pair<Bdd, Bdd>{make(lo), make(hi)};
  });
}

// ---------------------------------------------------------------------------
// constrain (Coudert–Madre generalized cofactor)
// ---------------------------------------------------------------------------

Edge Manager::constrainRec(Edge f, Edge c) {
  if (c == kTrueEdge || isConstEdge(f)) return f;
  if (f == c) return kTrueEdge;
  if (f == negate(c)) return kFalseEdge;
  Edge out;
  if (cacheLookup(kOpConstrain, f, c, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lf = level(f);
  const std::uint32_t lc = level(c);
  const std::uint32_t top = std::min(lf, lc);
  const Edge fh = lf == top ? highOf(f) : f;
  const Edge fl = lf == top ? lowOf(f) : f;
  const Edge ch = lc == top ? highOf(c) : c;
  const Edge cl = lc == top ? lowOf(c) : c;
  Edge r;
  if (cl == kFalseEdge) {
    r = constrainRec(fh, ch);
  } else if (ch == kFalseEdge) {
    r = constrainRec(fl, cl);
  } else {
    r = mkNode(level2var_[top], constrainRec(fh, ch), constrainRec(fl, cl));
  }
  cacheStore(kOpConstrain, f, c, 0, r);
  return r;
}

Bdd Manager::constrain(const Bdd& f, const Bdd& c) {
  ++curStats().top_ops;
  const Edge ce = requireSameManager(c);
  if (ce == kFalseEdge) {
    throw std::invalid_argument("constrain with unsatisfiable care set");
  }
  return withPressure(
      [&] { return make(constrainRec(requireSameManager(f), ce)); });
}

// ---------------------------------------------------------------------------
// restrict (sibling substitution)
// ---------------------------------------------------------------------------

Edge Manager::restrictRec(Edge f, Edge c) {
  if (c == kTrueEdge || isConstEdge(f)) return f;
  if (f == c) return kTrueEdge;
  if (f == negate(c)) return kFalseEdge;
  const std::uint32_t lf = level(f);
  // Quantify out of the care set any variable above f's support: restrict
  // must not introduce variables f does not depend on.
  while (!isConstEdge(c) && level(c) < lf) {
    const Edge ch = highOf(c);
    const Edge cl = lowOf(c);
    c = negate(andRec(negate(ch), negate(cl)));  // ch | cl
    if (c == kTrueEdge) return f;
  }
  if (isConstEdge(c)) return f;  // c == TRUE (FALSE cannot arise from |)
  Edge out;
  if (cacheLookup(kOpRestrict, f, c, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t lc = level(c);
  const Edge fh = highOf(f);
  const Edge fl = lowOf(f);
  Edge r;
  if (lc == lf) {
    const Edge ch = highOf(c);
    const Edge cl = lowOf(c);
    if (cl == kFalseEdge) {
      r = restrictRec(fh, ch);
    } else if (ch == kFalseEdge) {
      r = restrictRec(fl, cl);
    } else {
      r = mkNode(level2var_[lf], restrictRec(fh, ch), restrictRec(fl, cl));
    }
  } else {
    r = mkNode(level2var_[lf], restrictRec(fh, c), restrictRec(fl, c));
  }
  cacheStore(kOpRestrict, f, c, 0, r);
  return r;
}

Bdd Manager::restrict(const Bdd& f, const Bdd& c) {
  ++curStats().top_ops;
  const Edge ce = requireSameManager(c);
  if (ce == kFalseEdge) {
    throw std::invalid_argument("restrict with unsatisfiable care set");
  }
  return withPressure(
      [&] { return make(restrictRec(requireSameManager(f), ce)); });
}

}  // namespace bfvr::bdd
