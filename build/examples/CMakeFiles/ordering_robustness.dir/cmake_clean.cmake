file(REMOVE_RECURSE
  "CMakeFiles/ordering_robustness.dir/ordering_robustness.cpp.o"
  "CMakeFiles/ordering_robustness.dir/ordering_robustness.cpp.o.d"
  "ordering_robustness"
  "ordering_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
