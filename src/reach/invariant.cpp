#include "reach/invariant.hpp"

#include "reach/internal.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

namespace {

/// Predecessor extraction: a (state, input) pair with state in `within`
/// (chi over v) whose successor under the transition functions is exactly
/// `target` (latch order). Returns false if none exists.
bool pickPredecessor(sym::StateSpace& s, const std::vector<Bdd>& delta,
                     const Bdd& within, const std::vector<bool>& target,
                     std::vector<bool>& state, std::vector<bool>& inputs) {
  Manager& m = s.manager();
  Bdd cond = within;
  for (std::size_t c = 0; c < delta.size(); ++c) {
    const bool bit = target[s.latchOfComponent(c)];
    cond &= bit ? delta[c] : ~delta[c];
    if (cond.isFalse()) return false;
  }
  const std::vector<signed char> cube = m.pickCube(cond);
  auto bitOf = [&cube](unsigned var) { return cube[var] == 1; };
  state.resize(s.numLatches());
  for (std::size_t p = 0; p < s.numLatches(); ++p) {
    state[p] = bitOf(s.currentVar(p));
  }
  inputs.resize(s.inputVars().size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = bitOf(s.inputVar(i));
  }
  return true;
}

/// Latch-order bits of one member of a non-empty Bfv (components are in
/// component order).
std::vector<bool> memberLatchOrder(const sym::StateSpace& s, const Bfv& f) {
  const std::vector<bool> comp_bits = f.enumerate(1).front();
  std::vector<bool> latch_bits(comp_bits.size());
  for (std::size_t c = 0; c < comp_bits.size(); ++c) {
    latch_bits[s.latchOfComponent(c)] = comp_bits[c];
  }
  return latch_bits;
}

}  // namespace

InvariantResult checkInvariant(sym::StateSpace& s, const Bdd& bad,
                               const ReachOptions& opts) {
  Manager& m = s.manager();
  InvariantResult out;
  internal::RunGuard guard(m, opts.budget);
  try {
    const Bfv bad_set = bfv::fromChar(m, bad, s.currentVars());
    std::vector<unsigned> params = s.currentVars();
    params.insert(params.end(), s.inputVars().begin(), s.inputVars().end());

    // Onion rings: rings[i] = set reached within i steps (monotone), kept
    // for counterexample reconstruction.
    std::vector<Bfv> rings;
    Bfv reached = Bfv::point(m, s.currentVars(), s.initialBits());
    rings.push_back(reached);

    Bfv violating = bad_set.isEmpty()
                        ? Bfv::emptySet(m, s.currentVars())
                        : setIntersect(reached, bad_set);
    bool found = !violating.isEmpty();

    while (!found) {
      ++out.iterations;
      const sym::SimResult sim = sym::simulate(s, reached.comps());
      guard.sample();
      const Bfv img_u = bfv::reparameterize(m, sim.next_state, s.paramVars(),
                                            params, opts.reparam);
      std::vector<Bdd> renamed(img_u.comps().size());
      for (std::size_t i = 0; i < renamed.size(); ++i) {
        renamed[i] = m.permute(img_u.comps()[i], s.permParamToCurrent());
      }
      const Bfv img = Bfv::fromComponents(m, s.currentVars(),
                                          std::move(renamed),
                                          /*trusted=*/true);
      guard.sample();
      const Bfv next = setUnion(reached, img);
      if (!bad_set.isEmpty()) {
        violating = setIntersect(img, bad_set);
        if (!violating.isEmpty()) found = true;
      }
      guard.sample();
      if (!found && next == reached) break;  // fixpoint, invariant holds
      reached = next;
      rings.push_back(reached);
      m.maybeGc();
      if (!found && opts.max_iterations != 0 &&
          out.iterations >= opts.max_iterations) {
        break;
      }
    }

    out.holds = !found;
    if (found) {
      // Reconstruct a (shortest) concrete trace by walking the rings
      // backwards: a state whose minimal ring is d was first produced by
      // the image of ring d-1, so a predecessor is guaranteed there.
      const std::vector<Bdd> delta = sym::transitionFunctions(s);
      std::vector<bool> cur = memberLatchOrder(s, violating);
      out.bad_state = cur;
      auto minimalRing = [&](const std::vector<bool>& latch_bits) {
        std::vector<bool> comp_bits(latch_bits.size());
        for (std::size_t c = 0; c < comp_bits.size(); ++c) {
          comp_bits[c] = latch_bits[s.latchOfComponent(c)];
        }
        for (std::size_t i = 0; i < rings.size(); ++i) {
          if (rings[i].contains(comp_bits)) return i;
        }
        throw std::logic_error("trace state not in any ring");
      };
      std::vector<TraceStep> rev;
      for (std::size_t d = minimalRing(cur); d > 0; d = minimalRing(cur)) {
        TraceStep step;
        if (!pickPredecessor(s, delta, rings[d - 1].toChar(), cur,
                             step.state, step.inputs)) {
          throw std::logic_error(
              "trace reconstruction failed: no predecessor in ring");
        }
        cur = step.state;
        rev.push_back(std::move(step));
      }
      out.trace.assign(rev.rbegin(), rev.rend());
    }
    out.status = RunStatus::kDone;
  } catch (const bdd::NodeBudgetExceeded&) {
    out.status = RunStatus::kMemOut;
  } catch (const internal::TimeBudgetExceeded&) {
    out.status = RunStatus::kTimeOut;
  } catch (const bdd::Interrupted& e) {
    out.status = e.reason() == bdd::Interrupted::Reason::kDeadline
                     ? RunStatus::kTimeOut
                     : RunStatus::kCancelled;
  }
  out.seconds = guard.seconds();
  out.peak_live_nodes = guard.peak();
  return out;
}

}  // namespace bfvr::reach
