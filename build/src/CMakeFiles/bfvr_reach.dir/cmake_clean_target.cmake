file(REMOVE_RECURSE
  "libbfvr_reach.a"
)
