// Experiment: the logical-zonotope engine (src/lz) against the BDD engines
// on the workload split it was built for. On the XOR-affine family
// (free-running LFSRs, CRCs) every gate is exact in the generator-matrix
// representation, so LZ reports the same bit-exact state count as the BDD
// engines at a fraction of the wall time — an image is O(gates *
// generators) word operations with no node table, no cache, no ordering.
// On non-affine circuits (johnson8's control logic) LZ degrades to a sound
// over-approximation and reports kInconclusive: the row documents the
// boundary of the exact class rather than a win.
//
// The LFSR rows are iteration-capped: a free-running LFSR gains one state
// per frontier step, so the full lfsr32 fixpoint is 2^32 - 1 iterations.
// At an equal cap every engine explores the same prefix, which keeps the
// state counts comparable ("states within k steps" is an exact answer) and
// the BDD legs bounded.
//
// `--json` emits one row per run (BDD rows in the shared runObject schema,
// LZ rows in the lz schema without node metrics); CI diffs the file against
// baselines/BENCH_lz.json via tools/perf_smoke.py.
#include <string>
#include <vector>

#include "circuit/bench_io.hpp"
#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

#ifndef BFVR_DATA_DIR
#define BFVR_DATA_DIR "data"
#endif

int main(int argc, char** argv) {
  JsonLog log = jsonLogFromArgs(argc, argv, "lz");

  struct Row {
    circuit::Netlist n;
    unsigned iters;  // 0 = run to fixpoint
  };
  auto fromData = [](const char* name) {
    return circuit::parseBenchFile(std::string(BFVR_DATA_DIR) + "/" + name);
  };
  std::vector<Row> rows;
  rows.push_back({circuit::makeLfsrFree(8), 0});
  rows.push_back({fromData("crc8.bench"), 0});
  rows.push_back({fromData("crc16.bench"), 0});
  rows.push_back({fromData("lfsr16.bench"), 300});
  rows.push_back({fromData("lfsr32.bench"), 300});
  rows.push_back({fromData("johnson8.bench"), 0});

  const RunSpec::Engine bdd_engines[] = {
      RunSpec::Engine::kTr, RunSpec::Engine::kCbm, RunSpec::Engine::kBfv};

  std::printf("LZ vs BDD engines (BDD order = topo; LZ is order-free)\n");
  std::printf("%-10s %-10s %10s %6s %12s  %s\n", "circuit", "engine",
              "time(s)", "iters", "states", "notes");
  hr(72);
  for (const Row& row : rows) {
    const lz::LzResult z = runLzOnce(row.n, 30.0, row.iters);
    log.push(lzRunObject(row.n.name(), z));
    std::printf("%-10s %-10s %10s %6u %12s  %s\n", row.n.name().c_str(),
                "LZ", lzTimeCell(z).c_str(), z.iterations,
                lzStatesCell(z).c_str(), z.message.c_str());
    for (const RunSpec::Engine e : bdd_engines) {
      RunSpec spec;
      spec.engine = e;
      spec.opts.budget.max_seconds = 30.0;
      spec.opts.budget.max_live_nodes = 1000000;
      spec.opts.max_iterations = row.iters;
      const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
      const reach::ReachResult r = runOnce(row.n, order, spec);
      log.push(runObject(row.n.name(), order.label(), engineName(e), r));
      char states[32];
      if (r.status == RunStatus::kDone) {
        std::snprintf(states, sizeof states, "%.0f", r.states);
      } else {
        std::snprintf(states, sizeof states, "-");
      }
      std::printf("%-10s %-10s %10s %6u %12s\n", row.n.name().c_str(),
                  engineName(e), timeCell(r).c_str(), r.iterations, states);
    }
    hr(72);
  }
  std::printf(
      "\nShape to expect: identical state counts on every row where LZ\n"
      "reports done (the XOR-affine class is tracked exactly), with LZ\n"
      "wall time orders of magnitude under the BDD engines on the wide\n"
      "LFSRs; johnson8 shows the degradation mode — a sound upper bound\n"
      "tagged inconclusive, never a wrong count.\n");
  return log.write() ? 0 : 1;
}
