#include "util/stats.hpp"

namespace bfvr {

std::string to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kDone:
      return "done";
    case RunStatus::kTimeOut:
      return "T.O.";
    case RunStatus::kMemOut:
      return "M.O.";
  }
  return "?";
}

}  // namespace bfvr
