file(REMOVE_RECURSE
  "CMakeFiles/bfvr_bfv.dir/bfv/bfv.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/bfv.cpp.o.d"
  "CMakeFiles/bfvr_bfv.dir/bfv/convert.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/convert.cpp.o.d"
  "CMakeFiles/bfvr_bfv.dir/bfv/intersect.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/intersect.cpp.o.d"
  "CMakeFiles/bfvr_bfv.dir/bfv/quantify.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/quantify.cpp.o.d"
  "CMakeFiles/bfvr_bfv.dir/bfv/reparam.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/reparam.cpp.o.d"
  "CMakeFiles/bfvr_bfv.dir/bfv/union.cpp.o"
  "CMakeFiles/bfvr_bfv.dir/bfv/union.cpp.o.d"
  "libbfvr_bfv.a"
  "libbfvr_bfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_bfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
