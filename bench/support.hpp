// Shared harness plumbing for the experiment binaries: circuit/order
// suites, engine runners, fixed-width table printing in the style of the
// paper's tables, and the JSON glue — `--json` / `--trace` flag parsing,
// the summary run object, and the adapter from a traced ReachResult to an
// obs report. (The JSON writer itself lives in src/util/json.hpp; the
// bench/json.hpp forwarding shim that used to sit in between is gone.)
//
// Every bench accepts `--json[=path]` (one summary object per run, default
// BENCH_<name>.json) and `--trace[=path]` (one full per-iteration report
// per run, default TRACE_<name>.json) so the perf trajectory — peak nodes,
// recursive steps, phase splits, reorder counters — can be tracked across
// commits as CI artifacts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/orders.hpp"
#include "lz/lz_reach.hpp"
#include "obs/report.hpp"
#include "reach/engine.hpp"
#include "sym/space.hpp"
#include "util/json.hpp"

namespace bfvr::bench {

using util::JsonLog;
using util::JsonObject;

/// One engine invocation on a fresh manager (each run gets its own BDD
/// universe so peaks and caches do not leak across rows — the paper runs
/// each configuration as a separate process).
struct RunSpec {
  enum class Engine { kTr, kTrMono, kCbm, kBfv, kCdec };
  Engine engine = Engine::kBfv;
  reach::ReachOptions opts;
  /// Manager configuration of the run's fresh BDD universe — how the
  /// ordering benches turn on Config::auto_reorder per run.
  bdd::Manager::Config mgr;
};

inline const char* engineName(RunSpec::Engine e) {
  switch (e) {
    case RunSpec::Engine::kTr:
      return "TR-IWLS95";
    case RunSpec::Engine::kTrMono:
      return "TR-mono";
    case RunSpec::Engine::kCbm:
      return "CBM-Fig1";
    case RunSpec::Engine::kBfv:
      return "BFV-Fig2";
    case RunSpec::Engine::kCdec:
      return "CDEC-Fig2";
  }
  return "?";
}

inline reach::ReachResult runOnce(const circuit::Netlist& n,
                                  const circuit::OrderSpec& order,
                                  RunSpec spec) {
  // The engine-boundary catch: building the StateSpace (netlist -> BDDs)
  // happens before the engine's own guarded loop, so a hard manager node
  // budget tripped there used to escape and abort the whole bench. Fold it
  // into the same RunStatus the engines report (M.O., and the interrupt
  // statuses for symmetry) instead.
  try {
    bdd::Manager m(0, spec.mgr);
    sym::StateSpace s(m, n, circuit::makeOrder(n, order));
    switch (spec.engine) {
      case RunSpec::Engine::kTr:
        return reach::reachTr(s, spec.opts);
      case RunSpec::Engine::kTrMono:
        spec.opts.transition.cluster_limit = 0;
        return reach::reachTr(s, spec.opts);
      case RunSpec::Engine::kCbm:
        return reach::reachCbm(s, spec.opts);
      case RunSpec::Engine::kBfv:
        spec.opts.backend = reach::SetBackend::kBfv;
        return reach::reachBfv(s, spec.opts);
      case RunSpec::Engine::kCdec:
        spec.opts.backend = reach::SetBackend::kCdec;
        return reach::reachBfv(s, spec.opts);
    }
  } catch (const bdd::NodeBudgetExceeded&) {
    reach::ReachResult r;
    r.status = RunStatus::kMemOut;
    return r;
  } catch (const bdd::Interrupted& e) {
    reach::ReachResult r;
    r.status = e.reason() == bdd::Interrupted::Reason::kDeadline
                   ? RunStatus::kTimeOut
                   : RunStatus::kCancelled;
    return r;
  }
  throw std::logic_error("bad engine");
}

/// One logical-zonotope engine run (src/lz) — no manager, no order; the
/// representation is order-free, which is why the lz rows carry a fixed
/// "n/a" order label in the tables and JSON.
inline lz::LzResult runLzOnce(const circuit::Netlist& n, double max_seconds,
                              unsigned max_iterations = 0) {
  lz::LzOptions o;
  o.budget.max_seconds = max_seconds;
  o.max_iterations = max_iterations;
  return lz::lzReach(n, o);
}

/// Summary row of an lz run. Deliberately NOT the BDD runObject schema:
/// there are no nodes and no recursive steps, and emitting them as zeros
/// would make tools/perf_smoke.py gate future runs against a zero baseline
/// (an infinite regression ratio). The lz-specific counters ride instead.
inline JsonObject lzRunObject(const std::string& circuit,
                              const lz::LzResult& r) {
  JsonObject o;
  o.add("circuit", circuit)
      .add("order", "n/a")
      .add("engine", "LZ")
      .add("status", to_string(r.status))
      .add("seconds", r.seconds)
      .add("iterations", r.iterations)
      .add("states", r.states)
      .add("exact", r.exact)
      .add("zonotopes", std::uint64_t{r.zonotopes})
      .add("point_states", std::uint64_t{r.point_states})
      .add("peak_generators", r.peak_generators)
      .add("lossy_products", r.lossy_products)
      .add("message", r.message);
  return o;
}

/// "time(s)" cell of an lz run (kInconclusive runs did finish — show their
/// time, tagged by the separate status/notes columns).
inline std::string lzTimeCell(const lz::LzResult& r) {
  if (r.status != RunStatus::kDone &&
      r.status != RunStatus::kInconclusive) {
    return to_string(r.status);
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", r.seconds);
  return buf;
}

/// "states" cell: the exact count, "<= N" for a sound upper bound, "-"
/// when the run did not finish.
inline std::string lzStatesCell(const lz::LzResult& r) {
  char buf[48];
  if (r.status == RunStatus::kDone) {
    std::snprintf(buf, sizeof buf, "%.0f", r.states);
  } else if (r.status == RunStatus::kInconclusive) {
    std::snprintf(buf, sizeof buf, "<=%.0f", r.states);
  } else {
    std::snprintf(buf, sizeof buf, "-");
  }
  return buf;
}

/// Parse `--json` / `--json=path` out of argv; `bench_name` picks the
/// default file name `BENCH_<name>.json`. Returns a disabled log when the
/// flag is absent.
inline JsonLog jsonLogFromArgs(int argc, char** argv,
                               const std::string& bench_name) {
  return util::jsonLogFromFlag(argc, argv, "--json",
                               "BENCH_" + bench_name + ".json");
}

/// Parse `--trace` / `--trace=path`; default file `TRACE_<name>.json`.
/// When enabled, the bench sets ReachOptions::trace on its runs and pushes
/// each run's full report via pushTrace().
inline JsonLog traceLogFromArgs(int argc, char** argv,
                                const std::string& bench_name) {
  return util::jsonLogFromFlag(argc, argv, "--trace",
                               "TRACE_" + bench_name + ".json");
}

/// The common fields of one engine run (everything the tables print, plus
/// the op counters the tables do not have room for).
inline JsonObject runObject(const std::string& circuit,
                            const std::string& order,
                            const std::string& engine,
                            const reach::ReachResult& r) {
  JsonObject o;
  o.add("circuit", circuit)
      .add("order", order)
      .add("engine", engine)
      .add("status", to_string(r.status))
      .add("seconds", r.seconds)
      .add("iterations", r.iterations)
      .add("states", r.states)
      .add("peak_live_nodes", r.peak_live_nodes)
      .add("chi_nodes", r.chi_nodes)
      .add("bfv_nodes", r.bfv_nodes)
      .add("top_ops", r.ops.top_ops)
      .add("recursive_steps", r.ops.recursive_steps)
      .add("cache_lookups", r.ops.cache_lookups)
      .add("cache_hits", r.ops.cache_hits)
      .add("cache_inserts", r.ops.cache_inserts)
      .add("cache_collisions", r.ops.cache_collisions)
      .add("nodes_created", r.ops.nodes_created)
      .add("gc_runs", r.ops.gc_runs)
      .add("reorder_runs", r.ops.reorder_runs)
      .add("reorder_swaps", r.ops.reorder_swaps)
      .add("reorder_nodes_saved", r.ops.reorder_nodes_saved)
      .addRaw("op_cache", obs::opCacheJson(r.ops));
  return o;
}

/// Run-level summary of a ReachResult in the form the obs reports expect.
inline obs::RunMeta traceMeta(const std::string& circuit,
                              const std::string& order,
                              const std::string& engine,
                              const reach::ReachResult& r) {
  obs::RunMeta m;
  m.circuit = circuit;
  m.order = order;
  m.engine = engine;
  m.status = to_string(r.status);
  m.seconds = r.seconds;
  m.iterations = r.iterations;
  m.states = r.states;
  m.peak_live_nodes = r.peak_live_nodes;
  m.ops = r.ops;
  return m;
}

/// Push the run's full per-iteration report into the trace log. No-op when
/// the log is disabled or the run was not traced.
inline void pushTrace(JsonLog& log, const std::string& circuit,
                      const std::string& order, const std::string& engine,
                      const reach::ReachResult& r) {
  if (!log.enabled() || !r.trace.has_value()) return;
  log.push(obs::reportJson(traceMeta(circuit, order, engine, r), *r.trace));
}

/// "time(s)" cell: the run time, or T.O. / M.O. like the paper's Table 2.
inline std::string timeCell(const reach::ReachResult& r) {
  if (r.status != RunStatus::kDone) return to_string(r.status);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", r.seconds);
  return buf;
}

/// "Peak(K)" cell: peak live nodes in thousands (one decimal).
inline std::string peakCell(const reach::ReachResult& r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(r.peak_live_nodes) / 1000.0);
  return buf;
}

inline void hr(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace bfvr::bench
