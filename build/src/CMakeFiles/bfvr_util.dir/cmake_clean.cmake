file(REMOVE_RECURSE
  "CMakeFiles/bfvr_util.dir/util/rng.cpp.o"
  "CMakeFiles/bfvr_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/bfvr_util.dir/util/stats.cpp.o"
  "CMakeFiles/bfvr_util.dir/util/stats.cpp.o.d"
  "libbfvr_util.a"
  "libbfvr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfvr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
