
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfv/bfv.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/bfv.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/bfv.cpp.o.d"
  "/root/repo/src/bfv/convert.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/convert.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/convert.cpp.o.d"
  "/root/repo/src/bfv/intersect.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/intersect.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/intersect.cpp.o.d"
  "/root/repo/src/bfv/quantify.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/quantify.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/quantify.cpp.o.d"
  "/root/repo/src/bfv/reparam.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/reparam.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/reparam.cpp.o.d"
  "/root/repo/src/bfv/union.cpp" "src/CMakeFiles/bfvr_bfv.dir/bfv/union.cpp.o" "gcc" "src/CMakeFiles/bfvr_bfv.dir/bfv/union.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
