// Batch-mode CLI over the job runner (src/run): consume a manifest (list
// of circuit files / generator specs with per-job options), schedule the
// jobs across a fixed worker pool, optionally race each circuit as an
// engine portfolio, and aggregate every job's stats (and obs trace, when
// traced) into one JOBS_<name>.json report.
//
//   bfv_run <manifest> [--workers N] [--threads N] [--deterministic]
//           [--portfolio e1,e2,...] [--deadline S] [--trace] [--jobs[=path]]
//           [--quiet] [--strict]
//   bfv_run --list-engines
//
//   --workers N        pool size (default 1: deterministic, bit-identical
//                      op counts to running the engines directly)
//   --threads N        BDD-kernel threads per job (intra-operation
//                      parallelism), overriding any per-line threads= key;
//                      1 = the exact sequential kernel
//   --deterministic    force threads=1 on every job regardless of flags or
//                      manifest keys — bit-identical op counts guaranteed
//   --portfolio LIST   race EVERY manifest line under these engines,
//                      overriding any per-line portfolio= key
//   --deadline S       default wall-clock deadline for jobs without one
//   --trace            force per-iteration obs traces on for every job
//   --jobs[=path]      write the aggregated JSON report (default path
//                      JOBS_<manifest-stem>.json)
//   --quiet            suppress the per-job table rows
//   --strict           also fail (exit 1) on memout / timeout jobs — for
//                      CI gates where a budget trip is a regression, not
//                      an expected outcome
//   --list-engines     print the known engine tags (one per line) and exit;
//                      the same list a bad engine= diagnostic cites
//
// Exit status: 0 when every job ended in a resource-model status (done /
// T.O. / M.O. / cancelled); 1 when any job errored (bad circuit spec,
// unreadable file), when --strict and any job ran out of nodes or time,
// or when the manifest/report itself failed.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"
#include "run/manifest.hpp"
#include "run/run.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

using namespace bfvr;

namespace {

struct Args {
  std::string manifest;
  unsigned workers = 1;
  unsigned threads = 0;  // 0 = keep each line's threads= key (default 1)
  bool deterministic = false;
  std::vector<run::EngineKind> portfolio;  // empty = per-line setting
  double default_deadline = 0.0;
  bool force_trace = false;
  bool quiet = false;
  bool strict = false;
  std::string jobs_path;  // empty = no report
};

std::string manifestStem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.erase(dot);
  return stem;
}

bool parseArgs(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      a.workers = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg.rfind("--workers=", 0) == 0) {
      a.workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg == "--portfolio" && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string tok =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!tok.empty()) a.portfolio.push_back(run::parseEngineKind(tok));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      a.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg.rfind("--threads=", 0) == 0) {
      a.threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg == "--deterministic") {
      a.deterministic = true;
    } else if (arg == "--deadline" && i + 1 < argc) {
      a.default_deadline = std::stod(argv[++i]);
    } else if (arg.rfind("--deadline=", 0) == 0) {
      a.default_deadline = std::stod(arg.substr(11));
    } else if (arg == "--trace") {
      a.force_trace = true;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (arg == "--jobs") {
      a.jobs_path = "<default>";
    } else if (arg.rfind("--jobs=", 0) == 0) {
      a.jobs_path = arg.substr(7);
    } else if (!arg.empty() && arg[0] != '-' && a.manifest.empty()) {
      a.manifest = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (a.manifest.empty()) return false;
  if (a.jobs_path == "<default>") {
    a.jobs_path = "JOBS_" + manifestStem(a.manifest) + ".json";
  }
  return true;
}

obs::JobRecord toRecord(const run::JobSpec& spec, const run::JobResult& r) {
  obs::JobRecord rec;
  rec.name = spec.displayName();
  rec.circuit = spec.circuit;
  rec.order = spec.order.label();
  rec.engine = to_string(spec.engine);
  rec.status = to_string(r.status);
  rec.message = r.message;
  rec.worker = r.worker;
  rec.attempts.reserve(r.attempts.size());
  for (const run::AttemptRecord& a : r.attempts) {
    obs::JobAttempt ja;
    ja.status = to_string(a.status);
    ja.message = a.message;
    ja.escalation = a.escalation;
    ja.seconds = a.seconds;
    ja.resumed = a.resumed;
    ja.faults_injected = a.faults_injected;
    rec.attempts.push_back(std::move(ja));
  }
  rec.queue_seconds = r.queue_seconds;
  rec.seconds = r.seconds;
  rec.iterations = r.reach.iterations;
  rec.states = r.reach.states;
  rec.peak_live_nodes = r.reach.peak_live_nodes;
  rec.ops = r.reach.ops;
  if (r.reach.trace.has_value()) {
    obs::RunMeta meta;
    meta.circuit = rec.circuit;
    meta.order = rec.order;
    meta.engine = rec.engine;
    meta.status = rec.status;
    meta.seconds = r.reach.seconds;
    meta.iterations = rec.iterations;
    meta.states = rec.states;
    meta.peak_live_nodes = rec.peak_live_nodes;
    meta.ops = rec.ops;
    rec.trace_json = obs::reportJson(meta, *r.reach.trace);
  }
  return rec;
}

void printRow(const obs::JobRecord& rec) {
  char states[32];
  if (rec.status == "done") {
    std::snprintf(states, sizeof states, "%.6g", rec.states);
  } else {
    std::snprintf(states, sizeof states, "-");
  }
  std::printf("%-28s %-8s %-9s %8.3f %6u %12s  w%u%s\n", rec.name.c_str(),
              rec.engine.c_str(), rec.status.c_str(), rec.seconds,
              rec.iterations, states, rec.worker,
              rec.winner ? "  <- winner" : "");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-engines") == 0) {
      for (const run::EngineKind k : run::allEngineKinds()) {
        std::printf("%s\n", to_string(k));
      }
      return 0;
    }
  }
  Args args;
  if (!parseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s <manifest> [--workers N] [--threads N] "
                 "[--deterministic] [--portfolio e1,e2,...] [--deadline S] "
                 "[--trace] [--jobs[=path]] [--quiet] [--strict] | "
                 "--list-engines\n",
                 argv[0]);
    return 2;
  }

  std::vector<run::ManifestEntry> entries;
  try {
    entries = run::parseManifestFile(args.manifest);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  for (run::ManifestEntry& e : entries) {
    if (!args.portfolio.empty()) e.portfolio = args.portfolio;
    if (e.spec.deadline_seconds == 0.0) {
      e.spec.deadline_seconds = args.default_deadline;
    }
    if (args.force_trace) e.spec.opts.trace = true;
    if (args.deterministic) {
      e.spec.mgr.threads = 1;
    } else if (args.threads > 0) {
      e.spec.mgr.threads = args.threads;
    }
  }

  const Timer total;
  run::WorkerPool pool(args.workers);
  std::vector<obs::JobRecord> records;

  // Plain jobs go straight to the pool; each portfolio race gets a cheap
  // controller thread (runPortfolio blocks until its whole group returns),
  // so every variant of every manifest line is in the queue at once and
  // the pool stays saturated across lines.
  struct Race {
    const run::ManifestEntry* entry;
    run::PortfolioResult result;
  };
  std::vector<Race> races;
  std::vector<std::pair<const run::ManifestEntry*,
                        std::future<run::JobResult>>>
      singles;
  for (const run::ManifestEntry& e : entries) {
    if (e.portfolio.empty()) {
      singles.emplace_back(&e, pool.submit(e.spec));
    } else {
      races.push_back({&e, {}});
    }
  }
  std::vector<std::thread> controllers;
  controllers.reserve(races.size());
  for (Race& race : races) {
    controllers.emplace_back([&pool, &race] {
      race.result =
          run::runPortfolio(pool, race.entry->spec, race.entry->portfolio);
    });
  }
  for (auto& [entry, fut] : singles) {
    records.push_back(toRecord(entry->spec, fut.get()));
  }
  for (std::thread& t : controllers) t.join();
  for (const Race& race : races) {
    for (std::size_t i = 0; i < race.result.jobs.size(); ++i) {
      run::JobSpec variant = race.entry->spec;
      variant.engine = race.entry->portfolio[i];
      variant.name = race.entry->spec.displayName() + "/" +
                     to_string(variant.engine);
      obs::JobRecord rec = toRecord(variant, race.result.jobs[i]);
      rec.group = race.entry->spec.displayName();
      rec.winner = race.result.winner == static_cast<int>(i);
      records.push_back(std::move(rec));
    }
  }
  const double total_seconds = total.seconds();

  if (!args.quiet) {
    std::printf("%-28s %-8s %-9s %8s %6s %12s  %s\n", "job", "engine",
                "status", "time(s)", "iters", "states", "worker");
    for (const obs::JobRecord& rec : records) printRow(rec);
  }

  // Per-status roll-up, printed even under --quiet: it's the one line a CI
  // log needs to judge a batch.
  std::size_t done = 0, memout = 0, timeout = 0, cancelled = 0;
  std::size_t inconclusive = 0, error = 0;
  std::size_t retries = 0;
  for (const obs::JobRecord& rec : records) {
    if (rec.status == "done") ++done;
    else if (rec.status == "M.O.") ++memout;
    else if (rec.status == "T.O.") ++timeout;
    else if (rec.status == "cancelled") ++cancelled;
    else if (rec.status == "inconclusive") ++inconclusive;
    else ++error;
    if (rec.attempts.size() > 1) retries += rec.attempts.size() - 1;
  }
  std::printf(
      "%zu jobs on %u workers in %.3fs: %zu done, %zu memout, %zu timeout, "
      "%zu cancelled, %zu inconclusive, %zu error; %zu retr%s used\n",
      records.size(), pool.workers(), total_seconds, done, memout, timeout,
      cancelled, inconclusive, error, retries, retries == 1 ? "y" : "ies");

  bool ok = true;
  for (const obs::JobRecord& rec : records) {
    if (rec.status == "error") {
      std::fprintf(stderr, "job %s failed: %s\n", rec.name.c_str(),
                   rec.message.c_str());
      ok = false;
    } else if (args.strict &&
               (rec.status == "M.O." || rec.status == "T.O.")) {
      std::fprintf(stderr, "job %s exceeded its budget (%s): %s\n",
                   rec.name.c_str(), rec.status.c_str(),
                   rec.message.c_str());
      ok = false;
    }
  }

  if (!args.jobs_path.empty()) {
    const std::string payload =
        obs::jobsReportJson(manifestStem(args.manifest), pool.workers(),
                            total_seconds, records);
    std::FILE* f = std::fopen(args.jobs_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.jobs_path.c_str());
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu jobs)\n", args.jobs_path.c_str(),
                records.size());
  }
  return ok ? 0 : 1;
}
