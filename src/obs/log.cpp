#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace bfvr::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};

/// UTC wall-clock timestamp with millisecond resolution.
std::string timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

bool parseLogLevel(const std::string& s, LogLevel* out) {
  if (s == "error") {
    *out = LogLevel::kError;
  } else if (s == "info") {
    *out = LogLevel::kInfo;
  } else if (s == "debug") {
    *out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

LogLevel logLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void setLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void logLine(LogLevel level, const std::string& component,
             const std::string& message, const std::string& tenant,
             std::uint64_t job) {
  if (!logEnabled(level)) return;
  std::string line = "[" + timestamp() + "] ";
  const char* lvl = to_string(level);
  line += lvl;
  // Pad to the widest level name so columns line up across lines.
  for (std::size_t i = std::char_traits<char>::length(lvl); i < 5; ++i) {
    line += ' ';
  }
  line += " " + component;
  if (!tenant.empty()) line += " tenant=" + tenant;
  if (job != 0) line += " job=" + std::to_string(job);
  line += " " + message + "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace bfvr::obs
