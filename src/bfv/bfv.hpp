// Canonical Boolean functional vectors (BFVs) and the set-manipulation
// algorithms of Goel & Bryant (DATE 2003).
//
// A BFV F = (f_1 .. f_n) represents the SET given by its range: every
// assignment to the choice variables v_1..v_n selects a member F(v). The
// canonical form (§2.1 of the paper) requires
//   * exactly n choice variables, one per component, in *component order*
//     (highest-weighted bit first);
//   * members map to themselves, non-members to the nearest member under
//     the weighted distance d(X,Y) = sum_i 2^(n-i) |x_i - y_i|;
// which forces each component into the shape
//       f_i = f1_i  |  fc_i & v_i
// where f1_i ("forced to one") and fc_i ("free choice") depend only on
// v_1..v_{i-1}. The forced-to-zero condition is f0_i = ~(f1_i | fc_i).
//
// The empty set has no functional-vector representation (§2.1); it is an
// explicit special case here.
//
// Throughout this module the component order must equal the BDD variable
// order of the choice variables (choice_vars strictly increasing). The
// paper makes the same assumption in its experiments, and it is what makes
// the conjunctive-decomposition connection of §2.7 exact.
#pragma once

#include <span>
#include <vector>

#include "bdd/bdd.hpp"

namespace bfvr::bfv {

using bdd::Bdd;
using bdd::Manager;

/// The three mutually exclusive selection conditions of a component
/// (§2.2): forced-to-one, forced-to-zero, free choice.
struct ComponentConditions {
  Bdd forced1;
  Bdd forced0;
  Bdd choice;
};

/// A set of n-bit state vectors in canonical Boolean-functional-vector form.
///
/// Invariants (checked by checkCanonical, maintained by every operation):
///  * comps()[i] depends only on choiceVars()[0..i];
///  * comps()[i] is positive unate in choiceVars()[i];
///  * members map to themselves (idempotence F(F(v)) == F(v));
///  * choiceVars() is strictly increasing (component order == BDD order).
class Bfv {
 public:
  /// Null object (distinct from the empty set); most ops reject it.
  Bfv() = default;

  // ---- constructors for elementary sets (§2.1: "we start with canonical
  // vectors for elementary sets and build others by the set algorithms") ---
  static Bfv emptySet(Manager& m, std::vector<unsigned> choice_vars);
  /// All 2^n vectors: f_i = v_i.
  static Bfv universe(Manager& m, std::vector<unsigned> choice_vars);
  /// Singleton {bits}: the constant vector.
  static Bfv point(Manager& m, std::vector<unsigned> choice_vars,
                   const std::vector<bool>& bits);
  /// A cube: component i is the constant 0/1 for literals, v_i for don't
  /// cares (values: 0, 1, or -1 for don't care).
  static Bfv cubeSet(Manager& m, std::vector<unsigned> choice_vars,
                     std::span<const signed char> values);
  /// Union of singletons — convenience for tests/examples (members given as
  /// bit masks, bit 0 = component 0 = highest-weighted bit).
  static Bfv fromMembers(Manager& m, std::vector<unsigned> choice_vars,
                         std::span<const std::uint64_t> members);

  /// Wrap existing components; asserts canonicity in debug builds when
  /// `trusted` is false.
  static Bfv fromComponents(Manager& m, std::vector<unsigned> choice_vars,
                            std::vector<Bdd> comps, bool trusted = false);

  // ---- observers -----------------------------------------------------------
  bool isNull() const noexcept { return mgr_ == nullptr; }
  bool isEmpty() const noexcept { return empty_; }
  unsigned width() const noexcept {
    return static_cast<unsigned>(vars_.size());
  }
  const std::vector<unsigned>& choiceVars() const noexcept { return vars_; }
  const std::vector<Bdd>& comps() const noexcept { return comps_; }
  Manager* manager() const noexcept { return mgr_; }

  /// Canonical equality: same set iff identical components (or both empty).
  bool operator==(const Bfv& o) const;
  bool operator!=(const Bfv& o) const { return !(*this == o); }

  /// Membership: F(x) == x.
  bool contains(const std::vector<bool>& bits) const;
  /// Number of states in the set.
  double countStates() const;
  /// Shared BDD size of all components — the paper's "BFV size" metric
  /// (Table 3).
  std::size_t sharedSize() const;

  /// Characteristic function chi(v) = AND_i (v_i XNOR f_i). For canonical
  /// vectors this is the conjunctive decomposition identity of §2.7 and
  /// costs n apply operations.
  Bdd toChar() const;

  /// Selection conditions of component i (0-based).
  ComponentConditions conditions(unsigned i) const;

  /// The member selected by the given choice assignment (one bool per
  /// component). Requires non-empty.
  std::vector<bool> select(const std::vector<bool>& choices) const;

  /// Enumerate up to `limit` members (ascending in the weighted order).
  std::vector<std::vector<bool>> enumerate(std::size_t limit) const;

  /// Structural canonicity check (support + unateness + idempotence).
  /// Returns false with a reason for diagnostics.
  bool checkCanonical(std::string* why = nullptr) const;

  // ---- the paper's set algorithms -------------------------------------------
  /// §2.3: union via exclusion conditions. No characteristic function is
  /// ever built.
  friend Bfv setUnion(const Bfv& a, const Bfv& b);
  /// §2.4: intersection via elimination conditions + normalization pass.
  friend Bfv setIntersect(const Bfv& a, const Bfv& b);

  /// §2.5: Shannon cofactor with respect to choice variable of component i:
  /// the canonical vector of the sub-range selected with v_i fixed.
  Bfv cofactor(unsigned comp, bool value) const;
  /// §2.5: existential quantification of component i's choice variable —
  /// the union of the two cofactor ranges. On a canonical vector this is
  /// the identity on the represented set (every member is selected with
  /// v_i = 0 or v_i = 1); its real use is quantifying *parameter*
  /// variables during re-parameterization, where the cofactor ranges
  /// genuinely differ.
  Bfv existsChoice(unsigned comp) const;
  /// §2.5: universal quantification — the intersection of the cofactor
  /// ranges: the members selectable under both values of v_i, i.e. the
  /// members whose bit i is forced by the prefix choices.
  Bfv forallChoice(unsigned comp) const;

 private:
  Bfv(Manager* m, std::vector<unsigned> vars, std::vector<Bdd> comps,
      bool empty)
      : mgr_(m),
        vars_(std::move(vars)),
        comps_(std::move(comps)),
        empty_(empty) {}

  void requireCompatible(const Bfv& o) const;

  Manager* mgr_ = nullptr;
  std::vector<unsigned> vars_;
  std::vector<Bdd> comps_;
  bool empty_ = false;
};

Bfv setUnion(const Bfv& a, const Bfv& b);
Bfv setIntersect(const Bfv& a, const Bfv& b);

// ---------------------------------------------------------------------------
// Re-parameterization (§2.6) — the bridge from symbolic simulation back to
// canonical form: quantify the parameter variables out of a raw
// (non-canonical) vector.
// ---------------------------------------------------------------------------

/// How re-parameterization picks the next parameter variable to quantify.
enum class QuantSchedule {
  kStaticOrder,  ///< given order (ascending variable index)
  kSupportCost   ///< paper §3: dynamic, cheapest-support-first
};

struct ReparamOptions {
  QuantSchedule schedule = QuantSchedule::kSupportCost;
};

/// Canonicalize the raw vector `outputs` (functions of `param_vars` only —
/// they must NOT depend on `choice_vars`) into a canonical BFV over
/// `choice_vars`. Every parameter variable is existentially quantified by
/// the union-of-cofactors rule of §2.5; components that do not depend on
/// the variable being quantified are skipped per the support optimization
/// the paper describes.
Bfv reparameterize(Manager& m, std::span<const Bdd> outputs,
                   std::vector<unsigned> choice_vars,
                   std::span<const unsigned> param_vars,
                   const ReparamOptions& opts = {});

// ---------------------------------------------------------------------------
// Conversions between representations (the Fig. 1 flow needs both; we also
// use them to validate the direct algorithms).
// ---------------------------------------------------------------------------

/// Coudert–Berthet–Madre-style conversion: canonical BFV of the set whose
/// characteristic function is chi (over the same, increasing, choice vars).
/// chi == 0 yields the empty Bfv.
Bfv fromChar(Manager& m, const Bdd& chi, std::vector<unsigned> choice_vars);

/// Component reordering (the paper's §4 future work, provided here as a
/// reference implementation that routes through the characteristic
/// function — a direct algorithm remains the open problem). The result
/// represents the SAME set of states, but its j-th component carries the
/// state bit that was component perm[j] of `f`, weighted and parameterized
/// by the fresh strictly-increasing choice variables `new_vars`. Different
/// component orders can change the shared BDD size substantially, which is
/// why the paper wants a reordering heuristic.
Bfv reorderComponents(const Bfv& f, std::span<const unsigned> perm,
                      std::vector<unsigned> new_vars);

}  // namespace bfvr::bfv
