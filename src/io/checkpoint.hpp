// Versioned, CRC-checked binary checkpoints of reachability state: the
// shared BDD DAG of the reached set and the frontier, the component choice
// variables (BFV/CDEC engines), and the manager's variable order at
// snapshot time. A checkpoint written mid-run by any engine can be loaded
// into a *fresh* manager and continued to a bit-identical fixpoint
// (reach/resume.cpp): the reached-set sequence depends only on the (reached,
// from) pair and the variable order, both of which the file captures
// exactly.
//
// File layout (all integers little-endian):
//
//   offset size  field
//   0      8     magic "BFVRCKPT"
//   8      4     format version (kCheckpointVersion)
//   12     4     CRC-32 (IEEE 802.3) of the payload bytes
//   16     8     payload byte count
//   24     ...   payload
//
// Payload: engine tag, root kind, iteration, variable order (level -> var),
// choice variables, then the shared DAG as a dense topologically-ordered
// node table — children strictly precede parents, id 0 is the terminal —
// with edges encoded as (id << 1) | complement_bit. Roots for the reached
// set and the frontier are edge lists into that table.
//
// Writes are atomic: the bytes go to "<path>.tmp" which is renamed over the
// destination only after a successful close, so a crash mid-write never
// leaves a truncated file where a resumable checkpoint used to be.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace bfvr::io {

using bdd::Bdd;
using bdd::Manager;

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Thrown on any serialization failure: unreadable/unwritable file, bad
/// magic, version mismatch, CRC mismatch, or a malformed payload.
struct Error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What kind of state-set representation the roots encode.
enum class RootKind : std::uint8_t {
  kChi = 0,   ///< one root each: characteristic functions (TR/CBM/hybrid)
  kBfv = 1,   ///< roots are BFV components over `choice_vars`
  kCdec = 2,  ///< roots are CDEC constraints over `choice_vars`
};

/// Decoded in-memory image of a checkpoint. On save the Bdd roots may live
/// in any manager; on load they are rebuilt inside the manager passed to
/// load() (which also receives the recorded variable order first, so the
/// decoded DAG is canonical and node-for-node the shape that was saved).
struct Checkpoint {
  std::string engine;  ///< dispatch tag: "tr" | "cbm" | "hybrid" | "bfv" | "cdec"
  RootKind kind = RootKind::kChi;
  std::uint32_t iteration = 0;       ///< completed frontier iterations
  std::vector<unsigned> level2var;   ///< variable order: level -> var index
  std::vector<unsigned> choice_vars; ///< BFV/CDEC component variables
  bool reached_empty = false;        ///< BFV/CDEC empty-set flag
  bool frontier_empty = false;
  std::vector<Bdd> reached;
  std::vector<Bdd> frontier;
};

/// Serialize `c` to a self-contained byte image — the exact bytes save()
/// writes (magic, version, CRC, payload), so an image can travel over a
/// wire or sit in memory as a job-migration unit and still round-trip
/// through decode() on the far side. All non-null roots must belong to one
/// manager. Throws io::Error on failure.
std::vector<std::uint8_t> encode(const Checkpoint& c);

/// Inverse of encode(): verify magic/version/CRC, restore the recorded
/// variable order into `m` (whose numVars() must match) and decode the DAG
/// into it. Throws io::Error on any mismatch or malformed input.
Checkpoint decode(const std::uint8_t* data, std::size_t n, Manager& m);

/// Serialize `c` to `path` (atomically, via "<path>.tmp" + rename). All
/// non-null roots must belong to one manager. Throws io::Error on failure.
void save(const std::string& path, const Checkpoint& c);

/// Read `path` and decode() it. Throws io::Error on any mismatch or
/// malformed input.
Checkpoint load(const std::string& path, Manager& m);

/// CRC-32 (IEEE 802.3, reflected) — exposed for tests and tooling.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0);

}  // namespace bfvr::io
