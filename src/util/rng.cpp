#include "util/rng.hpp"

#include <numeric>

namespace bfvr {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free reduction is fine here; bias is negligible
  // for bounds far below 2^64, and determinism is what we care about.
  return next() % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  return below(den) < num;
}

double Rng::real() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<unsigned> Rng::permutation(unsigned n) noexcept {
  std::vector<unsigned> p(n);
  std::iota(p.begin(), p.end(), 0U);
  shuffle(p);
  return p;
}

}  // namespace bfvr
