// Static variable-ordering heuristics. The paper's experiments use fixed
// orders from several sources (VIS static, their own static, dynamic-run
// snapshots, pdtrav orders); our suite spans the same good-to-bad range:
// a topological DFS order (the paper's "S2"), declaration order, its
// reverse, and seeded random shuffles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace bfvr::circuit {

/// A source object to be ordered: a latch (state element) or an input.
struct ObjRef {
  bool is_input = false;
  unsigned pos = 0;  ///< position within inputs() or latches()

  bool operator==(const ObjRef&) const = default;
};

enum class OrderKind : std::uint8_t {
  kNatural,  ///< inputs then latches, in declaration order
  kTopo,     ///< DFS from next-state functions & outputs (paper's S2)
  kReverse,  ///< reverse declaration order
  kRandom    ///< seeded shuffle
};

struct OrderSpec {
  OrderKind kind = OrderKind::kTopo;
  std::uint64_t seed = 0;  ///< used by kRandom

  std::string label() const;
};

/// Ordered list of all sources of `n` according to the spec. Every latch
/// and every input appears exactly once.
std::vector<ObjRef> makeOrder(const Netlist& n, const OrderSpec& spec);

}  // namespace bfvr::circuit
