// Brute-force reference models shared by the test suite: truth tables for
// BDD operations and explicit member sets for the BFV algebra.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "bfv/bfv.hpp"
#include "util/rng.hpp"

namespace bfvr::test {

using bdd::Bdd;
using bdd::Manager;
using bfv::Bfv;

/// A member set over n-bit vectors; bit i of a member corresponds to
/// component i (component 0 carries the highest weight in the paper's
/// distance metric).
using Set = std::set<std::uint64_t>;

/// Build the BDD of a truth table over variables vars[0..k-1]; bit a of
/// `tt` gives the value on the assignment where vars[j] = bit j of a.
Bdd bddFromTruth(Manager& m, const std::vector<unsigned>& vars,
                 std::uint64_t tt);

/// Truth table of f over the given variables (all other variables 0).
std::uint64_t truthOf(Manager& m, const Bdd& f,
                      const std::vector<unsigned>& vars);

/// Random k-variable truth table.
std::uint64_t randomTruth(Rng& rng, unsigned k);

/// Build the canonical BFV of an explicit set via repeated point-union.
Bfv bfvOf(Manager& m, const std::vector<unsigned>& vars, const Set& s);

/// Enumerate the members of a (non-null) Bfv as bit masks.
Set setOf(const Bfv& f);

/// Random subset of {0 .. 2^n - 1}, each element kept with probability
/// num/den.
Set randomSet(Rng& rng, unsigned n, std::uint64_t num, std::uint64_t den);

/// The member of `s` nearest to `v` under the paper's weighted metric
/// d(X,Y) = sum_i 2^(n-1-i) [x_i != y_i]. Requires non-empty s.
std::uint64_t nearestMember(const Set& s, std::uint64_t v, unsigned n);

Set setUnionOf(const Set& a, const Set& b);
Set setIntersectOf(const Set& a, const Set& b);

}  // namespace bfvr::test
