// Composition (single and vector) and variable permutation. Vector
// composition is what the characteristic-function → BFV conversion of
// Coudert–Berthet–Madre needs; permutation renames the parameter bank after
// re-parameterization (u → v, see reach/bfv_reach.cpp).
#include <unordered_map>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

Edge Manager::composeRec(Edge f, std::uint32_t var, Edge g) {
  // f is independent of var when its top level is below var's level.
  if (isConstEdge(f) || level(f) > var2level_[var]) return f;
  const std::uint32_t op = kOpComposeBase + var;
  Edge out;
  if (cacheLookup(op, f, g, 0, out)) return out;
  ++curStats().recursive_steps;
  const std::uint32_t top = varOf(f);
  Edge r;
  if (top == var) {
    r = iteRec(g, highOf(f), lowOf(f));
  } else {
    const Edge rh = composeRec(highOf(f), var, g);
    const Edge rl = composeRec(lowOf(f), var, g);
    // g may depend on variables at or above `top`, so rebuild with ITE on
    // the projection of `top` rather than mkNode.
    if (rh == rl) {
      r = rh;
    } else {
      const Edge v = mkNode(top, kTrueEdge, kFalseEdge);
      r = iteRec(v, rh, rl);
    }
  }
  cacheStore(op, f, g, 0, r);
  return r;
}

Bdd Manager::compose(const Bdd& f, unsigned var, const Bdd& g) {
  ++curStats().top_ops;
  ensureVar(var);
  return withPressure([&] {
    return make(composeRec(requireSameManager(f), var, requireSameManager(g)));
  });
}

namespace {

/// Per-invocation memo for vector composition (the computed table cannot be
/// keyed by a whole substitution map).
struct VectorComposer {
  Manager& mgr;
  std::span<const Bdd> map;
  std::unordered_map<Edge, Bdd> memo;

  Bdd run(const Bdd& f) {
    if (f.isConst()) return f;
    // Complemented and regular edges compose to complements of each other;
    // memo on the regular edge only.
    const bool compl_in = (f.raw() & 1U) != 0;
    const Bdd reg = compl_in ? ~f : f;
    if (auto it = memo.find(reg.raw()); it != memo.end()) {
      return compl_in ? ~it->second : it->second;
    }
    const unsigned v = reg.topVar();
    const Bdd rh = run(reg.high());
    const Bdd rl = run(reg.low());
    Bdd sub;
    if (v < map.size() && !map[v].isNull()) {
      sub = map[v];
    } else {
      sub = mgr.var(v);
    }
    Bdd r = mgr.ite(sub, rh, rl);
    memo.emplace(reg.raw(), r);
    return compl_in ? ~r : r;
  }
};

}  // namespace

Bdd Manager::vectorCompose(const Bdd& f, std::span<const Bdd> map) {
  ++curStats().top_ops;
  requireSameManager(f);
  for (const Bdd& m : map) {
    if (!m.isNull()) requireSameManager(m);
  }
  // The retry boundary sits around the whole walk: the memo's Bdd handles
  // unwind with the failed attempt, so relieve()'s GC reclaims them; the
  // nested ite() calls see in_pressure_op_ and do not retry individually.
  return withPressure([&] {
    VectorComposer vc{*this, map, {}};
    return vc.run(f);
  });
}

Bdd Manager::permute(const Bdd& f, std::span<const unsigned> perm) {
  ++curStats().top_ops;
  std::vector<Bdd> map(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) map[i] = var(perm[i]);
  }
  return vectorCompose(f, map);
}

}  // namespace bfvr::bdd
