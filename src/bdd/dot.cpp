// Graphviz export, used by the examples and when debugging orderings.
#include <sstream>
#include <unordered_set>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

std::string Manager::toDot(std::span<const Bdd> fs,
                           std::span<const std::string> labels) {
  std::ostringstream os;
  os << "digraph bdd {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=circle];\n"
     << "  t1 [shape=box,label=\"1\"];\n";
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (fs[i].isNull()) continue;
    const Edge e = requireSameManager(fs[i]);
    const std::string label =
        i < labels.size() ? labels[i] : ("f" + std::to_string(i));
    os << "  r" << i << " [shape=plaintext,label=\"" << label << "\"];\n";
    os << "  r" << i << " -> n" << index(e)
       << (isCompl(e) ? " [style=dotted]" : "") << ";\n";
    stack.push_back(index(e));
  }
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (!seen.insert(i).second) continue;
    const Node& n = nodes_[i];
    if (n.var == kTermVar) continue;
    os << "  n" << i << " [label=\"v" << (n.var + 1) << "\"];\n";
    auto emit = [&](Edge child, bool then_edge) {
      const std::uint32_t ci = index(child);
      os << "  n" << i << " -> ";
      if (ci == 0) {
        os << "t1";
      } else {
        os << "n" << ci;
      }
      os << " [";
      if (!then_edge) os << "style=dashed,";
      if (isCompl(child)) os << "arrowhead=odot,";
      os << "];\n";
      if (ci != 0) stack.push_back(ci);
    };
    emit(n.high, true);
    emit(n.low, false);
  }
  os << "}\n";
  return os.str();
}

}  // namespace bfvr::bdd
