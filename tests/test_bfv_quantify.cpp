// §2.5: cofactors and quantification on canonical vectors (range
// semantics — see bfv.hpp for why exists over an own choice variable is the
// identity on the set).
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

/// Brute-force range of a cofactor: members selected with v_c fixed.
Set cofactorRange(const Bfv& f, unsigned c, bool value) {
  const unsigned n = f.width();
  Set r;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    if ((((v >> c) & 1U) != 0) != value) continue;
    std::vector<bool> choices(n);
    for (unsigned i = 0; i < n; ++i) choices[i] = ((v >> i) & 1U) != 0;
    const auto sel = f.select(choices);
    std::uint64_t x = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (sel[i]) x |= std::uint64_t{1} << i;
    }
    r.insert(x);
  }
  return r;
}

class QuantifySweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantifySweep, CofactorRangesMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 2);
  const unsigned n = 4;
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Manager m(n);
  Set s = test::randomSet(rng, n, 1, 3);
  if (s.empty()) s.insert(7);
  const Bfv f = test::bfvOf(m, vars, s);
  for (unsigned c = 0; c < n; ++c) {
    for (bool val : {false, true}) {
      const Bfv cf = f.cofactor(c, val);
      EXPECT_TRUE(cf.checkCanonical());
      EXPECT_EQ(test::setOf(cf), cofactorRange(f, c, val));
    }
  }
}

TEST_P(QuantifySweep, ExistsIsIdentityOnCanonicalVectors) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 19);
  const unsigned n = 4;
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Manager m(n);
  Set s = test::randomSet(rng, n, 1, 3);
  if (s.empty()) s.insert(3);
  const Bfv f = test::bfvOf(m, vars, s);
  for (unsigned c = 0; c < n; ++c) {
    // Every member is selected with v_c = 0 or 1, so the union of cofactor
    // ranges is the set itself — and canonicity makes it the same vector.
    EXPECT_EQ(f.existsChoice(c), f);
  }
}

TEST_P(QuantifySweep, ForallIsCofactorRangeIntersection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 41);
  const unsigned n = 4;
  const std::vector<unsigned> vars{0, 1, 2, 3};
  Manager m(n);
  Set s = test::randomSet(rng, n, 1, 3);
  if (s.empty()) s.insert(11);
  const Bfv f = test::bfvOf(m, vars, s);
  for (unsigned c = 0; c < n; ++c) {
    const Set want = test::setIntersectOf(cofactorRange(f, c, false),
                                          cofactorRange(f, c, true));
    const Bfv g = f.forallChoice(c);
    if (want.empty()) {
      EXPECT_TRUE(g.isEmpty());
    } else {
      EXPECT_EQ(test::setOf(g), want);
      EXPECT_TRUE(g.checkCanonical());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantifySweep, ::testing::Range(0, 15));

TEST(BfvQuantify, ForallKeepsForcedMembers) {
  Manager m(2);
  const std::vector<unsigned> vars{0, 1};
  // {00, 01}: bit 0 forced to 0, bit 1 free.
  const Bfv f = test::bfvOf(m, vars, Set{0, 2});
  // Quantifying the forced component keeps everything...
  EXPECT_EQ(f.forallChoice(0), f);
  // ... quantifying the free component keeps nothing (every member is
  // selected only under its own bit value).
  EXPECT_TRUE(f.forallChoice(1).isEmpty());
}

TEST(BfvQuantify, SingletonIsFixedpointOfAllQuantifiers) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bfv p = Bfv::point(m, vars, {true, false, true});
  for (unsigned c = 0; c < 3; ++c) {
    EXPECT_EQ(p.cofactor(c, false), p);
    EXPECT_EQ(p.cofactor(c, true), p);
    EXPECT_EQ(p.existsChoice(c), p);
    EXPECT_EQ(p.forallChoice(c), p);
  }
}

TEST(BfvQuantify, EmptyPropagates) {
  Manager m(3);
  const Bfv e = Bfv::emptySet(m, {0, 1, 2});
  EXPECT_TRUE(e.cofactor(1, true).isEmpty());
  EXPECT_TRUE(e.existsChoice(1).isEmpty());
  EXPECT_TRUE(e.forallChoice(1).isEmpty());
}

TEST(BfvQuantify, BadComponentIndexThrows) {
  Manager m(2);
  const Bfv u = Bfv::universe(m, {0, 1});
  EXPECT_THROW((void)u.cofactor(2, true), std::out_of_range);
}

}  // namespace
}  // namespace bfvr::bfv
