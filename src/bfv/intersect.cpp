// Set intersection on canonical Boolean functional vectors (§2.4).
//
// A conflict arises when a bit is forced to one in one operand and to zero
// in the other. The backward sweep computes elimination conditions e_i: the
// prefixes of choices that lead to an unavoidable conflict downstream. The
// forward pass then builds an approximation K that forces choices away from
// eliminated branches, and the final normalization substitutes the actual
// selected bits for the choice variables (h_i = k_i[v_j <- h_j, j < i]),
// which propagates the restricted choices through components that had a
// free choice in one operand but are constrained by the other.
//
// The paper notes this costs a quadratic number of BDD operations in the
// vector width — bench_setops measures exactly that.
#include <functional>
#include <tuple>

#include "bfv/internal.hpp"

namespace bfvr::bfv {

namespace internal {

bool intersectCore(Manager& m, const std::vector<unsigned>& vars,
                   const std::vector<Bdd>& f, const std::vector<Bdd>& g,
                   std::vector<Bdd>& out) {
  const std::size_t n = vars.size();
  out.clear();
  if (n == 0) return true;  // both are the 0-width universe {()}

  // Selection conditions of every component of both operands.
  std::vector<Bdd> f1(n), f0(n), g1(n), g0(n);
  if (m.threads() > 1) {
    // Per-component conditions are independent: each task only writes its
    // own slots, each pair fused into one cofactor2 walk.
    std::vector<std::function<void()>> fns;
    fns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      fns.push_back([&, i] {
        Bdd lo, hi;
        std::tie(lo, hi) = m.cofactor2(f[i], vars[i]);
        f1[i] = lo;
        f0[i] = ~hi;
        std::tie(lo, hi) = m.cofactor2(g[i], vars[i]);
        g1[i] = lo;
        g0[i] = ~hi;
      });
    }
    m.parallelInvoke(fns);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      f1[i] = m.cofactor(f[i], vars[i], false);
      f0[i] = ~m.cofactor(f[i], vars[i], true);
      g1[i] = m.cofactor(g[i], vars[i], false);
      g0[i] = ~m.cofactor(g[i], vars[i], true);
    }
  }

  // Backward sweep: e[i] = elimination condition after components 0..i-1
  // have been chosen (a function of v_0..v_{i-1}); e[n] = 0. Taking bit i
  // as 1 is doomed when either operand forces it to 0 or the downstream
  // elimination fires for v_i = 1 (k0); dually for k1. A prefix is
  // eliminated when both values are doomed: e[i] = k1[i] & k0[i]. (This is
  // the closed form of the paper's "normalize the operands by propagating
  // the elimination constraints" remark; the simpler recurrence
  // f0 g1 | f1 g0 | forall v_i e misses dooms reached through a *forced*
  // bit whose opposite-choice branch is clean.)
  std::vector<Bdd> k1(n), k0(n), e(n + 1);
  e[n] = m.zero();
  for (std::size_t i = n; i-- > 0;) {
    k1[i] = f1[i] | g1[i] | m.cofactor(e[i + 1], vars[i], false);
    k0[i] = f0[i] | g0[i] | m.cofactor(e[i + 1], vars[i], true);
    e[i] = k1[i] & k0[i];
  }
  if (e[0].isTrue()) return false;  // every selection conflicts: empty set

  // Forward pass: force choices away from conflicts (approximation K), then
  // substitute the selected bits for the choice variables of earlier
  // components — h_i = k_i[v_j <- h_j, j < i] — which both restricts free
  // choices constrained by the other operand and keeps every selected
  // prefix viable (k1 and k0 are disjoint on viable prefixes).
  std::vector<Bdd> subst(m.numVars());
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Bdd k = k1[i] | (~k0[i] & m.var(vars[i]));
    out[i] = i == 0 ? k : m.vectorCompose(k, subst);
    subst[vars[i]] = out[i];
  }
  return true;
}

}  // namespace internal

Bfv setIntersect(const Bfv& a, const Bfv& b) {
  a.requireCompatible(b);
  if (a.isEmpty()) return a;
  if (b.isEmpty()) return b;
  Manager& m = *a.manager();
  std::vector<Bdd> h;
  if (!internal::intersectCore(m, a.vars_, a.comps_, b.comps_, h)) {
    return Bfv::emptySet(m, a.vars_);
  }
  return Bfv(&m, a.vars_, std::move(h), /*empty=*/false);
}

}  // namespace bfvr::bfv
