// Thin forwarding header: the JSON writer itself was promoted to
// src/util/json.hpp (shared with the observability layer); what stays here
// is the bench-specific glue — `--json` / `--trace` flag parsing, the
// summary run object, and the adapter that turns a traced ReachResult into
// an obs report.
//
// Every bench accepts `--json[=path]` (one summary object per run, default
// BENCH_<name>.json) and `--trace[=path]` (one full per-iteration report
// per run, default TRACE_<name>.json) so the perf trajectory — peak nodes,
// recursive steps, phase splits, reorder counters — can be tracked across
// commits as CI artifacts.
#pragma once

#include <string>

#include "obs/report.hpp"
#include "reach/engine.hpp"
#include "util/json.hpp"

namespace bfvr::bench {

using util::JsonLog;
using util::JsonObject;

/// Parse `--json` / `--json=path` out of argv; `bench_name` picks the
/// default file name `BENCH_<name>.json`. Returns a disabled log when the
/// flag is absent.
inline JsonLog jsonLogFromArgs(int argc, char** argv,
                               const std::string& bench_name) {
  return util::jsonLogFromFlag(argc, argv, "--json",
                               "BENCH_" + bench_name + ".json");
}

/// Parse `--trace` / `--trace=path`; default file `TRACE_<name>.json`.
/// When enabled, the bench sets ReachOptions::trace on its runs and pushes
/// each run's full report via pushTrace().
inline JsonLog traceLogFromArgs(int argc, char** argv,
                                const std::string& bench_name) {
  return util::jsonLogFromFlag(argc, argv, "--trace",
                               "TRACE_" + bench_name + ".json");
}

/// The common fields of one engine run (everything the tables print, plus
/// the op counters the tables do not have room for).
inline JsonObject runObject(const std::string& circuit,
                            const std::string& order,
                            const std::string& engine,
                            const reach::ReachResult& r) {
  JsonObject o;
  o.add("circuit", circuit)
      .add("order", order)
      .add("engine", engine)
      .add("status", to_string(r.status))
      .add("seconds", r.seconds)
      .add("iterations", r.iterations)
      .add("states", r.states)
      .add("peak_live_nodes", r.peak_live_nodes)
      .add("chi_nodes", r.chi_nodes)
      .add("bfv_nodes", r.bfv_nodes)
      .add("top_ops", r.ops.top_ops)
      .add("recursive_steps", r.ops.recursive_steps)
      .add("cache_lookups", r.ops.cache_lookups)
      .add("cache_hits", r.ops.cache_hits)
      .add("cache_inserts", r.ops.cache_inserts)
      .add("cache_collisions", r.ops.cache_collisions)
      .add("nodes_created", r.ops.nodes_created)
      .add("gc_runs", r.ops.gc_runs)
      .add("reorder_runs", r.ops.reorder_runs)
      .add("reorder_swaps", r.ops.reorder_swaps)
      .add("reorder_nodes_saved", r.ops.reorder_nodes_saved);
  return o;
}

/// Run-level summary of a ReachResult in the form the obs reports expect.
inline obs::RunMeta traceMeta(const std::string& circuit,
                              const std::string& order,
                              const std::string& engine,
                              const reach::ReachResult& r) {
  obs::RunMeta m;
  m.circuit = circuit;
  m.order = order;
  m.engine = engine;
  m.status = to_string(r.status);
  m.seconds = r.seconds;
  m.iterations = r.iterations;
  m.states = r.states;
  m.peak_live_nodes = r.peak_live_nodes;
  m.ops = r.ops;
  return m;
}

/// Push the run's full per-iteration report into the trace log. No-op when
/// the log is disabled or the run was not traced.
inline void pushTrace(JsonLog& log, const std::string& circuit,
                      const std::string& order, const std::string& engine,
                      const reach::ReachResult& r) {
  if (!log.enabled() || !r.trace.has_value()) return;
  log.push(obs::reportJson(traceMeta(circuit, order, engine, r), *r.trace));
}

}  // namespace bfvr::bench
